// Run self-telemetry: where did the wall time and memory of a simulation
// process go?
//
// Everything here is *about the run*, not about the simulated system, and is
// therefore inherently non-deterministic (wall clocks, RSS). Publish it into
// a dedicated telemetry registry (StudyConfig::telemetry, chksim_run
// --stats-out) — never into cell metrics payloads or bench stdout, which the
// campaign cache and the --jobs determinism gates byte-compare.
//
// The one deterministic citizen is publish_tracer_stats: recorded/dropped
// counts are functions of the traced run alone and are safe anywhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace chksim::obs {

class EventTracer;
class MetricsRegistry;

/// Peak resident set size of this process from /proc/self/status (VmHWM);
/// 0 when unavailable (non-Linux).
std::int64_t peak_rss_bytes();

/// RAII wall-clock phase timer: feeds elapsed milliseconds into
/// registry.stats("telemetry.phase.<name>_ms") on destruction (or stop()).
/// A null registry makes the timer a no-op, so call sites can pass through
/// an optional telemetry sink unconditionally.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* registry, const std::string& name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Record now instead of at destruction (idempotent).
  void stop();

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// Publish process-level telemetry: gauge "telemetry.peak_rss_bytes".
void publish_process_telemetry(MetricsRegistry& registry);

/// Publish tracer health under `prefix` ("trace" by default): counters
/// events_recorded / events_dropped, gauges capacity_per_rank and complete
/// (1 when nothing was dropped). Deterministic for a deterministic run.
void publish_tracer_stats(const EventTracer& tracer, MetricsRegistry& registry,
                          const std::string& prefix = "trace");

}  // namespace chksim::obs
