#include "chksim/obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "chksim/support/json.hpp"
#include "chksim/support/version.hpp"

namespace chksim::obs {

namespace {

// Formatting shared with the JSON reader/writer, so every chksim report is
// byte-stable for equal inputs and survives a parse/dump round trip (the
// campaign report embeds cell reports that way).
std::string json_number(double v) { return json::format_number(v); }
std::string json_string(const std::string& s) { return json::escape_string(s); }

}  // namespace

void MetricsRegistry::set_provenance(const std::string& name,
                                     const std::string& value) {
  provenance_[name] = value;
}

std::string MetricsRegistry::provenance(const std::string& name) const {
  const auto it = provenance_.find(name);
  return it != provenance_.end() ? it->second : std::string();
}

bool MetricsRegistry::has_provenance(const std::string& name) const {
  return provenance_.count(name) != 0;
}

void MetricsRegistry::add_counter(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

std::int64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

bool MetricsRegistry::has_gauge(const std::string& name) const {
  return gauges_.count(name) != 0;
}

StreamingStats& MetricsRegistry::stats(const std::string& name) {
  return stats_[name];
}

const StreamingStats* MetricsRegistry::find_stats(const std::string& name) const {
  const auto it = stats_.find(name);
  return it != stats_.end() ? &it->second : nullptr;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                      int bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(lo, hi, bins)).first->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.provenance_) provenance_[name] = value;
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, s] : other.stats_) stats_[name].merge(s);
  for (const auto& [name, h] : other.histograms_) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
      histograms_.emplace(name, h);
    else
      it->second.merge(h);
  }
}

void MetricsRegistry::clear() {
  provenance_.clear();
  counters_.clear();
  gauges_.clear();
  stats_.clear();
  histograms_.clear();
}

bool MetricsRegistry::empty() const {
  return provenance_.empty() && counters_.empty() && gauges_.empty() &&
         stats_.empty() && histograms_.empty();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"provenance\": {";
  bool first = true;
  for (const auto& [name, value] : provenance_) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
        << json_string(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
        << json_number(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"stats\": {";
  first = true;
  for (const auto& [name, s] : stats_) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": {"
        << "\"count\": " << s.count() << ", \"mean\": " << json_number(s.mean())
        << ", \"stddev\": " << json_number(s.stddev())
        << ", \"min\": " << json_number(s.min())
        << ", \"max\": " << json_number(s.max())
        << ", \"sum\": " << json_number(s.sum()) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    " << json_string(name) << ": {"
        << "\"lo\": " << json_number(h.bin_lo(0))
        << ", \"hi\": " << json_number(h.bin_hi(h.bins() - 1))
        << ", \"underflow\": " << h.underflow()
        << ", \"overflow\": " << h.overflow() << ", \"bins\": [";
    for (int i = 0; i < h.bins(); ++i) out << (i == 0 ? "" : ", ") << h.bin_count(i);
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

bool MetricsRegistry::write_json_file(const std::string& path,
                                      std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  write_json(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void stamp_provenance(MetricsRegistry& registry, std::uint64_t seed) {
  registry.set_provenance("schema_version",
                          std::to_string(version::schema_version()));
  registry.set_provenance("code_version", version::code_version());
  registry.set_provenance("build_type", version::build_type());
  registry.set_provenance("seed", std::to_string(seed));
}

void publish_engine_metrics(const sim::RunResult& result, MetricsRegistry& registry,
                            const std::string& prefix) {
  registry.add_counter(prefix + ".ops_executed", result.ops_executed);
  registry.add_counter(prefix + ".events_processed", result.events_processed);
  registry.set_gauge(prefix + ".completed", result.completed ? 1.0 : 0.0);
  registry.set_gauge(prefix + ".makespan_ns", static_cast<double>(result.makespan));
  registry.set_gauge(prefix + ".total_recv_wait_ns",
                     static_cast<double>(result.total_recv_wait()));
  registry.set_gauge(prefix + ".event_heap_peak",
                     static_cast<double>(result.event_heap_peak));
  registry.set_gauge(prefix + ".match_arena_slots",
                     static_cast<double>(result.match_arena_slots));

  std::int64_t sends = 0, recvs = 0, calcs = 0;
  Bytes bytes = 0;
  StreamingStats& cpu = registry.stats(prefix + ".rank_cpu_busy_ns");
  StreamingStats& wait = registry.stats(prefix + ".rank_recv_wait_ns");
  StreamingStats& finish = registry.stats(prefix + ".rank_finish_ns");
  for (const sim::RankStats& r : result.ranks) {
    sends += r.sends;
    recvs += r.recvs;
    calcs += r.calcs;
    bytes = saturating_add(bytes, r.bytes_sent);
    cpu.add(static_cast<double>(r.cpu_busy));
    wait.add(static_cast<double>(r.recv_wait));
    finish.add(static_cast<double>(r.finish_time));
  }
  registry.add_counter(prefix + ".sends", sends);
  registry.add_counter(prefix + ".recvs", recvs);
  registry.add_counter(prefix + ".calcs", calcs);
  registry.add_counter(prefix + ".bytes_sent", bytes);
}

}  // namespace chksim::obs
