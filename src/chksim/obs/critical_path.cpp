#include "chksim/obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <unordered_set>

#include "chksim/obs/metrics.hpp"

namespace chksim::obs {

namespace {

bool is_op_event(TraceEventKind kind) {
  return kind == TraceEventKind::kCalc || kind == TraceEventKind::kSendOp ||
         kind == TraceEventKind::kRecvOp;
}

std::string pct(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", share * 100.0);
  return buf;
}

std::string fixed6(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

CriticalPath invalid_path(const std::string& why) {
  CriticalPath p;
  p.valid = false;
  p.error = why;
  return p;
}

}  // namespace

double CriticalPath::share_compute() const {
  return makespan > 0 ? static_cast<double>(compute) / static_cast<double>(makespan) : 0;
}
double CriticalPath::share_blackout() const {
  return makespan > 0 ? static_cast<double>(blackout) / static_cast<double>(makespan) : 0;
}
double CriticalPath::share_network() const {
  return makespan > 0 ? static_cast<double>(network) / static_cast<double>(makespan) : 0;
}
double CriticalPath::share_wait() const {
  return makespan > 0 ? static_cast<double>(wait) / static_cast<double>(makespan) : 0;
}

std::string CriticalPath::to_string() const {
  if (!valid) return "critical path: invalid (" + error + ")";
  char head[64];
  std::snprintf(head, sizeof head, "%.3f ms",
                static_cast<double>(makespan) / 1e6);
  return "critical path: makespan " + std::string(head) + " = compute " +
         pct(share_compute()) + " + blackout " + pct(share_blackout()) +
         " + network " + pct(share_network()) + " + wait " +
         pct(share_wait()) + " (steps " + std::to_string(steps.size()) +
         ", hops " + std::to_string(hops) + ", ranks " +
         std::to_string(ranks_visited) + ")";
}

CriticalPath extract_critical_path(const EventTracer& tracer) {
  if (tracer.dropped() != 0)
    return invalid_path("tracer dropped " + std::to_string(tracer.dropped()) +
                        " events (bounded ring); the walk needs a complete trace");
  const std::vector<TraceEvent> events = tracer.events();
  if (events.empty()) return invalid_path("empty trace");

  // Seqs are dense 1..recorded when nothing was dropped; index for O(1)
  // cause resolution.
  std::vector<const TraceEvent*> by_seq(tracer.recorded() + 1, nullptr);
  for (const TraceEvent& ev : events) {
    if (ev.seq == 0 || ev.seq >= by_seq.size())
      return invalid_path("trace seq out of range");
    by_seq[ev.seq] = &ev;
  }

  // Rendezvous hops are recognizable by the kRts leg that shares the send
  // op's seq as its cause.
  std::unordered_set<std::uint64_t> rts_causes;
  for (const TraceEvent& ev : events)
    if (ev.kind == TraceEventKind::kRts && ev.cause != 0)
      rts_causes.insert(ev.cause);

  // Terminal: the op completion that defines the makespan.
  const TraceEvent* terminal = nullptr;
  for (const TraceEvent& ev : events) {
    if (!is_op_event(ev.kind)) continue;
    if (terminal == nullptr || ev.t1 > terminal->t1 ||
        (ev.t1 == terminal->t1 && ev.seq < terminal->seq))
      terminal = &ev;
  }
  if (terminal == nullptr) return invalid_path("trace holds no op events");

  CriticalPath path;
  path.makespan = terminal->t1;

  const TraceEvent* cur = terminal;
  while (true) {
    PathStep step;
    step.seq = cur->seq;
    step.kind = cur->kind;
    step.rank = cur->rank;
    step.op = cur->op;
    step.t0 = cur->t0;
    step.t1 = cur->t1;
    step.compute = cur->t1 - cur->t0 - cur->stall;
    step.blackout = cur->stall;

    const std::uint64_t c = cur->cause;
    if (c == 0) {
      // Head of the chain: anything before the first event is unexplained
      // (the rank simply started then, or an injected outage held it).
      step.wait = cur->t0;
      path.steps.push_back(step);
      break;
    }
    if (c >= cur->seq) return invalid_path("cause link not strictly earlier");
    const TraceEvent* pred = by_seq[c];
    if (pred == nullptr) return invalid_path("cause link resolves to no event");

    if (pred->kind == TraceEventKind::kMsgInject) {
      // Cross-rank hop. The flight spans the gap from the sender's op end
      // (== inject t0) to this receive's start: wire time, FIFO clamping,
      // and any rendezvous handshake, all charged as network to the
      // receiving (waiting) rank.
      const TimeNs gap = cur->t0 - pred->t0;
      if (gap < 0) return invalid_path("negative hop gap");
      step.network = gap;
      ++path.hops;
      const bool rendezvous = pred->cause != 0 && rts_causes.count(pred->cause) != 0;
      if (rendezvous) {
        ++path.rendezvous_hops;
        path.network_rendezvous += gap;
      } else {
        ++path.eager_hops;
        path.network_eager += gap;
      }
      if (pred->cause == 0) {
        // Externally injected message: no send op behind it; the time before
        // injection is unexplained.
        step.wait = pred->t0;
        path.steps.push_back(step);
        break;
      }
      const TraceEvent* sender = by_seq[pred->cause];
      if (sender == nullptr || !is_op_event(sender->kind))
        return invalid_path("inject cause is not a send op");
      path.steps.push_back(step);
      cur = sender;
      continue;
    }

    if (!is_op_event(pred->kind))
      return invalid_path("op cause is neither an op nor an inject");
    // Same-rank predecessor: the gap (usually zero) is NIC serialization or
    // a late-post rendezvous handshake before sends/recvs, and an injected
    // outage (no trace record) before calcs.
    const TimeNs gap = cur->t0 - pred->t1;
    if (gap < 0) return invalid_path("negative same-rank gap");
    if (cur->kind == TraceEventKind::kCalc)
      step.wait = gap;
    else
      step.network = gap;
    path.steps.push_back(step);
    cur = pred;
  }

  std::reverse(path.steps.begin(), path.steps.end());

  std::map<sim::RankId, RankPathShare> by_rank;
  for (const PathStep& s : path.steps) {
    path.compute += s.compute;
    path.blackout += s.blackout;
    path.network += s.network;
    path.wait += s.wait;
    RankPathShare& r = by_rank[s.rank];
    r.rank = s.rank;
    r.compute += s.compute;
    r.blackout += s.blackout;
    r.network += s.network;
    r.wait += s.wait;
    ++r.steps;
  }
  path.per_rank.reserve(by_rank.size());
  for (const auto& [rank, share] : by_rank) path.per_rank.push_back(share);
  path.ranks_visited = static_cast<std::int64_t>(by_rank.size());

  if (path.classified() != path.makespan)
    return invalid_path("classified time does not telescope to the makespan");
  path.valid = true;
  return path;
}

double direct_kappa(const CriticalPath& perturbed, const CriticalPath& base,
                    TimeNs single_rank_blackout) {
  if (!perturbed.valid || !base.valid || single_rank_blackout <= 0) return 0;
  const double inflation =
      static_cast<double>((perturbed.blackout + perturbed.network + perturbed.wait) -
                          (base.blackout + base.network + base.wait));
  return inflation / static_cast<double>(single_rank_blackout);
}

void publish_critical_path(const CriticalPath& path, MetricsRegistry& registry,
                           const std::string& prefix) {
  registry.set_gauge(prefix + ".valid", path.valid ? 1 : 0);
  if (!path.valid) return;
  registry.set_gauge(prefix + ".makespan_ns", static_cast<double>(path.makespan));
  registry.set_gauge(prefix + ".compute_ns", static_cast<double>(path.compute));
  registry.set_gauge(prefix + ".blackout_ns", static_cast<double>(path.blackout));
  registry.set_gauge(prefix + ".network_ns", static_cast<double>(path.network));
  registry.set_gauge(prefix + ".wait_ns", static_cast<double>(path.wait));
  registry.set_gauge(prefix + ".share_compute", path.share_compute());
  registry.set_gauge(prefix + ".share_blackout", path.share_blackout());
  registry.set_gauge(prefix + ".share_network", path.share_network());
  registry.set_gauge(prefix + ".share_wait", path.share_wait());
  registry.set_gauge(prefix + ".hops", static_cast<double>(path.hops));
  registry.set_gauge(prefix + ".eager_hops", static_cast<double>(path.eager_hops));
  registry.set_gauge(prefix + ".rendezvous_hops",
                     static_cast<double>(path.rendezvous_hops));
  registry.set_gauge(prefix + ".network_eager_ns",
                     static_cast<double>(path.network_eager));
  registry.set_gauge(prefix + ".network_rendezvous_ns",
                     static_cast<double>(path.network_rendezvous));
  registry.set_gauge(prefix + ".steps", static_cast<double>(path.steps.size()));
  registry.set_gauge(prefix + ".ranks_visited",
                     static_cast<double>(path.ranks_visited));
}

void write_critical_path_json(const CriticalPath& path, std::ostream& out) {
  out << "{\n\"schema\":\"chksim-critical-path-v1\",\n";
  out << "\"valid\":" << (path.valid ? "true" : "false") << ",\n";
  out << "\"error\":\"" << json_escape(path.error) << "\",\n";
  out << "\"makespan_ns\":" << path.makespan << ",\n";
  out << "\"segments\":{\"compute_ns\":" << path.compute
      << ",\"blackout_ns\":" << path.blackout
      << ",\"network_ns\":" << path.network << ",\"wait_ns\":" << path.wait
      << "},\n";
  out << "\"shares\":{\"compute\":" << fixed6(path.share_compute())
      << ",\"blackout\":" << fixed6(path.share_blackout())
      << ",\"network\":" << fixed6(path.share_network())
      << ",\"wait\":" << fixed6(path.share_wait()) << "},\n";
  out << "\"hops\":{\"total\":" << path.hops << ",\"eager\":" << path.eager_hops
      << ",\"rendezvous\":" << path.rendezvous_hops
      << ",\"network_eager_ns\":" << path.network_eager
      << ",\"network_rendezvous_ns\":" << path.network_rendezvous << "},\n";
  out << "\"ranks_visited\":" << path.ranks_visited << ",\n";
  out << "\"per_rank\":[";
  for (std::size_t i = 0; i < path.per_rank.size(); ++i) {
    const RankPathShare& r = path.per_rank[i];
    if (i != 0) out << ",";
    out << "\n{\"rank\":" << r.rank << ",\"compute_ns\":" << r.compute
        << ",\"blackout_ns\":" << r.blackout << ",\"network_ns\":" << r.network
        << ",\"wait_ns\":" << r.wait << ",\"steps\":" << r.steps << "}";
  }
  out << "\n],\n";
  out << "\"path\":[";
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const PathStep& s = path.steps[i];
    if (i != 0) out << ",";
    out << "\n{\"seq\":" << s.seq << ",\"kind\":\""
        << trace_event_kind_name(s.kind) << "\",\"rank\":" << s.rank
        << ",\"op\":";
    if (s.op == sim::kInvalidOp)
      out << -1;
    else
      out << s.op;
    out << ",\"t0_ns\":" << s.t0 << ",\"t1_ns\":" << s.t1
        << ",\"compute_ns\":" << s.compute << ",\"blackout_ns\":" << s.blackout
        << ",\"network_ns\":" << s.network << ",\"wait_ns\":" << s.wait << "}";
  }
  out << "\n]\n}\n";
}

bool write_critical_path_json_file(const CriticalPath& path,
                                   const std::string& path_out,
                                   std::string* error) {
  std::ofstream out(path_out, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path_out + " for writing";
    return false;
  }
  write_critical_path_json(path, out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path_out + " failed";
    return false;
  }
  return true;
}

}  // namespace chksim::obs
