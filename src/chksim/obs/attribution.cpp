#include "chksim/obs/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace chksim::obs {

namespace {

/// The simulated instant at which an event affects its rank's delay ledger:
/// op stalls have accrued by the op's end, a message snapshot is taken at
/// injection, and a wait is classified when the data becomes available.
TimeNs effect_time(const TraceEvent& ev) {
  return ev.kind == TraceEventKind::kMsgInject ? ev.t0 : ev.t1;
}

struct Ledger {
  TimeNs blk = 0;   ///< Own blackout stall accrued so far.
  TimeNs cont = 0;  ///< Subset of stall inside contention intervals.
  TimeNs prop = 0;  ///< Delay absorbed from upstream so far.
};

/// dp * num / den without intermediate overflow (all operands are
/// non-negative TimeNs).
TimeNs proportion(TimeNs dp, TimeNs num, TimeNs den) {
  return static_cast<TimeNs>(static_cast<__int128>(dp) * num / den);
}

}  // namespace

StorageContentionMap::StorageContentionMap(int ranks)
    : per_rank_(static_cast<std::size_t>(ranks < 0 ? 0 : ranks)) {}

void StorageContentionMap::add_range(sim::RankId begin, sim::RankId end,
                                     const std::vector<sim::Interval>& intervals) {
  if (intervals.empty()) return;
  if (begin < 0 || end > static_cast<sim::RankId>(per_rank_.size()) || begin >= end)
    return;
  // Normalise once: sort and merge the incoming list.
  std::vector<sim::Interval> merged = intervals;
  std::sort(merged.begin(), merged.end(),
            [](const sim::Interval& a, const sim::Interval& b) {
              return a.begin < b.begin;
            });
  std::size_t w = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].end <= merged[i].begin) continue;
    if (w > 0 && merged[i].begin <= merged[w - 1].end) {
      merged[w - 1].end = std::max(merged[w - 1].end, merged[i].end);
    } else {
      merged[w++] = merged[i];
    }
  }
  merged.resize(w);
  if (merged.empty()) return;
  empty_ = false;
  for (sim::RankId r = begin; r < end; ++r) {
    std::vector<sim::Interval>& dst = per_rank_[static_cast<std::size_t>(r)];
    if (dst.empty()) {
      dst = merged;
      continue;
    }
    // Merge the two sorted disjoint lists.
    std::vector<sim::Interval> both;
    both.reserve(dst.size() + merged.size());
    both.insert(both.end(), dst.begin(), dst.end());
    both.insert(both.end(), merged.begin(), merged.end());
    std::sort(both.begin(), both.end(),
              [](const sim::Interval& a, const sim::Interval& b) {
                return a.begin < b.begin;
              });
    std::size_t k = 0;
    for (std::size_t i = 0; i < both.size(); ++i) {
      if (k > 0 && both[i].begin <= both[k - 1].end) {
        both[k - 1].end = std::max(both[k - 1].end, both[i].end);
      } else {
        both[k++] = both[i];
      }
    }
    both.resize(k);
    dst = std::move(both);
  }
}

TimeNs StorageContentionMap::overlap(sim::RankId rank, TimeNs t0, TimeNs t1) const {
  if (rank < 0 || rank >= static_cast<sim::RankId>(per_rank_.size()) || t1 <= t0)
    return 0;
  const std::vector<sim::Interval>& list = per_rank_[static_cast<std::size_t>(rank)];
  // First interval that could overlap: the one before the first with
  // begin > t0, then walk forward.
  auto it = std::upper_bound(list.begin(), list.end(), t0,
                             [](TimeNs t, const sim::Interval& iv) {
                               return t < iv.begin;
                             });
  if (it != list.begin()) --it;
  TimeNs total = 0;
  for (; it != list.end() && it->begin < t1; ++it) {
    const TimeNs lo = std::max(it->begin, t0);
    const TimeNs hi = std::min(it->end, t1);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

double WaitAttribution::share_sender_blackout() const {
  return total.recv_wait > 0
             ? static_cast<double>(total.sender_blackout) /
                   static_cast<double>(total.recv_wait)
             : 0.0;
}

double WaitAttribution::share_storage_contention() const {
  return total.recv_wait > 0
             ? static_cast<double>(total.storage_contention) /
                   static_cast<double>(total.recv_wait)
             : 0.0;
}

double WaitAttribution::share_propagated() const {
  return total.recv_wait > 0 ? static_cast<double>(total.propagated) /
                                   static_cast<double>(total.recv_wait)
                             : 0.0;
}

double WaitAttribution::share_network_contention() const {
  return total.recv_wait > 0 ? static_cast<double>(total.network_contention) /
                                   static_cast<double>(total.recv_wait)
                             : 0.0;
}

double WaitAttribution::share_network() const {
  return total.recv_wait > 0 ? static_cast<double>(total.network) /
                                   static_cast<double>(total.recv_wait)
                             : 0.0;
}

std::string WaitAttribution::to_string() const {
  char buf[320];
  if (total.network_contention > 0) {
    // Flow-mode runs: all five categories. (Analytic runs never reach this
    // branch, so their summary bytes are unchanged.)
    std::snprintf(
        buf, sizeof buf,
        "recv_wait %lld ns over %lld wait(s): sender_blackout %.1f%%, "
        "storage_contention %.1f%%, propagated %.1f%%, "
        "network_contention %.1f%%, network %.1f%%%s",
        static_cast<long long>(total.recv_wait),
        static_cast<long long>(total.waits), 100.0 * share_sender_blackout(),
        100.0 * share_storage_contention(), 100.0 * share_propagated(),
        100.0 * share_network_contention(), 100.0 * share_network(),
        complete ? "" : " (incomplete trace)");
    return buf;
  }
  if (total.storage_contention > 0) {
    std::snprintf(
        buf, sizeof buf,
        "recv_wait %lld ns over %lld wait(s): sender_blackout %.1f%%, "
        "storage_contention %.1f%%, propagated %.1f%%, network %.1f%%%s",
        static_cast<long long>(total.recv_wait),
        static_cast<long long>(total.waits), 100.0 * share_sender_blackout(),
        100.0 * share_storage_contention(), 100.0 * share_propagated(),
        100.0 * share_network(), complete ? "" : " (incomplete trace)");
  } else {
    std::snprintf(
        buf, sizeof buf,
        "recv_wait %lld ns over %lld wait(s): sender_blackout %.1f%%, "
        "propagated %.1f%%, network %.1f%%%s",
        static_cast<long long>(total.recv_wait),
        static_cast<long long>(total.waits), 100.0 * share_sender_blackout(),
        100.0 * share_propagated(), 100.0 * share_network(),
        complete ? "" : " (incomplete trace)");
  }
  return buf;
}

WaitAttribution attribute_waits(const EventTracer& tracer,
                                const StorageContentionMap* storage) {
  if (storage != nullptr && storage->empty()) storage = nullptr;
  WaitAttribution out;
  out.ranks.resize(static_cast<std::size_t>(tracer.ranks()));
  out.complete = tracer.dropped() == 0;

  std::vector<TraceEvent> evs = tracer.events();
  std::sort(evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
    const TimeNs ta = effect_time(a), tb = effect_time(b);
    if (ta != tb) return ta < tb;
    return a.seq < b.seq;  // emission order resolves simultaneous effects
  });

  // Inject-time snapshot of the sender's ledger plus the message's own
  // in-flight contention (the amended kMsgInject stall; zero in analytic
  // runs, where transit is closed-form).
  struct InjectSnap {
    Ledger ledger;
    TimeNs contention = 0;
  };
  std::vector<Ledger> ledger(static_cast<std::size_t>(tracer.ranks()));
  std::unordered_map<std::uint64_t, InjectSnap> snapshots;  // by inject seq

  for (const TraceEvent& ev : evs) {
    const std::size_t r = static_cast<std::size_t>(ev.rank);
    switch (ev.kind) {
      case TraceEventKind::kCalc:
      case TraceEventKind::kSendOp:
      case TraceEventKind::kRecvOp: {
        // The part of the stall inside the rank's contention intervals was
        // caused by other tenants of the shared storage; the rest is the
        // protocol's own blackout.
        TimeNs cont_part = 0;
        if (storage != nullptr && ev.stall > 0)
          cont_part = std::min(ev.stall, storage->overlap(ev.rank, ev.t0, ev.t1));
        ledger[r].blk = saturating_add(ledger[r].blk, ev.stall - cont_part);
        ledger[r].cont = saturating_add(ledger[r].cont, cont_part);
        break;
      }
      case TraceEventKind::kMsgInject:
        snapshots.emplace(ev.seq,
                          InjectSnap{ledger[r], ev.stall > 0 ? ev.stall : 0});
        break;
      case TraceEventKind::kRecvWait: {
        const TimeNs wait = ev.t1 - ev.t0;
        RankWaitAttribution& att = out.ranks[r];
        att.recv_wait = saturating_add(att.recv_wait, wait);
        ++att.waits;

        TimeNs sender_blackout = 0;
        TimeNs storage_contention = 0;
        TimeNs propagated = 0;
        TimeNs network_contention = 0;
        const auto snap = snapshots.find(ev.ref);
        if (snap != snapshots.end()) {
          const Ledger& s = snap->second.ledger;
          const TimeNs carried =
              saturating_add(saturating_add(s.blk, s.cont), s.prop);
          const TimeNs delay_part = std::min(wait, carried);
          if (carried > 0) {
            sender_blackout = proportion(delay_part, s.blk, carried);
            storage_contention = proportion(delay_part, s.cont, carried);
            propagated = delay_part - sender_blackout - storage_contention;
          }
          // What the sender's lateness does not explain may be the message
          // itself crawling through a shared fabric (flow mode): up to the
          // message's realized-minus-uncontended stall.
          network_contention =
              std::min(wait - delay_part, snap->second.contention);
          snapshots.erase(snap);  // each message matches exactly once
        } else if (ev.ref != 0) {
          ++out.unmatched_waits;  // inject record lost to ring wrap
        }
        att.sender_blackout = saturating_add(att.sender_blackout, sender_blackout);
        att.storage_contention =
            saturating_add(att.storage_contention, storage_contention);
        att.propagated = saturating_add(att.propagated, propagated);
        att.network_contention =
            saturating_add(att.network_contention, network_contention);
        att.network = saturating_add(att.network,
                                     wait - sender_blackout - storage_contention -
                                         propagated - network_contention);
        // Everything that delayed this receive beyond the delay-free schedule
        // — including the message's own contention — is delay this rank now
        // carries and can propagate downstream.
        ledger[r].prop = saturating_add(
            ledger[r].prop, sender_blackout + storage_contention + propagated +
                                network_contention);
        break;
      }
      case TraceEventKind::kMsgDeliver:
      case TraceEventKind::kRts:
      case TraceEventKind::kCts:
      case TraceEventKind::kBlackout:
      case TraceEventKind::kFailure:
      case TraceEventKind::kRollback:
      case TraceEventKind::kReplay:
        break;  // visualization-only events
    }
  }

  for (const RankWaitAttribution& r : out.ranks) {
    out.total.recv_wait = saturating_add(out.total.recv_wait, r.recv_wait);
    out.total.sender_blackout =
        saturating_add(out.total.sender_blackout, r.sender_blackout);
    out.total.storage_contention =
        saturating_add(out.total.storage_contention, r.storage_contention);
    out.total.propagated = saturating_add(out.total.propagated, r.propagated);
    out.total.network_contention =
        saturating_add(out.total.network_contention, r.network_contention);
    out.total.network = saturating_add(out.total.network, r.network);
    out.total.waits += r.waits;
  }
  if (out.unmatched_waits > 0) out.complete = false;
  return out;
}

}  // namespace chksim::obs
