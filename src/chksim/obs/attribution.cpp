#include "chksim/obs/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace chksim::obs {

namespace {

/// The simulated instant at which an event affects its rank's delay ledger:
/// op stalls have accrued by the op's end, a message snapshot is taken at
/// injection, and a wait is classified when the data becomes available.
TimeNs effect_time(const TraceEvent& ev) {
  return ev.kind == TraceEventKind::kMsgInject ? ev.t0 : ev.t1;
}

struct Ledger {
  TimeNs blk = 0;   ///< Own blackout stall accrued so far.
  TimeNs prop = 0;  ///< Delay absorbed from upstream so far.
};

/// dp * num / den without intermediate overflow (all operands are
/// non-negative TimeNs).
TimeNs proportion(TimeNs dp, TimeNs num, TimeNs den) {
  return static_cast<TimeNs>(static_cast<__int128>(dp) * num / den);
}

}  // namespace

double WaitAttribution::share_sender_blackout() const {
  return total.recv_wait > 0
             ? static_cast<double>(total.sender_blackout) /
                   static_cast<double>(total.recv_wait)
             : 0.0;
}

double WaitAttribution::share_propagated() const {
  return total.recv_wait > 0 ? static_cast<double>(total.propagated) /
                                   static_cast<double>(total.recv_wait)
                             : 0.0;
}

double WaitAttribution::share_network() const {
  return total.recv_wait > 0 ? static_cast<double>(total.network) /
                                   static_cast<double>(total.recv_wait)
                             : 0.0;
}

std::string WaitAttribution::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "recv_wait %lld ns over %lld wait(s): sender_blackout %.1f%%, "
                "propagated %.1f%%, network %.1f%%%s",
                static_cast<long long>(total.recv_wait),
                static_cast<long long>(total.waits),
                100.0 * share_sender_blackout(), 100.0 * share_propagated(),
                100.0 * share_network(), complete ? "" : " (incomplete trace)");
  return buf;
}

WaitAttribution attribute_waits(const EventTracer& tracer) {
  WaitAttribution out;
  out.ranks.resize(static_cast<std::size_t>(tracer.ranks()));
  out.complete = tracer.dropped() == 0;

  std::vector<TraceEvent> evs = tracer.events();
  std::sort(evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
    const TimeNs ta = effect_time(a), tb = effect_time(b);
    if (ta != tb) return ta < tb;
    return a.seq < b.seq;  // emission order resolves simultaneous effects
  });

  std::vector<Ledger> ledger(static_cast<std::size_t>(tracer.ranks()));
  std::unordered_map<std::uint64_t, Ledger> snapshots;  // inject seq -> ledger

  for (const TraceEvent& ev : evs) {
    const std::size_t r = static_cast<std::size_t>(ev.rank);
    switch (ev.kind) {
      case TraceEventKind::kCalc:
      case TraceEventKind::kSendOp:
      case TraceEventKind::kRecvOp:
        ledger[r].blk = saturating_add(ledger[r].blk, ev.stall);
        break;
      case TraceEventKind::kMsgInject:
        snapshots.emplace(ev.seq, ledger[r]);
        break;
      case TraceEventKind::kRecvWait: {
        const TimeNs wait = ev.t1 - ev.t0;
        RankWaitAttribution& att = out.ranks[r];
        att.recv_wait = saturating_add(att.recv_wait, wait);
        ++att.waits;

        TimeNs sender_blackout = 0;
        TimeNs propagated = 0;
        const auto snap = snapshots.find(ev.ref);
        if (snap != snapshots.end()) {
          const Ledger& s = snap->second;
          const TimeNs carried = saturating_add(s.blk, s.prop);
          const TimeNs delay_part = std::min(wait, carried);
          if (carried > 0) {
            sender_blackout = proportion(delay_part, s.blk, carried);
            propagated = delay_part - sender_blackout;
          }
          snapshots.erase(snap);  // each message matches exactly once
        } else if (ev.ref != 0) {
          ++out.unmatched_waits;  // inject record lost to ring wrap
        }
        att.sender_blackout = saturating_add(att.sender_blackout, sender_blackout);
        att.propagated = saturating_add(att.propagated, propagated);
        att.network = saturating_add(att.network, wait - sender_blackout - propagated);
        ledger[r].prop =
            saturating_add(ledger[r].prop, sender_blackout + propagated);
        break;
      }
      case TraceEventKind::kMsgDeliver:
      case TraceEventKind::kRts:
      case TraceEventKind::kCts:
      case TraceEventKind::kBlackout:
      case TraceEventKind::kFailure:
      case TraceEventKind::kRollback:
      case TraceEventKind::kReplay:
        break;  // visualization-only events
    }
  }

  for (const RankWaitAttribution& r : out.ranks) {
    out.total.recv_wait = saturating_add(out.total.recv_wait, r.recv_wait);
    out.total.sender_blackout =
        saturating_add(out.total.sender_blackout, r.sender_blackout);
    out.total.propagated = saturating_add(out.total.propagated, r.propagated);
    out.total.network = saturating_add(out.total.network, r.network);
    out.total.waits += r.waits;
  }
  if (out.unmatched_waits > 0) out.complete = false;
  return out;
}

}  // namespace chksim::obs
