// Causal critical-path extraction: which chain of events set the makespan?
//
// Wait-state attribution (attribution.hpp) answers the aggregate question —
// how much time each rank lost and to what. This pass answers the sharper
// one: starting from the makespan-defining op completion, walk the recorded
// causality links backward to t = 0 and name the exact alternating chain of
// op executions and message flights whose lengths sum to the makespan.
//
// The walk uses TraceEvent::cause (the binding start constraint stamped by
// the engine): an op event points at the same-rank predecessor that held the
// CPU/NIC, or — for data-bound receives — at the matched message's
// kMsgInject, which in turn points at its kSendOp on the sender. Every
// nanosecond of [0, makespan) is classified into exactly one of:
//
//   compute  — op work time on the path (t1 - t0 - stall of path ops);
//   blackout — checkpoint/noise stall absorbed by path ops (their `stall`);
//   network  — message flight time (inject -> receive start, including FIFO
//              clamping and rendezvous handshakes), NIC serialization gaps
//              before path sends, and late-post rendezvous handshakes;
//   wait     — gaps with no recorded cause: injected outages, and the span
//              before the chain's first event when it starts after t = 0.
//
// Invariant (tested): compute + blackout + network + wait == makespan to the
// nanosecond — the walk telescopes, every gap between consecutive path
// events is classified, and the head gap reaches back to t = 0.
//
// The extraction requires a complete trace (EventTracer::dropped() == 0): a
// wrapped ring cannot resolve cause links, so the result is marked invalid
// rather than silently wrong.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chksim/obs/tracer.hpp"

namespace chksim::obs {

class MetricsRegistry;

/// One event on the critical path, with its classified time contributions.
/// `compute`/`blackout` come from the event's own interval; `network`/`wait`
/// classify the gap between the predecessor's end and this event's begin
/// (attributed to this event's rank — the side that was kept waiting).
struct PathStep {
  std::uint64_t seq = 0;
  TraceEventKind kind = TraceEventKind::kCalc;
  sim::RankId rank = -1;
  sim::OpIndex op = sim::kInvalidOp;
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  TimeNs compute = 0;
  TimeNs blackout = 0;
  TimeNs network = 0;
  TimeNs wait = 0;
};

/// Path time spent on one rank (sum over that rank's path steps).
struct RankPathShare {
  sim::RankId rank = -1;
  TimeNs compute = 0;
  TimeNs blackout = 0;
  TimeNs network = 0;
  TimeNs wait = 0;
  std::int64_t steps = 0;
};

struct CriticalPath {
  /// False when the path could not be extracted (dropped events, empty
  /// trace, broken cause link); `error` says why and the sums are zero.
  bool valid = false;
  std::string error;

  TimeNs makespan = 0;  ///< t1 of the terminal op event.
  TimeNs compute = 0;
  TimeNs blackout = 0;
  TimeNs network = 0;
  TimeNs wait = 0;

  std::int64_t hops = 0;             ///< Message hops (rank boundaries crossed).
  std::int64_t eager_hops = 0;       ///< Hops below the rendezvous threshold.
  std::int64_t rendezvous_hops = 0;  ///< Hops that used RTS/CTS.
  TimeNs network_eager = 0;          ///< Network time on eager hops.
  TimeNs network_rendezvous = 0;     ///< Network time on rendezvous hops.
  std::int64_t ranks_visited = 0;    ///< Distinct ranks among path steps.

  std::vector<PathStep> steps;          ///< Chronological (t0 ascending).
  std::vector<RankPathShare> per_rank;  ///< Rank ascending, visited ranks only.

  /// Classified time, == makespan when valid.
  TimeNs classified() const { return compute + blackout + network + wait; }

  double share_compute() const;
  double share_blackout() const;
  double share_network() const;
  double share_wait() const;

  /// Compact one-line summary for logs and examples.
  std::string to_string() const;
};

/// Extract the critical path from a recorded trace. The trace must come from
/// a single finished run with this (unbounded) tracer as the sink.
CriticalPath extract_critical_path(const EventTracer& tracer);

/// Directly measured propagation factor κ: how many seconds of makespan the
/// critical path gained per second of single-rank blackout. Both paths must
/// be valid and come from the same program (base = undisturbed run,
/// perturbed = same run with `single_rank_blackout` ns of blackout injected
/// on one rank). Because path lengths equal makespans exactly,
///
///   κ_direct = (Δblackout + Δnetwork + Δwait) / single_rank_blackout
///
/// is the model's κ = delay / blackout with the path's (small) compute shift
/// removed — measured from the causal chain instead of fitted. Returns 0
/// when inputs are invalid or the blackout is 0.
double direct_kappa(const CriticalPath& perturbed, const CriticalPath& base,
                    TimeNs single_rank_blackout);

/// Publish the path summary into a registry under `prefix` ("critical_path"
/// by default): gauges makespan_ns, compute_ns, blackout_ns, network_ns,
/// wait_ns, the four shares, hops (total/eager/rendezvous), steps,
/// ranks_visited, and valid (0/1). Deterministic for a deterministic trace.
void publish_critical_path(const CriticalPath& path, MetricsRegistry& registry,
                           const std::string& prefix = "critical_path");

/// Write the full blame report as deterministic JSON (schema
/// "chksim-critical-path-v1"): segment sums, shares, per-rank composition,
/// and the step-by-step path.
void write_critical_path_json(const CriticalPath& path, std::ostream& out);

/// write_critical_path_json to a file; false (and *error) on I/O failure.
bool write_critical_path_json_file(const CriticalPath& path,
                                   const std::string& path_out,
                                   std::string* error = nullptr);

}  // namespace chksim::obs
