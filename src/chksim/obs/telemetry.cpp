#include "chksim/obs/telemetry.hpp"

#include <fstream>
#include <sstream>

#include "chksim/obs/metrics.hpp"
#include "chksim/obs/tracer.hpp"

namespace chksim::obs {

std::int64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream is(line.substr(6));
      std::int64_t kb = 0;
      is >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

PhaseTimer::PhaseTimer(MetricsRegistry* registry, const std::string& name)
    : registry_(registry),
      name_(name),
      start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() { stop(); }

void PhaseTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (registry_ == nullptr) return;
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start_)
          .count();
  registry_->stats("telemetry.phase." + name_ + "_ms").add(ms);
}

void publish_process_telemetry(MetricsRegistry& registry) {
  registry.set_gauge("telemetry.peak_rss_bytes",
                     static_cast<double>(peak_rss_bytes()));
}

void publish_tracer_stats(const EventTracer& tracer, MetricsRegistry& registry,
                          const std::string& prefix) {
  registry.add_counter(prefix + ".events_recorded",
                       static_cast<std::int64_t>(tracer.recorded()));
  registry.add_counter(prefix + ".events_dropped",
                       static_cast<std::int64_t>(tracer.dropped()));
  registry.set_gauge(prefix + ".capacity_per_rank",
                     static_cast<double>(tracer.capacity_per_rank()));
  registry.set_gauge(prefix + ".complete", tracer.dropped() == 0 ? 1.0 : 0.0);
}

}  // namespace chksim::obs
