#include "chksim/obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "chksim/obs/critical_path.hpp"

namespace chksim::obs {

namespace {

// Track-group layout (see header).
constexpr int kPidOps = 0;
constexpr int kPidWaits = 1;
constexpr int kPidNetwork = 2;
constexpr int kPidBlackouts = 3;
constexpr int kPidFailures = 4;

constexpr const char* pid_name(int pid) {
  switch (pid) {
    case kPidOps: return "ops";
    case kPidWaits: return "waits";
    case kPidNetwork: return "network";
    case kPidBlackouts: return "blackouts";
    case kPidFailures: return "failures";
  }
  return "?";
}

int pid_of(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCalc:
    case TraceEventKind::kSendOp:
    case TraceEventKind::kRecvOp:
      return kPidOps;
    case TraceEventKind::kRecvWait:
      return kPidWaits;
    case TraceEventKind::kMsgInject:
    case TraceEventKind::kMsgDeliver:
    case TraceEventKind::kRts:
    case TraceEventKind::kCts:
      return kPidNetwork;
    case TraceEventKind::kBlackout:
      return kPidBlackouts;
    case TraceEventKind::kFailure:
    case TraceEventKind::kRollback:
    case TraceEventKind::kReplay:
      return kPidFailures;
  }
  return kPidOps;
}

/// Microsecond timestamp with fixed 3 decimals (ns resolution), so output
/// is byte-stable.
std::string us(TimeNs t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

std::vector<TraceEvent> sorted_for_export(const EventTracer& tracer) {
  std::vector<TraceEvent> evs = tracer.events();
  std::sort(evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    return a.seq < b.seq;
  });
  return evs;
}

void warn_if_dropped(const EventTracer& tracer, const char* what) {
  if (tracer.dropped() == 0) return;
  std::fprintf(stderr,
               "warning: %s is incomplete — the tracer's bounded ring dropped "
               "%llu of %llu events; use an unbounded EventTracer for "
               "complete traces\n",
               what, static_cast<unsigned long long>(tracer.dropped()),
               static_cast<unsigned long long>(tracer.recorded()));
}

}  // namespace

void write_chrome_trace(const EventTracer& tracer, std::ostream& out) {
  write_chrome_trace(tracer, out, nullptr);
}

void write_chrome_trace(const EventTracer& tracer, std::ostream& out,
                        const CriticalPath* path) {
  const std::vector<TraceEvent> evs = sorted_for_export(tracer);

  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  // Metadata: name the process groups and every (group, rank) track used.
  std::set<std::pair<int, sim::RankId>> tracks;
  bool any_failures = false;
  for (const TraceEvent& ev : evs) {
    const int pid = pid_of(ev.kind);
    if (pid == kPidFailures) any_failures = true;
    tracks.insert({pid, ev.rank});
  }
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  // The failures group appears only in traces that contain failure events,
  // keeping failure-free exports byte-identical to earlier versions.
  for (int pid : {kPidOps, kPidWaits, kPidNetwork, kPidBlackouts}) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << pid_name(pid) << "\"}}";
  }
  if (any_failures) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kPidFailures
        << ",\"tid\":0,\"args\":{\"name\":\"" << pid_name(kPidFailures) << "\"}}";
  }
  for (const auto& [pid, rank] : tracks) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << rank << ",\"args\":{\"name\":\"rank " << rank << "\"}}";
  }

  for (const TraceEvent& ev : evs) {
    sep();
    const int pid = pid_of(ev.kind);
    const char* name = trace_event_kind_name(ev.kind);
    if (ev.kind == TraceEventKind::kMsgDeliver) {
      out << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
          << us(ev.t0) << ",\"pid\":" << pid << ",\"tid\":" << ev.rank;
    } else {
      out << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":" << us(ev.t0)
          << ",\"dur\":" << us(ev.t1 - ev.t0) << ",\"pid\":" << pid
          << ",\"tid\":" << ev.rank;
    }
    out << ",\"args\":{\"seq\":" << ev.seq;
    if (ev.ref != 0) out << ",\"ref\":" << ev.ref;
    if (ev.peer >= 0) out << ",\"peer\":" << ev.peer;
    if (ev.op != sim::kInvalidOp) out << ",\"op\":" << ev.op;
    if (ev.tag != 0) out << ",\"tag\":" << ev.tag;
    if (ev.bytes != 0) out << ",\"bytes\":" << ev.bytes;
    if (ev.stall != 0) out << ",\"stall_ns\":" << ev.stall;
    out << "}}";
  }

  // Critical-path flow stitching: one "s"/"f" flow pair per consecutive pair
  // of path steps, anchored inside the source and target op slices (all path
  // steps are op events, so they live in the ops group). Perfetto renders
  // these as clickable arrows along the makespan-defining chain.
  if (path != nullptr && path->valid) {
    for (std::size_t i = 0; i + 1 < path->steps.size(); ++i) {
      const PathStep& a = path->steps[i];
      const PathStep& b = path->steps[i + 1];
      sep();
      out << "{\"name\":\"critical_path\",\"cat\":\"critical_path\",\"ph\":\"s\""
          << ",\"id\":" << i + 1 << ",\"ts\":" << us(a.t0)
          << ",\"pid\":" << kPidOps << ",\"tid\":" << a.rank << "}";
      sep();
      out << "{\"name\":\"critical_path\",\"cat\":\"critical_path\",\"ph\":\"f\""
          << ",\"bp\":\"e\",\"id\":" << i + 1 << ",\"ts\":" << us(b.t0)
          << ",\"pid\":" << kPidOps << ",\"tid\":" << b.rank << "}";
    }
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const EventTracer& tracer, const std::string& path,
                             std::string* error) {
  return write_chrome_trace_file(tracer, path, nullptr, error);
}

bool write_chrome_trace_file(const EventTracer& tracer, const std::string& path,
                             const CriticalPath* cpath, std::string* error) {
  warn_if_dropped(tracer, "chrome trace export");
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  write_chrome_trace(tracer, out, cpath);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void write_trace_csv(const EventTracer& tracer, std::ostream& out) {
  out << "seq,kind,rank,peer,op,tag,bytes,t0_ns,t1_ns,stall_ns,ref,cause\n";
  for (const TraceEvent& ev : sorted_for_export(tracer)) {
    out << ev.seq << ',' << trace_event_kind_name(ev.kind) << ',' << ev.rank
        << ',' << ev.peer << ',';
    if (ev.op == sim::kInvalidOp)
      out << -1;
    else
      out << ev.op;
    out << ',' << ev.tag << ',' << ev.bytes << ',' << ev.t0 << ',' << ev.t1
        << ',' << ev.stall << ',' << ev.ref << ',' << ev.cause << '\n';
  }
}

bool write_trace_csv_file(const EventTracer& tracer, const std::string& path,
                          std::string* error) {
  warn_if_dropped(tracer, "CSV trace export");
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  write_trace_csv(tracer, out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace chksim::obs
