#include "chksim/obs/tracer.hpp"

#include <algorithm>
#include <stdexcept>

namespace chksim::obs {

EventTracer::EventTracer(int ranks, std::size_t capacity_per_rank)
    : capacity_(capacity_per_rank) {
  if (ranks <= 0) throw std::invalid_argument("EventTracer needs ranks > 0");
  rings_.resize(static_cast<std::size_t>(ranks));
}

std::uint64_t EventTracer::record(TraceEvent ev) {
  if (ev.rank < 0 || ev.rank >= ranks())
    throw std::out_of_range("EventTracer: event rank outside [0, ranks)");
  ev.seq = next_seq_++;
  Ring& ring = rings_[static_cast<std::size_t>(ev.rank)];
  if (capacity_ == 0 || ring.buf.size() < capacity_) {
    ring.buf.push_back(ev);
  } else {
    ring.buf[ring.head] = ev;
    ring.head = (ring.head + 1) % capacity_;
    ring.full = true;
    ++dropped_;
  }
  return ev.seq;
}

void EventTracer::amend(std::uint64_t seq, sim::RankId rank, TimeNs t1,
                        TimeNs stall) {
  if (rank < 0 || rank >= ranks() || seq == 0) return;
  Ring& ring = rings_[static_cast<std::size_t>(rank)];
  const std::size_t n = ring.buf.size();
  if (n == 0) return;
  // Logical index i -> physical slot: the ring is seq-ascending starting at
  // head once full, at 0 before that.
  const auto slot = [&](std::size_t i) {
    return ring.full ? (ring.head + i) % n : i;
  };
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ring.buf[slot(mid)].seq < seq)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo == n) return;
  TraceEvent& ev = ring.buf[slot(lo)];
  if (ev.seq != seq) return;  // evicted (ring wrapped past it)
  ev.t1 = t1;
  ev.stall = stall;
}

std::vector<TraceEvent> EventTracer::rank_events(sim::RankId rank) const {
  const Ring& ring = rings_.at(static_cast<std::size_t>(rank));
  std::vector<TraceEvent> out;
  out.reserve(ring.buf.size());
  if (ring.full) {
    out.insert(out.end(), ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.head),
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + static_cast<std::ptrdiff_t>(ring.head));
  } else {
    out = ring.buf;
  }
  return out;
}

std::vector<TraceEvent> EventTracer::events() const {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const Ring& ring : rings_) total += ring.buf.size();
  out.reserve(total);
  for (const Ring& ring : rings_) out.insert(out.end(), ring.buf.begin(), ring.buf.end());
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

void EventTracer::clear() {
  for (Ring& ring : rings_) {
    ring.buf.clear();
    ring.head = 0;
    ring.full = false;
  }
  next_seq_ = 1;
  dropped_ = 0;
}

}  // namespace chksim::obs
