// EventTracer: the standard TraceSink implementation.
//
// Per-rank ring buffers of TraceEvents. With capacity_per_rank == 0 (the
// default) buffers grow without bound and the trace is complete; with a
// bounded capacity the tracer keeps the most recent events per rank and
// counts what it overwrote, so long runs can be traced at fixed memory for
// "flight recorder" style debugging. record() is a bump-pointer store — no
// allocation once a ring reaches capacity — keeping the enabled-tracing
// overhead low.
#pragma once

#include <cstdint>
#include <vector>

#include "chksim/sim/trace.hpp"

namespace chksim::obs {

using sim::TraceEvent;
using sim::TraceEventKind;

class EventTracer final : public sim::TraceSink {
 public:
  /// `ranks` must cover every rank the traced program uses.
  /// `capacity_per_rank` == 0 keeps everything (unbounded).
  explicit EventTracer(int ranks, std::size_t capacity_per_rank = 0);

  std::uint64_t record(TraceEvent ev) override;

  /// Patch a held event's end time and stall in place (flow mode: the
  /// engine amends each kMsgInject's provisional uncontended arrival to the
  /// realized one once the fabric completes the flow, with stall = realized
  /// minus uncontended). Quietly a no-op when the event has been overwritten
  /// by ring wrap-around — the attribution pass already treats such waits as
  /// unmatched. O(log capacity): per-rank rings are seq-ordered.
  void amend(std::uint64_t seq, sim::RankId rank, TimeNs t1,
             TimeNs stall) override;

  int ranks() const { return static_cast<int>(rings_.size()); }
  std::size_t capacity_per_rank() const { return capacity_; }

  /// Total record() calls since construction/clear().
  std::uint64_t recorded() const { return next_seq_ - 1; }
  /// Events overwritten by ring wrap-around; 0 means the trace is complete.
  std::uint64_t dropped() const { return dropped_; }

  /// Events still held for one rank, oldest first.
  std::vector<TraceEvent> rank_events(sim::RankId rank) const;

  /// All held events merged across ranks, in emission (seq) order.
  std::vector<TraceEvent> events() const;

  /// Forget all events and restart seq numbering (buffers keep capacity).
  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;
    std::size_t head = 0;  // index of the oldest event once the ring is full
    bool full = false;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Ring> rings_;
};

}  // namespace chksim::obs
