// Trace exporters.
//
// Chrome trace-event JSON: loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The trace is laid out as four process groups so that
// overlapping intervals never share a track:
//
//   pid 0 "ops"       — calc/send/recv CPU intervals, one track per rank
//   pid 1 "waits"     — recv-wait intervals (post -> data available)
//   pid 2 "network"   — message flights (inject -> arrival), RTS/CTS legs,
//                       and delivery instants
//   pid 3 "blackouts" — checkpoint/noise blackout intervals
//
// CSV: one row per event with raw nanosecond fields, for ad-hoc analysis
// (pandas, gnuplot, spreadsheets).
//
// Both exporters write events sorted by (begin time, seq), so two identical
// runs produce byte-identical files — relied on by the determinism tests.
#pragma once

#include <iosfwd>
#include <string>

#include "chksim/obs/tracer.hpp"

namespace chksim::obs {

struct CriticalPath;

/// Write the whole trace as Chrome trace-event JSON.
void write_chrome_trace(const EventTracer& tracer, std::ostream& out);

/// Same, with the critical path stitched on as Perfetto flow events
/// (ph "s"/"f" pairs linking consecutive path slices), so the
/// makespan-defining chain is clickable in the UI. Passing nullptr (or an
/// invalid path) emits exactly the plain export.
void write_chrome_trace(const EventTracer& tracer, std::ostream& out,
                        const CriticalPath* path);

/// write_chrome_trace to a file; false (and *error) on I/O failure. Warns on
/// stderr when the tracer dropped events (the export is then incomplete).
bool write_chrome_trace_file(const EventTracer& tracer, const std::string& path,
                             std::string* error = nullptr);

/// File variant with flow stitching.
bool write_chrome_trace_file(const EventTracer& tracer, const std::string& path,
                             const CriticalPath* cpath,
                             std::string* error = nullptr);

/// Write the whole trace as CSV (header row + one row per event).
void write_trace_csv(const EventTracer& tracer, std::ostream& out);

/// write_trace_csv to a file; false (and *error) on I/O failure. Warns on
/// stderr when the tracer dropped events.
bool write_trace_csv_file(const EventTracer& tracer, const std::string& path,
                          std::string* error = nullptr);

}  // namespace chksim::obs
