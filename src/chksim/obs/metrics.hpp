// MetricsRegistry: a registry of named counters, gauges, streaming stats,
// and histograms, plus a deterministic machine-readable JSON run-report
// writer.
//
// Naming convention: dotted lowercase paths ("engine.perturbed.makespan_ns",
// "study.slowdown", "recovery.efficiency"). Producers — the study facade,
// the recovery model, benches, examples — publish into one registry per run;
// write_json() emits everything with sorted keys so reports diff cleanly
// across runs and platforms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "chksim/sim/engine.hpp"
#include "chksim/support/stats.hpp"

namespace chksim::obs {

class MetricsRegistry {
 public:
  /// Set a provenance field (string, last write wins). Provenance is the
  /// report's identity block — schema version, code version, build type,
  /// seed — emitted as the first JSON section. Use stamp_provenance() for
  /// the standard fields.
  void set_provenance(const std::string& name, const std::string& value);
  /// Provenance field value ("" if never set).
  std::string provenance(const std::string& name) const;
  bool has_provenance(const std::string& name) const;

  /// Add `delta` to a counter, creating it at 0 on first use.
  void add_counter(const std::string& name, std::int64_t delta = 1);
  /// Current counter value (0 if never touched).
  std::int64_t counter(const std::string& name) const;

  /// Set a gauge to an instantaneous value (last write wins).
  void set_gauge(const std::string& name, double value);
  /// Current gauge value (0 if never set).
  double gauge(const std::string& name) const;
  bool has_gauge(const std::string& name) const;

  /// Streaming accumulator, created on first use. Feed with stats().add(x).
  StreamingStats& stats(const std::string& name);
  const StreamingStats* find_stats(const std::string& name) const;

  /// Fixed-width histogram, created with [lo, hi)/bins on first use (later
  /// calls ignore the shape arguments and return the existing histogram).
  Histogram& histogram(const std::string& name, double lo, double hi, int bins);
  const Histogram* find_histogram(const std::string& name) const;

  /// Fold another registry into this one: counters add, provenance and
  /// gauges last-write-wins (the merged-in registry wins), streaming stats merge via the
  /// parallel Welford update, and same-named histograms (which must share a
  /// shape) accumulate bin-wise. Used by parallel drivers, which give every
  /// task a private registry and merge them in task-index order after the
  /// batch barrier — so the combined registry is byte-identical for any
  /// --jobs value.
  void merge(const MetricsRegistry& other);

  void clear();
  bool empty() const;

  /// Deterministic JSON report: provenance, counters, gauges, stats
  /// summaries, and histogram bin counts, all with sorted keys.
  void write_json(std::ostream& out) const;
  std::string to_json() const;
  /// write_json to a file; false (and *error) on I/O failure.
  bool write_json_file(const std::string& path, std::string* error = nullptr) const;

 private:
  std::map<std::string, std::string> provenance_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, StreamingStats> stats_;
  std::map<std::string, Histogram> histograms_;
};

/// Stamp the standard provenance fields into a registry: schema_version,
/// code_version (git describe at configure time), build_type, and the run's
/// root RNG seed. Every producer that ends in write_json should pass
/// through here exactly once — the campaign cache keys on the same
/// code-version stamp, so a cached report always says which code wrote it.
void stamp_provenance(MetricsRegistry& registry, std::uint64_t seed);

/// Publish a finished engine run into the registry under `prefix`:
/// counters (ops, events, sends/recvs/calcs, bytes), gauges (makespan,
/// completion), and per-rank distributions of cpu_busy / recv_wait /
/// finish_time.
void publish_engine_metrics(const sim::RunResult& result, MetricsRegistry& registry,
                            const std::string& prefix = "engine");

}  // namespace chksim::obs
