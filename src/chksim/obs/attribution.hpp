// Wait-state attribution: why did each rank wait?
//
// The engine's RankStats say *that* a rank spent time blocked in receives
// (recv_wait); this pass says *why*, by walking the recorded message
// causality graph. Every nanosecond of recv_wait is classified as exactly
// one of:
//
//   sender_blackout    — the matched message's sender had itself lost CPU
//                        time to blackouts (checkpoint writes, noise) by
//                        injection time; the immediate sender is the root
//                        cause.
//   storage_contention — the part of the sender's blackout stall that a
//                        StorageContentionMap marks as caused by OTHER
//                        tenants of the shared file system (queue wait +
//                        bandwidth-share stretch in the platform timeline).
//                        Only produced when a map is supplied; zero
//                        otherwise.
//   propagated         — the sender was late because *it* had absorbed delay
//                        from its own upstream senders (transitively); the
//                        root cause is further up the dependency chain. This
//                        is the paper's communication-propagation effect
//                        made visible per rank.
//   network_contention — the matched message itself was slowed by sharing
//                        fabric links with other traffic (flow mode only:
//                        the amended kMsgInject stall, realized minus
//                        uncontended arrival). Zero in analytic runs, where
//                        transit is closed-form and contention-free.
//   network            — everything a delay-free execution would also have
//                        waited for: wire latency, rendezvous round trips,
//                        and structural slack (the sender simply was not
//                        ready yet, with no delay anywhere upstream).
//
// Model: a running per-rank delay ledger, maintained in event-effect order.
// Each rank r carries blk[r] (CPU time its own ops lost to blackouts so
// far), cont[r] (the subset of that stall inside the rank's contention
// intervals), and prop[r] (delay it has absorbed from upstream via waits).
// When a message is injected, the sender's ledger is snapshotted; when a
// receive that waited W matches that message, the delay-caused part is
//
//   dp = min(W, blk + cont + prop)
//
// (had the sender carried no delay, everything it did would have happened
// that much earlier, to first order), split proportionally between
// sender_blackout, storage_contention, and propagated; the remainder W - dp
// is network. The receiver's prop ledger then grows by dp — this is how
// delay propagates transitively through the attribution. Ledgers never
// decay: a rank that catches up through slack simply stops producing waits
// downstream, so the approximation stays consistent.
//
// Invariant (tested): per rank, sender_blackout + storage_contention +
// propagated + network_contention + network == recv_wait == the engine's
// RankStats::recv_wait, to the nanosecond.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/obs/tracer.hpp"
#include "chksim/sim/availability.hpp"

namespace chksim::obs {

/// Per-rank intervals during which a rank's blackout stall is attributable
/// to storage contention from other tenants (the contention tails of the
/// platform timeline's resolved bursts, mapped onto the traced rank space).
/// Intervals are sorted and merged at add time, so overlap queries are a
/// binary search.
class StorageContentionMap {
 public:
  explicit StorageContentionMap(int ranks);

  /// Record contention intervals for every rank in [begin, end). May be
  /// called repeatedly per rank; overlapping additions merge.
  void add_range(sim::RankId begin, sim::RankId end,
                 const std::vector<sim::Interval>& intervals);

  /// Total overlap of [t0, t1) with `rank`'s contention intervals.
  TimeNs overlap(sim::RankId rank, TimeNs t0, TimeNs t1) const;

  bool empty() const { return empty_; }
  int ranks() const { return static_cast<int>(per_rank_.size()); }

 private:
  std::vector<std::vector<sim::Interval>> per_rank_;  ///< Sorted, disjoint.
  bool empty_ = true;
};

struct RankWaitAttribution {
  TimeNs recv_wait = 0;        ///< Total attributed wait (== engine recv_wait).
  TimeNs sender_blackout = 0;  ///< Immediate sender's own blackout delay.
  TimeNs storage_contention = 0;  ///< Sender stall caused by other tenants.
  TimeNs propagated = 0;       ///< Transitive upstream delay.
  TimeNs network_contention = 0;  ///< Message slowed by link sharing (flow).
  TimeNs network = 0;          ///< Wire/rendezvous/structural wait.
  std::int64_t waits = 0;      ///< Number of wait intervals attributed.
};

struct WaitAttribution {
  std::vector<RankWaitAttribution> ranks;
  RankWaitAttribution total;  ///< Sums over all ranks (saturating).

  /// False when the tracer dropped events (bounded ring wrapped): the
  /// classification is then a lower bound, with unmatched waits counted as
  /// network.
  bool complete = true;
  /// Wait events whose kMsgInject record was dropped.
  std::uint64_t unmatched_waits = 0;

  /// Category shares of total.recv_wait, in [0, 1] (0 when there is none).
  double share_sender_blackout() const;
  double share_storage_contention() const;
  double share_propagated() const;
  double share_network_contention() const;
  double share_network() const;

  /// Compact one-line summary for logs and examples (the storage category
  /// appears only when it attributed anything).
  std::string to_string() const;
};

/// Run the attribution pass over a recorded trace. The trace must come from
/// a single finished Engine::run with this tracer as the sink. When
/// `storage` is non-null, each op stall overlapping the rank's contention
/// intervals is classified storage_contention rather than sender_blackout
/// (platform runs); null reproduces the single-job categories exactly.
WaitAttribution attribute_waits(const EventTracer& tracer,
                                const StorageContentionMap* storage = nullptr);

}  // namespace chksim::obs
