// The Study facade: the library's top-level API.
//
// A Study combines a machine model, a workload, and a checkpoint protocol;
// running it produces a Breakdown that separates where the time went —
// the central measurement of the paper's two questions:
//
//   communication: how much of the checkpoint perturbation is amplified (or
//     absorbed) by the application's message dependencies, and what the
//     message-logging tax costs;
//   coordination: what the global synchronisation itself contributes.
#pragma once

#include <string>
#include <vector>

#include "chksim/ckpt/interval.hpp"
#include "chksim/ckpt/protocols.hpp"
#include "chksim/core/fabric_plan.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim::core {

/// Protocol selection in one flat config (kind decides which fields apply).
struct ProtocolSpec {
  ckpt::ProtocolKind kind = ckpt::ProtocolKind::kNone;

  ckpt::IntervalPolicy interval_policy = ckpt::IntervalPolicy::kFixed;
  TimeNs fixed_interval = 60ll * 1'000'000'000;  ///< 60 s default.

  // Coordinated / hierarchical.
  analytic::SyncAlgorithm sync = analytic::SyncAlgorithm::kDissemination;
  double skew_sigma_ns = 0;

  // Uncoordinated / hierarchical.
  TimeNs log_per_message = 0;
  double log_per_byte_ns = 0.0;
  bool receiver_side_logging = false;
  int cluster_size = 16;
  std::uint64_t seed = 1;

  /// Checkpoint destination: shared PFS (contended), node-local burst
  /// buffer, or partner-node memory (diskless).
  storage::StorageTier tier = storage::StorageTier::kParallelFs;

  /// Incremental checkpointing (full_every > 1 enables delta checkpoints).
  ckpt::IncrementalSpec incremental;
};

/// Prepare the protocol artifacts for a machine at a scale (resolves the
/// interval policy first).
ckpt::Artifacts prepare_protocol(const ProtocolSpec& spec,
                                 const net::MachineModel& machine, int ranks);

struct StudyConfig {
  net::MachineModel machine = net::infiniband_system();
  std::string workload = "halo3d";
  workload::StdParams params;  ///< params.ranks is the simulated scale.
  ProtocolSpec protocol;
  sim::Preemption preemption = sim::Preemption::kPreemptive;

  /// Network model: analytic LogGOPS transit (default) or the flow-level
  /// fabric (core/fabric_plan.hpp). Flow mode runs the engine pair serially
  /// (the realized checkpoint schedule depends on the base makespan) and
  /// publishes "net.flow.*" gauges; results stay byte-identical across
  /// `jobs` and `shards`.
  FlowSpec network;

  /// Observability hooks (both optional). `trace` receives the event stream
  /// of the *perturbed* run — the one whose waits the attribution pass
  /// explains. `metrics` receives the breakdown plus per-run engine totals
  /// under "study.*", "engine.base.*", and "engine.perturbed.*".
  sim::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional run self-telemetry sink: wall-clock phase timers
  /// ("telemetry.phase.{build,protocol,run,publish}_ms") and peak RSS.
  /// Deliberately separate from `metrics`: cell metrics payloads must stay
  /// byte-deterministic (the campaign cache and the --jobs gates compare
  /// them), while telemetry is wall-clock by nature. Point it at a registry
  /// that is only ever exported through side channels (chksim_run
  /// --stats-out, bench stderr).
  obs::MetricsRegistry* telemetry = nullptr;

  /// Concurrency inside this study: the independent base and perturbed
  /// engine runs execute on up to `jobs` threads (1 = serial, <= 0 =
  /// hardware concurrency). The Breakdown is identical for every value.
  int jobs = 1;

  /// Conservative-PDES shard count for each engine run (see
  /// sim/par_engine.hpp). 1 = the serial engine; N > 1 partitions the ranks
  /// into N concurrently-advanced shards with byte-identical results —
  /// Breakdown, metrics, traces, and blame reports are unchanged for every
  /// value. PDES self-telemetry lands in `telemetry` under "pdes.*".
  int shards = 1;
};

/// Where the time went.
struct Breakdown {
  // Simulation scale and protocol numbers.
  int ranks = 0;
  std::string workload;
  std::string protocol;
  TimeNs interval = 0;
  TimeNs blackout = 0;           ///< Per-checkpoint per-rank blackout.
  TimeNs coordination_time = 0;  ///< Part of blackout due to sync + skew.
  TimeNs write_time = 0;
  double effective_writers = 0;
  bool pfs_saturated = false;
  double duty_cycle = 0;  ///< blackout / interval.

  // Measured by simulation.
  TimeNs base_makespan = 0;       ///< No checkpointing.
  TimeNs perturbed_makespan = 0;  ///< With the protocol.
  double slowdown = 1.0;          ///< perturbed / base.
  double overhead_fraction = 0;   ///< slowdown - 1.
  /// overhead_fraction / duty_cycle: >1 = the communication graph amplifies
  /// checkpoint delays, <1 = slack absorbs them. The paper's key
  /// "communication effect" metric.
  double propagation_factor = 0;
  TimeNs recv_wait_base = 0;
  TimeNs recv_wait_perturbed = 0;

  // Workload characterisation (for T1).
  std::int64_t ops = 0;
  std::int64_t msgs = 0;
  Bytes bytes_sent = 0;

  // Flow mode only (zeros / "analytic" otherwise).
  std::string network = "analytic";
  sim::FabricStats fabric;     ///< Perturbed-run fabric totals.
  std::int64_t io_bursts = 0;  ///< Checkpoint transfers realized as flows.
};

/// Build the workload, run it with and without the protocol, and break down
/// the overhead. Deterministic.
Breakdown run_study(const StudyConfig& config);

/// Run a batch of independent studies (sweep cells) on up to `jobs` threads
/// (<= 0 = hardware concurrency), returning the Breakdowns in input order.
///
/// Deterministic for every jobs value, including 1: each cell is an
/// independent simulation writing only its own result slot, and metrics are
/// folded in cell order after all cells finish — every cell publishes into a
/// private registry which is then merged into the cell's `metrics` target
/// (counters add, gauges last-cell-wins, exactly as if the cells had run
/// serially). Configs sharing a `trace` sink are the one exception: trace
/// events from concurrent cells would interleave, so give each cell its own
/// sink (or run with jobs = 1).
std::vector<Breakdown> run_sweep(const std::vector<StudyConfig>& configs,
                                 int jobs = 0);

/// Build and finalize the configured workload program (shared helper).
sim::Program build_workload(const StudyConfig& config);

}  // namespace chksim::core
