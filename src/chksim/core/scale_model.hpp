// Extrapolation to scales the engine cannot simulate directly (E12).
//
// The decomposition: the engine measures the *propagation factor* kappa =
// (slowdown - 1) / duty-cycle at a feasible scale (kappa is a property of
// the workload's communication structure and is close to scale-invariant
// for the self-similar skeletons we generate); the protocol's duty cycle
// and the failure model are computed analytically at any target scale, so
//
//   slowdown(P)   = 1 + kappa * duty_cycle(P)
//   efficiency(P) = work / E[makespan(P)]   (recovery Monte-Carlo)
//
// — the same simulate-small / model-large strategy the original methodology
// used to reach 2^20-node regimes.
#pragma once

#include <vector>

#include "chksim/ckpt/recovery.hpp"
#include "chksim/core/study.hpp"

namespace chksim::core {

struct ScaleModelConfig {
  net::MachineModel machine = net::infiniband_system();
  ProtocolSpec protocol;
  /// Propagation factor measured at feasible scale (Breakdown::propagation_factor).
  double kappa = 1.0;
  double work_seconds = 24.0 * 3600.0;
  double weibull_shape = 0;  ///< 0 = exponential.
  double replay_speedup = 1.5;
  int trials = 200;
  std::uint64_t seed = 42;
  /// Concurrency for the recovery Monte-Carlo (1 = serial, <= 0 = hardware
  /// concurrency). Results are identical for every value.
  int jobs = 1;
};

struct ScalePoint {
  int ranks = 0;
  TimeNs interval = 0;
  TimeNs blackout = 0;
  TimeNs coordination_time = 0;
  double duty_cycle = 0;
  double slowdown = 1.0;
  double system_mtbf_seconds = 0;
  double mean_failures = 0;
  double efficiency = 0;  ///< useful-work fraction including failures.
};

/// Evaluate the model at one scale.
ScalePoint efficiency_at_scale(const ScaleModelConfig& config, int ranks);

/// Evaluate across a sweep of scales.
std::vector<ScalePoint> efficiency_sweep(const ScaleModelConfig& config,
                                         const std::vector<int>& scales);

}  // namespace chksim::core
