// End-to-end study with failures: perturbation simulation + Monte-Carlo
// recovery model (experiments E7, E9, E10), and the direct in-DES failure
// simulation that validates the decoupled decomposition (E13).
#pragma once

#include "chksim/ckpt/recovery.hpp"
#include "chksim/core/study.hpp"
#include "chksim/fault/direct.hpp"

namespace chksim::core {

/// How failures are modelled on top of the perturbation study.
enum class FailureModel {
  /// The paper's decomposition: failure-free DES slowdown, then the
  /// Monte-Carlo renewal model (ckpt::simulate_makespan).
  kDecoupled,
  /// Ground truth: failures injected into the running DES via fault::direct
  /// (rollback / replay applied to the live machine state). Makespans are in
  /// simulated (engine) time, so machine MTBF/restart must be scaled to the
  /// simulated horizon for failures to occur at all.
  kDirect,
};

struct FailureStudyConfig {
  /// Failure model; run_failure_study dispatches on this.
  FailureModel mode = FailureModel::kDecoupled;
  StudyConfig study;
  /// Useful work to complete, in failure-free unperturbed seconds.
  double work_seconds = 24.0 * 3600.0;
  int trials = 200;
  /// 0 = exponential system failures; otherwise Weibull with this shape.
  double weibull_shape = 0;
  double replay_speedup = 1.5;
  std::uint64_t seed = 42;
  /// Recovery-model checkpoint interval, seconds. 0 = use the simulated
  /// protocol's interval. Benches use this to pair a scaled-down simulated
  /// interval (so short engine runs cover many checkpoints) with a
  /// realistic wallclock interval at the same duty cycle.
  double recovery_interval_seconds = 0;
  /// When true, the restart cost includes reading the checkpoint back
  /// through the storage model (ckpt::restart_cost_seconds) instead of the
  /// bare machine.restart_seconds.
  bool model_restart_io = false;
  /// Concurrency for the Monte-Carlo trials (and, via study.jobs, the
  /// engine-run pair): 1 = serial, <= 0 = hardware concurrency. Results are
  /// identical for every value.
  int jobs = 1;
};

struct FailureStudyResult {
  Breakdown breakdown;             ///< Failure-free perturbation measurement.
  ckpt::MakespanResult makespan;   ///< With failures.
  double system_mtbf_seconds = 0;
  TimeNs interval = 0;
};

/// Run the perturbation simulation, then failures per config.mode: the
/// recovery Monte-Carlo (kDecoupled), or the direct in-DES simulation
/// (kDirect; the makespan distribution then comes from
/// run_direct_failure_study and is over the simulated horizon — work =
/// the program's base makespan, not config.work_seconds).
FailureStudyResult run_failure_study(const FailureStudyConfig& config);

/// Run a batch of independent failure studies on up to `jobs` threads
/// (<= 0 = hardware concurrency), in input order. Deterministic for every
/// jobs value — see run_sweep for the slot/merge discipline (each cell's
/// inner trials run with that cell's config.jobs).
std::vector<FailureStudyResult> run_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs = 0);

/// Direct-vs-decoupled validation cell (E13): both models run over the SAME
/// frame — work = the program's simulated base makespan, interval = the
/// prepared protocol's interval, restart = machine.restart_seconds (or the
/// storage-model cost with model_restart_io), failures = exponential (or
/// Weibull) with system MTBF from the machine model. config.work_seconds is
/// ignored.
struct DirectFailureStudyResult {
  Breakdown breakdown;            ///< Failure-free perturbation measurement.
  ckpt::MakespanResult direct;    ///< In-DES simulated makespan distribution.
  ckpt::MakespanResult decoupled; ///< Renewal model, matched parameters.
  /// (direct.mean - decoupled.mean) / decoupled.mean.
  double relative_error = 0;
  fault::DirectStats stats;       ///< Summed over the direct trials.
  double system_mtbf_seconds = 0;
  TimeNs interval = 0;
};

/// Run the direct in-DES failure simulation for config.trials independent
/// failure sequences, plus the matched decoupled model, and compare.
/// Publishes "recovery.direct.*" under config.study.metrics. Deterministic
/// for every config.jobs value (per-trial RNG substreams, slot writes,
/// serial reduction).
DirectFailureStudyResult run_direct_failure_study(const FailureStudyConfig& config);

/// Batch version of run_direct_failure_study, same discipline as
/// run_failure_sweep.
std::vector<DirectFailureStudyResult> run_direct_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs = 0);

}  // namespace chksim::core
