// End-to-end study with failures: perturbation simulation + Monte-Carlo
// recovery model (experiments E7, E9, E10).
#pragma once

#include "chksim/ckpt/recovery.hpp"
#include "chksim/core/study.hpp"

namespace chksim::core {

struct FailureStudyConfig {
  StudyConfig study;
  /// Useful work to complete, in failure-free unperturbed seconds.
  double work_seconds = 24.0 * 3600.0;
  int trials = 200;
  /// 0 = exponential system failures; otherwise Weibull with this shape.
  double weibull_shape = 0;
  double replay_speedup = 1.5;
  std::uint64_t seed = 42;
  /// Recovery-model checkpoint interval, seconds. 0 = use the simulated
  /// protocol's interval. Benches use this to pair a scaled-down simulated
  /// interval (so short engine runs cover many checkpoints) with a
  /// realistic wallclock interval at the same duty cycle.
  double recovery_interval_seconds = 0;
  /// When true, the restart cost includes reading the checkpoint back
  /// through the storage model (ckpt::restart_cost_seconds) instead of the
  /// bare machine.restart_seconds.
  bool model_restart_io = false;
  /// Concurrency for the Monte-Carlo trials (and, via study.jobs, the
  /// engine-run pair): 1 = serial, <= 0 = hardware concurrency. Results are
  /// identical for every value.
  int jobs = 1;
};

struct FailureStudyResult {
  Breakdown breakdown;             ///< Failure-free perturbation measurement.
  ckpt::MakespanResult makespan;   ///< With failures.
  double system_mtbf_seconds = 0;
  TimeNs interval = 0;
};

/// Run the perturbation simulation, then the recovery Monte-Carlo at the
/// same scale.
FailureStudyResult run_failure_study(const FailureStudyConfig& config);

/// Run a batch of independent failure studies on up to `jobs` threads
/// (<= 0 = hardware concurrency), in input order. Deterministic for every
/// jobs value — see run_sweep for the slot/merge discipline (each cell's
/// inner trials run with that cell's config.jobs).
std::vector<FailureStudyResult> run_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs = 0);

}  // namespace chksim::core
