#include "chksim/core/study.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "chksim/obs/critical_path.hpp"
#include "chksim/obs/telemetry.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/support/parallel.hpp"

namespace chksim::core {

namespace {

/// Flow-mode engine pair: base first (its makespan bounds the checkpoint
/// horizon), then the perturbed run against the realized schedule with the
/// same I/O bursts pre-staged into its fabric. The horizon guard re-walks
/// with a longer horizon if blackouts push the run past the materialized
/// schedule — each iteration is deterministic, so so is the loop.
struct FlowRuns {
  FabricPlan plan;
  IoPlan io;
};

FlowRuns run_flow_pair(const StudyConfig& config, const ckpt::Artifacts& art,
                       const sim::Program& program,
                       const sim::EngineConfig& base_in,
                       const sim::EngineConfig& pert_in, sim::RunResult* runs) {
  FlowRuns out;
  out.plan = plan_fabric(config.machine, config.params.ranks, config.network);
  const net::flow::Router router(out.plan.router);
  {
    net::flow::FlowNet fab(&router, out.plan.net);
    sim::EngineConfig base = base_in;
    base.fabric = &fab;
    runs[0] = sim::run_program(program, base);
  }
  if (!runs[0].completed) return out;

  TimeNs horizon = saturating_add(
      saturating_add(runs[0].makespan, runs[0].makespan),
      saturating_add(art.interval, art.interval));
  for (int guard = 0; guard < 6; ++guard) {
    IoPlan io = realize_io_bursts(art, config.protocol.tier, config.machine,
                                  router, out.plan.net, config.params.ranks,
                                  horizon);
    net::flow::FlowNet fab(&router, out.plan.net);
    for (const IoBurst& burst : io.bursts) fab.submit(burst.inject, burst.req);
    sim::EngineConfig pert = pert_in;
    pert.fabric = &fab;
    if (io.schedule != nullptr) pert.blackouts = io.schedule.get();
    runs[1] = sim::run_program(program, pert);
    if (!runs[1].completed || runs[1].makespan <= horizon) {
      out.io = std::move(io);
      break;
    }
    horizon = saturating_add(saturating_add(runs[1].makespan, runs[1].makespan),
                             saturating_add(art.interval, art.interval));
  }
  return out;
}

}  // namespace

ckpt::Artifacts prepare_protocol(const ProtocolSpec& spec,
                                 const net::MachineModel& machine, int ranks) {
  const TimeNs interval = spec.kind == ckpt::ProtocolKind::kNone
                              ? TimeNs{0}
                              : ckpt::choose_interval(spec.interval_policy, spec.kind,
                                                      machine, ranks,
                                                      spec.fixed_interval,
                                                      spec.cluster_size, spec.tier);
  switch (spec.kind) {
    case ckpt::ProtocolKind::kNone:
      return ckpt::prepare_none(ranks);
    case ckpt::ProtocolKind::kCoordinated: {
      ckpt::CoordinatedConfig c;
      c.interval = interval;
      c.sync = spec.sync;
      c.skew_sigma_ns = spec.skew_sigma_ns;
      c.tier = spec.tier;
      c.incremental = spec.incremental;
      return ckpt::prepare_coordinated(c, machine, ranks);
    }
    case ckpt::ProtocolKind::kUncoordinated: {
      ckpt::UncoordinatedConfig c;
      c.interval = interval;
      c.phase_seed = spec.seed;
      c.log_per_message = spec.log_per_message;
      c.log_per_byte_ns = spec.log_per_byte_ns;
      c.receiver_side_logging = spec.receiver_side_logging;
      c.tier = spec.tier;
      c.incremental = spec.incremental;
      return ckpt::prepare_uncoordinated(c, machine, ranks);
    }
    case ckpt::ProtocolKind::kHierarchical: {
      ckpt::HierarchicalConfig c;
      c.interval = interval;
      c.cluster_size = spec.cluster_size;
      c.phase_seed = spec.seed;
      c.sync = spec.sync;
      c.skew_sigma_ns = spec.skew_sigma_ns;
      c.log_per_message = spec.log_per_message;
      c.log_per_byte_ns = spec.log_per_byte_ns;
      c.tier = spec.tier;
      c.incremental = spec.incremental;
      return ckpt::prepare_hierarchical(c, machine, ranks);
    }
  }
  throw std::logic_error("unknown protocol kind");
}

sim::Program build_workload(const StudyConfig& config) {
  sim::Program p = workload::make_workload(config.workload, config.params);
  p.finalize();
  return p;
}

Breakdown run_study(const StudyConfig& config) {
  const int ranks = config.params.ranks;
  std::optional<obs::PhaseTimer> phase;
  phase.emplace(config.telemetry, "build");
  sim::Program program = build_workload(config);
  phase.emplace(config.telemetry, "protocol");

  Breakdown b;
  b.ranks = ranks;
  b.workload = config.workload;
  b.ops = program.stats().ops;
  b.msgs = program.stats().sends;
  b.bytes_sent = program.stats().bytes_sent;

  const ckpt::Artifacts art = prepare_protocol(config.protocol, config.machine, ranks);
  b.protocol = art.name;
  b.interval = art.interval;
  b.blackout = art.blackout;
  b.coordination_time = art.coordination_time;
  b.write_time = art.write_time;
  b.effective_writers = art.effective_writers;
  b.pfs_saturated = art.pfs_saturated;
  b.duty_cycle = art.duty_cycle();

  sim::EngineConfig base;
  base.net = config.machine.net;
  base.preemption = config.preemption;
  base.shards = config.shards;

  sim::EngineConfig pert = base;
  pert.blackouts = art.schedule.get();
  pert.tax = art.tax.get();
  pert.trace = config.trace;

  // The base and perturbed runs are independent simulations over the same
  // (read-only) program; each writes only its own slot, so running them on
  // two threads cannot change either result.
  phase.emplace(config.telemetry, "run");
  sim::RunResult runs[2];
  FlowRuns flow;
  const bool flow_mode = config.network.mode == NetworkMode::kFlow;
  if (flow_mode) {
    flow = run_flow_pair(config, art, program, base, pert, runs);
  } else {
    const sim::EngineConfig* cfgs[2] = {&base, &pert};
    par::for_each_index(2,
                        config.jobs <= 0 ? config.jobs : std::min(config.jobs, 2),
                        [&](std::int64_t i) {
                          runs[i] = sim::run_program(program, *cfgs[i]);
                        });
  }
  const sim::RunResult& r0 = runs[0];
  const sim::RunResult& r1 = runs[1];
  if (!r0.completed)
    throw std::runtime_error("base run did not complete: " + r0.error);
  b.base_makespan = r0.makespan;
  b.recv_wait_base = r0.total_recv_wait();
  if (!r1.completed)
    throw std::runtime_error("perturbed run did not complete: " + r1.error);
  b.perturbed_makespan = r1.makespan;
  b.recv_wait_perturbed = r1.total_recv_wait();

  b.slowdown = static_cast<double>(r1.makespan) / static_cast<double>(r0.makespan);
  b.overhead_fraction = b.slowdown - 1.0;
  b.propagation_factor = b.duty_cycle > 0 ? b.overhead_fraction / b.duty_cycle : 0.0;
  if (flow_mode) {
    b.network = to_string(config.network.mode);
    b.fabric = r1.fabric;
    b.io_bursts = flow.io.count;
  }

  phase.emplace(config.telemetry, "publish");
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    obs::stamp_provenance(m, config.params.seed);
    m.set_gauge("study.ranks", static_cast<double>(b.ranks));
    m.set_gauge("study.interval_ns", static_cast<double>(b.interval));
    m.set_gauge("study.blackout_ns", static_cast<double>(b.blackout));
    m.set_gauge("study.coordination_ns", static_cast<double>(b.coordination_time));
    m.set_gauge("study.write_ns", static_cast<double>(b.write_time));
    m.set_gauge("study.effective_writers", b.effective_writers);
    m.set_gauge("study.duty_cycle", b.duty_cycle);
    m.set_gauge("study.slowdown", b.slowdown);
    m.set_gauge("study.overhead_fraction", b.overhead_fraction);
    m.set_gauge("study.propagation_factor", b.propagation_factor);
    m.add_counter("study.ops", b.ops);
    m.add_counter("study.msgs", b.msgs);
    m.add_counter("study.bytes_sent", b.bytes_sent);
    obs::publish_engine_metrics(r0, m, "engine.base");
    obs::publish_engine_metrics(r1, m, "engine.perturbed");
    // Flow-mode fabric gauges (deterministic, shard-invariant). Published
    // only under NetworkMode::kFlow so analytic cell payloads are unchanged.
    if (flow_mode) {
      const sim::FabricStats& fs = r1.fabric;
      m.set_gauge("net.flow.msg_flows", static_cast<double>(fs.msg_flows));
      m.set_gauge("net.flow.io_flows", static_cast<double>(fs.io_flows));
      m.set_gauge("net.flow.active_peak", static_cast<double>(fs.active_peak));
      m.set_gauge("net.flow.recomputes", static_cast<double>(fs.recomputes));
      m.set_gauge("net.flow.fill_rounds", static_cast<double>(fs.fill_rounds));
      m.set_gauge("net.flow.fifo_holds", static_cast<double>(fs.fifo_holds));
      m.set_gauge("net.flow.contention_ns", static_cast<double>(fs.contention_ns));
      m.set_gauge("net.flow.bytes_moved", static_cast<double>(fs.bytes_moved));
      m.set_gauge("net.flow.fabric_bytes", static_cast<double>(fs.fabric_bytes));
      // Mean utilization per link class over the perturbed makespan: NIC
      // bytes spread over every node's inject+eject pair, storage bytes over
      // the gateways' PFS ingress links.
      const double span = static_cast<double>(r1.makespan);
      const int nodes = flow.plan.router.nodes;
      const int gws = flow.plan.router.gateways;
      if (span > 0 && nodes > 0) {
        m.set_gauge("net.flow.util.nic",
                    static_cast<double>(fs.nic_bytes) /
                        (2.0 * nodes * flow.plan.net.node_bw * span));
        m.set_gauge("net.flow.util.storage",
                    static_cast<double>(fs.storage_bytes) /
                        (static_cast<double>(gws) * flow.plan.net.pfs_bw * span));
      }
      m.set_gauge("net.flow.io_bursts", static_cast<double>(flow.io.count));
    }
    // When the trace sink is a standard EventTracer over the perturbed run,
    // fold the causal critical path and tracer health into the report.
    // Everything published here is a deterministic function of the run, so
    // the cell payload stays byte-stable.
    if (auto* tracer = dynamic_cast<obs::EventTracer*>(config.trace)) {
      obs::publish_tracer_stats(*tracer, m);
      obs::publish_critical_path(obs::extract_critical_path(*tracer), m);
    }
  }
  phase.reset();
  // PDES self-telemetry goes to the side channel only: shard counts,
  // superstep totals, and per-shard high-water marks describe the execution
  // strategy, which byte-compared cell metrics must not depend on.
  if (config.telemetry != nullptr && r1.pdes_shards > 0) {
    obs::MetricsRegistry& t = *config.telemetry;
    t.set_gauge("pdes.shards", static_cast<double>(r1.pdes_shards));
    t.set_gauge("pdes.window_ns", static_cast<double>(r1.pdes_window));
    t.set_gauge("pdes.base.supersteps", static_cast<double>(r0.pdes_supersteps));
    t.set_gauge("pdes.base.shard_heap_peak",
                static_cast<double>(r0.pdes_shard_heap_peak));
    t.set_gauge("pdes.base.lane_peak", static_cast<double>(r0.pdes_lane_peak));
    t.set_gauge("pdes.perturbed.supersteps",
                static_cast<double>(r1.pdes_supersteps));
    t.set_gauge("pdes.perturbed.shard_heap_peak",
                static_cast<double>(r1.pdes_shard_heap_peak));
    t.set_gauge("pdes.perturbed.lane_peak",
                static_cast<double>(r1.pdes_lane_peak));
    t.set_gauge("pdes.base.barrier_ms",
                static_cast<double>(r0.pdes_barrier_ns) / 1e6);
    t.set_gauge("pdes.perturbed.barrier_ms",
                static_cast<double>(r1.pdes_barrier_ns) / 1e6);
  }
  // Working-set gauges are engine-agnostic (the serial core reports them
  // too); barrier/ws numbers are wall- or capacity-derived and so telemetry
  // only, never part of byte-compared cell metrics.
  if (config.telemetry != nullptr) {
    obs::MetricsRegistry& t = *config.telemetry;
    t.set_gauge("pdes.base.ws_bytes", static_cast<double>(r0.ws_bytes));
    t.set_gauge("pdes.base.ws_match_slot_peak",
                static_cast<double>(r0.ws_match_slot_peak));
    t.set_gauge("pdes.perturbed.ws_bytes", static_cast<double>(r1.ws_bytes));
    t.set_gauge("pdes.perturbed.ws_match_slot_peak",
                static_cast<double>(r1.ws_match_slot_peak));
  }
  if (config.telemetry != nullptr)
    obs::publish_process_telemetry(*config.telemetry);
  return b;
}

std::vector<Breakdown> run_sweep(const std::vector<StudyConfig>& configs, int jobs) {
  std::vector<Breakdown> out(configs.size());
  // Cells publish into private registries so concurrent cells never touch a
  // shared one; the fold below runs in cell order, which reproduces the
  // serial last-write-wins gauge semantics exactly.
  std::vector<obs::MetricsRegistry> cell_metrics(configs.size());
  std::vector<obs::MetricsRegistry> cell_telemetry(configs.size());
  par::for_each_index(static_cast<std::int64_t>(configs.size()), jobs,
                      [&](std::int64_t i) {
                        StudyConfig cell = configs[static_cast<std::size_t>(i)];
                        if (cell.metrics != nullptr)
                          cell.metrics = &cell_metrics[static_cast<std::size_t>(i)];
                        if (cell.telemetry != nullptr)
                          cell.telemetry = &cell_telemetry[static_cast<std::size_t>(i)];
                        out[static_cast<std::size_t>(i)] = run_study(cell);
                      });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].metrics != nullptr) configs[i].metrics->merge(cell_metrics[i]);
    if (configs[i].telemetry != nullptr)
      configs[i].telemetry->merge(cell_telemetry[i]);
  }
  return out;
}

}  // namespace chksim::core
