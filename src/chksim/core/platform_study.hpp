// The platform study: N jobs on one machine, sharing the file system.
//
// run_study (study.hpp) answers the paper's questions for one application
// that owns the whole machine. run_platform_study lifts that assumption:
// a job mix runs inside ONE composed discrete-event simulation (one rank
// space, one event order — Program::compose), while every checkpoint write
// and restart read goes through the SharedPfs arbiter, so jobs' checkpoint
// phases contend, queue, and stretch each other exactly as the arbitration
// policy dictates.
//
// Execution is a fixed point between two coupled simulations (see
// platform/timeline.hpp for the split): the platform timeline resolves
// every burst's realised blackout against the arbiter given current job
// makespans; the composed engine run replays those blackouts against the
// full message graph and yields new per-job makespans (slice_result); the
// loop repeats until per-stream burst counts stabilise (at most
// max_rounds, in practice 2-3). Both halves are deterministic, so the whole
// study is byte-stable across --jobs and --shards.
//
// The prize question (E14): with several jobs contending, does machine-wide
// staggering of checkpoint phases (stagger_frac > 0) beat every job running
// its per-job-optimal Daly interval in phase (stagger_frac = 0)?
#pragma once

#include <string>
#include <vector>

#include "chksim/core/study.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/platform/timeline.hpp"
#include "chksim/storage/shared_pfs.hpp"

namespace chksim::core {

/// One job of the mix: its own workload, scale, and protocol.
struct PlatformJobSpec {
  std::string workload = "halo3d";
  workload::StdParams params;  ///< params.ranks is the job's size.
  ProtocolSpec protocol;
};

struct PlatformConfig {
  net::MachineModel machine = net::infiniband_system();
  std::vector<PlatformJobSpec> jobs;
  storage::ArbiterPolicy arbiter = storage::ArbiterPolicy::kFcfs;

  /// Machine-wide checkpoint staggering in [0, 1]: job j's burst phases are
  /// shifted by stagger_frac * (j / N) * interval_j. 0 = jobs checkpoint in
  /// phase (the each-job-for-itself baseline); 1 = phases spread evenly
  /// across the interval.
  double stagger_frac = 0;

  /// Per-job failures (job-level rollback; restart reads contend through
  /// the arbiter). Job j's MTBF is machine.node_mtbf_hours / ranks_j.
  bool failures = false;
  std::uint64_t failure_seed = 1;

  sim::Preemption preemption = sim::Preemption::kPreemptive;

  /// Network model for the composed engine runs. Under NetworkMode::kFlow
  /// message traffic is routed over one machine-wide fabric
  /// (core/fabric_plan.hpp); checkpoint I/O stays with the SharedPfs
  /// arbiter, which owns storage in the platform fixed point.
  FlowSpec network;

  /// Optional: receives the event stream of one extra perturbed run executed
  /// after the fixed point converges (the converged blackout schedule is
  /// deterministic, so the traced run reproduces the measured one). Feed it
  /// to obs::attribute_waits together with `storage_map` to split waits into
  /// sender_blackout / storage_contention / propagated / network.
  sim::TraceSink* trace = nullptr;
  /// Optional: filled with the converged per-rank (composed rank space)
  /// storage-contention intervals — the obs attribution input.
  obs::StorageContentionMap* storage_map = nullptr;

  obs::MetricsRegistry* metrics = nullptr;    ///< "platform.*" namespaces.
  obs::MetricsRegistry* telemetry = nullptr;  ///< Side channel (wall-clock).
  int threads = 1;  ///< Worker threads for the base/perturbed engine pair.
  int shards = 1;   ///< Conservative-PDES shards for each engine run.
  int max_rounds = 5;  ///< Fixed-point iteration cap.
};

/// Where one job's time went (the per-job Breakdown).
struct PlatformJobBreakdown {
  int job = 0;
  std::string workload;
  std::string protocol;
  int ranks = 0;
  sim::RankId rank_begin = 0;  ///< First composed rank of the job.
  TimeNs interval = 0;
  double duty_cycle = 0;  ///< Solo (uncontended) blackout / interval.

  TimeNs base_makespan = 0;       ///< No checkpointing, no contention.
  TimeNs perturbed_makespan = 0;  ///< With blackouts as resolved under contention.
  TimeNs wall_makespan = 0;       ///< perturbed + failure lost/restart time.
  double slowdown = 1.0;          ///< perturbed / base.
  double overhead_fraction = 0;   ///< slowdown - 1.
  double propagation_factor = 0;  ///< overhead_fraction / duty_cycle.
  TimeNs recv_wait_base = 0;
  TimeNs recv_wait_perturbed = 0;

  // Storage behaviour under contention (from the timeline).
  std::int64_t bursts = 0;
  std::int64_t commits = 0;
  TimeNs queue_wait = 0;           ///< Summed over the job's bursts.
  TimeNs storage_contention = 0;   ///< queue wait + bandwidth-share stretch.
  TimeNs write = 0;                ///< Realised service time.

  // Failures (0 when config.failures is off).
  std::int64_t failures = 0;
  TimeNs lost = 0;     ///< Machine time rolled back.
  TimeNs restart = 0;  ///< Restart read + relaunch time.
};

/// Machine-level result: per-job breakdowns plus the platform totals.
struct PlatformBreakdown {
  std::vector<PlatformJobBreakdown> jobs;
  int total_ranks = 0;
  int rounds = 0;              ///< Fixed-point rounds until burst counts settled.
  TimeNs machine_makespan = 0; ///< max over jobs of wall_makespan.

  /// Node-time efficiency: sum_j(base_j * n_j) / sum_j(wall_j * n_j).
  double machine_efficiency = 0;
  /// Machine-level waste, node-seconds by category. checkpoint covers
  /// blackout + propagation net of contention; the three sum (with the
  /// useful node-time) to the occupied node-time.
  double waste_checkpoint_node_s = 0;
  double waste_contention_node_s = 0;
  double waste_failure_node_s = 0;

  // Arbiter totals.
  std::int64_t pfs_requests = 0;
  TimeNs pfs_busy = 0;
  std::int64_t pfs_peak_active = 0;
  std::int64_t pfs_preemptions = 0;
};

/// Run the job mix to completion. Deterministic (byte-stable metrics across
/// thread and shard counts). Throws std::invalid_argument for an empty mix
/// or a job with incremental checkpointing enabled (the platform timeline
/// models uniform bursts; see MODEL.md §8).
PlatformBreakdown run_platform_study(const PlatformConfig& config);

/// Build an N-job mix by cycling `workloads` (registry names; empty =
/// the full registry order), giving every job `ranks_per_job` ranks, the
/// same base parameters, and the shared protocol spec with decorrelated
/// per-job seeds (params.seed + j, protocol.seed + j).
std::vector<PlatformJobSpec> make_job_mix(const std::vector<std::string>& workloads,
                                          int njobs, int ranks_per_job,
                                          const workload::StdParams& params,
                                          const ProtocolSpec& protocol);

}  // namespace chksim::core
