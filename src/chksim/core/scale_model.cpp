#include "chksim/core/scale_model.hpp"

#include <memory>
#include <stdexcept>

namespace chksim::core {

ScalePoint efficiency_at_scale(const ScaleModelConfig& config, int ranks) {
  if (ranks <= 0) throw std::invalid_argument("ranks must be > 0");
  if (config.kappa < 0) throw std::invalid_argument("kappa must be >= 0");

  const ckpt::Artifacts art = prepare_protocol(config.protocol, config.machine, ranks);

  ScalePoint pt;
  pt.ranks = ranks;
  pt.interval = art.interval;
  pt.blackout = art.blackout;
  pt.coordination_time = art.coordination_time;
  pt.duty_cycle = art.duty_cycle();
  pt.slowdown = 1.0 + config.kappa * pt.duty_cycle;
  pt.system_mtbf_seconds = config.machine.system_mtbf_seconds(ranks);

  if (config.protocol.kind == ckpt::ProtocolKind::kNone) {
    // No checkpoints: failures force a restart from scratch.
    pt.slowdown = 1.0;
  }

  ckpt::RecoveryParams rp;
  rp.kind = config.protocol.kind;
  rp.work_seconds = config.work_seconds;
  rp.slowdown = pt.slowdown;
  rp.interval_seconds =
      art.interval > 0 ? units::to_seconds(art.interval) : config.work_seconds;
  rp.restart_seconds = config.machine.restart_seconds;
  rp.replay_speedup = config.replay_speedup;

  std::unique_ptr<fault::FailureDistribution> dist;
  if (config.weibull_shape > 0) {
    dist = std::make_unique<fault::Weibull>(pt.system_mtbf_seconds, config.weibull_shape);
  } else {
    dist = std::make_unique<fault::Exponential>(pt.system_mtbf_seconds);
  }
  const ckpt::MakespanResult mk = ckpt::simulate_makespan(
      rp, *dist, config.trials, config.seed, /*metrics=*/nullptr, config.jobs);
  pt.mean_failures = mk.mean_failures;
  pt.efficiency = mk.efficiency;
  return pt;
}

std::vector<ScalePoint> efficiency_sweep(const ScaleModelConfig& config,
                                         const std::vector<int>& scales) {
  std::vector<ScalePoint> out;
  out.reserve(scales.size());
  for (int ranks : scales) out.push_back(efficiency_at_scale(config, ranks));
  return out;
}

}  // namespace chksim::core
