#include "chksim/core/platform_study.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "chksim/obs/telemetry.hpp"
#include "chksim/platform/job.hpp"
#include "chksim/support/parallel.hpp"

namespace chksim::core {

namespace {

/// Duty-cycle-based first guess of a job's perturbed makespan; the fixed
/// point refines it (only the burst COUNT has to converge, not the value).
TimeNs initial_machine_end(TimeNs base, double duty, TimeNs blackout) {
  const double denom = std::max(0.1, 1.0 - duty);
  return static_cast<TimeNs>(static_cast<double>(base) / denom) + blackout;
}

/// Per-round convergence signature: per-stream completed burst counts plus
/// the failure count. The timeline's output depends on the machine_end
/// estimates only through these, so equal signatures mean the last engine
/// run and the last timeline are mutually consistent.
std::vector<std::int64_t> signature_of(const platform::TimelineResult& tl) {
  std::vector<std::int64_t> sig;
  for (const platform::JobTimeline& jt : tl.jobs) {
    for (const auto& s : jt.stream_blackouts)
      sig.push_back(static_cast<std::int64_t>(s.size()));
    sig.push_back(jt.failures);
  }
  return sig;
}

}  // namespace

std::vector<PlatformJobSpec> make_job_mix(const std::vector<std::string>& workloads,
                                          int njobs, int ranks_per_job,
                                          const workload::StdParams& params,
                                          const ProtocolSpec& protocol) {
  if (njobs <= 0)
    throw std::invalid_argument("make_job_mix: job count must be > 0");
  if (ranks_per_job <= 0)
    throw std::invalid_argument("make_job_mix: ranks_per_job must be > 0");
  const std::vector<std::string> names =
      workloads.empty() ? workload::workload_names() : workloads;
  std::vector<PlatformJobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j) {
    PlatformJobSpec spec;
    spec.workload = names[static_cast<std::size_t>(j) % names.size()];
    spec.params = params;
    spec.params.ranks = ranks_per_job;
    spec.params.seed = params.seed + static_cast<std::uint64_t>(j);
    spec.protocol = protocol;
    spec.protocol.seed = protocol.seed + static_cast<std::uint64_t>(j);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

PlatformBreakdown run_platform_study(const PlatformConfig& config) {
  const int njobs = static_cast<int>(config.jobs.size());
  if (njobs == 0)
    throw std::invalid_argument("run_platform_study: empty job mix");
  if (config.stagger_frac < 0 || config.stagger_frac > 1)
    throw std::invalid_argument(
        "run_platform_study: stagger_frac = " +
        std::to_string(config.stagger_frac) + ": must be in [0, 1]");
  for (int j = 0; j < njobs; ++j) {
    const PlatformJobSpec& spec = config.jobs[static_cast<std::size_t>(j)];
    if (spec.protocol.incremental.enabled())
      throw std::invalid_argument(
          "run_platform_study: job " + std::to_string(j) +
          " (full_every = " + std::to_string(spec.protocol.incremental.full_every) +
          "): incremental checkpointing is not supported in platform mode — "
          "the timeline models uniform bursts (see MODEL.md §8)");
  }

  // Storage parameters of the shared machine.
  storage::PfsParams pfs_params;
  pfs_params.node_bw_bytes_per_s = config.machine.node_bw_bytes_per_s;
  pfs_params.pfs_bw_bytes_per_s = config.machine.pfs_bw_bytes_per_s;
  pfs_params.bb_bw_bytes_per_s = config.machine.bb_bw_bytes_per_s;
  storage::validate_pfs_params(pfs_params);

  // Build every job's program (independent slots — safe to parallelise),
  // then compose them into one rank space.
  std::optional<obs::PhaseTimer> phase;
  phase.emplace(config.telemetry, "build");
  std::vector<sim::Program> programs;
  programs.reserve(static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j)
    programs.emplace_back(
        std::max(1, config.jobs[static_cast<std::size_t>(j)].params.ranks));
  par::for_each_index(njobs, config.threads, [&](std::int64_t j) {
    const PlatformJobSpec& spec = config.jobs[static_cast<std::size_t>(j)];
    programs[static_cast<std::size_t>(j)] =
        workload::make_workload(spec.workload, spec.params);
    programs[static_cast<std::size_t>(j)].finalize();
  });
  std::vector<const sim::Program*> parts;
  parts.reserve(programs.size());
  for (const sim::Program& p : programs) parts.push_back(&p);
  const sim::Program composed = sim::Program::compose(parts);

  std::vector<sim::RankId> begin(static_cast<std::size_t>(njobs) + 1, 0);
  for (int j = 0; j < njobs; ++j)
    begin[static_cast<std::size_t>(j) + 1] =
        begin[static_cast<std::size_t>(j)] + programs[static_cast<std::size_t>(j)].ranks();
  const int total_ranks = begin[static_cast<std::size_t>(njobs)];

  // Prepare each job's protocol and its burst-stream description.
  phase.emplace(config.telemetry, "protocol");
  std::vector<ckpt::Artifacts> arts;
  arts.reserve(static_cast<std::size_t>(njobs));
  std::vector<platform::JobIo> ios;
  ios.reserve(static_cast<std::size_t>(njobs));
  for (int j = 0; j < njobs; ++j) {
    const PlatformJobSpec& spec = config.jobs[static_cast<std::size_t>(j)];
    const int n = spec.params.ranks;
    arts.push_back(prepare_protocol(spec.protocol, config.machine, n));
    const ckpt::Artifacts& a = arts.back();

    platform::JobIoParams p;
    p.kind = a.kind;
    p.ranks = n;
    p.interval = a.interval;
    p.coordination_time = a.coordination_time;
    p.write_time = a.write_time;
    p.tier = spec.protocol.tier;
    p.cluster_size = spec.protocol.cluster_size;
    p.phase_seed = spec.protocol.seed;
    if (a.interval > 0)
      p.stagger_shift = static_cast<TimeNs>(
          config.stagger_frac * static_cast<double>(j) /
          static_cast<double>(njobs) * static_cast<double>(a.interval));
    p.bytes_per_node = config.machine.ckpt_bytes_per_node;
    p.restart_fixed = units::from_seconds(
        spec.protocol.tier == storage::StorageTier::kParallelFs
            ? config.machine.restart_seconds
            : ckpt::restart_cost_seconds(a.kind, spec.protocol.tier,
                                         config.machine, n,
                                         spec.protocol.cluster_size));
    if (config.failures && n > 0)
      p.mtbf_seconds = config.machine.system_mtbf_seconds(n);
    p.failure_seed = config.failure_seed;
    ios.push_back(platform::make_job_io(p));
  }

  // Base run: the composed machine with no checkpointing anywhere.
  phase.emplace(config.telemetry, "run");
  sim::EngineConfig base_cfg;
  base_cfg.net = config.machine.net;
  base_cfg.preemption = config.preemption;
  base_cfg.shards = config.shards;

  // Flow mode routes the composed machine's message traffic over one shared
  // fabric (checkpoint I/O stays with the SharedPfs arbiter — the platform
  // fixed point owns storage). Every engine run gets a fresh solver
  // instance: fabric state is consumed by the run it serves.
  std::optional<FabricPlan> fplan;
  std::optional<net::flow::Router> frouter;
  if (config.network.mode == NetworkMode::kFlow) {
    fplan = plan_fabric(config.machine, total_ranks, config.network);
    frouter.emplace(fplan->router);
  }
  const auto fresh_fabric = [&]() -> std::optional<net::flow::FlowNet> {
    if (!frouter.has_value()) return std::nullopt;
    return net::flow::FlowNet(&*frouter, fplan->net);
  };

  sim::RunResult base;
  {
    sim::EngineConfig cfg = base_cfg;
    std::optional<net::flow::FlowNet> fab = fresh_fabric();
    if (fab.has_value()) cfg.fabric = &*fab;
    base = sim::run_program(composed, cfg);
  }
  if (!base.completed)
    throw std::runtime_error("platform base run did not complete: " + base.error);

  std::vector<TimeNs> base_makespan(static_cast<std::size_t>(njobs), 0);
  for (int j = 0; j < njobs; ++j) {
    const sim::RunResult s = sim::slice_result(base, begin[static_cast<std::size_t>(j)],
                                               begin[static_cast<std::size_t>(j) + 1]);
    base_makespan[static_cast<std::size_t>(j)] = s.makespan;
    ios[static_cast<std::size_t>(j)].machine_end = initial_machine_end(
        s.makespan, arts[static_cast<std::size_t>(j)].duty_cycle(),
        arts[static_cast<std::size_t>(j)].blackout);
  }

  // The message-tax dispatch is fixed across rounds.
  platform::PlatformTax tax;
  for (int j = 0; j < njobs; ++j)
    tax.add_job(begin[static_cast<std::size_t>(j)],
                begin[static_cast<std::size_t>(j) + 1],
                arts[static_cast<std::size_t>(j)].tax.get());

  // Fixed point: timeline (burst durations under contention) <-> composed
  // engine run (makespans under those blackouts).
  platform::TimelineResult tl;
  sim::RunResult perturbed;
  std::optional<sim::ListBlackouts> schedule;
  std::vector<std::int64_t> prev_sig;
  int rounds = 0;
  for (int round = 0; round < std::max(1, config.max_rounds); ++round) {
    rounds = round + 1;
    platform::TimelineConfig tcfg;
    tcfg.pfs = pfs_params;
    tcfg.policy = config.arbiter;
    tcfg.jobs = ios;
    tl = platform::run_timeline(tcfg);

    // Map per-stream machine-time blackouts onto the composed rank space.
    std::vector<std::vector<sim::Interval>> per_rank(
        static_cast<std::size_t>(total_ranks));
    for (int j = 0; j < njobs; ++j) {
      const platform::JobIo& io = ios[static_cast<std::size_t>(j)];
      const platform::JobTimeline& jt = tl.jobs[static_cast<std::size_t>(j)];
      for (std::size_t si = 0; si < io.streams.size(); ++si) {
        const platform::BurstStream& bs = io.streams[si];
        for (sim::RankId r = bs.rank_begin; r < bs.rank_end; ++r) {
          auto& list =
              per_rank[static_cast<std::size_t>(begin[static_cast<std::size_t>(j)] + r)];
          list.insert(list.end(), jt.stream_blackouts[si].begin(),
                      jt.stream_blackouts[si].end());
        }
      }
    }
    schedule.emplace(std::move(per_rank));

    sim::EngineConfig pert_cfg = base_cfg;
    pert_cfg.blackouts = &*schedule;
    if (!tax.empty()) pert_cfg.tax = &tax;
    std::optional<net::flow::FlowNet> fab = fresh_fabric();
    if (fab.has_value()) pert_cfg.fabric = &*fab;
    perturbed = sim::run_program(composed, pert_cfg);
    if (!perturbed.completed)
      throw std::runtime_error("platform perturbed run did not complete: " +
                               perturbed.error);
    for (int j = 0; j < njobs; ++j)
      ios[static_cast<std::size_t>(j)].machine_end =
          sim::slice_result(perturbed, begin[static_cast<std::size_t>(j)],
                            begin[static_cast<std::size_t>(j) + 1])
              .makespan;

    std::vector<std::int64_t> sig = signature_of(tl);
    if (sig == prev_sig) break;
    prev_sig = std::move(sig);
  }

  // Observability extras on the converged state: the per-rank contention map
  // (composed rank space) and, when requested, a traced replay of the final
  // perturbed run (same schedule, so it reproduces the measured run).
  if (config.storage_map != nullptr) {
    *config.storage_map = obs::StorageContentionMap(total_ranks);
    for (int j = 0; j < njobs; ++j) {
      const platform::JobIo& io = ios[static_cast<std::size_t>(j)];
      const platform::JobTimeline& jt = tl.jobs[static_cast<std::size_t>(j)];
      for (std::size_t si = 0; si < io.streams.size(); ++si) {
        const platform::BurstStream& bs = io.streams[si];
        config.storage_map->add_range(begin[static_cast<std::size_t>(j)] + bs.rank_begin,
                                      begin[static_cast<std::size_t>(j)] + bs.rank_end,
                                      jt.stream_contention[si]);
      }
    }
  }
  if (config.trace != nullptr) {
    sim::EngineConfig trace_cfg = base_cfg;
    trace_cfg.blackouts = &*schedule;
    if (!tax.empty()) trace_cfg.tax = &tax;
    trace_cfg.trace = config.trace;
    std::optional<net::flow::FlowNet> fab = fresh_fabric();
    if (fab.has_value()) trace_cfg.fabric = &*fab;
    const sim::RunResult traced = sim::run_program(composed, trace_cfg);
    if (!traced.completed)
      throw std::runtime_error("platform traced run did not complete: " +
                               traced.error);
  }

  // Assemble the breakdown.
  phase.emplace(config.telemetry, "publish");
  PlatformBreakdown out;
  out.total_ranks = total_ranks;
  out.rounds = rounds;
  out.pfs_requests = tl.pfs.requests;
  out.pfs_busy = tl.pfs.busy;
  out.pfs_peak_active = tl.pfs.peak_active;
  out.pfs_preemptions = tl.pfs.preemptions;

  double base_node_s = 0, wall_node_s = 0;
  for (int j = 0; j < njobs; ++j) {
    const PlatformJobSpec& spec = config.jobs[static_cast<std::size_t>(j)];
    const ckpt::Artifacts& a = arts[static_cast<std::size_t>(j)];
    const platform::JobTimeline& jt = tl.jobs[static_cast<std::size_t>(j)];
    const sim::RunResult bs = sim::slice_result(
        base, begin[static_cast<std::size_t>(j)], begin[static_cast<std::size_t>(j) + 1]);
    const sim::RunResult ps = sim::slice_result(
        perturbed, begin[static_cast<std::size_t>(j)],
        begin[static_cast<std::size_t>(j) + 1]);

    PlatformJobBreakdown b;
    b.job = j;
    b.workload = spec.workload;
    b.protocol = a.name;
    b.ranks = spec.params.ranks;
    b.rank_begin = begin[static_cast<std::size_t>(j)];
    b.interval = a.interval;
    b.duty_cycle = a.duty_cycle();
    b.base_makespan = bs.makespan;
    b.perturbed_makespan = ps.makespan;
    b.wall_makespan = ps.makespan + jt.offset;
    b.slowdown = bs.makespan > 0 ? static_cast<double>(ps.makespan) /
                                       static_cast<double>(bs.makespan)
                                 : 1.0;
    b.overhead_fraction = b.slowdown - 1.0;
    b.propagation_factor =
        b.duty_cycle > 0 ? b.overhead_fraction / b.duty_cycle : 0.0;
    b.recv_wait_base = bs.total_recv_wait();
    b.recv_wait_perturbed = ps.total_recv_wait();
    b.bursts = jt.bursts;
    b.commits = jt.commits;
    b.queue_wait = jt.queue_wait;
    b.storage_contention = jt.contention;
    b.write = jt.write;
    b.failures = jt.failures;
    b.lost = jt.lost;
    b.restart = jt.restart;
    out.machine_makespan = std::max(out.machine_makespan, b.wall_makespan);

    const double n = static_cast<double>(b.ranks);
    base_node_s += units::to_seconds(b.base_makespan) * n;
    wall_node_s += units::to_seconds(b.wall_makespan) * n;
    out.waste_contention_node_s += units::to_seconds(jt.contention_nodes);
    out.waste_failure_node_s += units::to_seconds(jt.offset) * n;
    out.waste_checkpoint_node_s +=
        units::to_seconds(b.perturbed_makespan - b.base_makespan) * n;
    out.jobs.push_back(std::move(b));
  }
  // Contention is carved out of the checkpoint+propagation overhead.
  out.waste_checkpoint_node_s =
      std::max(0.0, out.waste_checkpoint_node_s - out.waste_contention_node_s);
  out.machine_efficiency = wall_node_s > 0 ? base_node_s / wall_node_s : 0.0;

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    obs::stamp_provenance(m, config.failure_seed);
    m.set_gauge("platform.machine.jobs", static_cast<double>(njobs));
    m.set_gauge("platform.machine.ranks", static_cast<double>(total_ranks));
    m.set_gauge("platform.machine.rounds", static_cast<double>(out.rounds));
    m.set_gauge("platform.machine.makespan_ns",
                static_cast<double>(out.machine_makespan));
    m.set_gauge("platform.machine.efficiency", out.machine_efficiency);
    m.set_gauge("platform.machine.waste_checkpoint_node_s",
                out.waste_checkpoint_node_s);
    m.set_gauge("platform.machine.waste_contention_node_s",
                out.waste_contention_node_s);
    m.set_gauge("platform.machine.waste_failure_node_s",
                out.waste_failure_node_s);
    m.add_counter("platform.machine.pfs.requests", out.pfs_requests);
    m.add_counter("platform.machine.pfs.preemptions", out.pfs_preemptions);
    m.set_gauge("platform.machine.pfs.busy_ns", static_cast<double>(out.pfs_busy));
    m.set_gauge("platform.machine.pfs.peak_active",
                static_cast<double>(out.pfs_peak_active));
    for (const PlatformJobBreakdown& b : out.jobs) {
      const std::string p = "platform.job" + std::to_string(b.job) + ".";
      m.set_gauge(p + "ranks", static_cast<double>(b.ranks));
      m.set_gauge(p + "interval_ns", static_cast<double>(b.interval));
      m.set_gauge(p + "duty_cycle", b.duty_cycle);
      m.set_gauge(p + "base_makespan_ns", static_cast<double>(b.base_makespan));
      m.set_gauge(p + "perturbed_makespan_ns",
                  static_cast<double>(b.perturbed_makespan));
      m.set_gauge(p + "wall_makespan_ns", static_cast<double>(b.wall_makespan));
      m.set_gauge(p + "slowdown", b.slowdown);
      m.set_gauge(p + "overhead_fraction", b.overhead_fraction);
      m.set_gauge(p + "propagation_factor", b.propagation_factor);
      m.set_gauge(p + "recv_wait_perturbed_ns",
                  static_cast<double>(b.recv_wait_perturbed));
      m.add_counter(p + "bursts", b.bursts);
      m.add_counter(p + "commits", b.commits);
      m.set_gauge(p + "queue_wait_ns", static_cast<double>(b.queue_wait));
      m.set_gauge(p + "storage_contention_ns",
                  static_cast<double>(b.storage_contention));
      m.set_gauge(p + "write_ns", static_cast<double>(b.write));
      m.add_counter(p + "failures", b.failures);
      m.set_gauge(p + "lost_ns", static_cast<double>(b.lost));
      m.set_gauge(p + "restart_ns", static_cast<double>(b.restart));
    }
  }
  phase.reset();
  if (config.telemetry != nullptr) {
    obs::MetricsRegistry& t = *config.telemetry;
    if (perturbed.pdes_shards > 0) {
      t.set_gauge("pdes.shards", static_cast<double>(perturbed.pdes_shards));
      t.set_gauge("pdes.perturbed.supersteps",
                  static_cast<double>(perturbed.pdes_supersteps));
    }
    t.set_gauge("pdes.perturbed.ws_bytes", static_cast<double>(perturbed.ws_bytes));
    obs::publish_process_telemetry(t);
  }
  return out;
}

}  // namespace chksim::core
