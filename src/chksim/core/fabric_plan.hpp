// Flow-mode planning for the study layer: which fabric a machine gets, and
// how checkpoint I/O bursts become flows in it.
//
// run_study's flow mode (NetworkMode::kFlow) replaces both halves of the
// analytic transport model:
//
//   * messages — the engine routes every send through a net::flow::FlowNet
//     (EngineConfig::fabric), so arrival times reflect link sharing;
//   * checkpoint I/O — each blackout's write phase becomes a kIo flow on the
//     same fabric. Because checkpoint *start* times are fixed by the
//     protocol's wallclock schedule (periodic phases never shift), the
//     realized write durations are a one-shot function of the burst set:
//     realize_io_bursts() runs a scratch solver over just the I/O flows and
//     rebuilds the blackout schedule with the realized durations. The same
//     burst set is then pre-staged into the engine-run fabric, where
//     application messages additionally contend with it — that extra
//     slowdown lands on the messages (the network_contention wait category),
//     not on the blackouts, which keeps blackout determinism trivial and is
//     the documented first-order split (docs/MODEL.md "Flow-level network
//     model").
//
// Tier mapping: kParallelFs writes flow rank -> gateway -> PFS ingress and
// the realized drain defines the blackout; kPartner copies to the rank's
// far partner ((r + ranks/2) % ranks) over the fabric, ditto; kBurstBuffer
// keeps the analytic (node-local) blackout and instead injects the
// BB -> PFS drain as a background flow at blackout end — the E15
// "drain vs halo traffic" mechanism.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chksim/ckpt/protocols.hpp"
#include "chksim/net/flow/flownet.hpp"
#include "chksim/sim/availability.hpp"

namespace chksim::core {

enum class NetworkMode : std::uint8_t {
  kAnalytic,  ///< Closed-form LogGOPS transit (the default).
  kFlow,      ///< Max-min fair-shared fabric (net::flow).
};

std::string to_string(NetworkMode mode);
/// "analytic" | "flow"; throws std::invalid_argument otherwise.
NetworkMode network_mode_by_name(const std::string& name);

/// Flow-mode knobs carried by StudyConfig (dead axes under kAnalytic; the
/// campaign spec rejects non-default values there).
struct FlowSpec {
  NetworkMode mode = NetworkMode::kAnalytic;
  net::flow::Routing routing = net::flow::Routing::kMinimal;
  /// Fabric base-link capacity in GB/s (numerically bytes/ns). 0 = match
  /// the NIC bandwidth derived from the machine's LogGOPS G.
  double link_bw_gbs = 0;
  int ranks_per_node = 1;
  /// PFS gateway nodes (evenly spaced). 0 = auto: bandwidth-matched,
  /// ceil(pfs_bw / nic_bw) clamped to [1, nodes], so the storage system
  /// rather than gateway fan-in bounds aggregate checkpoint bandwidth.
  int gateways = 0;
};

/// A resolved fabric: construct Router(plan.router) then
/// FlowNet(&router, plan.net). Kept as configs so every engine run can
/// build its own (mutable) solver instance from one plan.
struct FabricPlan {
  net::flow::RouterConfig router;
  net::flow::FlowNetConfig net;
};

/// Map a machine model to its fabric. The topology family follows the
/// machine's name ("torus"/"bgq" -> torus with near-cubic dims,
/// "exascale"/"dragonfly" -> dragonfly, anything else -> fat-tree); NIC
/// bandwidth is 1/G bytes per ns, the PFS ingress is the machine's
/// aggregate PFS bandwidth, and the latency floor is the machine's L.
FabricPlan plan_fabric(const net::MachineModel& machine, int ranks,
                       const FlowSpec& spec);

/// One checkpoint transfer to pre-stage into the engine-run fabric.
struct IoBurst {
  TimeNs inject = 0;
  sim::FlowRequest req;
};

/// The realized checkpoint plan for one study run.
struct IoPlan {
  /// Blackout schedule with solver-realized write durations, materialized
  /// over [0, horizon). Null when the protocol schedules no blackouts.
  std::unique_ptr<sim::ListBlackouts> schedule;
  std::vector<IoBurst> bursts;
  std::int64_t count = 0;  ///< Bursts walked (== bursts.size()).
  TimeNs horizon = 0;      ///< The walk's cutoff (burst starts < horizon).
};

/// Walk `art.schedule` over [0, horizon), turn every blackout's write phase
/// into a kIo flow, realize the write durations on a scratch solver, and
/// rebuild the schedule. Per-burst bytes are inferred from the analytic
/// write duration relative to the full write (exact for full and for
/// bandwidth-proportional incremental deltas). Deterministic.
IoPlan realize_io_bursts(const ckpt::Artifacts& art, storage::StorageTier tier,
                         const net::MachineModel& machine,
                         const net::flow::Router& router,
                         const net::flow::FlowNetConfig& fcfg, int ranks,
                         TimeNs horizon);

}  // namespace chksim::core
