#include "chksim/core/fabric_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chksim::core {

namespace {

bool name_contains(const std::string& name, const char* what) {
  return name.find(what) != std::string::npos;
}

/// Greedy near-cubic factorization, mirroring net::Torus::near_cubic.
std::array<int, 3> near_cubic_dims(int nodes) {
  int best_x = 1;
  for (int x = 1; x * x * x <= nodes; ++x)
    if (nodes % x == 0) best_x = x;
  const int rest = nodes / best_x;
  int best_y = 1;
  for (int y = best_x; y * y <= rest; ++y)
    if (rest % y == 0) best_y = y;
  if (best_y < best_x) {
    best_y = 1;
    for (int y = 1; y * y <= rest; ++y)
      if (rest % y == 0) best_y = y;
  }
  return {best_x, best_y, rest / best_y};
}

}  // namespace

std::string to_string(NetworkMode mode) {
  return mode == NetworkMode::kFlow ? "flow" : "analytic";
}

NetworkMode network_mode_by_name(const std::string& name) {
  if (name == "analytic") return NetworkMode::kAnalytic;
  if (name == "flow") return NetworkMode::kFlow;
  throw std::invalid_argument("unknown network mode \"" + name +
                              "\" (want \"analytic\" or \"flow\")");
}

FabricPlan plan_fabric(const net::MachineModel& machine, int ranks,
                       const FlowSpec& spec) {
  if (spec.ranks_per_node < 1)
    throw std::invalid_argument("FlowSpec: ranks_per_node must be >= 1");
  FabricPlan plan;
  plan.router.node_map.ranks_per_node = spec.ranks_per_node;
  plan.router.nodes =
      std::max(1, plan.router.node_map.nodes_for(std::max(ranks, 1)));
  plan.router.routing = spec.routing;

  if (name_contains(machine.name, "torus") || name_contains(machine.name, "bgq")) {
    plan.router.kind = net::flow::FabricKind::kTorus;
    plan.router.dims = near_cubic_dims(plan.router.nodes);
  } else if (name_contains(machine.name, "exascale") ||
             name_contains(machine.name, "dragonfly")) {
    plan.router.kind = net::flow::FabricKind::kDragonfly;
  } else {
    plan.router.kind = net::flow::FabricKind::kFatTree;
  }

  // NIC bandwidth is the LogGOPS per-byte gap inverted: G ns/byte at the
  // NIC is 1/G bytes/ns. GB/s and bytes/ns are numerically equal.
  const double nic_bw = machine.net.G > 0 ? 1.0 / machine.net.G : 16.0;
  plan.net.node_bw = nic_bw;
  plan.net.link_bw = spec.link_bw_gbs > 0 ? spec.link_bw_gbs : nic_bw;
  const double pfs_bw = machine.pfs_bw_bytes_per_s / 1e9;
  plan.net.pfs_bw = pfs_bw > 0 ? pfs_bw : nic_bw;
  plan.net.base_latency = std::max<TimeNs>(machine.net.L, 1);
  // Per-node storage software path: caps each checkpoint flow's rate so
  // the uncontended realized write matches the analytic per-node write and
  // fabric contention only ever adds time.
  plan.net.io_rate_cap = machine.node_bw_bytes_per_s > 0
                             ? machine.node_bw_bytes_per_s / 1e9
                             : 0;
  // Auto gateway count is bandwidth-matched: enough gateway NICs that the
  // storage system — not an artificial fan-in through one eject link — is
  // the aggregate bottleneck for checkpoint traffic.
  plan.router.gateways =
      spec.gateways > 0
          ? spec.gateways
          : std::max(1, static_cast<int>(std::ceil(plan.net.pfs_bw / nic_bw)));
  plan.router.gateways = std::min(plan.router.gateways, plan.router.nodes);
  return plan;
}

IoPlan realize_io_bursts(const ckpt::Artifacts& art, storage::StorageTier tier,
                         const net::MachineModel& machine,
                         const net::flow::Router& router,
                         const net::flow::FlowNetConfig& fcfg, int ranks,
                         TimeNs horizon) {
  IoPlan plan;
  plan.horizon = horizon;
  if (art.schedule == nullptr || ranks <= 0 || horizon <= 0) return plan;

  const int rpn = router.config().node_map.ranks_per_node;
  const Bytes full_bytes =
      std::max<Bytes>(machine.ckpt_bytes_per_node / std::max(rpn, 1), 0);
  const TimeNs coord = std::max<TimeNs>(art.coordination_time, 0);
  const TimeNs full_write = std::max<TimeNs>(art.blackout_full - coord, 0);

  // Walk the analytic schedule: one burst per (rank, blackout interval).
  struct Burst {
    sim::RankId rank = 0;
    TimeNs begin = 0, end = 0;  // the analytic interval
    Bytes bytes = 0;
  };
  std::vector<Burst> bursts;
  std::vector<std::vector<sim::Interval>> realized(
      static_cast<std::size_t>(ranks));
  for (sim::RankId r = 0; r < ranks; ++r) {
    TimeNs t = 0;
    while (true) {
      const std::optional<sim::Interval> iv = art.schedule->next_blackout(r, t);
      if (!iv.has_value() || iv->begin >= horizon) break;
      const TimeNs write = std::max<TimeNs>(iv->duration() - coord, 0);
      Burst b;
      b.rank = r;
      b.begin = iv->begin;
      b.end = iv->end;
      // Bytes are proportional to the analytic write duration: exact for a
      // full checkpoint and for bandwidth-proportional incremental deltas.
      b.bytes = full_write > 0
                    ? static_cast<Bytes>(std::llround(
                          static_cast<double>(full_bytes) *
                          static_cast<double>(write) /
                          static_cast<double>(full_write)))
                    : 0;
      bursts.push_back(b);
      t = iv->end;
    }
  }
  plan.count = static_cast<std::int64_t>(bursts.size());
  if (bursts.empty()) return plan;

  if (tier == storage::StorageTier::kBurstBuffer) {
    // Node-local write: the blackout keeps its analytic duration; the
    // BB -> PFS drain rides the fabric in the background from blackout end.
    for (std::size_t i = 0; i < bursts.size(); ++i) {
      const Burst& b = bursts[i];
      realized[static_cast<std::size_t>(b.rank)].push_back({b.begin, b.end});
      if (b.bytes <= 0) continue;
      IoBurst io;
      io.inject = b.end;
      io.req.kind = sim::FlowKind::kIo;
      io.req.src = b.rank;
      io.req.dst = -1;
      io.req.bytes = b.bytes;
      io.req.key2 = static_cast<std::uint64_t>(i) + 1;
      io.req.cookie = static_cast<std::int64_t>(i);
      plan.bursts.push_back(io);
    }
    plan.schedule = std::make_unique<sim::ListBlackouts>(std::move(realized));
    return plan;
  }

  // PFS / partner tiers: the write itself crosses the fabric. Realize the
  // durations on a scratch solver over just the I/O flows (start times are
  // wallclock-fixed, so one pass is the fixed point), then rebuild the
  // schedule: blackout = [begin, max(begin + coordination, realized drain)].
  net::flow::FlowNet scratch(&router, fcfg);
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const Burst& b = bursts[i];
    IoBurst io;
    io.inject = b.begin + coord;
    io.req.kind = sim::FlowKind::kIo;
    io.req.src = b.rank;
    io.req.dst = tier == storage::StorageTier::kPartner
                     ? (b.rank + ranks / 2) % ranks
                     : sim::RankId{-1};
    io.req.bytes = std::max<Bytes>(b.bytes, 1);  // zero-byte flows are not flows
    io.req.key2 = static_cast<std::uint64_t>(i) + 1;
    io.req.cookie = static_cast<std::int64_t>(i);
    plan.bursts.push_back(io);
    scratch.submit(io.inject, io.req);
  }
  std::vector<sim::FlowCompletion> sink;
  while (scratch.next_event() >= 0) {
    scratch.advance(scratch.next_event(), &sink);
  }
  std::vector<TimeNs> finish(bursts.size(), 0);
  for (const net::flow::FlowNet::IoRealized& io : scratch.io_log())
    finish[static_cast<std::size_t>(io.cookie)] = io.finish;
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const Burst& b = bursts[i];
    const TimeNs end = std::max(b.begin + coord, finish[i]);
    realized[static_cast<std::size_t>(b.rank)].push_back(
        {b.begin, std::max(end, b.begin + 1)});
  }
  plan.schedule = std::make_unique<sim::ListBlackouts>(std::move(realized));
  return plan;
}

}  // namespace chksim::core
