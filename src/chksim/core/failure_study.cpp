#include "chksim/core/failure_study.hpp"

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "chksim/support/parallel.hpp"
#include "chksim/support/stats.hpp"

namespace chksim::core {

namespace {

std::unique_ptr<fault::FailureDistribution> make_system_distribution(
    const FailureStudyConfig& config, double system_mtbf_seconds) {
  if (config.weibull_shape > 0)
    return std::make_unique<fault::Weibull>(system_mtbf_seconds,
                                            config.weibull_shape);
  return std::make_unique<fault::Exponential>(system_mtbf_seconds);
}

double study_restart_seconds(const FailureStudyConfig& config, int nodes) {
  return config.model_restart_io
             ? ckpt::restart_cost_seconds(config.study.protocol.kind,
                                          config.study.protocol.tier,
                                          config.study.machine, nodes,
                                          config.study.protocol.cluster_size)
             : config.study.machine.restart_seconds;
}

fault::RecoveryMode recovery_mode_of(ckpt::ProtocolKind kind) {
  switch (kind) {
    case ckpt::ProtocolKind::kNone:          // no commits: rollback to start
    case ckpt::ProtocolKind::kCoordinated:
      return fault::RecoveryMode::kGlobalRollback;
    case ckpt::ProtocolKind::kUncoordinated:
      return fault::RecoveryMode::kLocalReplay;
    case ckpt::ProtocolKind::kHierarchical:
      return fault::RecoveryMode::kClusterReplay;
  }
  throw std::logic_error("unknown protocol kind");
}

}  // namespace

FailureStudyResult run_failure_study(const FailureStudyConfig& config) {
  if (config.mode == FailureModel::kDirect) {
    const DirectFailureStudyResult direct = run_direct_failure_study(config);
    FailureStudyResult out;
    out.breakdown = direct.breakdown;
    out.makespan = direct.direct;
    out.system_mtbf_seconds = direct.system_mtbf_seconds;
    out.interval = direct.interval;
    return out;
  }
  FailureStudyResult out;
  out.breakdown = run_study(config.study);
  out.interval = out.breakdown.interval;
  const int nodes = config.study.params.ranks;
  out.system_mtbf_seconds = config.study.machine.system_mtbf_seconds(nodes);

  ckpt::RecoveryParams rp;
  rp.kind = config.study.protocol.kind;
  rp.work_seconds = config.work_seconds;
  rp.slowdown = out.breakdown.slowdown;
  rp.interval_seconds = config.recovery_interval_seconds > 0
                            ? config.recovery_interval_seconds
                            : units::to_seconds(out.interval);
  rp.restart_seconds = study_restart_seconds(config, nodes);
  rp.replay_speedup = config.replay_speedup;

  const std::unique_ptr<fault::FailureDistribution> dist =
      make_system_distribution(config, out.system_mtbf_seconds);
  out.makespan = ckpt::simulate_makespan(rp, *dist, config.trials, config.seed,
                                         config.study.metrics, config.jobs);
  return out;
}

DirectFailureStudyResult run_direct_failure_study(const FailureStudyConfig& config) {
  DirectFailureStudyResult out;
  out.breakdown = run_study(config.study);
  out.interval = out.breakdown.interval;
  const int nodes = config.study.params.ranks;
  out.system_mtbf_seconds = config.study.machine.system_mtbf_seconds(nodes);
  const double restart_seconds = study_restart_seconds(config, nodes);
  const std::unique_ptr<fault::FailureDistribution> dist =
      make_system_distribution(config, out.system_mtbf_seconds);

  // The direct trials re-run the perturbed simulation with live failures.
  // Program and protocol artifacts are shared read-only across trials.
  const sim::Program program = build_workload(config.study);
  const ckpt::Artifacts art =
      prepare_protocol(config.study.protocol, config.study.machine, nodes);

  sim::EngineConfig pert;
  pert.net = config.study.machine.net;
  pert.preemption = config.study.preemption;
  pert.blackouts = art.schedule.get();
  pert.tax = art.tax.get();

  // Flow mode: message traffic rides the fabric (each trial gets its own
  // solver instance — fabric state is mutated by the run and snapshotted
  // with the engine during rollbacks). Blackouts keep the analytic schedule:
  // failures extend the run open-endedly, so a horizon-bounded realized
  // schedule cannot cover it.
  std::optional<FabricPlan> plan;
  std::optional<net::flow::Router> router;
  if (config.study.network.mode == NetworkMode::kFlow) {
    plan = plan_fabric(config.study.machine, nodes, config.study.network);
    router.emplace(plan->router);
  }

  fault::DirectConfig dc;
  dc.mode = recovery_mode_of(config.study.protocol.kind);
  dc.commits = art.schedule.get();
  dc.restart = units::from_seconds(restart_seconds);
  dc.replay_speedup = config.replay_speedup;
  dc.cluster_size = config.study.protocol.cluster_size;

  if (config.trials <= 0) throw std::invalid_argument("trials must be > 0");
  // Per-trial substreams + slot writes + serial reduction: byte-identical
  // results for every jobs value (same discipline as simulate_makespan).
  std::vector<fault::DirectResult> slots(static_cast<std::size_t>(config.trials));
  par::for_each_index(config.trials, config.jobs, [&](std::int64_t trial) {
    sim::EngineConfig trial_pert = pert;
    std::optional<net::flow::FlowNet> fab;
    if (router.has_value()) {
      fab.emplace(&*router, plan->net);
      trial_pert.fabric = &*fab;
    }
    slots[static_cast<std::size_t>(trial)] = fault::run_with_failures(
        program, trial_pert, dc, *dist,
        Rng::substream(config.seed ^ 0x5bd1e995, static_cast<std::uint64_t>(trial)));
  });

  const double work_seconds = units::to_seconds(out.breakdown.base_makespan);
  std::vector<double> makespans;
  makespans.reserve(slots.size());
  StreamingStats stats;
  double total_failures = 0;
  for (const fault::DirectResult& r : slots) {
    if (!r.completed)
      throw std::runtime_error("direct failure trial did not complete: " + r.error);
    const double m = units::to_seconds(r.makespan_wall);
    makespans.push_back(m);
    stats.add(m);
    total_failures += static_cast<double>(r.stats.failures);
    out.stats.failures += r.stats.failures;
    out.stats.rollbacks += r.stats.rollbacks;
    out.stats.replays += r.stats.replays;
    out.stats.snapshots += r.stats.snapshots;
    out.stats.lost_work = saturating_add(out.stats.lost_work, r.stats.lost_work);
    out.stats.downtime = saturating_add(out.stats.downtime, r.stats.downtime);
  }
  out.direct.trials = config.trials;
  out.direct.mean_seconds = stats.mean();
  out.direct.stddev_seconds = stats.stddev();
  out.direct.p95_seconds = percentile(std::move(makespans), 0.95);
  out.direct.mean_failures = total_failures / config.trials;
  out.direct.efficiency = work_seconds / out.direct.mean_seconds;

  // Matched decoupled model: same work / slowdown / interval / restart /
  // failure process, so the residual is purely the modelling difference.
  ckpt::RecoveryParams rp;
  rp.kind = config.study.protocol.kind;
  rp.work_seconds = work_seconds;
  rp.slowdown = out.breakdown.slowdown;
  rp.interval_seconds = config.recovery_interval_seconds > 0
                            ? config.recovery_interval_seconds
                            : units::to_seconds(out.interval);
  rp.restart_seconds = restart_seconds;
  rp.replay_speedup = config.replay_speedup;
  out.decoupled = ckpt::simulate_makespan(rp, *dist, config.trials, config.seed,
                                          nullptr, config.jobs);
  out.relative_error = out.decoupled.mean_seconds > 0
                           ? (out.direct.mean_seconds - out.decoupled.mean_seconds) /
                                 out.decoupled.mean_seconds
                           : 0.0;

  if (config.study.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.study.metrics;
    m.add_counter("recovery.direct.trials", config.trials);
    m.add_counter("recovery.direct.failures", out.stats.failures);
    m.add_counter("recovery.direct.rollbacks", out.stats.rollbacks);
    m.add_counter("recovery.direct.replays", out.stats.replays);
    m.add_counter("recovery.direct.snapshots", out.stats.snapshots);
    m.set_gauge("recovery.direct.mean_seconds", out.direct.mean_seconds);
    m.set_gauge("recovery.direct.p95_seconds", out.direct.p95_seconds);
    m.set_gauge("recovery.direct.mean_failures", out.direct.mean_failures);
    m.set_gauge("recovery.direct.efficiency", out.direct.efficiency);
    m.set_gauge("recovery.direct.lost_work_seconds",
                units::to_seconds(out.stats.lost_work));
    m.set_gauge("recovery.direct.downtime_seconds",
                units::to_seconds(out.stats.downtime));
    m.set_gauge("recovery.direct.relative_error_vs_decoupled", out.relative_error);
    m.stats("recovery.direct.trial_makespan_seconds").merge(stats);
  }
  return out;
}

std::vector<DirectFailureStudyResult> run_direct_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs) {
  std::vector<DirectFailureStudyResult> out(configs.size());
  std::vector<obs::MetricsRegistry> cell_metrics(configs.size());
  par::for_each_index(static_cast<std::int64_t>(configs.size()), jobs,
                      [&](std::int64_t i) {
                        FailureStudyConfig cell = configs[static_cast<std::size_t>(i)];
                        if (cell.study.metrics != nullptr)
                          cell.study.metrics =
                              &cell_metrics[static_cast<std::size_t>(i)];
                        out[static_cast<std::size_t>(i)] =
                            run_direct_failure_study(cell);
                      });
  for (std::size_t i = 0; i < configs.size(); ++i)
    if (configs[i].study.metrics != nullptr)
      configs[i].study.metrics->merge(cell_metrics[i]);
  return out;
}

std::vector<FailureStudyResult> run_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs) {
  std::vector<FailureStudyResult> out(configs.size());
  std::vector<obs::MetricsRegistry> cell_metrics(configs.size());
  par::for_each_index(static_cast<std::int64_t>(configs.size()), jobs,
                      [&](std::int64_t i) {
                        FailureStudyConfig cell = configs[static_cast<std::size_t>(i)];
                        if (cell.study.metrics != nullptr)
                          cell.study.metrics =
                              &cell_metrics[static_cast<std::size_t>(i)];
                        out[static_cast<std::size_t>(i)] = run_failure_study(cell);
                      });
  for (std::size_t i = 0; i < configs.size(); ++i)
    if (configs[i].study.metrics != nullptr)
      configs[i].study.metrics->merge(cell_metrics[i]);
  return out;
}

}  // namespace chksim::core
