#include "chksim/core/failure_study.hpp"

#include <memory>
#include <vector>

#include "chksim/support/parallel.hpp"

namespace chksim::core {

FailureStudyResult run_failure_study(const FailureStudyConfig& config) {
  FailureStudyResult out;
  out.breakdown = run_study(config.study);
  out.interval = out.breakdown.interval;
  const int nodes = config.study.params.ranks;
  out.system_mtbf_seconds = config.study.machine.system_mtbf_seconds(nodes);

  ckpt::RecoveryParams rp;
  rp.kind = config.study.protocol.kind;
  rp.work_seconds = config.work_seconds;
  rp.slowdown = out.breakdown.slowdown;
  rp.interval_seconds = config.recovery_interval_seconds > 0
                            ? config.recovery_interval_seconds
                            : units::to_seconds(out.interval);
  rp.restart_seconds =
      config.model_restart_io
          ? ckpt::restart_cost_seconds(config.study.protocol.kind,
                                       config.study.protocol.tier,
                                       config.study.machine, nodes,
                                       config.study.protocol.cluster_size)
          : config.study.machine.restart_seconds;
  rp.replay_speedup = config.replay_speedup;

  std::unique_ptr<fault::FailureDistribution> dist;
  if (config.weibull_shape > 0) {
    dist = std::make_unique<fault::Weibull>(out.system_mtbf_seconds,
                                            config.weibull_shape);
  } else {
    dist = std::make_unique<fault::Exponential>(out.system_mtbf_seconds);
  }
  out.makespan = ckpt::simulate_makespan(rp, *dist, config.trials, config.seed,
                                         config.study.metrics, config.jobs);
  return out;
}

std::vector<FailureStudyResult> run_failure_sweep(
    const std::vector<FailureStudyConfig>& configs, int jobs) {
  std::vector<FailureStudyResult> out(configs.size());
  std::vector<obs::MetricsRegistry> cell_metrics(configs.size());
  par::for_each_index(static_cast<std::int64_t>(configs.size()), jobs,
                      [&](std::int64_t i) {
                        FailureStudyConfig cell = configs[static_cast<std::size_t>(i)];
                        if (cell.study.metrics != nullptr)
                          cell.study.metrics =
                              &cell_metrics[static_cast<std::size_t>(i)];
                        out[static_cast<std::size_t>(i)] = run_failure_study(cell);
                      });
  for (std::size_t i = 0; i < configs.size(); ++i)
    if (configs[i].study.metrics != nullptr)
      configs[i].study.metrics->merge(cell_metrics[i]);
  return out;
}

}  // namespace chksim::core
