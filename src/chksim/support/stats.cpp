#include "chksim/support/stats.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace chksim {

void StreamingStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(sample_variance()); }

double percentile_inplace(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= values.size()) return values.back();
  return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
}

double percentile(std::vector<double> values, double q) {
  return percentile_inplace(values, q);
}

Summary Summary::of(std::vector<double> values) {
  Summary s;
  s.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return s;
  StreamingStats acc;
  for (double v : values) acc.add(v);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  std::sort(values.begin(), values.end());
  s.p50 = percentile_inplace(values, 0.50);
  s.p95 = percentile_inplace(values, 0.95);
  s.p99 = percentile_inplace(values, 0.99);
  return s;
}

std::string Summary::to_string() const {
  std::array<char, 192> buf{};
  std::snprintf(buf.data(), buf.size(),
                "n=%lld mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
                static_cast<long long>(count), mean, stddev, min, p50, p95, p99, max);
  return std::string(buf.data());
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo) {
  assert(hi > lo && bins > 0);
  width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || width_ != other.width_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: shape mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::string Histogram::to_string(int bar_width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  std::array<char, 128> buf{};
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(counts_[i] * bar_width / peak);
    std::snprintf(buf.data(), buf.size(), "[%10.4g, %10.4g) %8lld |",
                  bin_lo(static_cast<int>(i)), bin_hi(static_cast<int>(i)),
                  static_cast<long long>(counts_[i]));
    out += buf.data();
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(buf.data(), buf.size(), "underflow=%lld overflow=%lld\n",
                  static_cast<long long>(underflow_), static_cast<long long>(overflow_));
    out += buf.data();
  }
  return out;
}

}  // namespace chksim
