// An allocator adaptor that default-initializes instead of
// value-initializing. `std::vector<T>::resize(n)` zero-fills trivial T; for
// the multi-megabyte columnar arrays Program::finalize() builds — where
// every element is overwritten immediately after the resize — that memset
// is pure waste. `vector<T, DefaultInitAllocator<T>>` skips it.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace chksim::support {

template <typename T, typename Base = std::allocator<T>>
class DefaultInitAllocator : public Base {
 public:
  using Base::Base;

  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<
        U, typename std::allocator_traits<Base>::template rebind_alloc<U>>;
  };

  template <typename U>
  void construct(U* ptr) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;  // default-init: no zeroing for trivial U
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    std::allocator_traits<Base>::construct(static_cast<Base&>(*this), ptr,
                                           std::forward<Args>(args)...);
  }
};

/// Vector whose resize() leaves trivial elements uninitialized.
template <typename T>
using UninitVector = std::vector<T, DefaultInitAllocator<T>>;

}  // namespace chksim::support
