#include "chksim/support/rng.hpp"

#include <cassert>
#include <cmath>

namespace chksim {

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  // -mean * log(1 - U): 1 - U is in (0, 1], so log() is finite.
  return -mean * std::log1p(-uniform());
}

double Rng::weibull(double shape, double scale) {
  assert(shape > 0 && scale > 0);
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  // Marsaglia polar method; we discard the second variate to keep the
  // generator stateless beyond the engine itself.
  double u = 0;
  double v = 0;
  double s = 0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::normal_truncated(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  if (stddev <= 0) return std::min(std::max(mean, lo), hi);
  for (int i = 0; i < 1024; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Pathological truncation window: fall back to clamping.
  return std::min(std::max(mean, lo), hi);
}

}  // namespace chksim
