// Time and size units used throughout chksim.
//
// Simulated time is an integral count of nanoseconds (TimeNs). Integral time
// keeps the discrete-event core deterministic and exactly reproducible across
// platforms; doubles are used only at the analytic-model boundary.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace chksim {

/// Simulated time in nanoseconds. Signed so that differences are safe.
using TimeNs = std::int64_t;

/// Message / checkpoint sizes in bytes.
using Bytes = std::int64_t;

/// Saturating int64 addition for TimeNs/Bytes accumulators. At extreme
/// scales (millions of ranks, hours of simulated time) per-run totals can
/// exceed the int64 range; clamping to the range boundary beats silently
/// wrapping into nonsense.
constexpr std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out))
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  return out;
}

namespace units {

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1000;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;
inline constexpr TimeNs kMinute = 60 * kSecond;
inline constexpr TimeNs kHour = 60 * kMinute;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Convert a TimeNs to (double) seconds. Analytic-model boundary only.
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }

/// Convert (double) seconds to TimeNs, rounding to nearest nanosecond.
/// Negative inputs round symmetrically.
constexpr TimeNs from_seconds(double s) {
  const double ns = s * 1e9;
  return static_cast<TimeNs>(ns >= 0 ? ns + 0.5 : ns - 0.5);
}

/// Human-readable time, e.g. "1.234 ms", "12.0 s". For reports and logs.
std::string format_time(TimeNs t);

/// Human-readable size, e.g. "4.0 KiB", "2.5 GiB".
std::string format_bytes(Bytes b);

}  // namespace units

namespace literals {

constexpr TimeNs operator""_ns(unsigned long long v) { return static_cast<TimeNs>(v); }
constexpr TimeNs operator""_us(unsigned long long v) { return static_cast<TimeNs>(v) * units::kMicrosecond; }
constexpr TimeNs operator""_ms(unsigned long long v) { return static_cast<TimeNs>(v) * units::kMillisecond; }
constexpr TimeNs operator""_s(unsigned long long v) { return static_cast<TimeNs>(v) * units::kSecond; }
constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) * units::kKiB; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) * units::kMiB; }
constexpr Bytes operator""_GiB(unsigned long long v) { return static_cast<Bytes>(v) * units::kGiB; }

}  // namespace literals

}  // namespace chksim
