// Minimal result-table builder for the benchmark harnesses: accumulates rows
// of heterogeneous cells and renders either an aligned ASCII table (the form
// the paper's tables/figure series are reported in) or CSV for plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace chksim {

/// Column-oriented table with string/number cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; cells are appended with the << overloads.
  Table& row();

  Table& operator<<(const std::string& cell);
  Table& operator<<(const char* cell);
  Table& operator<<(double v);
  Table& operator<<(std::int64_t v);
  Table& operator<<(int v) { return *this << static_cast<std::int64_t>(v); }
  Table& operator<<(std::size_t v) { return *this << static_cast<std::int64_t>(v); }

  /// Number of complete + current rows.
  std::size_t rows() const { return cells_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Cell accessor (row r, column c) as formatted string.
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Aligned, pipe-separated ASCII rendering (markdown-compatible).
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// JSON array of objects keyed by the headers; cells that parse as
  /// numbers are emitted as numbers, everything else as strings.
  std::string to_json() const;

  /// Write ASCII to a stream (used by benches: `std::cout << t.to_ascii()`).
  void print(std::ostream& os) const;

 private:
  void put(std::string cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double with %.4g (the table default), exposed for tests.
std::string format_g(double v);

}  // namespace chksim
