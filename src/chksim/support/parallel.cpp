#include "chksim/support/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace chksim::par {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_jobs(int jobs) { return jobs <= 0 ? hardware_jobs() : jobs; }

struct ThreadPool::Impl {
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> queue;
  };

  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<std::thread> threads;
  std::mutex wake_mutex;
  std::condition_variable wake;
  std::atomic<std::int64_t> pending{0};
  std::atomic<std::uint64_t> submit_cursor{0};
  bool stopping = false;  // guarded by wake_mutex

  std::function<void()> try_take(std::size_t self) {
    const std::size_t n = workers.size();
    // Own queue first (LIFO: best cache locality for freshly pushed work) …
    {
      Worker& w = *workers[self];
      std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.queue.empty()) {
        auto task = std::move(w.queue.back());
        w.queue.pop_back();
        return task;
      }
    }
    // … then steal from the others, oldest task first.
    for (std::size_t k = 1; k < n; ++k) {
      Worker& w = *workers[(self + k) % n];
      std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.queue.empty()) {
        auto task = std::move(w.queue.front());
        w.queue.pop_front();
        return task;
      }
    }
    return nullptr;
  }

  bool try_run_one() {
    std::function<void()> task = try_take(0);
    if (task == nullptr) return false;
    pending.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
  }

  void run_worker(std::size_t self) {
    for (;;) {
      std::function<void()> task = try_take(self);
      if (task == nullptr) {
        std::unique_lock<std::mutex> lock(wake_mutex);
        wake.wait(lock, [&] {
          return stopping || pending.load(std::memory_order_acquire) > 0;
        });
        if (pending.load(std::memory_order_acquire) == 0 && stopping) return;
        continue;
      }
      pending.fetch_sub(1, std::memory_order_acq_rel);
      task();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  int n = threads;
  if (n <= 0) n = std::max(3, hardware_jobs() - 1);
  impl_->workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    impl_->workers.push_back(std::make_unique<Impl::Worker>());
  impl_->threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    impl_->threads.emplace_back(
        [impl = impl_.get(), i] { impl->run_worker(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->wake_mutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

int ThreadPool::threads() const { return static_cast<int>(impl_->threads.size()); }

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t w =
      static_cast<std::size_t>(impl_->submit_cursor.fetch_add(1)) %
      impl_->workers.size();
  {
    std::lock_guard<std::mutex> lock(impl_->workers[w]->mutex);
    impl_->workers[w]->queue.push_back(std::move(task));
  }
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  impl_->wake.notify_one();
}

bool ThreadPool::try_run_one() { return impl_->try_run_one(); }

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

namespace {

struct BatchState {
  std::int64_t count = 0;
  const std::function<void(std::int64_t)>* task = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> stop{false};

  std::mutex mutex;
  std::condition_variable done;
  int helpers_left = 0;             // guarded by mutex
  std::exception_ptr error;         // guarded by mutex
  std::int64_t error_index = -1;    // guarded by mutex

  // Claims are handed out in index order, so when index k throws, every
  // index < k has already been claimed and will run to completion before the
  // batch returns — the lowest recorded error is therefore the same for any
  // jobs value.
  void drain() {
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) return;
      const std::int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error_index < 0 || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
        stop.store(true, std::memory_order_relaxed);
      }
    }
  }
};

}  // namespace

void for_each_index(std::int64_t count, int jobs,
                    const std::function<void(std::int64_t)>& task) {
  jobs = resolve_jobs(jobs);
  if (count <= 0) return;

  ThreadPool& pool = ThreadPool::shared();
  const int helpers = static_cast<int>(std::min<std::int64_t>(
      std::min(jobs - 1, pool.threads()), count - 1));
  if (helpers <= 0) {
    for (std::int64_t i = 0; i < count; ++i) task(i);
    return;
  }

  auto state = std::make_shared<BatchState>();
  state->count = count;
  state->task = &task;
  state->helpers_left = helpers;
  for (int h = 0; h < helpers; ++h) {
    pool.submit([state] {
      state->drain();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->helpers_left == 0) state->done.notify_all();
    });
  }
  state->drain();
  // Wait for every helper closure to have run (a helper that starts after
  // the work is exhausted simply finds nothing to claim). While waiting,
  // help execute queued pool tasks: if all workers are blocked inside nested
  // batches of their own, the blocked callers run each other's helper
  // closures, so a nested batch can never deadlock the pool.
  std::unique_lock<std::mutex> lock(state->mutex);
  while (state->helpers_left > 0) {
    lock.unlock();
    const bool helped = pool.try_run_one();
    lock.lock();
    if (!helped) {
      state->done.wait_for(lock, std::chrono::milliseconds(1),
                           [&] { return state->helpers_left == 0; });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace chksim::par
