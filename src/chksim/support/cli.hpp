// Tiny command-line flag parser used by the examples and study drivers.
//
// Supports "--key value", "--key=value", and bare "--flag" booleans, plus
// positional arguments. No external dependencies, deterministic error
// messages, and a generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chksim {

class Cli {
 public:
  /// Declare a flag with a default value and a help string before parse().
  /// Throws std::logic_error if `name` is already declared — duplicate
  /// definitions are always a programming error (two call sites silently
  /// fighting over one flag).
  Cli& flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parse argv. Returns false (and fills error()) on unknown flags or
  /// missing values; the caller should print usage() and exit. Unknown-flag
  /// errors include a nearest-match suggestion when a declared flag is
  /// plausibly what the user meant.
  bool parse(int argc, const char* const* argv);

  /// Value accessors (after parse; defaults apply when the flag is absent).
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the user explicitly set the flag.
  bool is_set(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Formatted help text for all declared flags.
  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

/// Declare the standard observability flags shared by the example drivers:
///   --trace-out <path>   write a Chrome trace-event JSON of the traced run
///                        (open in Perfetto or chrome://tracing)
///   --report-out <path>  write the machine-readable JSON metrics run-report
/// Both default to "" (off). Drivers check cli.is_set(...) and wire an
/// obs::EventTracer / obs::MetricsRegistry accordingly.
Cli& add_observability_flags(Cli& cli);

/// The standard driver options shared by the bench harnesses and
/// chksim_run, so every sweep-style binary parses identically:
///   --jobs N    concurrency for independent cells/trials; 0 = all cores.
///               Results are identical for every value.
///   --smoke     shrink the sweep to a few-second subset (used by the
///               determinism regression gates, which byte-compare output
///               across --jobs values).
///   --ranks N   override the scale axis; 0 = the driver's built-in scales.
///   --critical-path-out <path>
///               re-run the driver's designated focus cell with tracing and
///               write its critical-path blame report (JSON) to <path> and a
///               flow-stitched Chrome trace to <path>.trace.json. Off by
///               default; the extra traced run is serial and deterministic,
///               so the files are byte-identical for every --jobs value.
///   --shards N  conservative-PDES shard count for the direct engine runs
///               (sim::ParEngine); 1 = the serial engine. Output is
///               byte-identical for every value (the pdes_determinism gates
///               compare across shard counts), so this is purely a
///               throughput/scale knob.
struct StdOptions {
  int jobs = 0;  ///< Resolved: >= 1 after standard_options().
  bool smoke = false;
  int ranks = 0;
  int shards = 1;  ///< Engine shard count; >= 1 after standard_options().
  std::string critical_path_out;  ///< "" = off.
};

/// Declare --jobs/--smoke/--ranks on `cli`.
Cli& add_standard_flags(Cli& cli);

/// Extract the standard options after parse(). Resolves --jobs through
/// par::resolve_jobs (0 -> hardware concurrency) and validates --ranks >= 0
/// (throws std::invalid_argument otherwise).
StdOptions standard_options(const Cli& cli);

}  // namespace chksim
