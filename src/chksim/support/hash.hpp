// Content hashing for the campaign result cache.
//
// FNV-1a is not cryptographic — the cache defends against *accidental*
// collisions and corruption, not adversaries. content_key() therefore
// combines two independent 64-bit FNV-1a streams (different offset bases)
// into a 128-bit hex key: more than enough headroom for the ~1e4 cells a
// campaign expands to, while staying dependency-free and byte-stable across
// platforms.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace chksim::hash {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
/// Second, independent stream basis (golden-ratio constant).
inline constexpr std::uint64_t kFnvOffsetAlt = kFnvOffset ^ 0x9e3779b97f4a7c15ull;

/// 64-bit FNV-1a over bytes, seedable for chaining.
constexpr std::uint64_t fnv1a(std::string_view data, std::uint64_t h = kFnvOffset) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// 32-hex-character content key (two independent FNV-1a streams).
inline std::string content_key(std::string_view data) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(fnv1a(data)),
                static_cast<unsigned long long>(fnv1a(data, kFnvOffsetAlt)));
  return buf;
}

}  // namespace chksim::hash
