// DaryHeap: a d-ary (default 4-ary) binary-heap replacement for
// std::priority_queue on the simulator's event queue.
//
// A 4-ary heap is ~half as deep as a binary heap, so pops touch fewer cache
// lines; with chksim's large Event elements the fan-out-4 sift-down wins
// measurably. The comparator is a *less/earlier* predicate (min-heap):
// earlier(a, b) == true means a must pop before b — matching the engine's
// strict (time, seq) total order, under which any correct heap pops the
// identical event sequence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace chksim {

template <typename T, typename Earlier, std::size_t D = 4>
class DaryHeap {
 public:
  static_assert(D >= 2, "a heap needs at least binary fan-out");

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  std::size_t capacity() const { return v_.capacity(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  const T& top() const { return v_.front(); }

  void push(T value) {
    // Hole insertion: slide parents down into the hole instead of swapping,
    // one move per level instead of three.
    std::size_t i = v_.size();
    v_.emplace_back();
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!earlier_(value, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(value);
  }

  void pop() {
    T last = std::move(v_.back());
    v_.pop_back();
    if (v_.empty()) return;
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * D + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + D, n);
      for (std::size_t c = first + 1; c < end; ++c)
        if (earlier_(v_[c], v_[best])) best = c;
      if (!earlier_(v_[best], last)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(last);
  }

 private:

  std::vector<T> v_;
  Earlier earlier_;
};

}  // namespace chksim
