#include "chksim/support/table.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace chksim {

std::string format_g(double v) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.4g", v);
  return std::string(buf.data());
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

void Table::put(std::string cell) {
  assert(!cells_.empty() && "call row() before streaming cells");
  assert(cells_.back().size() < headers_.size() && "row has too many cells");
  cells_.back().push_back(std::move(cell));
}

Table& Table::operator<<(const std::string& cell) {
  put(cell);
  return *this;
}

Table& Table::operator<<(const char* cell) {
  put(std::string(cell));
  return *this;
}

Table& Table::operator<<(double v) {
  put(format_g(v));
  return *this;
}

Table& Table::operator<<(std::int64_t v) {
  put(std::to_string(v));
  return *this;
}

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ' + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + '\n';
  };

  std::string out = emit_row(headers_);
  std::string rule = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    rule += std::string(width[c] + 2, '-') + "|";
  out += rule + '\n';
  for (const auto& row : cells_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ',';
      line += escape(row[c]);
    }
    return line + '\n';
  };
  std::string out = emit_row(headers_);
  for (const auto& row : cells_) out += emit_row(row);
  return out;
}

std::string Table::to_json() const {
  auto is_number = [](const std::string& s) {
    if (s.empty()) return false;
    std::size_t used = 0;
    try {
      (void)std::stod(s, &used);
    } catch (const std::exception&) {
      return false;
    }
    return used == s.size();
  };
  auto escape = [](const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += ch;
      }
    }
    return out + "\"";
  };
  std::string out = "[";
  for (std::size_t r = 0; r < cells_.size(); ++r) {
    if (r > 0) out += ',';
    out += "\n  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ", ";
      const std::string& cell = c < cells_[r].size() ? cells_[r][c] : std::string();
      out += escape(headers_[c]) + ": ";
      out += is_number(cell) ? cell : escape(cell);
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

void Table::print(std::ostream& os) const { os << to_ascii(); }

}  // namespace chksim
