#include "chksim/support/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace chksim::units {

namespace {

std::string format_scaled(double value, const char* unit) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3g %s", value, unit);
  return std::string(buf.data());
}

}  // namespace

std::string format_time(TimeNs t) {
  const bool neg = t < 0;
  const double v = std::abs(static_cast<double>(t));
  std::string s;
  if (v < 1e3) {
    s = format_scaled(v, "ns");
  } else if (v < 1e6) {
    s = format_scaled(v / 1e3, "us");
  } else if (v < 1e9) {
    s = format_scaled(v / 1e6, "ms");
  } else if (v < 60e9) {
    s = format_scaled(v / 1e9, "s");
  } else if (v < 3600e9) {
    s = format_scaled(v / 60e9, "min");
  } else {
    s = format_scaled(v / 3600e9, "h");
  }
  return neg ? "-" + s : s;
}

std::string format_bytes(Bytes b) {
  const bool neg = b < 0;
  const double v = std::abs(static_cast<double>(b));
  std::string s;
  if (v < static_cast<double>(kKiB)) {
    s = format_scaled(v, "B");
  } else if (v < static_cast<double>(kMiB)) {
    s = format_scaled(v / static_cast<double>(kKiB), "KiB");
  } else if (v < static_cast<double>(kGiB)) {
    s = format_scaled(v / static_cast<double>(kMiB), "MiB");
  } else {
    s = format_scaled(v / static_cast<double>(kGiB), "GiB");
  }
  return neg ? "-" + s : s;
}

}  // namespace chksim::units
