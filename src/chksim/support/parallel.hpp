// chksim::par — a small work-stealing thread pool and a deterministic
// task-batch API.
//
// chksim's studies decompose into many independent simulations (sweep cells,
// Monte-Carlo trials, base/perturbed engine runs). This module runs such
// batches on all cores while guaranteeing that the *results* are
// byte-identical for any --jobs value, including 1:
//
//  * a batch is an indexed set of tasks; task i derives all of its random
//    state from (seed, i) and writes only to result slot i, so scheduling
//    order cannot leak into the output;
//  * any serial reduction over the slots (stats, percentiles, metrics
//    merging) happens after the batch barrier, in index order.
//
// The pool itself is one process-wide set of workers (ThreadPool::shared()),
// each owning a deque: a worker pops its own queue LIFO and steals from the
// others FIFO when empty. Batches cap their concurrency at `jobs` by
// enlisting at most jobs-1 workers; the calling thread always participates,
// so a batch makes progress even when every worker is busy (nested batches
// cannot deadlock).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace chksim::par {

/// Number of concurrent executors used when jobs == 0 ("auto"): the
/// hardware concurrency, at least 1.
int hardware_jobs();

/// Resolve a --jobs style request: values <= 0 mean hardware_jobs().
int resolve_jobs(int jobs);

/// A fixed-size work-stealing thread pool. Tasks submitted from outside are
/// distributed round-robin across the per-worker deques; idle workers steal
/// from their neighbours. The destructor drains all queued tasks, then joins.
class ThreadPool {
 public:
  /// threads <= 0 selects hardware_jobs() - 1 (the submitting thread is
  /// expected to participate in batches), but at least 3 so that the
  /// determinism and race tests exercise real concurrency even on
  /// single-core CI containers (idle workers cost nothing but a condvar).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const;

  /// Enqueue one task. Tasks must not throw (batch tasks are wrapped by
  /// for_each_index, which captures exceptions; raw submissions that throw
  /// terminate).
  void submit(std::function<void()> task);

  /// Pop and execute one queued task on the calling thread, if any.
  /// Used by batch waiters to lend a hand instead of blocking.
  bool try_run_one();

  /// The process-wide pool, created on first use.
  static ThreadPool& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic batch execution: runs task(i) for every i in [0, count)
/// using up to `jobs` concurrent executors (the calling thread plus at most
/// jobs-1 shared-pool workers). Returns after every started task finished.
///
/// Exceptions: if any task throws, the batch stops claiming new indices,
/// finishes the tasks already started, and rethrows the exception with the
/// lowest index (which later indices also ran is unspecified — but every
/// index below a throwing one has run to completion, so the rethrown error
/// is the same for every jobs value).
void for_each_index(std::int64_t count, int jobs,
                    const std::function<void(std::int64_t)>& task);

}  // namespace chksim::par
