// A small strict JSON reader/writer.
//
// chksim emits JSON in several places (MetricsRegistry::write_json, trace
// exporters); the campaign subsystem also needs to *read* it — scenario
// specs, cached cell results, the resume journal. This parser is
// deliberately strict so that canonicalised specs hash stably and corrupt
// cache/journal bytes are rejected rather than half-understood:
//
//  * RFC 8259 grammar only — no comments, trailing commas, single quotes,
//    NaN/Infinity, leading zeros, or bare values with trailing garbage;
//  * duplicate object keys are an error (a spec that says "ranks" twice is
//    ambiguous, not last-write-wins);
//  * strings must be valid UTF-8 (overlongs, surrogates, and >U+10FFFF
//    rejected); \uXXXX escapes (including surrogate pairs) are decoded;
//  * numbers that overflow double range are an error; integral values that
//    fit int64 keep exact integer identity through a dump/parse round trip;
//  * nesting depth is capped (kMaxDepth) so hostile inputs cannot blow the
//    stack.
//
// dump() is deterministic: object keys sorted (std::map), integers printed
// exactly, doubles in shortest round-trip form — so canonical specs and
// merged campaign reports are byte-stable across runs and platforms.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace chksim::json {

/// Maximum container nesting depth accepted by parse().
inline constexpr int kMaxDepth = 64;

/// Thrown by parse() with a 1-based position of the offending byte.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int column)
      : std::runtime_error("JSON parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Thrown by the as_*() accessors on a kind mismatch.
class TypeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Value>;
  /// Sorted storage gives canonical (deterministic) dumps for free.
  using Object = std::map<std::string, Value>;

  Value() = default;  ///< null
  static Value boolean(bool b);
  static Value number(double v);
  static Value integer(std::int64_t v);
  static Value string(std::string s);
  static Value array(Array items = {});
  static Value object(Object members = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  /// Number that is exactly representable as int64 (parsed without
  /// fraction/exponent, or constructed via integer()).
  bool is_integer() const { return kind_ == Kind::kNumber && int_exact_; }

  bool as_bool() const;
  double as_double() const;         ///< Any number.
  std::int64_t as_int() const;      ///< Integral numbers only.
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(const std::string& key) const;

  /// Deterministic serialisation: sorted keys, exact integers, shortest
  /// round-trip doubles, \u-escaped control characters. `indent` < 0 gives
  /// the compact one-line form; >= 0 pretty-prints with that step.
  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;
  std::string str_;
  Array arr_;
  Object obj_;

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Parse a complete JSON document. Throws ParseError on any violation.
Value parse(std::string_view text);

/// Non-throwing wrapper: false + *error on failure.
bool try_parse(std::string_view text, Value* out, std::string* error);

/// Shortest round-trip-exact decimal form of a double (no trailing zeros
/// beyond what re-reading needs). Shared by Value::dump and the
/// MetricsRegistry JSON writer so every chksim report formats numbers
/// identically.
std::string format_number(double v);

/// Quote + escape a string for embedding in JSON output.
std::string escape_string(std::string_view s);

}  // namespace chksim::json
