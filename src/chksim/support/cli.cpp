#include "chksim/support/cli.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "chksim/support/parallel.hpp"

namespace chksim {

namespace {

/// Levenshtein distance, for unknown-flag suggestions. Flag names are
/// short, so the O(n*m) rolling-row form is plenty.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

Cli& Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  if (flags_.count(name) != 0)
    throw std::logic_error("duplicate flag definition: --" + name);
  Flag f;
  f.value = default_value;
  f.default_value = default_value;
  f.help = help;
  flags_[name] = std::move(f);
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + arg;
      // Suggest the closest declared flag when it is plausibly a typo:
      // small edit distance, or the unknown name is a prefix of exactly
      // one declared flag. Ties break lexicographically (sorted map).
      std::string best;
      std::size_t best_dist = std::string::npos;
      for (const auto& [name, f] : flags_) {
        (void)f;
        const std::size_t d = edit_distance(arg, name);
        if (d < best_dist) {
          best_dist = d;
          best = name;
        }
      }
      const std::size_t threshold = arg.size() <= 3 ? 1 : 2;
      if (!best.empty() &&
          (best_dist <= threshold || best.rfind(arg, 0) == 0))
        error_ += " (did you mean --" + best + "?)";
      return false;
    }
    Flag& f = it->second;
    if (!has_value) {
      // Booleans may be bare; other flags take the next token.
      const bool is_boolish = f.default_value == "true" || f.default_value == "false";
      if (is_boolish) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + arg + " needs a value";
        return false;
      }
    }
    f.value = std::move(value);
    f.set = true;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::logic_error("undeclared flag: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t used = 0;
  const std::int64_t out = std::stoll(v, &used);
  if (used != v.size())
    throw std::invalid_argument("flag --" + name + ": not an integer: " + v);
  return out;
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t used = 0;
  const double out = std::stod(v, &used);
  if (used != v.size())
    throw std::invalid_argument("flag --" + name + ": not a number: " + v);
  return out;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: " + v);
}

bool Cli::is_set(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

Cli& add_observability_flags(Cli& cli) {
  return cli
      .flag("trace-out", "",
            "write a Chrome trace-event JSON of the run (Perfetto-loadable)")
      .flag("report-out", "", "write the JSON metrics run-report");
}

Cli& add_standard_flags(Cli& cli) {
  return cli
      .flag("jobs", "0", "concurrent cells/trials; 0 = hardware concurrency")
      .flag("smoke", "false", "run a small subset (for regression tests)")
      .flag("ranks", "0", "override rank count / scale axis; 0 = driver default")
      .flag("shards", "1",
            "conservative-PDES shards for direct engine runs; 1 = serial "
            "engine, N > 1 = sharded (byte-identical output)")
      .flag("critical-path-out", "",
            "write the critical-path blame report (JSON) of the driver's "
            "focus cell here, plus a flow-stitched Chrome trace at "
            "<path>.trace.json");
}

StdOptions standard_options(const Cli& cli) {
  StdOptions opt;
  opt.jobs = par::resolve_jobs(static_cast<int>(cli.get_int("jobs")));
  opt.smoke = cli.get_bool("smoke");
  opt.ranks = static_cast<int>(cli.get_int("ranks"));
  if (opt.ranks < 0) throw std::invalid_argument("--ranks must be >= 0");
  opt.shards = static_cast<int>(cli.get_int("shards"));
  if (opt.shards < 1) throw std::invalid_argument("--shards must be >= 1");
  // Accidental huge --ranks is now caught where it matters: the engines
  // enforce --rss-budget-mib up front with a structured diagnostic that
  // includes the sharded-PDES pointer (see sim::estimate_working_set), so no
  // stderr advisory is needed here.
  opt.critical_path_out = cli.get("critical-path-out");
  return opt;
}

std::string Cli::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, f] : flags_) {
    out += "  --" + name + " (default: " + f.default_value + ")  " + f.help + "\n";
  }
  return out;
}

}  // namespace chksim
