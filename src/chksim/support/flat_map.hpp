// FlatMap: a minimal open-addressing hash table for the simulator hot path.
//
// std::unordered_map allocates one node per element and chases a pointer per
// lookup; the engine does a map lookup per receive/arrival/send, which
// dominates its profile at scale. FlatMap keeps all slots in one contiguous
// array (a per-rank arena), probes linearly from a multiplicative hash, and
// supports exactly the operations the engine needs: find, operator[]
// (insert-or-get), erase (backward-shift deletion, no tombstones — the match
// pool releases drained (src, tag) bindings so the live working set stays
// bounded at scale), and iteration. Capacity is never returned on erase; the
// table stays at its high-water slot count for churn-free reuse.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace chksim {

template <typename Key, typename Value>
class FlatMap {
 public:
  /// Insert-or-get. The returned reference is invalidated by the next
  /// insertion (the slot array may rehash).
  Value& operator[](Key key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) grow();
    std::size_t i = probe(key);
    if (!slots_[i].used) {
      slots_[i].used = true;
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  /// Null when absent. Invalidated like operator[].
  Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    const std::size_t i = probe(key);
    return slots_[i].used ? &slots_[i].value : nullptr;
  }
  const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Remove `key` if present. Backward-shift deletion: the vacated slot is
  /// refilled by sliding back any later element of the same probe cluster
  /// whose home position precedes the hole, so lookups never need tombstones
  /// and the probe-length invariant survives arbitrary erase/insert churn.
  bool erase(Key key) {
    if (slots_.empty()) return false;
    std::size_t i = probe(key);
    if (!slots_[i].used) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!slots_[j].used) break;
      const std::size_t h = static_cast<std::size_t>(
                                mix(static_cast<std::uint64_t>(slots_[j].key))) &
                            mask;
      // The record at j may fill the hole at i only if its probe path from
      // its home h passes through i (cyclically: i lies in [h, j]).
      if (((j - h) & mask) >= ((j - i) & mask)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    slots_[i] = Slot{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bytes reserved by the slot array (working-set census; cold path).
  std::size_t memory_bytes() const { return slots_.size() * sizeof(Slot); }

  /// Visit every (key, value) pair; order is unspecified (cold paths only —
  /// deadlock diagnostics iterate, the hot path never does).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.used) fn(s.key, s.value);
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, so linear probing stays short
    // even for the engine's structured (src << 32 | tag) keys.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::size_t probe(Key key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(static_cast<std::uint64_t>(key))) & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.empty() ? 16 : old.size() * 2);
    for (Slot& s : old) {
      if (!s.used) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i =
          static_cast<std::size_t>(mix(static_cast<std::uint64_t>(s.key))) & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i].used = true;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace chksim
