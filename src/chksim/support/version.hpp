// Build provenance: the code-version stamp and build type baked in at
// configure time. The campaign result cache keys on code_version() (a
// result computed by one build must not satisfy a lookup from another), and
// every MetricsRegistry JSON report carries all three fields so a stored
// report can always be traced back to the code that produced it.
//
// The stamp comes from `git describe --always --dirty` at CMake configure
// time (see src/CMakeLists.txt); it goes stale only between configures,
// which is exactly the granularity at which the build directory itself goes
// stale. Without git (release tarballs) it falls back to "unversioned".
#pragma once

namespace chksim::version {

/// JSON report schema version; bump when report layout changes shape.
int schema_version();

/// Code identity: git describe output, or "unversioned".
const char* code_version();

/// CMAKE_BUILD_TYPE of this binary ("Release", "RelWithDebInfo", ...).
const char* build_type();

}  // namespace chksim::version
