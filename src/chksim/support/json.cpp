#include "chksim/support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace chksim::json {

// ---- Value construction and access ---------------------------------------

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  // Preserve integer identity for whole values in the exact range, so that
  // number(4.0) and integer(4) canonicalise identically.
  if (d >= -9007199254740992.0 && d <= 9007199254740992.0 &&
      d == static_cast<double>(static_cast<std::int64_t>(d))) {
    v.int_ = static_cast<std::int64_t>(d);
    v.int_exact_ = true;
  }
  return v;
}

Value Value::integer(std::int64_t i) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(i);
  v.int_ = i;
  v.int_exact_ = true;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::array(Array items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}

Value Value::object(Object members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

namespace {
const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Value::Kind got) {
  throw TypeError(std::string("expected ") + want + ", got " + kind_name(got));
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error("bool", kind_);
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) type_error("number", kind_);
  return num_;
}

std::int64_t Value::as_int() const {
  if (!is_integer()) type_error("integer", kind_);
  return int_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error("string", kind_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return arr_;
}

Value::Array& Value::as_array() {
  if (kind_ != Kind::kArray) type_error("array", kind_);
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return obj_;
}

Value::Object& Value::as_object() {
  if (kind_ != Kind::kObject) type_error("object", kind_);
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it != obj_.end() ? &it->second : nullptr;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kNumber:
      if (int_exact_ != other.int_exact_) return false;
      return int_exact_ ? int_ == other.int_ : num_ == other.num_;
    case Kind::kString: return str_ == other.str_;
    case Kind::kArray: return arr_ == other.arr_;
    case Kind::kObject: return obj_ == other.obj_;
  }
  return false;
}

// ---- Serialisation --------------------------------------------------------

std::string format_number(double v) {
  char buf[64];
  // Prefer the shortest %g form that round-trips exactly.
  for (int prec : {6, 9, 12, 15}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) return buf;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape_string(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

namespace {
void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}
}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      if (int_exact_) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
        out += buf;
      } else {
        out += format_number(num_);
      }
      return;
    case Kind::kString:
      out += escape_string(str_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& v : arr_) {
        if (!first) out += indent >= 0 ? "," : ", ";
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
        first = false;
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : obj_) {
        if (!first) out += indent >= 0 ? "," : ", ";
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        out += escape_string(key);
        out += ": ";
        v.dump_to(out, indent, depth + 1);
        first = false;
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---- Parsing --------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(what, line, col);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      fail("invalid literal (expected " + std::string(lit) + ")");
    pos_ += lit.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than " + std::to_string(kMaxDepth));
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n': expect_literal("null"); return Value();
      case 't': expect_literal("true"); return Value::boolean(true);
      case 'f': expect_literal("false"); return Value::boolean(false);
      case '"': return Value::string(parse_string());
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value::Array items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value::array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return Value::array(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (members.count(key) != 0) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') return Value::object(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return cp;
  }

  /// Validate one UTF-8 sequence starting at the current byte (which is
  /// known to be >= 0x80) and append it. Strict: rejects continuation-byte
  /// errors, overlong encodings, surrogates, and code points > U+10FFFF.
  void consume_utf8(std::string& out) {
    const unsigned char b0 = static_cast<unsigned char>(next());
    int len = 0;
    std::uint32_t cp = 0;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      --pos_;
      fail("invalid UTF-8 byte in string");
    }
    for (int i = 1; i < len; ++i) {
      if (eof()) fail("truncated UTF-8 sequence in string");
      const unsigned char b = static_cast<unsigned char>(next());
      if ((b & 0xC0) != 0x80) {
        --pos_;
        fail("invalid UTF-8 continuation byte in string");
      }
      cp = (cp << 6) | (b & 0x3F);
    }
    static constexpr std::uint32_t kMinByLen[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMinByLen[len]) fail("overlong UTF-8 encoding in string");
    if (cp >= 0xD800 && cp <= 0xDFFF) fail("UTF-8 encoded surrogate in string");
    if (cp > 0x10FFFF) fail("UTF-8 code point beyond U+10FFFF in string");
    append_utf8(out, cp);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("unescaped control character in string");
      if (c >= 0x80) {
        consume_utf8(out);
        continue;
      }
      ++pos_;
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (next() != '\\' || next() != 'u') {
              --pos_;
              fail("unpaired surrogate in \\u escape");
            }
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate in \\u escape");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]* (no leading zeros).
    if (eof()) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
      if (!eof() && peek() >= '0' && peek() <= '9') fail("leading zero in number");
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size())
        return Value::integer(v);
      // Falls through: magnitude beyond int64, keep it as a double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (errno == ERANGE && !std::isfinite(d)) fail("number out of range");
    if (!std::isfinite(d)) fail("number out of range");
    return Value::number(d);
  }
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

bool try_parse(std::string_view text, Value* out, std::string* error) {
  try {
    Value v = parse(text);
    if (out != nullptr) *out = std::move(v);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace chksim::json
