#include "chksim/support/version.hpp"

#ifndef CHKSIM_CODE_VERSION
#define CHKSIM_CODE_VERSION "unversioned"
#endif
#ifndef CHKSIM_BUILD_TYPE
#define CHKSIM_BUILD_TYPE "unknown"
#endif

namespace chksim::version {

int schema_version() { return 1; }

const char* code_version() { return CHKSIM_CODE_VERSION; }

const char* build_type() { return CHKSIM_BUILD_TYPE; }

}  // namespace chksim::version
