// Streaming and batch statistics used by the simulator and the benchmark
// harnesses: Welford mean/variance, order statistics, and fixed-width
// histograms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace chksim {

/// Single-pass (Welford) accumulator for count/mean/variance/min/max.
class StreamingStats {
 public:
  void add(double x);

  /// Merge another accumulator (parallel-friendly Chan et al. update).
  void merge(const StreamingStats& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  double variance() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Order statistic with linear interpolation, q in [0, 1].
/// The input is copied; use percentile_inplace to avoid the copy.
double percentile(std::vector<double> values, double q);

/// As percentile(), but sorts the given vector in place.
double percentile_inplace(std::vector<double>& values, double q);

/// Median convenience wrapper.
inline double median(std::vector<double> values) { return percentile(std::move(values), 0.5); }

/// Summary of a batch of samples, for table output.
struct Summary {
  std::int64_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;

  static Summary of(std::vector<double> values);
  std::string to_string() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturating underflow/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);

  /// Accumulate another histogram of the same shape ([lo, hi) and bin
  /// count); throws std::invalid_argument on a shape mismatch.
  void merge(const Histogram& other);

  std::int64_t bin_count(int i) const { return counts_.at(static_cast<std::size_t>(i)); }
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  std::int64_t total() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  double bin_lo(int i) const { return lo_ + width_ * i; }
  double bin_hi(int i) const { return lo_ + width_ * (i + 1); }

  /// Multi-line ASCII rendering with proportional bars.
  std::string to_string(int bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace chksim
