// Deterministic pseudo-random number generation.
//
// chksim never uses std::random_device or platform entropy: every stochastic
// component takes an explicit seed so that simulations are exactly
// reproducible. The engine is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64; both are implemented here from the public-domain reference
// algorithms so the library has no dependency on unspecified standard-library
// distribution implementations either — all distributions below are our own,
// guaranteeing bit-identical streams across toolchains.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace chksim {

/// splitmix64: used to expand a 64-bit seed into xoshiro state, and handy as a
/// tiny stateless hash for decorrelating per-rank substreams.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent substream, e.g. one per simulated rank.
  /// Streams for distinct (seed, stream) pairs are decorrelated by hashing.
  static Rng substream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x632be59bd9b4e019ULL * (stream + 1));
    return Rng(splitmix64(sm));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's unbiased method.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean);

  /// Weibull variate with shape k and scale lambda (both > 0).
  /// k < 1 models infant mortality (typical for HPC node failures).
  double weibull(double shape, double scale);

  /// Normal variate (Marsaglia polar method).
  double normal(double mean, double stddev);

  /// Truncated normal: resamples until the variate lands in [lo, hi].
  double normal_truncated(double mean, double stddev, double lo, double hi);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace chksim
