#include "chksim/fault/failures.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chksim::fault {

Exponential::Exponential(double mtbf_seconds) : mtbf_(mtbf_seconds) {
  if (mtbf_seconds <= 0) throw std::invalid_argument("Exponential: mtbf must be > 0");
}

double Exponential::sample_seconds(Rng& rng) const { return rng.exponential(mtbf_); }

Weibull::Weibull(double mtbf_seconds, double shape) : mtbf_(mtbf_seconds), shape_(shape) {
  if (mtbf_seconds <= 0) throw std::invalid_argument("Weibull: mtbf must be > 0");
  if (shape <= 0) throw std::invalid_argument("Weibull: shape must be > 0");
  scale_ = mtbf_seconds / std::tgamma(1.0 + 1.0 / shape);
}

std::string Weibull::name() const {
  return "weibull(k=" + std::to_string(shape_) + ")";
}

double Weibull::sample_seconds(Rng& rng) const { return rng.weibull(shape_, scale_); }

LogNormal::LogNormal(double mtbf_seconds, double sigma)
    : mtbf_(mtbf_seconds), sigma_(sigma) {
  if (mtbf_seconds <= 0) throw std::invalid_argument("LogNormal: mtbf must be > 0");
  if (sigma <= 0) throw std::invalid_argument("LogNormal: sigma must be > 0");
  // E[exp(N(mu, sigma^2))] = exp(mu + sigma^2/2) = mtbf.
  mu_ = std::log(mtbf_seconds) - sigma * sigma / 2.0;
}

std::string LogNormal::name() const {
  return "lognormal(sigma=" + std::to_string(sigma_) + ")";
}

double LogNormal::sample_seconds(Rng& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

std::string trace_to_csv(const std::vector<Failure>& trace) {
  std::string out = "time_ns,node\n";
  for (const Failure& f : trace)
    out += std::to_string(f.time) + ',' + std::to_string(f.node) + '\n';
  return out;
}

std::vector<Failure> trace_from_csv(const std::string& csv) {
  std::vector<Failure> trace;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string::npos) eol = csv.size();
    const std::string line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("time_ns", 0) == 0) continue;  // header
    const auto comma = line.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": missing comma: " + line);
    try {
      std::size_t used = 0;
      Failure f;
      f.time = std::stoll(line.substr(0, comma), &used);
      if (used != comma) throw std::invalid_argument("");
      const std::string node_str = line.substr(comma + 1);
      f.node = std::stoi(node_str, &used);
      if (used != node_str.size()) throw std::invalid_argument("");
      if (f.time < 0 || f.node < 0) throw std::invalid_argument("");
      trace.push_back(f);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace CSV line " + std::to_string(line_no) +
                                  ": malformed entry: " + line);
    }
  }
  std::sort(trace.begin(), trace.end(), [](const Failure& a, const Failure& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.node < b.node;
  });
  return trace;
}

std::vector<Failure> generate_trace(const FailureDistribution& dist, int nodes,
                                    TimeNs horizon, std::uint64_t seed) {
  if (nodes <= 0) throw std::invalid_argument("generate_trace: nodes must be > 0");
  if (horizon < 0) throw std::invalid_argument("generate_trace: horizon must be >= 0");
  std::vector<Failure> trace;
  for (int node = 0; node < nodes; ++node) {
    Rng rng = Rng::substream(seed, static_cast<std::uint64_t>(node));
    TimeNs t = 0;
    while (true) {
      const double gap = dist.sample_seconds(rng);
      const TimeNs gap_ns = units::from_seconds(gap);
      if (gap_ns <= 0) continue;  // sub-ns interarrivals: resample
      if (t > horizon - gap_ns) break;
      t += gap_ns;
      trace.push_back(Failure{t, node});
    }
  }
  std::sort(trace.begin(), trace.end(), [](const Failure& a, const Failure& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.node < b.node;
  });
  return trace;
}

std::vector<Failure> system_exponential_trace(double node_mtbf_seconds, int nodes,
                                              TimeNs horizon, std::uint64_t seed) {
  if (nodes <= 0) throw std::invalid_argument("system trace: nodes must be > 0");
  const Exponential system(node_mtbf_seconds / static_cast<double>(nodes));
  Rng rng(seed);
  std::vector<Failure> trace;
  TimeNs t = 0;
  while (true) {
    const TimeNs gap = units::from_seconds(system.sample_seconds(rng));
    if (gap <= 0) continue;
    if (t > horizon - gap) break;
    t += gap;
    trace.push_back(
        Failure{t, static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(nodes)))});
  }
  return trace;
}

TraceSummary summarize(const std::vector<Failure>& trace) {
  TraceSummary s;
  s.failures = static_cast<std::int64_t>(trace.size());
  if (trace.empty()) return s;
  s.first = trace.front().time;
  s.last = trace.back().time;
  if (trace.size() > 1)
    s.mean_interarrival_seconds =
        units::to_seconds(s.last - s.first) / static_cast<double>(trace.size() - 1);
  return s;
}

}  // namespace chksim::fault
