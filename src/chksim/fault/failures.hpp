// Failure modelling: per-node failure distributions, renewal-process trace
// generation, and system-level MTBF scaling.
//
// Failures in HPC systems are classically modelled as exponential (constant
// hazard) or Weibull with shape < 1 (decreasing hazard / infant mortality,
// the better fit to field data). A system of N independent nodes fails N
// times as often — the scaling that makes checkpointing a scalability
// problem in the first place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chksim/support/rng.hpp"
#include "chksim/support/units.hpp"

namespace chksim::fault {

/// Distribution of one node's time-between-failures.
class FailureDistribution {
 public:
  virtual ~FailureDistribution() = default;
  virtual std::string name() const = 0;
  /// Mean time between failures, seconds.
  virtual double mtbf_seconds() const = 0;
  /// Sample one interarrival, seconds.
  virtual double sample_seconds(Rng& rng) const = 0;
};

/// Exponential interarrivals (constant hazard).
class Exponential final : public FailureDistribution {
 public:
  explicit Exponential(double mtbf_seconds);
  std::string name() const override { return "exponential"; }
  double mtbf_seconds() const override { return mtbf_; }
  double sample_seconds(Rng& rng) const override;

 private:
  double mtbf_;
};

/// Weibull interarrivals with the given shape; the scale is derived so the
/// distribution has the requested MTBF (scale = mtbf / Gamma(1 + 1/shape)).
class Weibull final : public FailureDistribution {
 public:
  Weibull(double mtbf_seconds, double shape);
  std::string name() const override;
  double mtbf_seconds() const override { return mtbf_; }
  double shape() const { return shape_; }
  double scale_seconds() const { return scale_; }
  double sample_seconds(Rng& rng) const override;

 private:
  double mtbf_;
  double shape_;
  double scale_;
};

/// Log-normal interarrivals (heavy right tail; another common fit to HPC
/// failure logs). Parameterised by the desired MTBF and the shape sigma of
/// the underlying normal; mu is derived as log(mtbf) - sigma^2/2.
class LogNormal final : public FailureDistribution {
 public:
  LogNormal(double mtbf_seconds, double sigma);
  std::string name() const override;
  double mtbf_seconds() const override { return mtbf_; }
  double sigma() const { return sigma_; }
  double sample_seconds(Rng& rng) const override;

 private:
  double mtbf_;
  double sigma_;
  double mu_;
};

/// One failure event.
struct Failure {
  TimeNs time = 0;
  int node = -1;
  friend bool operator==(const Failure&, const Failure&) = default;
};

/// Generate the merged, time-sorted failure trace of `nodes` independent
/// nodes, each a renewal process with the given interarrival distribution,
/// over [0, horizon). Deterministic in `seed` and independent of `nodes`
/// ordering (per-node RNG substreams).
std::vector<Failure> generate_trace(const FailureDistribution& dist, int nodes,
                                    TimeNs horizon, std::uint64_t seed);

/// System-level shortcut: exponential failures of the whole machine with
/// MTBF = node_mtbf / nodes; the failing node is sampled uniformly.
std::vector<Failure> system_exponential_trace(double node_mtbf_seconds, int nodes,
                                              TimeNs horizon, std::uint64_t seed);

/// Serialize a trace as CSV ("time_ns,node" with a header line).
std::string trace_to_csv(const std::vector<Failure>& trace);

/// Parse a CSV trace (the trace_to_csv format). Throws std::invalid_argument
/// with a line number on malformed input; the result is sorted by time.
std::vector<Failure> trace_from_csv(const std::string& csv);

/// Empirical summary of a trace, for tables.
struct TraceSummary {
  std::int64_t failures = 0;
  double mean_interarrival_seconds = 0;
  TimeNs first = 0;
  TimeNs last = 0;
};
TraceSummary summarize(const std::vector<Failure>& trace);

}  // namespace chksim::fault
