#include "chksim/fault/direct.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

#include "chksim/sim/par_engine.hpp"

namespace chksim::fault {

namespace {

constexpr TimeNs kMaxTime = std::numeric_limits<TimeNs>::max();

/// Failure sources hand out the first failure strictly after `after`.
/// Failures landing inside a recovery window are folded into it — the same
/// absorption rule the decoupled model applies (exact for exponential
/// interarrivals by memorylessness), so direct-vs-decoupled comparisons see
/// identical failure processes.
class TraceSource {
 public:
  explicit TraceSource(const std::vector<Failure>& trace) : trace_(trace) {}

  std::optional<Failure> next(TimeNs after) {
    while (index_ < trace_.size() && trace_[index_].time <= after) ++index_;
    if (index_ == trace_.size()) return std::nullopt;
    return trace_[index_++];
  }

 private:
  const std::vector<Failure>& trace_;
  std::size_t index_ = 0;
};

class RenewalSource {
 public:
  RenewalSource(const FailureDistribution& dist, Rng rng, int nranks)
      : dist_(dist), rng_(rng), nranks_(nranks) {}

  std::optional<Failure> next(TimeNs after) {
    if (t_ < after) t_ = after;
    t_ = saturating_add(t_, units::from_seconds(dist_.sample_seconds(rng_)));
    Failure f;
    f.time = t_;
    f.node = static_cast<int>(rng_.uniform_u64(static_cast<std::uint64_t>(nranks_)));
    return f;
  }

 private:
  const FailureDistribution& dist_;
  Rng rng_;
  TimeNs t_ = 0;
  int nranks_;
};

/// Shared driver, templated over the engine core: sim::SimCore (serial) or
/// sim::ParEngine (sharded) — both expose the same resumable API and produce
/// byte-identical results, so which one runs underneath is purely a
/// throughput decision (engine.shards). The failure/recovery control loop is
/// cold relative to the DES it steers, so clarity beats micro-optimisation
/// throughout.
template <typename Core>
class Runner {
 public:
  Runner(const sim::Program& program, const sim::EngineConfig& engine,
         const DirectConfig& config)
      : core_(program, engine), cfg_(config), nranks_(program.ranks()) {}

  template <typename Source>
  DirectResult run(Source& source) {
    return cfg_.mode == RecoveryMode::kGlobalRollback ? run_rollback(source)
                                                      : run_replay(source);
  }

 private:
  // --- Coordinated: global rollback over a machine/wallclock split --------

  template <typename Source>
  DirectResult run_rollback(Source& source) {
    typename Core::Snapshot snap = core_.snapshot();  // consistent cut at t = 0
    ++stats_.snapshots;
    TimeNs snap_m = 0;    // machine time of the last committed snapshot
    TimeNs offset = 0;    // wallclock = machine time + offset
    TimeNs scan = 0;      // commit-schedule scan position (machine time)
    TimeNs frontier = 0;  // wallclock already covered by recovery windows

    while (true) {
      if (stats_.failures >= cfg_.max_failures) return abort_guard(offset);
      const std::optional<Failure> f = source.next(frontier);
      if (!f.has_value()) {
        core_.run_until(kMaxTime);
        return finish(offset);
      }
      const TimeNs t_f = f->time;
      const TimeNs m_f = t_f - offset;  // failure position in machine time
      if (m_f >= snap_m && advance_committing(m_f, snap, snap_m, scan))
        return finish(offset);  // the job outran the failure
      // A failure with m_f < snap_m landed inside a restart window: the
      // machine (parked at snap_m) made no progress to lose, the restart
      // simply starts over from t_f.
      const TimeNs lost = m_f > snap_m ? m_f - snap_m : 0;
      if (lost > 0) core_.restore(snap);
      ++stats_.failures;
      ++stats_.rollbacks;
      stats_.lost_work = saturating_add(stats_.lost_work, lost);
      stats_.downtime = saturating_add(stats_.downtime, cfg_.restart);
      offset = t_f + cfg_.restart - snap_m;
      frontier = t_f + cfg_.restart;
      note_failure(rank_of(f->node), t_f, snap_m + offset,
                   "global rollback, re-executing");
      emit_recovery(rank_of(f->node), t_f, t_f + cfg_.restart, lost);
    }
  }

  /// Advance the machine to m_f, snapshotting at every checkpoint commit
  /// (blackout-interval end) on the way; commits are read off rank 0 of the
  /// schedule (coordinated schedules are rank-uniform). True if the program
  /// finished at or before m_f — completion wins a tie with the failure.
  ///
  /// The DES is event-driven, so ops whose *start* events lie at or before a
  /// bound can record completions past it; done_by() therefore checks the
  /// makespan, not just the pending-event queue. Snapshots likewise may
  /// carry such deterministically pre-computed completions — restoring one
  /// replays the exact same future, so rollback accounting is unaffected.
  bool advance_committing(TimeNs m_f, typename Core::Snapshot& snap,
                          TimeNs& snap_m, TimeNs& scan) {
    if (cfg_.commits != nullptr) {
      while (true) {
        const std::optional<sim::Interval> b = cfg_.commits->next_blackout(0, scan);
        if (!b.has_value() || b->end > m_f) break;
        scan = b->end;
        core_.run_until(b->end);
        if (done_by(b->end)) return true;
        snap = core_.snapshot();
        ++stats_.snapshots;
        snap_m = b->end;
      }
    }
    core_.run_until(m_f);
    return done_by(m_f);
  }

  /// The job truly completed at or before wall-equivalent machine time t.
  bool done_by(TimeNs t) const {
    return core_.finished() && core_.makespan() <= t;
  }

  // --- Uncoordinated / hierarchical: outage + replay-from-log -------------

  template <typename Source>
  DirectResult run_replay(Source& source) {
    TimeNs frontier = 0;
    while (true) {
      if (stats_.failures >= cfg_.max_failures) return abort_guard(0);
      const std::optional<Failure> f = source.next(frontier);
      if (!f.has_value()) {
        core_.run_until(kMaxTime);
        return finish(0);
      }
      const TimeNs t_f = f->time;
      core_.run_until(t_f);
      if (done_by(t_f)) return finish(0);  // completion wins a tie with the failure
      const sim::RankId failed = rank_of(f->node);
      const TimeNs last = last_commit(failed, t_f);
      const TimeNs replay = static_cast<TimeNs>(
          static_cast<double>(t_f - last) / cfg_.replay_speedup);
      const TimeNs until = saturating_add(t_f, cfg_.restart + replay);
      sim::RankId lo = failed;
      sim::RankId hi = failed + 1;
      if (cfg_.mode == RecoveryMode::kClusterReplay && cfg_.cluster_size > 1) {
        lo = (failed / cfg_.cluster_size) * cfg_.cluster_size;
        hi = std::min<sim::RankId>(lo + cfg_.cluster_size, nranks_);
      }
      for (sim::RankId r = lo; r < hi; ++r) {
        sim::Injection inj;
        inj.kind = sim::Injection::Kind::kOutage;
        inj.rank = r;
        inj.time = t_f;
        inj.until = until;
        core_.inject(inj);
      }
      note_failure(failed, t_f, until,
                   cfg_.mode == RecoveryMode::kClusterReplay
                       ? "cluster replay from message log"
                       : "local replay from message log");
      ++stats_.failures;
      ++stats_.replays;
      stats_.lost_work = saturating_add(stats_.lost_work, t_f - last);
      stats_.downtime = saturating_add(stats_.downtime, until - t_f);
      emit_recovery(failed, t_f, t_f + cfg_.restart, replay);
      frontier = until;
    }
  }

  /// Machine time of `rank`'s last committed local checkpoint at or before
  /// t (blackout-interval ends of its commit schedule; a commit exactly at t
  /// counts). Per-rank cursors keep the periodic-schedule walk amortised.
  TimeNs last_commit(sim::RankId rank, TimeNs t) {
    if (cfg_.commits == nullptr) return 0;
    auto& cur = cursors_[rank];
    while (true) {
      const std::optional<sim::Interval> b = cfg_.commits->next_blackout(rank, cur.scan);
      if (!b.has_value() || b->end > t) break;
      cur.last = b->end;
      cur.scan = b->end;
    }
    return cur.last;
  }

  // --- Shared plumbing -----------------------------------------------------

  sim::RankId rank_of(int node) const {
    const sim::RankId r = static_cast<sim::RankId>(node);
    return (r >= 0 && r < nranks_) ? r : static_cast<sim::RankId>(
                                             ((node % nranks_) + nranks_) % nranks_);
  }

  void note_failure(sim::RankId rank, TimeNs t_f, TimeNs resume, const char* phase) {
    sim::Injection inj;  // until = 0 makes the outage a no-op; only the note lands
    inj.kind = sim::Injection::Kind::kOutage;
    inj.rank = rank;
    inj.time = t_f;
    inj.until = 0;
    inj.note = "rank " + std::to_string(rank) + " failed at wall t=" +
               std::to_string(t_f) + "ns; " + phase + ", resume at wall t=" +
               std::to_string(resume) + "ns";
    core_.inject(inj);
  }

  void emit_recovery(sim::RankId rank, TimeNs t_f, TimeNs restart_end,
                     TimeNs replay_len) {
    if (cfg_.trace == nullptr) return;
    sim::TraceEvent ev;
    ev.rank = rank;
    ev.kind = sim::TraceEventKind::kFailure;
    ev.t0 = t_f;
    ev.t1 = t_f;
    cfg_.trace->record(ev);
    ev.kind = sim::TraceEventKind::kRollback;
    ev.t0 = t_f;
    ev.t1 = restart_end;
    cfg_.trace->record(ev);
    if (replay_len > 0) {
      ev.kind = sim::TraceEventKind::kReplay;
      ev.t0 = restart_end;
      ev.t1 = restart_end + replay_len;
      cfg_.trace->record(ev);
    }
  }

  DirectResult finish(TimeNs offset) {
    sim::RunResult rr = core_.take_result();
    DirectResult out;
    out.completed = rr.completed;
    out.makespan_wall = saturating_add(rr.makespan, offset);
    out.stats = stats_;
    if (!rr.completed) out.error = rr.error;
    return out;
  }

  DirectResult abort_guard(TimeNs offset) {
    DirectResult out;
    out.completed = false;
    out.makespan_wall = saturating_add(core_.makespan(), offset);
    out.stats = stats_;
    out.error = "direct failure simulation aborted after " +
                std::to_string(stats_.failures) +
                " failures without completing (restart cost at or above the "
                "failure interarrival time never converges)";
    return out;
  }

  struct Cursor {
    TimeNs scan = 0;
    TimeNs last = 0;
  };

  Core core_;
  const DirectConfig& cfg_;
  const sim::RankId nranks_;
  DirectStats stats_;
  std::unordered_map<sim::RankId, Cursor> cursors_;
};

/// Pick the core type from the engine config (mirrors Engine::run's
/// dispatch, including the serial fallback when there is no lookahead).
template <typename Source>
DirectResult run_with_source(const sim::Program& program,
                             const sim::EngineConfig& engine,
                             const DirectConfig& config, Source& source) {
  if (engine.shards > 1 && engine.net.L >= 1 && program.ranks() > 1) {
    Runner<sim::ParEngine> runner(program, engine, config);
    return runner.run(source);
  }
  Runner<sim::SimCore> runner(program, engine, config);
  return runner.run(source);
}

}  // namespace

const char* to_string(RecoveryMode mode) {
  switch (mode) {
    case RecoveryMode::kGlobalRollback: return "global-rollback";
    case RecoveryMode::kLocalReplay: return "local-replay";
    case RecoveryMode::kClusterReplay: return "cluster-replay";
  }
  return "?";
}

DirectResult run_with_failures(const sim::Program& program,
                               const sim::EngineConfig& engine,
                               const DirectConfig& config,
                               const std::vector<Failure>& wall_trace) {
  if (std::is_sorted(wall_trace.begin(), wall_trace.end(),
                     [](const Failure& a, const Failure& b) { return a.time < b.time; })) {
    TraceSource source(wall_trace);
    return run_with_source(program, engine, config, source);
  }
  std::vector<Failure> sorted = wall_trace;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Failure& a, const Failure& b) { return a.time < b.time; });
  TraceSource source(sorted);
  return run_with_source(program, engine, config, source);
}

DirectResult run_with_failures(const sim::Program& program,
                               const sim::EngineConfig& engine,
                               const DirectConfig& config,
                               const FailureDistribution& system_failures,
                               Rng rng) {
  RenewalSource source(system_failures, rng, program.ranks());
  return run_with_source(program, engine, config, source);
}

}  // namespace chksim::fault
