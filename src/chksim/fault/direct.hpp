// Direct (in-DES) failure simulation.
//
// The decoupled methodology (ckpt/recovery.hpp) simulates the checkpoint
// perturbation failure-free and layers failures on analytically. This module
// is the ground truth that decomposition is validated against: it drives the
// resumable sim::SimCore, pauses the machine at each failure instant, and
// applies protocol-faithful recovery inside the discrete-event simulation.
//
//  * kGlobalRollback (coordinated): the run is decomposed into machine time
//    (the failure-free DES clock) and wallclock = machine + offset. The core
//    is snapshotted at every committed checkpoint (the end of each blackout
//    interval of the commit schedule). A failure at wallclock t_f with
//    machine position m_f rolls every rank back by restoring the last
//    snapshot (machine snap_m) and advancing the offset by the restart cost
//    plus the re-execution: offset' = t_f + restart - snap_m. A failure that
//    lands during a restart window (m_f < snap_m) restarts the restart —
//    no machine progress existed to lose. Re-execution is exact: the DES
//    deterministically re-runs the lost region, checkpoint blackouts
//    included.
//  * kLocalReplay (uncoordinated) / kClusterReplay (hierarchical): no
//    rollback. The failed rank (or its whole cluster) is taken out with an
//    outage injection until t_f + restart + (t_f - last local commit) /
//    replay_speedup — restart, then replay from its last local checkpoint at
//    replay speedup. Message-log semantics fall out of the DES: in-flight
//    arrivals still deliver, and peers stall only where the dependency graph
//    makes them wait on the downed rank (sends to it buffer in the match
//    queues, i.e. are served from the log).
//
// This layer deliberately does not depend on ckpt/ (which links fault/);
// core/failure_study.cpp maps ckpt::ProtocolKind onto RecoveryMode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/fault/failures.hpp"
#include "chksim/sim/engine.hpp"

namespace chksim::fault {

/// Protocol-faithful recovery behaviour (see file comment).
enum class RecoveryMode : std::uint8_t {
  kGlobalRollback,  ///< Coordinated: all ranks roll back to the last commit.
  kLocalReplay,     ///< Uncoordinated: only the failed rank replays.
  kClusterReplay,   ///< Hierarchical: the failed rank's cluster replays.
};

const char* to_string(RecoveryMode mode);

struct DirectConfig {
  RecoveryMode mode = RecoveryMode::kGlobalRollback;
  /// Checkpoint-commit schedule: a checkpoint of rank r commits at the end
  /// of each of r's blackout intervals (normally the same schedule the
  /// engine config uses for the perturbation). Null = no checkpoints ever
  /// commit — every rollback goes to the start of the run.
  const sim::BlackoutSchedule* commits = nullptr;
  /// Fixed restart cost per failure (wallclock).
  TimeNs restart = 0;
  /// Replay runs faster than original execution by this factor (>= 1);
  /// kLocalReplay / kClusterReplay only.
  double replay_speedup = 1.5;
  /// kClusterReplay: ranks [c * cluster_size, (c+1) * cluster_size) fail and
  /// recover together.
  int cluster_size = 1;
  /// Optional sink for kFailure / kRollback / kReplay events (wallclock
  /// times). Note the engine's own events are in machine time, which under
  /// kGlobalRollback lags wallclock by the accumulated recovery offset.
  sim::TraceSink* trace = nullptr;
  /// Abort guard: give up after this many failures (restart cost at or above
  /// the failure interarrival never converges). The result then has
  /// completed = false and an explanatory error.
  std::int64_t max_failures = 1'000'000;
};

struct DirectStats {
  std::int64_t failures = 0;   ///< Failures that struck before completion.
  std::int64_t rollbacks = 0;  ///< Global rollbacks applied (kGlobalRollback).
  std::int64_t replays = 0;    ///< Local/cluster replays applied.
  std::int64_t snapshots = 0;  ///< Commit snapshots taken (kGlobalRollback).
  TimeNs lost_work = 0;        ///< Machine time re-executed or replayed.
  TimeNs downtime = 0;         ///< Restart + replay wallclock added.
};

struct DirectResult {
  bool completed = false;
  /// Wallclock completion time: machine makespan plus accumulated recovery
  /// offset (kGlobalRollback) or the DES makespan itself (replay modes).
  TimeNs makespan_wall = 0;
  DirectStats stats;
  std::string error;  ///< Set when !completed (guard tripped, or deadlock).
};

/// Run `program` under `engine` with the failures of `wall_trace` (times are
/// wallclock, Failure::node indexes ranks; out-of-range nodes are reduced
/// modulo the rank count). Failures at or after job completion are ignored.
/// Deterministic.
DirectResult run_with_failures(const sim::Program& program,
                               const sim::EngineConfig& engine,
                               const DirectConfig& config,
                               const std::vector<Failure>& wall_trace);

/// Same, with failures drawn lazily from a system-level renewal process:
/// interarrivals sampled from `system_failures`, failed rank uniform. The
/// process is unbounded, so the run always either completes or trips the
/// max_failures guard. Deterministic in `rng`'s state.
DirectResult run_with_failures(const sim::Program& program,
                               const sim::EngineConfig& engine,
                               const DirectConfig& config,
                               const FailureDistribution& system_failures,
                               Rng rng);

}  // namespace chksim::fault
