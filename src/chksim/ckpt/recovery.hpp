// Failure/recovery makespan model.
//
// The perturbation simulation (engine + protocol blackouts) yields a
// failure-free slowdown: wallclock seconds per second of useful work. This
// module adds failures on top: a Monte-Carlo renewal simulation over
// wallclock time in which
//
//  * work accrues at rate 1/slowdown,
//  * checkpoints commit every `interval` of wallclock,
//  * failures arrive with the given system-level interarrival distribution,
//  * recovery semantics depend on the protocol:
//      - coordinated:   global rollback to the last committed checkpoint,
//                       plus restart cost R;
//      - uncoordinated: no rollback (message logs let the failed rank
//                       replay); the machine stalls for R plus the failed
//                       rank's replay time = (time since its last local
//                       checkpoint) / replay_speedup — that rank's phase is
//                       uniform, so the elapsed time is sampled U(0,1)*tau;
//      - hierarchical:  like uncoordinated, with the failed *cluster*
//                       replaying from its cluster checkpoint.
//
// Failures during recovery are folded via memorylessness (exact for
// exponential interarrivals; a documented approximation for Weibull).
//
// The same decomposition — simulate the perturbation at feasible scale, then
// model failures analytically/stochastically — is what makes studying
// 2^20-rank regimes possible, and matches the methodology of the paper's
// research group.
#pragma once

#include "chksim/ckpt/protocols.hpp"
#include "chksim/fault/failures.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/support/stats.hpp"

namespace chksim::ckpt {

struct RecoveryParams {
  ProtocolKind kind = ProtocolKind::kCoordinated;
  double work_seconds = 0;      ///< Useful work to complete (failure-free, unperturbed).
  double slowdown = 1.0;        ///< Wallclock per unit work (>= 1), from simulation.
  double interval_seconds = 0;  ///< Checkpoint interval tau.
  double restart_seconds = 0;   ///< Fixed restart cost R.
  /// Replay consumes logged messages instead of waiting, so recomputation
  /// runs faster than the original execution by this factor (>= 1).
  double replay_speedup = 1.5;
};

struct MakespanResult {
  double mean_seconds = 0;
  double stddev_seconds = 0;
  double p95_seconds = 0;
  double mean_failures = 0;
  /// work_seconds / mean_seconds: fraction of the machine doing useful work.
  double efficiency = 0;
  int trials = 0;
};

/// Monte-Carlo expected makespan. `system_failures` describes the *system*
/// interarrival distribution (e.g. Exponential(node_mtbf / nodes)). When
/// `metrics` is given, the result and the per-trial makespan distribution
/// are published under "recovery.*".
///
/// Trials run on up to `jobs` threads (1 = serial on the calling thread,
/// <= 0 = hardware concurrency). Every trial derives its random streams from
/// (seed, trial_index) alone and writes only its own result slot, and the
/// reduction over slots runs serially in trial order after the batch — so
/// the result is byte-identical for every jobs value.
MakespanResult simulate_makespan(const RecoveryParams& params,
                                 const fault::FailureDistribution& system_failures,
                                 int trials, std::uint64_t seed,
                                 obs::MetricsRegistry* metrics = nullptr,
                                 int jobs = 1);

/// Single-trial deterministic replay against an explicit failure trace
/// (times in TimeNs wallclock); returns the makespan in seconds. Used by
/// tests and for trace-driven studies.
double makespan_against_trace(const RecoveryParams& params,
                              const std::vector<fault::Failure>& trace,
                              std::uint64_t seed);

}  // namespace chksim::ckpt
