// Checkpoint-interval policies: fixed, Young, Daly.
//
// The optimal-interval formulas need the checkpoint cost delta, which itself
// depends on the protocol's storage behaviour (and, for uncoordinated
// protocols, on the interval — a circular dependency we resolve with a
// short fixed-point iteration on Daly's formula).
#pragma once

#include "chksim/ckpt/protocols.hpp"
#include "chksim/net/machines.hpp"

namespace chksim::ckpt {

enum class IntervalPolicy { kFixed, kYoung, kDaly };

std::string to_string(IntervalPolicy policy);

/// Compute the checkpoint interval for a protocol kind on a machine at a
/// given scale. For kFixed, `fixed` is returned unchanged. For kYoung/kDaly
/// the system MTBF is machine.node_mtbf / ranks and delta is the protocol's
/// write (+ coordination) cost at this scale; for spread-writing protocols
/// delta depends on tau, solved by fixed-point iteration.
TimeNs choose_interval(IntervalPolicy policy, ProtocolKind kind,
                       const net::MachineModel& machine, int ranks,
                       TimeNs fixed = 0, int cluster_size = 16,
                       storage::StorageTier tier = storage::StorageTier::kParallelFs);

}  // namespace chksim::ckpt
