#include "chksim/ckpt/interval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chksim/analytic/daly.hpp"

namespace chksim::ckpt {

std::string to_string(IntervalPolicy policy) {
  switch (policy) {
    case IntervalPolicy::kFixed:
      return "fixed";
    case IntervalPolicy::kYoung:
      return "young";
    case IntervalPolicy::kDaly:
      return "daly";
  }
  return "unknown";
}

namespace {

/// delta (seconds) for a protocol at scale, given a candidate tau.
double delta_seconds(ProtocolKind kind, const net::MachineModel& machine, int ranks,
                     TimeNs tau, int cluster_size, storage::StorageTier tier) {
  const storage::Pfs pfs = pfs_of(machine);
  if (tier != storage::StorageTier::kParallelFs)
    return units::to_seconds(tier_write_time(tier, machine));
  switch (kind) {
    case ProtocolKind::kNone:
      return 0.0;
    case ProtocolKind::kCoordinated: {
      const TimeNs coord = analytic::coordination_cost(
          machine.net, ranks, analytic::SyncAlgorithm::kDissemination, 0.0);
      return units::to_seconds(
          pfs.concurrent_write(machine.ckpt_bytes_per_node, ranks).per_node + coord);
    }
    case ProtocolKind::kUncoordinated:
      return units::to_seconds(
          pfs.spread_write(machine.ckpt_bytes_per_node, ranks, tau).per_node);
    case ProtocolKind::kHierarchical: {
      const int c = std::min(cluster_size, ranks);
      const int n_clusters = (ranks + c - 1) / c;
      const TimeNs coord = analytic::coordination_cost(
          machine.net, c, analytic::SyncAlgorithm::kDissemination, 0.0);
      return units::to_seconds(
          pfs.spread_write_groups(machine.ckpt_bytes_per_node, c, n_clusters, tau)
              .per_node + coord);
    }
  }
  throw std::logic_error("unknown protocol kind");
}

}  // namespace

TimeNs choose_interval(IntervalPolicy policy, ProtocolKind kind,
                       const net::MachineModel& machine, int ranks, TimeNs fixed,
                       int cluster_size, storage::StorageTier tier) {
  if (policy == IntervalPolicy::kFixed) {
    if (fixed <= 0) throw std::invalid_argument("fixed interval must be > 0");
    return fixed;
  }
  if (ranks <= 0) throw std::invalid_argument("ranks must be > 0");
  const double M = machine.system_mtbf_seconds(ranks);

  // Fixed-point on tau: delta can depend on tau for spread writers. Start
  // from the unconstrained node-speed write time.
  double tau_s = std::max(
      1.0, units::to_seconds(units::from_seconds(
               static_cast<double>(machine.ckpt_bytes_per_node) /
               machine.node_bw_bytes_per_s)));
  tau_s = std::sqrt(2.0 * tau_s * M);  // Young seed
  for (int i = 0; i < 64; ++i) {
    const double delta =
        delta_seconds(kind, machine, ranks, units::from_seconds(tau_s), cluster_size,
                      tier);
    if (delta <= 0) return units::from_seconds(tau_s);
    const double next = policy == IntervalPolicy::kYoung
                            ? analytic::young_interval(delta, M)
                            : analytic::daly_interval(delta, M);
    // The interval must leave room for the blackout itself.
    const double clamped = std::max(next, 1.25 * delta);
    if (std::abs(clamped - tau_s) < 1e-9 * std::max(1.0, tau_s)) {
      tau_s = clamped;
      break;
    }
    tau_s = 0.5 * tau_s + 0.5 * clamped;
  }
  return units::from_seconds(tau_s);
}

}  // namespace chksim::ckpt
