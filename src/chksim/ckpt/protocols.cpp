#include "chksim/ckpt/protocols.hpp"

#include <stdexcept>

#include "chksim/support/rng.hpp"

namespace chksim::ckpt {

std::string to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kNone:
      return "none";
    case ProtocolKind::kCoordinated:
      return "coordinated";
    case ProtocolKind::kUncoordinated:
      return "uncoordinated";
    case ProtocolKind::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

TimeNs tier_write_time(storage::StorageTier tier, const net::MachineModel& machine) {
  switch (tier) {
    case storage::StorageTier::kParallelFs:
      throw std::invalid_argument("tier_write_time: PFS time needs writer count");
    case storage::StorageTier::kBurstBuffer:
      if (machine.bb_bw_bytes_per_s <= 0)
        throw std::invalid_argument("protocol: machine has no burst buffer");
      return units::from_seconds(static_cast<double>(machine.ckpt_bytes_per_node) /
                                 machine.bb_bw_bytes_per_s);
    case storage::StorageTier::kPartner:
      // Stream the checkpoint to a partner node over the interconnect.
      return machine.net.o + machine.net.L +
             static_cast<TimeNs>(machine.net.G *
                                 static_cast<double>(machine.ckpt_bytes_per_node));
  }
  throw std::logic_error("unknown storage tier");
}

double restart_cost_seconds(ProtocolKind kind, storage::StorageTier tier,
                            const net::MachineModel& machine, int ranks,
                            int cluster_size) {
  if (ranks <= 0) throw std::invalid_argument("restart_cost: ranks must be > 0");
  if (kind == ProtocolKind::kNone) return machine.restart_seconds;
  double read_seconds = 0;
  if (tier != storage::StorageTier::kParallelFs) {
    read_seconds = units::to_seconds(tier_write_time(tier, machine));
  } else {
    const storage::Pfs pfs = pfs_of(machine);
    int readers = 1;  // uncoordinated: only the failed node re-reads
    if (kind == ProtocolKind::kCoordinated) {
      readers = ranks;  // global rollback: everyone re-reads at once
    } else if (kind == ProtocolKind::kHierarchical) {
      readers = std::min(std::max(cluster_size, 1), ranks);
    }
    read_seconds = units::to_seconds(
        pfs.concurrent_write(machine.ckpt_bytes_per_node, readers).per_node);
  }
  return machine.restart_seconds + read_seconds;
}

storage::Pfs pfs_of(const net::MachineModel& machine) {
  storage::PfsParams p;
  p.node_bw_bytes_per_s = machine.node_bw_bytes_per_s;
  p.pfs_bw_bytes_per_s = machine.pfs_bw_bytes_per_s;
  p.bb_bw_bytes_per_s = machine.bb_bw_bytes_per_s;
  return storage::Pfs(p);
}

namespace {

void check_common(TimeNs interval, int ranks) {
  if (interval <= 0) throw std::invalid_argument("protocol: interval must be > 0");
  if (ranks <= 0) throw std::invalid_argument("protocol: ranks must be > 0");
}

storage::WriteTime pick_write(const storage::Pfs& pfs, const net::MachineModel& m,
                              storage::StorageTier tier, int concurrent_writers) {
  if (tier == storage::StorageTier::kParallelFs)
    return pfs.concurrent_write(m.ckpt_bytes_per_node, concurrent_writers);
  storage::WriteTime w;
  w.per_node = tier_write_time(tier, m);
  w.effective_writers = 1;
  w.per_node_bw = units::to_seconds(w.per_node) > 0
                      ? static_cast<double>(m.ckpt_bytes_per_node) /
                            units::to_seconds(w.per_node)
                      : 0.0;
  return w;
}

/// Blackout durations over one incremental cycle: [full, delta, delta, ...].
struct BlackoutPlan {
  TimeNs full = 0;
  TimeNs delta = 0;
  TimeNs mean = 0;
  std::vector<TimeNs> durations;
};

BlackoutPlan plan_blackouts(TimeNs coordination, TimeNs write,
                            const IncrementalSpec& inc) {
  if (inc.full_every < 1 || inc.delta_fraction < 0 || inc.delta_fraction > 1)
    throw std::invalid_argument(
        "incremental: need full_every >= 1 and 0 <= delta_fraction <= 1");
  BlackoutPlan p;
  p.full = coordination + write;
  p.delta = inc.enabled()
                ? coordination + static_cast<TimeNs>(
                                     inc.delta_fraction * static_cast<double>(write))
                : p.full;
  if (inc.enabled()) {
    p.durations.assign(static_cast<std::size_t>(inc.full_every), p.delta);
    p.durations[0] = p.full;
  } else {
    p.durations = {p.full};
  }
  TimeNs sum = 0;
  for (TimeNs d : p.durations) sum += d;
  p.mean = sum / static_cast<TimeNs>(p.durations.size());
  return p;
}

/// Build the schedule for a plan: plain periodic when increments are off.
std::unique_ptr<sim::BlackoutSchedule> make_schedule(TimeNs interval,
                                                     const BlackoutPlan& plan,
                                                     std::vector<TimeNs> phases) {
  if (plan.durations.size() == 1)
    return std::make_unique<sim::PeriodicBlackouts>(interval, plan.full,
                                                    std::move(phases));
  return std::make_unique<sim::PatternedBlackouts>(interval, plan.durations,
                                                   std::move(phases));
}

std::unique_ptr<sim::BlackoutSchedule> make_schedule(TimeNs interval,
                                                     const BlackoutPlan& plan,
                                                     TimeNs phase) {
  if (plan.durations.size() == 1)
    return std::make_unique<sim::PeriodicBlackouts>(interval, plan.full, phase);
  return std::make_unique<sim::PatternedBlackouts>(interval, plan.durations, phase);
}

std::vector<TimeNs> random_phases(int count, TimeNs interval, std::uint64_t seed) {
  std::vector<TimeNs> phases(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (auto& p : phases)
    p = static_cast<TimeNs>(rng.uniform_u64(static_cast<std::uint64_t>(interval)));
  return phases;
}

}  // namespace

Artifacts prepare_none(int ranks) {
  if (ranks <= 0) throw std::invalid_argument("protocol: ranks must be > 0");
  Artifacts a;
  a.kind = ProtocolKind::kNone;
  a.name = "none";
  a.ranks = ranks;
  return a;
}

Artifacts prepare_coordinated(const CoordinatedConfig& cfg,
                              const net::MachineModel& machine, int ranks) {
  check_common(cfg.interval, ranks);
  Artifacts a;
  a.kind = ProtocolKind::kCoordinated;
  a.name = "coordinated";
  a.ranks = ranks;
  a.interval = cfg.interval;

  a.coordination_time =
      analytic::coordination_cost(machine.net, ranks, cfg.sync, cfg.skew_sigma_ns);
  const storage::Pfs pfs = pfs_of(machine);
  const storage::WriteTime w = pick_write(pfs, machine, cfg.tier, ranks);
  a.write_time = w.per_node;
  a.effective_writers = w.effective_writers;
  a.pfs_saturated = w.saturated;
  const BlackoutPlan plan =
      plan_blackouts(a.coordination_time, a.write_time, cfg.incremental);
  a.blackout = plan.mean;
  a.blackout_full = plan.full;
  a.blackout_delta = plan.delta;
  if (plan.full >= cfg.interval)
    throw std::invalid_argument(
        "coordinated checkpoint blackout (" + std::to_string(plan.full) +
        " ns) exceeds the interval; no forward progress");

  // All ranks black out together; first checkpoint one interval in.
  a.schedule = make_schedule(cfg.interval, plan, cfg.interval);
  return a;
}

Artifacts prepare_uncoordinated(const UncoordinatedConfig& cfg,
                                const net::MachineModel& machine, int ranks) {
  check_common(cfg.interval, ranks);
  Artifacts a;
  a.kind = ProtocolKind::kUncoordinated;
  a.name = "uncoordinated";
  a.ranks = ranks;
  a.interval = cfg.interval;
  a.coordination_time = 0;

  const storage::Pfs pfs = pfs_of(machine);
  storage::WriteTime w;
  if (cfg.tier != storage::StorageTier::kParallelFs) {
    w = pick_write(pfs, machine, cfg.tier, 1);
  } else {
    w = pfs.spread_write(machine.ckpt_bytes_per_node, ranks, cfg.interval);
  }
  a.write_time = w.per_node;
  a.effective_writers = w.effective_writers;
  a.pfs_saturated = w.saturated;
  const BlackoutPlan plan = plan_blackouts(0, a.write_time, cfg.incremental);
  a.blackout = plan.mean;
  a.blackout_full = plan.full;
  a.blackout_delta = plan.delta;
  if (plan.full >= cfg.interval)
    throw std::invalid_argument(
        "uncoordinated checkpoint blackout exceeds the interval");

  a.schedule = make_schedule(cfg.interval, plan,
                             random_phases(ranks, cfg.interval, cfg.phase_seed));

  LoggingTaxConfig tax;
  tax.per_message = cfg.log_per_message;
  tax.per_byte_ns = cfg.log_per_byte_ns;
  tax.receiver_side = cfg.receiver_side_logging;
  if (tax.per_message > 0 || tax.per_byte_ns > 0)
    a.tax = std::make_unique<LoggingTax>(tax);
  return a;
}

Artifacts prepare_hierarchical(const HierarchicalConfig& cfg,
                               const net::MachineModel& machine, int ranks) {
  check_common(cfg.interval, ranks);
  if (cfg.cluster_size <= 0)
    throw std::invalid_argument("hierarchical: cluster_size must be > 0");
  Artifacts a;
  a.kind = ProtocolKind::kHierarchical;
  const int cluster = std::min(cfg.cluster_size, ranks);
  a.name = "hierarchical(c=" + std::to_string(cluster) + ")";
  a.ranks = ranks;
  a.interval = cfg.interval;

  const int n_clusters = (ranks + cluster - 1) / cluster;
  a.coordination_time =
      analytic::coordination_cost(machine.net, cluster, cfg.sync, cfg.skew_sigma_ns);
  const storage::Pfs pfs = pfs_of(machine);
  storage::WriteTime w;
  if (cfg.tier != storage::StorageTier::kParallelFs) {
    w = pick_write(pfs, machine, cfg.tier, 1);
  } else {
    w = pfs.spread_write_groups(machine.ckpt_bytes_per_node, cluster, n_clusters,
                                cfg.interval);
  }
  a.write_time = w.per_node;
  a.effective_writers = w.effective_writers;
  a.pfs_saturated = w.saturated;
  const BlackoutPlan plan =
      plan_blackouts(a.coordination_time, a.write_time, cfg.incremental);
  a.blackout = plan.mean;
  a.blackout_full = plan.full;
  a.blackout_delta = plan.delta;
  if (plan.full >= cfg.interval)
    throw std::invalid_argument(
        "hierarchical checkpoint blackout exceeds the interval");

  // One random phase per cluster; all ranks of a cluster share it.
  const std::vector<TimeNs> cluster_phase =
      random_phases(n_clusters, cfg.interval, cfg.phase_seed);
  std::vector<TimeNs> phases(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r)
    phases[static_cast<std::size_t>(r)] =
        cluster_phase[static_cast<std::size_t>(r / cluster)];
  a.schedule = make_schedule(cfg.interval, plan, std::move(phases));

  LoggingTaxConfig tax;
  tax.per_message = cfg.log_per_message;
  tax.per_byte_ns = cfg.log_per_byte_ns;
  tax.cluster_size = cluster;
  if (tax.per_message > 0 || tax.per_byte_ns > 0)
    a.tax = std::make_unique<LoggingTax>(tax);
  return a;
}

}  // namespace chksim::ckpt
