// Checkpoint protocols.
//
// A protocol is "prepared" against a machine model and a rank count; the
// result bundles everything the engine needs (a blackout schedule and an
// optional message tax) together with the derived cost numbers (write time
// under the storage model, coordination cost, effective writer concurrency).
//
//  * Coordinated: all ranks checkpoint simultaneously every `interval`. Each
//    checkpoint blackout = coordination cost (LogP sync + arrival skew) +
//    concurrent write time (all P nodes share the PFS at once).
//  * Uncoordinated: each rank checkpoints on its own schedule (random phase
//    per rank). Blackout = spread write time (fixed-point writer
//    concurrency). Every message is taxed with the logging cost.
//  * Hierarchical: clusters of `cluster_size` ranks coordinate internally
//    (cluster-wide sync + aligned blackout); cluster phases are random.
//    Only inter-cluster messages are logged.
#pragma once

#include <memory>
#include <string>

#include "chksim/analytic/coordination.hpp"
#include "chksim/ckpt/logging_tax.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/sim/availability.hpp"
#include "chksim/storage/pfs.hpp"

namespace chksim::ckpt {

enum class ProtocolKind { kNone, kCoordinated, kUncoordinated, kHierarchical };

std::string to_string(ProtocolKind kind);

/// Incremental-checkpointing knobs shared by all protocols: one full
/// checkpoint every `full_every` periods, deltas of `delta_fraction` x the
/// full size in between. (full_every = 1 disables increments.) The delta
/// write time is scaled bandwidth-proportionally from the full write.
struct IncrementalSpec {
  int full_every = 1;
  double delta_fraction = 0.25;

  bool enabled() const { return full_every > 1 && delta_fraction < 1.0; }
};

struct CoordinatedConfig {
  TimeNs interval = 0;  ///< Checkpoint period (wallclock between starts).
  analytic::SyncAlgorithm sync = analytic::SyncAlgorithm::kDissemination;
  /// Stddev of rank arrival times at the sync point (models application
  /// imbalance; the expected-max skew wait is added to coordination cost).
  double skew_sigma_ns = 0;
  storage::StorageTier tier = storage::StorageTier::kParallelFs;
  IncrementalSpec incremental;
};

struct UncoordinatedConfig {
  TimeNs interval = 0;
  std::uint64_t phase_seed = 1;   ///< Per-rank random phases in [0, interval).
  TimeNs log_per_message = 0;     ///< Sender CPU per logged message.
  double log_per_byte_ns = 0.0;   ///< Sender CPU per logged byte.
  bool receiver_side_logging = false;
  storage::StorageTier tier = storage::StorageTier::kParallelFs;
  IncrementalSpec incremental;
};

struct HierarchicalConfig {
  TimeNs interval = 0;
  int cluster_size = 16;
  std::uint64_t phase_seed = 1;  ///< Per-cluster random phases.
  analytic::SyncAlgorithm sync = analytic::SyncAlgorithm::kDissemination;
  double skew_sigma_ns = 0;
  TimeNs log_per_message = 0;   ///< Tax on inter-cluster messages only.
  double log_per_byte_ns = 0.0;
  storage::StorageTier tier = storage::StorageTier::kParallelFs;
  IncrementalSpec incremental;
};

/// Everything a prepared protocol contributes to a simulation, plus its
/// derived cost model (for tables and the recovery model).
struct Artifacts {
  ProtocolKind kind = ProtocolKind::kNone;
  std::string name;
  int ranks = 0;
  TimeNs interval = 0;

  /// Per-checkpoint blackout duration per rank (coordination + write).
  /// With incremental checkpointing this is the MEAN over one full+delta
  /// cycle; blackout_full/blackout_delta give the extremes.
  TimeNs blackout = 0;
  TimeNs blackout_full = 0;
  TimeNs blackout_delta = 0;
  TimeNs coordination_time = 0;
  TimeNs write_time = 0;
  double effective_writers = 0;
  bool pfs_saturated = false;

  /// Owned runtime artifacts; either may be null.
  std::unique_ptr<sim::BlackoutSchedule> schedule;
  std::unique_ptr<LoggingTax> tax;

  /// Fraction of wallclock consumed by checkpoint blackouts (blackout /
  /// interval) — the first-order overhead before propagation effects.
  double duty_cycle() const {
    return interval > 0 ? static_cast<double>(blackout) / static_cast<double>(interval)
                        : 0.0;
  }
};

/// No checkpointing (baseline): null schedule and tax.
Artifacts prepare_none(int ranks);

Artifacts prepare_coordinated(const CoordinatedConfig& cfg,
                              const net::MachineModel& machine, int ranks);

Artifacts prepare_uncoordinated(const UncoordinatedConfig& cfg,
                                const net::MachineModel& machine, int ranks);

Artifacts prepare_hierarchical(const HierarchicalConfig& cfg,
                               const net::MachineModel& machine, int ranks);

/// Storage parameters of a machine as a Pfs instance.
storage::Pfs pfs_of(const net::MachineModel& machine);

/// Per-node checkpoint write time for a non-PFS tier: burst buffer (local
/// bandwidth) or partner copy (network transfer of the checkpoint bytes to
/// a partner node: o + L + G * bytes). Throws std::invalid_argument for
/// kParallelFs (the PFS time depends on writer concurrency — use Pfs).
TimeNs tier_write_time(storage::StorageTier tier, const net::MachineModel& machine);

/// Restart cost including reading the checkpoint back, in seconds:
/// machine.restart_seconds plus the read-back time. Coordinated rollback
/// re-reads on ALL ranks at once (PFS contention, mirroring the write
/// burst); uncoordinated/hierarchical recovery re-reads only on the failed
/// node (or cluster); burst-buffer and partner tiers read at local/network
/// speed. kNone has no checkpoint to read.
double restart_cost_seconds(ProtocolKind kind, storage::StorageTier tier,
                            const net::MachineModel& machine, int ranks,
                            int cluster_size = 16);

}  // namespace chksim::ckpt
