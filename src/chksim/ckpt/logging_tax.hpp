// Message-logging cost model.
//
// Uncoordinated (and hierarchical) checkpointing requires logging messages
// so a failed rank can replay without forcing a global rollback. Sender-
// based pessimistic logging taxes every logged message with per-message and
// per-byte CPU time on the sender (receiver-side logging is the ablation
// variant). Hierarchical protocols log only inter-cluster traffic.
#pragma once

#include "chksim/sim/engine.hpp"

namespace chksim::ckpt {

struct LoggingTaxConfig {
  TimeNs per_message = 0;     ///< CPU ns charged per logged message.
  double per_byte_ns = 0.0;   ///< CPU ns charged per logged payload byte.
  bool receiver_side = false; ///< Charge the receiver instead of the sender.
  /// When > 0, only messages crossing a cluster boundary are logged
  /// (cluster of rank r = r / cluster_size).
  int cluster_size = 0;
};

class LoggingTax final : public sim::SendTax {
 public:
  explicit LoggingTax(LoggingTaxConfig config);

  TimeNs extra_send_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const override;
  TimeNs extra_recv_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const override;

  const LoggingTaxConfig& config() const { return config_; }

  /// True if a message src -> dst is logged under this configuration.
  bool logged(sim::RankId src, sim::RankId dst) const;

  /// The tax charged for one logged message of `bytes`.
  TimeNs cost(Bytes bytes) const;

 private:
  LoggingTaxConfig config_;
};

}  // namespace chksim::ckpt
