#include "chksim/ckpt/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "chksim/support/parallel.hpp"

namespace chksim::ckpt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_params(const RecoveryParams& p) {
  if (p.work_seconds <= 0) throw std::invalid_argument("work_seconds must be > 0");
  if (p.slowdown < 1.0) throw std::invalid_argument("slowdown must be >= 1");
  if (p.kind != ProtocolKind::kNone && p.interval_seconds <= 0)
    throw std::invalid_argument("interval_seconds must be > 0");
  if (p.restart_seconds < 0) throw std::invalid_argument("restart_seconds must be >= 0");
  if (p.replay_speedup < 1.0) throw std::invalid_argument("replay_speedup must be >= 1");
}

struct TrialResult {
  double makespan = 0;
  std::int64_t failures = 0;
};

/// One renewal-simulation trial. `next_failure(t)` returns the time of the
/// first failure after wallclock t (kInf for none).
template <typename NextFailure>
TrialResult run_trial(const RecoveryParams& p, NextFailure&& next_failure, Rng& rng) {
  const double sigma = p.slowdown;
  const double tau = p.interval_seconds;
  const bool commits = p.kind == ProtocolKind::kCoordinated;

  double t = 0;
  double w = 0;
  double last_commit_w = 0;
  double next_commit = commits ? tau : kInf;
  double next_fail = next_failure(0.0);
  TrialResult out;

  for (std::int64_t events = 0;; ++events) {
    if (events > 50'000'000)
      throw std::runtime_error(
          "recovery simulation did not converge (failure rate too high for "
          "the configured protocol)");
    const double t_finish = t + (p.work_seconds - w) * sigma;
    if (t_finish <= next_commit && t_finish <= next_fail) {
      out.makespan = t_finish;
      return out;
    }
    if (next_commit <= next_fail) {
      w += (next_commit - t) / sigma;
      t = next_commit;
      last_commit_w = w;
      next_commit += tau;
      continue;
    }
    // Failure.
    w += (next_fail - t) / sigma;
    t = next_fail;
    ++out.failures;
    switch (p.kind) {
      case ProtocolKind::kNone:
        w = 0;  // no checkpoints: restart from the beginning
        t += p.restart_seconds;
        break;
      case ProtocolKind::kCoordinated:
        w = last_commit_w;
        t += p.restart_seconds;
        break;
      case ProtocolKind::kUncoordinated:
      case ProtocolKind::kHierarchical:
        // No rollback; the failed rank (or cluster) replays from its own
        // last checkpoint, a uniformly-distributed fraction of tau ago,
        // at replay_speedup; everyone else waits.
        t += p.restart_seconds + rng.uniform() * tau / p.replay_speedup;
        break;
    }
    if (commits) {
      next_commit = t + tau;
      last_commit_w = w;  // recovery re-establishes a consistent checkpoint
    }
    next_fail = next_failure(t);
  }
}

}  // namespace

MakespanResult simulate_makespan(const RecoveryParams& params,
                                 const fault::FailureDistribution& system_failures,
                                 int trials, std::uint64_t seed,
                                 obs::MetricsRegistry* metrics, int jobs) {
  check_params(params);
  if (trials <= 0) throw std::invalid_argument("trials must be > 0");
  // Every trial's random state derives from (seed, trial) alone and each
  // task writes only its own slot, so the scheduling order cannot affect
  // the slot contents; the reduction below runs serially in trial order.
  std::vector<TrialResult> slots(static_cast<std::size_t>(trials));
  par::for_each_index(trials, jobs, [&](std::int64_t trial) {
    Rng rng = Rng::substream(seed, static_cast<std::uint64_t>(trial));
    Rng fail_rng = Rng::substream(seed ^ 0x5bd1e995, static_cast<std::uint64_t>(trial));
    auto next_failure = [&](double t) {
      return t + system_failures.sample_seconds(fail_rng);
    };
    slots[static_cast<std::size_t>(trial)] = run_trial(params, next_failure, rng);
  });
  std::vector<double> makespans;
  makespans.reserve(static_cast<std::size_t>(trials));
  StreamingStats stats;
  double total_failures = 0;
  for (const TrialResult& r : slots) {
    makespans.push_back(r.makespan);
    stats.add(r.makespan);
    total_failures += static_cast<double>(r.failures);
  }
  MakespanResult out;
  out.trials = trials;
  out.mean_seconds = stats.mean();
  out.stddev_seconds = stats.stddev();
  out.p95_seconds = percentile(std::move(makespans), 0.95);
  out.mean_failures = total_failures / trials;
  out.efficiency = params.work_seconds / out.mean_seconds;
  if (metrics != nullptr) {
    metrics->add_counter("recovery.trials", trials);
    metrics->set_gauge("recovery.mean_seconds", out.mean_seconds);
    metrics->set_gauge("recovery.stddev_seconds", out.stddev_seconds);
    metrics->set_gauge("recovery.p95_seconds", out.p95_seconds);
    metrics->set_gauge("recovery.mean_failures", out.mean_failures);
    metrics->set_gauge("recovery.efficiency", out.efficiency);
    metrics->stats("recovery.trial_makespan_seconds").merge(stats);
  }
  return out;
}

double makespan_against_trace(const RecoveryParams& params,
                              const std::vector<fault::Failure>& trace,
                              std::uint64_t seed) {
  check_params(params);
  std::size_t index = 0;
  auto next_failure = [&](double t) {
    // First trace failure strictly after t; failures that land inside a
    // recovery window are absorbed by it.
    while (index < trace.size() && units::to_seconds(trace[index].time) <= t) ++index;
    if (index == trace.size()) return kInf;
    return units::to_seconds(trace[index++].time);
  };
  Rng rng(seed);
  return run_trial(params, next_failure, rng).makespan;
}

}  // namespace chksim::ckpt
