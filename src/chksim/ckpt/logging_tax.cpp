#include "chksim/ckpt/logging_tax.hpp"

#include <stdexcept>

namespace chksim::ckpt {

LoggingTax::LoggingTax(LoggingTaxConfig config) : config_(config) {
  if (config_.per_message < 0 || config_.per_byte_ns < 0)
    throw std::invalid_argument("LoggingTax: costs must be >= 0");
  if (config_.cluster_size < 0)
    throw std::invalid_argument("LoggingTax: cluster_size must be >= 0");
}

bool LoggingTax::logged(sim::RankId src, sim::RankId dst) const {
  if (config_.cluster_size <= 0) return true;
  return src / config_.cluster_size != dst / config_.cluster_size;
}

TimeNs LoggingTax::cost(Bytes bytes) const {
  return config_.per_message +
         static_cast<TimeNs>(config_.per_byte_ns * static_cast<double>(bytes));
}

TimeNs LoggingTax::extra_send_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const {
  if (config_.receiver_side || !logged(src, dst)) return 0;
  return cost(bytes);
}

TimeNs LoggingTax::extra_recv_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const {
  if (!config_.receiver_side || !logged(src, dst)) return 0;
  return cost(bytes);
}

}  // namespace chksim::ckpt
