// Content-addressed on-disk result cache for campaign cells.
//
// A cell's result (its metrics-JSON report) is stored under the 128-bit
// content key of (canonical cell spec, code-version stamp) — see
// spec.hpp/cell_key. Because the spec is canonicalised and the code version
// is part of the key, a hit can only come from the same cell run by the
// same code: a warm rerun of a campaign is pure cache reads, and rebuilding
// the library invalidates everything implicitly (old entries are simply
// never addressed again).
//
// Layout: <dir>/<key[0:2]>/<key>.json, each entry a one-line header
//
//   chksim-cache-v1 <key> <payload-bytes> <payload-fnv1a-hex>\n<payload>
//
// Lookups verify the header, length, and checksum; anything inconsistent —
// torn writes, bit rot, truncation — is deleted and reported as a miss, so
// a corrupted cache degrades to recomputation, never to wrong results.
// Stores write a temp file, fsync it, and rename() into place, so a crash
// mid-store can leave only a temp file, never a half-visible entry.
//
// Hit/miss/corrupt/eviction/store counters are published into an optional
// obs::MetricsRegistry under "campaign.cache.*".
#pragma once

#include <optional>
#include <string>

#include "chksim/campaign/spec.hpp"
#include "chksim/obs/metrics.hpp"

namespace chksim::campaign {

class ResultCache {
 public:
  /// `dir` is created (with parents) on first store. `code_version` feeds
  /// the cell keys; pass version::code_version() in production.
  ResultCache(std::string dir, std::string code_version,
              obs::MetricsRegistry* metrics = nullptr);

  /// The content-address of `cell` under this cache's code version.
  std::string key(const CellSpec& cell) const;

  /// Payload for `key`, or nullopt on miss. Corrupt entries are deleted
  /// (counted under campaign.cache.corrupt and, when the delete succeeds,
  /// campaign.cache.evictions) and reported as a miss.
  std::optional<std::string> lookup(const std::string& key);

  /// Atomically store `payload` under `key` (overwrites an existing entry).
  /// Returns false and fills *error on I/O failure.
  bool store(const std::string& key, const std::string& payload,
             std::string* error = nullptr);

  const std::string& dir() const { return dir_; }
  const std::string& code_version() const { return code_version_; }

  /// Entry path for a key (for tests and tooling).
  std::string path_for(const std::string& key) const;

 private:
  void count(const char* which) const;

  std::string dir_;
  std::string code_version_;
  obs::MetricsRegistry* metrics_;
};

}  // namespace chksim::campaign
