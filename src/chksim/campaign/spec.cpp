#include "chksim/campaign/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "chksim/core/fabric_plan.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/storage/pfs.hpp"
#include "chksim/storage/shared_pfs.hpp"
#include "chksim/support/hash.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim::campaign {

namespace {

[[noreturn]] void bad(const std::string& what) { throw std::invalid_argument(what); }

std::string need_string(const json::Value& v, const char* field) {
  if (!v.is_string()) bad(std::string("field \"") + field + "\" must be a string");
  return v.as_string();
}

std::int64_t need_int(const json::Value& v, const char* field) {
  if (!v.is_integer()) bad(std::string("field \"") + field + "\" must be an integer");
  return v.as_int();
}

double need_number(const json::Value& v, const char* field) {
  if (!v.is_number()) bad(std::string("field \"") + field + "\" must be a number");
  return v.as_double();
}

/// One grid field: how to read it into / out of a CellSpec. The table order
/// IS the expansion order (odometer, last field fastest) and the canonical
/// JSON relies on json::Value::Object sorting, so the table itself only has
/// to be complete, not sorted.
struct Field {
  const char* name;
  void (*set)(CellSpec&, const json::Value&);
  json::Value (*get)(const CellSpec&);
};

constexpr int kFieldCount = 25;

const Field kFields[kFieldCount] = {
    {"mode", [](CellSpec& c, const json::Value& v) { c.mode = need_string(v, "mode"); },
     [](const CellSpec& c) { return json::Value::string(c.mode); }},
    {"machine",
     [](CellSpec& c, const json::Value& v) { c.machine = need_string(v, "machine"); },
     [](const CellSpec& c) { return json::Value::string(c.machine); }},
    {"workload",
     [](CellSpec& c, const json::Value& v) { c.workload = need_string(v, "workload"); },
     [](const CellSpec& c) { return json::Value::string(c.workload); }},
    {"protocol",
     [](CellSpec& c, const json::Value& v) { c.protocol = need_string(v, "protocol"); },
     [](const CellSpec& c) { return json::Value::string(c.protocol); }},
    {"ranks",
     [](CellSpec& c, const json::Value& v) {
       c.ranks = static_cast<int>(need_int(v, "ranks"));
     },
     [](const CellSpec& c) { return json::Value::integer(c.ranks); }},
    {"interval_ms",
     [](CellSpec& c, const json::Value& v) {
       c.interval_ms = need_number(v, "interval_ms");
     },
     [](const CellSpec& c) { return json::Value::number(c.interval_ms); }},
    {"duty",
     [](CellSpec& c, const json::Value& v) { c.duty = need_number(v, "duty"); },
     [](const CellSpec& c) { return json::Value::number(c.duty); }},
    {"periods",
     [](CellSpec& c, const json::Value& v) {
       c.periods = static_cast<int>(need_int(v, "periods"));
     },
     [](const CellSpec& c) { return json::Value::integer(c.periods); }},
    {"compute_us",
     [](CellSpec& c, const json::Value& v) {
       c.compute_us = need_number(v, "compute_us");
     },
     [](const CellSpec& c) { return json::Value::number(c.compute_us); }},
    {"bytes",
     [](CellSpec& c, const json::Value& v) { c.bytes = need_int(v, "bytes"); },
     [](const CellSpec& c) { return json::Value::integer(c.bytes); }},
    {"cluster_size",
     [](CellSpec& c, const json::Value& v) {
       c.cluster_size = static_cast<int>(need_int(v, "cluster_size"));
     },
     [](const CellSpec& c) { return json::Value::integer(c.cluster_size); }},
    {"seed",
     [](CellSpec& c, const json::Value& v) {
       const std::int64_t s = need_int(v, "seed");
       if (s < 0) bad("field \"seed\" must be >= 0");
       c.seed = static_cast<std::uint64_t>(s);
     },
     [](const CellSpec& c) {
       return json::Value::integer(static_cast<std::int64_t>(c.seed));
     }},
    {"mtbf_hours",
     [](CellSpec& c, const json::Value& v) {
       c.mtbf_hours = need_number(v, "mtbf_hours");
     },
     [](const CellSpec& c) { return json::Value::number(c.mtbf_hours); }},
    {"work_hours",
     [](CellSpec& c, const json::Value& v) {
       c.work_hours = need_number(v, "work_hours");
     },
     [](const CellSpec& c) { return json::Value::number(c.work_hours); }},
    {"trials",
     [](CellSpec& c, const json::Value& v) {
       c.trials = static_cast<int>(need_int(v, "trials"));
     },
     [](const CellSpec& c) { return json::Value::integer(c.trials); }},
    {"tier",
     [](CellSpec& c, const json::Value& v) { c.tier = need_string(v, "tier"); },
     [](const CellSpec& c) { return json::Value::string(c.tier); }},
    {"node_bw_gbs",
     [](CellSpec& c, const json::Value& v) {
       c.node_bw_gbs = need_number(v, "node_bw_gbs");
     },
     [](const CellSpec& c) { return json::Value::number(c.node_bw_gbs); }},
    {"pfs_bw_gbs",
     [](CellSpec& c, const json::Value& v) {
       c.pfs_bw_gbs = need_number(v, "pfs_bw_gbs");
     },
     [](const CellSpec& c) { return json::Value::number(c.pfs_bw_gbs); }},
    {"bb_bw_gbs",
     [](CellSpec& c, const json::Value& v) {
       c.bb_bw_gbs = need_number(v, "bb_bw_gbs");
     },
     [](const CellSpec& c) { return json::Value::number(c.bb_bw_gbs); }},
    {"network",
     [](CellSpec& c, const json::Value& v) {
       c.network = need_string(v, "network");
     },
     [](const CellSpec& c) { return json::Value::string(c.network); }},
    {"link_bw_gbs",
     [](CellSpec& c, const json::Value& v) {
       c.link_bw_gbs = need_number(v, "link_bw_gbs");
     },
     [](const CellSpec& c) { return json::Value::number(c.link_bw_gbs); }},
    {"routing",
     [](CellSpec& c, const json::Value& v) {
       c.routing = need_string(v, "routing");
     },
     [](const CellSpec& c) { return json::Value::string(c.routing); }},
    {"arbiter",
     [](CellSpec& c, const json::Value& v) {
       c.arbiter = need_string(v, "arbiter");
     },
     [](const CellSpec& c) { return json::Value::string(c.arbiter); }},
    {"njobs",
     [](CellSpec& c, const json::Value& v) {
       c.njobs = static_cast<int>(need_int(v, "njobs"));
     },
     [](const CellSpec& c) { return json::Value::integer(c.njobs); }},
    {"stagger",
     [](CellSpec& c, const json::Value& v) {
       c.stagger = need_number(v, "stagger");
     },
     [](const CellSpec& c) { return json::Value::number(c.stagger); }},
};

int field_index(const std::string& name) {
  for (int i = 0; i < kFieldCount; ++i)
    if (name == kFields[i].name) return i;
  return -1;
}

}  // namespace

json::Value CellSpec::to_json() const {
  json::Value::Object obj;
  for (const Field& f : kFields) obj.emplace(f.name, f.get(*this));
  return json::Value::object(std::move(obj));
}

std::string CellSpec::canonical() const { return to_json().dump(); }

CellSpec CellSpec::from_json(const json::Value& v) {
  if (!v.is_object()) bad("cell spec must be an object");
  CellSpec cell;
  for (const auto& [key, value] : v.as_object()) {
    const int idx = field_index(key);
    if (idx < 0) bad("unknown cell field \"" + key + "\"");
    kFields[idx].set(cell, value);
  }
  cell.validate();
  return cell;
}

void CellSpec::validate() const {
  if (mode != "study" && mode != "failures" && mode != "platform")
    bad("mode must be \"study\", \"failures\", or \"platform\", got \"" + mode +
        "\"");
  if (protocol != "none" && protocol != "coordinated" &&
      protocol != "uncoordinated" && protocol != "hierarchical")
    bad("unknown protocol \"" + protocol + "\"");
  const net::MachineModel preset = net::machine_by_name(machine);  // throws
  const std::vector<std::string> names = workload::workload_names();
  if (std::find(names.begin(), names.end(), workload) == names.end())
    bad("unknown workload \"" + workload + "\"");
  if (ranks < 1) bad("ranks must be >= 1");
  if (!(interval_ms > 0)) bad("interval_ms must be > 0");
  if (duty >= 1.0) bad("duty must be < 1 (blackout would fill the interval)");
  if (periods < 1) bad("periods must be >= 1");
  if (!(compute_us > 0)) bad("compute_us must be > 0");
  if (bytes < 0) bad("bytes must be >= 0");
  if (cluster_size < 1) bad("cluster_size must be >= 1");
  if (mtbf_hours < 0) bad("mtbf_hours must be >= 0");
  if (!(work_hours > 0)) bad("work_hours must be > 0");
  if (trials < 1) bad("trials must be >= 1");

  // Storage axes: resolve the effective parameters (cell override where
  // > 0, machine preset otherwise) and validate them against the tier.
  // The preset's burst-buffer bandwidth only participates when the tier
  // actually uses it, so a preset that happens to carry one never turns
  // into a spurious dead-axis error.
  const storage::StorageTier t = storage::tier_by_name(tier);  // throws
  if (node_bw_gbs < 0) bad("node_bw_gbs must be >= 0 (0 = machine preset)");
  if (pfs_bw_gbs < 0) bad("pfs_bw_gbs must be >= 0 (0 = machine preset)");
  storage::PfsParams p;
  p.node_bw_bytes_per_s =
      node_bw_gbs > 0 ? node_bw_gbs * 1e9 : preset.node_bw_bytes_per_s;
  p.pfs_bw_bytes_per_s =
      pfs_bw_gbs > 0 ? pfs_bw_gbs * 1e9 : preset.pfs_bw_bytes_per_s;
  p.bb_bw_bytes_per_s = bb_bw_gbs != 0
                            ? bb_bw_gbs * 1e9
                            : (t == storage::StorageTier::kBurstBuffer
                                   ? preset.bb_bw_bytes_per_s
                                   : 0.0);
  storage::validate_pfs_params(p, t);

  // Network axes: resolve the mode, then reject flow-only knobs on
  // analytic cells — a sweep that varies link_bw_gbs or routing without
  // flipping the mode would silently run identical cells otherwise (same
  // dead-axis rule as the tier-gated bb_bw_gbs above).
  const core::NetworkMode nm = core::network_mode_by_name(network);  // throws
  net::flow::routing_by_name(routing);  // throws on unknown routings
  if (link_bw_gbs < 0) bad("link_bw_gbs must be >= 0 (0 = NIC rate)");
  if (nm == core::NetworkMode::kAnalytic) {
    if (link_bw_gbs != 0)
      bad("link_bw_gbs is a flow-mode knob; set network: \"flow\" or drop it");
    if (routing != "minimal")
      bad("routing is a flow-mode knob; set network: \"flow\" or drop it");
  }

  storage::arbiter_policy_by_name(arbiter);  // throws on unknown policies
  if (njobs < 1) bad("njobs must be >= 1");
  if (mode == "platform" && njobs < 2)
    bad("platform mode needs njobs >= 2 (one job cannot contend with itself; "
        "use mode \"study\" for single-job runs)");
  if (!(stagger >= 0) || stagger > 1) bad("stagger must be in [0, 1]");
}

namespace {

/// A grid field's value list: one entry (fixed) or many (sweep axis).
using Axis = std::vector<json::Value>;

/// Read a grid object into per-field axes (empty = field not given).
void read_grid(const json::Value& grid, Axis (&axes)[kFieldCount],
               const char* what) {
  if (!grid.is_object()) bad(std::string(what) + " must be an object");
  for (const auto& [key, value] : grid.as_object()) {
    const int idx = field_index(key);
    if (idx < 0)
      bad(std::string("unknown field \"") + key + "\" in " + what);
    Axis axis;
    if (value.is_array()) {
      if (value.as_array().empty())
        bad("axis \"" + key + "\" must not be an empty array");
      for (const json::Value& item : value.as_array()) axis.push_back(item);
    } else {
      axis.push_back(value);
    }
    axes[idx] = std::move(axis);
  }
}

/// Cartesian expansion of one grid, odometer over kFields with the last
/// field fastest. Cells are validated as they are produced.
void expand_grid(const Axis (&axes)[kFieldCount], std::vector<CellSpec>* out) {
  std::size_t idx[kFieldCount] = {};
  for (;;) {
    CellSpec cell;
    for (int f = 0; f < kFieldCount; ++f)
      if (!axes[f].empty()) kFields[f].set(cell, axes[f][idx[f]]);
    cell.validate();
    out->push_back(std::move(cell));
    int f = kFieldCount - 1;
    for (; f >= 0; --f) {
      if (axes[f].size() <= 1) continue;
      if (++idx[f] < axes[f].size()) break;
      idx[f] = 0;
    }
    if (f < 0) return;
  }
}

}  // namespace

CampaignSpec CampaignSpec::parse(const json::Value& doc, bool smoke) {
  if (!doc.is_object()) bad("campaign document must be an object");
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "name" && key != "grid" && key != "grids" && key != "smoke")
      bad("unknown campaign field \"" + key + "\"");
  }

  CampaignSpec spec;
  if (const json::Value* name = doc.find("name"))
    spec.name = need_string(*name, "name");

  const json::Value* grid = doc.find("grid");
  const json::Value* grids = doc.find("grids");
  if ((grid != nullptr) == (grids != nullptr))
    bad("campaign needs exactly one of \"grid\" or \"grids\"");

  Axis smoke_axes[kFieldCount];
  if (smoke) {
    if (const json::Value* s = doc.find("smoke"))
      read_grid(*s, smoke_axes, "\"smoke\"");
  }

  const auto expand_one = [&](const json::Value& g) {
    Axis axes[kFieldCount];
    read_grid(g, axes, "\"grid\"");
    for (int f = 0; f < kFieldCount; ++f)
      if (!smoke_axes[f].empty()) axes[f] = smoke_axes[f];
    expand_grid(axes, &spec.cells);
  };

  if (grid != nullptr) {
    expand_one(*grid);
  } else {
    if (!grids->is_array()) bad("\"grids\" must be an array of grid objects");
    for (const json::Value& g : grids->as_array()) expand_one(g);
  }
  if (spec.cells.empty()) bad("campaign expanded to zero cells");
  return spec;
}

CampaignSpec CampaignSpec::parse_text(const std::string& text, bool smoke) {
  return parse(json::parse(text), smoke);
}

bool CampaignSpec::parse_file(const std::string& path, bool smoke,
                              CampaignSpec* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    CampaignSpec spec = parse_text(text.str(), smoke);
    if (out != nullptr) *out = std::move(spec);
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = path + ": " + e.what();
    return false;
  }
}

std::string cell_key(const CellSpec& cell, const std::string& code_version) {
  std::string material = cell.canonical();
  material += '\0';
  material += code_version;
  return hash::content_key(material);
}

}  // namespace chksim::campaign
