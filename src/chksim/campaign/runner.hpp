// The campaign executor: expand -> (cache | run) -> journal -> merge.
//
// run_campaign() drives a CampaignSpec's cells through chksim::par with the
// same slot/merge discipline as core::run_sweep, plus the three properties
// a long sweep needs to survive contact with reality:
//
//  * memoisation — cells whose content address is already in the
//    ResultCache are not re-run (a warm rerun is pure cache reads);
//  * crash-safe resumption — every completed cell is appended to a JSONL
//    journal and fsync'd before the next cell can be claimed; a rerun with
//    resume=true replays the journal and picks up exactly where the
//    previous process was killed (the checkpointing discipline the
//    simulated systems themselves use, applied to the simulator);
//  * graceful degradation — a cell that throws is retried up to
//    max_attempts times, then recorded as failed; the campaign always runs
//    to the end of the grid.
//
// The merged report is built in cell-index order from canonicalised specs
// and parse/dump-normalised cell payloads, so it is byte-identical for any
// jobs value and for cold, warm (all-hits), and killed+resumed runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chksim/campaign/spec.hpp"
#include "chksim/obs/metrics.hpp"

namespace chksim::campaign {

struct CellOutcome {
  int index = -1;
  std::string key;          ///< Content address (spec + code version).
  std::string status;       ///< "ok" or "failed".
  bool from_cache = false;  ///< Satisfied by a ResultCache hit.
  bool from_journal = false;///< Replayed from the resume journal.
  int attempts = 0;         ///< Execution attempts this run (0 if not run).
  double seconds = 0;       ///< Wall-clock of the last attempt (0 if not run).
  std::string error;        ///< For failed cells.
  std::string metrics_json; ///< The cell's metrics report (ok cells).
};

struct RunnerConfig {
  /// Concurrent cells (<= 0 = hardware concurrency). Cells run their inner
  /// simulations serially (StudyConfig::jobs = 1); the campaign level is
  /// where the parallelism lives.
  int jobs = 1;
  /// Conservative-PDES shard count for each cell's engine runs
  /// (StudyConfig::shards). Results are byte-identical for every value, so
  /// this is deliberately NOT part of the cell identity — cache entries and
  /// journal keys are shared across shard counts.
  int shards = 1;
  /// Result-cache directory; "" disables memoisation.
  std::string cache_dir;
  /// Append-only JSONL journal path; "" disables journaling (and resume).
  std::string journal_path;
  /// Replay journal_path before running, skipping completed cells.
  bool resume = false;
  /// Wall-clock budget per cell; an attempt that overruns is recorded as
  /// failed. 0 = unlimited. NOTE: the DES has no preemption points, so the
  /// overrunning attempt is only *classified* after it returns — this
  /// bounds what a broken cell can cost a campaign report, not what it can
  /// cost the process.
  double cell_timeout_seconds = 0;
  /// Attempts per cell before it is recorded as failed.
  int max_attempts = 2;
  /// Code-version stamp for cache keys; "" = version::code_version().
  std::string code_version;
  /// Campaign-level counters (cache hits/misses, cells ok/failed, cell
  /// timings) are published here. Optional.
  obs::MetricsRegistry* metrics = nullptr;
  /// Called (serialised) after every settled cell; `done`/`total` include
  /// journal-replayed cells. Optional; used for progress/ETA narration.
  std::function<void(const CellOutcome&, int done, int total)> progress;
  /// TESTING ONLY: raise SIGKILL immediately after the N-th journal append
  /// of this run, simulating a mid-campaign crash with a durable journal.
  int kill_after_cells = 0;
};

struct CampaignResult {
  std::string name;
  std::string code_version;
  CampaignSpec spec;
  std::vector<CellOutcome> cells;  ///< In cell-index order.
  int ok = 0;
  int failed = 0;
  int from_cache = 0;
  int from_journal = 0;

  /// Deterministic merged report (pretty JSON, trailing newline):
  /// campaign name, provenance, and per-cell {spec, key, status,
  /// metrics|error} in index order. Byte-identical for any jobs value and
  /// for cold/warm/resumed runs of the same spec + code version.
  std::string report_json() const;
};

/// Execute a campaign. Throws std::invalid_argument for configuration
/// errors (resume without a journal path, unopenable journal); cell-level
/// failures do NOT throw — they are recorded in the result.
CampaignResult run_campaign(const CampaignSpec& spec, const RunnerConfig& config);

/// Run one cell to its metrics-JSON payload (the cache/journal/report
/// artifact). Exposed for tests and tooling. `shards` selects the PDES
/// shard count for the cell's engine runs; the payload is byte-identical
/// for every value.
std::string run_cell(const CellSpec& cell, int shards = 1);

}  // namespace chksim::campaign
