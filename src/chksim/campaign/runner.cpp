#include "chksim/campaign/runner.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "chksim/campaign/cache.hpp"
#include "chksim/core/failure_study.hpp"
#include "chksim/core/platform_study.hpp"
#include "chksim/core/study.hpp"
#include "chksim/net/machines.hpp"
#include "chksim/support/parallel.hpp"
#include "chksim/support/units.hpp"
#include "chksim/support/version.hpp"

namespace chksim::campaign {

namespace {

ckpt::ProtocolKind protocol_kind_of(const std::string& name) {
  if (name == "none") return ckpt::ProtocolKind::kNone;
  if (name == "coordinated") return ckpt::ProtocolKind::kCoordinated;
  if (name == "uncoordinated") return ckpt::ProtocolKind::kUncoordinated;
  if (name == "hierarchical") return ckpt::ProtocolKind::kHierarchical;
  throw std::invalid_argument("unknown protocol \"" + name + "\"");
}

/// Mirror of benchutil::scaled_machine: size the per-node checkpoint so one
/// write occupies `duty` of each interval at single-writer speed, with the
/// PFS aggregate limit lifted (the spec's duty axis isolates perturbation
/// from I/O contention, exactly like the E2/E3 harnesses). Platform cells
/// keep the real PFS limit — cross-job contention is the quantity under
/// study there — so they only get the checkpoint-size scaling.
net::MachineModel scaled_machine(net::MachineModel m, TimeNs interval, double duty,
                                 bool lift_pfs) {
  const double write_seconds = duty * units::to_seconds(interval);
  m.ckpt_bytes_per_node = static_cast<Bytes>(write_seconds * m.node_bw_bytes_per_s);
  if (lift_pfs) m.pfs_bw_bytes_per_s = m.node_bw_bytes_per_s * 1e7;
  return m;
}

/// Resolve a cell's machine: preset, duty scaling, then the cell's explicit
/// storage overrides (which win over both).
net::MachineModel machine_of(const CellSpec& cell) {
  net::MachineModel m = net::machine_by_name(cell.machine);
  const TimeNs interval = units::from_seconds(cell.interval_ms * 1e-3);
  if (cell.duty > 0)
    m = scaled_machine(m, interval, cell.duty, cell.mode != "platform");
  if (cell.node_bw_gbs > 0) m.node_bw_bytes_per_s = cell.node_bw_gbs * 1e9;
  if (cell.pfs_bw_gbs > 0) m.pfs_bw_bytes_per_s = cell.pfs_bw_gbs * 1e9;
  if (cell.bb_bw_gbs > 0) m.bb_bw_bytes_per_s = cell.bb_bw_gbs * 1e9;
  if (cell.mtbf_hours > 0) m.node_mtbf_hours = cell.mtbf_hours;
  return m;
}

core::StudyConfig study_config_of(const CellSpec& cell) {
  core::StudyConfig cfg;
  cfg.machine = machine_of(cell);
  const TimeNs interval = units::from_seconds(cell.interval_ms * 1e-3);
  cfg.workload = cell.workload;
  const TimeNs compute = units::from_seconds(cell.compute_us * 1e-6);
  cfg.params.ranks = cell.ranks;
  cfg.params.compute = compute;
  cfg.params.bytes = cell.bytes;
  // Size the iteration count to span `periods` checkpoint intervals
  // (mirror of benchutil::sized_params).
  const double iters = static_cast<double>(interval) * cell.periods /
                       static_cast<double>(compute);
  cfg.params.iterations = iters < 2 ? 2 : static_cast<int>(iters);
  cfg.params.seed = cell.seed;
  cfg.protocol.kind = protocol_kind_of(cell.protocol);
  cfg.protocol.fixed_interval = interval;
  cfg.protocol.cluster_size = cell.cluster_size;
  cfg.protocol.seed = cell.seed;
  cfg.protocol.tier = storage::tier_by_name(cell.tier);
  cfg.network.mode = core::network_mode_by_name(cell.network);
  cfg.network.routing = net::flow::routing_by_name(cell.routing);
  cfg.network.link_bw_gbs = cell.link_bw_gbs;
  cfg.jobs = 1;  // campaign-level parallelism only
  return cfg;
}

core::PlatformConfig platform_config_of(const CellSpec& cell) {
  const core::StudyConfig study = study_config_of(cell);
  core::PlatformConfig cfg;
  cfg.machine = study.machine;
  cfg.jobs = core::make_job_mix({cell.workload}, cell.njobs, cell.ranks,
                                study.params, study.protocol);
  cfg.arbiter = storage::arbiter_policy_by_name(cell.arbiter);
  cfg.network = study.network;
  cfg.stagger_frac = cell.stagger;
  cfg.preemption = study.preemption;
  cfg.threads = 1;  // campaign-level parallelism only
  return cfg;
}

/// Serialised, fsync'd appender: a journal line is durable before the
/// runner moves on — the property that makes kill -9 recoverable.
class JournalWriter {
 public:
  ~JournalWriter() {
    if (fd_ >= 0) ::close(fd_);
  }

  void open(const std::string& path) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
      throw std::invalid_argument("cannot open journal " + path + ": " +
                                  std::strerror(errno));
  }

  bool is_open() const { return fd_ >= 0; }

  /// Append one line + fsync. Returns the number of lines this writer has
  /// appended (for the kill-after test hook).
  int append(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("journal write failed: ") +
                                 std::strerror(errno));
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
      throw std::runtime_error(std::string("journal fsync failed: ") +
                               std::strerror(errno));
    return ++appended_;
  }

 private:
  std::mutex mutex_;
  int fd_ = -1;
  int appended_ = 0;
};

std::string journal_line(const CellOutcome& out) {
  json::Value::Object obj;
  obj.emplace("v", json::Value::integer(1));
  obj.emplace("cell", json::Value::integer(out.index));
  obj.emplace("key", json::Value::string(out.key));
  obj.emplace("status", json::Value::string(out.status));
  obj.emplace("attempts", json::Value::integer(out.attempts));
  if (out.status == "ok")
    obj.emplace("metrics", json::parse(out.metrics_json));
  else
    obj.emplace("error", json::Value::string(out.error));
  return json::Value::object(std::move(obj)).dump() + "\n";
}

/// Replay a journal: fill `outcomes` slots for every durable, well-formed
/// line whose key matches the current expansion. Torn tails, garbage lines,
/// and entries for a changed spec or code version are skipped — they are
/// exactly the states a crash or an edit can leave behind, and re-running
/// the cell is always safe.
void replay_journal(const std::string& path, const std::vector<std::string>& keys,
                    std::vector<std::optional<CellOutcome>>* outcomes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // no journal yet: nothing to resume
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail from a mid-write crash
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;

    json::Value v;
    if (!json::try_parse(line, &v, nullptr)) continue;
    const json::Value* ver = v.find("v");
    const json::Value* cell = v.find("cell");
    const json::Value* key = v.find("key");
    const json::Value* status = v.find("status");
    if (ver == nullptr || !ver->is_integer() || ver->as_int() != 1) continue;
    if (cell == nullptr || !cell->is_integer()) continue;
    if (key == nullptr || !key->is_string()) continue;
    if (status == nullptr || !status->is_string()) continue;
    const std::int64_t index = cell->as_int();
    if (index < 0 || index >= static_cast<std::int64_t>(keys.size())) continue;
    if (key->as_string() != keys[static_cast<std::size_t>(index)]) continue;
    if ((*outcomes)[static_cast<std::size_t>(index)].has_value()) continue;

    CellOutcome out;
    out.index = static_cast<int>(index);
    out.key = key->as_string();
    out.from_journal = true;
    if (const json::Value* attempts = v.find("attempts");
        attempts != nullptr && attempts->is_integer())
      out.attempts = static_cast<int>(attempts->as_int());
    if (status->as_string() == "ok") {
      const json::Value* metrics = v.find("metrics");
      if (metrics == nullptr || !metrics->is_object()) continue;
      out.status = "ok";
      out.metrics_json = metrics->dump();
    } else if (status->as_string() == "failed") {
      const json::Value* err = v.find("error");
      out.status = "failed";
      out.error = err != nullptr && err->is_string() ? err->as_string() : "unknown";
    } else {
      continue;
    }
    (*outcomes)[static_cast<std::size_t>(index)] = std::move(out);
  }
}

}  // namespace

std::string run_cell(const CellSpec& cell, int shards) {
  obs::MetricsRegistry reg;
  if (cell.mode == "platform") {
    core::PlatformConfig platform = platform_config_of(cell);
    platform.metrics = &reg;
    platform.shards = shards;
    core::run_platform_study(platform);
    return reg.to_json();
  }
  core::StudyConfig study = study_config_of(cell);
  study.metrics = &reg;
  study.shards = shards;
  if (cell.mode == "failures") {
    core::FailureStudyConfig f;
    f.study = study;
    f.work_seconds = cell.work_hours * 3600.0;
    f.trials = cell.trials;
    f.seed = cell.seed;
    f.jobs = 1;
    core::run_failure_study(f);
  } else {
    core::run_study(study);
  }
  return reg.to_json();
}

CampaignResult run_campaign(const CampaignSpec& spec, const RunnerConfig& config) {
  const std::string code_version =
      config.code_version.empty() ? version::code_version() : config.code_version;
  const int total = static_cast<int>(spec.cells.size());

  CampaignResult result;
  result.name = spec.name;
  result.code_version = code_version;
  result.spec = spec;

  std::vector<std::string> keys(spec.cells.size());
  for (std::size_t i = 0; i < spec.cells.size(); ++i)
    keys[i] = cell_key(spec.cells[i], code_version);

  if (config.resume && config.journal_path.empty())
    throw std::invalid_argument("resume requested without a journal path");

  std::vector<std::optional<CellOutcome>> outcomes(spec.cells.size());
  if (config.resume) replay_journal(config.journal_path, keys, &outcomes);

  JournalWriter journal;
  if (!config.journal_path.empty()) journal.open(config.journal_path);

  std::optional<ResultCache> cache;
  if (!config.cache_dir.empty())
    cache.emplace(config.cache_dir, code_version, config.metrics);

  // Pending = cells the journal did not settle.
  std::vector<std::size_t> pending;
  int done = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].has_value()) {
      ++done;
      if (config.progress) config.progress(*outcomes[i], done, total);
    } else {
      pending.push_back(i);
    }
  }

  std::mutex settle_mutex;  // serialises done count + progress narration
  std::atomic<int> executed{0};

  par::for_each_index(
      static_cast<std::int64_t>(pending.size()), config.jobs,
      [&](std::int64_t p) {
        const std::size_t i = pending[static_cast<std::size_t>(p)];
        const CellSpec& cell = spec.cells[i];
        CellOutcome out;
        out.index = static_cast<int>(i);
        out.key = keys[i];

        std::optional<std::string> hit;
        if (cache.has_value()) hit = cache->lookup(out.key);
        if (hit.has_value()) {
          out.status = "ok";
          out.from_cache = true;
          out.metrics_json = std::move(*hit);
        } else {
          // Bounded retry on thrown errors; an attempt that overruns the
          // wall-clock budget is classified as failed once it returns (the
          // DES has no preemption point to abort it at).
          const int max_attempts = std::max(1, config.max_attempts);
          for (out.attempts = 1; out.attempts <= max_attempts; ++out.attempts) {
            const auto t0 = std::chrono::steady_clock::now();
            try {
              std::string payload = run_cell(cell, config.shards);
              out.seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
              if (config.cell_timeout_seconds > 0 &&
                  out.seconds > config.cell_timeout_seconds) {
                out.status = "failed";
                out.error = "cell exceeded timeout (" +
                            std::to_string(out.seconds) + "s > " +
                            std::to_string(config.cell_timeout_seconds) + "s)";
                break;
              }
              out.status = "ok";
              out.metrics_json = std::move(payload);
              break;
            } catch (const std::exception& e) {
              out.seconds = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
              out.status = "failed";
              out.error = e.what();
            } catch (...) {
              out.status = "failed";
              out.error = "unknown error";
            }
          }
          if (out.attempts > max_attempts) out.attempts = max_attempts;
          executed.fetch_add(1, std::memory_order_relaxed);
          if (out.status == "ok" && cache.has_value()) {
            std::string err;
            // A failed store only loses memoisation, never the result.
            cache->store(out.key, out.metrics_json, &err);
          }
        }

        if (journal.is_open()) {
          const int appended = journal.append(journal_line(out));
          if (config.kill_after_cells > 0 && appended == config.kill_after_cells) {
            // Simulated crash: the journal line above is already durable.
            ::raise(SIGKILL);
          }
        }

        outcomes[i] = out;  // slot write; index-ordered fold below
        std::lock_guard<std::mutex> lock(settle_mutex);
        ++done;
        if (config.progress) config.progress(out, done, total);
      });

  // Index-ordered fold (same discipline as run_sweep's metrics merge).
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    CellOutcome& out = *outcomes[i];
    if (out.status == "ok")
      ++result.ok;
    else
      ++result.failed;
    if (out.from_cache) ++result.from_cache;
    if (out.from_journal) ++result.from_journal;
    if (config.metrics != nullptr && out.seconds > 0) {
      config.metrics->stats("campaign.cell_seconds").add(out.seconds);
      // Fixed shape so stats-out histograms from different runs merge and
      // diff cleanly; cells beyond 30 s land in the overflow bin.
      config.metrics->histogram("campaign.cell_seconds_hist", 0.0, 30.0, 30)
          .add(out.seconds);
    }
    result.cells.push_back(std::move(out));
  }

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.add_counter("campaign.cells_total", total);
    m.add_counter("campaign.cells_ok", result.ok);
    m.add_counter("campaign.cells_failed", result.failed);
    m.add_counter("campaign.cells_from_cache", result.from_cache);
    m.add_counter("campaign.cells_from_journal", result.from_journal);
    m.add_counter("campaign.cells_executed",
                  executed.load(std::memory_order_relaxed));
  }
  return result;
}

std::string CampaignResult::report_json() const {
  json::Value::Object root;
  root.emplace("campaign", json::Value::string(name));
  root.emplace("schema_version",
               json::Value::integer(version::schema_version()));
  root.emplace("code_version", json::Value::string(code_version));
  json::Value::Array cell_array;
  for (const CellOutcome& out : cells) {
    json::Value::Object entry;
    entry.emplace("spec",
                  spec.cells[static_cast<std::size_t>(out.index)].to_json());
    entry.emplace("key", json::Value::string(out.key));
    entry.emplace("status", json::Value::string(out.status));
    if (out.status == "ok")
      // parse/dump-normalised: byte-identical whether the payload came from
      // a fresh run, the cache, or a journal replay.
      entry.emplace("metrics", json::parse(out.metrics_json));
    else
      entry.emplace("error", json::Value::string(out.error));
    cell_array.push_back(json::Value::object(std::move(entry)));
  }
  root.emplace("cells", json::Value::array(std::move(cell_array)));
  return json::Value::object(std::move(root)).dump(2) + "\n";
}

}  // namespace chksim::campaign
