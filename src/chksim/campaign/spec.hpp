// Declarative scenario specifications: experiments as data.
//
// A campaign JSON document names a grid of simulation cells; the parser
// expands every sweep axis (any grid field given as an array) into the
// cartesian product and resolves each combination into a fully-typed,
// fully-defaulted CellSpec. Canonicalisation — sorted keys, every field
// materialised, numbers in their exact shortest form — gives each cell one
// stable byte representation, which is what the content-addressed result
// cache hashes and what makes campaign reports byte-identical across
// cold/warm/resumed runs and every --jobs value.
//
// Document shape:
//
//   {
//     "name": "e2_e3_scale",
//     "grid": {
//       "workload": ["halo3d", "hpccg"],   // array => sweep axis
//       "ranks": [64, 256],
//       "protocol": ["coordinated", "uncoordinated"],
//       "interval_ms": 10, "duty": 0.10    // scalar => fixed for all cells
//     },
//     "smoke": { "workload": "halo3d", "ranks": [64, 256] }
//   }
//
// "grids" (an array of grid objects, expanded in order) may replace "grid"
// when a campaign concatenates differently-shaped sweeps. The optional
// "smoke" object overrides grid fields when the campaign is run with
// --smoke, shrinking it to a regression-gate-sized subset declaratively.
//
// Expansion order is deterministic: grids in document order; within a grid,
// the odometer runs over the fields in CellSpec declaration order with the
// LAST axis fastest. Unknown fields anywhere are an error (a typo'd axis
// must not silently fix itself to the default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/support/json.hpp"

namespace chksim::campaign {

/// One fully-resolved simulation cell. Field semantics follow the bench
/// harnesses (bench_util): the machine's checkpoint size is scaled so one
/// write occupies `duty` of each `interval_ms` at single-writer speed, and
/// the workload is sized to cover `periods` checkpoint intervals.
struct CellSpec {
  /// "study" = failure-free perturbation breakdown (core::run_study);
  /// "failures" = decoupled failure study on top of it
  /// (core::run_failure_study); "platform" = multi-job interference study
  /// (core::run_platform_study — njobs jobs of `ranks` ranks each contend
  /// for the shared PFS under `arbiter`).
  std::string mode = "study";
  std::string machine = "infiniband";   ///< net::machine_by_name preset.
  std::string workload = "halo3d";      ///< workload registry name.
  std::string protocol = "coordinated"; ///< none|coordinated|uncoordinated|hierarchical.
  int ranks = 64;
  double interval_ms = 10.0;   ///< Checkpoint period.
  double duty = 0.10;          ///< Write duty cycle; <= 0 keeps the preset
                               ///< checkpoint size and contended PFS.
  int periods = 4;             ///< Checkpoint periods the workload spans.
  double compute_us = 1000.0;  ///< Per-iteration compute.
  std::int64_t bytes = 8192;   ///< Per-message payload.
  int cluster_size = 16;       ///< Hierarchical protocol cluster size.
  std::uint64_t seed = 1;      ///< Workload + protocol-phase RNG seed.

  // "failures" mode only (ignored by "study" cells, but still part of the
  // canonical form — a cell's identity is its full field vector).
  double mtbf_hours = 0;   ///< Per-node MTBF override; 0 = machine preset.
  double work_hours = 1.0; ///< Useful work for the recovery model.
  int trials = 50;         ///< Monte-Carlo trials.

  // Storage axes (sweepable; 0 keeps the machine preset's value).
  std::string tier = "pfs";  ///< pfs|burst-buffer|partner (checkpoint dest).
  double node_bw_gbs = 0;    ///< Per-node injection bandwidth, GB/s.
  double pfs_bw_gbs = 0;     ///< Aggregate PFS bandwidth, GB/s.
  double bb_bw_gbs = 0;      ///< Burst-buffer bandwidth, GB/s.

  // Network axes (sweepable). "flow" routes application messages and
  // checkpoint I/O over an explicit fabric (net::flow) so they contend for
  // links; the flow-only knobs below are dead axes under "analytic" and
  // non-default values there are rejected.
  std::string network = "analytic";  ///< analytic|flow (core::NetworkMode).
  double link_bw_gbs = 0;   ///< Fabric link capacity, GB/s; 0 = NIC rate.
  std::string routing = "minimal";  ///< minimal|valiant (flow mode only).

  // "platform" mode only.
  std::string arbiter = "fcfs";  ///< fcfs|fair|blocking|cooperative.
  int njobs = 2;                 ///< Jobs in the mix (ranks each).
  double stagger = 0;            ///< Machine-wide phase stagger in [0, 1].

  /// Canonical JSON: every field present, sorted keys.
  json::Value to_json() const;
  /// Canonical byte form (compact dump of to_json) — the cache-hash input.
  std::string canonical() const;

  /// Strict parse: unknown keys, bad types, and invalid values
  /// (unknown machine/workload/protocol, ranks < 1, ...) all throw
  /// std::invalid_argument.
  static CellSpec from_json(const json::Value& v);

  /// Validate the resolved values; throws std::invalid_argument.
  void validate() const;
};

/// A parsed campaign: a name plus the fully-expanded deterministic cell
/// list.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<CellSpec> cells;

  /// Parse + expand a campaign document. With `smoke`, the "smoke" object's
  /// fields override the grid's before expansion. Throws
  /// std::invalid_argument / json::ParseError on any problem.
  static CampaignSpec parse(const json::Value& doc, bool smoke = false);
  static CampaignSpec parse_text(const std::string& text, bool smoke = false);
  /// File variant: false + *error instead of throwing.
  static bool parse_file(const std::string& path, bool smoke, CampaignSpec* out,
                         std::string* error);
};

/// The content-address of a cell under a code version:
/// hash::content_key(canonical-spec + '\0' + code_version). Results
/// computed by one build never satisfy lookups from another.
std::string cell_key(const CellSpec& cell, const std::string& code_version);

}  // namespace chksim::campaign
