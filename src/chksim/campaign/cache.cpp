#include "chksim/campaign/cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "chksim/support/hash.hpp"

namespace chksim::campaign {

namespace fs = std::filesystem;

namespace {
constexpr char kMagic[] = "chksim-cache-v1";
}

ResultCache::ResultCache(std::string dir, std::string code_version,
                         obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), code_version_(std::move(code_version)),
      metrics_(metrics) {}

void ResultCache::count(const char* which) const {
  if (metrics_ != nullptr)
    metrics_->add_counter(std::string("campaign.cache.") + which);
}

std::string ResultCache::key(const CellSpec& cell) const {
  return cell_key(cell, code_version_);
}

std::string ResultCache::path_for(const std::string& key) const {
  return dir_ + "/" + key.substr(0, 2) + "/" + key + ".json";
}

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    count("misses");
    return std::nullopt;
  }
  const auto corrupt = [&]() -> std::optional<std::string> {
    in.close();
    std::error_code ec;
    // Best effort; a re-store overwrites anyway. A successful delete is an
    // eviction (the only way entries ever leave the cache).
    if (fs::remove(path, ec) && !ec) count("evictions");
    count("corrupt");
    count("misses");
    return std::nullopt;
  };

  std::string header;
  if (!std::getline(in, header)) return corrupt();
  std::istringstream fields(header);
  std::string magic, stored_key, checksum;
  std::size_t size = 0;
  if (!(fields >> magic >> stored_key >> size >> checksum) ||
      magic != kMagic || stored_key != key)
    return corrupt();

  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) return corrupt();
  // Exactly `size` payload bytes: anything after them is corruption.
  if (in.get() != std::ifstream::traits_type::eof()) return corrupt();

  char expect[17];
  std::snprintf(expect, sizeof expect, "%016llx",
                static_cast<unsigned long long>(hash::fnv1a(payload)));
  if (checksum != expect) return corrupt();

  count("hits");
  return payload;
}

bool ResultCache::store(const std::string& key, const std::string& payload,
                        std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };

  const std::string path = path_for(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    if (error != nullptr)
      *error = "cannot create cache dir for " + path + ": " + ec.message();
    return false;
  }

  char header[96];
  std::snprintf(header, sizeof header, "%s %s %zu %016llx\n", kMagic, key.c_str(),
                payload.size(), static_cast<unsigned long long>(hash::fnv1a(payload)));

  // Temp file + fsync + rename: the entry becomes visible only whole.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot open " + tmp);
  const auto write_all = [&](const char* data, std::size_t len) {
    while (len > 0) {
      const ssize_t n = ::write(fd, data, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data += n;
      len -= static_cast<std::size_t>(n);
    }
    return true;
  };
  if (!write_all(header, std::strlen(header)) ||
      !write_all(payload.data(), payload.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("write to " + tmp + " failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("rename " + tmp + " -> " + path + " failed");
  }
  count("stores");
  return true;
}

}  // namespace chksim::campaign
