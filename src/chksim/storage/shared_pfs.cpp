#include "chksim/storage/shared_pfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace chksim::storage {

namespace {

/// Remainders at or below this many bytes count as drained. Far below one
/// byte, far above double rounding noise at any realistic transfer size.
constexpr double kDrainEpsilonBytes = 1e-6;

}  // namespace

std::string to_string(ArbiterPolicy policy) {
  switch (policy) {
    case ArbiterPolicy::kFcfs:
      return "fcfs";
    case ArbiterPolicy::kFairShare:
      return "fair";
    case ArbiterPolicy::kBlocking:
      return "blocking";
    case ArbiterPolicy::kCooperative:
      return "cooperative";
  }
  return "unknown";
}

ArbiterPolicy arbiter_policy_by_name(const std::string& name) {
  for (ArbiterPolicy p : all_arbiter_policies())
    if (name == to_string(p)) return p;
  throw std::invalid_argument(
      "unknown arbiter policy \"" + name +
      "\" (expected fcfs, fair, blocking, or cooperative)");
}

std::vector<ArbiterPolicy> all_arbiter_policies() {
  return {ArbiterPolicy::kFcfs, ArbiterPolicy::kFairShare,
          ArbiterPolicy::kBlocking, ArbiterPolicy::kCooperative};
}

SharedPfs::SharedPfs(PfsParams params, ArbiterPolicy policy)
    : params_(params), policy_(policy) {
  validate_pfs_params(params_);
}

std::int64_t SharedPfs::submit(TimeNs now, const IoRequest& request) {
  if (now < clock_)
    throw std::invalid_argument("SharedPfs: submit at " + std::to_string(now) +
                                " behind the clock " + std::to_string(clock_));
  if (request.writers < 1)
    throw std::invalid_argument("SharedPfs: writers must be >= 1");
  if (request.bytes_per_writer < 0)
    throw std::invalid_argument("SharedPfs: bytes_per_writer must be >= 0");

  // Bring the machine up to the submission instant first, so the new
  // request cannot retroactively slow transfers that finished before it
  // arrived. Completions surface on the caller's next advance().
  advance(now, &pending_);

  Active a;
  a.id = next_id_++;
  a.job = request.job;
  a.writers = request.writers;
  a.priority = request.priority;
  a.cookie = request.cookie;
  a.submit = now;
  a.total_bytes = static_cast<double>(request.bytes_per_writer) *
                  static_cast<double>(request.writers);
  a.remaining_bytes = a.total_bytes;
  active_.push_back(a);
  stats_.requests += 1;
  stats_.peak_active =
      std::max(stats_.peak_active, static_cast<std::int64_t>(active_.size()));
  compute_rates();
  return a.id;
}

void SharedPfs::compute_rates() {
  rates_.assign(active_.size(), 0.0);
  if (active_.empty()) {
    holder_ = -1;
    return;
  }

  if (policy_ == ArbiterPolicy::kFairShare) {
    holder_ = -1;
    // Max-min water-filling of pfs_bw with per-request injection caps.
    std::vector<std::size_t> order(active_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double ca =
          static_cast<double>(active_[a].writers) * params_.node_bw_bytes_per_s;
      const double cb =
          static_cast<double>(active_[b].writers) * params_.node_bw_bytes_per_s;
      if (ca != cb) return ca < cb;
      return active_[a].id < active_[b].id;
    });
    double bw = params_.pfs_bw_bytes_per_s;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t i = order[k];
      const double cap =
          static_cast<double>(active_[i].writers) * params_.node_bw_bytes_per_s;
      const double share = bw / static_cast<double>(order.size() - k);
      const double r = std::min(cap, share);
      rates_[i] = r;
      bw -= r;
      active_[i].started = true;
    }
    return;
  }

  // Exclusive policies: pick (or keep) the holder.
  std::size_t pick = active_.size();
  const bool preemptive = policy_ == ArbiterPolicy::kCooperative;
  if (!preemptive && holder_ >= 0) {
    for (std::size_t i = 0; i < active_.size(); ++i)
      if (active_[i].id == holder_) pick = i;
  }
  if (pick == active_.size()) {
    // kFcfs grants in (submit, id) order — which is plain id order, since
    // submissions arrive in non-decreasing time. kBlocking and kCooperative
    // grant in (priority, id) order.
    const bool by_priority = policy_ != ArbiterPolicy::kFcfs;
    pick = 0;
    for (std::size_t i = 1; i < active_.size(); ++i) {
      if (by_priority && active_[i].priority != active_[pick].priority) {
        if (active_[i].priority < active_[pick].priority) pick = i;
        continue;
      }
      if (active_[i].id < active_[pick].id) pick = i;
    }
  }
  const std::int64_t new_holder = active_[pick].id;
  if (preemptive && holder_ >= 0 && new_holder != holder_) {
    for (const Active& a : active_)
      if (a.id == holder_ && a.started) stats_.preemptions += 1;
  }
  holder_ = new_holder;
  active_[pick].started = true;
  rates_[pick] =
      std::min(static_cast<double>(active_[pick].writers) *
                   params_.node_bw_bytes_per_s,
               params_.pfs_bw_bytes_per_s);
}

TimeNs SharedPfs::earliest_finish() const {
  TimeNs best = -1;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    TimeNs t;
    if (active_[i].remaining_bytes <= kDrainEpsilonBytes) {
      t = clock_;  // drained (or zero-byte): completes now
    } else if (rates_[i] > 0) {
      const double dt_ns =
          std::ceil(active_[i].remaining_bytes / rates_[i] * 1e9);
      t = clock_ + static_cast<TimeNs>(dt_ns);
    } else {
      continue;  // starved: no finish until the rates change
    }
    if (best < 0 || t < best) best = t;
  }
  return best;
}

void SharedPfs::complete(std::size_t index, TimeNs at,
                         std::vector<IoCompletion>* out) {
  const Active& a = active_[index];
  IoCompletion c;
  c.id = a.id;
  c.job = a.job;
  c.priority = a.priority;
  c.cookie = a.cookie;
  c.submit = a.submit;
  c.finish = at;
  c.queue_wait = a.queue_wait;
  c.service = at - a.submit - a.queue_wait;
  const double alone_bw =
      std::min(static_cast<double>(a.writers) * params_.node_bw_bytes_per_s,
               params_.pfs_bw_bytes_per_s);
  // Same ceil arithmetic as earliest_finish(), so a request that never
  // shared the server reports exactly zero contention.
  c.uncontended = a.total_bytes > 0
                      ? static_cast<TimeNs>(std::ceil(a.total_bytes / alone_bw * 1e9))
                      : 0;
  c.contention = std::max<TimeNs>(0, (at - a.submit) - c.uncontended);
  stats_.queue_wait_total += c.queue_wait;
  stats_.contention_total += c.contention;
  stats_.bytes_moved += static_cast<Bytes>(a.total_bytes);
  if (holder_ == a.id) holder_ = -1;
  out->push_back(c);
  active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(index));
  rates_.erase(rates_.begin() + static_cast<std::ptrdiff_t>(index));
}

void SharedPfs::progress_segment(TimeNs to, std::vector<IoCompletion>* out) {
  const TimeNs dt = to - clock_;
  if (dt > 0) {
    const double dt_s = static_cast<double>(dt) * 1e-9;
    bool any_moving = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (rates_[i] > 0) {
        active_[i].remaining_bytes =
            std::max(0.0, active_[i].remaining_bytes - rates_[i] * dt_s);
        any_moving = true;
      } else {
        active_[i].queue_wait += dt;
      }
    }
    if (any_moving) stats_.busy += dt;
    clock_ = to;
  }
  // Complete drained requests in id order: completions at one instant come
  // out (finish, id)-sorted, the same content-keyed tie order the engine's
  // event heap uses.
  bool completed = false;
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].remaining_bytes <= kDrainEpsilonBytes) {
      complete(i, clock_, out);
      completed = true;
    } else {
      ++i;
    }
  }
  if (completed) compute_rates();
}

void SharedPfs::advance(TimeNs t, std::vector<IoCompletion>* out) {
  if (!pending_.empty() && out != &pending_) {
    out->insert(out->end(), pending_.begin(), pending_.end());
    pending_.clear();
  }
  for (;;) {
    const TimeNs te = earliest_finish();
    if (te >= 0 && te <= t) {
      progress_segment(te, out);
      continue;
    }
    if (t > clock_) progress_segment(t, out);
    if (clock_ < t) clock_ = t;
    return;
  }
}

TimeNs SharedPfs::next_completion() const {
  if (!pending_.empty()) return pending_.front().finish;
  return earliest_finish();
}

}  // namespace chksim::storage
