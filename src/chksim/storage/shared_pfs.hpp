// SharedPfs: the parallel file system as a first-class discrete-event
// resource, shared by many jobs.
//
// The analytic Pfs (pfs.hpp) answers "how long does this write take" with
// closed-form formulas that assume one application owns the whole machine.
// SharedPfs answers the question the platform layer actually has to pose —
// "do two jobs' coordinated bursts stall each other?" — by simulating the
// file system as a server: checkpoint writes and restart reads arrive as
// I/O requests, an arbitration policy decides who gets bandwidth at each
// instant, and completions come back as events with the realised queueing
// delay and service stretch attached.
//
// The service model matches the analytic one exactly in the uncontended
// limit (the oracle property the tests pin): a request of `writers` nodes
// writing `bytes_per_writer` each drains at
//
//     rate = min(writers * node_bw, granted share of pfs_bw)
//
// so a lone FCFS burst finishes in bytes / min(node_bw, pfs_bw / writers)
// per node — byte-for-byte Pfs::concurrent_write. Under contention the
// policies differ in how pfs_bw is granted:
//
//   kFcfs        exclusive access in arrival order, non-preemptive. An
//                arriving burst queues until every earlier request drained.
//   kFairShare   all active requests progress concurrently; pfs_bw is
//                split max-min fairly, each request capped at its own
//                injection limit (writers * node_bw). The event-driven
//                generalisation of the analytic fixed point.
//   kBlocking    exclusive and non-preemptive like FCFS, but the grant
//                order is (priority, arrival): urgent I/O — restart reads
//                of a failed job — overtakes queued checkpoint writes. A
//                write that has started blocks everything until it drains.
//   kCooperative interruptible writes: exclusive, priority-preemptive with
//                resume. An arriving higher-priority request pauses the
//                in-progress transfer (its bytes are kept, not discarded)
//                and the preempted request resumes when the server frees.
//
// All arithmetic is serial and deterministic; ties (same-instant arrivals)
// break on (time, priority where the policy says so, submission sequence),
// and the submission sequence is itself deterministic because the platform
// timeline submits in a content-keyed order. Times are integer nanoseconds;
// in-flight remainders are tracked in double bytes (exactly representable
// progress deltas are not required — completion instants are re-derived
// from the remainder each segment, so drift cannot accumulate across
// requests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/storage/pfs.hpp"
#include "chksim/support/units.hpp"

namespace chksim::storage {

/// How concurrent I/O requests share the file system.
enum class ArbiterPolicy : std::uint8_t {
  kFcfs,
  kFairShare,
  kBlocking,
  kCooperative,
};

std::string to_string(ArbiterPolicy policy);
/// Parse "fcfs" | "fair" | "blocking" | "cooperative"; throws
/// std::invalid_argument on anything else.
ArbiterPolicy arbiter_policy_by_name(const std::string& name);
/// All policies, in enum order (for sweeps and tables).
std::vector<ArbiterPolicy> all_arbiter_policies();

/// Priorities: lower value wins where the policy is priority-aware
/// (kBlocking's grant order, kCooperative's preemption).
inline constexpr int kPriorityRestart = 0;  ///< Restart read of a failed job.
inline constexpr int kPriorityWrite = 1;    ///< Checkpoint write.

/// One I/O request: `writers` nodes of `job` each move `bytes_per_writer`
/// through the shared file system, starting no earlier than its submit time.
struct IoRequest {
  int job = 0;
  int writers = 1;
  Bytes bytes_per_writer = 0;
  int priority = kPriorityWrite;
  /// Opaque caller cookie, returned on the completion (the platform layer
  /// uses it to map completions back to burst-stream indices).
  std::int64_t cookie = 0;
};

/// A finished request, with the realised schedule attached.
struct IoCompletion {
  std::int64_t id = 0;  ///< Submission sequence number (per-arbiter, from 0).
  int job = 0;
  int priority = kPriorityWrite;
  std::int64_t cookie = 0;
  TimeNs submit = 0;
  TimeNs finish = 0;
  /// Time spent at zero rate (queued behind exclusive holders, or paused by
  /// a preemption). Always 0 under kFairShare, which never fully starves.
  TimeNs queue_wait = 0;
  /// finish - submit - queue_wait: time the request actually moved bytes.
  TimeNs service = 0;
  /// What the same request would have taken alone on the machine:
  /// total bytes / min(writers * node_bw, pfs_bw).
  TimeNs uncontended = 0;
  /// (finish - submit) - uncontended: the delay caused by other tenants —
  /// queueing plus bandwidth-share stretch. Never negative.
  TimeNs contention = 0;
};

/// The shared-storage arbiter. Drive it like any DES resource: submit
/// requests in non-decreasing time order, interleaved with advance(t) calls
/// that move the internal clock and surface completions.
class SharedPfs {
 public:
  /// Throws std::invalid_argument (via validate_pfs_params) on bad params.
  SharedPfs(PfsParams params, ArbiterPolicy policy);

  const PfsParams& params() const { return params_; }
  ArbiterPolicy policy() const { return policy_; }

  /// Submit a request at time `now`; `now` must be >= the clock (the
  /// greatest time passed to submit/advance so far) and the request must
  /// have writers >= 1 and bytes_per_writer >= 0. Returns the request id.
  /// A zero-byte request completes instantly (surfaced by the next
  /// advance()).
  std::int64_t submit(TimeNs now, const IoRequest& request);

  /// Advance the clock to `t`, appending every completion with
  /// finish <= t to `out` in (finish, id) order.
  void advance(TimeNs t, std::vector<IoCompletion>* out);

  /// Finish instant of the earliest in-flight completion under the current
  /// active set (valid until the next submit), or -1 when idle. The
  /// platform event loop uses min(next submission, next_completion()).
  TimeNs next_completion() const;

  bool idle() const { return active_.empty(); }
  TimeNs clock() const { return clock_; }

  /// Lifetime aggregates (for machine-level reports).
  struct Stats {
    std::int64_t requests = 0;
    std::int64_t preemptions = 0;   ///< kCooperative pauses applied.
    TimeNs busy = 0;                ///< Time with at least one non-zero rate.
    TimeNs queue_wait_total = 0;    ///< Summed over completed requests.
    TimeNs contention_total = 0;    ///< Summed over completed requests.
    Bytes bytes_moved = 0;
    std::int64_t peak_active = 0;   ///< Max concurrently in-flight requests.
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Active {
    std::int64_t id = 0;
    int job = 0;
    int writers = 1;
    int priority = kPriorityWrite;
    std::int64_t cookie = 0;
    TimeNs submit = 0;
    double remaining_bytes = 0;  ///< Total across writers.
    double total_bytes = 0;
    TimeNs queue_wait = 0;
    bool started = false;  ///< Has ever held the server (exclusive policies).
  };

  /// Fill `rates_` (bytes/s per active request, parallel to active_) per
  /// the policy. Also returns the index that exclusively holds the server
  /// (-1 for fair-share / idle).
  void compute_rates();
  /// Advance every active request by the segment [clock_, to), completing
  /// requests whose remainder drains exactly at `to`.
  void progress_segment(TimeNs to, std::vector<IoCompletion>* out);
  TimeNs earliest_finish() const;
  void complete(std::size_t index, TimeNs at, std::vector<IoCompletion>* out);

  PfsParams params_;
  ArbiterPolicy policy_;
  TimeNs clock_ = 0;
  std::int64_t next_id_ = 0;
  /// Exclusive policies: id of the request currently holding the server
  /// (kFcfs/kBlocking keep it until the holder drains; kCooperative can
  /// switch it on arrival). -1 = free.
  std::int64_t holder_ = -1;
  std::vector<Active> active_;   ///< Submission order (id ascending).
  std::vector<double> rates_;    ///< Parallel to active_; bytes/s.
  /// Completions realised inside submit() (the internal catch-up advance);
  /// drained ahead of new completions by the next advance().
  std::vector<IoCompletion> pending_;
  Stats stats_;
};

}  // namespace chksim::storage
