#include "chksim/storage/pfs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace chksim::storage {

std::string to_string(StorageTier tier) {
  switch (tier) {
    case StorageTier::kParallelFs:
      return "pfs";
    case StorageTier::kBurstBuffer:
      return "burst-buffer";
    case StorageTier::kPartner:
      return "partner";
  }
  return "unknown";
}

StorageTier tier_by_name(const std::string& name) {
  if (name == "pfs") return StorageTier::kParallelFs;
  if (name == "burst-buffer") return StorageTier::kBurstBuffer;
  if (name == "partner") return StorageTier::kPartner;
  throw std::invalid_argument("unknown storage tier \"" + name +
                              "\" (expected pfs, burst-buffer, or partner)");
}

namespace {

[[noreturn]] void bad_param(const char* field, double value,
                            const std::string& constraint) {
  throw std::invalid_argument("PfsParams." + std::string(field) + " = " +
                              std::to_string(value) + ": " + constraint);
}

/// Positive and finite — NaN fails every comparison, so test explicitly.
bool positive_finite(double v) { return std::isfinite(v) && v > 0; }

}  // namespace

void validate_pfs_params(const PfsParams& params) {
  if (!positive_finite(params.node_bw_bytes_per_s))
    bad_param("node_bw_bytes_per_s", params.node_bw_bytes_per_s,
              "must be positive and finite");
  if (!positive_finite(params.pfs_bw_bytes_per_s))
    bad_param("pfs_bw_bytes_per_s", params.pfs_bw_bytes_per_s,
              "must be positive and finite");
  if (std::isnan(params.bb_bw_bytes_per_s) || params.bb_bw_bytes_per_s < 0 ||
      (params.bb_bw_bytes_per_s > 0 && !std::isfinite(params.bb_bw_bytes_per_s)))
    bad_param("bb_bw_bytes_per_s", params.bb_bw_bytes_per_s,
              "must be >= 0 and finite");
}

void validate_pfs_params(const PfsParams& params, StorageTier tier) {
  validate_pfs_params(params);
  if (tier == StorageTier::kBurstBuffer && params.bb_bw_bytes_per_s <= 0)
    bad_param("bb_bw_bytes_per_s", params.bb_bw_bytes_per_s,
              "tier is burst-buffer but no burst-buffer bandwidth is configured");
  if (tier != StorageTier::kBurstBuffer && params.bb_bw_bytes_per_s > 0)
    bad_param("bb_bw_bytes_per_s", params.bb_bw_bytes_per_s,
              "burst-buffer bandwidth is set but tier \"" + to_string(tier) +
                  "\" never uses it (dead sweep axis; set it to 0 or use the "
                  "burst-buffer tier)");
}

Pfs::Pfs(PfsParams params) : params_(params) { validate_pfs_params(params_); }

WriteTime Pfs::concurrent_write(Bytes bytes, int writers) const {
  if (bytes < 0) throw std::invalid_argument("Pfs: bytes must be >= 0");
  if (writers <= 0) throw std::invalid_argument("Pfs: writers must be > 0");
  WriteTime w;
  const double share = params_.pfs_bw_bytes_per_s / static_cast<double>(writers);
  w.per_node_bw = std::min(params_.node_bw_bytes_per_s, share);
  w.saturated = share < params_.node_bw_bytes_per_s;
  w.effective_writers = writers;
  w.per_node = units::from_seconds(static_cast<double>(bytes) / w.per_node_bw);
  return w;
}

WriteTime Pfs::spread_write(Bytes bytes, int total_nodes, TimeNs tau) const {
  return spread_write_groups(bytes, 1, total_nodes, tau);
}

WriteTime Pfs::spread_write_groups(Bytes bytes, int group_size, int n_groups,
                                   TimeNs tau) const {
  if (bytes < 0) throw std::invalid_argument("Pfs: bytes must be >= 0");
  if (group_size <= 0 || n_groups <= 0)
    throw std::invalid_argument("Pfs: group_size and n_groups must be > 0");
  if (tau <= 0) throw std::invalid_argument("Pfs: tau must be > 0");
  const int total_nodes = group_size * n_groups;
  const double util = pfs_utilization(params_, bytes, total_nodes, tau);
  if (util >= 1.0)
    throw std::invalid_argument(
        "Pfs: offered checkpoint load exceeds file-system bandwidth "
        "(utilization " + std::to_string(util) + "); no steady state");

  const double tau_s = units::to_seconds(tau);
  const double groups = static_cast<double>(n_groups);
  const double b = static_cast<double>(bytes);
  // Damped fixed-point iteration on the per-node write time W (seconds):
  // concurrent writers = group_size * (expected concurrently-writing groups).
  double w = b / params_.node_bw_bytes_per_s;
  double writers = static_cast<double>(group_size);
  for (int i = 0; i < 200; ++i) {
    writers = static_cast<double>(group_size) * std::max(1.0, groups * w / tau_s);
    const double bw =
        std::min(params_.node_bw_bytes_per_s, params_.pfs_bw_bytes_per_s / writers);
    const double w_next = b / bw;
    const double w_new = 0.5 * w + 0.5 * w_next;
    if (std::abs(w_new - w) < 1e-12 * std::max(1.0, w)) {
      w = w_new;
      break;
    }
    w = w_new;
  }
  WriteTime out;
  out.per_node = units::from_seconds(w);
  out.effective_writers = writers;
  out.per_node_bw = b > 0 ? b / w : params_.node_bw_bytes_per_s;
  out.saturated = params_.pfs_bw_bytes_per_s / writers < params_.node_bw_bytes_per_s;
  return out;
}

WriteTime Pfs::burst_buffer_write(Bytes bytes) const {
  if (params_.bb_bw_bytes_per_s <= 0)
    throw std::logic_error("Pfs: no burst buffer configured");
  if (bytes < 0) throw std::invalid_argument("Pfs: bytes must be >= 0");
  WriteTime w;
  w.per_node_bw = params_.bb_bw_bytes_per_s;
  w.effective_writers = 1;
  w.per_node = units::from_seconds(static_cast<double>(bytes) / w.per_node_bw);
  return w;
}

TimeNs Pfs::drain_time(Bytes bytes, int total_nodes) const {
  if (bytes < 0 || total_nodes <= 0)
    throw std::invalid_argument("Pfs: invalid drain query");
  const double total = static_cast<double>(bytes) * static_cast<double>(total_nodes);
  return units::from_seconds(total / params_.pfs_bw_bytes_per_s);
}

double pfs_utilization(const PfsParams& params, Bytes bytes, int total_nodes,
                       TimeNs tau) {
  assert(tau > 0);
  const double offered = static_cast<double>(bytes) *
                         static_cast<double>(total_nodes) / units::to_seconds(tau);
  return offered / params.pfs_bw_bytes_per_s;
}

}  // namespace chksim::storage
