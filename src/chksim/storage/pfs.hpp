// Parallel-file-system bandwidth model for checkpoint I/O.
//
// A node writes its checkpoint through a node link of bandwidth `node_bw`
// into a file system with aggregate bandwidth `pfs_bw` shared equally by all
// concurrent writers. This captures the study's key storage asymmetry:
//
//  * Coordinated checkpointing writes with all P nodes at once, so each node
//    gets min(node_bw, pfs_bw / P) — at scale the PFS share dominates and the
//    write time grows linearly with P.
//  * Uncoordinated checkpointing spreads writers in time; the expected
//    concurrency is the solution of a fixed point (writers = P * W / tau),
//    so per-node bandwidth stays near node_bw until utilisation saturates.
//
// An optional burst-buffer tier absorbs the write at local speed and drains
// to the PFS in the background (the drain only matters when it exceeds the
// checkpoint interval).
#pragma once

#include <string>

#include "chksim/support/units.hpp"

namespace chksim::storage {

/// Where checkpoints are written.
enum class StorageTier {
  kParallelFs,   ///< Shared PFS: bandwidth contention applies.
  kBurstBuffer,  ///< Node-local NVM: flat per-node write time.
  kPartner,      ///< Diskless: copy to a partner node's memory over the
                 ///< network (no storage contention; survives single-node
                 ///< failures only).
};

std::string to_string(StorageTier tier);

/// Inverse of to_string ("pfs", "burst-buffer", "partner"); throws
/// std::invalid_argument for anything else.
StorageTier tier_by_name(const std::string& name);

struct PfsParams {
  double node_bw_bytes_per_s = 1.5e9;  ///< Per-node injection bandwidth.
  double pfs_bw_bytes_per_s = 200e9;   ///< Aggregate file-system bandwidth.
  double bb_bw_bytes_per_s = 0;        ///< Burst-buffer bandwidth (0 = none).
};

/// Validate storage parameters, optionally against the checkpoint tier they
/// will serve. Throws std::invalid_argument with a structured diagnostic —
/// "PfsParams.<field> = <value>: <constraint>" — for non-positive or NaN/inf
/// bandwidths, negative/NaN burst-buffer bandwidth, and the silent-garbage
/// configurations a sweep can produce: bb_bw > 0 with a tier that never
/// touches the burst buffer (the axis would be dead weight), or
/// tier == kBurstBuffer with bb_bw <= 0 (every write would throw later,
/// far from the config that caused it). Pass no tier to check the
/// bandwidths alone.
void validate_pfs_params(const PfsParams& params);
void validate_pfs_params(const PfsParams& params, StorageTier tier);

/// Result of a write-time query.
struct WriteTime {
  TimeNs per_node = 0;          ///< Wall time a node is busy writing.
  double effective_writers = 0; ///< Concurrency used for the bandwidth share.
  double per_node_bw = 0;       ///< Achieved bytes/s per node.
  bool saturated = false;       ///< True if the PFS aggregate limit bound.
};

class Pfs {
 public:
  explicit Pfs(PfsParams params);

  const PfsParams& params() const { return params_; }

  /// Write time when exactly `writers` nodes write `bytes` each,
  /// simultaneously (the coordinated-burst case).
  WriteTime concurrent_write(Bytes bytes, int writers) const;

  /// Expected write time when `total_nodes` nodes each write `bytes` once
  /// per interval `tau`, with write start times spread uniformly (the
  /// uncoordinated case). Solves the fixed point
  ///     W = bytes / min(node_bw, pfs_bw / max(1, total_nodes * W / tau))
  /// by damped iteration; throws std::invalid_argument if the offered load
  /// exceeds the PFS capacity (bytes * total_nodes / tau > pfs_bw), in which
  /// case no steady state exists.
  WriteTime spread_write(Bytes bytes, int total_nodes, TimeNs tau) const;

  /// Generalisation of spread_write for hierarchical protocols: `n_groups`
  /// clusters of `group_size` nodes each checkpoint once per `tau`; nodes
  /// within a cluster write simultaneously, cluster start times are spread.
  /// spread_write(b, n, tau) == spread_write_groups(b, 1, n, tau).
  WriteTime spread_write_groups(Bytes bytes, int group_size, int n_groups,
                                TimeNs tau) const;

  /// Write time to a node-local burst buffer (requires bb_bw > 0).
  WriteTime burst_buffer_write(Bytes bytes) const;

  /// Time for the burst buffer to drain `bytes` per node from `total_nodes`
  /// nodes to the PFS (background; bounds the usable checkpoint interval).
  TimeNs drain_time(Bytes bytes, int total_nodes) const;

 private:
  PfsParams params_;
};

/// Offered-load utilisation of the PFS: fraction of aggregate bandwidth
/// consumed by `total_nodes` nodes writing `bytes` every `tau`.
double pfs_utilization(const PfsParams& params, Bytes bytes, int total_nodes,
                       TimeNs tau);

}  // namespace chksim::storage
