// Every collective allocates its tags from the program's own counter
// (Program::allocate_tags) at build time. This is what makes collectives
// compose with iteration templates: a collective built inside a
// begin_repeat()/repeat() block has all of its tags >= the block's tag
// mark, so repeat() rebases them per copy and the replicated phases never
// cross-match.
#include "chksim/coll/collectives.hpp"

#include <cassert>
#include <stdexcept>

namespace chksim::coll {

using sim::OpRef;
using sim::Program;
using sim::RankId;
using sim::Tag;

namespace {

/// Dependency-wiring helper for one collective over a group.
///
/// Each member has a "frontier": the set of its most recent ops. New ops
/// depend on the frontier. chain() advances the frontier immediately
/// (sequential semantics); stage() defers the advance until commit() so that
/// several ops in one round start concurrently.
class Members {
 public:
  Members(Program& p, const Group& group, const Deps& entry) : p_(p), group_(group) {
    frontier_.resize(group.size());
    staged_.resize(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i < entry.size() && entry[i].valid()) {
        assert(entry[i].rank == group[i] && "entry dep must live on the member's rank");
        frontier_[i] = {entry[i]};
      }
    }
  }

  int size() const { return static_cast<int>(group_.size()); }
  RankId rank(int i) const { return group_[static_cast<std::size_t>(i)]; }

  OpRef chain_send(int i, int j, Bytes bytes, Tag tag) {
    return chain(i, p_.send(rank(i), rank(j), bytes, tag));
  }
  OpRef chain_recv(int i, int j, Bytes bytes, Tag tag) {
    return chain(i, p_.recv(rank(i), rank(j), bytes, tag));
  }
  OpRef stage_send(int i, int j, Bytes bytes, Tag tag) {
    return stage(i, p_.send(rank(i), rank(j), bytes, tag));
  }
  OpRef stage_recv(int i, int j, Bytes bytes, Tag tag) {
    return stage(i, p_.recv(rank(i), rank(j), bytes, tag));
  }

  /// Zero-duration op joining the member's current frontier into one handle.
  OpRef join(int i) { return chain(i, p_.calc(rank(i), 0)); }

  /// Ops staged this round become member i's frontier.
  void commit(int i) {
    auto& staged = staged_[static_cast<std::size_t>(i)];
    if (staged.empty()) return;
    frontier_[static_cast<std::size_t>(i)] = std::move(staged);
    staged.clear();
  }
  void commit_all() {
    for (int i = 0; i < size(); ++i) commit(i);
  }

  /// One exit op per member: the single frontier op, or a join node when the
  /// frontier has several ops (or is empty).
  Deps exits() {
    Deps out(static_cast<std::size_t>(size()));
    for (int i = 0; i < size(); ++i) {
      auto& f = frontier_[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = f.size() == 1 ? f[0] : join(i);
    }
    return out;
  }

 private:
  OpRef attach(int i, OpRef op) {
    for (const OpRef& d : frontier_[static_cast<std::size_t>(i)]) p_.depends(d, op);
    return op;
  }
  OpRef chain(int i, OpRef op) {
    attach(i, op);
    frontier_[static_cast<std::size_t>(i)] = {op};
    return op;
  }
  OpRef stage(int i, OpRef op) {
    attach(i, op);
    staged_[static_cast<std::size_t>(i)].push_back(op);
    return op;
  }

  Program& p_;
  const Group& group_;
  std::vector<std::vector<OpRef>> frontier_;
  std::vector<std::vector<OpRef>> staged_;
};

void check_group(const Group& group, int root_idx = 0) {
  if (group.empty()) throw std::invalid_argument("collective over empty group");
  if (root_idx < 0 || static_cast<std::size_t>(root_idx) >= group.size())
    throw std::invalid_argument("collective root index out of range");
}

int floor_pow2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

Group full_group(int nranks) {
  Group g(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) g[static_cast<std::size_t>(i)] = i;
  return g;
}

Deps bcast_binomial(Program& p, const Group& group, int root_idx, Bytes bytes,
                    const Deps& entry) {
  check_group(group, root_idx);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int i = 0; i < P; ++i) {
    const int vr = (i - root_idx + P) % P;
    // Receive from parent (the member that differs in vr's lowest set bit).
    int mask = 1;
    while (mask < P) {
      if (vr & mask) {
        const int parent = (vr - mask + root_idx) % P;
        m.chain_recv(i, parent, bytes, tag);
        break;
      }
      mask <<= 1;
    }
    // Forward to children, highest distance first (MPICH order).
    mask >>= 1;
    while (mask > 0) {
      if ((vr & mask) == 0 && vr + mask < P) {
        const int child = (vr + mask + root_idx) % P;
        m.chain_send(i, child, bytes, tag);
      }
      mask >>= 1;
    }
  }
  return m.exits();
}

Deps reduce_binomial(Program& p, const Group& group, int root_idx, Bytes bytes,
                     const Deps& entry) {
  check_group(group, root_idx);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int i = 0; i < P; ++i) {
    const int vr = (i - root_idx + P) % P;
    int mask = 1;
    while (mask < P) {
      if ((vr & mask) == 0) {
        const int src_vr = vr | mask;
        if (src_vr < P) {
          const int src = (src_vr + root_idx) % P;
          m.chain_recv(i, src, bytes, tag);  // combine child's partial result
        }
      } else {
        const int dst = ((vr & ~mask) + root_idx) % P;
        m.chain_send(i, dst, bytes, tag);
        break;  // after sending up, this member is done
      }
      mask <<= 1;
    }
  }
  return m.exits();
}

Deps allreduce_recursive_doubling(Program& p, const Group& group, Bytes bytes,
                                  const Deps& entry) {
  check_group(group);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  if (P == 1) return m.exits();

  const int p2 = floor_pow2(P);
  const int rem = P - p2;

  // Fold-in: odd members among the first 2*rem send their data to the even
  // neighbour, which participates on their behalf.
  // new_idx: participants get indices 0..p2-1.
  std::vector<int> new_idx(static_cast<std::size_t>(P), -1);
  for (int i = 0; i < P; ++i) {
    if (i < 2 * rem) {
      if (i % 2 == 0) {
        new_idx[static_cast<std::size_t>(i)] = i / 2;
      }
    } else {
      new_idx[static_cast<std::size_t>(i)] = i - rem;
    }
  }
  if (rem > 0) {
    for (int i = 0; i < 2 * rem; i += 2) {
      m.chain_send(i + 1, i, bytes, tag);
      m.chain_recv(i, i + 1, bytes, tag);
    }
  }

  // Recursive doubling among the p2 participants.
  std::vector<int> member_of(static_cast<std::size_t>(p2));
  for (int i = 0; i < P; ++i)
    if (new_idx[static_cast<std::size_t>(i)] >= 0)
      member_of[static_cast<std::size_t>(new_idx[static_cast<std::size_t>(i)])] = i;
  for (int mask = 1; mask < p2; mask <<= 1) {
    for (int ni = 0; ni < p2; ++ni) {
      const int i = member_of[static_cast<std::size_t>(ni)];
      const int partner = member_of[static_cast<std::size_t>(ni ^ mask)];
      m.stage_send(i, partner, bytes, tag);
      m.stage_recv(i, partner, bytes, tag);
    }
    m.commit_all();
  }

  // Fold-out: even members return the final result to the odd neighbour.
  if (rem > 0) {
    for (int i = 0; i < 2 * rem; i += 2) {
      m.chain_send(i, i + 1, bytes, tag);
      m.chain_recv(i + 1, i, bytes, tag);
    }
  }
  return m.exits();
}

Deps allreduce_ring(Program& p, const Group& group, Bytes bytes, const Deps& entry) {
  check_group(group);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  if (P == 1) return m.exits();
  const Bytes chunk = bytes / P > 0 ? bytes / P : 1;
  // Reduce-scatter then allgather: 2*(P-1) ring steps of one chunk each.
  for (int step = 0; step < 2 * (P - 1); ++step) {
    for (int i = 0; i < P; ++i) {
      m.stage_send(i, (i + 1) % P, chunk, tag);
      m.stage_recv(i, (i + P - 1) % P, chunk, tag);
    }
    m.commit_all();
  }
  return m.exits();
}

Deps barrier_dissemination(Program& p, const Group& group, const Deps& entry) {
  check_group(group);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int dist = 1; dist < P; dist <<= 1) {
    for (int i = 0; i < P; ++i) {
      m.stage_send(i, (i + dist) % P, 0, tag);
      m.stage_recv(i, (i + P - dist) % P, 0, tag);
    }
    m.commit_all();
  }
  return m.exits();
}

Deps barrier_tree(Program& p, const Group& group, const Deps& entry) {
  Deps up = reduce_binomial(p, group, 0, 0, entry);
  return bcast_binomial(p, group, 0, 0, up);
}

Deps allgather_ring(Program& p, const Group& group, Bytes bytes_per_member,
                    const Deps& entry) {
  check_group(group);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int step = 0; step < P - 1; ++step) {
    for (int i = 0; i < P; ++i) {
      m.stage_send(i, (i + 1) % P, bytes_per_member, tag);
      m.stage_recv(i, (i + P - 1) % P, bytes_per_member, tag);
    }
    m.commit_all();
  }
  return m.exits();
}

Deps alltoall_pairwise(Program& p, const Group& group, Bytes bytes_per_pair,
                       const Deps& entry) {
  check_group(group);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int round = 1; round < P; ++round) {
    for (int i = 0; i < P; ++i) {
      m.stage_send(i, (i + round) % P, bytes_per_pair, tag);
      m.stage_recv(i, (i + P - round) % P, bytes_per_pair, tag);
    }
    m.commit_all();
  }
  return m.exits();
}

Deps gather_linear(Program& p, const Group& group, int root_idx, Bytes bytes,
                   const Deps& entry) {
  check_group(group, root_idx);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int i = 0; i < P; ++i) {
    if (i == root_idx) continue;
    m.chain_send(i, root_idx, bytes, tag);
    m.stage_recv(root_idx, i, bytes, tag);
  }
  m.commit(root_idx);
  return m.exits();
}

Deps scatter_linear(Program& p, const Group& group, int root_idx, Bytes bytes,
                    const Deps& entry) {
  check_group(group, root_idx);
  const int P = static_cast<int>(group.size());
  const Tag tag = p.allocate_tags();
  Members m(p, group, entry);
  for (int i = 0; i < P; ++i) {
    if (i == root_idx) continue;
    m.stage_send(root_idx, i, bytes, tag);
    m.chain_recv(i, root_idx, bytes, tag);
  }
  m.commit(root_idx);
  return m.exits();
}

}  // namespace chksim::coll
