// Collective-operation expanders.
//
// Each function appends a collective's point-to-point realisation to a
// Program, over an arbitrary group of ranks, using the standard algorithms
// (MPICH-style binomial trees, recursive doubling, dissemination, ring,
// pairwise exchange). Every call allocates a fresh tag, so collectives never
// cross-match.
//
// Interface convention:
//   * `group[i]` is the actual rank of group member i ("virtual rank" i).
//   * `entry[i]` (optional, may be empty or contain invalid refs) is the op
//     member i's first collective ops depend on.
//   * The returned vector has one exit op per member; a member's exit op
//     completes only when that member's participation is finished.
#pragma once

#include <vector>

#include "chksim/sim/program.hpp"

namespace chksim::coll {

using Group = std::vector<sim::RankId>;
using Deps = std::vector<sim::OpRef>;

/// Group {0, 1, ..., nranks-1}.
Group full_group(int nranks);

/// Broadcast `bytes` from group member root_idx (binomial tree).
Deps bcast_binomial(sim::Program& p, const Group& group, int root_idx, Bytes bytes,
                    const Deps& entry = {});

/// Reduce `bytes` to group member root_idx (binomial tree).
Deps reduce_binomial(sim::Program& p, const Group& group, int root_idx, Bytes bytes,
                     const Deps& entry = {});

/// Allreduce of `bytes` via recursive doubling (with the standard
/// non-power-of-two fold-in/fold-out phases).
Deps allreduce_recursive_doubling(sim::Program& p, const Group& group, Bytes bytes,
                                  const Deps& entry = {});

/// Allreduce of `bytes` via ring reduce-scatter + ring allgather
/// (bandwidth-optimal for large payloads).
Deps allreduce_ring(sim::Program& p, const Group& group, Bytes bytes,
                    const Deps& entry = {});

/// Dissemination barrier (zero-byte messages, ceil(log2 P) rounds).
Deps barrier_dissemination(sim::Program& p, const Group& group,
                           const Deps& entry = {});

/// Tree barrier: binomial reduce to member 0, binomial broadcast back.
Deps barrier_tree(sim::Program& p, const Group& group, const Deps& entry = {});

/// Ring allgather: every member contributes `bytes_per_member`.
Deps allgather_ring(sim::Program& p, const Group& group, Bytes bytes_per_member,
                    const Deps& entry = {});

/// Pairwise-exchange alltoall: every member sends `bytes_per_pair` to every
/// other member, P-1 rounds.
Deps alltoall_pairwise(sim::Program& p, const Group& group, Bytes bytes_per_pair,
                       const Deps& entry = {});

/// Linear gather of `bytes` per member to root_idx.
Deps gather_linear(sim::Program& p, const Group& group, int root_idx, Bytes bytes,
                   const Deps& entry = {});

/// Linear scatter of `bytes` per member from root_idx.
Deps scatter_linear(sim::Program& p, const Group& group, int root_idx, Bytes bytes,
                    const Deps& entry = {});

}  // namespace chksim::coll
