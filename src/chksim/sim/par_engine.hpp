// Conservative parallel discrete-event engine: shard the ranks, keep the
// bytes.
//
// ParEngine partitions the ranks of a Program into `shards` contiguous
// ranges over the rank-major SoA layout, gives each shard its own event
// heap + match arenas (the same detail::CoreImpl state the serial SimCore
// uses, instantiated per shard), and advances the shards concurrently in
// bounded-window supersteps on the shared par::ThreadPool:
//
//   1. window  — every shard independently processes its pending events in
//      [F, F + W - 1], where F is the globally earliest pending event time
//      and W = net.L is the conservative lookahead. LogGOPS guarantees a
//      cross-rank message injected at t arrives no earlier than t + L
//      (wire_time >= L, and the per-channel FIFO clamp only raises arrivals
//      toward previously delivered ones), so nothing a shard does inside the
//      window can affect another shard within it. Cross-shard sends are
//      appended to the source shard's outgoing lane instead of a peer heap.
//   2. barrier — lanes are delivered into the destination heaps, and the
//      per-shard pop streams are merged (below).
//
// Determinism contract: every observable output — RunResult (minus the
// pdes_* telemetry block), metrics, trace bytes, critical-path blame — is
// byte-identical to the serial engine for ANY shard count. This works
// because the serial engine orders events by content ((time, rank, key):
// engine_detail.hpp), not by heap-insertion history:
//
//  * a shard's pop stream is exactly the serial pop order restricted to its
//    ranks — late lane delivery cannot reorder pops, since a delivered
//    arrival is at least one full window ahead of everything the shard
//    processed when the message was parked;
//  * with L >= 1 a pop creates same-time events only on its own rank, so the
//    serial order visits equal-time events as contiguous per-rank groups in
//    increasing rank order — merging the per-shard streams by (time, rank)
//    therefore reconstructs the serial global order exactly;
//  * the serial heap-size trajectory (event_heap_peak is a published
//    metric) is replayed abstractly over the merged stream from per-pop
//    push counts, and trace events are buffered per shard with provisional
//    ids, then renumbered through the real sink in merged order, so even
//    sink-assigned sequence numbers come out byte-identical.
//
// Cost model: one barrier per W of simulated time with work proportional to
// the events inside the window. The default LogGOPS L (1.5 us) against
// typical compute grains (>= 1 ms) gives windows that amortize barriers
// over thousands of events per shard.
//
// Use via EngineConfig::shards (Engine::run dispatches; --shards N on the
// studies/benches) or directly for resumable failure injection — the class
// mirrors the SimCore API (run_until / step / inject / snapshot / restore /
// take_result) so fault::direct can drive either interchangeably.
#pragma once

#include <cstdint>
#include <memory>

#include "chksim/sim/engine.hpp"

namespace chksim::sim {

class ParEngine {
 public:
  /// The program must be finalized, the config must outlive the engine, and
  /// config.net.L must be >= 1 when shards > 1 (throws std::logic_error
  /// otherwise — callers wanting the silent fallback go through
  /// Engine::run). The shard count is clamped to [1, ranks].
  ParEngine(const Program& program, const EngineConfig& config);
  ~ParEngine();
  ParEngine(ParEngine&&) noexcept;
  ParEngine& operator=(ParEngine&&) noexcept;

  /// Process every pending event with time <= t (whole supersteps; on
  /// return all shards are merged and t is fully covered).
  void run_until(TimeNs t);

  /// Process the single globally earliest pending event (a one-pop
  /// superstep on its owning shard, merged immediately). False when idle.
  bool step();

  bool idle() const;
  bool finished() const;
  TimeNs next_event_time() const;
  TimeNs makespan() const;
  std::int64_t ops_executed() const;

  /// Apply an external event while paused; semantics match SimCore exactly
  /// (the injection is routed to the owning shard).
  void inject(const Injection& injection);

  /// Deep-copied value snapshot of all shard state plus the merge
  /// accounting. Legal at any pause point (construction, after run_until /
  /// step — window boundaries included); lanes and trace buffers are always
  /// empty there, so restore round-trips byte-identically.
  class Snapshot {
   public:
    Snapshot();
    ~Snapshot();
    Snapshot(Snapshot&&) noexcept;
    Snapshot& operator=(Snapshot&&) noexcept;

   private:
    friend class ParEngine;
    struct State;
    std::unique_ptr<State> state_;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Merged finish accounting, byte-identical to the serial RunResult
  /// except the pdes_* telemetry block. Call exactly once.
  RunResult take_result();

  int shards() const;
  TimeNs window() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace chksim::sim
