// GOAL-style textual trace format.
//
// LogGOPSim consumes GOAL (Group Operation Assembly Language) schedules;
// chksim speaks a compatible dialect so that programs can be exported for
// inspection, diffed in tests, and imported from files produced by trace
// converters. Grammar (line-oriented, '#' comments):
//
//   num_ranks <N>
//   rank <r> {
//     l<id>: calc <ns>
//     l<id>: send <bytes>b to <rank> tag <tag>
//     l<id>: recv <bytes>b from <rank> tag <tag>
//     l<a> requires l<b>        // b happens-before a
//   }
//
// Labels are local to their rank block. Whitespace is flexible; "tag <t>"
// is optional on send/recv (default 0).
#pragma once

#include <iosfwd>
#include <string>

#include "chksim/sim/program.hpp"

namespace chksim::sim {

/// Serialize a program (finalized or not) to GOAL text.
std::string to_goal(const Program& program);

/// Parse GOAL text into a Program (not finalized). Throws
/// std::invalid_argument with a line number on malformed input.
Program from_goal(const std::string& text);

/// Stream variants.
void write_goal(std::ostream& os, const Program& program);
Program read_goal(std::istream& is);

}  // namespace chksim::sim
