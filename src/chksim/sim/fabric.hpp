// Fabric hook of the discrete-event engine: flow-level network contention.
//
// In the default (analytic) mode every message's transit time is the closed
// form LogGOPS L + G*s — the fabric is an infinite crossbar. A Fabric models
// the alternative: each transfer becomes a *flow* routed over shared links
// whose capacities are divided max-min fairly among the flows crossing them,
// so arrival times depend on what else is in the fabric. The interface lives
// in the sim layer (like TraceSink) so the engine can drive a fabric without
// depending on net/, where the concrete router + solver implementation lives
// (net::flow::FlowNet).
//
// Determinism contract (what lets the engine stay byte-identical across
// --jobs and --shards, see docs/MODEL.md "Flow-level network model"):
//
//  * A flow submitted at time t changes fabric state no earlier than
//    t + min_latency(), and min_latency() >= 1 ns. The engine uses this as
//    its lookahead: all fabric events at or before a horizon h are final
//    once every engine event strictly before h - min_latency() + 1 has been
//    processed — which is exactly the conservative-PDES window argument.
//  * Fabric state evolves only at the fabric's own intrinsic event times
//    (flow activations and completions), never at the caller's clock.
//    advance(t) with any call pattern — per-nanosecond, per-window, or one
//    call at the end — yields the same completions with the same times.
//  * Submissions may arrive out of order and even behind the fabric's
//    internal clock, as long as their first effect (submit time plus route
//    latency) is still in the future. The fabric orders flows internally by
//    content (activation time, kind, src, key2), so *call order never
//    matters* — the sharded engine applies a window's submissions in
//    whatever order the shards produced them.
//  * Completions come out of advance() in deterministic (finish, canonical
//    flow order) — the same content-keyed tie order the event heap uses.
//
// Message flows (kMsg) are delivered back to the engine as arrival events;
// per-(src,dst) channel FIFO is enforced by the fabric (a later small
// message never overtakes an earlier large one on the same channel — its
// links are released when its bytes are through, but its delivery is held
// until the channel head completes). I/O flows (kIo) are silent: they
// contend for links but produce no engine event; callers read their
// realized completion times from the concrete fabric after the run
// (core::run_study uses them to feed realized checkpoint-write durations
// back into the blackout schedule).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chksim/sim/op.hpp"
#include "chksim/support/units.hpp"

namespace chksim::sim {

enum class FlowKind : std::uint8_t {
  kMsg = 0,  ///< Application message: completion becomes an arrival event.
  kIo = 1,   ///< Checkpoint/restart transfer: contends, completes silently.
};

/// One transfer request. For kMsg, (src, dst, key2, seq) are the engine's
/// arrival identity: key2 is the content key the arrival event will carry
/// and seq the trace sequence of the kMsgInject to amend (0 = untraced).
/// For kIo, dst >= 0 targets a peer rank (partner-copy) and dst == -1 the
/// shared PFS through the submitting rank's gateway; cookie identifies the
/// request in the realized-completion log.
struct FlowRequest {
  FlowKind kind = FlowKind::kMsg;
  RankId src = 0;
  RankId dst = 0;
  Tag tag = 0;  ///< kMsg: match tag, carried through to the arrival event.
  Bytes bytes = 0;
  std::uint64_t key2 = 0;
  std::uint64_t seq = 0;
  std::int64_t cookie = 0;
};

/// A finished flow. `finish` is the delivery time (channel-FIFO clamp
/// included); `uncontended` is what `finish` would have been had the flow
/// been alone on its route, computed with the same integer arithmetic, so a
/// flow that never shared a link reports exactly zero contention
/// (finish - uncontended).
struct FlowCompletion {
  TimeNs finish = 0;
  TimeNs uncontended = 0;
  FlowRequest req;
};

/// Deterministic (shard-invariant) fabric totals, reported through
/// RunResult and the "net.flow.*" gauges.
struct FabricStats {
  std::int64_t msg_flows = 0;      ///< kMsg flows completed.
  std::int64_t io_flows = 0;       ///< kIo flows completed.
  std::int64_t active_peak = 0;    ///< Concurrent-flow high-water mark.
  std::int64_t recomputes = 0;     ///< Rate recomputations (solver batches).
  std::int64_t fill_rounds = 0;    ///< Water-filling freeze rounds, total.
  std::int64_t fifo_holds = 0;     ///< Deliveries held for channel FIFO.
  TimeNs contention_ns = 0;        ///< Sum of finish - uncontended.
  Bytes bytes_moved = 0;           ///< Payload bytes completed.
  Bytes nic_bytes = 0;             ///< Bytes x inject/eject links crossed.
  Bytes fabric_bytes = 0;          ///< Bytes x fabric links crossed.
  Bytes storage_bytes = 0;         ///< Bytes through the PFS ingress link.
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Submit a flow injected at `now`. Returns the uncontended delivery
  /// estimate (same value uncontended_arrival() reports) — the engine uses
  /// it as the provisional kMsgInject t1. `now + min_latency()` must be
  /// strictly ahead of every already-advanced-past instant.
  virtual TimeNs submit(TimeNs now, const FlowRequest& req) = 0;

  /// Uncontended delivery estimate for a hypothetical flow: injection at
  /// `now`, route latency, plus the bytes through the route's bottleneck
  /// capacity alone. Pure; usable concurrently from shards.
  virtual TimeNs uncontended_arrival(TimeNs now, RankId src, RankId dst,
                                     Bytes bytes) const = 0;

  /// Run the fabric's intrinsic events through time t and append finished
  /// kMsg flows to `out` (kIo completions are logged internally).
  virtual void advance(TimeNs t, std::vector<FlowCompletion>* out) = 0;

  /// Earliest pending intrinsic event (activation or completion), or -1.
  virtual TimeNs next_event() const = 0;

  /// Smallest possible submit-to-first-effect delay over all routes (>= 1).
  virtual TimeNs min_latency() const = 0;

  virtual FabricStats stats() const = 0;

  /// Deep-copy the fabric state (engine snapshots).
  virtual std::unique_ptr<Fabric> clone() const = 0;

  /// Reset this fabric to a state previously captured by clone(). The
  /// snapshot must originate from the same concrete fabric configuration.
  virtual void restore(const Fabric& snapshot) = 0;
};

}  // namespace chksim::sim
