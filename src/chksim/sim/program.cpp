#include "chksim/sim/program.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>
#include <tuple>

namespace chksim::sim {

Program::Program(int nranks) {
  assert(nranks > 0);
  rank_ops_.resize(static_cast<std::size_t>(nranks));
  rank_edges_.resize(static_cast<std::size_t>(nranks));
  rank_succ_.resize(static_cast<std::size_t>(nranks));
}

OpRef Program::push(RankId r, Op op) {
  assert(!finalized_ && "program already finalized");
  assert(r >= 0 && r < ranks());
  auto& ops = rank_ops_[static_cast<std::size_t>(r)];
  const auto index = static_cast<OpIndex>(ops.size());
  ops.push_back(op);
  return OpRef{r, index};
}

OpRef Program::calc(RankId r, TimeNs duration) {
  assert(duration >= 0);
  Op op;
  op.kind = OpKind::kCalc;
  op.value = duration;
  return push(r, op);
}

OpRef Program::send(RankId r, RankId dst, Bytes bytes, Tag tag) {
  assert(dst >= 0 && dst < ranks() && dst != r && bytes >= 0);
  Op op;
  op.kind = OpKind::kSend;
  op.value = bytes;
  op.peer = dst;
  op.tag = tag;
  return push(r, op);
}

OpRef Program::recv(RankId r, RankId src, Bytes bytes, Tag tag) {
  assert(src >= 0 && src < ranks() && src != r && bytes >= 0);
  Op op;
  op.kind = OpKind::kRecv;
  op.value = bytes;
  op.peer = src;
  op.tag = tag;
  return push(r, op);
}

void Program::depends(OpRef before, OpRef after) {
  assert(!finalized_);
  assert(before.valid() && after.valid());
  assert(before.rank == after.rank && "dependencies are intra-rank only");
  assert(before.index != after.index);
  rank_edges_[static_cast<std::size_t>(before.rank)].push_back(
      Edge{before.index, after.index});
}

void Program::depends_all(const std::vector<OpRef>& before, OpRef after) {
  for (const OpRef& b : before) {
    if (b.valid()) depends(b, after);
  }
}

Tag Program::allocate_tags(int count) {
  assert(count > 0);
  const Tag first = next_tag_;
  next_tag_ += count;
  return first;
}

ProgramStats Program::finalize() {
  if (finalized_) throw std::logic_error("Program::finalize called twice");
  finalized_ = true;

  ProgramStats st;
  for (RankId r = 0; r < ranks(); ++r) {
    auto& ops = rank_ops_[static_cast<std::size_t>(r)];
    auto& edges = rank_edges_[static_cast<std::size_t>(r)];
    auto& succ = rank_succ_[static_cast<std::size_t>(r)];

    // Sort edges by source, dedupe, and build CSR.
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      return std::tie(a.from, a.to) < std::tie(b.from, b.to);
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.from == b.from && a.to == b.to;
                            }),
                edges.end());
    succ.resize(edges.size());
    std::size_t e = 0;
    for (OpIndex i = 0; i < ops.size(); ++i) {
      ops[i].succ_begin = static_cast<std::uint32_t>(e);
      while (e < edges.size() && edges[e].from == i) {
        assert(edges[e].to < ops.size());
        succ[e] = edges[e].to;
        ops[edges[e].to].indegree++;
        ++e;
      }
      ops[i].succ_count = static_cast<std::uint32_t>(e - ops[i].succ_begin);
    }
    if (e != edges.size()) throw std::logic_error("edge with out-of-range source op");

    // Kahn topological pass: verifies acyclicity and computes graph depth.
    std::vector<std::uint32_t> indeg(ops.size());
    std::vector<std::int32_t> depth(ops.size(), 1);
    std::vector<OpIndex> queue;
    for (OpIndex i = 0; i < ops.size(); ++i) {
      indeg[i] = ops[i].indegree;
      if (indeg[i] == 0) queue.push_back(i);
    }
    std::size_t head = 0;
    std::int64_t visited = 0;
    while (head < queue.size()) {
      const OpIndex u = queue[head++];
      ++visited;
      st.max_depth = std::max<std::int64_t>(st.max_depth, depth[u]);
      const Op& op = ops[u];
      for (std::uint32_t k = 0; k < op.succ_count; ++k) {
        const OpIndex v = succ[op.succ_begin + k];
        depth[v] = std::max(depth[v], depth[u] + 1);
        if (--indeg[v] == 0) queue.push_back(v);
      }
    }
    if (visited != static_cast<std::int64_t>(ops.size()))
      throw std::logic_error("Program dependency graph has a cycle on rank " +
                             std::to_string(r));

    st.ops += static_cast<std::int64_t>(ops.size());
    st.edges += static_cast<std::int64_t>(edges.size());
    for (const Op& op : ops) {
      switch (op.kind) {
        case OpKind::kCalc:
          ++st.calcs;
          st.calc_total += op.value;
          break;
        case OpKind::kSend:
          ++st.sends;
          st.bytes_sent += op.value;
          break;
        case OpKind::kRecv:
          ++st.recvs;
          break;
      }
    }
    edges.clear();
    edges.shrink_to_fit();
  }
  stats_ = st;
  return st;
}

std::string Program::check_matching() const {
  // (src, dst, tag) -> sends minus recvs.
  std::map<std::tuple<RankId, RankId, Tag>, std::int64_t> balance;
  for (RankId r = 0; r < ranks(); ++r) {
    for (const Op& op : rank_ops_[static_cast<std::size_t>(r)]) {
      if (op.kind == OpKind::kSend) balance[{r, op.peer, op.tag}] += 1;
      if (op.kind == OpKind::kRecv) balance[{op.peer, r, op.tag}] -= 1;
    }
  }
  std::string report;
  int shown = 0;
  for (const auto& [key, diff] : balance) {
    if (diff == 0) continue;
    if (shown++ >= 8) {
      report += "...\n";
      break;
    }
    const auto& [src, dst, tag] = key;
    report += "channel " + std::to_string(src) + "->" + std::to_string(dst) +
              " tag " + std::to_string(tag) +
              (diff > 0 ? ": " + std::to_string(diff) + " unmatched send(s)\n"
                        : ": " + std::to_string(-diff) + " unmatched recv(s)\n");
  }
  return report;
}

}  // namespace chksim::sim
