#include "chksim/sim/program.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <map>
#include <stdexcept>
#include <tuple>
#include <type_traits>

namespace chksim::sim {

namespace {

template <typename T, typename Alloc>
std::size_t capacity_bytes(const std::vector<T, Alloc>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
void release(std::vector<T>& v) {
  v.clear();
  v.shrink_to_fit();
}

constexpr std::uint8_t kMaxChain = std::numeric_limits<std::uint8_t>::max();

}  // namespace

Program::Program(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("Program: rank count must be > 0");
  build_.resize(static_cast<std::size_t>(nranks));
}

OpRef Program::push(RankId r, const BuildOp& op) {
  if (finalized_) throw std::logic_error("Program: cannot add ops after finalize");
  assert(r >= 0 && r < ranks());
  auto& ops = build_[static_cast<std::size_t>(r)].ops;
  if (ops.size() >= static_cast<std::size_t>(kInvalidOp))
    throw std::overflow_error("Program: rank " + std::to_string(r) +
                              " exceeds the 32-bit per-rank op index space");
  const auto index = static_cast<OpIndex>(ops.size());
  ops.push_back(op);
  return OpRef{r, index};
}

OpRef Program::calc(RankId r, TimeNs duration) {
  assert(duration >= 0);
  BuildOp op;
  op.kind = OpKind::kCalc;
  op.value = duration;
  return push(r, op);
}

OpRef Program::send(RankId r, RankId dst, Bytes bytes, Tag tag) {
  if (dst < 0 || dst >= ranks() || dst == r)
    throw std::invalid_argument("Program::send: bad destination rank " +
                                std::to_string(dst) + " from rank " + std::to_string(r));
  assert(bytes >= 0);
  BuildOp op;
  op.kind = OpKind::kSend;
  op.value = bytes;
  op.peer = dst;
  op.tag = tag;
  return push(r, op);
}

OpRef Program::recv(RankId r, RankId src, Bytes bytes, Tag tag) {
  if (src < 0 || src >= ranks() || src == r)
    throw std::invalid_argument("Program::recv: bad source rank " +
                                std::to_string(src) + " on rank " + std::to_string(r));
  assert(bytes >= 0);
  BuildOp op;
  op.kind = OpKind::kRecv;
  op.value = bytes;
  op.peer = src;
  op.tag = tag;
  return push(r, op);
}

void Program::depends(OpRef before, OpRef after) {
  if (finalized_) throw std::logic_error("Program: cannot add edges after finalize");
  if (!before.valid() || !after.valid())
    throw std::invalid_argument("Program::depends: invalid op handle");
  if (before.rank != after.rank)
    throw std::invalid_argument("Program::depends: dependencies are intra-rank only");
  if (before.index == after.index)
    throw std::invalid_argument("Program::depends: op cannot depend on itself");
  auto& b = build_[static_cast<std::size_t>(before.rank)];
  const OpIndex i = before.index;
  const OpIndex j = after.index;
  assert(i < b.ops.size() && j < b.ops.size());
  if (j > i) {
    std::uint8_t& chain = b.ops[i].chain;
    const OpIndex dist = j - i;
    if (dist <= chain) return;  // already implied by the chain run
    // Extend the chain run when `after` is the next op — unless the edge
    // crosses into an open repeat block (the chain field is copied with the
    // block, so an edge from pre-block ops must stay explicit to be
    // re-targetable per copy).
    if (dist == static_cast<OpIndex>(chain) + 1 && chain < kMaxChain &&
        !(in_repeat_ && i < b.mark_ops && j >= b.mark_ops)) {
      ++chain;
      return;
    }
  }
  b.edges.push_back(XEdge{i, j});
}

void Program::depends_all(const std::vector<OpRef>& before, OpRef after) {
  for (const OpRef& b : before) {
    if (b.valid()) depends(b, after);
  }
}

Tag Program::allocate_tags(int count) {
  assert(count > 0);
  const Tag first = next_tag_;
  if (count > std::numeric_limits<Tag>::max() - next_tag_)
    throw std::overflow_error(
        "Program::allocate_tags: 32-bit tag space exhausted (allocated up to " +
        std::to_string(next_tag_) + ")");
  next_tag_ += count;
  return first;
}

void Program::begin_repeat() {
  if (finalized_) throw std::logic_error("Program: begin_repeat after finalize");
  if (in_repeat_) throw std::logic_error("Program: begin_repeat inside an open block");
  in_repeat_ = true;
  mark_tag_ = next_tag_;
  for (auto& b : build_) {
    b.mark_ops = static_cast<OpIndex>(b.ops.size());
    b.mark_edges = b.edges.size();
  }
}

void Program::repeat(int copies, std::vector<OpRef>* carry) {
  if (!in_repeat_) throw std::logic_error("Program: repeat without begin_repeat");
  in_repeat_ = false;
  if (copies < 0) throw std::invalid_argument("Program::repeat: negative copy count");
  const Tag tag_stride = next_tag_ - mark_tag_;
  if (copies == 0) return;
  if (tag_stride > 0 &&
      static_cast<std::int64_t>(tag_stride) * copies >
          static_cast<std::int64_t>(std::numeric_limits<Tag>::max() - next_tag_))
    throw std::overflow_error(
        "Program::repeat: 32-bit tag space exhausted by block copies");

  for (RankId r = 0; r < ranks(); ++r) {
    auto& b = build_[static_cast<std::size_t>(r)];
    const OpIndex m = b.mark_ops;
    const auto n = static_cast<OpIndex>(b.ops.size());
    const OpIndex len = n - m;
    if (len == 0) continue;
    if (static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(len) * copies >=
        static_cast<std::uint64_t>(kInvalidOp))
      throw std::overflow_error("Program::repeat: rank " + std::to_string(r) +
                                " exceeds the 32-bit per-rank op index space");
    // Validate in-edges: a dependency into the block may reach back at most
    // one block length (the previous iteration), so that the uniform
    // index shift re-targets it to the preceding copy.
    const std::size_t edge_end = b.edges.size();
    std::size_t copyable = 0;
    for (std::size_t e = b.mark_edges; e < edge_end; ++e) {
      const XEdge edge = b.edges[e];
      if (edge.to < m) continue;
      ++copyable;
      if (edge.from < m && m - edge.from > len)
        throw std::invalid_argument(
            "Program::repeat: rank " + std::to_string(r) + " op " +
            std::to_string(edge.to) + " depends on op " + std::to_string(edge.from) +
            ", more than one block length before the block");
    }
    b.edges.reserve(edge_end + copyable * copies);
    // Bulk-instantiate the copies: grow once, then memcpy the POD block per
    // copy and rebase its tags in place — no per-op push_back branching.
    static_assert(std::is_trivially_copyable_v<BuildOp>);
    b.ops.insert(b.ops.end(), static_cast<std::size_t>(len) * copies, BuildOp{});
    for (int k = 1; k <= copies; ++k) {
      const OpIndex shift = static_cast<OpIndex>(k) * len;
      BuildOp* out = b.ops.data() + m + static_cast<std::size_t>(shift);
      std::memcpy(out, b.ops.data() + m, static_cast<std::size_t>(len) * sizeof(BuildOp));
      if (tag_stride > 0) {
        const Tag delta = tag_stride * k;
        for (OpIndex i = 0; i < len; ++i)
          if (out[i].kind != OpKind::kCalc && out[i].tag >= mark_tag_)
            out[i].tag += delta;
      }
      for (std::size_t e = b.mark_edges; e < edge_end; ++e) {
        const XEdge edge = b.edges[e];
        if (edge.to >= m) b.edges.push_back(XEdge{edge.from + shift, edge.to + shift});
      }
    }
  }
  if (tag_stride > 0) next_tag_ += tag_stride * copies;
  if (carry != nullptr) {
    for (OpRef& ref : *carry) {
      if (!ref.valid()) continue;
      const auto& b = build_[static_cast<std::size_t>(ref.rank)];
      // ops.size() is now mark + (copies + 1) * block_length.
      const OpIndex block_len =
          (static_cast<OpIndex>(b.ops.size()) - b.mark_ops) /
          (static_cast<OpIndex>(copies) + 1);
      if (ref.index >= b.mark_ops)
        ref.index += static_cast<OpIndex>(copies) * block_len;
    }
  }
}

ProgramStats Program::finalize() {
  if (finalized_) throw std::logic_error("Program::finalize called twice");
  if (in_repeat_)
    throw std::logic_error("Program::finalize inside an open repeat block");
  finalized_ = true;

  // Pass 1: canonicalise each rank's explicit edges (sort, dedupe, drop
  // edges subsumed by a chain run) and size the global arrays. Track which
  // ranks have a backward explicit edge (to < from): those need a full
  // Kahn pass below; forward-only ranks are acyclic by construction.
  std::uint64_t total_ops = 0;
  std::uint64_t total_edges = 0;
  std::vector<char> has_backward(static_cast<std::size_t>(nranks_), 0);
  for (RankId r = 0; r < ranks(); ++r) {
    auto& b = build_[static_cast<std::size_t>(r)];
    const auto n = static_cast<OpIndex>(b.ops.size());
    auto& edges = b.edges;
    const auto less = [](const XEdge& a, const XEdge& e) {
      return (static_cast<std::uint64_t>(a.from) << 32 | a.to) <
             (static_cast<std::uint64_t>(e.from) << 32 | e.to);
    };
    // Generators emit edges in near-program order, so the sort is usually a
    // no-op — check first, it is an order of magnitude cheaper.
    if (!std::is_sorted(edges.begin(), edges.end(), less))
      std::sort(edges.begin(), edges.end(), less);
    // One compaction pass: validate, dedupe, flag backward edges, and drop
    // edges subsumed by a chain run.
    std::size_t w = 0;
    XEdge prev{kInvalidOp, kInvalidOp};
    for (const XEdge e : edges) {
      if (e.from >= n || e.to >= n)
        throw std::logic_error("edge with out-of-range op");
      if (e.from == prev.from && e.to == prev.to) continue;
      prev = e;
      if (e.to < e.from)
        has_backward[static_cast<std::size_t>(r)] = 1;
      else if (e.to - e.from <= b.ops[e.from].chain)
        continue;  // covered by the implicit chain run
      edges[w++] = e;
    }
    edges.resize(w);
    total_ops += n;
    total_edges += edges.size();
  }
  if (total_edges >= std::numeric_limits<std::uint32_t>::max())
    throw std::overflow_error(
        "Program::finalize: explicit edge count overflows the 32-bit CSR "
        "offset space (" +
        std::to_string(total_edges) + " edges)");

  rank_begin_.resize(static_cast<std::size_t>(nranks_) + 1);
  value_.resize(total_ops);
  peer_.resize(total_ops);
  tag_.resize(total_ops);
  kind_.resize(total_ops);
  chain_.resize(total_ops);
  xoff_.resize(total_ops + 1);
  xsucc_.resize(total_edges);

  // Pass 2: pack each rank's columns and CSR, verify acyclicity and compute
  // depth (Kahn), accumulate stats, then free the build buffers rank by
  // rank so peak memory stays near one representation, not two.
  ProgramStats st;
  std::vector<std::uint32_t> indeg;
  std::vector<std::int32_t> depth;
  std::vector<OpIndex> queue;
  std::uint64_t row = 0;
  std::uint64_t edge_row = 0;
  for (RankId r = 0; r < ranks(); ++r) {
    auto& b = build_[static_cast<std::size_t>(r)];
    const auto n = static_cast<OpIndex>(b.ops.size());
    rank_begin_[static_cast<std::size_t>(r)] = row;

    for (OpIndex i = 0; i < n; ++i) {
      const BuildOp& op = b.ops[i];
      value_[row + i] = op.value;
      peer_[row + i] = op.peer;
      tag_[row + i] = op.tag;
      kind_[row + i] = op.kind;
      chain_[row + i] = op.chain;
      switch (op.kind) {
        case OpKind::kCalc:
          ++st.calcs;
          st.calc_total += op.value;
          break;
        case OpKind::kSend:
          ++st.sends;
          st.bytes_sent += op.value;
          break;
        case OpKind::kRecv:
          ++st.recvs;
          break;
      }
      st.edges += op.chain;
    }
    // Explicit-successor CSR (edges are sorted by (from, to)).
    {
      std::size_t e = 0;
      for (OpIndex i = 0; i < n; ++i) {
        xoff_[row + i] = static_cast<std::uint32_t>(edge_row + e);
        while (e < b.edges.size() && b.edges[e].from == i)
          xsucc_[edge_row + e] = b.edges[e].to, ++e;
      }
      assert(e == b.edges.size());
    }

    if (!has_backward[static_cast<std::size_t>(r)]) {
      // Every edge (chain runs and explicit) points forward, so the rank is
      // acyclic by construction — every generator-built program lands here.
      // Depth is one ascending relaxation pass: no indegrees, no queue.
      depth.assign(n, 1);
      std::size_t e = 0;
      for (OpIndex i = 0; i < n; ++i) {
        const std::int32_t du = depth[i];
        st.max_depth = std::max<std::int64_t>(st.max_depth, du);
        for (OpIndex k = 1; k <= chain_[row + i]; ++k)
          depth[i + k] = std::max(depth[i + k], du + 1);
        while (e < b.edges.size() && b.edges[e].from == i) {
          const OpIndex v = b.edges[e++].to;
          depth[v] = std::max(depth[v], du + 1);
        }
      }
    } else {
      // Kahn topological pass over chain + explicit successors: programs
      // read from GOAL files can carry backward edges, so acyclicity needs
      // a real check there.
      indeg.assign(n, 0);
      depth.assign(n, 1);
      queue.clear();
      for (OpIndex i = 0; i < n; ++i)
        for (OpIndex k = 1; k <= chain_[row + i]; ++k) ++indeg[i + k];
      for (const XEdge& e : b.edges) ++indeg[e.to];
      for (OpIndex i = 0; i < n; ++i)
        if (indeg[i] == 0) queue.push_back(i);
      std::size_t head = 0;
      std::uint64_t visited = 0;
      while (head < queue.size()) {
        const OpIndex u = queue[head++];
        ++visited;
        st.max_depth = std::max<std::int64_t>(st.max_depth, depth[u]);
        const std::int32_t du = depth[u];
        const auto visit = [&](OpIndex v) {
          depth[v] = std::max(depth[v], du + 1);
          if (--indeg[v] == 0) queue.push_back(v);
        };
        std::uint32_t e = xoff_[row + u];
        const std::uint32_t e_end = static_cast<std::uint32_t>(
            u + 1 < n ? xoff_[row + u + 1] : edge_row + b.edges.size());
        while (e < e_end && xsucc_[e] < u) visit(xsucc_[e++]);
        for (OpIndex k = 1; k <= chain_[row + u]; ++k) visit(u + k);
        while (e < e_end) visit(xsucc_[e++]);
      }
      if (visited != n)
        throw std::logic_error(
            "Program dependency graph has a cycle on rank " +
            std::to_string(r));
    }

    st.ops += n;
    st.edges += static_cast<std::int64_t>(b.edges.size());
    row += n;
    edge_row += b.edges.size();
    release(b.ops);
    release(b.edges);
  }
  rank_begin_[static_cast<std::size_t>(nranks_)] = row;
  xoff_[row] = static_cast<std::uint32_t>(edge_row);
  release(build_);

  stats_ = st;
  return st;
}

Program Program::compose(const std::vector<const Program*>& parts) {
  if (parts.empty())
    throw std::invalid_argument("Program::compose: no parts");
  std::int64_t total_ranks = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t total_edges = 0;
  for (const Program* p : parts) {
    if (p == nullptr || !p->finalized())
      throw std::invalid_argument(
          "Program::compose: every part must be a finalized program");
    total_ranks += p->nranks_;
    total_ops += p->rank_begin_[static_cast<std::size_t>(p->nranks_)];
    total_edges += p->xoff_[p->rank_begin_[static_cast<std::size_t>(p->nranks_)]];
  }
  if (total_ranks > std::numeric_limits<RankId>::max())
    throw std::overflow_error("Program::compose: combined rank count overflows");
  if (total_edges >= std::numeric_limits<std::uint32_t>::max())
    throw std::overflow_error(
        "Program::compose: combined explicit edge count overflows the "
        "32-bit CSR offset space");

  Program out(static_cast<int>(total_ranks));
  release(out.build_);
  out.finalized_ = true;
  out.rank_begin_.resize(static_cast<std::size_t>(total_ranks) + 1);
  out.value_.resize(total_ops);
  out.peer_.resize(total_ops);
  out.tag_.resize(total_ops);
  out.kind_.resize(total_ops);
  out.chain_.resize(total_ops);
  out.xoff_.resize(total_ops + 1);
  out.xsucc_.resize(total_edges);

  RankId rank_off = 0;
  std::uint64_t row = 0;
  std::uint64_t edge_row = 0;
  ProgramStats st;
  for (const Program* p : parts) {
    const std::uint64_t ops = p->rank_begin_[static_cast<std::size_t>(p->nranks_)];
    const std::uint64_t edges = p->xoff_[ops];
    for (RankId r = 0; r < p->nranks_; ++r)
      out.rank_begin_[static_cast<std::size_t>(rank_off + r)] =
          row + p->rank_begin_[static_cast<std::size_t>(r)];
    std::memcpy(out.value_.data() + row, p->value_.data(),
                ops * sizeof(std::int64_t));
    std::memcpy(out.tag_.data() + row, p->tag_.data(), ops * sizeof(Tag));
    std::memcpy(out.kind_.data() + row, p->kind_.data(), ops * sizeof(OpKind));
    std::memcpy(out.chain_.data() + row, p->chain_.data(),
                ops * sizeof(std::uint8_t));
    for (std::uint64_t i = 0; i < ops; ++i) {
      const RankId peer = p->peer_[i];
      out.peer_[row + i] = peer < 0 ? peer : peer + rank_off;
    }
    for (std::uint64_t i = 0; i < ops; ++i)
      out.xoff_[row + i] =
          p->xoff_[i] + static_cast<std::uint32_t>(edge_row);
    std::memcpy(out.xsucc_.data() + edge_row, p->xsucc_.data(),
                edges * sizeof(OpIndex));
    st.ops += p->stats_.ops;
    st.calcs += p->stats_.calcs;
    st.sends += p->stats_.sends;
    st.recvs += p->stats_.recvs;
    st.edges += p->stats_.edges;
    st.bytes_sent += p->stats_.bytes_sent;
    st.calc_total += p->stats_.calc_total;
    st.max_depth = std::max(st.max_depth, p->stats_.max_depth);
    rank_off += p->nranks_;
    row += ops;
    edge_row += edges;
  }
  out.rank_begin_[static_cast<std::size_t>(total_ranks)] = row;
  out.xoff_[row] = static_cast<std::uint32_t>(edge_row);
  out.stats_ = st;
  out.next_tag_ = 1;
  return out;
}

OpIndex Program::rank_size(RankId r) const {
  assert(r >= 0 && r < ranks());
  if (finalized_) {
    return static_cast<OpIndex>(rank_begin_[static_cast<std::size_t>(r) + 1] -
                                rank_begin_[static_cast<std::size_t>(r)]);
  }
  return static_cast<OpIndex>(build_[static_cast<std::size_t>(r)].ops.size());
}

OpView Program::op(RankId r, OpIndex i) const {
  assert(r >= 0 && r < ranks() && i < rank_size(r));
  if (finalized_) {
    const std::uint64_t row = rank_begin_[static_cast<std::size_t>(r)] + i;
    return {value_[row], peer_[row], tag_[row], kind_[row]};
  }
  const BuildOp& op = build_[static_cast<std::size_t>(r)].ops[i];
  return {op.value, op.peer, op.tag, op.kind};
}

RankOpsView Program::rank_view(RankId r) const {
  assert(finalized_ && r >= 0 && r < ranks());
  const std::uint64_t row = rank_begin_[static_cast<std::size_t>(r)];
  RankOpsView v;
  v.value = value_.data() + row;
  v.peer = peer_.data() + row;
  v.tag = tag_.data() + row;
  v.kind = kind_.data() + row;
  v.chain = chain_.data() + row;
  v.xoff = xoff_.data() + row;
  v.xsucc = xsucc_.data();
  v.count = static_cast<OpIndex>(rank_begin_[static_cast<std::size_t>(r) + 1] - row);
  return v;
}

std::size_t Program::storage_bytes() const {
  std::size_t bytes = capacity_bytes(rank_begin_) + capacity_bytes(value_) +
                      capacity_bytes(peer_) + capacity_bytes(tag_) +
                      capacity_bytes(kind_) + capacity_bytes(chain_) +
                      capacity_bytes(xoff_) + capacity_bytes(xsucc_) +
                      capacity_bytes(build_);
  for (const BuildRank& b : build_)
    bytes += capacity_bytes(b.ops) + capacity_bytes(b.edges);
  return bytes;
}

std::string Program::check_matching() const {
  // (src, dst, tag) -> sends minus recvs.
  std::map<std::tuple<RankId, RankId, Tag>, std::int64_t> balance;
  for (RankId r = 0; r < ranks(); ++r) {
    const OpIndex n = rank_size(r);
    for (OpIndex i = 0; i < n; ++i) {
      const OpView v = op(r, i);
      if (v.kind == OpKind::kSend) balance[{r, v.peer, v.tag}] += 1;
      if (v.kind == OpKind::kRecv) balance[{v.peer, r, v.tag}] -= 1;
    }
  }
  std::string report;
  int shown = 0;
  for (const auto& [key, diff] : balance) {
    if (diff == 0) continue;
    if (shown++ >= 8) {
      report += "...\n";
      break;
    }
    const auto& [src, dst, tag] = key;
    report += "channel " + std::to_string(src) + "->" + std::to_string(dst) +
              " tag " + std::to_string(tag) +
              (diff > 0 ? ": " + std::to_string(diff) + " unmatched send(s)\n"
                        : ": " + std::to_string(-diff) + " unmatched recv(s)\n");
  }
  return report;
}

}  // namespace chksim::sim
