// CPU-availability modelling: checkpoint activity and OS noise are both
// represented as per-rank "blackout" intervals during which the rank's CPU
// makes no progress on application work. This is the resilience-as-noise
// injection technique of the LogGOPSim methodology.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "chksim/sim/op.hpp"
#include "chksim/support/units.hpp"

namespace chksim::sim {

/// Half-open time interval [begin, end).
struct Interval {
  TimeNs begin = 0;
  TimeNs end = 0;

  TimeNs duration() const { return end - begin; }
  bool contains(TimeNs t) const { return t >= begin && t < end; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Lazily-queried per-rank blackout schedule. Implementations must return
/// non-overlapping intervals in increasing order: for fixed rank,
/// next_blackout(rank, t) is the first interval whose end is > t.
class BlackoutSchedule {
 public:
  virtual ~BlackoutSchedule() = default;
  virtual std::optional<Interval> next_blackout(RankId rank, TimeNs t) const = 0;
};

/// The always-available schedule.
class NoBlackouts final : public BlackoutSchedule {
 public:
  std::optional<Interval> next_blackout(RankId, TimeNs) const override {
    return std::nullopt;
  }
};

/// Explicit per-rank interval lists. Intervals are sorted and overlapping or
/// abutting entries are merged at construction.
class ListBlackouts final : public BlackoutSchedule {
 public:
  explicit ListBlackouts(std::vector<std::vector<Interval>> per_rank);

  std::optional<Interval> next_blackout(RankId rank, TimeNs t) const override;

  /// Total blackout time scheduled for `rank`.
  TimeNs total(RankId rank) const;
  int ranks() const { return static_cast<int>(per_rank_.size()); }

 private:
  std::vector<std::vector<Interval>> per_rank_;
};

/// Strictly periodic blackouts: rank r blacks out during
/// [phase[r] + k*period, phase[r] + k*period + duration) for every k >= 0
/// with interval start inside [active_from, active_until).
class PeriodicBlackouts final : public BlackoutSchedule {
 public:
  /// Same phase on every rank (a coordinated schedule).
  PeriodicBlackouts(TimeNs period, TimeNs duration, TimeNs phase = 0);

  /// Per-rank phases (an uncoordinated schedule). phases[r] must be >= 0.
  PeriodicBlackouts(TimeNs period, TimeNs duration, std::vector<TimeNs> phases);

  /// Restrict the schedule to interval starts within [from, until).
  void set_active_window(TimeNs from, TimeNs until);

  std::optional<Interval> next_blackout(RankId rank, TimeNs t) const override;

  TimeNs period() const { return period_; }
  TimeNs duration() const { return duration_; }

 private:
  TimeNs phase_of(RankId rank) const;

  TimeNs period_;
  TimeNs duration_;
  TimeNs common_phase_ = 0;
  std::vector<TimeNs> phases_;  // empty => common_phase_ applies to all ranks
  TimeNs active_from_ = 0;
  TimeNs active_until_ = std::numeric_limits<TimeNs>::max();
};

/// Cyclic pattern of blackout durations: occurrence k (k = 0, 1, ...) of the
/// period starting at phase[r] + k*period lasts durations[k % durations.size()].
/// Models incremental checkpointing: a long full checkpoint followed by
/// several short delta checkpoints, repeating.
class PatternedBlackouts final : public BlackoutSchedule {
 public:
  /// Same phase on every rank.
  PatternedBlackouts(TimeNs period, std::vector<TimeNs> durations, TimeNs phase = 0);

  /// Per-rank phases.
  PatternedBlackouts(TimeNs period, std::vector<TimeNs> durations,
                     std::vector<TimeNs> phases);

  std::optional<Interval> next_blackout(RankId rank, TimeNs t) const override;

  TimeNs period() const { return period_; }
  /// Mean blackout duration over one pattern cycle.
  TimeNs mean_duration() const;

 private:
  TimeNs phase_of(RankId rank) const;

  TimeNs period_;
  std::vector<TimeNs> durations_;
  TimeNs common_phase_ = 0;
  std::vector<TimeNs> phases_;
};

/// Overlay of several schedules; next_blackout returns the earliest
/// constituent interval, truncated so that results never overlap out of
/// order. Used to combine a checkpoint schedule with an OS-noise schedule.
class UnionBlackouts final : public BlackoutSchedule {
 public:
  explicit UnionBlackouts(std::vector<const BlackoutSchedule*> parts);
  std::optional<Interval> next_blackout(RankId rank, TimeNs t) const override;

 private:
  std::vector<const BlackoutSchedule*> parts_;
};

/// Whether in-progress work is paused by a blackout (preemptive, the default
/// model: a system-level checkpointer freezes the process) or whether work
/// must fit entirely between blackouts (non-preemptive).
enum class Preemption { kPreemptive, kNonPreemptive };

/// Availability calculator: answers "when can work start" and "when does
/// work finish" against a blackout schedule.
class Availability {
 public:
  Availability(const BlackoutSchedule* schedule, Preemption mode)
      : schedule_(schedule), mode_(mode) {}

  /// First instant >= t at which `rank` is available.
  TimeNs next_available(RankId rank, TimeNs t) const;

  /// Completion time of `work` ns of CPU starting no earlier than t.
  /// Preemptive mode pauses across blackouts; non-preemptive mode waits for
  /// a gap of at least `work`. work == 0 completes at next_available(t).
  TimeNs finish(RankId rank, TimeNs t, TimeNs work) const;

  Preemption mode() const { return mode_; }

 private:
  const BlackoutSchedule* schedule_;
  Preemption mode_;
};

}  // namespace chksim::sim
