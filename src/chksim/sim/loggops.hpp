// LogGOPS network-model parameters and point-to-point timing rules.
//
// The LogGOPS model (Hoefler et al.) extends LogP/LogGP:
//   L - wire latency,
//   o - CPU overhead per message (send and receive side),
//   g - gap between consecutive messages on one NIC (1/message-rate),
//   G - gap per byte (1/bandwidth),
//   O - CPU overhead per byte (we keep it, default 0),
//   S - eager/rendezvous threshold: messages larger than S pay an RTS/CTS
//       round trip before the payload moves.
#pragma once

#include "chksim/support/units.hpp"

namespace chksim::sim {

struct LogGOPSParams {
  TimeNs L = 1500;       ///< Latency (ns).
  TimeNs o = 1500;       ///< Per-message CPU overhead (ns).
  TimeNs g = 2000;       ///< Inter-message gap (ns).
  double G = 0.25;       ///< Per-byte gap (ns/byte); 0.25 ns/B = 4 GB/s.
  double O = 0.0;        ///< Per-byte CPU overhead (ns/byte).
  Bytes S = 65536;       ///< Eager/rendezvous threshold (bytes).

  /// CPU time charged to the sender for an s-byte message.
  TimeNs send_cpu(Bytes s) const {
    return o + static_cast<TimeNs>(O * static_cast<double>(s));
  }

  /// CPU time charged to the receiver when consuming an s-byte message.
  TimeNs recv_cpu(Bytes s) const { return send_cpu(s); }

  /// NIC occupancy (gap) for an s-byte message.
  TimeNs nic_gap(Bytes s) const {
    const TimeNs byte_time = static_cast<TimeNs>(G * static_cast<double>(s));
    return g > byte_time ? g : byte_time;
  }

  /// Wire transit time for an s-byte message (injection to arrival),
  /// excluding CPU overheads: L + G*s.
  TimeNs wire_time(Bytes s) const {
    return L + static_cast<TimeNs>(G * static_cast<double>(s));
  }

  /// True if an s-byte message uses the rendezvous protocol.
  bool rendezvous(Bytes s) const { return s > S; }

  /// Zero-byte control-message one-way time (RTS/CTS legs).
  TimeNs control_time() const { return o + L; }
};

}  // namespace chksim::sim
