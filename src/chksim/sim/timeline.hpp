// Timeline extraction: per-rank activity segments (busy / blackout / idle)
// reconstructed from a run with recorded op finish times. Powers
// Gantt-style inspection of where checkpoint delays go, and CSV export for
// external plotting.
#pragma once

#include <string>
#include <vector>

#include "chksim/sim/engine.hpp"

namespace chksim::sim {

enum class SegmentKind { kBusy, kBlackout, kIdle };

std::string to_string(SegmentKind kind);

struct Segment {
  TimeNs begin = 0;
  TimeNs end = 0;
  SegmentKind kind = SegmentKind::kIdle;

  TimeNs duration() const { return end - begin; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Per-rank activity segments over [0, horizon). Busy time is approximated
/// from op finish times and op costs under the run's network model (exact
/// for calc; send/recv busy spans are their CPU overheads placed at
/// completion). Blackouts come from the schedule; the rest is idle.
/// Requires the run to have been made with record_op_finish = true.
class Timeline {
 public:
  /// Build from a finalized program, its run result, the engine config the
  /// run used, and the horizon (typically run.makespan).
  Timeline(const Program& program, const RunResult& run, const EngineConfig& config,
           TimeNs horizon);

  int ranks() const { return static_cast<int>(segments_.size()); }
  const std::vector<Segment>& of(RankId rank) const {
    return segments_.at(static_cast<std::size_t>(rank));
  }

  /// Aggregate time in each state for one rank.
  TimeNs total(RankId rank, SegmentKind kind) const;

  /// Machine-wide utilisation: busy time / (ranks * horizon).
  double utilization() const;

  /// CSV: rank,begin_ns,end_ns,kind.
  std::string to_csv() const;

 private:
  std::vector<std::vector<Segment>> segments_;
  TimeNs horizon_;
};

}  // namespace chksim::sim
