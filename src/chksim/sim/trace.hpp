// Trace hook of the discrete-event engine.
//
// The engine can publish a flat event stream — op intervals, message
// injections/deliveries, rendezvous control legs, blackout intervals, and
// recv-wait intervals — into a TraceSink supplied via EngineConfig::trace.
// The sink interface lives in the sim layer so the engine can emit without
// depending on the obs/ subsystem that implements buffering, export, and
// analysis (see src/chksim/obs/).
//
// Events are compact PODs. Interval events carry [t0, t1); op events
// additionally carry the blackout stall folded into the interval, which is
// what the wait-state attribution pass consumes. `seq` is a global emission
// counter assigned by the sink; `ref` links an event to the `seq` of the
// event that caused it (message deliveries and recv-waits reference their
// kMsgInject).
//
// `cause` records the event's *binding start constraint* — the seq of the
// event whose completion determined t0 — which is what makes the trace a
// walkable causality graph (obs::extract_critical_path): op events point at
// the same-rank predecessor that held the CPU/NIC or, for message-bound
// receives, at the matched message's kMsgInject; kMsgInject points at its
// kSendOp. 0 means "ready at t0 with no recorded predecessor" (the rank's
// first op, or an externally injected arrival). Blackout preemption needs no
// link: op events carry the absorbed stall, and the kBlackout intervals of
// the rank locate it in time.
#pragma once

#include <cstdint>

#include "chksim/sim/op.hpp"
#include "chksim/support/units.hpp"

namespace chksim::sim {

enum class TraceEventKind : std::uint8_t {
  kCalc,        ///< Computation interval [t0, t1) on `rank` (op `op`).
  kSendOp,      ///< Send-side CPU interval [t0, t1); peer/tag/bytes describe the message.
  kRecvOp,      ///< Receive-side CPU interval [t0, t1) after the match.
  kMsgInject,   ///< Message in flight: injected at t0 on `rank`, first arrival
                ///< (payload, or RTS for rendezvous) at t1 on `peer`.
  kMsgDeliver,  ///< Payload available to the receiver at t0 (rank = destination).
  kRts,         ///< Rendezvous ready-to-send leg [t0, t1) (rank = sender).
  kCts,         ///< Rendezvous clear-to-send + payload leg [t0, t1) (rank = receiver).
  kBlackout,    ///< CPU blackout interval [t0, t1) on `rank`.
  kRecvWait,    ///< Receive posted at t0, data available at t1 (rank = receiver).
  kFailure,     ///< Injected failure: `rank` (or its cluster) fails at t0.
                ///< Emitted by failure models (fault::direct), not the engine.
  kRollback,    ///< Recovery interval [t0, t1): coordinated global rollback
                ///< window (rank = -1) or the failed rank's restart.
  kReplay,      ///< Replay interval [t0, t1): the failed rank re-executes from
                ///< its last local checkpoint at replay speedup.
};

/// Stable short name ("calc", "send", "inject", ...) for exporters.
constexpr const char* trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kCalc: return "calc";
    case TraceEventKind::kSendOp: return "send";
    case TraceEventKind::kRecvOp: return "recv";
    case TraceEventKind::kMsgInject: return "inject";
    case TraceEventKind::kMsgDeliver: return "deliver";
    case TraceEventKind::kRts: return "rts";
    case TraceEventKind::kCts: return "cts";
    case TraceEventKind::kBlackout: return "blackout";
    case TraceEventKind::kRecvWait: return "wait";
    case TraceEventKind::kFailure: return "failure";
    case TraceEventKind::kRollback: return "rollback";
    case TraceEventKind::kReplay: return "replay";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t seq = 0;    ///< Global emission order; assigned by the sink.
  std::uint64_t ref = 0;    ///< Seq of the causing kMsgInject (0 = none).
  std::uint64_t cause = 0;  ///< Seq of the event whose end bound t0 (0 = none).
  TimeNs t0 = 0;          ///< Interval begin (or instant).
  TimeNs t1 = 0;          ///< Interval end.
  TimeNs stall = 0;       ///< Op events: blackout stall inside [t0, t1).
  Bytes bytes = 0;
  RankId rank = -1;       ///< Owning rank (sender for kMsgInject/kRts).
  RankId peer = -1;       ///< Other endpoint, when the event has one.
  OpIndex op = kInvalidOp;
  Tag tag = 0;
  TraceEventKind kind = TraceEventKind::kCalc;
};

/// Receiver of engine trace events. Implementations must be cheap: record()
/// sits on the simulation hot path whenever tracing is enabled.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Record `ev`. The sink assigns the event's global sequence number
  /// (monotone from 1) and returns it so the engine can cross-reference
  /// later events (deliveries and waits reference their injection).
  virtual std::uint64_t record(TraceEvent ev) = 0;

  /// Patch a previously recorded event (flow mode): kMsgInject is emitted
  /// at send time with the *uncontended* arrival as t1, and amended once
  /// the fabric resolves the actual delivery — t1 becomes the real arrival
  /// and `stall` the contention delay (arrival - uncontended). `rank` is
  /// the event's owning rank (the sender), which lets ring-buffer sinks
  /// find the event without a global index. Default: ignore.
  virtual void amend(std::uint64_t seq, RankId rank, TimeNs t1, TimeNs stall) {
    (void)seq;
    (void)rank;
    (void)t1;
    (void)stall;
  }
};

}  // namespace chksim::sim
