// Internal machinery shared by the serial SimCore and the sharded ParEngine.
//
// The discrete-event core here executes a contiguous *rank range* of a
// Program: the serial engine instantiates one core over [0, ranks) and the
// parallel engine one per shard. Two representation choices make a sharded
// run byte-identical to the serial run (see sim/par_engine.hpp):
//
//  * Content-keyed event order. The pending-event comparator is
//    (time, rank, key2) where key2 is a pure function of the event itself —
//    ready events order by op index, arrivals by (source, per-sender message
//    number). No push-sequence counter appears anywhere, so the pop order of
//    a rank's events does not depend on *when* the events entered the heap.
//    A shard that learns about a cross-shard arrival at a window barrier
//    therefore pops it exactly where the serial engine (which pushed it at
//    send time) would have.
//
//  * Sender-side channel state. The MPI non-overtaking clamp (per-channel
//    last-arrival time) lives on the *sending* rank keyed by destination,
//    together with the sender's message counter. Processing an event then
//    touches only the owning rank's state, so shards can advance their rank
//    ranges concurrently with no cross-shard writes; cross-range sends are
//    appended to an outgoing lane instead of pushed into a peer heap.
//
// Scale regime (>= 2^18 ranks) design notes:
//
//  * Bucketed near-future queue. run_until() drains events through a window
//    of exact-timestamp buckets (kBucketSpan ns wide): pending events within
//    the window move out of the far heap into their bucket, each bucket is
//    sorted once on (rank, key2) and walked sequentially, and events created
//    at the *current* timestamp mid-walk go through a small straggler heap.
//    No event ever needs to enter a bucket earlier than the one being
//    drained (completions finish at or after their pop time; arrivals lag by
//    wire time >= 0 and same-time arrivals land in the straggler heap), so
//    the walk realizes exactly the (time, rank, key2) order the heap would —
//    but as a cache-friendly rank-ascending sweep instead of O(log n)
//    random-access sifts through a multi-megabyte heap. The far heap only
//    holds beyond-window times, keeping it orders of magnitude smaller at
//    scale. Buckets are empty whenever the core is paused, so peek / step /
//    inject / snapshot see the heap alone, unchanged.
//
//  * Pooled match state. (src, tag) match bindings live in one per-core slot
//    pool with an intrusive free list; a binding is released the moment its
//    queue drains (FlatMap::erase + freelist push), so a workload that
//    rebases tags every iteration (as repeat() does) reuses a handful of
//    slots per rank instead of accumulating one per (src, tag, iteration).
//    Only ONE of a binding's two logical queues (posted receives / arrived
//    messages) can be non-empty at any time — handle_arrival pops a posted
//    receive if present, else parks the message; kRecv pops a parked message
//    if present, else posts — so a single mode-tagged FIFO stores both.
//
// Everything in this header is an implementation detail: the public
// interfaces are sim::SimCore / sim::Engine (engine.hpp) and sim::ParEngine
// (par_engine.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "chksim/sim/availability.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/support/dary_heap.hpp"
#include "chksim/support/flat_map.hpp"

namespace chksim::sim::detail {

/// Throws std::runtime_error with a structured diagnostic when
/// config.rss_budget_mib > 0 and the estimated working set exceeds it
/// (engine.cpp; called from both engine construction paths).
void enforce_rss_budget(const Program& program, const EngineConfig& config);

/// Throws std::invalid_argument when config.fabric is set but the flow-mode
/// preconditions (net.L >= 1, fabric lookahead >= 1) do not hold (engine.cpp;
/// called from both engine construction paths).
void validate_flow_mode(const EngineConfig& config);

/// One pending event, packed to 32 bytes: the heap and the window buckets
/// move events around constantly, so element size is hot. The kind rides in
/// key2's top bit, the kReady-only / kArrival-only fields share storage, and
/// the payload size is stored narrow (engine guards messages at < 4 GiB).
struct Event {
  TimeNs time = 0;
  std::uint64_t key2 = 0;        // content key; see ready_key / arrival_key
  RankId rank = -1;              // kReady: executing rank; kArrival: destination
  union {
    OpIndex op = kInvalidOp;     // kReady
    RankId src;                  // kArrival
  };
  Tag tag = 0;                   // kArrival
  std::uint32_t bytes32 = 0;     // kArrival payload size (checked_event_bytes)

  bool is_arrival() const { return (key2 >> 63) != 0; }
};
static_assert(sizeof(Event) == 32, "Event is a hot 32-byte packed record");

constexpr std::uint64_t kArrivalBit = std::uint64_t{1} << 63;

/// Ordering key of an injected (out-of-band) arrival: the source field sorts
/// after every real rank (RankId is a non-negative int32, so real sources
/// are < 0x7FFFFFFF), and same-time injections to one rank order by
/// injection count — i.e. by inject() call order, which both engines see
/// identically because injections only happen while the core is paused.
constexpr std::uint64_t kInjectedSrc = 0x7FFFFFFFull;

inline std::uint64_t ready_key(OpIndex op) {
  return static_cast<std::uint32_t>(op);
}

/// (source, per-sender message number). The counter is per *sender*, not per
/// channel, which makes the key globally unique per message (one send = one
/// arrival) — the trace side table below relies on that — while still
/// increasing along every (src, dst) channel, so same-time arrivals on one
/// channel keep their FIFO send order. Counters are 32-bit with explicit
/// overflow guards at the call sites (4 G sends per rank is beyond any
/// feasible run length; the guard turns silent key aliasing into an error).
inline std::uint64_t arrival_key(std::uint64_t src, std::uint64_t msg_count) {
  return kArrivalBit | (src << 32) | (msg_count & 0xFFFFFFFFull);
}

/// Event payload sizes are stored as 32 bits (see Event); a per-message
/// payload of 4 GiB or more would alias, so reject it loudly.
inline std::uint32_t checked_event_bytes(Bytes bytes) {
  if (bytes < 0 || bytes > 0xFFFFFFFFll)
    throw std::invalid_argument(
        "sim: per-message payloads are limited to < 4 GiB "
        "(Event stores a 32-bit size)");
  return static_cast<std::uint32_t>(bytes);
}

/// Strict total order (time, rank, key2) over all events of a run. Every
/// component is a function of the event's content, so any two heaps holding
/// the same set of events pop them in the same order regardless of the
/// pushes' history — the property the sharded engine's determinism rests on.
/// Equal-time ties break by rank; same-time events created mid-drain (own
/// rank completions, or zero-latency arrivals) re-enter through the
/// straggler heap, so the realized global order is identical to a heap's.
struct EventEarlier {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.key2 < b.key2;
  }
};

/// (rank, key2) order within one exact-timestamp bucket.
struct SameTimeEarlier {
  bool operator()(const Event& a, const Event& b) const {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.key2 < b.key2;
  }
};

/// Transient view of a matched arrival handed to do_match / tracing.
struct ArrivedMsg {
  TimeNs arrival;
  Bytes bytes;
  std::uint64_t msg_seq = 0;  // tracing only
};

// Match key: (source rank, tag) packed into 64 bits.
inline std::uint64_t match_key(RankId src, Tag tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Compact FIFO. std::deque is unsuitable here: libstdc++ allocates a 512 B
/// chunk per deque even when empty, and simulations at scale hold millions
/// of (mostly empty) match queues.
///
/// Two properties matter on the hot path:
///  * the first two elements live inline — in the dominant pattern (one
///    message, one receive per (src, tag) key) a queue never heap-allocates;
///  * the consumed prefix of the spill vector is reclaimed: on full drain the
///    backing vector is released, and while non-empty the head indices are
///    recycled once they dominate the storage. Without the latter, a queue
///    that never fully drains (producer steadily ahead of its consumer)
///    holds every element it ever saw until the end of the run.
template <typename T>
class CompactFifo {
 public:
  bool empty() const { return inline_head_ == inline_count_ && spill_empty(); }

  void push(T v) {
    if (spill_empty() && inline_count_ < kInline) {
      inline_[inline_count_++] = std::move(v);
      return;
    }
    spill_.push_back(std::move(v));
  }

  T pop() {
    if (inline_head_ < inline_count_) {
      T v = std::move(inline_[inline_head_++]);
      if (inline_head_ == inline_count_) inline_head_ = inline_count_ = 0;
      return v;
    }
    T v = std::move(spill_[spill_head_++]);
    if (spill_head_ == spill_.size()) {
      spill_.clear();
      spill_head_ = 0;
      if (spill_.capacity() > 64) spill_.shrink_to_fit();
    } else if (spill_head_ >= 32 && spill_head_ * 2 >= spill_.size()) {
      spill_.erase(spill_.begin(),
                   spill_.begin() + static_cast<std::ptrdiff_t>(spill_head_));
      spill_head_ = 0;
    }
    return v;
  }

  std::size_t size() const {
    return (inline_count_ - inline_head_) + (spill_.size() - spill_head_);
  }

  /// Bytes reserved by the spill vector (working-set census; cold path).
  std::size_t spill_capacity_bytes() const { return spill_.capacity() * sizeof(T); }

 private:
  static constexpr std::uint8_t kInline = 2;

  bool spill_empty() const { return spill_head_ == spill_.size(); }

  T inline_[kInline]{};
  std::uint8_t inline_head_ = 0;
  std::uint8_t inline_count_ = 0;
  std::vector<T> spill_;
  std::size_t spill_head_ = 0;
};

/// One queued match record. A (src, tag) binding holds either pending posted
/// receives or pending arrived messages — never both (see header notes) — so
/// one entry type with mode-dependent fields serves both queues.
struct MatchEntry {
  TimeNs time = 0;        // posted: post time; arrived: arrival time
  std::uint64_t aux = 0;  // posted: op index; arrived: msg_seq (tracing only)
  Bytes bytes = 0;        // arrived: payload size; posted: unused
};

/// One pooled (src, tag) match binding. Slots live in a per-core pool and
/// recycle through an intrusive free list the moment their queue drains, so
/// the pool's size tracks the *live* binding high-water, not the total
/// number of distinct keys ever touched.
struct MatchSlot {
  enum : std::uint8_t { kIdle = 0, kPosted = 1, kArrived = 2 };

  CompactFifo<MatchEntry> fifo;
  std::uint32_t next_free = 0;  // freelist link (slot index + 1) while idle
  std::uint8_t mode = kIdle;
};

struct RankState {
  TimeNs cpu_free = 0;
  TimeNs nic_free = 0;
  // Remaining unmet dependencies per op. 16-bit with an overflow side map in
  // the core (value 0xFFFF = "see CoreImpl::indegree_big_"): fan-in beyond
  // 65 534 is vanishingly rare, and at 2^20 ranks the narrow array alone
  // saves ~270 MiB.
  std::vector<std::uint16_t> indegree;
  // (src, tag) -> live slot + 1 in the core's match pool (0 = unbound).
  // Entries are erased when the binding drains, so the index stays at its
  // live-key working set instead of growing with run length.
  FlatMap<std::uint64_t, std::uint32_t> match_index;
  // Per-destination FIFO clamp (MPI non-overtaking), kept on the *sender* so
  // a send never writes another rank's state (shard independence).
  FlatMap<std::uint64_t, TimeNs> chan_last_arrival;
  std::uint32_t msg_count = 0;        // sends issued by this rank (arrival_key)
  std::uint32_t inj_count = 0;        // injected arrivals targeting this rank
  std::uint32_t match_live = 0;       // live match bindings right now
  std::uint32_t match_live_peak = 0;  // high-water of match_live (see RunResult)
  RankStats stats;
};

/// Per-rank tracing state, split out of RankState so the untraced engine
/// (every run at scale) never pays its footprint. Allocated only when a
/// trace sink is attached.
struct RankTraceState {
  TimeNs blackout_traced = 0;  // blackout intervals emitted up to here
  // Trace seq of the rank's most recent op event, and per-op the seq of the
  // same-rank predecessor op event whose completion made the op ready.
  // Together these let the engine stamp TraceEvent::cause (the binding start
  // constraint) without any search at emission time.
  std::uint64_t last_op_seq = 0;
  std::vector<std::uint64_t> ready_cause;
};

/// A cross-shard message parked in its source shard's outgoing lane between
/// window barriers. Carries the arrival's full content (including its
/// ordering key, fixed at send time) plus the provisional trace seq of its
/// kMsgInject when tracing.
struct LaneMsg {
  TimeNs arrival = 0;
  std::uint64_t key2 = 0;
  std::uint64_t msg_seq = 0;
  RankId dst = -1;
  RankId src = -1;
  Tag tag = 0;
  std::uint32_t bytes32 = 0;
};
static_assert(sizeof(LaneMsg) == 40, "LaneMsg packs to 40 bytes");

/// A flow submission buffered by a shard core between window barriers (flow
/// mode only). Shards never touch the shared fabric mid-window; ParEngine
/// applies these at the merge barrier, in shard order — sound because the
/// fabric orders flows by content, never by submission call order.
struct FlowOut {
  TimeNs inject = 0;
  FlowRequest req;
};

/// One processed event, as recorded for the barrier merge: enough to
/// reconstruct the serial engine's realized pop order ((time, rank) streams
/// merged across shards — per-rank key order is already baked into each
/// stream, so key2 need not be carried), its heap-size trajectory (pushes
/// per pop), and the serial trace numbering (trace events emitted per pop).
struct PopRecord {
  TimeNs time = 0;
  RankId rank = -1;
  std::uint32_t pushes = 0;  // serial-equivalent heap pushes (local + lane)
  std::uint32_t traces = 0;  // trace events emitted during this pop
};
static_assert(sizeof(PopRecord) == 24, "PopRecord packs to 24 bytes");

/// The event-processing core over ranks [lo, hi) of a finalized Program.
/// All members are public: this is a detail type driven by SimCore (one core
/// spanning every rank, lanes never used) and ParEngine (one per shard, with
/// pop recording on).
class CoreImpl {
 public:
  /// Width of the near-future bucket window (ns of simulated time bucketed
  /// per drain pass). Covers the common LogGOPS latencies (so a PDES
  /// superstep needs one pass) while keeping the bucket directory at a fixed
  /// 96 KiB per core.
  static constexpr TimeNs kBucketSpan = 4096;

  CoreImpl(const Program& program, const EngineConfig& config, RankId lo,
           RankId hi, TraceSink* trace)
      : prog_(program),
        cfg_(config),
        trace_(trace),
        avail_(config.blackouts != nullptr
                   ? static_cast<const BlackoutSchedule*>(config.blackouts)
                   : static_cast<const BlackoutSchedule*>(&no_blackouts_),
               config.preemption),
        always_available_(config.blackouts == nullptr),
        lo_(lo),
        hi_(hi) {
    const std::size_t nlocal = static_cast<std::size_t>(hi - lo);
    states_.resize(nlocal);
    views_.resize(nlocal);
    if (trace_ != nullptr) tstates_.resize(nlocal);
    if (cfg_.record_op_finish)
      result_.op_finish_offset.assign(nlocal + 1, 0);
    // The initial frontier is roughly one ready op per rank; later pushes
    // grow geometrically, so this one reservation makes queue growth a
    // non-event on the hot path.
    queue_.reserve(nlocal + 64);
    for (RankId r = lo; r < hi; ++r) {
      const std::size_t i = static_cast<std::size_t>(r - lo);
      const RankOpsView v = prog_.rank_view(r);
      views_[i] = v;
      auto& st = states_[i];
      // Indegrees are not stored in the program (the compact layout keeps
      // only chain runs + explicit CSR); reconstruct them here.
      st.indegree.assign(v.count, 0);
      if (trace_ != nullptr) tstates_[i].ready_cause.assign(v.count, 0);
      if (cfg_.record_op_finish)
        result_.op_finish_offset[i + 1] = result_.op_finish_offset[i] + v.count;
      for (OpIndex op = 0; op < v.count; ++op)
        for (OpIndex k = 1; k <= v.chain[op]; ++k) bump_indegree(st, r, op + k);
      for (std::uint32_t e = v.xoff[0]; e < v.xoff[v.count]; ++e)
        bump_indegree(st, r, v.xsucc[e]);
      for (OpIndex op = 0; op < v.count; ++op)
        if (st.indegree[op] == 0) push_ready(0, r, op);
      total_ops_ += static_cast<std::int64_t>(v.count);
    }
    if (cfg_.record_op_finish)
      result_.op_finish.assign(
          static_cast<std::size_t>(result_.op_finish_offset.back()), -1);
  }

  /// Process every pending event with time <= t in (time, rank, key2) order,
  /// via the bucketed near-future window (see header notes). The window is
  /// fully drained before returning, so the far heap alone holds the pending
  /// set whenever the core is paused.
  void run_until(TimeNs t) {
    if (fabric_ != nullptr) {
      run_until_flow(t);
      return;
    }
    while (!queue_.empty() && queue_.top().time <= t) {
      const TimeNs base = queue_.top().time;
      // limit = min(base + kBucketSpan - 1, t), written overflow-safe:
      // callers pass t = TimeNs max to mean "to completion".
      const TimeNs limit = (t - base < kBucketSpan - 1) ? t : base + (kBucketSpan - 1);
      drain_window(base, limit);
    }
  }

  bool step() {
    assert(bucket_base_ < 0);
    if (fabric_ != nullptr) {
      // Materialize every fabric event up to (and tying) the next engine
      // event, so the pop below observes the same pending set the windowed
      // path would. Each materialize advances the fabric strictly past its
      // reported next event, so this terminates.
      for (;;) {
        const TimeNs ft = fabric_->next_event();
        if (ft < 0) break;
        if (!queue_.empty() && queue_.top().time < ft) break;
        materialize_flows(ft);
      }
    }
    if (queue_.empty()) return false;
    const Event ev = queue_.top();
    queue_.pop();
    --pending_;
    process_event(ev);
    return true;
  }

  bool idle() const {
    return queue_.empty() &&
           (fabric_ == nullptr || fabric_->next_event() < 0);
  }
  bool finished() const { return result_.ops_executed == total_ops_; }
  TimeNs next_event_time() const {
    TimeNs t = queue_.empty() ? -1 : queue_.top().time;
    if (fabric_ != nullptr) {
      const TimeNs ft = fabric_->next_event();
      if (ft >= 0 && (t < 0 || ft < t)) t = ft;
    }
    return t;
  }
  const Event* peek() const { return queue_.empty() ? nullptr : &queue_.top(); }
  TimeNs makespan() const { return result_.makespan; }
  std::int64_t ops_executed() const { return result_.ops_executed; }
  std::size_t pending_events() const { return pending_; }

  void inject(const Injection& inj) {
    switch (inj.kind) {
      case Injection::Kind::kOutage: {
        auto& st = state(inj.rank);
        st.cpu_free = std::max(st.cpu_free, inj.until);
        st.nic_free = std::max(st.nic_free, inj.until);
        break;
      }
      case Injection::Kind::kMessage: {
        auto& st = state(inj.rank);
        if (st.inj_count == 0xFFFFFFFFu)
          throw std::runtime_error(
              "sim: injected-arrival count exceeds 2^32-1 on one rank "
              "(arrival-key overflow)");
        push_arrival(inj.time, inj.rank, inj.src, inj.tag,
                     checked_event_bytes(inj.bytes),
                     arrival_key(kInjectedSrc, st.inj_count++), 0);
        break;
      }
    }
    if (!inj.note.empty()) {
      // Keep only the most recent few: diagnostics context, not a log.
      if (notes_.size() >= 8) notes_.erase(notes_.begin());
      notes_.push_back(inj.note);
    }
  }

  /// Everything a snapshot captures: the mutable half of this class. The
  /// immutable half (program views, config, availability) is reconstructible
  /// from the core and deliberately not copied. Lanes, pop records, window
  /// buckets, and pending trace buffers are empty whenever a snapshot is
  /// legal (the core is paused and, under ParEngine, barrier-merged), so
  /// they need no slots.
  struct SnapState {
    std::vector<RankState> states;
    std::vector<RankTraceState> tstates;
    std::vector<MatchSlot> match_pool;
    std::uint32_t match_free = 0;
    FlatMap<std::uint64_t, std::uint32_t> indegree_big;
    DaryHeap<Event, EventEarlier, 4> queue;
    std::size_t heap_peak = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> arrival_msg_seq;
    RunResult result;
    std::vector<std::string> notes;
    // Deep copy of the fabric when this core owns one (serial flow mode;
    // shard cores never do — ParEngine snapshots the shared fabric itself).
    std::unique_ptr<Fabric> fabric;
  };

  SnapState save() const {
    assert(bucket_base_ < 0);
    SnapState s;
    if (fabric_ != nullptr) s.fabric = fabric_->clone();
    s.states = states_;
    s.tstates = tstates_;
    s.match_pool = match_pool_;
    s.match_free = match_free_;
    s.indegree_big = indegree_big_;
    s.queue = queue_;
    s.heap_peak = heap_peak_;
    s.arrival_msg_seq = arrival_msg_seq_;
    s.result = result_;
    s.notes = notes_;
    return s;
  }

  void load(const SnapState& s) {
    assert(lane_.empty() && pops_.empty() && bucket_base_ < 0);
    if (fabric_ != nullptr) {
      if (s.fabric == nullptr)
        throw std::logic_error(
            "sim: restoring a flow-mode core from a snapshot taken without "
            "a fabric");
      fabric_->restore(*s.fabric);
    }
    states_ = s.states;
    tstates_ = s.tstates;
    match_pool_ = s.match_pool;
    match_free_ = s.match_free;
    indegree_big_ = s.indegree_big;
    queue_ = s.queue;
    pending_ = queue_.size();
    heap_peak_ = s.heap_peak;
    arrival_msg_seq_ = s.arrival_msg_seq;
    result_ = s.result;
    notes_ = s.notes;
  }

  /// Serial finish accounting; ParEngine assembles its merged RunResult from
  /// the shard members directly instead (par_engine.cpp).
  RunResult take_result() {
    result_.completed = result_.ops_executed == total_ops_;
    if (!result_.completed) {
      std::string msg = "deadlock: unexecuted operations remain;";
      int shown = 0;
      append_deadlock_ranks(msg, shown);
      append_deadlock_notes(msg);
      result_.error = std::move(msg);
    }
    result_.event_heap_peak = static_cast<std::int64_t>(heap_peak_);
    if (fabric_ != nullptr) result_.fabric = fabric_->stats();
    result_.ranks.reserve(states_.size());
    for (auto& st : states_) {
      result_.match_arena_slots += static_cast<std::int64_t>(st.match_live_peak);
      result_.ranks.push_back(st.stats);
    }
    result_.ws_bytes = working_set_bytes();
    result_.ws_match_slot_peak = static_cast<std::int64_t>(match_pool_.size());
    return std::move(result_);
  }

  /// Capacity census of this core's mutable working set: bytes actually
  /// reserved by the event structures, match pool, and per-rank state (the
  /// Program is shared and excluded). Cold path — called at take_result and
  /// by the working-set gauges; deterministic for a fixed shard count.
  std::int64_t working_set_bytes() const {
    std::int64_t b = static_cast<std::int64_t>(sizeof(CoreImpl));
    b += static_cast<std::int64_t>(queue_.capacity() * sizeof(Event));
    for (const auto& v : buckets_)
      b += static_cast<std::int64_t>(v.capacity() * sizeof(Event));
    b += static_cast<std::int64_t>(stragglers_.capacity() * sizeof(Event));
    b += static_cast<std::int64_t>(lane_.capacity() * sizeof(LaneMsg));
    b += static_cast<std::int64_t>(pops_.capacity() * sizeof(PopRecord));
    b += static_cast<std::int64_t>(match_pool_.capacity() * sizeof(MatchSlot));
    for (const auto& ms : match_pool_)
      b += static_cast<std::int64_t>(ms.fifo.spill_capacity_bytes());
    b += static_cast<std::int64_t>(states_.capacity() * sizeof(RankState));
    b += static_cast<std::int64_t>(views_.capacity() * sizeof(RankOpsView));
    for (const auto& st : states_) {
      b += static_cast<std::int64_t>(st.indegree.capacity() * sizeof(std::uint16_t));
      b += static_cast<std::int64_t>(st.match_index.memory_bytes());
      b += static_cast<std::int64_t>(st.chan_last_arrival.memory_bytes());
    }
    b += static_cast<std::int64_t>(indegree_big_.memory_bytes());
    return b;
  }

  /// Per-rank deadlock diagnostics over this core's range, appended in rank
  /// order until `shown` reaches the cap (shared across shards).
  void append_deadlock_ranks(std::string& msg, int& shown) const {
    for (RankId r = lo_; r < hi_ && shown < 8; ++r) {
      const auto& st = states_[static_cast<std::size_t>(r - lo_)];
      std::int64_t pending_recvs = 0;
      st.match_index.for_each([&](std::uint64_t, std::uint32_t slot) {
        const MatchSlot& ms = match_pool_[slot - 1];
        if (ms.mode == MatchSlot::kPosted)
          pending_recvs += static_cast<std::int64_t>(ms.fifo.size());
      });
      if (pending_recvs > 0) {
        msg += " rank " + std::to_string(r) + " has " +
               std::to_string(pending_recvs) + " unmatched recv(s);";
        ++shown;
      }
    }
  }

  // A wedged injected run (failure modeling) is far easier to diagnose
  // with the failure context than with the unmatched-recv counts alone.
  void append_deadlock_notes(std::string& msg) const {
    if (notes_.empty()) return;
    msg += " injected-failure context:";
    for (const std::string& note : notes_) msg += " [" + note + "]";
  }

  /// Barrier delivery of a cross-shard message into this core's heap. Not
  /// counted as a push in the pop records: the sending pop already did.
  void deliver(const LaneMsg& m) {
    Event ev;
    ev.time = m.arrival;
    ev.key2 = m.key2;
    ev.rank = m.dst;
    ev.src = m.src;
    ev.tag = m.tag;
    ev.bytes32 = m.bytes32;
    if (m.msg_seq != 0) arrival_msg_seq_.emplace(m.key2, m.msg_seq);
    enqueue(ev);
  }

  RankState& state(RankId r) {
    assert(r >= lo_ && r < hi_);
    return states_[static_cast<std::size_t>(r - lo_)];
  }

  RankTraceState& tstate(RankId r) {
    assert(trace_ != nullptr && r >= lo_ && r < hi_);
    return tstates_[static_cast<std::size_t>(r - lo_)];
  }

 private:
  /// Every event insertion funnels through here. While a window is active,
  /// in-window times land in their exact-time bucket (or the straggler heap
  /// when they tie the timestamp being drained); everything else goes to the
  /// far heap. The pending-event count replicates the size trajectory a
  /// single heap would have had, so heap_peak_ (the published
  /// event_heap_peak) is byte-identical to the pre-bucketing engine.
  void enqueue(const Event& ev) {
    ++pending_;
    if (pending_ > heap_peak_) heap_peak_ = pending_;
    if (bucket_base_ >= 0 && ev.time <= bucket_limit_) {
      assert(ev.time >= bucket_cur_);
      if (ev.time == bucket_cur_) {
        stragglers_.push_back(ev);
        std::push_heap(stragglers_.begin(), stragglers_.end(), straggler_later_);
      } else {
        const std::size_t idx = static_cast<std::size_t>(ev.time - bucket_base_);
        buckets_[idx].push_back(ev);
        ++bucket_count_;
        if (idx + 1 > bucket_hi_) bucket_hi_ = idx + 1;
      }
    } else {
      queue_.push(ev);
    }
  }

  /// Drain every pending event in [base, limit] (inclusive), in
  /// (time, rank, key2) order, through the bucket window.
  void drain_window(TimeNs base, TimeNs limit) {
    if (buckets_.empty()) buckets_.resize(static_cast<std::size_t>(kBucketSpan));
    bucket_base_ = base;
    bucket_limit_ = limit;
    bucket_hi_ = 0;
    // Move the heap's in-window prefix into the exact-time buckets. Pure
    // relocation: pending_ is unchanged.
    while (!queue_.empty() && queue_.top().time <= limit) {
      const Event& e = queue_.top();
      const std::size_t idx = static_cast<std::size_t>(e.time - base);
      buckets_[idx].push_back(e);
      ++bucket_count_;
      if (idx + 1 > bucket_hi_) bucket_hi_ = idx + 1;
      queue_.pop();
    }
    for (std::size_t idx = 0; idx < bucket_hi_ && bucket_count_ > 0; ++idx) {
      std::vector<Event>& b = buckets_[idx];
      if (b.empty()) continue;
      bucket_cur_ = base + static_cast<TimeNs>(idx);
      bucket_count_ -= static_cast<std::int64_t>(b.size());
      // One sort, then a sequential rank-ascending walk. Processing never
      // appends to this bucket (same-time creations go through the straggler
      // heap, later times to later buckets), so iteration is stable.
      std::sort(b.begin(), b.end(), SameTimeEarlier{});
      std::size_t cursor = 0;
      while (cursor < b.size() || !stragglers_.empty()) {
        bool take_straggler = !stragglers_.empty();
        if (take_straggler && cursor < b.size())
          take_straggler = SameTimeEarlier{}(stragglers_.front(), b[cursor]);
        Event ev;
        if (take_straggler) {
          std::pop_heap(stragglers_.begin(), stragglers_.end(), straggler_later_);
          ev = stragglers_.back();
          stragglers_.pop_back();
        } else {
          ev = b[cursor++];
        }
        --pending_;
        process_event(ev);
      }
      b.clear();
    }
    assert(bucket_count_ == 0 && stragglers_.empty());
    bucket_base_ = bucket_cur_ = bucket_limit_ = -1;
  }

  // --- Flow mode (cfg_.fabric != nullptr) --------------------------------
  //
  // Message transit times come from the fabric's flow solver instead of the
  // closed form. The serial core owns the fabric (fabric_ set by SimCore)
  // and interleaves fabric advancement with event processing in conservative
  // windows of flow_window() ns; shard cores leave fabric_ null, buffer
  // their submissions in flow_out_, and let ParEngine advance the shared
  // fabric at barriers with the same window width — which is what keeps the
  // two paths byte-identical.

  /// Conservative window width: no event processed in [base, base + W - 1]
  /// can change fabric state at or before base + W - 1, because a flow
  /// submitted at time >= base first acts at + the route latency
  /// (>= min_latency() >= 1) and submission happens at the sender's NIC
  /// time, which is >= the pop time >= base.
  TimeNs flow_window() const {
    TimeNs w = cfg_.net.L >= 1 ? cfg_.net.L : 1;
    w = std::min(w, kBucketSpan);
    w = std::min(w, cfg_.fabric->min_latency());
    return w;
  }

  /// Serial flow-mode drive loop: alternate "materialize every fabric event
  /// in the window" with "drain every engine event in the window".
  /// Materialization runs first so arrivals completing inside the window are
  /// in the pending set before the drain realizes its (time, rank, key2)
  /// order over them.
  void run_until_flow(TimeNs t) {
    const TimeNs w = flow_window();
    for (;;) {
      TimeNs base = queue_.empty() ? -1 : queue_.top().time;
      const TimeNs ft = fabric_->next_event();
      if (ft >= 0 && (base < 0 || ft < base)) base = ft;
      if (base < 0 || base > t) break;
      const TimeNs limit = (t - base < w - 1) ? t : base + (w - 1);
      materialize_flows(limit);
      if (!queue_.empty() && queue_.top().time <= limit)
        drain_window(base, limit);
    }
  }

  /// Advance the fabric through `limit` and turn its finished message flows
  /// into arrival events (amending each kMsgInject's provisional arrival to
  /// the realized one when tracing). Completions come out in deterministic
  /// (finish, canonical) order, and every finish is >= the window base.
  void materialize_flows(TimeNs limit) {
    flow_buf_.clear();
    fabric_->advance(limit, &flow_buf_);
    for (const FlowCompletion& c : flow_buf_) {
      if (trace_ != nullptr && c.req.seq != 0)
        trace_->amend(c.req.seq, c.req.src, c.finish,
                      c.finish - c.uncontended);
      push_arrival(c.finish, c.req.dst, c.req.src, c.req.tag,
                   checked_event_bytes(c.req.bytes), c.req.key2,
                   trace_ != nullptr ? c.req.seq : 0);
    }
  }

  void process_event(const Event& ev) {
    ++result_.events_processed;
    if (!record_pops_) {
      dispatch(ev);
      return;
    }
    pop_pushes_ = 0;
    const std::uint64_t emits = emit_count_;
    dispatch(ev);
    pops_.push_back(PopRecord{ev.time, ev.rank, pop_pushes_,
                              static_cast<std::uint32_t>(emit_count_ - emits)});
  }

  void dispatch(const Event& ev) {
    if (!ev.is_arrival()) {
      execute_op(ev.rank, ev.op, ev.time);
    } else {
      handle_arrival(ev.rank, ev.src, ev.tag, static_cast<Bytes>(ev.bytes32),
                     ev.time,
                     trace_ != nullptr ? take_arrival_msg_seq(ev.key2) : 0);
    }
  }

  void push_ready(TimeNs t, RankId r, OpIndex i) {
    Event ev;
    ev.time = t;
    ev.key2 = ready_key(i);
    ev.rank = r;
    ev.op = i;
    enqueue(ev);
    ++pop_pushes_;
  }

  void push_arrival(TimeNs t, RankId dst, RankId src, Tag tag,
                    std::uint32_t bytes32, std::uint64_t key2,
                    std::uint64_t msg_seq) {
    Event ev;
    ev.time = t;
    ev.key2 = key2;
    ev.rank = dst;
    ev.src = src;
    ev.tag = tag;
    ev.bytes32 = bytes32;
    // The kMsgInject trace seq rides in a side table rather than in Event:
    // growing the priority-queue element would tax the untraced hot path.
    // arrival_key is globally unique per message, so key2 indexes it.
    if (msg_seq != 0) arrival_msg_seq_.emplace(key2, msg_seq);
    enqueue(ev);
    ++pop_pushes_;
  }

  /// When the rank is always available (no blackout schedule), work finishes
  /// start + work with no virtual schedule query — the base run of every
  /// study takes this path for all of its ops.
  TimeNs finish(RankId r, TimeNs start, TimeNs work) {
    return always_available_ ? start + work : avail_.finish(r, start, work);
  }

  std::uint64_t take_arrival_msg_seq(std::uint64_t key2) {
    const auto it = arrival_msg_seq_.find(key2);
    if (it == arrival_msg_seq_.end()) return 0;
    const std::uint64_t v = it->second;
    arrival_msg_seq_.erase(it);
    return v;
  }

  // --- Dependency counting (16-bit fast path + overflow side map) --------

  static std::uint64_t big_key(RankId r, OpIndex i) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) | i;
  }

  /// Construction-time indegree increment. Values 0..0xFFFE live in the
  /// narrow array; 0xFFFF marks "0xFFFE + indegree_big_[key] excess".
  void bump_indegree(RankState& st, RankId r, OpIndex i) {
    std::uint16_t& d = st.indegree[i];
    if (d < 0xFFFE) {
      ++d;
    } else if (d == 0xFFFE) {
      d = 0xFFFF;
      indegree_big_[big_key(r, i)] = 1;
    } else {
      ++indegree_big_[big_key(r, i)];
    }
  }

  // --- Match pool --------------------------------------------------------

  /// Look up (or bind) the match slot for `key` on rank `st`. A fresh
  /// binding reuses a freelist slot when one exists — its drained FIFO keeps
  /// any spill capacity it grew, the high-water reuse that keeps steady-state
  /// match traffic allocation-free.
  MatchSlot& match_slot(RankState& st, std::uint64_t key) {
    std::uint32_t& slot = st.match_index[key];
    if (slot == 0) {
      if (match_free_ != 0) {
        slot = match_free_;
        match_free_ = match_pool_[slot - 1].next_free;
      } else {
        match_pool_.emplace_back();
        slot = static_cast<std::uint32_t>(match_pool_.size());
      }
      if (++st.match_live > st.match_live_peak) st.match_live_peak = st.match_live;
    }
    return match_pool_[slot - 1];
  }

  /// Release a drained binding: unlink it from the rank's index and push the
  /// slot onto the freelist. The caller must have fully drained the FIFO.
  void release_match_slot(RankState& st, std::uint64_t key, std::uint32_t slot) {
    MatchSlot& ms = match_pool_[slot - 1];
    assert(ms.fifo.empty());
    ms.mode = MatchSlot::kIdle;
    ms.next_free = match_free_;
    match_free_ = slot;
    st.match_index.erase(key);
    --st.match_live;
  }

  // --- Tracing (all no-ops unless trace_ is set) -------------------------
  //
  // The per-op emission blocks are [[gnu::noinline, gnu::cold]]: inlined into
  // execute_op/do_match they push those functions past the inliner's budget
  // and evict the untraced hot path from the instruction cache.

  std::uint64_t emit(TraceEventKind kind, RankId rank, TimeNs t0, TimeNs t1,
                     TimeNs stall = 0, RankId peer = -1, OpIndex op = kInvalidOp,
                     Tag tag = 0, Bytes bytes = 0, std::uint64_t ref = 0,
                     std::uint64_t cause = 0) {
    TraceEvent ev;
    ev.ref = ref;
    ev.cause = cause;
    ev.t0 = t0;
    ev.t1 = t1;
    ev.stall = stall;
    ev.bytes = bytes;
    ev.rank = rank;
    ev.peer = peer;
    ev.op = op;
    ev.tag = tag;
    ev.kind = kind;
    ++emit_count_;
    return trace_->record(ev);
  }

  /// Emit each blackout interval of `rank` overlapping [from, to) exactly
  /// once across the whole run (ops sharing a blackout do not duplicate it).
  void trace_blackouts(RankId r, TimeNs from, TimeNs to) {
    if (cfg_.blackouts == nullptr) return;
    auto& traced = tstate(r).blackout_traced;
    TimeNs t = std::max(from, traced);
    while (t < to) {
      const std::optional<Interval> b = cfg_.blackouts->next_blackout(r, t);
      if (!b.has_value() || b->begin >= to) break;
      if (b->end > traced) {
        emit(TraceEventKind::kBlackout, r, b->begin, b->end);
        traced = b->end;
      }
      t = b->end;
    }
  }

  void execute_op(RankId r, OpIndex i, TimeNs t) {
    const OpView op = views_[static_cast<std::size_t>(r - lo_)].op(i);
    auto& st = state(r);
    switch (op.kind) {
      case OpKind::kCalc: {
        const TimeNs start = std::max(t, st.cpu_free);
        const std::uint64_t cause =
            trace_ != nullptr ? op_cause(r, i, st.cpu_free > t) : 0;
        const TimeNs end = finish(r, start, op.value);
        st.cpu_free = end;
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, op.value);
        ++st.stats.calcs;
        if (trace_ != nullptr) trace_calc(r, i, start, end, op.value, cause);
        complete(r, i, end);
        break;
      }
      case OpKind::kSend: {
        const Bytes bytes = op.value;
        const std::uint32_t bytes32 = checked_event_bytes(bytes);
        TimeNs cpu_work = cfg_.net.send_cpu(bytes);
        if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_send_cpu(r, op.peer, bytes);
        const TimeNs s0 = std::max({t, st.cpu_free, st.nic_free});
        const std::uint64_t cause =
            trace_ != nullptr ? op_cause(r, i, s0 > t) : 0;
        const TimeNs end = finish(r, s0, cpu_work);
        st.cpu_free = end;
        st.nic_free = end + cfg_.net.nic_gap(bytes);
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
        ++st.stats.sends;
        st.stats.bytes_sent = saturating_add(st.stats.bytes_sent, bytes);

        if (cfg_.fabric != nullptr) {
          // Flow mode: the payload becomes a fabric flow injected at `end`.
          // The fabric enforces per-channel FIFO itself (the sender-side
          // clamp below is bypassed) and every message moves eagerly —
          // rendezvous is subsumed by fluid bandwidth sharing. No heap push
          // happens here: the arrival enters the pending set when the flow
          // completes (materialize_flows / ParEngine delivery), so the pop
          // record counts no push either.
          if (st.msg_count == 0xFFFFFFFFu)
            throw std::runtime_error(
                "sim: per-rank send count exceeds 2^32-1 (arrival-key "
                "overflow)");
          const std::uint64_t key2 =
              arrival_key(static_cast<std::uint32_t>(r), ++st.msg_count);
          std::uint64_t msg_seq = 0;
          if (trace_ != nullptr) {
            // Provisional kMsgInject arrival = the uncontended estimate;
            // amended to the realized arrival at completion.
            const TimeNs unc =
                cfg_.fabric->uncontended_arrival(end, r, op.peer, bytes);
            msg_seq = trace_send(r, i, op, s0, end, cpu_work, unc, bytes, cause);
          }
          FlowRequest req;
          req.kind = FlowKind::kMsg;
          req.src = r;
          req.dst = op.peer;
          req.tag = op.tag;
          req.bytes = bytes;
          req.key2 = key2;
          req.seq = msg_seq;
          if (buffer_flow_submits_)
            flow_out_.push_back(FlowOut{end, req});
          else
            fabric_->submit(end, req);
          complete(r, i, end);
          break;
        }

        // Eager: payload leaves at `end`. Rendezvous: a zero-byte RTS leaves
        // at `end`; the payload path is computed at match time.
        TimeNs arrival = cfg_.net.rendezvous(bytes) ? end + cfg_.net.L
                                                    : end + cfg_.net.wire_time(bytes);
        // Per-channel FIFO (MPI non-overtaking), sender-side.
        TimeNs& last = st.chan_last_arrival[static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(op.peer))];
        arrival = std::max(arrival, last);
        last = arrival;
        if (st.msg_count == 0xFFFFFFFFu)
          throw std::runtime_error(
              "sim: per-rank send count exceeds 2^32-1 (arrival-key overflow)");
        const std::uint64_t key2 =
            arrival_key(static_cast<std::uint32_t>(r), ++st.msg_count);
        std::uint64_t msg_seq = 0;
        if (trace_ != nullptr)
          msg_seq = trace_send(r, i, op, s0, end, cpu_work, arrival, bytes, cause);
        if (op.peer >= lo_ && op.peer < hi_) {
          push_arrival(arrival, op.peer, r, op.tag, bytes32, key2, msg_seq);
        } else {
          // Counts as a heap push in the pop record: the serial engine
          // pushes the arrival here, and the replay mirrors the serial heap.
          lane_.push_back(LaneMsg{arrival, key2, msg_seq, op.peer, r, op.tag,
                                  bytes32});
          ++pop_pushes_;
        }
        complete(r, i, end);
        break;
      }
      case OpKind::kRecv: {
        const std::uint64_t key = match_key(op.peer, op.tag);
        MatchSlot& ms = match_slot(st, key);
        if (ms.mode == MatchSlot::kArrived) {
          const MatchEntry e = ms.fifo.pop();
          if (ms.fifo.empty())
            release_match_slot(st, key, *st.match_index.find(key));
          do_match(r, i, t, ArrivedMsg{e.time, e.bytes, e.aux});
        } else {
          ms.fifo.push(MatchEntry{t, i, 0});
          ms.mode = MatchSlot::kPosted;
        }
        break;
      }
    }
  }

  void handle_arrival(RankId dst, RankId src, Tag tag, Bytes bytes, TimeNs t,
                      std::uint64_t msg_seq) {
    auto& st = state(dst);
    const std::uint64_t key = match_key(src, tag);
    MatchSlot& ms = match_slot(st, key);
    if (ms.mode == MatchSlot::kPosted) {
      const MatchEntry pr = ms.fifo.pop();
      if (ms.fifo.empty())
        release_match_slot(st, key, *st.match_index.find(key));
      do_match(dst, static_cast<OpIndex>(pr.aux), pr.time,
               ArrivedMsg{t, bytes, msg_seq});
    } else {
      ms.fifo.push(MatchEntry{t, msg_seq, bytes});
      ms.mode = MatchSlot::kArrived;
    }
  }

  void do_match(RankId r, OpIndex i, TimeNs post_time, const ArrivedMsg& msg) {
    const OpView op = views_[static_cast<std::size_t>(r - lo_)].op(i);
    auto& st = state(r);
    TimeNs data_arrival = msg.arrival;
    // Flow mode delivers fully-transferred payloads: no rendezvous.
    const bool rendezvous =
        cfg_.fabric == nullptr && cfg_.net.rendezvous(msg.bytes);
    if (rendezvous) {
      // msg.arrival is the RTS arrival; the payload moves only after both
      // sides are ready, plus the CTS round trip and re-injection.
      const TimeNs m = std::max(post_time, msg.arrival);
      data_arrival = m + cfg_.net.control_time() + cfg_.net.o + cfg_.net.wire_time(msg.bytes) - cfg_.net.L
                     + cfg_.net.L;  // = m + (o+L) + o + L + G*bytes
    }
    TimeNs cpu_work = cfg_.net.recv_cpu(msg.bytes);
    if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_recv_cpu(op.peer, r, msg.bytes);
    const TimeNs start = std::max(data_arrival, st.cpu_free);
    std::uint64_t cause = 0;
    if (trace_ != nullptr) {
      // Binding constraint on the recv's start: the previous op holding the
      // CPU, our own late post (rendezvous handshake anchored at post_time),
      // or the message itself (its kMsgInject; 0 for injected messages).
      auto& ts = tstate(r);
      if (st.cpu_free > data_arrival && ts.last_op_seq != 0)
        cause = ts.last_op_seq;
      else if (rendezvous && post_time > msg.arrival)
        cause = ts.ready_cause[i];
      else
        cause = msg.msg_seq;
    }
    const TimeNs end = finish(r, start, cpu_work);
    st.cpu_free = end;
    st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
    ++st.stats.recvs;
    if (data_arrival > post_time)
      st.stats.recv_wait =
          saturating_add(st.stats.recv_wait, data_arrival - post_time);
    if (trace_ != nullptr)
      trace_match(r, i, op, post_time, msg, data_arrival, rendezvous, start,
                  end, cpu_work, cause);
    complete(r, i, end);
  }

  /// Tracing only: seq of the event whose completion bound an op's start.
  /// `resource_bound` means a rank-local clock (CPU/NIC) pushed the start
  /// past the op's ready time; the binder is then the rank's previous op
  /// event. When no such event exists (an injected outage moved the clocks
  /// without a trace record), fall back to the program-order predecessor so
  /// the walk classifies the unexplained gap as wait time.
  std::uint64_t op_cause(RankId r, OpIndex i, bool resource_bound) {
    const auto& ts = tstate(r);
    if (resource_bound && ts.last_op_seq != 0) return ts.last_op_seq;
    return ts.ready_cause[i];
  }

  [[gnu::noinline, gnu::cold]] void trace_calc(RankId r, OpIndex i, TimeNs start,
                                               TimeNs end, TimeNs work,
                                               std::uint64_t cause) {
    trace_blackouts(r, start, end);
    tstate(r).last_op_seq = emit(TraceEventKind::kCalc, r, start, end,
                                 end - start - work, /*peer=*/-1, i,
                                 /*tag=*/0, /*bytes=*/0, /*ref=*/0, cause);
  }

  [[gnu::noinline, gnu::cold]] std::uint64_t trace_send(RankId r, OpIndex i,
                                                        const OpView& op, TimeNs s0,
                                                        TimeNs end, TimeNs cpu_work,
                                                        TimeNs arrival, Bytes bytes,
                                                        std::uint64_t cause) {
    trace_blackouts(r, s0, end);
    auto& ts = tstate(r);
    const std::uint64_t send_seq =
        emit(TraceEventKind::kSendOp, r, s0, end, end - s0 - cpu_work, op.peer,
             i, op.tag, bytes, /*ref=*/0, cause);
    ts.last_op_seq = send_seq;
    const std::uint64_t msg_seq =
        emit(TraceEventKind::kMsgInject, r, end, arrival, 0, op.peer, i,
             op.tag, bytes, /*ref=*/0, send_seq);
    if (cfg_.fabric == nullptr && cfg_.net.rendezvous(bytes))
      emit(TraceEventKind::kRts, r, end, arrival, 0, op.peer, i, op.tag, bytes,
           /*ref=*/0, send_seq);
    return msg_seq;
  }

  [[gnu::noinline, gnu::cold]] void trace_match(RankId r, OpIndex i, const OpView& op,
                                                TimeNs post_time,
                                                const ArrivedMsg& msg,
                                                TimeNs data_arrival, bool rendezvous,
                                                TimeNs start, TimeNs end,
                                                TimeNs cpu_work, std::uint64_t cause) {
    trace_blackouts(r, start, end);
    if (rendezvous)
      emit(TraceEventKind::kCts, r, std::max(post_time, msg.arrival),
           data_arrival, 0, op.peer, i, op.tag, msg.bytes, msg.msg_seq);
    emit(TraceEventKind::kMsgDeliver, r, data_arrival, data_arrival, 0, op.peer,
         i, op.tag, msg.bytes, msg.msg_seq);
    if (data_arrival > post_time)
      emit(TraceEventKind::kRecvWait, r, post_time, data_arrival, 0, op.peer, i,
           op.tag, msg.bytes, msg.msg_seq);
    tstate(r).last_op_seq = emit(TraceEventKind::kRecvOp, r, start, end,
                                 end - start - cpu_work, op.peer, i, op.tag,
                                 msg.bytes, msg.msg_seq, cause);
  }

  void complete(RankId r, OpIndex i, TimeNs t) {
    auto& st = state(r);
    ++result_.ops_executed;
    st.stats.finish_time = std::max(st.stats.finish_time, t);
    result_.makespan = std::max(result_.makespan, t);
    if (cfg_.record_op_finish)
      result_.op_finish[result_.op_finish_offset[static_cast<std::size_t>(r - lo_)] + i] = t;
    const bool tracing = trace_ != nullptr;
    views_[static_cast<std::size_t>(r - lo_)].for_each_successor(i, [&](OpIndex v) {
      std::uint16_t& d = st.indegree[v];
      assert(d > 0);
      if (d == 0xFFFF) [[unlikely]] {
        // Overflowed fan-in: actual indegree = 0xFFFE + excess; fold the
        // excess back into the narrow array when it reaches zero.
        std::uint32_t& excess = indegree_big_[big_key(r, v)];
        if (--excess == 0) {
          d = 0xFFFE;
          indegree_big_.erase(big_key(r, v));
        }
        return;
      }
      if (--d == 0) {
        // The op event just emitted for `i` is what made `v` ready.
        if (tracing) tstate(r).ready_cause[v] = tstate(r).last_op_seq;
        push_ready(t, r, v);
      }
    });
  }

 public:
  const Program& prog_;
  const EngineConfig& cfg_;
  TraceSink* const trace_;
  NoBlackouts no_blackouts_;
  Availability avail_;
  const bool always_available_;
  const RankId lo_;
  const RankId hi_;
  std::vector<RankState> states_;
  std::vector<RankTraceState> tstates_;  // sized only while tracing
  std::vector<RankOpsView> views_;
  // Shared per-core match-slot pool + freelist head (slot index + 1; 0 = none).
  std::vector<MatchSlot> match_pool_;
  std::uint32_t match_free_ = 0;
  // Overflow side map for 16-bit indegrees: (rank, op) -> excess over 0xFFFE.
  FlatMap<std::uint64_t, std::uint32_t> indegree_big_;
  // Far heap: pending events beyond the active bucket window (all pending
  // events whenever the core is paused).
  DaryHeap<Event, EventEarlier, 4> queue_;
  // Near-future window state (see drain_window). bucket_base_ == -1 means no
  // window is active; buckets/stragglers are empty at every pause point.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> stragglers_;
  SameTimeEarlier straggler_earlier_{};
  // std::push_heap builds a max-heap; invert the comparator to pop the
  // earliest (rank, key2) first.
  struct StragglerLater {
    bool operator()(const Event& a, const Event& b) const {
      return SameTimeEarlier{}(b, a);
    }
  } straggler_later_{};
  TimeNs bucket_base_ = -1;
  TimeNs bucket_cur_ = -1;
  TimeNs bucket_limit_ = -1;
  std::size_t bucket_hi_ = 0;        // max occupied bucket index + 1
  std::int64_t bucket_count_ = 0;    // events currently parked in buckets
  std::size_t pending_ = 0;          // events in heap + buckets + stragglers
  std::size_t heap_peak_ = 0;        // pending-event high-water (self-telemetry)
  std::int64_t total_ops_ = 0;
  // Ordering key of an in-flight arrival -> trace seq of its kMsgInject.
  // Populated only while tracing; empty (and untouched) otherwise.
  std::unordered_map<std::uint64_t, std::uint64_t> arrival_msg_seq_;
  // Injection context (failure rank/time/recovery), for deadlock diagnostics.
  std::vector<std::string> notes_;
  RunResult result_;
  // Flow mode (cfg_.fabric != nullptr). fabric_ is the advance-owner pointer:
  // set by SimCore on its single core (which then drives the fabric through
  // run_until_flow), left null on shard cores (ParEngine advances the shared
  // fabric at barriers). Exactly one of fabric_ / buffer_flow_submits_ is
  // active whenever cfg_.fabric is set.
  Fabric* fabric_ = nullptr;
  bool buffer_flow_submits_ = false;
  std::vector<FlowOut> flow_out_;         // shard-mode submissions, per window
  std::vector<FlowCompletion> flow_buf_;  // materialize_flows scratch
  // Shard-mode hooks (ParEngine): outgoing cross-shard messages and the
  // per-window pop record stream. Empty and unused in the serial engine.
  std::vector<LaneMsg> lane_;
  std::vector<PopRecord> pops_;
  bool record_pops_ = false;
  std::uint32_t pop_pushes_ = 0;   // pushes made by the pop in flight
  std::uint64_t emit_count_ = 0;   // trace events emitted so far
};

}  // namespace chksim::sim::detail
