#include "chksim/sim/par_engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "chksim/sim/engine_detail.hpp"
#include "chksim/support/parallel.hpp"

namespace chksim::sim {
namespace {

// Provisional trace ids: shard tag (1-based) in the top bits, a per-shard
// running counter (1-based) below. Ids never leave the engine — every ref
// is remapped to the real sink's sequence number at the barrier merge.
constexpr int kSeqBits = 48;
constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kSeqBits) - 1;

/// Per-shard trace buffer. Shards cannot write the real sink directly: sinks
/// assign sequence numbers in record order, and byte-identity requires the
/// serial order, which is only known at the barrier. So each shard's core
/// records into one of these, and the merge forwards the buffered events in
/// merged pop order — the real sink then assigns exactly the serial seqs.
class ProvisionalSink final : public TraceSink {
 public:
  explicit ProvisionalSink(std::uint64_t shard_tag) : tag_(shard_tag) {}

  std::uint64_t record(TraceEvent ev) override {
    buf.push_back(ev);
    return tag_ | ++issued_;
  }

  std::vector<TraceEvent> buf;  // events recorded since the last barrier
  std::size_t cursor = 0;       // forwarding position within buf

 private:
  const std::uint64_t tag_;
  std::uint64_t issued_ = 0;  // run-total: provisional ids index finals[]
};

}  // namespace

struct ParEngine::Snapshot::State {
  std::vector<detail::CoreImpl::SnapState> shards;
  std::int64_t sim_heap_size = 0;
  std::int64_t sim_heap_peak = 0;
  std::int64_t supersteps = 0;
  std::vector<std::string> notes;
  std::unique_ptr<Fabric> fabric;  // flow mode: the shared fabric's state
};

ParEngine::Snapshot::Snapshot() = default;
ParEngine::Snapshot::~Snapshot() = default;
ParEngine::Snapshot::Snapshot(Snapshot&&) noexcept = default;
ParEngine::Snapshot& ParEngine::Snapshot::operator=(Snapshot&&) noexcept = default;

struct ParEngine::Impl {
  struct Shard {
    Shard(const Program& p, const EngineConfig& c, RankId lo, RankId hi,
          bool tracing, std::uint64_t tag)
        : sink(tag), core(p, c, lo, hi, tracing ? &sink : nullptr) {}

    ProvisionalSink sink;
    detail::CoreImpl core;
    // Provisional id (1-based, per shard) -> final sink seq. Append-only
    // across the run, like the external sink itself: a rollback re-emits
    // events with fresh ids, but refs into pre-rollback history stay valid.
    std::vector<std::uint64_t> finals;
  };

  Impl(const Program& program, const EngineConfig& config)
      : prog_(program), cfg_(config) {
    if (!program.finalized())
      throw std::logic_error("ParEngine requires a finalized Program");
    detail::validate_flow_mode(config);
    detail::enforce_rss_budget(program, config);
    const int nranks = program.ranks();
    int n = config.shards < 1 ? 1 : config.shards;
    if (n > nranks) n = nranks;
    if (n > 1 && config.net.L < 1)
      throw std::logic_error(
          "ParEngine: shards > 1 requires net.L >= 1ns of lookahead");
    nshards_ = n;
    window_ = config.net.L >= 1 ? config.net.L : 1;
    if (config.fabric != nullptr) {
      // Flow mode: the superstep width must match the serial core's
      // flow_window() exactly — both paths materialize fabric completions at
      // the same horizons, which is what keeps the event-heap trajectory
      // (and hence every byte of RunResult) shard-invariant.
      fabric_ = config.fabric;
      window_ = std::min(window_, detail::CoreImpl::kBucketSpan);
      window_ = std::min(window_, fabric_->min_latency());
    }
    lo_.resize(static_cast<std::size_t>(n) + 1);
    for (int s = 0; s <= n; ++s)
      lo_[static_cast<std::size_t>(s)] = static_cast<RankId>(
          static_cast<std::int64_t>(nranks) * s / n);
    shards_.reserve(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      shards_.push_back(std::make_unique<Shard>(
          program, config, lo_[static_cast<std::size_t>(s)],
          lo_[static_cast<std::size_t>(s) + 1], config.trace != nullptr,
          static_cast<std::uint64_t>(s + 1) << kSeqBits));
      shards_.back()->core.record_pops_ = true;
      // Shard cores never touch the shared fabric mid-window: sends are
      // buffered and applied at the barrier (core.fabric_ stays null).
      shards_.back()->core.buffer_flow_submits_ = config.fabric != nullptr;
      sim_heap_size_ +=
          static_cast<std::int64_t>(shards_.back()->core.pending_events());
    }
    // The serial engine only pushes while seeding the ready frontier, so its
    // construction-time high-water equals the total frontier size.
    sim_heap_peak_ = sim_heap_size_;
  }

  int owner(RankId r) const {
    return static_cast<int>(std::upper_bound(lo_.begin() + 1, lo_.end(), r) -
                            (lo_.begin() + 1));
  }

  TimeNs shard_next_event_time() const {
    TimeNs best = -1;
    for (const auto& shp : shards_) {
      const TimeNs t = shp->core.next_event_time();
      if (t >= 0 && (best < 0 || t < best)) best = t;
    }
    return best;
  }

  TimeNs next_event_time() const {
    TimeNs best = shard_next_event_time();
    if (fabric_ != nullptr) {
      const TimeNs ft = fabric_->next_event();
      if (ft >= 0 && (best < 0 || ft < best)) best = ft;
    }
    return best;
  }

  /// Advance the shared fabric through `t` and deliver its finished message
  /// flows to their owning shards' heaps. The engine-level mirror of the
  /// serial core's materialize_flows: runs at the top of a superstep, before
  /// the shards process the window, so arrivals completing inside the window
  /// are in the pending sets — exactly when the serial core pushes them, so
  /// the heap-size replay counts them here too. Each kMsgInject's
  /// provisional arrival is amended to the realized one via the remap table
  /// (always resolvable: a flow completes >= min_latency after its inject
  /// pop, i.e. in a strictly later superstep).
  void deliver_flow_events(TimeNs t) {
    flow_buf_.clear();
    fabric_->advance(t, &flow_buf_);
    for (const FlowCompletion& c : flow_buf_) {
      std::uint64_t seq = 0;
      if (cfg_.trace != nullptr && c.req.seq != 0) {
        seq = remap(c.req.seq);
        cfg_.trace->amend(seq, c.req.src, c.finish, c.finish - c.uncontended);
      }
      detail::LaneMsg m;
      m.arrival = c.finish;
      m.key2 = c.req.key2;
      m.msg_seq = c.req.seq;  // provisional id: match refs remap at forwarding
      m.dst = c.req.dst;
      m.src = c.req.src;
      m.tag = c.req.tag;
      m.bytes32 = detail::checked_event_bytes(c.req.bytes);
      shards_[static_cast<std::size_t>(owner(m.dst))]->core.deliver(m);
      ++sim_heap_size_;
      if (sim_heap_size_ > sim_heap_peak_) sim_heap_peak_ = sim_heap_size_;
    }
  }

  void run_until(TimeNs t) {
    while (true) {
      const TimeNs nxt = next_event_time();
      if (nxt < 0 || nxt > t) break;
      // end = min(nxt + window - 1, t), written overflow-safe: callers pass
      // t = TimeNs max to mean "to completion".
      const TimeNs end = (t - nxt < window_ - 1) ? t : nxt + (window_ - 1);
      if (fabric_ != nullptr) deliver_flow_events(end);
      if (nshards_ > 1) {
        par::for_each_index(nshards_, nshards_, [&](std::int64_t s) {
          shards_[static_cast<std::size_t>(s)]->core.run_until(end);
        });
      } else {
        shards_[0]->core.run_until(end);
      }
      merge_window();
      ++supersteps_;
    }
  }

  bool step() {
    if (fabric_ != nullptr) {
      // Mirror the serial core's step(): materialize every fabric event up
      // to (and tying) the next engine event before popping.
      for (;;) {
        const TimeNs ft = fabric_->next_event();
        if (ft < 0) break;
        const TimeNs qt = shard_next_event_time();
        if (qt >= 0 && qt < ft) break;
        deliver_flow_events(ft);
      }
    }
    int best = -1;
    const detail::Event* bp = nullptr;
    for (int s = 0; s < nshards_; ++s) {
      const detail::Event* e = shards_[static_cast<std::size_t>(s)]->core.peek();
      if (e == nullptr) continue;
      if (best < 0 || detail::EventEarlier{}(*e, *bp)) {
        best = s;
        bp = e;
      }
    }
    if (best < 0) return false;
    shards_[static_cast<std::size_t>(best)]->core.step();
    merge_window();
    ++supersteps_;
    return true;
  }

  /// Map a provisional trace id to the final sink seq (0 maps to 0: "no
  /// ref"). Always resolvable at forwarding time — any referenced event
  /// precedes the referring one in merged pop order, including cross-shard
  /// message refs (the send pop is at least L before the match pop).
  std::uint64_t remap(std::uint64_t p) const {
    if (p == 0) return 0;
    return shards_[static_cast<std::size_t>(p >> kSeqBits) - 1]
        ->finals[static_cast<std::size_t>((p & kSeqMask) - 1)];
  }

  void merge_window() {
    const auto barrier_t0 = std::chrono::steady_clock::now();
    const bool tracing = cfg_.trace != nullptr;
    // k-way merge of the per-shard pop streams on (time, rank). Ranks are
    // disjoint across shards and the serial order visits equal-time events
    // as contiguous per-rank groups in increasing rank order, so this is
    // exactly the serial realized order; per-rank key order is already
    // baked into each stream. Streaming run consumption: shards own
    // contiguous rank ranges, so a stream's records sort below every other
    // head for long stretches — find the best head, then consume its run
    // until it reaches the second-best key, instead of re-scanning all
    // heads per record.
    pos_.assign(static_cast<std::size_t>(nshards_), 0);
    while (true) {
      int best = -1;
      const detail::PopRecord* bp = nullptr;
      TimeNs t2 = 0;
      RankId r2 = 0;
      bool have2 = false;
      for (int s = 0; s < nshards_; ++s) {
        const auto& v = shards_[static_cast<std::size_t>(s)]->core.pops_;
        const std::size_t i = pos_[static_cast<std::size_t>(s)];
        if (i >= v.size()) continue;
        const detail::PopRecord& r = v[i];
        if (best < 0 || r.time < bp->time ||
            (r.time == bp->time && r.rank < bp->rank)) {
          if (best >= 0) {
            t2 = bp->time;
            r2 = bp->rank;
            have2 = true;
          }
          best = s;
          bp = &r;
        } else if (!have2 || r.time < t2 || (r.time == t2 && r.rank < r2)) {
          t2 = r.time;
          r2 = r.rank;
          have2 = true;
        }
      }
      if (best < 0) break;
      Shard& sh = *shards_[static_cast<std::size_t>(best)];
      const auto& v = sh.core.pops_;
      std::size_t i = pos_[static_cast<std::size_t>(best)];
      do {
        const detail::PopRecord& r = v[i++];
        // Serial heap-size replay: the pop removes one event, then its
        // pushes raise the size monotonically — the post-push size is the
        // only candidate for a new high-water mark. Lane appends were
        // counted as pushes by the sender (the serial engine pushes the
        // arrival there); barrier deliveries are not (already accounted).
        sim_heap_size_ += static_cast<std::int64_t>(r.pushes) - 1;
        if (sim_heap_size_ > sim_heap_peak_) sim_heap_peak_ = sim_heap_size_;
        if (tracing && r.traces > 0) {
          for (std::uint32_t k = 0; k < r.traces; ++k) {
            TraceEvent ev = sh.sink.buf[sh.sink.cursor++];
            ev.ref = remap(ev.ref);
            ev.cause = remap(ev.cause);
            sh.finals.push_back(cfg_.trace->record(ev));
          }
        }
      } while (i < v.size() && (!have2 || v[i].time < t2 ||
                                (v[i].time == t2 && v[i].rank < r2)));
      pos_[static_cast<std::size_t>(best)] = i;
    }
    for (auto& shp : shards_) {
      assert(shp->sink.cursor == shp->sink.buf.size());
      shp->sink.buf.clear();
      shp->sink.cursor = 0;
      shp->core.pops_.clear();
    }
    // Deliver the cross-shard lanes into the destination heaps, one pass per
    // source lane. The heaps order by content and only grow during delivery,
    // so neither the delivery order nor the interleaving affects anything
    // observable (including each destination's pending-event high-water).
    for (auto& shp : shards_) {
      if (shp->core.lane_.size() > lane_peak_) lane_peak_ = shp->core.lane_.size();
      for (const detail::LaneMsg& m : shp->core.lane_)
        shards_[static_cast<std::size_t>(owner(m.dst))]->core.deliver(m);
      shp->core.lane_.clear();
    }
    // Apply the window's buffered flow submissions (flow mode). Shard order
    // is arbitrary but harmless: the fabric orders flows by content, never
    // by submission call order, and every submission's first effect is past
    // the window end — the next deliver_flow_events sees a fabric state
    // identical to the serial engine's.
    if (fabric_ != nullptr) {
      for (auto& shp : shards_) {
        for (const detail::FlowOut& f : shp->core.flow_out_)
          fabric_->submit(f.inject, f.req);
        shp->core.flow_out_.clear();
      }
    }
    barrier_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - barrier_t0)
                       .count();
  }

  void inject(const Injection& inj) {
    // The note stays engine-level (injection call order, like the serial
    // core); the shard applies the mechanical part.
    Injection local = inj;
    local.note.clear();
    shards_[static_cast<std::size_t>(owner(inj.rank))]->core.inject(local);
    if (inj.kind == Injection::Kind::kMessage) {
      // Mirror the serial heap accounting: an injected arrival is a push at
      // injection time.
      ++sim_heap_size_;
      if (sim_heap_size_ > sim_heap_peak_) sim_heap_peak_ = sim_heap_size_;
    }
    if (!inj.note.empty()) {
      if (notes_.size() >= 8) notes_.erase(notes_.begin());
      notes_.push_back(inj.note);
    }
  }

  RunResult take_result() {
    RunResult out;
    std::int64_t total = 0;
    for (const auto& shp : shards_) {
      const RunResult& r = shp->core.result_;
      total += shp->core.total_ops_;
      out.ops_executed += r.ops_executed;
      out.events_processed += r.events_processed;
      out.makespan = std::max(out.makespan, r.makespan);
    }
    out.completed = out.ops_executed == total;
    if (!out.completed) {
      std::string msg = "deadlock: unexecuted operations remain;";
      int shown = 0;
      for (const auto& shp : shards_)
        shp->core.append_deadlock_ranks(msg, shown);
      if (!notes_.empty()) {
        msg += " injected-failure context:";
        for (const std::string& note : notes_) msg += " [" + note + "]";
      }
      out.error = std::move(msg);
    }
    out.event_heap_peak = sim_heap_peak_;
    if (fabric_ != nullptr) out.fabric = fabric_->stats();
    out.ranks.reserve(static_cast<std::size_t>(prog_.ranks()));
    for (const auto& shp : shards_) {
      for (const auto& st : shp->core.states_) {
        out.match_arena_slots += static_cast<std::int64_t>(st.match_live_peak);
        out.ranks.push_back(st.stats);
      }
    }
    if (cfg_.record_op_finish) {
      // Per-shard arenas use shard-local offsets; re-base into the serial
      // rank-major layout (shards are contiguous rank ranges in order).
      out.op_finish_offset.reserve(static_cast<std::size_t>(prog_.ranks()) + 1);
      out.op_finish_offset.push_back(0);
      std::uint64_t base = 0;
      for (const auto& shp : shards_) {
        const auto& off = shp->core.result_.op_finish_offset;
        for (std::size_t i = 1; i < off.size(); ++i)
          out.op_finish_offset.push_back(base + off[i]);
        base += off.back();
        out.op_finish.insert(out.op_finish.end(),
                             shp->core.result_.op_finish.begin(),
                             shp->core.result_.op_finish.end());
      }
    }
    out.pdes_shards = nshards_;
    out.pdes_window = window_;
    out.pdes_supersteps = supersteps_;
    for (const auto& shp : shards_)
      out.pdes_shard_heap_peak =
          std::max(out.pdes_shard_heap_peak,
                   static_cast<std::int64_t>(shp->core.heap_peak_));
    out.pdes_lane_peak = static_cast<std::int64_t>(lane_peak_);
    out.pdes_barrier_ns = barrier_ns_;
    for (const auto& shp : shards_) {
      out.ws_bytes +=
          static_cast<std::int64_t>(shp->core.working_set_bytes());
      out.ws_match_slot_peak =
          std::max(out.ws_match_slot_peak,
                   static_cast<std::int64_t>(shp->core.match_pool_.size()));
    }
    return out;
  }

  const Program& prog_;
  const EngineConfig& cfg_;
  // Flow mode: the shared fabric (null in analytic mode). Advanced only at
  // superstep boundaries by this engine, never by the shard cores.
  Fabric* fabric_ = nullptr;
  std::vector<FlowCompletion> flow_buf_;  // deliver_flow_events scratch
  int nshards_ = 1;
  TimeNs window_ = 1;
  std::vector<RankId> lo_;  // shard s owns ranks [lo_[s], lo_[s+1])
  std::vector<std::unique_ptr<Shard>> shards_;
  // Abstract replay of the serial engine's heap-size trajectory (the
  // published event_heap_peak metric is shards-invariant because of this).
  std::int64_t sim_heap_size_ = 0;
  std::int64_t sim_heap_peak_ = 0;
  std::int64_t supersteps_ = 0;
  std::int64_t barrier_ns_ = 0;  // wall time in merge_window (telemetry only)
  std::size_t lane_peak_ = 0;
  std::vector<std::string> notes_;
  std::vector<std::size_t> pos_;  // merge scratch
};

ParEngine::ParEngine(const Program& program, const EngineConfig& config)
    : impl_(std::make_unique<Impl>(program, config)) {}

ParEngine::~ParEngine() = default;
ParEngine::ParEngine(ParEngine&&) noexcept = default;
ParEngine& ParEngine::operator=(ParEngine&&) noexcept = default;

void ParEngine::run_until(TimeNs t) { impl_->run_until(t); }
bool ParEngine::step() { return impl_->step(); }

bool ParEngine::idle() const {
  if (impl_->fabric_ != nullptr && impl_->fabric_->next_event() >= 0)
    return false;
  for (const auto& shp : impl_->shards_)
    if (!shp->core.idle()) return false;
  return true;
}

bool ParEngine::finished() const {
  std::int64_t done = 0, total = 0;
  for (const auto& shp : impl_->shards_) {
    done += shp->core.ops_executed();
    total += shp->core.total_ops_;
  }
  return done == total;
}

TimeNs ParEngine::next_event_time() const { return impl_->next_event_time(); }

TimeNs ParEngine::makespan() const {
  TimeNs m = 0;
  for (const auto& shp : impl_->shards_)
    m = std::max(m, shp->core.makespan());
  return m;
}

std::int64_t ParEngine::ops_executed() const {
  std::int64_t done = 0;
  for (const auto& shp : impl_->shards_) done += shp->core.ops_executed();
  return done;
}

void ParEngine::inject(const Injection& injection) { impl_->inject(injection); }

ParEngine::Snapshot ParEngine::snapshot() const {
  Snapshot snap;
  snap.state_ = std::make_unique<Snapshot::State>();
  snap.state_->shards.reserve(impl_->shards_.size());
  for (const auto& shp : impl_->shards_)
    snap.state_->shards.push_back(shp->core.save());
  snap.state_->sim_heap_size = impl_->sim_heap_size_;
  snap.state_->sim_heap_peak = impl_->sim_heap_peak_;
  snap.state_->supersteps = impl_->supersteps_;
  snap.state_->notes = impl_->notes_;
  if (impl_->fabric_ != nullptr) snap.state_->fabric = impl_->fabric_->clone();
  return snap;
}

void ParEngine::restore(const Snapshot& snap) {
  if (snap.state_ == nullptr)
    throw std::logic_error("ParEngine::restore: empty snapshot");
  if (snap.state_->shards.size() != impl_->shards_.size())
    throw std::logic_error("ParEngine::restore: shard count mismatch");
  for (std::size_t s = 0; s < impl_->shards_.size(); ++s)
    impl_->shards_[s]->core.load(snap.state_->shards[s]);
  impl_->sim_heap_size_ = snap.state_->sim_heap_size;
  impl_->sim_heap_peak_ = snap.state_->sim_heap_peak;
  impl_->supersteps_ = snap.state_->supersteps;
  impl_->notes_ = snap.state_->notes;
  if (impl_->fabric_ != nullptr) {
    if (snap.state_->fabric == nullptr)
      throw std::logic_error(
          "ParEngine::restore: flow-mode engine restored from a snapshot "
          "taken without a fabric");
    impl_->fabric_->restore(*snap.state_->fabric);
  }
}

RunResult ParEngine::take_result() { return impl_->take_result(); }

int ParEngine::shards() const { return impl_->nshards_; }
TimeNs ParEngine::window() const { return impl_->window_; }

}  // namespace chksim::sim
