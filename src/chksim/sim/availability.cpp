#include "chksim/sim/availability.hpp"

#include <algorithm>
#include <cassert>

namespace chksim::sim {

ListBlackouts::ListBlackouts(std::vector<std::vector<Interval>> per_rank)
    : per_rank_(std::move(per_rank)) {
  for (auto& list : per_rank_) {
    std::sort(list.begin(), list.end(),
              [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
    // Merge overlapping/abutting intervals and drop empty ones.
    std::vector<Interval> merged;
    for (const Interval& iv : list) {
      assert(iv.end >= iv.begin);
      if (iv.end == iv.begin) continue;
      if (!merged.empty() && iv.begin <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, iv.end);
      } else {
        merged.push_back(iv);
      }
    }
    list = std::move(merged);
  }
}

std::optional<Interval> ListBlackouts::next_blackout(RankId rank, TimeNs t) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= per_rank_.size()) return std::nullopt;
  const auto& list = per_rank_[static_cast<std::size_t>(rank)];
  // First interval with end > t.
  auto it = std::upper_bound(list.begin(), list.end(), t,
                             [](TimeNs v, const Interval& iv) { return v < iv.end; });
  if (it == list.end()) return std::nullopt;
  return *it;
}

TimeNs ListBlackouts::total(RankId rank) const {
  TimeNs sum = 0;
  if (rank < 0 || static_cast<std::size_t>(rank) >= per_rank_.size()) return 0;
  for (const Interval& iv : per_rank_[static_cast<std::size_t>(rank)]) sum += iv.duration();
  return sum;
}

PeriodicBlackouts::PeriodicBlackouts(TimeNs period, TimeNs duration, TimeNs phase)
    : period_(period), duration_(duration), common_phase_(phase) {
  assert(period > 0 && duration >= 0 && duration <= period && phase >= 0);
}

PeriodicBlackouts::PeriodicBlackouts(TimeNs period, TimeNs duration,
                                     std::vector<TimeNs> phases)
    : period_(period), duration_(duration), phases_(std::move(phases)) {
  assert(period > 0 && duration >= 0 && duration <= period);
  for ([[maybe_unused]] TimeNs p : phases_) assert(p >= 0);
}

void PeriodicBlackouts::set_active_window(TimeNs from, TimeNs until) {
  assert(from <= until);
  active_from_ = from;
  active_until_ = until;
}

TimeNs PeriodicBlackouts::phase_of(RankId rank) const {
  if (phases_.empty()) return common_phase_;
  assert(rank >= 0 && static_cast<std::size_t>(rank) < phases_.size());
  return phases_[static_cast<std::size_t>(rank)];
}

std::optional<Interval> PeriodicBlackouts::next_blackout(RankId rank, TimeNs t) const {
  if (duration_ == 0) return std::nullopt;
  const TimeNs phase = phase_of(rank);
  // First k such that interval end (phase + k*period + duration) > t.
  TimeNs k = 0;
  if (t >= phase + duration_) {
    k = (t - phase - duration_) / period_ + 1;
    // Division may overshoot by one when (t - phase - duration) is an exact
    // multiple; re-check the previous candidate.
    if (k > 0 && phase + (k - 1) * period_ + duration_ > t) --k;
  }
  TimeNs begin = phase + k * period_;
  if (begin < active_from_) {
    const TimeNs skip = (active_from_ - begin + period_ - 1) / period_;
    begin += skip * period_;
  }
  if (begin >= active_until_) return std::nullopt;
  return Interval{begin, begin + duration_};
}

PatternedBlackouts::PatternedBlackouts(TimeNs period, std::vector<TimeNs> durations,
                                       TimeNs phase)
    : period_(period), durations_(std::move(durations)), common_phase_(phase) {
  assert(period > 0 && phase >= 0 && !durations_.empty());
  for ([[maybe_unused]] TimeNs d : durations_) assert(d >= 0 && d <= period);
}

PatternedBlackouts::PatternedBlackouts(TimeNs period, std::vector<TimeNs> durations,
                                       std::vector<TimeNs> phases)
    : period_(period), durations_(std::move(durations)), phases_(std::move(phases)) {
  assert(period > 0 && !durations_.empty());
  for ([[maybe_unused]] TimeNs d : durations_) assert(d >= 0 && d <= period);
  for ([[maybe_unused]] TimeNs p : phases_) assert(p >= 0);
}

TimeNs PatternedBlackouts::phase_of(RankId rank) const {
  if (phases_.empty()) return common_phase_;
  assert(rank >= 0 && static_cast<std::size_t>(rank) < phases_.size());
  return phases_[static_cast<std::size_t>(rank)];
}

TimeNs PatternedBlackouts::mean_duration() const {
  TimeNs sum = 0;
  for (TimeNs d : durations_) sum += d;
  return sum / static_cast<TimeNs>(durations_.size());
}

std::optional<Interval> PatternedBlackouts::next_blackout(RankId rank, TimeNs t) const {
  const TimeNs phase = phase_of(rank);
  // Candidate occurrence: first k whose begin could have end > t. Zero-length
  // occurrences (duration 0) are skipped by advancing k.
  TimeNs k = 0;
  if (t > phase) k = (t - phase) / period_;
  if (k > 0) --k;  // step back one: the previous occurrence may still cover t
  for (int guard = 0; guard < 4 + static_cast<int>(durations_.size()); ++guard, ++k) {
    const TimeNs begin = phase + k * period_;
    const TimeNs dur =
        durations_[static_cast<std::size_t>(k % static_cast<TimeNs>(durations_.size()))];
    if (dur == 0) continue;
    if (begin + dur > t) return Interval{begin, begin + dur};
  }
  // Only reachable when every duration in the pattern is zero.
  return std::nullopt;
}

UnionBlackouts::UnionBlackouts(std::vector<const BlackoutSchedule*> parts)
    : parts_(std::move(parts)) {
  for ([[maybe_unused]] auto* p : parts_) assert(p != nullptr);
}

std::optional<Interval> UnionBlackouts::next_blackout(RankId rank, TimeNs t) const {
  // Earliest interval among parts, merged with any parts it overlaps so the
  // result sequence is non-overlapping and ordered.
  std::optional<Interval> best;
  for (const auto* part : parts_) {
    const auto iv = part->next_blackout(rank, t);
    if (!iv) continue;
    if (!best || iv->begin < best->begin) best = iv;
  }
  if (!best) return std::nullopt;
  // Extend across overlapping intervals from other parts (fixed point).
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto* part : parts_) {
      const auto iv = part->next_blackout(rank, best->begin);
      if (iv && iv->begin <= best->end && iv->end > best->end) {
        best->end = iv->end;
        grew = true;
      }
      // Also check intervals starting inside the current union.
      const auto iv2 = part->next_blackout(rank, best->end - 1);
      if (iv2 && iv2->begin <= best->end && iv2->end > best->end) {
        best->end = iv2->end;
        grew = true;
      }
    }
  }
  return best;
}

TimeNs Availability::next_available(RankId rank, TimeNs t) const {
  TimeNs cur = t;
  while (true) {
    const auto iv = schedule_->next_blackout(rank, cur);
    if (!iv || !iv->contains(cur)) return cur;
    cur = iv->end;
  }
}

TimeNs Availability::finish(RankId rank, TimeNs t, TimeNs work) const {
  assert(work >= 0);
  TimeNs cur = next_available(rank, t);
  if (work == 0) return cur;
  if (mode_ == Preemption::kPreemptive) {
    TimeNs remaining = work;
    while (true) {
      const auto iv = schedule_->next_blackout(rank, cur);
      if (!iv || cur + remaining <= iv->begin) return cur + remaining;
      remaining -= iv->begin - cur;
      cur = next_available(rank, iv->end);
    }
  }
  // Non-preemptive: first gap of at least `work`.
  while (true) {
    const auto iv = schedule_->next_blackout(rank, cur);
    if (!iv || cur + work <= iv->begin) return cur + work;
    cur = next_available(rank, iv->end);
  }
}

}  // namespace chksim::sim
