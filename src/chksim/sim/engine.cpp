#include "chksim/sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "chksim/sim/engine_detail.hpp"
#include "chksim/sim/par_engine.hpp"

namespace chksim::sim {

TimeNs RunResult::total_recv_wait() const {
  TimeNs sum = 0;
  for (const RankStats& r : ranks) sum = saturating_add(sum, r.recv_wait);
  return sum;
}

double RunResult::mean_cpu_busy() const {
  if (ranks.empty()) return 0;
  double sum = 0;
  for (const RankStats& r : ranks) sum += static_cast<double>(r.cpu_busy);
  return sum / static_cast<double>(ranks.size());
}

RunResult slice_result(const RunResult& whole, RankId begin, RankId end) {
  const auto n = static_cast<RankId>(whole.ranks.size());
  if (begin < 0 || end > n || begin >= end)
    throw std::invalid_argument("slice_result: bad rank range [" +
                                std::to_string(begin) + ", " +
                                std::to_string(end) + ") of " + std::to_string(n));
  RunResult out;
  out.completed = whole.completed;
  out.error = whole.error;
  out.ranks.assign(whole.ranks.begin() + begin, whole.ranks.begin() + end);
  for (const RankStats& r : out.ranks) {
    out.makespan = std::max(out.makespan, r.finish_time);
    out.ops_executed += r.sends + r.recvs + r.calcs;
  }
  if (whole.has_op_finish()) {
    const std::uint64_t lo = whole.op_finish_offset[static_cast<std::size_t>(begin)];
    const std::uint64_t hi = whole.op_finish_offset[static_cast<std::size_t>(end)];
    out.op_finish.assign(whole.op_finish.begin() + static_cast<std::ptrdiff_t>(lo),
                         whole.op_finish.begin() + static_cast<std::ptrdiff_t>(hi));
    out.op_finish_offset.reserve(static_cast<std::size_t>(end - begin) + 1);
    for (RankId r = begin; r <= end; ++r)
      out.op_finish_offset.push_back(
          whole.op_finish_offset[static_cast<std::size_t>(r)] - lo);
  }
  return out;
}

WorkingSetEstimate estimate_working_set(const Program& program,
                                        const EngineConfig& config) {
  WorkingSetEstimate e;
  e.ranks = program.ranks();
  e.shards = config.shards < 1 ? 1 : std::min<int>(config.shards, program.ranks());
  e.program_bytes = static_cast<std::int64_t>(program.storage_bytes());
  // Fitted per-rank model (see docs/PERFORMANCE.md §3): RankState itself,
  // the two per-rank FlatMaps at their initial 16 slots, and a handful of
  // live pooled match slots; plus the 16-bit indegree entry per op.
  constexpr std::int64_t kPerRankBytes =
      static_cast<std::int64_t>(sizeof(detail::RankState)) + 16 * 16 + 16 * 24 +
      6 * static_cast<std::int64_t>(sizeof(detail::MatchSlot));
  e.rank_state_bytes = e.ranks * kPerRankBytes + program.stats().ops * 2;
  // Event-side structures: far heap + window buckets hold O(ranks) events in
  // the steady state; the sharded engine additionally records a PopRecord
  // per event per window. 256 B/rank covers both with margin.
  e.event_bytes = e.ranks * 256;
  e.total_bytes = e.program_bytes + e.rank_state_bytes + e.event_bytes +
                  (std::int64_t{32} << 20);  // fixed slack
  return e;
}

namespace detail {

void validate_flow_mode(const EngineConfig& config) {
  if (config.fabric == nullptr) return;
  if (config.net.L < 1)
    throw std::invalid_argument(
        "sim: flow mode (EngineConfig::fabric) requires net.L >= 1 ns — the "
        "conservative lookahead both engine paths window on");
  if (config.fabric->min_latency() < 1)
    throw std::invalid_argument(
        "sim: flow mode requires Fabric::min_latency() >= 1 ns (determinism "
        "contract; see sim/fabric.hpp)");
}

void enforce_rss_budget(const Program& program, const EngineConfig& config) {
  if (config.rss_budget_mib <= 0) return;
  const WorkingSetEstimate e = estimate_working_set(program, config);
  const std::int64_t budget = config.rss_budget_mib << 20;
  if (e.total_bytes <= budget) return;
  const auto mib = [](std::int64_t b) { return (b + (1 << 19)) >> 20; };
  // Working set scales near-linearly with ranks; suggest the largest power
  // of two that fits with ~10% headroom.
  std::int64_t fit = static_cast<std::int64_t>(
      0.9 * static_cast<double>(e.ranks) * static_cast<double>(budget) /
      static_cast<double>(e.total_bytes));
  std::int64_t suggested = 1;
  while (suggested * 2 <= fit) suggested *= 2;
  std::string msg =
      "sim: estimated working set ~" + std::to_string(mib(e.total_bytes)) +
      " MiB exceeds --rss-budget-mib " + std::to_string(config.rss_budget_mib) +
      "\n  program storage : " + std::to_string(mib(e.program_bytes)) +
      " MiB\n  rank/match state: " + std::to_string(mib(e.rank_state_bytes)) +
      " MiB (" + std::to_string(e.ranks) + " ranks, " +
      std::to_string(e.shards) + " shard(s))\n  event structures: " +
      std::to_string(mib(e.event_bytes)) +
      " MiB\n  suggested max ranks within budget: ~" +
      std::to_string(fit > 0 ? suggested : 0) +
      "\n  note: runs beyond 64 Ki ranks should use the sharded engine "
      "(--shards N): bounded-window supersteps keep each shard's live event "
      "set cache-sized while output stays byte-identical to the serial "
      "engine.";
  throw std::runtime_error(msg);
}

}  // namespace detail

// The event-processing machinery lives in engine_detail.hpp (shared with the
// sharded ParEngine); SimCore is the full-range serial instantiation.
struct SimCore::Impl : detail::CoreImpl {
  Impl(const Program& program, const EngineConfig& config)
      : detail::CoreImpl(program, config, 0, program.ranks(), config.trace) {
    // The serial core owns fabric advancement (flow mode).
    fabric_ = config.fabric;
  }
};

struct SimCore::Snapshot::State {
  detail::CoreImpl::SnapState core;
};

SimCore::Snapshot::Snapshot() = default;
SimCore::Snapshot::~Snapshot() = default;
SimCore::Snapshot::Snapshot(Snapshot&&) noexcept = default;
SimCore::Snapshot& SimCore::Snapshot::operator=(Snapshot&&) noexcept = default;

SimCore::SimCore(const Program& program, const EngineConfig& config) {
  if (!program.finalized())
    throw std::logic_error("SimCore requires a finalized Program");
  detail::validate_flow_mode(config);
  detail::enforce_rss_budget(program, config);
  impl_ = std::make_unique<Impl>(program, config);
}

SimCore::~SimCore() = default;
SimCore::SimCore(SimCore&&) noexcept = default;
SimCore& SimCore::operator=(SimCore&&) noexcept = default;

void SimCore::run_until(TimeNs t) { impl_->run_until(t); }
bool SimCore::step() { return impl_->step(); }
bool SimCore::idle() const { return impl_->idle(); }
bool SimCore::finished() const { return impl_->finished(); }
TimeNs SimCore::next_event_time() const { return impl_->next_event_time(); }
TimeNs SimCore::makespan() const { return impl_->makespan(); }
std::int64_t SimCore::ops_executed() const { return impl_->ops_executed(); }
void SimCore::inject(const Injection& injection) { impl_->inject(injection); }

SimCore::Snapshot SimCore::snapshot() const {
  Snapshot snap;
  snap.state_ = std::make_unique<Snapshot::State>();
  snap.state_->core = impl_->save();
  return snap;
}

void SimCore::restore(const Snapshot& snap) {
  if (snap.state_ == nullptr)
    throw std::logic_error("SimCore::restore: empty snapshot");
  impl_->load(snap.state_->core);
}

RunResult SimCore::take_result() { return impl_->take_result(); }

RunResult Engine::run(const Program& program, const EngineConfig& config) const {
  if (!program.finalized())
    throw std::logic_error("Engine::run requires a finalized Program");
  // Sharded path: sound only with positive lookahead (net.L >= 1ns) and
  // more than one rank to partition; otherwise fall back to the serial core,
  // which produces the identical result either way.
  if (config.shards > 1 && config.net.L >= 1 && program.ranks() > 1) {
    ParEngine engine(program, config);
    engine.run_until(std::numeric_limits<TimeNs>::max());
    return engine.take_result();
  }
  SimCore core(program, config);
  core.run_until(std::numeric_limits<TimeNs>::max());
  return core.take_result();
}

}  // namespace chksim::sim
