#include "chksim/sim/engine.hpp"

#include <limits>
#include <stdexcept>

#include "chksim/sim/engine_detail.hpp"
#include "chksim/sim/par_engine.hpp"

namespace chksim::sim {

TimeNs RunResult::total_recv_wait() const {
  TimeNs sum = 0;
  for (const RankStats& r : ranks) sum = saturating_add(sum, r.recv_wait);
  return sum;
}

double RunResult::mean_cpu_busy() const {
  if (ranks.empty()) return 0;
  double sum = 0;
  for (const RankStats& r : ranks) sum += static_cast<double>(r.cpu_busy);
  return sum / static_cast<double>(ranks.size());
}

// The event-processing machinery lives in engine_detail.hpp (shared with the
// sharded ParEngine); SimCore is the full-range serial instantiation.
struct SimCore::Impl : detail::CoreImpl {
  Impl(const Program& program, const EngineConfig& config)
      : detail::CoreImpl(program, config, 0, program.ranks(), config.trace) {}
};

struct SimCore::Snapshot::State {
  detail::CoreImpl::SnapState core;
};

SimCore::Snapshot::Snapshot() = default;
SimCore::Snapshot::~Snapshot() = default;
SimCore::Snapshot::Snapshot(Snapshot&&) noexcept = default;
SimCore::Snapshot& SimCore::Snapshot::operator=(Snapshot&&) noexcept = default;

SimCore::SimCore(const Program& program, const EngineConfig& config) {
  if (!program.finalized())
    throw std::logic_error("SimCore requires a finalized Program");
  impl_ = std::make_unique<Impl>(program, config);
}

SimCore::~SimCore() = default;
SimCore::SimCore(SimCore&&) noexcept = default;
SimCore& SimCore::operator=(SimCore&&) noexcept = default;

void SimCore::run_until(TimeNs t) { impl_->run_until(t); }
bool SimCore::step() { return impl_->step(); }
bool SimCore::idle() const { return impl_->idle(); }
bool SimCore::finished() const { return impl_->finished(); }
TimeNs SimCore::next_event_time() const { return impl_->next_event_time(); }
TimeNs SimCore::makespan() const { return impl_->makespan(); }
std::int64_t SimCore::ops_executed() const { return impl_->ops_executed(); }
void SimCore::inject(const Injection& injection) { impl_->inject(injection); }

SimCore::Snapshot SimCore::snapshot() const {
  Snapshot snap;
  snap.state_ = std::make_unique<Snapshot::State>();
  snap.state_->core = impl_->save();
  return snap;
}

void SimCore::restore(const Snapshot& snap) {
  if (snap.state_ == nullptr)
    throw std::logic_error("SimCore::restore: empty snapshot");
  impl_->load(snap.state_->core);
}

RunResult SimCore::take_result() { return impl_->take_result(); }

RunResult Engine::run(const Program& program, const EngineConfig& config) const {
  if (!program.finalized())
    throw std::logic_error("Engine::run requires a finalized Program");
  // Sharded path: sound only with positive lookahead (net.L >= 1ns) and
  // more than one rank to partition; otherwise fall back to the serial core,
  // which produces the identical result either way.
  if (config.shards > 1 && config.net.L >= 1 && program.ranks() > 1) {
    ParEngine engine(program, config);
    engine.run_until(std::numeric_limits<TimeNs>::max());
    return engine.take_result();
  }
  SimCore core(program, config);
  core.run_until(std::numeric_limits<TimeNs>::max());
  return core.take_result();
}

}  // namespace chksim::sim
