#include "chksim/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>

namespace chksim::sim {

TimeNs RunResult::total_recv_wait() const {
  TimeNs sum = 0;
  for (const RankStats& r : ranks) sum = saturating_add(sum, r.recv_wait);
  return sum;
}

double RunResult::mean_cpu_busy() const {
  if (ranks.empty()) return 0;
  double sum = 0;
  for (const RankStats& r : ranks) sum += static_cast<double>(r.cpu_busy);
  return sum / static_cast<double>(ranks.size());
}

namespace {

enum class EventKind : std::uint8_t { kReady, kArrival };

struct Event {
  TimeNs time = 0;
  std::uint64_t seq = 0;  // tie-breaker: strict FIFO among equal-time events
  EventKind kind = EventKind::kReady;
  RankId rank = -1;   // kReady: executing rank; kArrival: destination rank
  OpIndex op = kInvalidOp;  // kReady only
  RankId src = -1;    // kArrival only
  Tag tag = 0;        // kArrival only
  Bytes bytes = 0;    // kArrival only
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct PostedRecv {
  OpIndex op;
  TimeNs post_time;
};

struct ArrivedMsg {
  TimeNs arrival;
  Bytes bytes;
  std::uint64_t msg_seq = 0;  // tracing only
};

// Match key: (source rank, tag) packed into 64 bits.
std::uint64_t match_key(RankId src, Tag tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Compact FIFO. std::deque is unsuitable here: libstdc++ allocates a 512 B
/// chunk per deque even when empty, and simulations at scale hold millions
/// of (mostly empty) match queues.
template <typename T>
class SmallFifo {
 public:
  bool empty() const { return head_ == items_.size(); }
  void push(T v) { items_.push_back(std::move(v)); }
  T pop() {
    T v = items_[head_++];
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
      if (items_.capacity() > 64) items_.shrink_to_fit();
    }
    return v;
  }
  std::size_t size() const { return items_.size() - head_; }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
};

struct MatchQueues {
  SmallFifo<PostedRecv> posted;
  SmallFifo<ArrivedMsg> arrived;
};

struct RankState {
  TimeNs cpu_free = 0;
  TimeNs nic_free = 0;
  std::vector<std::uint32_t> indegree;
  std::unordered_map<std::uint64_t, MatchQueues> match;
  std::unordered_map<RankId, TimeNs> chan_last_arrival;  // per-source FIFO clamp
  RankStats stats;
  TimeNs blackout_traced = 0;  // tracing only: blackout intervals emitted up to here
};

class Run {
 public:
  Run(const Program& program, const EngineConfig& config)
      : prog_(program),
        cfg_(config),
        trace_(config.trace),
        avail_(config.blackouts != nullptr
                   ? static_cast<const BlackoutSchedule*>(config.blackouts)
                   : static_cast<const BlackoutSchedule*>(&no_blackouts_),
              config.preemption) {}

  RunResult execute() {
    const int nranks = prog_.ranks();
    states_.resize(static_cast<std::size_t>(nranks));
    if (cfg_.record_op_finish) result_.op_finish.resize(static_cast<std::size_t>(nranks));
    std::int64_t total_ops = 0;
    for (RankId r = 0; r < nranks; ++r) {
      const auto& ops = prog_.ops(r);
      auto& st = states_[static_cast<std::size_t>(r)];
      st.indegree.resize(ops.size());
      if (cfg_.record_op_finish)
        result_.op_finish[static_cast<std::size_t>(r)].assign(ops.size(), -1);
      for (OpIndex i = 0; i < ops.size(); ++i) {
        st.indegree[i] = ops[i].indegree;
        if (ops[i].indegree == 0) push_ready(0, r, i);
      }
      total_ops += static_cast<std::int64_t>(ops.size());
    }

    while (!queue_.empty()) {
      const Event ev = queue_.top();
      queue_.pop();
      ++result_.events_processed;
      if (ev.kind == EventKind::kReady) {
        execute_op(ev.rank, ev.op, ev.time);
      } else {
        handle_arrival(ev.rank, ev.src, ev.tag, ev.bytes, ev.time,
                       trace_ != nullptr ? take_arrival_msg_seq(ev.seq) : 0);
      }
    }

    result_.completed = result_.ops_executed == total_ops;
    if (!result_.completed) describe_deadlock();
    result_.ranks.reserve(static_cast<std::size_t>(nranks));
    for (auto& st : states_) result_.ranks.push_back(st.stats);
    return std::move(result_);
  }

 private:
  void push_ready(TimeNs t, RankId r, OpIndex i) {
    Event ev;
    ev.time = t;
    ev.seq = next_seq_++;
    ev.kind = EventKind::kReady;
    ev.rank = r;
    ev.op = i;
    queue_.push(ev);
  }

  void push_arrival(TimeNs t, RankId dst, RankId src, Tag tag, Bytes bytes,
                    std::uint64_t msg_seq) {
    Event ev;
    ev.time = t;
    ev.seq = next_seq_++;
    ev.kind = EventKind::kArrival;
    ev.rank = dst;
    ev.src = src;
    ev.tag = tag;
    ev.bytes = bytes;
    // The kMsgInject trace seq rides in a side table rather than in Event:
    // growing the priority-queue element would tax the untraced hot path.
    if (msg_seq != 0) arrival_msg_seq_.emplace(ev.seq, msg_seq);
    queue_.push(ev);
  }

  std::uint64_t take_arrival_msg_seq(std::uint64_t event_seq) {
    const auto it = arrival_msg_seq_.find(event_seq);
    if (it == arrival_msg_seq_.end()) return 0;
    const std::uint64_t v = it->second;
    arrival_msg_seq_.erase(it);
    return v;
  }

  // --- Tracing (all no-ops unless cfg_.trace is set) ---------------------
  //
  // The per-op emission blocks are [[gnu::noinline, gnu::cold]]: inlined into
  // execute_op/do_match they push those functions past the inliner's budget
  // and evict the untraced hot path from the instruction cache.

  std::uint64_t emit(TraceEventKind kind, RankId rank, TimeNs t0, TimeNs t1,
                     TimeNs stall = 0, RankId peer = -1, OpIndex op = kInvalidOp,
                     Tag tag = 0, Bytes bytes = 0, std::uint64_t ref = 0) {
    TraceEvent ev;
    ev.ref = ref;
    ev.t0 = t0;
    ev.t1 = t1;
    ev.stall = stall;
    ev.bytes = bytes;
    ev.rank = rank;
    ev.peer = peer;
    ev.op = op;
    ev.tag = tag;
    ev.kind = kind;
    return trace_->record(ev);
  }

  /// Emit each blackout interval of `rank` overlapping [from, to) exactly
  /// once across the whole run (ops sharing a blackout do not duplicate it).
  void trace_blackouts(RankId r, TimeNs from, TimeNs to) {
    if (cfg_.blackouts == nullptr) return;
    auto& traced = states_[static_cast<std::size_t>(r)].blackout_traced;
    TimeNs t = std::max(from, traced);
    while (t < to) {
      const std::optional<Interval> b = cfg_.blackouts->next_blackout(r, t);
      if (!b.has_value() || b->begin >= to) break;
      if (b->end > traced) {
        emit(TraceEventKind::kBlackout, r, b->begin, b->end);
        traced = b->end;
      }
      t = b->end;
    }
  }

  void execute_op(RankId r, OpIndex i, TimeNs t) {
    const Op& op = prog_.ops(r)[i];
    auto& st = states_[static_cast<std::size_t>(r)];
    switch (op.kind) {
      case OpKind::kCalc: {
        const TimeNs start = std::max(t, st.cpu_free);
        const TimeNs end = avail_.finish(r, start, op.value);
        st.cpu_free = end;
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, op.value);
        ++st.stats.calcs;
        if (trace_ != nullptr) trace_calc(r, i, start, end, op.value);
        complete(r, i, end);
        break;
      }
      case OpKind::kSend: {
        const Bytes bytes = op.value;
        TimeNs cpu_work = cfg_.net.send_cpu(bytes);
        if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_send_cpu(r, op.peer, bytes);
        const TimeNs s0 = std::max({t, st.cpu_free, st.nic_free});
        const TimeNs end = avail_.finish(r, s0, cpu_work);
        st.cpu_free = end;
        st.nic_free = end + cfg_.net.nic_gap(bytes);
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
        ++st.stats.sends;
        st.stats.bytes_sent = saturating_add(st.stats.bytes_sent, bytes);

        // Eager: payload leaves at `end`. Rendezvous: a zero-byte RTS leaves
        // at `end`; the payload path is computed at match time.
        TimeNs arrival = cfg_.net.rendezvous(bytes) ? end + cfg_.net.L
                                                    : end + cfg_.net.wire_time(bytes);
        // Per-channel FIFO (MPI non-overtaking).
        auto& dst_state = states_[static_cast<std::size_t>(op.peer)];
        TimeNs& last = dst_state.chan_last_arrival[r];
        arrival = std::max(arrival, last);
        last = arrival;
        std::uint64_t msg_seq = 0;
        if (trace_ != nullptr)
          msg_seq = trace_send(r, i, op, s0, end, cpu_work, arrival, bytes);
        push_arrival(arrival, op.peer, r, op.tag, bytes, msg_seq);
        complete(r, i, end);
        break;
      }
      case OpKind::kRecv: {
        const std::uint64_t key = match_key(op.peer, op.tag);
        auto& mq = st.match[key];
        if (!mq.arrived.empty()) {
          do_match(r, i, t, mq.arrived.pop());
        } else {
          mq.posted.push(PostedRecv{i, t});
        }
        break;
      }
    }
  }

  void handle_arrival(RankId dst, RankId src, Tag tag, Bytes bytes, TimeNs t,
                      std::uint64_t msg_seq) {
    auto& st = states_[static_cast<std::size_t>(dst)];
    auto& mq = st.match[match_key(src, tag)];
    if (!mq.posted.empty()) {
      const PostedRecv pr = mq.posted.pop();
      do_match(dst, pr.op, pr.post_time, ArrivedMsg{t, bytes, msg_seq});
    } else {
      mq.arrived.push(ArrivedMsg{t, bytes, msg_seq});
    }
  }

  void do_match(RankId r, OpIndex i, TimeNs post_time, const ArrivedMsg& msg) {
    const Op& op = prog_.ops(r)[i];
    auto& st = states_[static_cast<std::size_t>(r)];
    TimeNs data_arrival = msg.arrival;
    const bool rendezvous = cfg_.net.rendezvous(msg.bytes);
    if (rendezvous) {
      // msg.arrival is the RTS arrival; the payload moves only after both
      // sides are ready, plus the CTS round trip and re-injection.
      const TimeNs m = std::max(post_time, msg.arrival);
      data_arrival = m + cfg_.net.control_time() + cfg_.net.o + cfg_.net.wire_time(msg.bytes) - cfg_.net.L
                     + cfg_.net.L;  // = m + (o+L) + o + L + G*bytes
    }
    TimeNs cpu_work = cfg_.net.recv_cpu(msg.bytes);
    if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_recv_cpu(op.peer, r, msg.bytes);
    const TimeNs start = std::max(data_arrival, st.cpu_free);
    const TimeNs end = avail_.finish(r, start, cpu_work);
    st.cpu_free = end;
    st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
    ++st.stats.recvs;
    if (data_arrival > post_time)
      st.stats.recv_wait =
          saturating_add(st.stats.recv_wait, data_arrival - post_time);
    if (trace_ != nullptr)
      trace_match(r, i, op, post_time, msg, data_arrival, rendezvous, start,
                  end, cpu_work);
    complete(r, i, end);
  }

  [[gnu::noinline, gnu::cold]] void trace_calc(RankId r, OpIndex i, TimeNs start,
                                               TimeNs end, TimeNs work) {
    trace_blackouts(r, start, end);
    emit(TraceEventKind::kCalc, r, start, end, end - start - work,
         /*peer=*/-1, i);
  }

  [[gnu::noinline, gnu::cold]] std::uint64_t trace_send(RankId r, OpIndex i,
                                                        const Op& op, TimeNs s0,
                                                        TimeNs end, TimeNs cpu_work,
                                                        TimeNs arrival, Bytes bytes) {
    trace_blackouts(r, s0, end);
    emit(TraceEventKind::kSendOp, r, s0, end, end - s0 - cpu_work, op.peer, i,
         op.tag, bytes);
    const std::uint64_t msg_seq = emit(TraceEventKind::kMsgInject, r, end,
                                       arrival, 0, op.peer, i, op.tag, bytes);
    if (cfg_.net.rendezvous(bytes))
      emit(TraceEventKind::kRts, r, end, arrival, 0, op.peer, i, op.tag, bytes);
    return msg_seq;
  }

  [[gnu::noinline, gnu::cold]] void trace_match(RankId r, OpIndex i, const Op& op,
                                                TimeNs post_time,
                                                const ArrivedMsg& msg,
                                                TimeNs data_arrival, bool rendezvous,
                                                TimeNs start, TimeNs end,
                                                TimeNs cpu_work) {
    trace_blackouts(r, start, end);
    if (rendezvous)
      emit(TraceEventKind::kCts, r, std::max(post_time, msg.arrival),
           data_arrival, 0, op.peer, i, op.tag, msg.bytes, msg.msg_seq);
    emit(TraceEventKind::kMsgDeliver, r, data_arrival, data_arrival, 0, op.peer,
         i, op.tag, msg.bytes, msg.msg_seq);
    if (data_arrival > post_time)
      emit(TraceEventKind::kRecvWait, r, post_time, data_arrival, 0, op.peer, i,
           op.tag, msg.bytes, msg.msg_seq);
    emit(TraceEventKind::kRecvOp, r, start, end, end - start - cpu_work,
         op.peer, i, op.tag, msg.bytes, msg.msg_seq);
  }

  void complete(RankId r, OpIndex i, TimeNs t) {
    auto& st = states_[static_cast<std::size_t>(r)];
    ++result_.ops_executed;
    st.stats.finish_time = std::max(st.stats.finish_time, t);
    result_.makespan = std::max(result_.makespan, t);
    if (cfg_.record_op_finish) result_.op_finish[static_cast<std::size_t>(r)][i] = t;
    const Op& op = prog_.ops(r)[i];
    const auto& succ = prog_.successors(r);
    for (std::uint32_t k = 0; k < op.succ_count; ++k) {
      const OpIndex v = succ[op.succ_begin + k];
      assert(st.indegree[v] > 0);
      if (--st.indegree[v] == 0) push_ready(t, r, v);
    }
  }

  void describe_deadlock() {
    std::string msg = "deadlock: unexecuted operations remain;";
    int shown = 0;
    for (RankId r = 0; r < prog_.ranks() && shown < 8; ++r) {
      const auto& st = states_[static_cast<std::size_t>(r)];
      std::int64_t pending_recvs = 0;
      for (const auto& [key, mq] : st.match) {
        (void)key;
        pending_recvs += static_cast<std::int64_t>(mq.posted.size());
      }
      if (pending_recvs > 0) {
        msg += " rank " + std::to_string(r) + " has " +
               std::to_string(pending_recvs) + " unmatched recv(s);";
        ++shown;
      }
    }
    result_.error = msg;
  }

  const Program& prog_;
  const EngineConfig& cfg_;
  TraceSink* const trace_;
  NoBlackouts no_blackouts_;
  Availability avail_;
  std::vector<RankState> states_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_ = 0;
  // Event seq of an in-flight arrival -> trace seq of its kMsgInject.
  // Populated only while tracing; empty (and untouched) otherwise.
  std::unordered_map<std::uint64_t, std::uint64_t> arrival_msg_seq_;
  RunResult result_;
};

}  // namespace

RunResult Engine::run(const Program& program, const EngineConfig& config) const {
  if (!program.finalized())
    throw std::logic_error("Engine::run requires a finalized Program");
  Run run(program, config);
  return run.execute();
}

}  // namespace chksim::sim
