#include "chksim/sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "chksim/support/dary_heap.hpp"
#include "chksim/support/flat_map.hpp"

namespace chksim::sim {

TimeNs RunResult::total_recv_wait() const {
  TimeNs sum = 0;
  for (const RankStats& r : ranks) sum = saturating_add(sum, r.recv_wait);
  return sum;
}

double RunResult::mean_cpu_busy() const {
  if (ranks.empty()) return 0;
  double sum = 0;
  for (const RankStats& r : ranks) sum += static_cast<double>(r.cpu_busy);
  return sum / static_cast<double>(ranks.size());
}

namespace {

/// One pending event, packed to 40 bytes: the heap moves events around on
/// every sift, so element size is hot. The kind rides in seq_kind's low bit
/// (the shifted seq keeps its strict FIFO tie-break order), and the
/// kReady-only / kArrival-only fields share storage.
struct Event {
  TimeNs time = 0;
  std::uint64_t seq_kind = 0;  // (push seq << 1) | kind; kind: 0 ready, 1 arrival
  Bytes bytes = 0;             // kArrival payload size
  RankId rank = -1;            // kReady: executing rank; kArrival: destination
  union {
    OpIndex op = kInvalidOp;   // kReady
    RankId src;                // kArrival
  };
  Tag tag = 0;                 // kArrival

  bool is_arrival() const { return (seq_kind & 1) != 0; }
};

struct EventEarlier {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_kind < b.seq_kind;
  }
};

struct PostedRecv {
  OpIndex op;
  TimeNs post_time;
};

struct ArrivedMsg {
  TimeNs arrival;
  Bytes bytes;
  std::uint64_t msg_seq = 0;  // tracing only
};

// Match key: (source rank, tag) packed into 64 bits.
std::uint64_t match_key(RankId src, Tag tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

/// Compact FIFO. std::deque is unsuitable here: libstdc++ allocates a 512 B
/// chunk per deque even when empty, and simulations at scale hold millions
/// of (mostly empty) match queues.
///
/// Two properties matter on the hot path:
///  * the first two elements live inline — in the dominant pattern (one
///    message, one receive per (src, tag) key) a queue never heap-allocates;
///  * the consumed prefix of the spill vector is reclaimed: on full drain the
///    backing vector is released, and while non-empty the head indices are
///    recycled once they dominate the storage. Without the latter, a queue
///    that never fully drains (producer steadily ahead of its consumer)
///    holds every element it ever saw until the end of the run.
template <typename T>
class CompactFifo {
 public:
  bool empty() const { return inline_head_ == inline_count_ && spill_empty(); }

  void push(T v) {
    if (spill_empty() && inline_count_ < kInline) {
      inline_[inline_count_++] = std::move(v);
      return;
    }
    spill_.push_back(std::move(v));
  }

  T pop() {
    if (inline_head_ < inline_count_) {
      T v = std::move(inline_[inline_head_++]);
      if (inline_head_ == inline_count_) inline_head_ = inline_count_ = 0;
      return v;
    }
    T v = std::move(spill_[spill_head_++]);
    if (spill_head_ == spill_.size()) {
      spill_.clear();
      spill_head_ = 0;
      if (spill_.capacity() > 64) spill_.shrink_to_fit();
    } else if (spill_head_ >= 32 && spill_head_ * 2 >= spill_.size()) {
      spill_.erase(spill_.begin(),
                   spill_.begin() + static_cast<std::ptrdiff_t>(spill_head_));
      spill_head_ = 0;
    }
    return v;
  }

  std::size_t size() const {
    return (inline_count_ - inline_head_) + (spill_.size() - spill_head_);
  }

 private:
  static constexpr std::uint8_t kInline = 2;

  bool spill_empty() const { return spill_head_ == spill_.size(); }

  T inline_[kInline]{};
  std::uint8_t inline_head_ = 0;
  std::uint8_t inline_count_ = 0;
  std::vector<T> spill_;
  std::size_t spill_head_ = 0;
};

struct MatchQueues {
  CompactFifo<PostedRecv> posted;
  CompactFifo<ArrivedMsg> arrived;
};

struct RankState {
  TimeNs cpu_free = 0;
  TimeNs nic_free = 0;
  std::vector<std::uint32_t> indegree;
  // Match state arena: the flat index maps (src, tag) to slot + 1 in the
  // pool (0 = unassigned), so rehashes shuffle 16-byte entries while the
  // queues themselves stay put in one contiguous allocation.
  FlatMap<std::uint64_t, std::uint32_t> match_index;
  std::vector<MatchQueues> match_pool;
  FlatMap<std::uint64_t, TimeNs> chan_last_arrival;  // per-source FIFO clamp
  RankStats stats;
  TimeNs blackout_traced = 0;  // tracing only: blackout intervals emitted up to here
  // Tracing only: trace seq of the rank's most recent op event, and per-op
  // the seq of the same-rank predecessor op event whose completion made the
  // op ready. Together these let the engine stamp TraceEvent::cause (the
  // binding start constraint) without any search at emission time.
  std::uint64_t last_op_seq = 0;
  std::vector<std::uint64_t> ready_cause;

  MatchQueues& match(std::uint64_t key) {
    std::uint32_t& slot = match_index[key];
    if (slot == 0) {
      match_pool.emplace_back();
      slot = static_cast<std::uint32_t>(match_pool.size());
    }
    return match_pool[slot - 1];
  }
};

}  // namespace

/// Everything a snapshot captures: the mutable half of the Impl below. The
/// immutable half (program views, config, availability) is reconstructible
/// from the SimCore and deliberately not copied.
struct SimCore::Snapshot::State {
  std::vector<RankState> states;
  DaryHeap<Event, EventEarlier, 4> queue;
  std::uint64_t next_seq = 0;
  std::size_t heap_peak = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> arrival_msg_seq;
  RunResult result;
  std::vector<std::string> notes;
};

SimCore::Snapshot::Snapshot() = default;
SimCore::Snapshot::~Snapshot() = default;
SimCore::Snapshot::Snapshot(Snapshot&&) noexcept = default;
SimCore::Snapshot& SimCore::Snapshot::operator=(Snapshot&&) noexcept = default;

struct SimCore::Impl {
 public:
  Impl(const Program& program, const EngineConfig& config)
      : prog_(program),
        cfg_(config),
        trace_(config.trace),
        avail_(config.blackouts != nullptr
                   ? static_cast<const BlackoutSchedule*>(config.blackouts)
                   : static_cast<const BlackoutSchedule*>(&no_blackouts_),
              config.preemption),
        always_available_(config.blackouts == nullptr) {
    const int nranks = prog_.ranks();
    states_.resize(static_cast<std::size_t>(nranks));
    views_.resize(static_cast<std::size_t>(nranks));
    if (cfg_.record_op_finish)
      result_.op_finish_offset.assign(static_cast<std::size_t>(nranks) + 1, 0);
    // The initial frontier is roughly one ready op per rank; later pushes
    // grow geometrically, so this one reservation makes queue growth a
    // non-event on the hot path.
    queue_.reserve(static_cast<std::size_t>(nranks) + 64);
    for (RankId r = 0; r < nranks; ++r) {
      const RankOpsView v = prog_.rank_view(r);
      views_[static_cast<std::size_t>(r)] = v;
      auto& st = states_[static_cast<std::size_t>(r)];
      // Indegrees are not stored in the program (the compact layout keeps
      // only chain runs + explicit CSR); reconstruct them here.
      st.indegree.assign(v.count, 0);
      if (trace_ != nullptr) st.ready_cause.assign(v.count, 0);
      if (cfg_.record_op_finish)
        result_.op_finish_offset[static_cast<std::size_t>(r) + 1] =
            result_.op_finish_offset[static_cast<std::size_t>(r)] + v.count;
      for (OpIndex i = 0; i < v.count; ++i)
        for (OpIndex k = 1; k <= v.chain[i]; ++k) ++st.indegree[i + k];
      for (std::uint32_t e = v.xoff[0]; e < v.xoff[v.count]; ++e)
        ++st.indegree[v.xsucc[e]];
      for (OpIndex i = 0; i < v.count; ++i)
        if (st.indegree[i] == 0) push_ready(0, r, i);
      total_ops_ += static_cast<std::int64_t>(v.count);
    }
    if (cfg_.record_op_finish)
      result_.op_finish.assign(static_cast<std::size_t>(total_ops_), -1);
  }

  void run_until(TimeNs t) {
    while (!queue_.empty() && queue_.top().time <= t) step_one();
  }

  bool step() {
    if (queue_.empty()) return false;
    step_one();
    return true;
  }

  bool idle() const { return queue_.empty(); }
  bool finished() const { return result_.ops_executed == total_ops_; }
  TimeNs next_event_time() const { return queue_.empty() ? -1 : queue_.top().time; }
  TimeNs makespan() const { return result_.makespan; }
  std::int64_t ops_executed() const { return result_.ops_executed; }

  void inject(const Injection& inj) {
    switch (inj.kind) {
      case Injection::Kind::kOutage: {
        auto& st = states_.at(static_cast<std::size_t>(inj.rank));
        st.cpu_free = std::max(st.cpu_free, inj.until);
        st.nic_free = std::max(st.nic_free, inj.until);
        break;
      }
      case Injection::Kind::kMessage:
        push_arrival(inj.time, inj.rank, inj.src, inj.tag, inj.bytes, 0);
        break;
    }
    if (!inj.note.empty()) {
      // Keep only the most recent few: diagnostics context, not a log.
      if (notes_.size() >= 8) notes_.erase(notes_.begin());
      notes_.push_back(inj.note);
    }
  }

  Snapshot snapshot() const {
    Snapshot snap;
    snap.state_ = std::make_unique<Snapshot::State>();
    snap.state_->states = states_;
    snap.state_->queue = queue_;
    snap.state_->next_seq = next_seq_;
    snap.state_->heap_peak = heap_peak_;
    snap.state_->arrival_msg_seq = arrival_msg_seq_;
    snap.state_->result = result_;
    snap.state_->notes = notes_;
    return snap;
  }

  void restore(const Snapshot& snap) {
    if (snap.state_ == nullptr)
      throw std::logic_error("SimCore::restore: empty snapshot");
    states_ = snap.state_->states;
    queue_ = snap.state_->queue;
    next_seq_ = snap.state_->next_seq;
    heap_peak_ = snap.state_->heap_peak;
    arrival_msg_seq_ = snap.state_->arrival_msg_seq;
    result_ = snap.state_->result;
    notes_ = snap.state_->notes;
  }

  RunResult take_result() {
    result_.completed = result_.ops_executed == total_ops_;
    if (!result_.completed) describe_deadlock();
    result_.event_heap_peak = static_cast<std::int64_t>(heap_peak_);
    result_.ranks.reserve(states_.size());
    for (auto& st : states_) {
      result_.match_arena_slots +=
          static_cast<std::int64_t>(st.match_pool.size());
      result_.ranks.push_back(st.stats);
    }
    return std::move(result_);
  }

 private:
  void step_one() {
    const Event ev = queue_.top();
    queue_.pop();
    ++result_.events_processed;
    if (!ev.is_arrival()) {
      execute_op(ev.rank, ev.op, ev.time);
    } else {
      handle_arrival(ev.rank, ev.src, ev.tag, ev.bytes, ev.time,
                     trace_ != nullptr ? take_arrival_msg_seq(ev.seq_kind) : 0);
    }
  }

  void push_ready(TimeNs t, RankId r, OpIndex i) {
    Event ev;
    ev.time = t;
    ev.seq_kind = next_seq_++ << 1;
    ev.rank = r;
    ev.op = i;
    queue_.push(ev);
    if (queue_.size() > heap_peak_) heap_peak_ = queue_.size();
  }

  void push_arrival(TimeNs t, RankId dst, RankId src, Tag tag, Bytes bytes,
                    std::uint64_t msg_seq) {
    Event ev;
    ev.time = t;
    ev.seq_kind = (next_seq_++ << 1) | 1;
    ev.rank = dst;
    ev.src = src;
    ev.tag = tag;
    ev.bytes = bytes;
    // The kMsgInject trace seq rides in a side table rather than in Event:
    // growing the priority-queue element would tax the untraced hot path.
    if (msg_seq != 0) arrival_msg_seq_.emplace(ev.seq_kind, msg_seq);
    queue_.push(ev);
    if (queue_.size() > heap_peak_) heap_peak_ = queue_.size();
  }

  /// When the rank is always available (no blackout schedule), work finishes
  /// start + work with no virtual schedule query — the base run of every
  /// study takes this path for all of its ops.
  TimeNs finish(RankId r, TimeNs start, TimeNs work) {
    return always_available_ ? start + work : avail_.finish(r, start, work);
  }

  std::uint64_t take_arrival_msg_seq(std::uint64_t event_seq) {
    const auto it = arrival_msg_seq_.find(event_seq);
    if (it == arrival_msg_seq_.end()) return 0;
    const std::uint64_t v = it->second;
    arrival_msg_seq_.erase(it);
    return v;
  }

  // --- Tracing (all no-ops unless cfg_.trace is set) ---------------------
  //
  // The per-op emission blocks are [[gnu::noinline, gnu::cold]]: inlined into
  // execute_op/do_match they push those functions past the inliner's budget
  // and evict the untraced hot path from the instruction cache.

  std::uint64_t emit(TraceEventKind kind, RankId rank, TimeNs t0, TimeNs t1,
                     TimeNs stall = 0, RankId peer = -1, OpIndex op = kInvalidOp,
                     Tag tag = 0, Bytes bytes = 0, std::uint64_t ref = 0,
                     std::uint64_t cause = 0) {
    TraceEvent ev;
    ev.ref = ref;
    ev.cause = cause;
    ev.t0 = t0;
    ev.t1 = t1;
    ev.stall = stall;
    ev.bytes = bytes;
    ev.rank = rank;
    ev.peer = peer;
    ev.op = op;
    ev.tag = tag;
    ev.kind = kind;
    return trace_->record(ev);
  }

  /// Emit each blackout interval of `rank` overlapping [from, to) exactly
  /// once across the whole run (ops sharing a blackout do not duplicate it).
  void trace_blackouts(RankId r, TimeNs from, TimeNs to) {
    if (cfg_.blackouts == nullptr) return;
    auto& traced = states_[static_cast<std::size_t>(r)].blackout_traced;
    TimeNs t = std::max(from, traced);
    while (t < to) {
      const std::optional<Interval> b = cfg_.blackouts->next_blackout(r, t);
      if (!b.has_value() || b->begin >= to) break;
      if (b->end > traced) {
        emit(TraceEventKind::kBlackout, r, b->begin, b->end);
        traced = b->end;
      }
      t = b->end;
    }
  }

  void execute_op(RankId r, OpIndex i, TimeNs t) {
    const OpView op = views_[static_cast<std::size_t>(r)].op(i);
    auto& st = states_[static_cast<std::size_t>(r)];
    switch (op.kind) {
      case OpKind::kCalc: {
        const TimeNs start = std::max(t, st.cpu_free);
        const std::uint64_t cause =
            trace_ != nullptr ? op_cause(st, i, st.cpu_free > t) : 0;
        const TimeNs end = finish(r, start, op.value);
        st.cpu_free = end;
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, op.value);
        ++st.stats.calcs;
        if (trace_ != nullptr) trace_calc(r, i, start, end, op.value, cause);
        complete(r, i, end);
        break;
      }
      case OpKind::kSend: {
        const Bytes bytes = op.value;
        TimeNs cpu_work = cfg_.net.send_cpu(bytes);
        if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_send_cpu(r, op.peer, bytes);
        const TimeNs s0 = std::max({t, st.cpu_free, st.nic_free});
        const std::uint64_t cause =
            trace_ != nullptr ? op_cause(st, i, s0 > t) : 0;
        const TimeNs end = finish(r, s0, cpu_work);
        st.cpu_free = end;
        st.nic_free = end + cfg_.net.nic_gap(bytes);
        st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
        ++st.stats.sends;
        st.stats.bytes_sent = saturating_add(st.stats.bytes_sent, bytes);

        // Eager: payload leaves at `end`. Rendezvous: a zero-byte RTS leaves
        // at `end`; the payload path is computed at match time.
        TimeNs arrival = cfg_.net.rendezvous(bytes) ? end + cfg_.net.L
                                                    : end + cfg_.net.wire_time(bytes);
        // Per-channel FIFO (MPI non-overtaking).
        auto& dst_state = states_[static_cast<std::size_t>(op.peer)];
        TimeNs& last = dst_state.chan_last_arrival[static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(r))];
        arrival = std::max(arrival, last);
        last = arrival;
        std::uint64_t msg_seq = 0;
        if (trace_ != nullptr)
          msg_seq = trace_send(r, i, op, s0, end, cpu_work, arrival, bytes, cause);
        push_arrival(arrival, op.peer, r, op.tag, bytes, msg_seq);
        complete(r, i, end);
        break;
      }
      case OpKind::kRecv: {
        auto& mq = st.match(match_key(op.peer, op.tag));
        if (!mq.arrived.empty()) {
          do_match(r, i, t, mq.arrived.pop());
        } else {
          mq.posted.push(PostedRecv{i, t});
        }
        break;
      }
    }
  }

  void handle_arrival(RankId dst, RankId src, Tag tag, Bytes bytes, TimeNs t,
                      std::uint64_t msg_seq) {
    auto& st = states_[static_cast<std::size_t>(dst)];
    auto& mq = st.match(match_key(src, tag));
    if (!mq.posted.empty()) {
      const PostedRecv pr = mq.posted.pop();
      do_match(dst, pr.op, pr.post_time, ArrivedMsg{t, bytes, msg_seq});
    } else {
      mq.arrived.push(ArrivedMsg{t, bytes, msg_seq});
    }
  }

  void do_match(RankId r, OpIndex i, TimeNs post_time, const ArrivedMsg& msg) {
    const OpView op = views_[static_cast<std::size_t>(r)].op(i);
    auto& st = states_[static_cast<std::size_t>(r)];
    TimeNs data_arrival = msg.arrival;
    const bool rendezvous = cfg_.net.rendezvous(msg.bytes);
    if (rendezvous) {
      // msg.arrival is the RTS arrival; the payload moves only after both
      // sides are ready, plus the CTS round trip and re-injection.
      const TimeNs m = std::max(post_time, msg.arrival);
      data_arrival = m + cfg_.net.control_time() + cfg_.net.o + cfg_.net.wire_time(msg.bytes) - cfg_.net.L
                     + cfg_.net.L;  // = m + (o+L) + o + L + G*bytes
    }
    TimeNs cpu_work = cfg_.net.recv_cpu(msg.bytes);
    if (cfg_.tax != nullptr) cpu_work += cfg_.tax->extra_recv_cpu(op.peer, r, msg.bytes);
    const TimeNs start = std::max(data_arrival, st.cpu_free);
    std::uint64_t cause = 0;
    if (trace_ != nullptr) {
      // Binding constraint on the recv's start: the previous op holding the
      // CPU, our own late post (rendezvous handshake anchored at post_time),
      // or the message itself (its kMsgInject; 0 for injected messages).
      if (st.cpu_free > data_arrival && st.last_op_seq != 0)
        cause = st.last_op_seq;
      else if (rendezvous && post_time > msg.arrival)
        cause = st.ready_cause[i];
      else
        cause = msg.msg_seq;
    }
    const TimeNs end = finish(r, start, cpu_work);
    st.cpu_free = end;
    st.stats.cpu_busy = saturating_add(st.stats.cpu_busy, cpu_work);
    ++st.stats.recvs;
    if (data_arrival > post_time)
      st.stats.recv_wait =
          saturating_add(st.stats.recv_wait, data_arrival - post_time);
    if (trace_ != nullptr)
      trace_match(r, i, op, post_time, msg, data_arrival, rendezvous, start,
                  end, cpu_work, cause);
    complete(r, i, end);
  }

  /// Tracing only: seq of the event whose completion bound an op's start.
  /// `resource_bound` means a rank-local clock (CPU/NIC) pushed the start
  /// past the op's ready time; the binder is then the rank's previous op
  /// event. When no such event exists (an injected outage moved the clocks
  /// without a trace record), fall back to the program-order predecessor so
  /// the walk classifies the unexplained gap as wait time.
  std::uint64_t op_cause(const RankState& st, OpIndex i, bool resource_bound) const {
    if (resource_bound && st.last_op_seq != 0) return st.last_op_seq;
    return st.ready_cause[i];
  }

  [[gnu::noinline, gnu::cold]] void trace_calc(RankId r, OpIndex i, TimeNs start,
                                               TimeNs end, TimeNs work,
                                               std::uint64_t cause) {
    trace_blackouts(r, start, end);
    auto& st = states_[static_cast<std::size_t>(r)];
    st.last_op_seq = emit(TraceEventKind::kCalc, r, start, end,
                          end - start - work, /*peer=*/-1, i,
                          /*tag=*/0, /*bytes=*/0, /*ref=*/0, cause);
  }

  [[gnu::noinline, gnu::cold]] std::uint64_t trace_send(RankId r, OpIndex i,
                                                        const OpView& op, TimeNs s0,
                                                        TimeNs end, TimeNs cpu_work,
                                                        TimeNs arrival, Bytes bytes,
                                                        std::uint64_t cause) {
    trace_blackouts(r, s0, end);
    auto& st = states_[static_cast<std::size_t>(r)];
    const std::uint64_t send_seq =
        emit(TraceEventKind::kSendOp, r, s0, end, end - s0 - cpu_work, op.peer,
             i, op.tag, bytes, /*ref=*/0, cause);
    st.last_op_seq = send_seq;
    const std::uint64_t msg_seq =
        emit(TraceEventKind::kMsgInject, r, end, arrival, 0, op.peer, i,
             op.tag, bytes, /*ref=*/0, send_seq);
    if (cfg_.net.rendezvous(bytes))
      emit(TraceEventKind::kRts, r, end, arrival, 0, op.peer, i, op.tag, bytes,
           /*ref=*/0, send_seq);
    return msg_seq;
  }

  [[gnu::noinline, gnu::cold]] void trace_match(RankId r, OpIndex i, const OpView& op,
                                                TimeNs post_time,
                                                const ArrivedMsg& msg,
                                                TimeNs data_arrival, bool rendezvous,
                                                TimeNs start, TimeNs end,
                                                TimeNs cpu_work, std::uint64_t cause) {
    trace_blackouts(r, start, end);
    auto& st = states_[static_cast<std::size_t>(r)];
    if (rendezvous)
      emit(TraceEventKind::kCts, r, std::max(post_time, msg.arrival),
           data_arrival, 0, op.peer, i, op.tag, msg.bytes, msg.msg_seq);
    emit(TraceEventKind::kMsgDeliver, r, data_arrival, data_arrival, 0, op.peer,
         i, op.tag, msg.bytes, msg.msg_seq);
    if (data_arrival > post_time)
      emit(TraceEventKind::kRecvWait, r, post_time, data_arrival, 0, op.peer, i,
           op.tag, msg.bytes, msg.msg_seq);
    st.last_op_seq = emit(TraceEventKind::kRecvOp, r, start, end,
                          end - start - cpu_work, op.peer, i, op.tag,
                          msg.bytes, msg.msg_seq, cause);
  }

  void complete(RankId r, OpIndex i, TimeNs t) {
    auto& st = states_[static_cast<std::size_t>(r)];
    ++result_.ops_executed;
    st.stats.finish_time = std::max(st.stats.finish_time, t);
    result_.makespan = std::max(result_.makespan, t);
    if (cfg_.record_op_finish)
      result_.op_finish[result_.op_finish_offset[static_cast<std::size_t>(r)] + i] = t;
    const bool tracing = trace_ != nullptr;
    views_[static_cast<std::size_t>(r)].for_each_successor(i, [&](OpIndex v) {
      assert(st.indegree[v] > 0);
      if (--st.indegree[v] == 0) {
        // The op event just emitted for `i` is what made `v` ready.
        if (tracing) st.ready_cause[v] = st.last_op_seq;
        push_ready(t, r, v);
      }
    });
  }

  void describe_deadlock() {
    std::string msg = "deadlock: unexecuted operations remain;";
    int shown = 0;
    for (RankId r = 0; r < prog_.ranks() && shown < 8; ++r) {
      const auto& st = states_[static_cast<std::size_t>(r)];
      std::int64_t pending_recvs = 0;
      for (const MatchQueues& mq : st.match_pool)
        pending_recvs += static_cast<std::int64_t>(mq.posted.size());
      if (pending_recvs > 0) {
        msg += " rank " + std::to_string(r) + " has " +
               std::to_string(pending_recvs) + " unmatched recv(s);";
        ++shown;
      }
    }
    // A wedged injected run (failure modeling) is far easier to diagnose
    // with the failure context than with the unmatched-recv counts alone.
    if (!notes_.empty()) {
      msg += " injected-failure context:";
      for (const std::string& note : notes_) msg += " [" + note + "]";
    }
    result_.error = msg;
  }

  const Program& prog_;
  const EngineConfig& cfg_;
  TraceSink* const trace_;
  NoBlackouts no_blackouts_;
  Availability avail_;
  const bool always_available_;
  std::vector<RankState> states_;
  std::vector<RankOpsView> views_;
  DaryHeap<Event, EventEarlier, 4> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t heap_peak_ = 0;  // pending-event high-water (self-telemetry)
  std::int64_t total_ops_ = 0;
  // Event seq of an in-flight arrival -> trace seq of its kMsgInject.
  // Populated only while tracing; empty (and untouched) otherwise.
  std::unordered_map<std::uint64_t, std::uint64_t> arrival_msg_seq_;
  // Injection context (failure rank/time/recovery), for deadlock diagnostics.
  std::vector<std::string> notes_;
  RunResult result_;
};

SimCore::SimCore(const Program& program, const EngineConfig& config) {
  if (!program.finalized())
    throw std::logic_error("SimCore requires a finalized Program");
  impl_ = std::make_unique<Impl>(program, config);
}

SimCore::~SimCore() = default;
SimCore::SimCore(SimCore&&) noexcept = default;
SimCore& SimCore::operator=(SimCore&&) noexcept = default;

void SimCore::run_until(TimeNs t) { impl_->run_until(t); }
bool SimCore::step() { return impl_->step(); }
bool SimCore::idle() const { return impl_->idle(); }
bool SimCore::finished() const { return impl_->finished(); }
TimeNs SimCore::next_event_time() const { return impl_->next_event_time(); }
TimeNs SimCore::makespan() const { return impl_->makespan(); }
std::int64_t SimCore::ops_executed() const { return impl_->ops_executed(); }
void SimCore::inject(const Injection& injection) { impl_->inject(injection); }
SimCore::Snapshot SimCore::snapshot() const { return impl_->snapshot(); }
void SimCore::restore(const Snapshot& snap) { impl_->restore(snap); }
RunResult SimCore::take_result() { return impl_->take_result(); }

RunResult Engine::run(const Program& program, const EngineConfig& config) const {
  if (!program.finalized())
    throw std::logic_error("Engine::run requires a finalized Program");
  SimCore core(program, config);
  core.run_until(std::numeric_limits<TimeNs>::max());
  return core.take_result();
}

}  // namespace chksim::sim
