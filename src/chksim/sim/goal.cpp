#include "chksim/sim/goal.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace chksim::sim {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("GOAL parse error at line " + std::to_string(line) +
                              ": " + what);
}

/// Minimal whitespace tokenizer for one line (strips '#' comments).
std::vector<std::string> tokens_of(std::string line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  std::vector<std::string> out;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) out.push_back(tok);
  return out;
}

std::int64_t parse_int(const std::string& tok, int line, const char* what) {
  std::int64_t v = 0;
  std::size_t used = 0;
  try {
    v = std::stoll(tok, &used);
  } catch (const std::exception&) {
    used = 0;  // malformed or out of range; reported below
  }
  if (used == 0 || used != tok.size())
    fail(line, std::string("bad ") + what + ": " + tok);
  return v;
}

/// "l<id>:" or "l<id>" -> id.
std::int64_t parse_label(std::string tok, int line) {
  if (!tok.empty() && tok.back() == ':') tok.pop_back();
  if (tok.size() < 2 || tok[0] != 'l') fail(line, "expected label, got: " + tok);
  return parse_int(tok.substr(1), line, "label");
}

/// "<n>b" -> n.
Bytes parse_bytes(std::string tok, int line) {
  if (tok.empty() || tok.back() != 'b') fail(line, "expected byte count like 64b: " + tok);
  tok.pop_back();
  return parse_int(tok, line, "byte count");
}

}  // namespace

std::string to_goal(const Program& program) {
  if (!program.finalized())
    throw std::logic_error("to_goal requires a finalized Program");
  std::ostringstream os;
  os << "# chksim GOAL export\n";
  os << "num_ranks " << program.ranks() << "\n";
  for (RankId r = 0; r < program.ranks(); ++r) {
    const RankOpsView v = program.rank_view(r);
    os << "rank " << r << " {\n";
    for (OpIndex i = 0; i < v.count; ++i) {
      const OpView op = v.op(i);
      os << "  l" << i << ": ";
      switch (op.kind) {
        case OpKind::kCalc:
          os << "calc " << op.value;
          break;
        case OpKind::kSend:
          os << "send " << op.value << "b to " << op.peer << " tag " << op.tag;
          break;
        case OpKind::kRecv:
          os << "recv " << op.value << "b from " << op.peer << " tag " << op.tag;
          break;
      }
      os << "\n";
    }
    for (OpIndex i = 0; i < v.count; ++i)
      v.for_each_successor(
          i, [&](OpIndex to) { os << "  l" << to << " requires l" << i << "\n"; });
    os << "}\n";
  }
  return os.str();
}

void write_goal(std::ostream& os, const Program& program) { os << to_goal(program); }

Program from_goal(const std::string& text) {
  std::istringstream is(text);
  return read_goal(is);
}

Program read_goal(std::istream& is) {
  std::string line;
  int line_no = 0;

  // First meaningful line must be num_ranks.
  int nranks = -1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto toks = tokens_of(line);
    if (toks.empty()) continue;
    if (toks.size() != 2 || toks[0] != "num_ranks")
      fail(line_no, "expected 'num_ranks <N>' first");
    nranks = static_cast<int>(parse_int(toks[1], line_no, "rank count"));
    if (nranks <= 0) fail(line_no, "num_ranks must be > 0");
    break;
  }
  if (nranks < 0) fail(line_no, "missing num_ranks header");

  Program program(nranks);
  RankId current_rank = -1;
  bool in_block = false;
  // Label table for the current rank block, plus deferred dependency edges
  // (labels may be used by `requires` before appearing — we resolve at
  // block close).
  std::unordered_map<std::int64_t, OpRef> labels;
  std::vector<std::pair<std::int64_t, std::int64_t>> deferred;  // (after, before)
  int block_open_line = 0;

  auto close_block = [&]() {
    for (const auto& [after, before] : deferred) {
      const auto a = labels.find(after);
      const auto b = labels.find(before);
      if (a == labels.end())
        fail(block_open_line, "requires references unknown label l" +
                                  std::to_string(after));
      if (b == labels.end())
        fail(block_open_line, "requires references unknown label l" +
                                  std::to_string(before));
      program.depends(b->second, a->second);
    }
    labels.clear();
    deferred.clear();
    in_block = false;
    current_rank = -1;
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto toks = tokens_of(line);
    if (toks.empty()) continue;

    if (toks[0] == "rank") {
      if (in_block) fail(line_no, "nested rank block");
      if (toks.size() != 3 || toks[2] != "{")
        fail(line_no, "expected 'rank <r> {'");
      const std::int64_t r = parse_int(toks[1], line_no, "rank id");
      if (r < 0 || r >= nranks) fail(line_no, "rank id out of range");
      current_rank = static_cast<RankId>(r);
      in_block = true;
      block_open_line = line_no;
      continue;
    }
    if (toks[0] == "}") {
      if (!in_block) fail(line_no, "unmatched '}'");
      close_block();
      continue;
    }
    if (!in_block) fail(line_no, "statement outside a rank block: " + toks[0]);

    // "l<a> requires l<b>"
    if (toks.size() == 3 && toks[1] == "requires") {
      deferred.emplace_back(parse_label(toks[0], line_no),
                            parse_label(toks[2], line_no));
      continue;
    }

    // "l<id>: calc|send|recv ..."
    if (toks.size() < 2) fail(line_no, "truncated statement");
    const std::int64_t label = parse_label(toks[0], line_no);
    if (labels.count(label)) fail(line_no, "duplicate label l" + std::to_string(label));

    OpRef ref;
    const std::string& verb = toks[1];
    if (verb == "calc") {
      if (toks.size() != 3) fail(line_no, "expected 'calc <ns>'");
      const std::int64_t ns = parse_int(toks[2], line_no, "duration");
      if (ns < 0) fail(line_no, "negative calc duration");
      ref = program.calc(current_rank, ns);
    } else if (verb == "send" || verb == "recv") {
      // send <bytes>b to <rank> [tag <t>]
      const char* direction = verb == "send" ? "to" : "from";
      if (toks.size() != 5 && toks.size() != 7)
        fail(line_no, "expected '" + verb + " <n>b " + direction +
                          " <rank> [tag <t>]'");
      const Bytes bytes = parse_bytes(toks[2], line_no);
      if (toks[3] != direction)
        fail(line_no, "expected '" + std::string(direction) + "', got: " + toks[3]);
      const std::int64_t peer = parse_int(toks[4], line_no, "peer rank");
      if (peer < 0 || peer >= nranks || peer == current_rank)
        fail(line_no, "peer rank out of range: " + std::to_string(peer));
      Tag tag = 0;
      if (toks.size() == 7) {
        if (toks[5] != "tag") fail(line_no, "expected 'tag', got: " + toks[5]);
        tag = static_cast<Tag>(parse_int(toks[6], line_no, "tag"));
      }
      ref = verb == "send"
                ? program.send(current_rank, static_cast<RankId>(peer), bytes, tag)
                : program.recv(current_rank, static_cast<RankId>(peer), bytes, tag);
    } else {
      fail(line_no, "unknown operation: " + verb);
    }
    labels.emplace(label, ref);
  }
  if (in_block) fail(line_no, "unterminated rank block");
  return program;
}

}  // namespace chksim::sim
