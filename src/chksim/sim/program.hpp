// Program: the complete application model — one operation DAG per rank plus
// intra-rank dependency edges. Workload generators append operations and
// edges; finalize() freezes the program into the compact columnar form the
// engine runs.
//
// Memory model. Simulating 64 Ki+ ranks makes bytes/op the binding resource,
// so the representation exploits the two regularities every generator has:
//
//  * Program order dominates the dependency structure. Edges from op i to
//    ops i+1 .. i+c on the same rank ("chain runs": a calc fanning out into
//    the sends/recvs built right after it, or plain sequential chains) are
//    stored as a single per-op run length `chain`, not as materialized CSR
//    entries. Only cross-chain dependencies pay for an explicit entry.
//  * SPMD workloads are iteration-periodic. begin_repeat()/repeat() record
//    one iteration block and instantiate the remaining copies by columnar
//    block copy with tag rebasing, so construction is O(ops/iteration +
//    copies), not O(total ops) generator calls.
//
// After finalize() the storage is global rank-major structure-of-arrays
// (value/peer/tag/kind/chain columns + a CSR of explicit successors):
// 18 bytes per op + 4 bytes per op of CSR offsets + 4 bytes per explicit
// edge, versus 32-byte Op rows plus one CSR entry for every edge in the
// previous array-of-structs layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/sim/op.hpp"
#include "chksim/support/default_init.hpp"
#include "chksim/support/units.hpp"

namespace chksim::sim {

/// Aggregate statistics computed by finalize(), used for the workload
/// characterisation table (T1).
struct ProgramStats {
  std::int64_t ops = 0;
  std::int64_t calcs = 0;
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t edges = 0;
  Bytes bytes_sent = 0;
  TimeNs calc_total = 0;
  /// Longest dependency chain over all ranks (graph depth in ops).
  std::int64_t max_depth = 0;
};

/// Raw-pointer view of one rank's finalized operations: the engine's hot
/// loop reads these columns directly. `xoff`/`xsucc` describe the explicit
/// (non-chain) successor CSR; `xoff` entries are offsets into the global
/// `xsucc` array, `xsucc` values are rank-local op indices.
struct RankOpsView {
  const std::int64_t* value = nullptr;
  const RankId* peer = nullptr;
  const Tag* tag = nullptr;
  const OpKind* kind = nullptr;
  const std::uint8_t* chain = nullptr;
  const std::uint32_t* xoff = nullptr;  // count + 1 entries, global offsets
  const OpIndex* xsucc = nullptr;       // global array, rank-local targets
  OpIndex count = 0;

  /// Visit op i's successors in ascending index order — the exact order the
  /// old sorted-CSR representation produced (explicit back edges, then the
  /// implicit chain run i+1 .. i+chain[i], then explicit forward edges; any
  /// explicit edge inside the chain run was deduplicated by finalize()).
  template <typename F>
  void for_each_successor(OpIndex i, F&& f) const {
    std::uint32_t e = xoff[i];
    const std::uint32_t end = xoff[i + 1];
    while (e < end && xsucc[e] < i) f(xsucc[e++]);
    const OpIndex c = chain[i];
    for (OpIndex k = 1; k <= c; ++k) f(i + k);
    while (e < end) f(xsucc[e++]);
  }

  std::uint32_t successor_count(OpIndex i) const {
    return (xoff[i + 1] - xoff[i]) + chain[i];
  }

  OpView op(OpIndex i) const { return {value[i], peer[i], tag[i], kind[i]}; }
};

class Program {
 public:
  explicit Program(int nranks);

  int ranks() const { return nranks_; }

  /// Append a computation of `duration` ns on rank r. Returns its handle.
  OpRef calc(RankId r, TimeNs duration);

  /// Append a send of `bytes` from rank r to dst with the given tag.
  OpRef send(RankId r, RankId dst, Bytes bytes, Tag tag);

  /// Append a receive on rank r of `bytes` from src with the given tag.
  OpRef recv(RankId r, RankId src, Bytes bytes, Tag tag);

  /// Add the intra-rank dependency `before` happens-before `after`.
  /// Both handles must refer to the same rank.
  void depends(OpRef before, OpRef after);

  /// depends() for each valid handle in `before`.
  void depends_all(const std::vector<OpRef>& before, OpRef after);

  /// Allocate `count` consecutive tags unique within this program. Workload
  /// and collective generators use this so phases never cross-match.
  Tag allocate_tags(int count = 1);

  /// Open an iteration-template block: ops, dependencies, and tags recorded
  /// between begin_repeat() and repeat() form one block per rank.
  void begin_repeat();

  /// Close the block opened by begin_repeat() and append `copies` further
  /// instances of it by columnar copy. Per rank, the k-th copy shifts the
  /// block's op indices by k * block_length and rebases every tag allocated
  /// inside the block by k * (tags allocated inside the block), so copies
  /// never cross-match with each other. Dependencies into the block must
  /// come from at most one block length before it (the usual
  /// previous-iteration frontier); deeper references throw — they could not
  /// be re-targeted meaningfully in later copies. `carry`, if given, is a
  /// set of handles the caller wants re-targeted to the *last* instance
  /// (e.g. a frontier consumed by ops built after the loop); handles that
  /// point into the block are shifted, others are left untouched.
  void repeat(int copies, std::vector<OpRef>* carry = nullptr);

  /// Freeze the program: pack the columnar storage, build the explicit
  /// successor CSR, verify the DAG is acyclic and well-formed. Must be
  /// called exactly once, before run. Returns aggregate statistics.
  ProgramStats finalize();

  /// Concatenate finalized programs into one finalized program over the
  /// union rank space: part k's rank r becomes global rank
  /// (sum of earlier parts' ranks) + r. Peers are rebased by the same
  /// offset; nothing else changes — parts never message each other, so the
  /// composed DAG is the disjoint union and (src, dst, tag) channels stay
  /// disjoint even when parts reuse tag values. This is how the platform
  /// layer runs N jobs inside one engine (and one PDES shard space) while
  /// keeping every job's program byte-identical to its solo build.
  /// Throws std::invalid_argument on an empty list or a non-finalized part.
  static Program compose(const std::vector<const Program*>& parts);

  bool finalized() const { return finalized_; }
  const ProgramStats& stats() const { return stats_; }

  /// Number of ops on rank r (valid in both build and finalized phase).
  OpIndex rank_size(RankId r) const;

  /// One op's fields (valid in both build and finalized phase).
  OpView op(RankId r, OpIndex i) const;

  /// The engine's accessor (valid after finalize()).
  RankOpsView rank_view(RankId r) const;

  /// Visit the successors of (r, i) in ascending index order (finalized).
  template <typename F>
  void for_each_successor(RankId r, OpIndex i, F&& f) const {
    rank_view(r).for_each_successor(i, static_cast<F&&>(f));
  }

  /// Bytes currently allocated for the program representation (vector
  /// capacities, both phases). This is the quantity bench_sim_throughput
  /// reports as bytes/op.
  std::size_t storage_bytes() const;

  /// Optional consistency check: every (src -> dst, tag) send count equals
  /// the matching recv count. Returns an empty string when consistent, or a
  /// human-readable description of the first few mismatches.
  std::string check_matching() const;

 private:
  struct BuildOp {
    std::int64_t value = 0;
    RankId peer = -1;
    Tag tag = 0;
    OpKind kind = OpKind::kCalc;
    std::uint8_t chain = 0;  ///< Implicit edges to ops i+1 .. i+chain.
  };
  struct XEdge {
    OpIndex from;
    OpIndex to;
    friend bool operator==(const XEdge&, const XEdge&) = default;
  };
  struct BuildRank {
    std::vector<BuildOp> ops;
    std::vector<XEdge> edges;       // explicit (non-chain) dependencies
    OpIndex mark_ops = 0;           // repeat block start (ops)
    std::size_t mark_edges = 0;     // repeat block start (edge list)
  };

  OpRef push(RankId r, const BuildOp& op);

  int nranks_ = 0;
  std::vector<BuildRank> build_;  // emptied by finalize()
  Tag next_tag_ = 1;
  bool finalized_ = false;
  bool in_repeat_ = false;
  Tag mark_tag_ = 1;  // next_tag_ at begin_repeat()
  ProgramStats stats_;

  // Finalized columnar storage, global rank-major order. rank_begin_[r] is
  // the global row of rank r's op 0; xoff_ has one entry per op plus a
  // terminator per rank boundary shared with the next rank's first op.
  // UninitVector: resize() must not memset arrays finalize() fully
  // overwrites anyway — at 64 Ki ranks that is hundreds of megabytes.
  support::UninitVector<std::uint64_t> rank_begin_;  // nranks + 1 entries
  support::UninitVector<std::int64_t> value_;
  support::UninitVector<RankId> peer_;
  support::UninitVector<Tag> tag_;
  support::UninitVector<OpKind> kind_;
  support::UninitVector<std::uint8_t> chain_;
  support::UninitVector<std::uint32_t> xoff_;  // ops + 1 entries
  support::UninitVector<OpIndex> xsucc_;
};

}  // namespace chksim::sim
