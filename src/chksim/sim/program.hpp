// Program: the complete application model — one operation DAG per rank plus
// intra-rank dependency edges. Workload generators append operations and
// edges; finalize() freezes the program into the CSR form the engine runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/sim/op.hpp"
#include "chksim/support/units.hpp"

namespace chksim::sim {

/// Aggregate statistics computed by finalize(), used for the workload
/// characterisation table (T1).
struct ProgramStats {
  std::int64_t ops = 0;
  std::int64_t calcs = 0;
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t edges = 0;
  Bytes bytes_sent = 0;
  TimeNs calc_total = 0;
  /// Longest dependency chain over all ranks (graph depth in ops).
  std::int64_t max_depth = 0;
};

class Program {
 public:
  explicit Program(int nranks);

  int ranks() const { return static_cast<int>(rank_ops_.size()); }

  /// Append a computation of `duration` ns on rank r. Returns its handle.
  OpRef calc(RankId r, TimeNs duration);

  /// Append a send of `bytes` from rank r to dst with the given tag.
  OpRef send(RankId r, RankId dst, Bytes bytes, Tag tag);

  /// Append a receive on rank r of `bytes` from src with the given tag.
  OpRef recv(RankId r, RankId src, Bytes bytes, Tag tag);

  /// Add the intra-rank dependency `before` happens-before `after`.
  /// Both handles must refer to the same rank.
  void depends(OpRef before, OpRef after);

  /// depends() for each valid handle in `before`.
  void depends_all(const std::vector<OpRef>& before, OpRef after);

  /// Allocate `count` consecutive tags unique within this program. Workload
  /// and collective generators use this so phases never cross-match.
  Tag allocate_tags(int count = 1);

  /// Freeze the program: build successor CSR and indegrees, verify the DAG
  /// is acyclic and well-formed. Must be called exactly once, before run.
  /// Returns aggregate statistics.
  ProgramStats finalize();

  bool finalized() const { return finalized_; }
  const ProgramStats& stats() const { return stats_; }

  /// Accessors used by the engine (valid after finalize()).
  const std::vector<Op>& ops(RankId r) const { return rank_ops_[static_cast<std::size_t>(r)]; }
  const std::vector<OpIndex>& successors(RankId r) const {
    return rank_succ_[static_cast<std::size_t>(r)];
  }

  /// Optional consistency check: every (src -> dst, tag) send count equals
  /// the matching recv count. Returns an empty string when consistent, or a
  /// human-readable description of the first few mismatches.
  std::string check_matching() const;

 private:
  struct Edge {
    OpIndex from;
    OpIndex to;
  };

  OpRef push(RankId r, Op op);

  std::vector<std::vector<Op>> rank_ops_;
  std::vector<std::vector<Edge>> rank_edges_;
  std::vector<std::vector<OpIndex>> rank_succ_;  // CSR payload, post-finalize
  Tag next_tag_ = 1;
  bool finalized_ = false;
  ProgramStats stats_;
};

}  // namespace chksim::sim
