// Core operation types of the application model.
//
// A simulated application is, per rank, a DAG of three operation kinds --
// local computation, message send, and message receive -- exactly the
// vocabulary of LogGOPSim-style trace-driven simulation. Collectives and
// application workloads are expanded into this vocabulary by the coll/ and
// workload/ layers.
#pragma once

#include <cstdint>
#include <limits>

#include "chksim/support/units.hpp"

namespace chksim::sim {

/// Rank identifier (0-based, dense).
using RankId = std::int32_t;

/// Message tag. Workload generators allocate disjoint tag ranges per
/// communication phase so matching is unambiguous.
using Tag = std::int32_t;

/// Index of an operation within one rank's operation list.
using OpIndex = std::uint32_t;

inline constexpr OpIndex kInvalidOp = std::numeric_limits<OpIndex>::max();

enum class OpKind : std::uint8_t {
  kCalc,  ///< Local computation for `value` nanoseconds.
  kSend,  ///< Send `value` bytes to rank `peer` with tag `tag`.
  kRecv,  ///< Receive `value` bytes from rank `peer` with tag `tag`.
};

/// Stable lowercase name ("calc", "send", "recv") for traces and reports.
constexpr const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCalc: return "calc";
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
  }
  return "?";
}

/// Value view of one operation. The Program stores operations column-wise
/// (structure-of-arrays); this is the row type handed to code that wants one
/// op at a time (engine dispatch, GOAL export, timeline reconstruction).
struct OpView {
  std::int64_t value = 0;  ///< kCalc: duration (ns); kSend/kRecv: bytes.
  RankId peer = -1;
  Tag tag = 0;
  OpKind kind = OpKind::kCalc;
};

/// Handle to an operation: (rank, index). Returned by Program builders so
/// that generators can wire dependencies.
struct OpRef {
  RankId rank = -1;
  OpIndex index = kInvalidOp;

  bool valid() const { return rank >= 0 && index != kInvalidOp; }
  friend bool operator==(const OpRef&, const OpRef&) = default;
};

}  // namespace chksim::sim
