#include "chksim/sim/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace chksim::sim {

std::string to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kBusy:
      return "busy";
    case SegmentKind::kBlackout:
      return "blackout";
    case SegmentKind::kIdle:
      return "idle";
  }
  return "unknown";
}

namespace {

std::vector<Interval> merge_intervals(std::vector<Interval> list) {
  std::sort(list.begin(), list.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  std::vector<Interval> merged;
  for (const Interval& iv : list) {
    if (iv.end <= iv.begin) continue;
    if (!merged.empty() && iv.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

bool covers(const std::vector<Interval>& list, TimeNs t) {
  auto it = std::upper_bound(list.begin(), list.end(), t,
                             [](TimeNs v, const Interval& iv) { return v < iv.end; });
  return it != list.end() && it->contains(t);
}

}  // namespace

Timeline::Timeline(const Program& program, const RunResult& run,
                   const EngineConfig& config, TimeNs horizon)
    : horizon_(horizon) {
  if (!run.has_op_finish())
    throw std::invalid_argument("Timeline requires record_op_finish = true");
  if (horizon <= 0) throw std::invalid_argument("Timeline: horizon must be > 0");

  const int nranks = program.ranks();
  segments_.resize(static_cast<std::size_t>(nranks));
  for (RankId r = 0; r < nranks; ++r) {
    // Blackouts within the horizon.
    std::vector<Interval> blackouts;
    if (config.blackouts != nullptr) {
      TimeNs t = 0;
      while (true) {
        const auto iv = config.blackouts->next_blackout(r, t);
        if (!iv || iv->begin >= horizon) break;
        blackouts.push_back({std::max<TimeNs>(iv->begin, 0), std::min(iv->end, horizon)});
        t = iv->end;
      }
    }
    // Busy spans: each op's CPU cost ending at its finish time, clipped.
    std::vector<Interval> busy;
    const RankOpsView ops = program.rank_view(r);
    const OpFinishView finish = run.op_finish_of(r);
    busy.reserve(ops.count);
    for (OpIndex i = 0; i < ops.count; ++i) {
      if (finish[i] < 0) continue;
      TimeNs cost = 0;
      switch (ops.kind[i]) {
        case OpKind::kCalc:
          cost = ops.value[i];
          break;
        case OpKind::kSend:
          cost = config.net.send_cpu(ops.value[i]);
          break;
        case OpKind::kRecv:
          cost = config.net.recv_cpu(ops.value[i]);
          break;
      }
      // Allocate the op's CPU cost backwards from its finish time, skipping
      // blackout intervals (preemptive blackouts pause work mid-op).
      TimeNs cur = std::min(finish[i], horizon);
      TimeNs remaining = cost;
      while (remaining > 0 && cur > 0) {
        // If cur lies strictly inside a blackout (possible after horizon
        // clipping), clamp to its start.
        auto cover = std::upper_bound(
            blackouts.begin(), blackouts.end(), cur,
            [](TimeNs v, const Interval& iv) { return v < iv.begin; });
        if (cover != blackouts.begin()) {
          --cover;
          if (cover->begin < cur && cover->end > cur) {
            cur = cover->begin;
            continue;
          }
        }
        // The gap below cur is bounded by the last blackout ending <= cur.
        auto below = std::upper_bound(
            blackouts.begin(), blackouts.end(), cur,
            [](TimeNs v, const Interval& iv) { return v < iv.end; });
        TimeNs gap_lo = 0;
        TimeNs next_cur = 0;
        if (below != blackouts.begin()) {
          --below;
          gap_lo = below->end;
          next_cur = below->begin;
        }
        const TimeNs take = std::min(remaining, cur - gap_lo);
        if (take > 0) busy.push_back({cur - take, cur});
        remaining -= take;
        cur = next_cur;  // 0 when no earlier blackout exists: loop ends
      }
    }
    busy = merge_intervals(std::move(busy));
    blackouts = merge_intervals(std::move(blackouts));

    // Sweep over all boundaries and classify each elementary span.
    std::vector<TimeNs> bounds{0, horizon};
    for (const Interval& iv : blackouts) {
      bounds.push_back(iv.begin);
      bounds.push_back(iv.end);
    }
    for (const Interval& iv : busy) {
      bounds.push_back(iv.begin);
      bounds.push_back(iv.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    auto& out = segments_[static_cast<std::size_t>(r)];
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      const TimeNs lo = std::max<TimeNs>(bounds[k], 0);
      const TimeNs hi = std::min(bounds[k + 1], horizon);
      if (hi <= lo) continue;
      SegmentKind kind = SegmentKind::kIdle;
      if (covers(blackouts, lo)) {
        kind = SegmentKind::kBlackout;  // blackout wins: CPU makes no progress
      } else if (covers(busy, lo)) {
        kind = SegmentKind::kBusy;
      }
      if (!out.empty() && out.back().kind == kind && out.back().end == lo) {
        out.back().end = hi;
      } else {
        out.push_back({lo, hi, kind});
      }
    }
  }
}

TimeNs Timeline::total(RankId rank, SegmentKind kind) const {
  TimeNs sum = 0;
  for (const Segment& s : of(rank))
    if (s.kind == kind) sum += s.duration();
  return sum;
}

double Timeline::utilization() const {
  double busy = 0;
  for (int r = 0; r < ranks(); ++r)
    busy += static_cast<double>(total(r, SegmentKind::kBusy));
  return busy / (static_cast<double>(ranks()) * static_cast<double>(horizon_));
}

std::string Timeline::to_csv() const {
  std::string out = "rank,begin_ns,end_ns,kind\n";
  for (int r = 0; r < ranks(); ++r) {
    for (const Segment& s : of(r)) {
      out += std::to_string(r) + ',' + std::to_string(s.begin) + ',' +
             std::to_string(s.end) + ',' + to_string(s.kind) + '\n';
    }
  }
  return out;
}

}  // namespace chksim::sim
