// The LogGOPS discrete-event engine.
//
// Executes a finalized Program under a LogGOPS network model, an optional
// CPU-availability (blackout) schedule, and an optional per-message tax
// (message logging). Semantics follow LogGOPSim:
//
//  * kCalc occupies the rank's CPU for `value` ns.
//  * kSend charges the sender o (+ per-byte O, + tax) of CPU, occupies the
//    NIC for max(g, G*s), and the payload arrives L + G*s after injection.
//    Messages on one (src,dst) channel are delivered in send order (MPI
//    non-overtaking).
//  * kRecv posts a receive; matching is FIFO per (source, tag). On match the
//    receiver is charged o (+ per-byte O, + tax) of CPU.
//  * Messages larger than S use rendezvous: the payload cannot move until the
//    receive is posted and the sender's RTS has arrived; the CTS round trip
//    and the sender's re-injection overhead are charged as latency
//    (m + (o+L) + o + L + G*s). Approximation (documented): the second
//    sender-side o and the receiver's CTS o are folded into message latency
//    rather than occupying those CPUs, and a buffered-send model is used
//    (the send op completes after its first overhead charge).
//  * Blackouts pause (preemptive mode) or exclude (non-preemptive mode) CPU
//    work; NIC transfers are not affected, matching a checkpointer that
//    freezes the process but lets in-flight DMA complete.
//
// Two entry points share one implementation:
//
//  * Engine::run() — one-shot, runs a program to completion (or deadlock).
//  * SimCore — the resumable core underneath run(): the same machine state
//    (event heap, match arenas, per-rank cursors and clocks) exposed in
//    pausable increments with snapshot/restore and external event
//    injection. fault::direct drives it to simulate failures in-DES.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chksim/sim/availability.hpp"
#include "chksim/sim/fabric.hpp"
#include "chksim/sim/loggops.hpp"
#include "chksim/sim/program.hpp"
#include "chksim/sim/trace.hpp"

namespace chksim::sim {

/// Per-message cost hook, used to model message logging: an uncoordinated
/// checkpointing protocol taxes every (logged) message with extra CPU time.
class SendTax {
 public:
  virtual ~SendTax() = default;
  /// Extra sender CPU charged per message (src -> dst, `bytes` payload).
  virtual TimeNs extra_send_cpu(RankId src, RankId dst, Bytes bytes) const = 0;
  /// Extra receiver CPU charged per message; default none.
  virtual TimeNs extra_recv_cpu(RankId /*src*/, RankId /*dst*/, Bytes /*bytes*/) const {
    return 0;
  }
};

struct EngineConfig {
  LogGOPSParams net;
  /// Optional blackout schedule (checkpoints, noise). Null = always available.
  const BlackoutSchedule* blackouts = nullptr;
  Preemption preemption = Preemption::kPreemptive;
  /// Optional per-message tax (message logging). Null = no tax.
  const SendTax* tax = nullptr;
  /// Record per-op finish times (tests / fine-grained analysis only; costs
  /// one TimeNs per op).
  bool record_op_finish = false;
  /// Optional trace sink (see sim/trace.hpp). When non-null the engine
  /// records op, message, rendezvous, blackout, and recv-wait events into
  /// it; when null, tracing costs nothing on the hot path.
  TraceSink* trace = nullptr;
  /// Conservative-PDES shard count (see sim/par_engine.hpp). 1 = the serial
  /// SimCore path, byte-for-byte unchanged. N > 1 partitions ranks into N
  /// contiguous shards advanced in bounded-window supersteps; the merged
  /// output is byte-identical to shards = 1 for any N. Engine::run falls
  /// back to the serial path when net.L < 1 (zero lookahead: a cross-rank
  /// message could arrive the instant it is sent, so no window is sound).
  int shards = 1;
  /// Optional flow-level fabric (see sim/fabric.hpp). Null = analytic
  /// transit: every message arrives the closed-form L + G*s after injection.
  /// Non-null switches the engine to flow mode: message transit times come
  /// from the fabric's max-min bandwidth-sharing solver, per-channel FIFO is
  /// enforced by the fabric (the sender-side clamp is bypassed), and
  /// rendezvous is subsumed (every payload moves as an eager fluid flow).
  /// Flow mode requires net.L >= 1 (the conservative lookahead both engine
  /// paths window on). The fabric must outlive the run; sharded runs
  /// advance it only at barriers, so one fabric serves any shard count with
  /// byte-identical results.
  Fabric* fabric = nullptr;
  /// Fail-fast memory budget (MiB of estimated engine + program working set;
  /// 0 = unlimited). When set, SimCore / ParEngine construction estimates the
  /// run's working set up front (estimate_working_set) and throws a
  /// std::runtime_error with a structured diagnostic — including the largest
  /// rank count that would fit — instead of OOM-ing minutes into a large run.
  std::int64_t rss_budget_mib = 0;
};

/// Per-rank accounting.
struct RankStats {
  TimeNs finish_time = 0;   ///< Completion time of the rank's last op.
  TimeNs cpu_busy = 0;      ///< Pure work time (calc + overheads), excl. blackouts.
  TimeNs recv_wait = 0;     ///< Total time receives waited for data (slack).
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t calcs = 0;
  Bytes bytes_sent = 0;
};

/// Finish times of one rank's ops — a slice of the RunResult arena
/// (record_op_finish only).
struct OpFinishView {
  const TimeNs* data = nullptr;
  std::size_t count = 0;

  TimeNs operator[](std::size_t i) const { return data[i]; }
  std::size_t size() const { return count; }
  const TimeNs* begin() const { return data; }
  const TimeNs* end() const { return data + count; }
};

struct RunResult {
  bool completed = false;    ///< False on deadlock (unmatched dependencies).
  TimeNs makespan = 0;       ///< max over ranks of finish_time.
  std::int64_t ops_executed = 0;
  std::int64_t events_processed = 0;
  /// Self-telemetry: high-water mark of the pending-event heap, and the
  /// per-rank high-water of *live* (src, tag) match bindings summed across
  /// ranks (bindings are pooled and released when drained; this counts the
  /// peak concurrently-live set, the quantity that actually occupies memory).
  /// Both are functions of the program + config only (deterministic and
  /// shards-invariant), so they are safe in byte-compared reports.
  std::int64_t event_heap_peak = 0;
  std::int64_t match_arena_slots = 0;
  /// Flow-fabric totals (flow mode only; all-zero analytic). Deterministic
  /// and shards-invariant like the fields above: safe to byte-compare.
  FabricStats fabric;
  std::vector<RankStats> ranks;
  /// Per-op finish times, one flat rank-major arena + per-rank offsets
  /// (record_op_finish only; one allocation instead of one per rank). Op i
  /// of rank r finished at op_finish[op_finish_offset[r] + i]; unexecuted
  /// ops hold -1. Use op_finish_of(r) for a per-rank slice.
  std::vector<TimeNs> op_finish;
  std::vector<std::uint64_t> op_finish_offset;  ///< ranks + 1 entries when recorded.
  std::string error;  ///< Deadlock diagnostics when !completed.

  /// PDES self-telemetry, filled only by the sharded engine (all zero for
  /// serial runs). These describe the *execution strategy*, not the
  /// simulated system, and may legitimately differ across shard counts —
  /// publish them to the telemetry side channel, never to byte-compared
  /// metrics (every field above this block is shards-invariant).
  std::int64_t pdes_shards = 0;       ///< Shard count actually used.
  TimeNs pdes_window = 0;             ///< Conservative lookahead window (ns).
  std::int64_t pdes_supersteps = 0;   ///< Bounded-window barriers executed.
  std::int64_t pdes_shard_heap_peak = 0;  ///< Max per-shard event-heap high-water.
  std::int64_t pdes_lane_peak = 0;    ///< Max cross-shard lane occupancy at a barrier.
  TimeNs pdes_barrier_ns = 0;         ///< Wall time spent in barrier merges (sharded only).

  /// Engine working-set gauges (capacity census at completion), filled by
  /// BOTH the serial and the sharded engine. Telemetry like the pdes block:
  /// the values describe the execution strategy's memory footprint (they
  /// legitimately differ across shard counts), so publish them to the
  /// telemetry side channel or bench reports, never to byte-compared metrics.
  std::int64_t ws_bytes = 0;           ///< Mutable working-set bytes (sum over cores).
  std::int64_t ws_match_slot_peak = 0; ///< Max per-core match-pool slots allocated.

  bool has_op_finish() const { return !op_finish_offset.empty(); }
  OpFinishView op_finish_of(RankId r) const {
    const std::size_t lo = op_finish_offset[static_cast<std::size_t>(r)];
    const std::size_t hi = op_finish_offset[static_cast<std::size_t>(r) + 1];
    return {op_finish.data() + lo, hi - lo};
  }

  /// Sum of recv_wait across ranks.
  TimeNs total_recv_wait() const;
  /// Mean cpu_busy across ranks.
  double mean_cpu_busy() const;
};

/// Restrict a composed run's result to the contiguous rank range
/// [begin, end) — the per-job view of a Program::compose run. Per-rank
/// stats, makespan, op-finish times (when recorded), and ops_executed are
/// exact for the slice; whole-machine telemetry (events_processed, heap
/// peaks, the pdes_*/ws_* blocks) has no per-job decomposition and is
/// zeroed. Throws std::invalid_argument on an empty or out-of-range slice.
RunResult slice_result(const RunResult& whole, RankId begin, RankId end);

/// An externally injected event, applied to a paused SimCore between
/// run_until() calls. Failure models use outages (a failed rank or cluster
/// makes no progress while it restarts and replays); kMessage supports
/// out-of-band arrivals in tests and trace-driven tooling.
struct Injection {
  enum class Kind : std::uint8_t {
    /// `rank`'s CPU and NIC make no progress until `until`. Pending ops and
    /// in-flight messages are untouched; they simply wait on the delayed
    /// resources — peers stall only where the dependency graph says so.
    kOutage,
    /// Out-of-band message arrival on `rank` from `src` at `time`; matches
    /// a posted (or future) recv exactly like an engine-generated arrival.
    kMessage,
  };
  Kind kind = Kind::kOutage;
  RankId rank = -1;   ///< kOutage: delayed rank; kMessage: destination.
  TimeNs time = 0;    ///< kOutage: failure instant; kMessage: arrival time.
  TimeNs until = 0;   ///< kOutage: end of the outage.
  RankId src = -1;    ///< kMessage only.
  Tag tag = 0;        ///< kMessage only.
  Bytes bytes = 0;    ///< kMessage only.
  /// Context recorded by the core ("rank 3 failed at ...; recovery ...");
  /// surfaced in the deadlock diagnostics if the run never completes.
  std::string note;
};

/// The resumable simulation core: explicit, pausable machine state.
///
/// Owns the event heap, per-rank match arenas, dependency cursors, and
/// CPU/NIC clocks of one run. Engine::run() is a thin loop over this class;
/// failure models pause it mid-run, snapshot it at checkpoint commits, roll
/// it back, and inject recovery outages.
///
/// The program, the EngineConfig, and everything the config points at
/// (blackout schedule, tax, trace sink) must outlive the core. Lifecycle:
/// construct (seeds the ready frontier), any sequence of run_until / step /
/// inject / snapshot / restore, then take_result() exactly once.
class SimCore {
 public:
  SimCore(const Program& program, const EngineConfig& config);
  ~SimCore();
  SimCore(SimCore&&) noexcept;
  SimCore& operator=(SimCore&&) noexcept;

  /// Process every pending event with time <= t, in (time, rank, key)
  /// order — a strict total order computed from event content alone, so the
  /// realized event sequence is independent of heap history (the property
  /// the sharded engine's byte-identity rests on; see engine_detail.hpp).
  void run_until(TimeNs t);

  /// Process the single earliest pending event. False when idle.
  bool step();

  /// No pending events: the program completed — or deadlocked.
  bool idle() const;
  /// Every op of the program has executed.
  bool finished() const;
  /// Time of the earliest pending event; -1 when idle.
  TimeNs next_event_time() const;
  /// Completion time of the latest op executed so far.
  TimeNs makespan() const;
  std::int64_t ops_executed() const;

  /// Apply an external event (see Injection). Outages move the rank's
  /// CPU/NIC clocks forward; messages enqueue an arrival. Injections carry
  /// no event-heap cost until their time is reached by run_until/step.
  void inject(const Injection& injection);

  /// Deep-copied value snapshot of the complete mutable state (event heap,
  /// match arenas, cursors, clocks, partial accounting). Cost is O(live
  /// state), independent of history length. A snapshot may only be restored
  /// into a core over the same program + config.
  class Snapshot {
   public:
    Snapshot();
    ~Snapshot();
    Snapshot(Snapshot&&) noexcept;
    Snapshot& operator=(Snapshot&&) noexcept;

   private:
    friend class SimCore;
    struct State;
    std::unique_ptr<State> state_;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& snap);

  /// Finish accounting (completion check, deadlock diagnostics, per-rank
  /// stats) and hand out the RunResult. Call exactly once, when done.
  RunResult take_result();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Up-front engine working-set estimate for a run of `program` under
/// `config` (see EngineConfig::rss_budget_mib). An engineering model fitted
/// to measured footprints — per-rank state, dependency counters, event/window
/// structures, plus the finalized program itself — good to a few tens of
/// percent, which is what a fail-fast budget gate needs.
struct WorkingSetEstimate {
  std::int64_t program_bytes = 0;     ///< Finalized Program storage (shared, read-only).
  std::int64_t rank_state_bytes = 0;  ///< Per-rank state, match pool, indices.
  std::int64_t event_bytes = 0;       ///< Heaps, window buckets, pop records, lanes.
  std::int64_t total_bytes = 0;       ///< Sum of the above plus fixed slack.
  std::int64_t ranks = 0;
  int shards = 1;
};
WorkingSetEstimate estimate_working_set(const Program& program,
                                        const EngineConfig& config);

/// Runs a finalized Program to completion. Stateless between calls.
class Engine {
 public:
  RunResult run(const Program& program, const EngineConfig& config) const;
};

/// Convenience wrapper.
inline RunResult run_program(const Program& program, const EngineConfig& config) {
  return Engine{}.run(program, config);
}

}  // namespace chksim::sim
