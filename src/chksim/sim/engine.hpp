// The LogGOPS discrete-event engine.
//
// Executes a finalized Program under a LogGOPS network model, an optional
// CPU-availability (blackout) schedule, and an optional per-message tax
// (message logging). Semantics follow LogGOPSim:
//
//  * kCalc occupies the rank's CPU for `value` ns.
//  * kSend charges the sender o (+ per-byte O, + tax) of CPU, occupies the
//    NIC for max(g, G*s), and the payload arrives L + G*s after injection.
//    Messages on one (src,dst) channel are delivered in send order (MPI
//    non-overtaking).
//  * kRecv posts a receive; matching is FIFO per (source, tag). On match the
//    receiver is charged o (+ per-byte O, + tax) of CPU.
//  * Messages larger than S use rendezvous: the payload cannot move until the
//    receive is posted and the sender's RTS has arrived; the CTS round trip
//    and the sender's re-injection overhead are charged as latency
//    (m + (o+L) + o + L + G*s). Approximation (documented): the second
//    sender-side o and the receiver's CTS o are folded into message latency
//    rather than occupying those CPUs, and a buffered-send model is used
//    (the send op completes after its first overhead charge).
//  * Blackouts pause (preemptive mode) or exclude (non-preemptive mode) CPU
//    work; NIC transfers are not affected, matching a checkpointer that
//    freezes the process but lets in-flight DMA complete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/sim/availability.hpp"
#include "chksim/sim/loggops.hpp"
#include "chksim/sim/program.hpp"
#include "chksim/sim/trace.hpp"

namespace chksim::sim {

/// Per-message cost hook, used to model message logging: an uncoordinated
/// checkpointing protocol taxes every (logged) message with extra CPU time.
class SendTax {
 public:
  virtual ~SendTax() = default;
  /// Extra sender CPU charged per message (src -> dst, `bytes` payload).
  virtual TimeNs extra_send_cpu(RankId src, RankId dst, Bytes bytes) const = 0;
  /// Extra receiver CPU charged per message; default none.
  virtual TimeNs extra_recv_cpu(RankId /*src*/, RankId /*dst*/, Bytes /*bytes*/) const {
    return 0;
  }
};

struct EngineConfig {
  LogGOPSParams net;
  /// Optional blackout schedule (checkpoints, noise). Null = always available.
  const BlackoutSchedule* blackouts = nullptr;
  Preemption preemption = Preemption::kPreemptive;
  /// Optional per-message tax (message logging). Null = no tax.
  const SendTax* tax = nullptr;
  /// Record per-op finish times (tests / fine-grained analysis only; costs
  /// one TimeNs per op).
  bool record_op_finish = false;
  /// Optional trace sink (see sim/trace.hpp). When non-null the engine
  /// records op, message, rendezvous, blackout, and recv-wait events into
  /// it; when null, tracing costs nothing on the hot path.
  TraceSink* trace = nullptr;
};

/// Per-rank accounting.
struct RankStats {
  TimeNs finish_time = 0;   ///< Completion time of the rank's last op.
  TimeNs cpu_busy = 0;      ///< Pure work time (calc + overheads), excl. blackouts.
  TimeNs recv_wait = 0;     ///< Total time receives waited for data (slack).
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t calcs = 0;
  Bytes bytes_sent = 0;
};

struct RunResult {
  bool completed = false;    ///< False on deadlock (unmatched dependencies).
  TimeNs makespan = 0;       ///< max over ranks of finish_time.
  std::int64_t ops_executed = 0;
  std::int64_t events_processed = 0;
  std::vector<RankStats> ranks;
  /// op_finish[r][i] = finish time of op i on rank r (record_op_finish only).
  std::vector<std::vector<TimeNs>> op_finish;
  std::string error;  ///< Deadlock diagnostics when !completed.

  /// Sum of recv_wait across ranks.
  TimeNs total_recv_wait() const;
  /// Mean cpu_busy across ranks.
  double mean_cpu_busy() const;
};

/// Runs a finalized Program to completion. Stateless between calls.
class Engine {
 public:
  RunResult run(const Program& program, const EngineConfig& config) const;
};

/// Convenience wrapper.
inline RunResult run_program(const Program& program, const EngineConfig& config) {
  return Engine{}.run(program, config);
}

}  // namespace chksim::sim
