#include "chksim/platform/timeline.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "chksim/support/rng.hpp"

namespace chksim::platform {

namespace {

constexpr TimeNs kInf = std::numeric_limits<TimeNs>::max();

/// Livelock guard: a job whose MTBF is shorter than its restart time never
/// finishes (a real phenomenon, but an unbounded event loop here).
constexpr std::int64_t kMaxFailuresPerJob = 100'000;

/// A scheduled future event of a burst: its arbiter submission (PFS tier)
/// or its local completion (burst-buffer / partner tier).
struct PendingEvent {
  TimeNs wall = 0;
  int job = 0;
  int stream = 0;
  TimeNs start_wall = 0;
  TimeNs start_machine = 0;
};

/// What an arbiter completion cookie resolves to.
struct BurstInfo {
  int job = 0;
  int stream = -1;  ///< -1 = restart read.
  TimeNs start_wall = 0;
  TimeNs start_machine = 0;
};

struct StreamState {
  std::int64_t k_next = 0;  ///< Next burst occurrence to fire.
};

struct JobState {
  TimeNs offset = 0;        ///< wall - machine (grows with failures).
  TimeNs m_commit = 0;      ///< Machine time of the last completed burst.
  int in_flight = 0;        ///< Started bursts (or restart reads) not yet done.
  bool restarting = false;
  TimeNs next_failure = kInf;  ///< Wall time; kInf = disabled.
  Rng rng{1};
  std::vector<StreamState> streams;
};

TimeNs sample_failure_gap(JobState& s, double mtbf_seconds) {
  return static_cast<TimeNs>(s.rng.exponential(mtbf_seconds * 1e9));
}

/// First burst occurrence strictly after the commit point: bursts with
/// machine start <= m_commit were saved by the commit; later ones replay.
std::int64_t first_replayed_burst(TimeNs m_commit, TimeNs phase, TimeNs interval) {
  if (m_commit < phase) return 0;
  return (m_commit - phase) / interval + 1;
}

/// Candidate event, ordered by (time, type, job, stream). Types: 0 arbiter
/// completion, 1 local completion, 2 failure, 3 submission, 4 burst start.
struct Candidate {
  TimeNs time = kInf;
  int type = 0;
  int job = -1;
  int stream = -1;

  bool beats(const Candidate& o) const {
    if (time != o.time) return time < o.time;
    if (type != o.type) return type < o.type;
    if (job != o.job) return job < o.job;
    return stream < o.stream;
  }
};

std::size_t min_pending(const std::vector<PendingEvent>& q) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    const PendingEvent& a = q[i];
    const PendingEvent& b = q[best];
    if (a.wall != b.wall ? a.wall < b.wall
                         : (a.job != b.job ? a.job < b.job : a.stream < b.stream))
      best = i;
  }
  return best;
}

}  // namespace

TimelineResult run_timeline(const TimelineConfig& config) {
  const int njobs = static_cast<int>(config.jobs.size());
  storage::SharedPfs pfs(config.pfs, config.policy);
  TimelineResult out;
  out.jobs.resize(config.jobs.size());
  std::vector<JobState> state(config.jobs.size());

  for (int j = 0; j < njobs; ++j) {
    const JobIo& io = config.jobs[static_cast<std::size_t>(j)];
    JobState& s = state[static_cast<std::size_t>(j)];
    s.streams.resize(io.streams.size());
    out.jobs[static_cast<std::size_t>(j)].stream_blackouts.resize(io.streams.size());
    out.jobs[static_cast<std::size_t>(j)].stream_contention.resize(io.streams.size());
    if (io.mtbf_seconds > 0) {
      s.rng = Rng::substream(io.failure_seed, static_cast<std::uint64_t>(j));
      s.next_failure = sample_failure_gap(s, io.mtbf_seconds);
    }
  }

  std::vector<BurstInfo> bursts;       // arbiter cookie = index
  std::vector<PendingEvent> submits;   // scheduled arbiter submissions
  std::vector<PendingEvent> locals;    // scheduled non-PFS completions
  std::vector<storage::IoCompletion> done;
  TimeNs now = 0;

  const auto complete_burst = [&](int job, int stream, TimeNs start_wall,
                                  TimeNs start_machine, TimeNs finish,
                                  TimeNs queue_wait, TimeNs service,
                                  TimeNs contention) {
    JobTimeline& jt = out.jobs[static_cast<std::size_t>(job)];
    JobState& s = state[static_cast<std::size_t>(job)];
    const int writers =
        config.jobs[static_cast<std::size_t>(job)]
            .streams[static_cast<std::size_t>(stream)]
            .writers;
    s.in_flight -= 1;
    const TimeNs dur = finish - start_wall;
    const TimeNs m_end = start_machine + dur;
    jt.stream_blackouts[static_cast<std::size_t>(stream)].push_back(
        sim::Interval{start_machine, m_end});
    const TimeNs tail = std::min(contention, dur);
    if (tail > 0)
      jt.stream_contention[static_cast<std::size_t>(stream)].push_back(
          sim::Interval{m_end - tail, m_end});
    jt.commits += 1;
    jt.queue_wait += queue_wait;
    jt.contention += contention;
    jt.contention_nodes += contention * writers;
    jt.write += service;
    s.m_commit = std::max(s.m_commit, m_end);
  };

  for (;;) {
    Candidate best;
    const TimeNs tc = pfs.next_completion();
    if (tc >= 0) best = Candidate{tc, 0, -1, -1};
    if (!locals.empty()) {
      const PendingEvent& e = locals[min_pending(locals)];
      const Candidate c{e.wall, 1, e.job, e.stream};
      if (c.beats(best)) best = c;
    }
    for (int j = 0; j < njobs; ++j) {
      const JobIo& io = config.jobs[static_cast<std::size_t>(j)];
      JobState& s = state[static_cast<std::size_t>(j)];
      if (s.next_failure != kInf && !s.restarting && s.in_flight == 0) {
        // A failure landing while a burst is in flight defers to the
        // burst's completion; `now` only grows, so this stays causal.
        const TimeNs t = std::max(s.next_failure, now);
        if (t < io.machine_end + s.offset) {
          const Candidate c{t, 2, j, -1};
          if (c.beats(best)) best = c;
        }
      }
      if (!s.restarting) {
        for (int si = 0; si < static_cast<int>(io.streams.size()); ++si) {
          const BurstStream& bs = io.streams[static_cast<std::size_t>(si)];
          const TimeNs m = bs.phase + s.streams[static_cast<std::size_t>(si)].k_next *
                                          io.interval;
          if (m >= io.machine_end) continue;
          const Candidate c{m + s.offset, 4, j, si};
          if (c.beats(best)) best = c;
        }
      }
    }
    if (!submits.empty()) {
      const PendingEvent& e = submits[min_pending(submits)];
      const Candidate c{e.wall, 3, e.job, e.stream};
      if (c.beats(best)) best = c;
    }
    if (best.time == kInf) break;
    now = best.time;

    switch (best.type) {
      case 0: {  // arbiter completions up to `now`, in (finish, id) order
        done.clear();
        pfs.advance(now, &done);
        for (const storage::IoCompletion& c : done) {
          const BurstInfo& b = bursts[static_cast<std::size_t>(c.cookie)];
          const JobIo& io = config.jobs[static_cast<std::size_t>(b.job)];
          JobTimeline& jt = out.jobs[static_cast<std::size_t>(b.job)];
          JobState& s = state[static_cast<std::size_t>(b.job)];
          if (b.stream >= 0) {
            complete_burst(b.job, b.stream, b.start_wall, b.start_machine,
                           c.finish, c.queue_wait, c.service, c.contention);
          } else {  // restart read done; relaunch, then resume from the commit
            s.in_flight -= 1;
            jt.restart += (c.finish - b.start_wall) + io.restart_fixed;
            s.offset = (c.finish + io.restart_fixed) - s.m_commit;
            s.restarting = false;
            s.next_failure = c.finish + io.restart_fixed +
                             sample_failure_gap(s, io.mtbf_seconds);
          }
        }
        break;
      }
      case 1: {  // local (non-PFS) burst completion
        const std::size_t i = min_pending(locals);
        const PendingEvent e = locals[i];
        locals.erase(locals.begin() + static_cast<std::ptrdiff_t>(i));
        const JobIo& io = config.jobs[static_cast<std::size_t>(e.job)];
        complete_burst(e.job, e.stream, e.start_wall, e.start_machine, e.wall,
                       0, io.fixed_write, 0);
        break;
      }
      case 2: {  // failure: roll back to the last commit, restart, replay
        const int j = best.job;
        const JobIo& io = config.jobs[static_cast<std::size_t>(j)];
        JobTimeline& jt = out.jobs[static_cast<std::size_t>(j)];
        JobState& s = state[static_cast<std::size_t>(j)];
        jt.failures += 1;
        if (jt.failures > kMaxFailuresPerJob)
          throw std::runtime_error(
              "platform timeline: job " + std::to_string(j) + " exceeded " +
              std::to_string(kMaxFailuresPerJob) +
              " failures — MTBF is too short for its restart cost to make "
              "progress");
        const TimeNs m_at = now - s.offset;
        jt.lost += std::max<TimeNs>(0, m_at - s.m_commit);
        for (std::size_t si = 0; si < io.streams.size(); ++si) {
          StreamState& ss = s.streams[si];
          ss.k_next = std::min(
              ss.k_next, first_replayed_burst(s.m_commit, io.streams[si].phase,
                                              io.interval));
        }
        if (io.restart_writers > 0) {
          s.restarting = true;
          s.in_flight += 1;
          storage::IoRequest req;
          req.job = j;
          req.writers = io.restart_writers;
          req.bytes_per_writer = io.restart_bytes_per_writer;
          req.priority = storage::kPriorityRestart;
          req.cookie = static_cast<std::int64_t>(bursts.size());
          bursts.push_back(BurstInfo{j, -1, now, m_at});
          pfs.submit(now, req);
        } else {  // read-back is local; only the fixed relaunch cost applies
          jt.restart += io.restart_fixed;
          s.offset = (now + io.restart_fixed) - s.m_commit;
          s.next_failure =
              now + io.restart_fixed + sample_failure_gap(s, io.mtbf_seconds);
        }
        break;
      }
      case 3: {  // arbiter submission of a started burst
        const std::size_t i = min_pending(submits);
        const PendingEvent e = submits[i];
        submits.erase(submits.begin() + static_cast<std::ptrdiff_t>(i));
        const JobIo& io = config.jobs[static_cast<std::size_t>(e.job)];
        const BurstStream& bs = io.streams[static_cast<std::size_t>(e.stream)];
        storage::IoRequest req;
        req.job = e.job;
        req.writers = bs.writers;
        req.bytes_per_writer = bs.bytes_per_writer;
        req.priority = storage::kPriorityWrite;
        req.cookie = static_cast<std::int64_t>(bursts.size());
        bursts.push_back(
            BurstInfo{e.job, e.stream, e.start_wall, e.start_machine});
        pfs.submit(e.wall, req);
        break;
      }
      case 4: {  // burst start: blackout begins, write follows coordination
        const int j = best.job;
        const int si = best.stream;
        const JobIo& io = config.jobs[static_cast<std::size_t>(j)];
        const BurstStream& bs = io.streams[static_cast<std::size_t>(si)];
        JobState& s = state[static_cast<std::size_t>(j)];
        StreamState& ss = s.streams[static_cast<std::size_t>(si)];
        const TimeNs m = bs.phase + ss.k_next * io.interval;
        ss.k_next += 1;
        out.jobs[static_cast<std::size_t>(j)].bursts += 1;
        s.in_flight += 1;
        PendingEvent e{now + io.coordination_time, j, si, now, m};
        if (io.through_pfs) {
          submits.push_back(e);
        } else {
          e.wall += io.fixed_write;
          locals.push_back(e);
        }
        break;
      }
    }
  }

  for (int j = 0; j < njobs; ++j) {
    JobTimeline& jt = out.jobs[static_cast<std::size_t>(j)];
    jt.offset = state[static_cast<std::size_t>(j)].offset;
    jt.wall_end = config.jobs[static_cast<std::size_t>(j)].machine_end + jt.offset;
    out.wall_end = std::max(out.wall_end, jt.wall_end);
  }
  out.pfs = pfs.stats();
  return out;
}

}  // namespace chksim::platform
