// Job-level building blocks of the multi-job platform layer.
//
// A "job" is one application with its own Program, checkpoint protocol, and
// contiguous rank range inside the composed machine (see Program::compose).
// This header defines what the platform timeline needs to know about each
// job's checkpoint I/O behaviour — its burst streams — plus the rank-range
// dispatch shims that let per-job artifacts (message-logging taxes) run
// unchanged inside the composed engine.
//
// Burst streams. Every prepared protocol reduces to a set of periodic burst
// streams against the shared file system:
//
//   coordinated    1 stream: all n ranks write together every interval.
//   uncoordinated  n streams: each rank writes alone on its own random phase.
//   hierarchical   n/c streams: each cluster of c ranks writes together on
//                  the cluster's random phase.
//
// A stream owns the job-local rank range it blacks out; the timeline turns
// each burst occurrence into an IoRequest and hands back the realised
// blackout interval (coordination + queue wait + service), which the
// platform maps onto the composed rank space for the engine run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chksim/ckpt/protocols.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/support/units.hpp"

namespace chksim::platform {

/// One periodic checkpoint burst stream of a job.
struct BurstStream {
  int writers = 1;              ///< Nodes writing simultaneously per burst.
  Bytes bytes_per_writer = 0;   ///< Checkpoint bytes each writer moves.
  TimeNs phase = 0;             ///< First burst start (machine time).
  sim::RankId rank_begin = 0;   ///< Job-local rank range this stream
  sim::RankId rank_end = 0;     ///< blacks out: [rank_begin, rank_end).
};

/// Everything the platform timeline needs to know about one job's I/O.
struct JobIo {
  ckpt::ProtocolKind kind = ckpt::ProtocolKind::kNone;
  int ranks = 0;
  TimeNs interval = 0;
  /// Per-burst coordination cost (sync + skew), charged before the write.
  TimeNs coordination_time = 0;
  /// True when checkpoints go through the shared PFS (contended). False for
  /// burst-buffer / partner tiers: bursts then black out their ranks for
  /// coordination_time + fixed_write without touching the arbiter.
  bool through_pfs = true;
  TimeNs fixed_write = 0;  ///< Per-burst write time when !through_pfs.
  std::vector<BurstStream> streams;

  /// Restart model: on a failure the job re-reads its last checkpoint.
  /// restart_writers > 0 and through_pfs: the read contends through the
  /// arbiter (priority kPriorityRestart). restart_writers == 0: the
  /// read-back is already folded into restart_fixed.
  int restart_writers = 0;
  Bytes restart_bytes_per_writer = 0;
  TimeNs restart_fixed = 0;  ///< Relaunch cost (plus read-back when local).

  /// Job-level failure process: exponential interarrivals with this MTBF
  /// (seconds); <= 0 disables failures for the job.
  double mtbf_seconds = 0;
  std::uint64_t failure_seed = 1;

  /// Machine-time end of the job (its perturbed engine makespan). Bursts
  /// start while their machine start time is < machine_end. Set per
  /// fixed-point round by the platform study.
  TimeNs machine_end = 0;
};

/// Inputs for make_job_io: the prepared protocol numbers plus the platform
/// placement knobs the Artifacts struct does not carry.
struct JobIoParams {
  ckpt::ProtocolKind kind = ckpt::ProtocolKind::kNone;
  int ranks = 0;
  TimeNs interval = 0;
  TimeNs coordination_time = 0;
  /// Analytic per-burst write time (used verbatim when the tier bypasses
  /// the PFS; ignored for PFS-tier jobs, whose writes the arbiter resolves).
  TimeNs write_time = 0;
  storage::StorageTier tier = storage::StorageTier::kParallelFs;
  int cluster_size = 16;           ///< Hierarchical only.
  std::uint64_t phase_seed = 1;    ///< Uncoordinated/hierarchical phases.
  /// Machine-wide stagger shift added to every phase (mod interval): the
  /// platform's E14 knob for de-phasing jobs' checkpoint bursts.
  TimeNs stagger_shift = 0;
  Bytes bytes_per_node = 0;        ///< machine.ckpt_bytes_per_node.
  TimeNs restart_fixed = 0;        ///< Fixed relaunch cost (+ local read-back).
  double mtbf_seconds = 0;
  std::uint64_t failure_seed = 1;
};

/// Expand a prepared protocol into its burst streams (see file comment).
/// Phases replicate the protocols.cpp scheme — Rng(phase_seed), uniform in
/// [0, interval) — so a platform job's schedule shape matches its solo
/// prepare_*() schedule; the stagger shift is then added mod interval.
/// Throws std::invalid_argument for a checkpointing job with interval <= 0
/// or non-positive rank count.
JobIo make_job_io(const JobIoParams& params);

/// Rank-range dispatch of per-job message taxes inside a composed engine
/// run. Jobs occupy contiguous rank ranges and never message each other, so
/// a message's tax is decided entirely by the sender's (== receiver's) job;
/// ranks are translated back to job-local numbering before dispatch (the
/// per-job LoggingTax's cluster arithmetic needs job-local ranks).
class PlatformTax final : public sim::SendTax {
 public:
  /// Register the next job's rank range [begin, end) and its tax (may be
  /// null = untaxed job). Ranges must be added in ascending, contiguous
  /// order.
  void add_job(sim::RankId begin, sim::RankId end, const sim::SendTax* tax);

  TimeNs extra_send_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const override;
  TimeNs extra_recv_cpu(sim::RankId src, sim::RankId dst, Bytes bytes) const override;

  /// True when no registered job carries a tax (the engine can skip the
  /// tax hook entirely).
  bool empty() const;

 private:
  struct Entry {
    sim::RankId begin = 0;
    sim::RankId end = 0;
    const sim::SendTax* tax = nullptr;
  };
  const Entry* entry_of(sim::RankId rank) const;
  std::vector<Entry> entries_;
};

}  // namespace chksim::platform
