#include "chksim/platform/job.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "chksim/support/rng.hpp"

namespace chksim::platform {

namespace {

/// Same scheme as protocols.cpp random_phases(): one Rng over the seed,
/// uniform draws in [0, interval), in stream order.
std::vector<TimeNs> random_phases(int count, TimeNs interval, std::uint64_t seed) {
  std::vector<TimeNs> phases(static_cast<std::size_t>(count));
  Rng rng(seed);
  for (auto& p : phases)
    p = static_cast<TimeNs>(rng.uniform_u64(static_cast<std::uint64_t>(interval)));
  return phases;
}

TimeNs shifted(TimeNs phase, TimeNs shift, TimeNs interval) {
  return (phase + shift) % interval;
}

}  // namespace

JobIo make_job_io(const JobIoParams& p) {
  if (p.ranks <= 0)
    throw std::invalid_argument("make_job_io: rank count must be > 0");
  JobIo io;
  io.kind = p.kind;
  io.ranks = p.ranks;
  io.mtbf_seconds = p.mtbf_seconds;
  io.failure_seed = p.failure_seed;
  io.restart_fixed = p.restart_fixed;
  if (p.kind == ckpt::ProtocolKind::kNone) return io;

  if (p.interval <= 0)
    throw std::invalid_argument(
        "make_job_io: checkpointing job needs a positive interval");
  io.interval = p.interval;
  io.coordination_time = p.coordination_time;
  io.through_pfs = p.tier == storage::StorageTier::kParallelFs;
  io.fixed_write = io.through_pfs ? 0 : p.write_time;
  const TimeNs shift = p.stagger_shift % p.interval;

  switch (p.kind) {
    case ckpt::ProtocolKind::kCoordinated: {
      BurstStream s;
      s.writers = p.ranks;
      s.bytes_per_writer = p.bytes_per_node;
      // First checkpoint one interval in, matching the solo coordinated
      // schedule (protocols.cpp); the stagger shift then delays it further.
      s.phase = p.interval + shift;
      s.rank_begin = 0;
      s.rank_end = p.ranks;
      io.streams.push_back(s);
      io.restart_writers = p.ranks;  // global rollback re-reads everywhere
      break;
    }
    case ckpt::ProtocolKind::kUncoordinated: {
      const std::vector<TimeNs> phases =
          random_phases(p.ranks, p.interval, p.phase_seed);
      io.streams.reserve(static_cast<std::size_t>(p.ranks));
      for (int r = 0; r < p.ranks; ++r) {
        BurstStream s;
        s.writers = 1;
        s.bytes_per_writer = p.bytes_per_node;
        s.phase = shifted(phases[static_cast<std::size_t>(r)], shift, p.interval);
        s.rank_begin = r;
        s.rank_end = r + 1;
        io.streams.push_back(s);
      }
      io.restart_writers = 1;  // only the failed node re-reads
      break;
    }
    case ckpt::ProtocolKind::kHierarchical: {
      const int cluster = std::max(1, std::min(p.cluster_size, p.ranks));
      const int n_clusters = (p.ranks + cluster - 1) / cluster;
      const std::vector<TimeNs> phases =
          random_phases(n_clusters, p.interval, p.phase_seed);
      io.streams.reserve(static_cast<std::size_t>(n_clusters));
      for (int g = 0; g < n_clusters; ++g) {
        BurstStream s;
        s.rank_begin = g * cluster;
        s.rank_end = std::min(p.ranks, (g + 1) * cluster);
        s.writers = s.rank_end - s.rank_begin;
        s.bytes_per_writer = p.bytes_per_node;
        s.phase = shifted(phases[static_cast<std::size_t>(g)], shift, p.interval);
        io.streams.push_back(s);
      }
      io.restart_writers = cluster;  // the failed cluster re-reads
      break;
    }
    case ckpt::ProtocolKind::kNone:
      break;
  }
  io.restart_bytes_per_writer = p.bytes_per_node;
  if (!io.through_pfs) io.restart_writers = 0;  // read-back folded into fixed
  return io;
}

void PlatformTax::add_job(sim::RankId begin, sim::RankId end,
                          const sim::SendTax* tax) {
  if (begin >= end)
    throw std::invalid_argument("PlatformTax: empty rank range");
  if (!entries_.empty() && begin != entries_.back().end)
    throw std::invalid_argument(
        "PlatformTax: job rank ranges must be contiguous and ascending");
  entries_.push_back(Entry{begin, end, tax});
}

const PlatformTax::Entry* PlatformTax::entry_of(sim::RankId rank) const {
  // Ranges are contiguous and sorted; find the one containing `rank`.
  auto it = std::upper_bound(entries_.begin(), entries_.end(), rank,
                             [](sim::RankId r, const Entry& e) { return r < e.end; });
  if (it == entries_.end() || rank < it->begin) return nullptr;
  return &*it;
}

TimeNs PlatformTax::extra_send_cpu(sim::RankId src, sim::RankId dst,
                                   Bytes bytes) const {
  const Entry* e = entry_of(src);
  if (e == nullptr || e->tax == nullptr) return 0;
  return e->tax->extra_send_cpu(src - e->begin, dst - e->begin, bytes);
}

TimeNs PlatformTax::extra_recv_cpu(sim::RankId src, sim::RankId dst,
                                   Bytes bytes) const {
  const Entry* e = entry_of(dst);
  if (e == nullptr || e->tax == nullptr) return 0;
  return e->tax->extra_recv_cpu(src - e->begin, dst - e->begin, bytes);
}

bool PlatformTax::empty() const {
  for (const Entry& e : entries_)
    if (e.tax != nullptr) return false;
  return true;
}

}  // namespace chksim::platform
