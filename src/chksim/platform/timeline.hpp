// The platform timeline: a wallclock discrete-event simulation of every
// job's checkpoint bursts, restarts, and failures against the SharedPfs
// arbiter.
//
// Division of labour with the engine. Checkpoint burst *starts* are
// schedule-driven (periodic per stream, independent of the application's
// instantaneous state — exactly the preemptive-blackout model the single-job
// studies use), so the storage contention they generate can be resolved on a
// timeline of its own: each burst occurrence becomes an IoRequest, the
// arbiter decides when it finishes, and the realised blackout interval
// [start, completion) — coordination + queue wait + service — is handed
// back in machine time. The composed engine run then replays these resolved
// blackouts against the full message graph to measure propagation. An outer
// fixed point (run_platform_study) closes the loop between job makespans and
// burst counts.
//
// Failures are job-level: a failure rolls the job back to its most recent
// completed burst (its last commit), submits the protocol's restart read
// through the arbiter at restart priority — contending with neighbours'
// checkpoint writes — and shifts the job's wallclock by the lost work plus
// the realised restart time. The job then replays: burst starts between the
// commit and the failure recur (and re-contend). Machine time (the engine
// axis) is unchanged — wall = machine + offset(job) — so failure waste is
// accounted here, on the platform axis, while the engine measures the
// failure-free propagation behaviour. Approximations (documented in
// MODEL.md §8): rollback is job-level even for message-logging protocols,
// and a failure that lands while the job has a burst in flight is processed
// when the burst completes.
//
// Everything is serial and deterministic: events are processed in strict
// (time, kind, job, stream) order and all randomness comes from seeded
// substreams.
#pragma once

#include <cstdint>
#include <vector>

#include "chksim/platform/job.hpp"
#include "chksim/sim/availability.hpp"
#include "chksim/storage/shared_pfs.hpp"

namespace chksim::platform {

struct TimelineConfig {
  storage::PfsParams pfs;
  storage::ArbiterPolicy policy = storage::ArbiterPolicy::kFcfs;
  std::vector<JobIo> jobs;  ///< machine_end must be set on every entry.
};

/// One job's resolved timeline.
struct JobTimeline {
  /// Realised blackout intervals per stream, machine time, in start order.
  /// Intervals of one stream may overlap after a rollback replay (the same
  /// machine region re-executes); ListBlackouts merges them.
  std::vector<std::vector<sim::Interval>> stream_blackouts;
  /// The contention tail of each blackout — the part attributable to other
  /// tenants (queue wait + bandwidth-share stretch), machine time. Feeds
  /// the obs storage_contention attribution category.
  std::vector<std::vector<sim::Interval>> stream_contention;

  TimeNs offset = 0;    ///< wall - machine at job end (failure-added delay).
  TimeNs wall_end = 0;  ///< machine_end + offset.

  std::int64_t bursts = 0;      ///< Burst occurrences fired (incl. replays).
  std::int64_t commits = 0;     ///< Bursts completed.
  std::int64_t failures = 0;
  TimeNs queue_wait = 0;        ///< Summed over completed bursts.
  TimeNs contention = 0;        ///< Summed over completed bursts.
  TimeNs contention_nodes = 0;  ///< Sum of contention x writers (node-ns).
  TimeNs write = 0;             ///< Summed service time (bursts).
  TimeNs lost = 0;              ///< Machine time rolled back by failures.
  TimeNs restart = 0;           ///< Restart time (read-back + relaunch).
};

struct TimelineResult {
  std::vector<JobTimeline> jobs;
  storage::SharedPfs::Stats pfs;
  TimeNs wall_end = 0;  ///< max over jobs of wall_end.
};

TimelineResult run_timeline(const TimelineConfig& config);

}  // namespace chksim::platform
