#include "chksim/noise/noise.hpp"

#include <stdexcept>
#include <vector>

#include "chksim/support/rng.hpp"

namespace chksim::noise {

std::unique_ptr<sim::BlackoutSchedule> make_periodic_noise(
    int ranks, const PeriodicNoiseConfig& cfg) {
  if (ranks <= 0) throw std::invalid_argument("noise: ranks must be > 0");
  if (cfg.period <= 0 || cfg.duration < 0 || cfg.duration > cfg.period)
    throw std::invalid_argument("noise: need 0 <= duration <= period, period > 0");
  if (cfg.aligned)
    return std::make_unique<sim::PeriodicBlackouts>(cfg.period, cfg.duration, TimeNs{0});
  std::vector<TimeNs> phases(static_cast<std::size_t>(ranks));
  Rng rng(cfg.seed);
  for (auto& p : phases)
    p = static_cast<TimeNs>(rng.uniform_u64(static_cast<std::uint64_t>(cfg.period)));
  return std::make_unique<sim::PeriodicBlackouts>(cfg.period, cfg.duration,
                                                  std::move(phases));
}

std::unique_ptr<sim::BlackoutSchedule> make_poisson_noise(int ranks, TimeNs mean_gap,
                                                          TimeNs duration, TimeNs horizon,
                                                          std::uint64_t seed) {
  if (ranks <= 0) throw std::invalid_argument("noise: ranks must be > 0");
  if (mean_gap <= 0 || duration <= 0 || horizon <= 0)
    throw std::invalid_argument("noise: mean_gap, duration, horizon must be > 0");
  std::vector<std::vector<sim::Interval>> per_rank(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    Rng rng = Rng::substream(seed, static_cast<std::uint64_t>(r));
    TimeNs t = 0;
    auto& list = per_rank[static_cast<std::size_t>(r)];
    while (true) {
      const TimeNs gap = units::from_seconds(
          rng.exponential(units::to_seconds(mean_gap)));
      if (gap <= 0) continue;
      if (t > horizon - gap) break;
      t += gap;
      list.push_back(sim::Interval{t, t + duration});
      t += duration;
    }
  }
  return std::make_unique<sim::ListBlackouts>(std::move(per_rank));
}

std::unique_ptr<sim::BlackoutSchedule> make_single_blackout(int ranks, sim::RankId rank,
                                                            sim::Interval interval) {
  if (ranks <= 0 || rank < 0 || rank >= ranks)
    throw std::invalid_argument("noise: rank out of range");
  if (interval.end < interval.begin)
    throw std::invalid_argument("noise: malformed interval");
  std::vector<std::vector<sim::Interval>> per_rank(static_cast<std::size_t>(ranks));
  per_rank[static_cast<std::size_t>(rank)].push_back(interval);
  return std::make_unique<sim::ListBlackouts>(std::move(per_rank));
}

AmplificationReport measure_amplification(const sim::Program& program,
                                          const sim::EngineConfig& base_config,
                                          const sim::BlackoutSchedule& noise,
                                          double injected) {
  if (injected < 0) throw std::invalid_argument("noise: injected fraction must be >= 0");
  AmplificationReport rep;
  rep.injected = injected;

  sim::EngineConfig base = base_config;
  base.blackouts = nullptr;
  const sim::RunResult r0 = sim::run_program(program, base);
  if (!r0.completed) throw std::runtime_error("base run did not complete: " + r0.error);
  rep.base_makespan = r0.makespan;

  sim::EngineConfig noisy = base_config;
  noisy.blackouts = &noise;
  const sim::RunResult r1 = sim::run_program(program, noisy);
  if (!r1.completed) throw std::runtime_error("noisy run did not complete: " + r1.error);
  rep.noisy_makespan = r1.makespan;

  rep.slowdown = static_cast<double>(r1.makespan) / static_cast<double>(r0.makespan);
  rep.amplification = injected > 0 ? (rep.slowdown - 1.0) / injected : 0.0;
  return rep;
}

}  // namespace chksim::noise
