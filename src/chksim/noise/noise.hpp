// OS-noise injection and amplification analysis.
//
// Checkpointing activity is, from the application's point of view,
// low-frequency high-amplitude noise. This module provides noise schedules
// built on the same blackout machinery as the checkpoint protocols, plus the
// amplification metric that connects the two: how much total application
// slowdown results per unit of injected per-rank unavailability.
#pragma once

#include <memory>

#include "chksim/sim/availability.hpp"
#include "chksim/sim/engine.hpp"

namespace chksim::noise {

struct PeriodicNoiseConfig {
  TimeNs period = 1'000'000;   ///< 1 kHz default.
  TimeNs duration = 10'000;    ///< 10 us detour per event (1% noise).
  /// Random per-rank phases (uncoordinated noise, the realistic case) or a
  /// single common phase (co-scheduled noise).
  bool aligned = false;
  std::uint64_t seed = 1;
};

/// Strictly periodic noise on every rank.
std::unique_ptr<sim::BlackoutSchedule> make_periodic_noise(int ranks,
                                                           const PeriodicNoiseConfig& cfg);

/// Poisson noise: exponentially-distributed gaps with the given mean, fixed
/// event duration, pre-generated up to `horizon` per rank.
std::unique_ptr<sim::BlackoutSchedule> make_poisson_noise(int ranks, TimeNs mean_gap,
                                                          TimeNs duration, TimeNs horizon,
                                                          std::uint64_t seed);

/// A single blackout interval on a single rank (delay-propagation probes).
std::unique_ptr<sim::BlackoutSchedule> make_single_blackout(int ranks, sim::RankId rank,
                                                            sim::Interval interval);

/// Injected unavailability fraction of a periodic schedule.
inline double injected_fraction(const PeriodicNoiseConfig& cfg) {
  return static_cast<double>(cfg.duration) / static_cast<double>(cfg.period);
}

struct AmplificationReport {
  TimeNs base_makespan = 0;
  TimeNs noisy_makespan = 0;
  double slowdown = 1.0;           ///< noisy / base.
  double injected = 0;             ///< injected unavailability fraction.
  /// (slowdown - 1) / injected: 1.0 = full absorption boundary; values > 1
  /// mean the network dependency graph amplifies the perturbation, < 1 that
  /// slack absorbs part of it.
  double amplification = 0;
};

/// Run `program` with and without `noise` and report the amplification of
/// an injected fraction `injected` (pass injected_fraction(cfg) for
/// periodic noise). The program must be finalized.
AmplificationReport measure_amplification(const sim::Program& program,
                                          const sim::EngineConfig& base_config,
                                          const sim::BlackoutSchedule& noise,
                                          double injected);

}  // namespace chksim::noise
