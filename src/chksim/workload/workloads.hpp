// Application-workload generators.
//
// Each generator emits the communication skeleton of a class of HPC
// application as a Program DAG. The skeletons are the ones the
// checkpointing-at-scale literature evaluates against: nearest-neighbour
// halo exchange (stencil solvers, MD), wavefront sweeps (Sn transport),
// allreduce-dominated iteration (CG solvers, HPCCG), alltoall transposes
// (spectral codes), plus stress patterns (ring, random sparse,
// master/worker) and an embarrassingly-parallel control.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chksim/sim/program.hpp"

namespace chksim::workload {

/// Near-square factorisation px*py == ranks with px <= py.
struct Grid2d {
  int x = 1;
  int y = 1;
};
Grid2d factor2d(int ranks);

/// Near-cubic factorisation px*py*pz == ranks with px <= py <= pz.
struct Grid3d {
  int x = 1;
  int y = 1;
  int z = 1;
};
Grid3d factor3d(int ranks);

struct Halo2dConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_per_iter = 1'000'000;  // 1 ms
  Bytes halo_bytes = 8192;
  bool nine_point = false;  ///< include diagonal neighbours
};
/// Periodic 2D domain decomposition with per-iteration halo exchange.
sim::Program make_halo2d(const Halo2dConfig& cfg);

struct Halo3dConfig {
  int ranks = 27;
  int iterations = 10;
  TimeNs compute_per_iter = 1'000'000;
  Bytes halo_bytes = 8192;
  bool full27 = false;  ///< 27-point stencil (26 neighbours) instead of 7-point
};
/// Periodic 3D domain decomposition with per-iteration halo exchange.
sim::Program make_halo3d(const Halo3dConfig& cfg);

struct SweepConfig {
  int ranks = 16;
  int sweeps = 4;                      ///< full 4-direction sweep repetitions
  TimeNs compute_per_stage = 200'000;  ///< per-rank work per wavefront stage
  Bytes angle_bytes = 4096;
};
/// KBA-style 2D wavefront sweep from each of the four corners; strong
/// serial dependency chains (the pattern most sensitive to delay
/// propagation).
sim::Program make_sweep2d(const SweepConfig& cfg);

struct HpccgConfig {
  int ranks = 27;
  int iterations = 10;
  TimeNs spmv_compute = 2'000'000;
  Bytes halo_bytes = 8192;
  int dot_products = 3;  ///< small allreduces per iteration (CG dot products)
};
/// HPCCG/CG proxy: 3D halo exchange + latency-sensitive small allreduces.
sim::Program make_hpccg(const HpccgConfig& cfg);

struct LammpsConfig {
  int ranks = 27;
  int iterations = 20;
  TimeNs force_compute = 5'000'000;
  Bytes halo_bytes = 65536;
  int allreduce_every = 10;  ///< thermo output cadence
};
/// Molecular-dynamics proxy: 3D halo exchange with heavier compute and an
/// occasional global reduction.
sim::Program make_lammps(const LammpsConfig& cfg);

struct FftConfig {
  int ranks = 16;
  int iterations = 5;
  TimeNs compute_per_iter = 1'000'000;
  Bytes bytes_per_pair = 16384;
};
/// Spectral-code proxy: compute + global alltoall transpose per iteration.
sim::Program make_fft(const FftConfig& cfg);

struct Fft2dConfig {
  int ranks = 16;  ///< Decomposed as a px x py process grid.
  int iterations = 5;
  TimeNs compute_per_iter = 1'000'000;
  Bytes bytes_per_pair = 16384;
};
/// Pencil-decomposed 2D FFT proxy: each iteration does an alltoall within
/// each process-grid ROW, compute, then an alltoall within each COLUMN —
/// the classic subcommunicator pattern (perturbation spreads first along
/// rows, then along columns).
sim::Program make_fft2d(const Fft2dConfig& cfg);

struct RingConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_per_iter = 500'000;
  Bytes bytes = 8192;
};
/// Unidirectional ring pipeline.
sim::Program make_ring(const RingConfig& cfg);

struct RandomSparseConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_per_iter = 1'000'000;
  Bytes bytes = 8192;
  int degree = 4;  ///< out-neighbours per rank per iteration
  std::uint64_t seed = 1;
};
/// Irregular point-to-point pattern: each rank messages `degree` random
/// peers each iteration (graph/AMR-like).
sim::Program make_random_sparse(const RandomSparseConfig& cfg);

struct MasterWorkerConfig {
  int ranks = 8;
  int tasks = 64;
  TimeNs task_compute_mean = 2'000'000;
  double task_compute_cv = 0.3;  ///< coefficient of variation of task cost
  Bytes task_bytes = 4096;
  Bytes result_bytes = 1024;
  std::uint64_t seed = 1;
};
/// Master/worker task farm (round-robin dispatch with result-driven
/// pipelining).
sim::Program make_master_worker(const MasterWorkerConfig& cfg);

struct EpConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_per_iter = 1'000'000;
};
/// Embarrassingly parallel control: per-iteration compute, one final
/// 8-byte allreduce.
sim::Program make_ep(const EpConfig& cfg);

struct AllreduceConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_per_iter = 1'000'000;
  Bytes reduce_bytes = 8;
};
/// Pure compute + allreduce loop (bulk-synchronous kernel).
sim::Program make_allreduce_loop(const AllreduceConfig& cfg);

struct ImbalancedBspConfig {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute_mean = 1'000'000;
  double compute_cv = 0.2;  ///< coefficient of variation of per-rank work
  Bytes reduce_bytes = 8;
  std::uint64_t seed = 1;
};
/// Bulk-synchronous loop with per-rank, per-iteration compute imbalance
/// (truncated normal): the source of arrival skew at coordination points.
sim::Program make_imbalanced_bsp(const ImbalancedBspConfig& cfg);

struct PipelineConfig {
  int ranks = 16;
  int items = 64;                    ///< work items flowing through the chain
  TimeNs stage_compute = 1'000'000;  ///< per-stage processing per item
  Bytes item_bytes = 65536;
};
/// Software pipeline: rank r processes item k then forwards it to rank r+1
/// (streaming dataflow; deep chains, natural slack at the ends).
sim::Program make_pipeline(const PipelineConfig& cfg);

/// ---- Registry -----------------------------------------------------------

/// Common knobs accepted by every registry workload.
struct StdParams {
  int ranks = 16;
  int iterations = 10;
  TimeNs compute = 1'000'000;
  Bytes bytes = 8192;
  std::uint64_t seed = 1;
};

/// Build a workload by name ("halo2d", "halo2d9", "halo3d", "halo3d27",
/// "sweep2d", "hpccg", "lammps", "fft", "ring", "random", "master_worker",
/// "ep", "allreduce"). Throws std::invalid_argument on unknown names.
sim::Program make_workload(const std::string& name, const StdParams& params);

/// All registry names, in a stable order.
std::vector<std::string> workload_names();

/// One-line description of a registry workload.
std::string workload_description(const std::string& name);

}  // namespace chksim::workload
