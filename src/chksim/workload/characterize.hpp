// Workload characterisation: the communication-profile metrics that
// determine how an application responds to checkpoint perturbation
// (message rate, volume, dependency depth, compute/communication balance,
// load imbalance). Backs the T1 table and the skew inputs of the
// coordination model.
#pragma once

#include <string>

#include "chksim/sim/engine.hpp"
#include "chksim/sim/program.hpp"

namespace chksim::workload {

struct Characterization {
  int ranks = 0;
  std::int64_t ops = 0;
  std::int64_t messages = 0;
  Bytes bytes = 0;
  std::int64_t dependency_depth = 0;

  TimeNs makespan = 0;
  double msgs_per_rank_per_second = 0;
  double bytes_per_rank_per_second = 0;
  /// 1 - mean per-rank pure compute / makespan: the fraction of wallclock
  /// not covered by local computation (communication + waiting).
  double comm_fraction = 0;
  /// Mean fraction of makespan ranks spend blocked in receives.
  double recv_wait_fraction = 0;
  /// Stddev of per-rank finish times (ns): arrival skew at the final
  /// synchronisation point; feeds CoordinatedConfig::skew_sigma_ns.
  double finish_skew_ns = 0;
};

/// Run `program` (must be finalized) under `net` and compute its profile.
Characterization characterize(const sim::Program& program,
                              const sim::EngineConfig& config);

/// Convenience: build a registry workload and characterize it.
Characterization characterize_workload(const std::string& name,
                                       const struct StdParams& params,
                                       const sim::EngineConfig& config);

}  // namespace chksim::workload
