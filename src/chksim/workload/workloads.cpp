#include "chksim/workload/workloads.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <stdexcept>

#include "chksim/coll/collectives.hpp"
#include "chksim/support/rng.hpp"

namespace chksim::workload {

using coll::Deps;
using sim::OpRef;
using sim::Program;
using sim::RankId;
using sim::Tag;

Grid2d factor2d(int ranks) {
  if (ranks <= 0) throw std::invalid_argument("factor2d: ranks must be > 0");
  Grid2d g;
  for (int x = 1; x * x <= ranks; ++x)
    if (ranks % x == 0) g.x = x;
  g.y = ranks / g.x;
  return g;
}

Grid3d factor3d(int ranks) {
  if (ranks <= 0) throw std::invalid_argument("factor3d: ranks must be > 0");
  Grid3d g;
  int best_x = 1;
  for (int x = 1; x * x * x <= ranks; ++x)
    if (ranks % x == 0) best_x = x;
  g.x = best_x;
  const Grid2d yz = factor2d(ranks / best_x);
  g.y = std::min(yz.x, yz.y);
  g.z = std::max(yz.x, yz.y);
  if (g.y < g.x) std::swap(g.x, g.y);
  if (g.y > g.z) std::swap(g.y, g.z);
  if (g.y < g.x) std::swap(g.x, g.y);
  return g;
}

namespace {

/// Run `build_iteration` (one SPMD iteration block) `iterations` times,
/// using Program::repeat to instantiate all but the first two iterations by
/// block copy: iteration 0 seeds the frontier, iteration 1 is the template
/// (its in-edges reference iteration 0, exactly the shape every later copy
/// needs), and the remaining copies are columnar duplicates. Callers that
/// consume the frontier after the loop pass it via `carry` so repeat() can
/// re-target it to the last copy.
template <typename F>
void repeat_iterations(Program& p, int iterations, F&& build_iteration,
                       std::vector<OpRef>* carry = nullptr) {
  if (iterations < 3) {
    for (int it = 0; it < iterations; ++it) build_iteration();
    return;
  }
  build_iteration();
  p.begin_repeat();
  build_iteration();
  p.repeat(iterations - 2, carry);
}

/// Bulk-synchronous neighbour exchange: per iteration each rank computes,
/// then exchanges `bytes` with each of its (symmetric) neighbours; the next
/// iteration's compute waits for all of this iteration's sends and recvs.
Program make_neighbor_exchange(int ranks, const std::vector<std::vector<RankId>>& nbrs,
                               int iterations, TimeNs compute, Bytes bytes) {
  assert(static_cast<int>(nbrs.size()) == ranks);
  Program p(ranks);
  std::vector<std::vector<OpRef>> frontier(static_cast<std::size_t>(ranks));
  repeat_iterations(p, iterations, [&] {
    const Tag tag = p.allocate_tags();
    for (RankId r = 0; r < ranks; ++r) {
      const OpRef c = p.calc(r, compute);
      p.depends_all(frontier[static_cast<std::size_t>(r)], c);
      auto& f = frontier[static_cast<std::size_t>(r)];
      f.clear();
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef s = p.send(r, n, bytes, tag);
        p.depends(c, s);
        f.push_back(s);
      }
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef rv = p.recv(r, n, bytes, tag);
        p.depends(c, rv);
        f.push_back(rv);
      }
    }
  });
  return p;
}

std::vector<std::vector<RankId>> grid2d_neighbors(const Grid2d& g, bool nine_point) {
  const int ranks = g.x * g.y;
  std::vector<std::vector<RankId>> nbrs(static_cast<std::size_t>(ranks));
  auto id = [&](int x, int y) {
    return static_cast<RankId>(((x + g.x) % g.x) + ((y + g.y) % g.y) * g.x);
  };
  for (int y = 0; y < g.y; ++y) {
    for (int x = 0; x < g.x; ++x) {
      const RankId r = id(x, y);
      auto& n = nbrs[static_cast<std::size_t>(r)];
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (!nine_point && dx != 0 && dy != 0) continue;
          const RankId peer = id(x + dx, y + dy);
          if (peer != r && std::find(n.begin(), n.end(), peer) == n.end())
            n.push_back(peer);
        }
      }
    }
  }
  return nbrs;
}

std::vector<std::vector<RankId>> grid3d_neighbors(const Grid3d& g, bool full27) {
  const int ranks = g.x * g.y * g.z;
  std::vector<std::vector<RankId>> nbrs(static_cast<std::size_t>(ranks));
  auto id = [&](int x, int y, int z) {
    return static_cast<RankId>(((x + g.x) % g.x) + ((y + g.y) % g.y) * g.x +
                               ((z + g.z) % g.z) * g.x * g.y);
  };
  for (int z = 0; z < g.z; ++z) {
    for (int y = 0; y < g.y; ++y) {
      for (int x = 0; x < g.x; ++x) {
        const RankId r = id(x, y, z);
        auto& n = nbrs[static_cast<std::size_t>(r)];
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const int order = std::abs(dx) + std::abs(dy) + std::abs(dz);
              if (order == 0) continue;
              if (!full27 && order != 1) continue;
              const RankId peer = id(x + dx, y + dy, z + dz);
              if (peer != r && std::find(n.begin(), n.end(), peer) == n.end())
                n.push_back(peer);
            }
          }
        }
      }
    }
  }
  return nbrs;
}

/// Reduce a per-rank multi-op frontier into single-op Deps usable as a
/// collective entry (inserts zero-duration join calcs where needed).
Deps join_frontier(Program& p, std::vector<std::vector<OpRef>>& frontier) {
  Deps entry(frontier.size());
  for (std::size_t r = 0; r < frontier.size(); ++r) {
    if (frontier[r].empty()) continue;
    if (frontier[r].size() == 1) {
      entry[r] = frontier[r][0];
    } else {
      const OpRef j = p.calc(static_cast<RankId>(r), 0);
      p.depends_all(frontier[r], j);
      entry[r] = j;
    }
  }
  return entry;
}

}  // namespace

Program make_halo2d(const Halo2dConfig& cfg) {
  const Grid2d g = factor2d(cfg.ranks);
  return make_neighbor_exchange(cfg.ranks, grid2d_neighbors(g, cfg.nine_point),
                                cfg.iterations, cfg.compute_per_iter, cfg.halo_bytes);
}

Program make_halo3d(const Halo3dConfig& cfg) {
  const Grid3d g = factor3d(cfg.ranks);
  return make_neighbor_exchange(cfg.ranks, grid3d_neighbors(g, cfg.full27),
                                cfg.iterations, cfg.compute_per_iter, cfg.halo_bytes);
}

Program make_sweep2d(const SweepConfig& cfg) {
  const Grid2d g = factor2d(cfg.ranks);
  Program p(cfg.ranks);
  auto id = [&](int x, int y) { return static_cast<RankId>(x + y * g.x); };
  static constexpr int kDirs[4][2] = {{1, 1}, {-1, 1}, {1, -1}, {-1, -1}};
  std::vector<OpRef> frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.sweeps, [&] {
    for (int d = 0; d < 4; ++d) {
      const Tag tag = p.allocate_tags();
      const int dx = kDirs[d][0];
      const int dy = kDirs[d][1];
      for (int y = 0; y < g.y; ++y) {
        for (int x = 0; x < g.x; ++x) {
          const RankId r = id(x, y);
          const OpRef c = p.calc(r, cfg.compute_per_stage);
          if (frontier[static_cast<std::size_t>(r)].valid())
            p.depends(frontier[static_cast<std::size_t>(r)], c);
          // Upstream inputs (non-periodic: absent at the inflow boundary).
          const int ux = x - dx;
          const int uy = y - dy;
          if (ux >= 0 && ux < g.x) {
            const OpRef rv = p.recv(r, id(ux, y), cfg.angle_bytes, tag);
            if (frontier[static_cast<std::size_t>(r)].valid())
              p.depends(frontier[static_cast<std::size_t>(r)], rv);
            p.depends(rv, c);
          }
          if (uy >= 0 && uy < g.y) {
            const OpRef rv = p.recv(r, id(x, uy), cfg.angle_bytes, tag);
            if (frontier[static_cast<std::size_t>(r)].valid())
              p.depends(frontier[static_cast<std::size_t>(r)], rv);
            p.depends(rv, c);
          }
          // Downstream outputs.
          OpRef last = c;
          const int vx = x + dx;
          const int vy = y + dy;
          if (vx >= 0 && vx < g.x) {
            const OpRef sd = p.send(r, id(vx, y), cfg.angle_bytes, tag);
            p.depends(c, sd);
            last = sd;
          }
          if (vy >= 0 && vy < g.y) {
            const OpRef sd = p.send(r, id(x, vy), cfg.angle_bytes, tag);
            p.depends(c, sd);
            last = sd;
          }
          frontier[static_cast<std::size_t>(r)] = last;
        }
      }
    }
  });
  return p;
}

Program make_hpccg(const HpccgConfig& cfg) {
  const Grid3d g = factor3d(cfg.ranks);
  const auto nbrs = grid3d_neighbors(g, /*full27=*/false);
  Program p(cfg.ranks);
  const coll::Group group = coll::full_group(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.iterations, [&] {
    const Tag tag = p.allocate_tags();
    std::vector<std::vector<OpRef>> phase(static_cast<std::size_t>(cfg.ranks));
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.spmv_compute);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      auto& f = phase[static_cast<std::size_t>(r)];
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef s = p.send(r, n, cfg.halo_bytes, tag);
        p.depends(c, s);
        f.push_back(s);
      }
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef rv = p.recv(r, n, cfg.halo_bytes, tag);
        p.depends(c, rv);
        f.push_back(rv);
      }
    }
    frontier = join_frontier(p, phase);
    // CG dot products: small local work + 8-byte allreduce each.
    for (int d = 0; d < cfg.dot_products; ++d) {
      for (RankId r = 0; r < cfg.ranks; ++r) {
        const OpRef c = p.calc(r, cfg.spmv_compute / 20);
        if (frontier[static_cast<std::size_t>(r)].valid())
          p.depends(frontier[static_cast<std::size_t>(r)], c);
        frontier[static_cast<std::size_t>(r)] = c;
      }
      frontier = coll::allreduce_recursive_doubling(p, group, 8, frontier);
    }
  });
  return p;
}

Program make_lammps(const LammpsConfig& cfg) {
  const Grid3d g = factor3d(cfg.ranks);
  const auto nbrs = grid3d_neighbors(g, /*full27=*/false);
  Program p(cfg.ranks);
  const coll::Group group = coll::full_group(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  const auto halo_iteration = [&] {
    const Tag tag = p.allocate_tags();
    std::vector<std::vector<OpRef>> phase(static_cast<std::size_t>(cfg.ranks));
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.force_compute);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      auto& f = phase[static_cast<std::size_t>(r)];
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef s = p.send(r, n, cfg.halo_bytes, tag);
        p.depends(c, s);
        f.push_back(s);
      }
      for (RankId n : nbrs[static_cast<std::size_t>(r)]) {
        const OpRef rv = p.recv(r, n, cfg.halo_bytes, tag);
        p.depends(c, rv);
        f.push_back(rv);
      }
    }
    frontier = join_frontier(p, phase);
  };
  const auto is_reduce_iter = [&](int it) {
    return cfg.allreduce_every > 0 && (it + 1) % cfg.allreduce_every == 0;
  };
  // Iterations between allreduces are identical; template-replicate each
  // plain run, then build the allreduce iteration explicitly (its successor
  // run starts from the allreduce exits, a different in-edge shape).
  int it = 0;
  while (it < cfg.iterations) {
    int run_end = it;
    while (run_end < cfg.iterations && !is_reduce_iter(run_end)) ++run_end;
    repeat_iterations(p, run_end - it, halo_iteration, &frontier);
    it = run_end;
    if (it < cfg.iterations) {
      halo_iteration();
      frontier = coll::allreduce_recursive_doubling(p, group, 8, frontier);
      ++it;
    }
  }
  return p;
}

Program make_fft(const FftConfig& cfg) {
  Program p(cfg.ranks);
  const coll::Group group = coll::full_group(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.iterations, [&] {
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.compute_per_iter);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      frontier[static_cast<std::size_t>(r)] = c;
    }
    frontier = coll::alltoall_pairwise(p, group, cfg.bytes_per_pair, frontier);
  });
  return p;
}

Program make_fft2d(const Fft2dConfig& cfg) {
  const Grid2d g = factor2d(cfg.ranks);
  Program p(cfg.ranks);
  auto id = [&](int x, int y) { return static_cast<RankId>(x + y * g.x); };
  // Row and column subgroups of the process grid.
  std::vector<coll::Group> rows(static_cast<std::size_t>(g.y));
  std::vector<coll::Group> cols(static_cast<std::size_t>(g.x));
  for (int y = 0; y < g.y; ++y)
    for (int x = 0; x < g.x; ++x) rows[static_cast<std::size_t>(y)].push_back(id(x, y));
  for (int x = 0; x < g.x; ++x)
    for (int y = 0; y < g.y; ++y) cols[static_cast<std::size_t>(x)].push_back(id(x, y));

  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  auto add_compute = [&] {
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.compute_per_iter / 2);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      frontier[static_cast<std::size_t>(r)] = c;
    }
  };
  auto transpose = [&](const std::vector<coll::Group>& groups) {
    for (const coll::Group& grp : groups) {
      if (grp.size() < 2) continue;
      // Entry/exit deps for this subgroup only.
      Deps entry(grp.size());
      for (std::size_t i = 0; i < grp.size(); ++i)
        entry[i] = frontier[static_cast<std::size_t>(grp[i])];
      const Deps exits = coll::alltoall_pairwise(p, grp, cfg.bytes_per_pair, entry);
      for (std::size_t i = 0; i < grp.size(); ++i)
        frontier[static_cast<std::size_t>(grp[i])] = exits[i];
    }
  };
  repeat_iterations(p, cfg.iterations, [&] {
    add_compute();
    transpose(rows);
    add_compute();
    transpose(cols);
  });
  return p;
}

Program make_ring(const RingConfig& cfg) {
  if (cfg.ranks < 2) throw std::invalid_argument("ring needs >= 2 ranks");
  Program p(cfg.ranks);
  std::vector<std::vector<OpRef>> frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.iterations, [&] {
    const Tag tag = p.allocate_tags();
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.compute_per_iter);
      p.depends_all(frontier[static_cast<std::size_t>(r)], c);
      const OpRef s = p.send(r, (r + 1) % cfg.ranks, cfg.bytes, tag);
      const OpRef rv = p.recv(r, (r + cfg.ranks - 1) % cfg.ranks, cfg.bytes, tag);
      p.depends(c, s);
      p.depends(c, rv);
      frontier[static_cast<std::size_t>(r)] = {s, rv};
    }
  });
  return p;
}

Program make_random_sparse(const RandomSparseConfig& cfg) {
  if (cfg.ranks < 2) throw std::invalid_argument("random_sparse needs >= 2 ranks");
  if (cfg.degree >= cfg.ranks)
    throw std::invalid_argument("random_sparse: degree must be < ranks");
  Program p(cfg.ranks);
  Rng rng(cfg.seed);
  const Tag tag0 = p.allocate_tags(cfg.iterations);
  std::vector<std::vector<OpRef>> frontier(static_cast<std::size_t>(cfg.ranks));
  std::vector<OpRef> calc_of(static_cast<std::size_t>(cfg.ranks));
  for (int it = 0; it < cfg.iterations; ++it) {
    const Tag tag = tag0 + it;
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.compute_per_iter);
      p.depends_all(frontier[static_cast<std::size_t>(r)], c);
      frontier[static_cast<std::size_t>(r)] = {c};
      calc_of[static_cast<std::size_t>(r)] = c;
    }
    for (RankId src = 0; src < cfg.ranks; ++src) {
      // Sample `degree` distinct destinations != src.
      std::vector<RankId> dsts;
      while (static_cast<int>(dsts.size()) < cfg.degree) {
        const auto d = static_cast<RankId>(
            rng.uniform_u64(static_cast<std::uint64_t>(cfg.ranks)));
        if (d == src || std::find(dsts.begin(), dsts.end(), d) != dsts.end()) continue;
        dsts.push_back(d);
      }
      for (RankId dst : dsts) {
        const OpRef s = p.send(src, dst, cfg.bytes, tag);
        p.depends(calc_of[static_cast<std::size_t>(src)], s);
        frontier[static_cast<std::size_t>(src)].push_back(s);
        const OpRef rv = p.recv(dst, src, cfg.bytes, tag);
        p.depends(calc_of[static_cast<std::size_t>(dst)], rv);
        frontier[static_cast<std::size_t>(dst)].push_back(rv);
      }
    }
  }
  return p;
}

Program make_master_worker(const MasterWorkerConfig& cfg) {
  if (cfg.ranks < 2) throw std::invalid_argument("master_worker needs >= 2 ranks");
  Program p(cfg.ranks);
  Rng rng(cfg.seed);
  const int workers = cfg.ranks - 1;
  const Tag tag0 = p.allocate_tags(2 * cfg.tasks);
  // Per-worker chains; master pipelines dispatch of a worker's next task on
  // receipt of that worker's previous result.
  std::vector<OpRef> master_last_recv(static_cast<std::size_t>(workers));
  std::vector<OpRef> worker_last(static_cast<std::size_t>(workers));
  for (int t = 0; t < cfg.tasks; ++t) {
    const int w = t % workers;
    const RankId worker = static_cast<RankId>(w + 1);
    const Tag task_tag = tag0 + 2 * t;
    const Tag result_tag = tag0 + 2 * t + 1;
    const OpRef dispatch = p.send(0, worker, cfg.task_bytes, task_tag);
    if (master_last_recv[static_cast<std::size_t>(w)].valid())
      p.depends(master_last_recv[static_cast<std::size_t>(w)], dispatch);
    const OpRef task_in = p.recv(worker, 0, cfg.task_bytes, task_tag);
    if (worker_last[static_cast<std::size_t>(w)].valid())
      p.depends(worker_last[static_cast<std::size_t>(w)], task_in);
    const double sd = cfg.task_compute_cv * static_cast<double>(cfg.task_compute_mean);
    const TimeNs dur = static_cast<TimeNs>(rng.normal_truncated(
        static_cast<double>(cfg.task_compute_mean), sd,
        0.1 * static_cast<double>(cfg.task_compute_mean),
        3.0 * static_cast<double>(cfg.task_compute_mean)));
    const OpRef work = p.calc(worker, dur);
    p.depends(task_in, work);
    const OpRef result_out = p.send(worker, 0, cfg.result_bytes, result_tag);
    p.depends(work, result_out);
    worker_last[static_cast<std::size_t>(w)] = result_out;
    const OpRef result_in = p.recv(0, worker, cfg.result_bytes, result_tag);
    master_last_recv[static_cast<std::size_t>(w)] = result_in;
  }
  return p;
}

Program make_ep(const EpConfig& cfg) {
  Program p(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(
      p, cfg.iterations,
      [&] {
        for (RankId r = 0; r < cfg.ranks; ++r) {
          const OpRef c = p.calc(r, cfg.compute_per_iter);
          if (frontier[static_cast<std::size_t>(r)].valid())
            p.depends(frontier[static_cast<std::size_t>(r)], c);
          frontier[static_cast<std::size_t>(r)] = c;
        }
      },
      &frontier);
  if (cfg.ranks > 1)
    coll::allreduce_recursive_doubling(p, coll::full_group(cfg.ranks), 8, frontier);
  return p;
}

Program make_allreduce_loop(const AllreduceConfig& cfg) {
  Program p(cfg.ranks);
  const coll::Group group = coll::full_group(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.iterations, [&] {
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const OpRef c = p.calc(r, cfg.compute_per_iter);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      frontier[static_cast<std::size_t>(r)] = c;
    }
    if (cfg.ranks > 1)
      frontier = coll::allreduce_recursive_doubling(p, group, cfg.reduce_bytes, frontier);
  });
  return p;
}

Program make_imbalanced_bsp(const ImbalancedBspConfig& cfg) {
  Program p(cfg.ranks);
  Rng rng(cfg.seed);
  const coll::Group group = coll::full_group(cfg.ranks);
  Deps frontier(static_cast<std::size_t>(cfg.ranks));
  const double mean = static_cast<double>(cfg.compute_mean);
  const double sd = cfg.compute_cv * mean;
  for (int it = 0; it < cfg.iterations; ++it) {
    for (RankId r = 0; r < cfg.ranks; ++r) {
      const TimeNs dur = static_cast<TimeNs>(
          rng.normal_truncated(mean, sd, 0.05 * mean, 4.0 * mean));
      const OpRef c = p.calc(r, dur);
      if (frontier[static_cast<std::size_t>(r)].valid())
        p.depends(frontier[static_cast<std::size_t>(r)], c);
      frontier[static_cast<std::size_t>(r)] = c;
    }
    if (cfg.ranks > 1)
      frontier = coll::allreduce_recursive_doubling(p, group, cfg.reduce_bytes, frontier);
  }
  return p;
}

Program make_pipeline(const PipelineConfig& cfg) {
  if (cfg.ranks < 2) throw std::invalid_argument("pipeline needs >= 2 ranks");
  Program p(cfg.ranks);
  // last_of[r]: rank r's most recent op (stages serialize per rank).
  std::vector<OpRef> last_of(static_cast<std::size_t>(cfg.ranks));
  repeat_iterations(p, cfg.items, [&] {
    const Tag tag = p.allocate_tags();
    for (RankId r = 0; r < cfg.ranks; ++r) {
      OpRef in;
      if (r > 0) {
        in = p.recv(r, r - 1, cfg.item_bytes, tag);
        if (last_of[static_cast<std::size_t>(r)].valid())
          p.depends(last_of[static_cast<std::size_t>(r)], in);
      }
      const OpRef work = p.calc(r, cfg.stage_compute);
      if (in.valid()) p.depends(in, work);
      if (!in.valid() && last_of[static_cast<std::size_t>(r)].valid())
        p.depends(last_of[static_cast<std::size_t>(r)], work);
      OpRef out = work;
      if (r + 1 < cfg.ranks) {
        out = p.send(r, r + 1, cfg.item_bytes, tag);
        p.depends(work, out);
      }
      last_of[static_cast<std::size_t>(r)] = out;
    }
  });
  return p;
}

namespace {

struct RegistryEntry {
  std::string description;
  std::function<Program(const StdParams&)> build;
};

const std::map<std::string, RegistryEntry>& registry() {
  static const std::map<std::string, RegistryEntry> kRegistry = {
      {"halo2d",
       {"2D 5-point periodic halo exchange",
        [](const StdParams& s) {
          return make_halo2d({s.ranks, s.iterations, s.compute, s.bytes, false});
        }}},
      {"halo2d9",
       {"2D 9-point periodic halo exchange",
        [](const StdParams& s) {
          return make_halo2d({s.ranks, s.iterations, s.compute, s.bytes, true});
        }}},
      {"halo3d",
       {"3D 7-point periodic halo exchange",
        [](const StdParams& s) {
          return make_halo3d({s.ranks, s.iterations, s.compute, s.bytes, false});
        }}},
      {"halo3d27",
       {"3D 27-point periodic halo exchange",
        [](const StdParams& s) {
          return make_halo3d({s.ranks, s.iterations, s.compute, s.bytes, true});
        }}},
      {"sweep2d",
       {"2D KBA wavefront sweep, 4 directions",
        [](const StdParams& s) {
          return make_sweep2d({s.ranks, s.iterations, s.compute, s.bytes});
        }}},
      {"hpccg",
       {"CG proxy: 3D halo + 3 small allreduces per iteration",
        [](const StdParams& s) {
          return make_hpccg({s.ranks, s.iterations, s.compute, s.bytes, 3});
        }}},
      {"lammps",
       {"MD proxy: 3D halo, heavy compute, occasional allreduce",
        [](const StdParams& s) {
          return make_lammps({s.ranks, s.iterations, s.compute, s.bytes, 10});
        }}},
      {"fft",
       {"spectral proxy: compute + global alltoall transpose",
        [](const StdParams& s) {
          return make_fft({s.ranks, s.iterations, s.compute, s.bytes});
        }}},
      {"fft2d",
       {"pencil 2D FFT proxy: row alltoall + column alltoall per iteration",
        [](const StdParams& s) {
          return make_fft2d({s.ranks, s.iterations, s.compute, s.bytes});
        }}},
      {"ring",
       {"unidirectional ring pipeline",
        [](const StdParams& s) {
          return make_ring({s.ranks, s.iterations, s.compute, s.bytes});
        }}},
      {"random",
       {"random sparse point-to-point, degree 4",
        [](const StdParams& s) {
          return make_random_sparse(
              {s.ranks, s.iterations, s.compute, s.bytes,
               std::min(4, s.ranks - 1), s.seed});
        }}},
      {"master_worker",
       {"master/worker task farm",
        [](const StdParams& s) {
          MasterWorkerConfig c;
          c.ranks = s.ranks;
          c.tasks = s.iterations * (s.ranks - 1);
          c.task_compute_mean = s.compute;
          c.task_bytes = s.bytes;
          c.seed = s.seed;
          return make_master_worker(c);
        }}},
      {"bsp_imbalanced",
       {"bulk-synchronous loop with 20% compute imbalance",
        [](const StdParams& s) {
          ImbalancedBspConfig c;
          c.ranks = s.ranks;
          c.iterations = s.iterations;
          c.compute_mean = s.compute;
          c.reduce_bytes = std::max<Bytes>(8, s.bytes / 1024);
          c.seed = s.seed;
          return make_imbalanced_bsp(c);
        }}},
      {"pipeline",
       {"streaming software pipeline (deep forward chains)",
        [](const StdParams& s) {
          PipelineConfig c;
          c.ranks = s.ranks;
          c.items = std::max(2, s.iterations * 4);
          c.stage_compute = s.compute;
          c.item_bytes = s.bytes;
          return make_pipeline(c);
        }}},
      {"ep",
       {"embarrassingly parallel control (compute only)",
        [](const StdParams& s) {
          return make_ep({s.ranks, s.iterations, s.compute});
        }}},
      {"allreduce",
       {"bulk-synchronous compute + allreduce loop",
        [](const StdParams& s) {
          return make_allreduce_loop({s.ranks, s.iterations, s.compute, s.bytes});
        }}},
  };
  return kRegistry;
}

}  // namespace

Program make_workload(const std::string& name, const StdParams& params) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::invalid_argument("unknown workload: " + name);
  return it->second.build(params);
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::string workload_description(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end())
    throw std::invalid_argument("unknown workload: " + name);
  return it->second.description;
}

}  // namespace chksim::workload
