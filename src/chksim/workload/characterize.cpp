#include "chksim/workload/characterize.hpp"

#include <cmath>
#include <stdexcept>

#include "chksim/support/stats.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim::workload {

Characterization characterize(const sim::Program& program,
                              const sim::EngineConfig& config) {
  if (!program.finalized())
    throw std::logic_error("characterize requires a finalized Program");
  const sim::ProgramStats& st = program.stats();
  const sim::RunResult run = sim::run_program(program, config);
  if (!run.completed)
    throw std::runtime_error("characterize: program deadlocked: " + run.error);

  Characterization c;
  c.ranks = program.ranks();
  c.ops = st.ops;
  c.messages = st.sends;
  c.bytes = st.bytes_sent;
  c.dependency_depth = st.max_depth;
  c.makespan = run.makespan;

  const double seconds = units::to_seconds(run.makespan);
  const double ranks = static_cast<double>(c.ranks);
  if (seconds > 0) {
    c.msgs_per_rank_per_second = static_cast<double>(st.sends) / ranks / seconds;
    c.bytes_per_rank_per_second = static_cast<double>(st.bytes_sent) / ranks / seconds;
  }
  if (run.makespan > 0) {
    c.comm_fraction = 1.0 - static_cast<double>(st.calc_total) / ranks /
                                static_cast<double>(run.makespan);
    StreamingStats finish;
    double wait = 0;
    for (const sim::RankStats& rs : run.ranks) {
      finish.add(static_cast<double>(rs.finish_time));
      wait += static_cast<double>(rs.recv_wait);
    }
    c.finish_skew_ns = finish.stddev();
    c.recv_wait_fraction = wait / ranks / static_cast<double>(run.makespan);
  }
  return c;
}

Characterization characterize_workload(const std::string& name,
                                       const StdParams& params,
                                       const sim::EngineConfig& config) {
  sim::Program p = make_workload(name, params);
  p.finalize();
  return characterize(p, config);
}

}  // namespace chksim::workload
