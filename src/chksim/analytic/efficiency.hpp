// Closed-form protocol efficiency at scale.
//
// The fully analytic counterpart of core::efficiency_at_scale (which uses
// the Monte-Carlo recovery model): combines the perturbation slowdown
// (1 + kappa * duty) with Daly's expected-makespan formula. Exact only for
// coordinated checkpointing under exponential failures; used to
// cross-validate the stochastic pipeline and for instant parameter scans.
#pragma once

namespace chksim::analytic {

struct EfficiencyInputs {
  double kappa = 1.0;            ///< Measured propagation factor.
  double blackout_seconds = 0;   ///< Per-checkpoint per-rank blackout (delta).
  double interval_seconds = 0;   ///< Checkpoint interval (tau).
  double restart_seconds = 0;    ///< Restart cost (R).
  double system_mtbf_seconds = 0;  ///< System-level MTBF (M).
};

/// Failure-free slowdown: 1 + kappa * (delta / tau).
double perturbation_slowdown(const EfficiencyInputs& in);

/// End-to-end efficiency: (1 / slowdown) discounted by Daly's
/// failure/rework expansion factor at (tau, delta, R, M).
/// All inputs must be positive (delta may be 0 for the no-checkpoint case,
/// which returns the pure Daly restart-from-scratch limit of 0 — callers
/// should special-case kNone).
double coordinated_efficiency(const EfficiencyInputs& in);

}  // namespace chksim::analytic
