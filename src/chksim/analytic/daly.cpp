#include "chksim/analytic/daly.hpp"

#include <cmath>
#include <stdexcept>

namespace chksim::analytic {

namespace {
void check_positive(double v, const char* what) {
  if (!(v > 0)) throw std::invalid_argument(std::string(what) + " must be > 0");
}
}  // namespace

double young_interval(double delta, double M) {
  check_positive(delta, "delta");
  check_positive(M, "M");
  return std::sqrt(2.0 * delta * M);
}

double daly_interval(double delta, double M) {
  check_positive(delta, "delta");
  check_positive(M, "M");
  if (delta >= 2.0 * M) return M;
  const double x = delta / (2.0 * M);
  return std::sqrt(2.0 * delta * M) * (1.0 + std::sqrt(x) / 3.0 + x / 9.0) - delta;
}

double daly_walltime(double Ts, double tau, double delta, double R, double M) {
  check_positive(Ts, "Ts");
  check_positive(tau, "tau");
  check_positive(M, "M");
  if (delta < 0 || R < 0) throw std::invalid_argument("delta and R must be >= 0");
  return M * std::exp(R / M) * (std::exp((tau + delta) / M) - 1.0) * Ts / tau;
}

double daly_efficiency(double Ts, double tau, double delta, double R, double M) {
  return Ts / daly_walltime(Ts, tau, delta, R, M);
}

double first_order_overhead(double tau, double delta, double R, double M) {
  check_positive(tau, "tau");
  check_positive(M, "M");
  return delta / tau + tau / (2.0 * M) + R / M;
}

double expected_failures(double T_wall, double M) {
  check_positive(M, "M");
  if (T_wall < 0) throw std::invalid_argument("T_wall must be >= 0");
  return T_wall / M;
}

double optimal_efficiency(double Ts, double delta, double R, double M) {
  return daly_efficiency(Ts, daly_interval(delta, M), delta, R, M);
}

}  // namespace chksim::analytic
