#include "chksim/analytic/efficiency.hpp"

#include <stdexcept>

#include "chksim/analytic/daly.hpp"

namespace chksim::analytic {

double perturbation_slowdown(const EfficiencyInputs& in) {
  if (in.interval_seconds <= 0)
    throw std::invalid_argument("efficiency: interval must be > 0");
  if (in.kappa < 0 || in.blackout_seconds < 0)
    throw std::invalid_argument("efficiency: kappa and blackout must be >= 0");
  return 1.0 + in.kappa * in.blackout_seconds / in.interval_seconds;
}

double coordinated_efficiency(const EfficiencyInputs& in) {
  const double slowdown = perturbation_slowdown(in);
  if (in.system_mtbf_seconds <= 0)
    throw std::invalid_argument("efficiency: MTBF must be > 0");
  // Daly's expansion factor for one unit of work. The checkpoint write
  // itself is inside `slowdown` (kappa * duty); Daly's formula with
  // delta = 0 then contributes exactly the failure/rework/restart part:
  //   T/Ts = M/tau * exp(R/M) * (exp(tau/M) - 1).
  const double expansion =
      daly_walltime(1.0, in.interval_seconds, 0.0, in.restart_seconds,
                    in.system_mtbf_seconds);
  return 1.0 / (slowdown * expansion);
}

}  // namespace chksim::analytic
