// Closed-form LogP costs of global coordination, plus arrival-skew models.
//
// The "coordination" question of the paper reduces to: what does it cost to
// globally synchronise P ranks before a checkpoint? Under LogP the classic
// algorithms have logarithmic closed forms; the other component is arrival
// skew — the expected wait for the *last* rank to reach the sync point.
#pragma once

#include "chksim/sim/loggops.hpp"
#include "chksim/support/units.hpp"

namespace chksim::analytic {

/// Kinds of global-synchronisation algorithm the coordinated protocol may use.
enum class SyncAlgorithm {
  kDissemination,  ///< ceil(log2 P) rounds, every rank active.
  kTree,           ///< binomial reduce + broadcast: twice the depth.
};

/// Cost of one rank-to-rank message step used by the closed forms: L + 2o.
TimeNs logp_step(const sim::LogGOPSParams& net);

/// Dissemination barrier: ceil(log2 P) * (L + 2o).
TimeNs barrier_dissemination_cost(const sim::LogGOPSParams& net, int ranks);

/// Tree barrier (binomial reduce then broadcast): 2 * ceil(log2 P) * (L + 2o).
TimeNs barrier_tree_cost(const sim::LogGOPSParams& net, int ranks);

/// Cost of the selected algorithm.
TimeNs sync_cost(const sim::LogGOPSParams& net, int ranks, SyncAlgorithm algo);

/// Recursive-doubling allreduce of `bytes`: ceil(log2 P) * (L + 2o + G*bytes).
TimeNs allreduce_cost(const sim::LogGOPSParams& net, int ranks, Bytes bytes);

/// Expected maximum of P iid N(0, sigma^2) variables (asymptotic expansion,
/// exact-ish for small P): the expected wait for the slowest arrival when
/// per-rank arrival times have standard deviation sigma.
double expected_max_of_normals(int P, double sigma);

/// Full coordination cost model: barrier cost plus expected skew wait
/// (skew_sigma_ns = stddev of rank arrival times at the sync point).
TimeNs coordination_cost(const sim::LogGOPSParams& net, int ranks,
                         SyncAlgorithm algo, double skew_sigma_ns);

}  // namespace chksim::analytic
