#include "chksim/analytic/replication.hpp"

#include <stdexcept>

#include "chksim/analytic/daly.hpp"

namespace chksim::analytic {

double replicated_job_mtbf_seconds(const ReplicationInputs& in) {
  if (in.app_ranks <= 0) throw std::invalid_argument("replication: app_ranks must be > 0");
  if (in.node_mtbf_seconds <= 0 || in.rebuild_seconds <= 0)
    throw std::invalid_argument("replication: MTBF and rebuild must be > 0");
  const double lambda = 1.0 / in.node_mtbf_seconds;
  // A pair is vulnerable while one replica rebuilds: rate of "second
  // failure inside the window" ~ 2 * lambda * (lambda * rebuild).
  const double pair_rate = 2.0 * lambda * lambda * in.rebuild_seconds;
  return 1.0 / (static_cast<double>(in.app_ranks) * pair_rate);
}

double replication_efficiency(const ReplicationInputs& in) {
  const double M_job = replicated_job_mtbf_seconds(in);
  // Per-node failures interrupt nothing (the twin covers), but each one
  // occupies its pair for `rebuild`; the expected slowdown from rebuild
  // interruptions is tiny and ignored here (documented approximation).
  double daly_factor = 1.0;
  if (in.ckpt_seconds > 0) {
    const double tau = daly_interval(in.ckpt_seconds, M_job);
    daly_factor = daly_efficiency(1.0, tau, in.ckpt_seconds, in.restart_seconds, M_job);
  }
  return 0.5 * daly_factor;
}

}  // namespace chksim::analytic
