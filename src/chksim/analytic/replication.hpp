// Process-replication (state-machine redundancy) comparator.
//
// Dual redundancy (rMPI-style) runs every rank twice on disjoint nodes: the
// job survives any single-node failure, and fails only when BOTH replicas
// of some rank are down simultaneously. It burns half the machine but makes
// the *effective* MTBF grow with scale instead of shrinking — the classic
// alternative the checkpointing-at-scale literature compares against.
//
// Model (exponential node failures, failed replicas restored in
// `rebuild_seconds` from the healthy twin):
//   pair failure rate ~ 2 * lambda^2 * rebuild   (lambda = 1/M_node)
//   job MTBF          = 1 / (n_pairs * pair_rate)
// The job still checkpoints (rarely) against pair failures; we fold that in
// with Daly at the job MTBF.
#pragma once

namespace chksim::analytic {

struct ReplicationInputs {
  int app_ranks = 0;            ///< Application ranks (uses 2x this many nodes).
  double node_mtbf_seconds = 0;
  double rebuild_seconds = 600; ///< Time to restore a failed replica from its twin.
  double ckpt_seconds = 0;      ///< Checkpoint write cost (against pair failures).
  double restart_seconds = 0;
};

/// Expected MTBF of the replicated job (both replicas of one rank down).
double replicated_job_mtbf_seconds(const ReplicationInputs& in);

/// Efficiency counted against the FULL machine (2x nodes): at most 0.5,
/// discounted by Daly overhead at the replicated MTBF and by the rebuild
/// interruptions themselves.
double replication_efficiency(const ReplicationInputs& in);

}  // namespace chksim::analytic
