// Young's and Daly's analytic checkpoint-interval and makespan models.
//
// Notation (all in seconds):
//   delta - time to write one checkpoint,
//   R     - restart cost after a failure,
//   M     - system mean time between failures,
//   Ts    - failure-free solve time,
//   tau   - checkpoint interval (compute time between checkpoints).
//
// These models are both baselines for the simulated protocols and the
// cross-validation target for experiment E7.
#pragma once

namespace chksim::analytic {

/// Young's first-order optimal interval: sqrt(2 * delta * M).
double young_interval(double delta, double M);

/// Daly's higher-order optimal interval (Daly 2006, eq. 37):
/// for delta < 2M:
///   tau = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / (2M)) + (delta / (2M)) / 9] - delta
/// otherwise tau = M.
double daly_interval(double delta, double M);

/// Daly's expected total wall time for a solve of Ts seconds with
/// checkpoints every tau, write cost delta, restart R, exponential failures
/// with system MTBF M (Daly 2006 complete model):
///   T = M * exp(R / M) * (exp((tau + delta) / M) - 1) * Ts / tau.
double daly_walltime(double Ts, double tau, double delta, double R, double M);

/// Efficiency = Ts / daly_walltime.
double daly_efficiency(double Ts, double tau, double delta, double R, double M);

/// First-order expected overhead fraction (for sanity checks):
/// delta/tau + tau/(2M) + R/M.
double first_order_overhead(double tau, double delta, double R, double M);

/// Expected number of failures during a run of length T_wall with MTBF M.
double expected_failures(double T_wall, double M);

/// Optimal-interval efficiency using Daly's tau (convenience).
double optimal_efficiency(double Ts, double delta, double R, double M);

}  // namespace chksim::analytic
