#include "chksim/analytic/coordination.hpp"

#include <cmath>
#include <stdexcept>

namespace chksim::analytic {

namespace {
int ceil_log2(int n) {
  if (n <= 1) return 0;
  int bits = 0;
  int v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

TimeNs logp_step(const sim::LogGOPSParams& net) { return net.L + 2 * net.o; }

TimeNs barrier_dissemination_cost(const sim::LogGOPSParams& net, int ranks) {
  if (ranks <= 0) throw std::invalid_argument("ranks must be > 0");
  return static_cast<TimeNs>(ceil_log2(ranks)) * logp_step(net);
}

TimeNs barrier_tree_cost(const sim::LogGOPSParams& net, int ranks) {
  if (ranks <= 0) throw std::invalid_argument("ranks must be > 0");
  return 2 * static_cast<TimeNs>(ceil_log2(ranks)) * logp_step(net);
}

TimeNs sync_cost(const sim::LogGOPSParams& net, int ranks, SyncAlgorithm algo) {
  switch (algo) {
    case SyncAlgorithm::kDissemination:
      return barrier_dissemination_cost(net, ranks);
    case SyncAlgorithm::kTree:
      return barrier_tree_cost(net, ranks);
  }
  throw std::logic_error("unknown sync algorithm");
}

TimeNs allreduce_cost(const sim::LogGOPSParams& net, int ranks, Bytes bytes) {
  if (ranks <= 0) throw std::invalid_argument("ranks must be > 0");
  if (bytes < 0) throw std::invalid_argument("bytes must be >= 0");
  const TimeNs per_round =
      logp_step(net) + static_cast<TimeNs>(net.G * static_cast<double>(bytes));
  return static_cast<TimeNs>(ceil_log2(ranks)) * per_round;
}

double expected_max_of_normals(int P, double sigma) {
  if (P <= 0) throw std::invalid_argument("P must be > 0");
  if (sigma < 0) throw std::invalid_argument("sigma must be >= 0");
  if (P == 1 || sigma == 0.0) return 0.0;
  if (P == 2) return sigma / std::sqrt(M_PI);  // exact: E[max of 2] = sigma/sqrt(pi)
  const double ln_p = std::log(static_cast<double>(P));
  const double a = std::sqrt(2.0 * ln_p);
  // Standard asymptotic expansion of the expected maximum of P standard
  // normals: a - (ln ln P + ln 4pi) / (2a).
  return sigma * (a - (std::log(ln_p) + std::log(4.0 * M_PI)) / (2.0 * a));
}

TimeNs coordination_cost(const sim::LogGOPSParams& net, int ranks,
                         SyncAlgorithm algo, double skew_sigma_ns) {
  const double skew = expected_max_of_normals(ranks, skew_sigma_ns);
  return sync_cost(net, ranks, algo) + static_cast<TimeNs>(skew);
}

}  // namespace chksim::analytic
