// Topology models: hop counts between ranks for common HPC interconnect
// shapes. The LogGOPS engine uses a uniform latency L; topologies refine the
// *effective* latency (L + mean-hops * per-hop latency) and feed the
// analytic coordination-cost models, where tree depth interacts with
// physical distance.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chksim/sim/op.hpp"
#include "chksim/sim/loggops.hpp"

namespace chksim::net {

/// Abstract hop-count model over nodes 0..nodes-1. Ranks map onto nodes
/// through net::NodeMap (node_map.hpp); the historical default of one rank
/// per node is NodeMap{1}. Callers working in rank space (effective_params,
/// min_cross_shard_latency) assume that default; the flow router
/// (net/flow/router.hpp) takes an explicit NodeMap.
class Topology {
 public:
  virtual ~Topology() = default;
  virtual std::string name() const = 0;
  virtual int nodes() const = 0;
  /// Network hops between two ranks (0 when a == b).
  virtual int hops(sim::RankId a, sim::RankId b) const = 0;

  /// Mean hop count over distinct pairs, computed by sampling for large
  /// systems (> max_exact nodes) and exactly otherwise. Deterministic.
  double mean_hops(int max_exact = 512) const;

  /// Maximum hop count (network diameter), exact for <= max_exact nodes,
  /// sampled otherwise.
  int diameter(int max_exact = 512) const;
};

/// Fully connected (single switch): one hop between any distinct pair.
class FullyConnected final : public Topology {
 public:
  explicit FullyConnected(int nodes);
  std::string name() const override { return "fully-connected"; }
  int nodes() const override { return nodes_; }
  int hops(sim::RankId a, sim::RankId b) const override;

 private:
  int nodes_;
};

/// k-dimensional torus with per-dimension wraparound distance.
class Torus final : public Topology {
 public:
  /// dims: extent of each dimension; nodes = product of extents.
  explicit Torus(std::array<int, 3> dims);
  std::string name() const override;
  int nodes() const override { return dims_[0] * dims_[1] * dims_[2]; }
  int hops(sim::RankId a, sim::RankId b) const override;

  /// Factor `nodes` into a near-cubic 3D shape.
  static Torus near_cubic(int nodes);

 private:
  std::array<int, 3> coords_of(sim::RankId r) const;
  std::array<int, 3> dims_;
};

/// Fat tree with `radix`-port switches: hop count is 2 * (levels to the
/// lowest common ancestor). Leaves per edge switch = radix / 2.
class FatTree final : public Topology {
 public:
  FatTree(int nodes, int radix);
  std::string name() const override;
  int nodes() const override { return nodes_; }
  int hops(sim::RankId a, sim::RankId b) const override;
  int levels() const { return levels_; }

 private:
  int nodes_;
  int radix_;
  int levels_;
};

/// Dragonfly: groups of `group_size` nodes; 1 hop within a router's nodes,
/// intra-group via local links, one global hop between groups
/// (min-route: h <= 5 = node-router, local, global, local, router-node).
class Dragonfly final : public Topology {
 public:
  Dragonfly(int nodes, int group_size, int router_size);
  std::string name() const override;
  int nodes() const override { return nodes_; }
  int hops(sim::RankId a, sim::RankId b) const override;

 private:
  int nodes_;
  int group_size_;
  int router_size_;
};

/// Effective LogGOPS parameters for a topology: L is replaced by
/// L + mean_hops * per_hop_ns. This folds physical distance into the
/// contentionless LogGOPS abstraction.
sim::LogGOPSParams effective_params(const sim::LogGOPSParams& base,
                                    const Topology& topo, TimeNs per_hop_ns);

/// Minimum effective message latency between ranks in *different* shards of
/// a contiguous partition: min over cross-shard pairs (a, b) of
/// base.L + hops(a, b) * per_hop_ns. This is the sound conservative-PDES
/// lookahead window when shards map to the partition (sim::ParEngine uses
/// the uniform-latency special case W = net.L; a topology-refined engine
/// would use this instead). Always >= base.L + per_hop_ns for a partition
/// with at least two non-empty shards — a window can never be optimistic.
///
/// `shard_starts` holds each shard's first rank, strictly increasing,
/// starting at 0; shard s covers [shard_starts[s], shard_starts[s+1]) and
/// the last shard ends at topo.nodes(). Exact: every cross-shard pair is
/// considered, with an early exit once the 1-hop floor is reached (hit
/// almost immediately on real topologies, where some pair of ranks adjacent
/// across a shard boundary is 1 hop apart).
TimeNs min_cross_shard_latency(const sim::LogGOPSParams& base,
                               const Topology& topo, TimeNs per_hop_ns,
                               const std::vector<int>& shard_starts);

}  // namespace chksim::net
