// Named machine models: LogGOPS network parameters plus the storage and
// reliability parameters needed by the checkpointing study. Values are
// representative of published measurements for each class of system; the
// study's conclusions depend on their relative magnitudes, not on matching
// any specific installation.
#pragma once

#include <string>
#include <vector>

#include "chksim/sim/loggops.hpp"
#include "chksim/support/units.hpp"

namespace chksim::net {

/// Everything the study needs to know about a machine.
struct MachineModel {
  std::string name;
  sim::LogGOPSParams net;

  // Storage: a node checkpoints `ckpt_bytes_per_node` through a link of
  // `node_bw_bytes_per_s` into a parallel file system with aggregate
  // bandwidth `pfs_bw_bytes_per_s` shared by all concurrent writers.
  Bytes ckpt_bytes_per_node = 0;
  double node_bw_bytes_per_s = 0;
  double pfs_bw_bytes_per_s = 0;
  /// Optional node-local burst-buffer bandwidth (0 = no burst buffer).
  double bb_bw_bytes_per_s = 0;

  // Reliability.
  double node_mtbf_hours = 0;   ///< Per-node mean time between failures.
  double restart_seconds = 0;   ///< Fixed restart/relaunch cost after failure.

  /// System MTBF for `nodes` nodes assuming independent exponential failures.
  double system_mtbf_seconds(int nodes) const {
    return node_mtbf_hours * 3600.0 / static_cast<double>(nodes);
  }
};

/// A commodity Ethernet cluster: high latency/overhead, modest storage.
MachineModel ethernet_cluster();

/// An InfiniBand capability system (the default model for experiments).
MachineModel infiniband_system();

/// A Cray-Gemini/Aries-class torus machine.
MachineModel torus_hpc();

/// A BlueGene/Q-class machine: low, very uniform network costs.
MachineModel bgq_like();

/// A projected exascale-era machine: fast network, huge node count regime,
/// burst-buffer storage, shorter per-node MTBF.
MachineModel exascale_projection();

/// All presets, for the parameter table (T2).
std::vector<MachineModel> all_machines();

/// Lookup by name; throws std::invalid_argument on unknown names.
MachineModel machine_by_name(const std::string& name);

}  // namespace chksim::net
