// The rank <-> node mapping shared by latency refinement and the flow
// router.
//
// Topology distances are between *nodes*; the engine simulates *ranks*.
// Historically the two were conflated by an implicit one-rank-per-node
// convention. NodeMap makes the packing explicit: ranks are block-assigned,
// `ranks_per_node` consecutive ranks to a node (rank r lives on node
// r / ranks_per_node), which is how MPI launchers fill nodes by default.
// Co-resident ranks exchange through their node's NIC, so with
// ranks_per_node > 1 a node's injection/ejection links carry the combined
// traffic of all its ranks — exactly the effect the flow model wants to
// expose.
#pragma once

#include <stdexcept>
#include <string>

namespace chksim::net {

struct NodeMap {
  int ranks_per_node = 1;

  /// The node hosting `rank`.
  constexpr int node_of(int rank) const { return rank / ranks_per_node; }

  /// Nodes needed to host `ranks` ranks (the last node may be partial).
  constexpr int nodes_for(int ranks) const {
    return (ranks + ranks_per_node - 1) / ranks_per_node;
  }

  /// Throw unless this map places `ranks` ranks onto at most `nodes` nodes.
  void validate(int ranks, int nodes) const {
    if (ranks_per_node < 1)
      throw std::invalid_argument("NodeMap: ranks_per_node must be >= 1, got " +
                                  std::to_string(ranks_per_node));
    if (ranks < 0)
      throw std::invalid_argument("NodeMap: ranks must be >= 0, got " +
                                  std::to_string(ranks));
    if (nodes_for(ranks) > nodes)
      throw std::invalid_argument(
          "NodeMap: " + std::to_string(ranks) + " ranks at " +
          std::to_string(ranks_per_node) + " per node need " +
          std::to_string(nodes_for(ranks)) + " nodes, topology has " +
          std::to_string(nodes));
  }
};

}  // namespace chksim::net
