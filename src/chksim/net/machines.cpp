#include "chksim/net/machines.hpp"

#include <stdexcept>

namespace chksim::net {

using namespace chksim::literals;

MachineModel ethernet_cluster() {
  MachineModel m;
  m.name = "ethernet";
  m.net.L = 30'000;    // 30 us
  m.net.o = 5'000;     // 5 us
  m.net.g = 12'000;    // 12 us
  m.net.G = 0.8;       // ~1.25 GB/s
  m.net.O = 0.05;
  m.net.S = 64_KiB;
  m.ckpt_bytes_per_node = 2_GiB;
  m.node_bw_bytes_per_s = 500e6;
  m.pfs_bw_bytes_per_s = 20e9;
  m.node_mtbf_hours = 10'000;  // commodity parts, small count
  m.restart_seconds = 120;
  return m;
}

MachineModel infiniband_system() {
  MachineModel m;
  m.name = "infiniband";
  m.net.L = 1'500;   // 1.5 us
  m.net.o = 1'500;   // 1.5 us, matching classic LogGOPS measurements
  m.net.g = 2'000;
  m.net.G = 0.25;    // ~4 GB/s
  m.net.O = 0.0;
  m.net.S = 64_KiB;
  m.ckpt_bytes_per_node = 4_GiB;
  m.node_bw_bytes_per_s = 1.5e9;
  m.pfs_bw_bytes_per_s = 200e9;
  m.node_mtbf_hours = 25'000;  // capability-class, 5-year node MTBF
  m.restart_seconds = 300;
  return m;
}

MachineModel torus_hpc() {
  MachineModel m;
  m.name = "torus";
  m.net.L = 2'000;
  m.net.o = 800;
  m.net.g = 1'200;
  m.net.G = 0.20;
  m.net.O = 0.0;
  m.net.S = 32_KiB;
  m.ckpt_bytes_per_node = 8_GiB;
  m.node_bw_bytes_per_s = 2.0e9;
  m.pfs_bw_bytes_per_s = 500e9;
  m.node_mtbf_hours = 25'000;
  m.restart_seconds = 300;
  return m;
}

MachineModel bgq_like() {
  MachineModel m;
  m.name = "bgq";
  m.net.L = 2'500;
  m.net.o = 500;
  m.net.g = 700;
  m.net.G = 0.55;   // ~1.8 GB/s per link
  m.net.O = 0.0;
  m.net.S = 32_KiB;
  m.ckpt_bytes_per_node = 1_GiB;   // small memory per node
  m.node_bw_bytes_per_s = 0.7e9;
  m.pfs_bw_bytes_per_s = 240e9;
  m.node_mtbf_hours = 50'000;      // famously reliable nodes
  m.restart_seconds = 600;
  return m;
}

MachineModel exascale_projection() {
  MachineModel m;
  m.name = "exascale";
  m.net.L = 800;
  m.net.o = 400;
  m.net.g = 500;
  m.net.G = 0.04;   // ~25 GB/s
  m.net.O = 0.0;
  m.net.S = 128_KiB;
  m.ckpt_bytes_per_node = 32_GiB;
  m.node_bw_bytes_per_s = 5e9;
  m.pfs_bw_bytes_per_s = 2e12;
  m.bb_bw_bytes_per_s = 20e9;
  m.node_mtbf_hours = 10'000;  // denser nodes, lower per-node MTBF
  m.restart_seconds = 300;
  return m;
}

std::vector<MachineModel> all_machines() {
  return {ethernet_cluster(), infiniband_system(), torus_hpc(), bgq_like(),
          exascale_projection()};
}

MachineModel machine_by_name(const std::string& name) {
  for (MachineModel& m : all_machines()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown machine model: " + name);
}

}  // namespace chksim::net
