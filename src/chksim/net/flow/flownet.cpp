#include "chksim/net/flow/flownet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace chksim::net::flow {

namespace {

/// Remainders at or below this many bytes count as drained (same threshold
/// as storage::SharedPfs).
constexpr double kDrainEpsilonBytes = 1e-6;

sim::FlowCompletion make_completion(TimeNs at, TimeNs uncontended,
                                    const sim::FlowRequest& req) {
  sim::FlowCompletion c;
  c.finish = at;
  c.uncontended = uncontended;
  c.req = req;
  return c;
}

}  // namespace

FlowNet::FlowNet(const Router* router, FlowNetConfig config)
    : router_(router), cfg_(config) {
  if (router_ == nullptr)
    throw std::invalid_argument("FlowNet: router must not be null");
  if (cfg_.node_bw <= 0 || cfg_.link_bw <= 0 || cfg_.pfs_bw <= 0)
    throw std::invalid_argument("FlowNet: bandwidths must be > 0");
  if (cfg_.base_latency < 1)
    throw std::invalid_argument(
        "FlowNet: base_latency must be >= 1 ns (the engine's lookahead)");
  if (cfg_.per_hop_ns < 0)
    throw std::invalid_argument("FlowNet: per_hop_ns must be >= 0");
}

double FlowNet::capacity_of(LinkId id) const {
  switch (Router::link_class(id)) {
    case LinkClass::kInject:
    case LinkClass::kEject:
      return cfg_.node_bw;
    case LinkClass::kStorage:
      return cfg_.pfs_bw;
    case LinkClass::kFabric:
      return cfg_.link_bw * router_->capacity_units(id);
  }
  return cfg_.link_bw;
}

std::uint64_t FlowNet::chan_key(const sim::FlowRequest& req) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(req.src))
          << 32) |
         static_cast<std::uint32_t>(req.dst);
}

bool FlowNet::pending_before(const Pending& a, const Pending& b) const {
  if (a.activate != b.activate) return a.activate < b.activate;
  if (a.req.kind != b.req.kind) return a.req.kind < b.req.kind;
  if (a.req.src != b.req.src) return a.req.src < b.req.src;
  return a.req.key2 < b.req.key2;
}

void FlowNet::build_route(const sim::FlowRequest& req,
                          std::vector<LinkId>* route, TimeNs* latency,
                          TimeNs* alone_ns, Bytes bytes) const {
  if (req.kind == sim::FlowKind::kIo && req.dst < 0)
    router_->io_route(req.src, route);
  else
    router_->route(req.src, req.dst, route);
  int hops = 0;
  double bw = -1;
  for (const LinkId id : *route) {
    if (Router::link_class(id) == LinkClass::kFabric) ++hops;
    const double cap = capacity_of(id);
    if (bw < 0 || cap < bw) bw = cap;
  }
  if (req.kind == sim::FlowKind::kIo && cfg_.io_rate_cap > 0)
    bw = std::min(bw, cfg_.io_rate_cap);
  *latency = cfg_.base_latency + cfg_.per_hop_ns * hops;
  *alone_ns =
      bytes > 0
          ? static_cast<TimeNs>(std::ceil(static_cast<double>(bytes) / bw))
          : 0;
}

TimeNs FlowNet::uncontended_arrival(TimeNs now, sim::RankId src,
                                    sim::RankId dst, Bytes bytes) const {
  const int a = router_->node_of(src);
  const int b = router_->node_of(dst);
  const double units = router_->bottleneck_units(a, b);
  // Same arithmetic as the per-link fold in build_route: min over
  // {node_bw, link_bw * units_i, node_bw} equals this closed form exactly
  // (min is exact on doubles), so the estimate matches submit() to the bit.
  const double bw =
      units > 0 ? std::min(cfg_.node_bw, cfg_.link_bw * units) : cfg_.node_bw;
  const TimeNs lat =
      cfg_.base_latency + cfg_.per_hop_ns * router_->fabric_hops(a, b);
  const TimeNs dur =
      bytes > 0
          ? static_cast<TimeNs>(std::ceil(static_cast<double>(bytes) / bw))
          : 0;
  return now + lat + dur;
}

TimeNs FlowNet::submit(TimeNs now, const sim::FlowRequest& req) {
  if (req.bytes < 0)
    throw std::invalid_argument("FlowNet: bytes must be >= 0");
  Pending p;
  p.req = req;
  p.inject = now;
  TimeNs lat = 0;
  TimeNs alone = 0;
  build_route(req, &p.route, &lat, &alone, req.bytes);
  p.activate = now + lat;
  if (p.activate <= clock_)
    throw std::logic_error(
        "FlowNet: submission at t=" + std::to_string(now) +
        " activates at t=" + std::to_string(p.activate) +
        ", not ahead of the fabric clock t=" + std::to_string(clock_) +
        " — the engine's lookahead was violated");
  p.uncontended = p.activate + alone;
  const TimeNs unc = p.uncontended;
  if (req.kind == sim::FlowKind::kMsg)
    chans_[chan_key(req)].fifo.push_back(req.key2);
  pending_.push_back(std::move(p));
  std::push_heap(pending_.begin(), pending_.end(),
                 [this](const Pending& a, const Pending& b) {
                   return pending_before(b, a);
                 });
  if (next_event_ < 0 || pending_.front().activate < next_event_)
    next_event_ = pending_.front().activate;
  stats_.active_peak =
      std::max(stats_.active_peak, static_cast<std::int64_t>(in_fabric()));
  return unc;
}

void FlowNet::recompute_rates() {
  ++epoch_;
  links_.clear();
  ++stats_.recomputes;
  // Touch every link of every active flow, in canonical flow order; links_
  // ends up in first-touch order — a pure function of the active set.
  for (Flow& f : active_) {
    f.rate = 0;
    for (const LinkId id : f.route) {
      LinkSlot& s = link_slots_[id];
      if (s.epoch != epoch_) {
        s.epoch = epoch_;
        s.index = static_cast<std::uint32_t>(links_.size());
        links_.push_back({id, capacity_of(id), 0});
      }
      ++links_[s.index].unfrozen;
    }
  }
  // Progressive water-filling: repeatedly find the most constrained link
  // (smallest residual / unfrozen, first in links_ order on ties), freeze
  // its flows at the equal share, subtract that share along their routes.
  // The per-flow I/O cap acts as a virtual single-flow link: when the cap
  // is tighter than every link's equal share, every still-unfrozen capped
  // flow freezes at the cap in one round (all caps are equal, and the cap
  // being <= each link's share keeps every residual nonnegative).
  frozen_.assign(active_.size(), 0);
  std::size_t left = active_.size();
  std::size_t capped_left = 0;
  if (cfg_.io_rate_cap > 0)
    for (const Flow& f : active_)
      if (f.req.kind == sim::FlowKind::kIo) ++capped_left;
  while (left > 0) {
    int best = -1;
    double best_share = 0;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (links_[i].unfrozen == 0) continue;
      const double share = links_[i].residual / links_[i].unfrozen;
      if (best < 0 || share < best_share) {
        best = static_cast<int>(i);
        best_share = share;
      }
    }
    if (capped_left > 0 && (best < 0 || cfg_.io_rate_cap <= best_share)) {
      ++stats_.fill_rounds;
      for (std::size_t fi = 0; fi < active_.size(); ++fi) {
        if (frozen_[fi]) continue;
        Flow& f = active_[fi];
        if (f.req.kind != sim::FlowKind::kIo) continue;
        frozen_[fi] = 1;
        --left;
        --capped_left;
        f.rate = cfg_.io_rate_cap;
        for (const LinkId id : f.route) {
          LinkScratch& l = links_[link_slots_.find(id)->index];
          l.residual -= cfg_.io_rate_cap;
          if (l.residual < 0) l.residual = 0;
          --l.unfrozen;
        }
      }
      continue;
    }
    if (best < 0) break;  // defensive: every flow crosses >= 2 links
    ++stats_.fill_rounds;
    const LinkId bottleneck = links_[static_cast<std::size_t>(best)].id;
    for (std::size_t fi = 0; fi < active_.size(); ++fi) {
      if (frozen_[fi]) continue;
      Flow& f = active_[fi];
      if (std::find(f.route.begin(), f.route.end(), bottleneck) ==
          f.route.end())
        continue;
      frozen_[fi] = 1;
      --left;
      if (capped_left > 0 && f.req.kind == sim::FlowKind::kIo) --capped_left;
      f.rate = best_share;
      for (const LinkId id : f.route) {
        LinkScratch& l = links_[link_slots_.find(id)->index];
        l.residual -= best_share;
        if (l.residual < 0) l.residual = 0;  // FP guard; math keeps it >= 0
        --l.unfrozen;
      }
    }
  }
  // Refresh cached completion times and the next intrinsic event.
  TimeNs nxt = pending_.empty() ? -1 : pending_.front().activate;
  for (Flow& f : active_) {
    if (f.remaining <= kDrainEpsilonBytes)
      f.finish = clock_;
    else if (f.rate > 0)
      f.finish = clock_ + static_cast<TimeNs>(std::ceil(f.remaining / f.rate));
    else
      f.finish = clock_ + 1;  // unreachable; keeps the clock moving if not
    if (nxt < 0 || f.finish < nxt) nxt = f.finish;
  }
  next_event_ = nxt;
}

void FlowNet::run_events(TimeNs t, std::vector<sim::FlowCompletion>* out) {
  for (;;) {
    const TimeNs e = next_event_;
    if (e < 0 || e > t) break;
    const double dt = static_cast<double>(e - clock_);
    if (dt > 0)
      for (Flow& f : active_) f.remaining -= f.rate * dt;
    clock_ = e;
    bool changed = false;
    // Complete drained flows, compacting the active set in place. Flows are
    // visited in canonical (activation) order, so completion ties at e are
    // deterministic.
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      Flow& f = active_[i];
      if (f.finish > e) {
        if (w != i) active_[w] = std::move(f);
        ++w;
        continue;
      }
      changed = true;
      stats_.bytes_moved += f.req.bytes;
      for (const LinkId id : f.route) {
        switch (Router::link_class(id)) {
          case LinkClass::kInject:
          case LinkClass::kEject:
            stats_.nic_bytes += f.req.bytes;
            break;
          case LinkClass::kFabric:
            stats_.fabric_bytes += f.req.bytes;
            break;
          case LinkClass::kStorage:
            stats_.storage_bytes += f.req.bytes;
            break;
        }
      }
      if (f.req.kind == sim::FlowKind::kIo) {
        ++stats_.io_flows;
        stats_.contention_ns += e - f.uncontended;
        io_log_.push_back({f.req.cookie, f.inject, e, f.uncontended});
        continue;
      }
      Chan& chan = chans_[chan_key(f.req)];
      if (chan.head < chan.fifo.size() && chan.fifo[chan.head] == f.req.key2) {
        // At the channel head: deliver now (the clamp is provably a no-op —
        // earlier deliveries happened at earlier or equal event times — but
        // states the FIFO invariant explicitly).
        const TimeNs arr = std::max(e, chan.last_arrival);
        chan.last_arrival = arr;
        ++chan.head;
        ++stats_.msg_flows;
        stats_.contention_ns += arr - f.uncontended;
        out->push_back(make_completion(arr, f.uncontended, f.req));
        // Release held successors that are now at the head, in FIFO order.
        bool progressed = true;
        while (progressed && chan.head < chan.fifo.size()) {
          progressed = false;
          const std::uint64_t want = chan.fifo[chan.head];
          for (std::size_t h = 0; h < chan.held.size(); ++h) {
            if (chan.held[h].req.key2 != want) continue;
            const TimeNs harr = std::max(chan.held[h].raw, chan.last_arrival);
            chan.last_arrival = harr;
            ++chan.head;
            ++stats_.msg_flows;
            stats_.contention_ns += harr - chan.held[h].uncontended;
            out->push_back(make_completion(harr, chan.held[h].uncontended,
                                           chan.held[h].req));
            chan.held.erase(chan.held.begin() +
                            static_cast<std::ptrdiff_t>(h));
            progressed = true;
            break;
          }
        }
        if (chan.head == chan.fifo.size()) {
          chan.fifo.clear();
          chan.head = 0;
        }
      } else {
        // Drained under earlier channel traffic: links freed, delivery held.
        ++stats_.fifo_holds;
        Held hf;
        hf.raw = e;
        hf.uncontended = f.uncontended;
        hf.req = f.req;
        chan.held.push_back(std::move(hf));
      }
    }
    active_.resize(w);
    // Activate pending flows due now, in canonical heap order.
    while (!pending_.empty() && pending_.front().activate <= e) {
      std::pop_heap(pending_.begin(), pending_.end(),
                    [this](const Pending& a, const Pending& b) {
                      return pending_before(b, a);
                    });
      Pending p = std::move(pending_.back());
      pending_.pop_back();
      Flow f;
      f.req = p.req;
      f.inject = p.inject;
      f.activate = p.activate;
      f.uncontended = p.uncontended;
      f.remaining = static_cast<double>(p.req.bytes);
      f.route = std::move(p.route);
      active_.push_back(std::move(f));
      changed = true;
    }
    if (changed) recompute_rates();
  }
}

void FlowNet::advance(TimeNs t, std::vector<sim::FlowCompletion>* out) {
  run_events(t, out);
}

std::unique_ptr<sim::Fabric> FlowNet::clone() const {
  return std::make_unique<FlowNet>(*this);
}

void FlowNet::restore(const sim::Fabric& snapshot) {
  const auto* other = dynamic_cast<const FlowNet*>(&snapshot);
  if (other == nullptr)
    throw std::invalid_argument("FlowNet: restore from a foreign fabric");
  *this = *other;
}

}  // namespace chksim::net::flow
