#include "chksim/net/flow/router.hpp"

#include <stdexcept>

namespace chksim::net::flow {

namespace {

constexpr LinkId make_link(LinkClass cls, std::uint64_t payload) {
  return (static_cast<LinkId>(cls) << 56) | payload;
}

// Fabric-link payload sub-kinds (dragonfly / fat-tree direction bits live
// inside the payload; every family's payload stays below 2^52).
constexpr std::uint64_t kDfRtr = 0;
constexpr std::uint64_t kDfLocal = 1;
constexpr std::uint64_t kDfGlobal = 2;

constexpr LinkId df_link(std::uint64_t sub, std::uint64_t payload) {
  return make_link(LinkClass::kFabric, (sub << 52) | payload);
}

constexpr LinkId ft_link(bool down_dir, int level, std::uint64_t block) {
  return make_link(LinkClass::kFabric,
                   (static_cast<std::uint64_t>(down_dir) << 52) |
                       (static_cast<std::uint64_t>(level) << 44) | block);
}

}  // namespace

std::string to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::kFullyConnected: return "fully-connected";
    case FabricKind::kTorus: return "torus";
    case FabricKind::kFatTree: return "fat-tree";
    case FabricKind::kDragonfly: return "dragonfly";
  }
  return "unknown";
}

std::string to_string(Routing routing) {
  switch (routing) {
    case Routing::kMinimal: return "minimal";
    case Routing::kValiant: return "valiant";
  }
  return "unknown";
}

Routing routing_by_name(const std::string& name) {
  if (name == "minimal") return Routing::kMinimal;
  if (name == "valiant") return Routing::kValiant;
  throw std::invalid_argument("unknown routing \"" + name +
                              "\" (expected minimal or valiant)");
}

Router::Router(RouterConfig config) : cfg_(config) {
  if (cfg_.nodes <= 0)
    throw std::invalid_argument("Router: nodes must be > 0");
  if (cfg_.gateways < 1 || cfg_.gateways > cfg_.nodes)
    throw std::invalid_argument("Router: gateways must be in [1, nodes]");
  if (cfg_.node_map.ranks_per_node < 1)
    throw std::invalid_argument("Router: ranks_per_node must be >= 1");
  switch (cfg_.kind) {
    case FabricKind::kFullyConnected:
      break;
    case FabricKind::kTorus: {
      std::int64_t prod = 1;
      for (int d = 0; d < 3; ++d) {
        if (cfg_.dims[static_cast<std::size_t>(d)] < 1)
          throw std::invalid_argument("Router: torus dims must be >= 1");
        prod *= cfg_.dims[static_cast<std::size_t>(d)];
      }
      if (prod != cfg_.nodes)
        throw std::invalid_argument(
            "Router: torus dims product " + std::to_string(prod) +
            " != nodes " + std::to_string(cfg_.nodes));
      break;
    }
    case FabricKind::kFatTree:
      if (cfg_.radix < 2)
        throw std::invalid_argument("Router: fat-tree radix must be >= 2");
      break;
    case FabricKind::kDragonfly:
      if (cfg_.group_size <= 0 || cfg_.router_size <= 0 ||
          cfg_.group_size % cfg_.router_size != 0)
        throw std::invalid_argument(
            "Router: dragonfly group_size must be a positive multiple of "
            "router_size");
      break;
  }
}

std::array<int, 3> Router::coords(int n) const {
  const int d0 = cfg_.dims[0];
  const int d1 = cfg_.dims[1];
  return {n % d0, (n / d0) % d1, n / (d0 * d1)};
}

int Router::node_at(const std::array<int, 3>& c) const {
  return c[0] + cfg_.dims[0] * (c[1] + cfg_.dims[1] * c[2]);
}

int Router::fat_tree_down() const { return cfg_.radix / 2 < 2 ? 2 : cfg_.radix / 2; }

int Router::fat_tree_level(int a, int b) const {
  const int down = fat_tree_down();
  std::int64_t block = down;
  int level = 1;
  while (a / block != b / block) {
    block *= down;
    ++level;
  }
  return level;
}

int Router::routers_per_group() const {
  return cfg_.group_size / cfg_.router_size;
}

int Router::num_groups() const {
  return (cfg_.nodes + cfg_.group_size - 1) / cfg_.group_size;
}

void Router::torus_route(int a, int b, std::vector<LinkId>* out) const {
  auto ca = coords(a);
  const auto cb = coords(b);
  for (int d = 0; d < 3; ++d) {
    const int ext = cfg_.dims[static_cast<std::size_t>(d)];
    const int fwd = (cb[static_cast<std::size_t>(d)] -
                     ca[static_cast<std::size_t>(d)] + ext) % ext;
    const int back = (ext - fwd) % ext;
    // Shorter wrap direction; ties prefer +.
    const bool plus = fwd <= back;
    const int steps = plus ? fwd : back;
    for (int s = 0; s < steps; ++s) {
      const int node = node_at(ca);
      out->push_back(make_link(
          LinkClass::kFabric,
          (static_cast<std::uint64_t>(node) * 3 + static_cast<std::uint64_t>(d)) * 2 +
              (plus ? 0 : 1)));
      int& c = ca[static_cast<std::size_t>(d)];
      c = plus ? (c + 1) % ext : (c - 1 + ext) % ext;
    }
  }
}

void Router::fat_tree_route(int a, int b, std::vector<LinkId>* out) const {
  const int down = fat_tree_down();
  const int level = fat_tree_level(a, b);
  // Climb to the lowest common ancestor: the level-k up link belongs to the
  // level-(k-1) block containing a.
  std::int64_t block = 1;
  for (int k = 1; k <= level; ++k) {
    out->push_back(ft_link(false, k, static_cast<std::uint64_t>(a / block)));
    block *= down;
  }
  // Descend into b's blocks.
  for (int k = level; k >= 1; --k) {
    block /= down;
    out->push_back(ft_link(true, k, static_cast<std::uint64_t>(b / block)));
  }
}

void Router::dragonfly_minimal(int a, int b, std::vector<LinkId>* out) const {
  const int rt = cfg_.router_size;
  const int ra = a / rt;
  const int rb = b / rt;
  const int ga = a / cfg_.group_size;
  const int gb = b / cfg_.group_size;
  const std::uint64_t routers =
      static_cast<std::uint64_t>((cfg_.nodes + rt - 1) / rt);
  out->push_back(df_link(kDfRtr, static_cast<std::uint64_t>(ra)));
  if (ra == rb) return;
  if (ga == gb) {
    out->push_back(df_link(kDfLocal, static_cast<std::uint64_t>(ra) * routers +
                                         static_cast<std::uint64_t>(rb)));
    return;
  }
  const int r = routers_per_group();
  const int exit_r = ga * r + gb % r;   // ga's router holding the ga->gb link
  const int entry_r = gb * r + ga % r;  // gb's router holding the gb->ga link
  const std::uint64_t groups = static_cast<std::uint64_t>(num_groups());
  out->push_back(df_link(kDfLocal, static_cast<std::uint64_t>(ra) * routers +
                                       static_cast<std::uint64_t>(exit_r)));
  out->push_back(df_link(kDfGlobal, static_cast<std::uint64_t>(ga) * groups +
                                        static_cast<std::uint64_t>(gb)));
  out->push_back(df_link(kDfLocal, static_cast<std::uint64_t>(entry_r) * routers +
                                       static_cast<std::uint64_t>(rb)));
  out->push_back(df_link(kDfRtr, static_cast<std::uint64_t>(rb)));
}

void Router::dragonfly_route(int a, int b, std::vector<LinkId>* out) const {
  const int ga = a / cfg_.group_size;
  const int gb = b / cfg_.group_size;
  if (cfg_.routing == Routing::kValiant && ga != gb) {
    // Deterministic Valiant-style detour: minimal to a fixed intermediate
    // group, then minimal onward. Falls back to minimal when the
    // intermediate coincides with an endpoint group.
    const int gm = (ga + gb) % num_groups();
    if (gm != ga && gm != gb) {
      const int rt = cfg_.router_size;
      const int r = routers_per_group();
      const std::uint64_t routers =
          static_cast<std::uint64_t>((cfg_.nodes + rt - 1) / rt);
      const std::uint64_t groups = static_cast<std::uint64_t>(num_groups());
      const auto local = [&](int r1, int r2) {
        out->push_back(df_link(kDfLocal,
                               static_cast<std::uint64_t>(r1) * routers +
                                   static_cast<std::uint64_t>(r2)));
      };
      const auto global = [&](int g1, int g2) {
        out->push_back(df_link(kDfGlobal,
                               static_cast<std::uint64_t>(g1) * groups +
                                   static_cast<std::uint64_t>(g2)));
      };
      out->push_back(df_link(kDfRtr, static_cast<std::uint64_t>(a / rt)));
      local(a / rt, ga * r + gm % r);      // to ga's exit towards gm
      global(ga, gm);
      local(gm * r + ga % r, gm * r + gb % r);  // across the detour group
      global(gm, gb);
      local(gb * r + gm % r, b / rt);      // gb's entry to b's router
      out->push_back(df_link(kDfRtr, static_cast<std::uint64_t>(b / rt)));
      return;
    }
  }
  dragonfly_minimal(a, b, out);
}

void Router::fabric_route(int a, int b, std::vector<LinkId>* out) const {
  if (a == b) return;
  switch (cfg_.kind) {
    case FabricKind::kFullyConnected:
      out->push_back(make_link(LinkClass::kFabric,
                               static_cast<std::uint64_t>(a) *
                                       static_cast<std::uint64_t>(cfg_.nodes) +
                                   static_cast<std::uint64_t>(b)));
      return;
    case FabricKind::kTorus: torus_route(a, b, out); return;
    case FabricKind::kFatTree: fat_tree_route(a, b, out); return;
    case FabricKind::kDragonfly: dragonfly_route(a, b, out); return;
  }
}

int Router::fabric_hops(int a, int b) const {
  if (a == b) return 0;
  switch (cfg_.kind) {
    case FabricKind::kFullyConnected:
      return 1;
    case FabricKind::kTorus: {
      const auto ca = coords(a);
      const auto cb = coords(b);
      int h = 0;
      for (int d = 0; d < 3; ++d) {
        const int ext = cfg_.dims[static_cast<std::size_t>(d)];
        const int fwd = (cb[static_cast<std::size_t>(d)] -
                         ca[static_cast<std::size_t>(d)] + ext) % ext;
        h += fwd <= ext - fwd ? fwd : ext - fwd;
      }
      return h;
    }
    case FabricKind::kFatTree:
      return 2 * fat_tree_level(a, b);
    case FabricKind::kDragonfly: {
      const int ga = a / cfg_.group_size;
      const int gb = b / cfg_.group_size;
      if (a / cfg_.router_size == b / cfg_.router_size) return 1;
      if (ga == gb) return 2;
      if (cfg_.routing == Routing::kValiant) {
        const int gm = (ga + gb) % num_groups();
        if (gm != ga && gm != gb) return 7;
      }
      return 5;
    }
  }
  return 0;
}

void Router::route(sim::RankId src, sim::RankId dst,
                   std::vector<LinkId>* out) const {
  const int a = node_of(src);
  const int b = node_of(dst);
  out->push_back(make_link(LinkClass::kInject, static_cast<std::uint64_t>(a)));
  fabric_route(a, b, out);
  out->push_back(make_link(LinkClass::kEject, static_cast<std::uint64_t>(b)));
}

int Router::gateway_node(int node) const {
  const std::int64_t g = static_cast<std::int64_t>(node) * cfg_.gateways /
                         cfg_.nodes;
  return static_cast<int>(g * cfg_.nodes / cfg_.gateways);
}

void Router::io_route(sim::RankId src, std::vector<LinkId>* out) const {
  const int a = node_of(src);
  const int gw = gateway_node(a);
  out->push_back(make_link(LinkClass::kInject, static_cast<std::uint64_t>(a)));
  fabric_route(a, gw, out);
  out->push_back(make_link(LinkClass::kEject, static_cast<std::uint64_t>(gw)));
  out->push_back(make_link(LinkClass::kStorage, 0));
}

double Router::capacity_units(LinkId id) const {
  if (link_class(id) != LinkClass::kFabric) return 1.0;
  const std::uint64_t payload = id & ((std::uint64_t{1} << 56) - 1);
  switch (cfg_.kind) {
    case FabricKind::kFullyConnected:
    case FabricKind::kTorus:
      return 1.0;
    case FabricKind::kFatTree: {
      const int level = static_cast<int>((payload >> 44) & 0xFF);
      double units = 1.0;
      for (int k = 1; k < level; ++k) units *= fat_tree_down();
      return units;
    }
    case FabricKind::kDragonfly:
      return (payload >> 52) == kDfRtr ? static_cast<double>(cfg_.router_size)
                                       : 1.0;
  }
  return 1.0;
}

double Router::bottleneck_units(int a, int b) const {
  if (a == b) return 0.0;
  // Every family's minimal route crosses at least one unit-capacity link,
  // except the dragonfly same-router case (the router crossbar alone).
  if (cfg_.kind == FabricKind::kDragonfly &&
      a / cfg_.router_size == b / cfg_.router_size)
    return static_cast<double>(cfg_.router_size);
  return 1.0;
}

}  // namespace chksim::net::flow
