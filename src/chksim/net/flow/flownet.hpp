// FlowNet: the max-min fair-share flow solver behind sim::Fabric.
//
// Every in-flight transfer is a *flow* on the route the Router assigns it.
// Link capacities are divided among the flows crossing them by progressive
// water-filling (the same policy storage::SharedPfs::kFairShare applies to
// one link, generalized to a route per flow): repeatedly find the most
// loaded link, grant its flows their equal share, subtract, repeat. Rates
// are piecewise constant between *intrinsic events* — flow activations and
// completions — and the solver only ever advances from one intrinsic event
// to the next, exactly like SharedPfs::advance/next_completion, its design
// oracle.
//
// Where FlowNet deliberately diverges from SharedPfs: SharedPfs progresses
// remaining bytes up to each caller-supplied instant, so its float state
// depends on the call pattern (fine for its single serial driver). FlowNet
// is driven by both the serial engine and the sharded ParEngine with
// different call patterns, so its state is a function of the submission set
// alone:
//
//   * state changes only at intrinsic event times — advance(t) with any
//     call pattern yields byte-identical completions;
//   * a flow submitted at t first affects the fabric at t + latency(route)
//     >= t + base_latency (>= 1 ns), so submissions may arrive late and out
//     of order (the sharded engine applies a window's submissions at the
//     barrier) as long as their activation is still ahead of the clock —
//     enforced, not assumed;
//   * flows are ordered internally by content (activation, kind, src,
//     key2), never by submission call order, and all floating-point
//     arithmetic runs in that canonical order.
//
// Message flows respect per-(src, dst) channel FIFO: a flow's links are
// released when its bytes are through, but its delivery is held until every
// earlier flow on its channel has been delivered (a small message can drain
// under a large one, not overtake it). I/O flows complete silently into
// io_log(). See docs/MODEL.md "Flow-level network model".
#pragma once

#include <cstdint>
#include <vector>

#include "chksim/net/flow/router.hpp"
#include "chksim/sim/fabric.hpp"
#include "chksim/support/flat_map.hpp"

namespace chksim::net::flow {

struct FlowNetConfig {
  double node_bw = 0.25;   ///< Inject/eject link bandwidth (bytes/ns).
  double link_bw = 0.25;   ///< Fabric base capacity unit (bytes/ns).
  double pfs_bw = 1.0;     ///< Storage ingress link (bytes/ns, kIo only).
  /// Per-flow rate ceiling for kIo flows (bytes/ns; 0 = uncapped). Models
  /// the node-local storage software path: a checkpoint write cannot run
  /// faster than the node can produce it, even on an idle fabric, so the
  /// uncontended realized write matches the analytic per-node storage rate
  /// and fabric contention only ever adds time.
  double io_rate_cap = 0;
  TimeNs base_latency = 1500;  ///< Route latency floor (the LogGOPS L).
  TimeNs per_hop_ns = 0;       ///< Extra latency per fabric link.
};

class FlowNet final : public sim::Fabric {
 public:
  /// `router` must outlive the FlowNet (shared, const). Throws on
  /// non-positive bandwidths or base_latency < 1 (the determinism contract
  /// needs at least one nanosecond of lookahead).
  FlowNet(const Router* router, FlowNetConfig config);

  FlowNet(const FlowNet&) = default;
  FlowNet& operator=(const FlowNet&) = default;

  // sim::Fabric interface.
  TimeNs submit(TimeNs now, const sim::FlowRequest& req) override;
  TimeNs uncontended_arrival(TimeNs now, sim::RankId src, sim::RankId dst,
                             Bytes bytes) const override;
  void advance(TimeNs t, std::vector<sim::FlowCompletion>* out) override;
  TimeNs next_event() const override { return next_event_; }
  TimeNs min_latency() const override { return cfg_.base_latency; }
  sim::FabricStats stats() const override { return stats_; }
  std::unique_ptr<sim::Fabric> clone() const override;
  void restore(const sim::Fabric& snapshot) override;

  /// Realized kIo completions, in completion order.
  struct IoRealized {
    std::int64_t cookie = 0;
    TimeNs submit = 0;
    TimeNs finish = 0;
    TimeNs uncontended = 0;
  };
  const std::vector<IoRealized>& io_log() const { return io_log_; }

  const Router& router() const { return *router_; }
  const FlowNetConfig& config() const { return cfg_; }
  TimeNs clock() const { return clock_; }
  std::size_t in_fabric() const { return pending_.size() + active_.size(); }

 private:
  struct Flow {
    sim::FlowRequest req;
    TimeNs inject = 0;
    TimeNs activate = 0;
    TimeNs finish = 0;       // cached completion at current rates
    TimeNs uncontended = 0;  // delivery estimate if alone on the route
    double remaining = 0;    // bytes
    double rate = 0;         // bytes/ns
    std::vector<LinkId> route;
  };
  struct Pending {
    TimeNs activate = 0;
    TimeNs inject = 0;
    TimeNs uncontended = 0;
    sim::FlowRequest req;
    std::vector<LinkId> route;
  };
  // A drained flow whose delivery waits for earlier channel traffic. Links
  // are already released; only the completion record is parked here.
  struct Held {
    TimeNs raw = 0;  // drain time; delivery is max(raw, channel last arrival)
    TimeNs uncontended = 0;
    sim::FlowRequest req;
  };
  struct Chan {
    std::vector<std::uint64_t> fifo;  // key2 in submission (= inject) order
    std::size_t head = 0;
    TimeNs last_arrival = 0;
    std::vector<Held> held;
  };
  struct LinkScratch {
    LinkId id = 0;
    double residual = 0;
    int unfrozen = 0;
  };
  struct LinkSlot {
    std::uint64_t epoch = 0;
    std::uint32_t index = 0;
  };

  void build_route(const sim::FlowRequest& req, std::vector<LinkId>* route,
                   TimeNs* latency, TimeNs* alone_ns, Bytes bytes) const;
  double capacity_of(LinkId id) const;
  static std::uint64_t chan_key(const sim::FlowRequest& req);
  bool pending_before(const Pending& a, const Pending& b) const;
  void run_events(TimeNs t, std::vector<sim::FlowCompletion>* out);
  void recompute_rates();

  const Router* router_;
  FlowNetConfig cfg_;
  TimeNs clock_ = 0;
  TimeNs next_event_ = -1;
  std::vector<Pending> pending_;  // heap by (activate, kind, src, key2)
  std::vector<Flow> active_;      // canonical activation order
  FlatMap<std::uint64_t, Chan> chans_;
  std::vector<IoRealized> io_log_;
  sim::FabricStats stats_;

  // Per-recompute scratch (epoch-tagged lazy link state; copied harmlessly).
  std::uint64_t epoch_ = 0;
  FlatMap<LinkId, LinkSlot> link_slots_;
  std::vector<LinkScratch> links_;
  std::vector<char> frozen_;
};

}  // namespace chksim::net::flow
