// Link enumeration and deterministic minimal routes for the flow-level
// network model.
//
// `net::Topology` answers "how many hops" — enough to refine latency, blind
// to sharing. The Router extends each topology family with an explicit link
// structure so that a transfer can be mapped to the sequence of links it
// crosses and those links can be contended for (net/flow/flownet.hpp):
//
//   fully-connected  a dedicated directed link per (a, b) node pair — a
//                    crossbar. Fabric contention is impossible by
//                    construction; the per-node injection/ejection links
//                    (below) still serialize a node's aggregate traffic.
//   torus            directed +/- links per (node, dimension). Routes walk
//                    dimensions in x, y, z order taking the shorter wrap
//                    direction (ties prefer +), one link per hop.
//   fat-tree         one *fattened* logical up/down link per subtree and
//                    level: the level-k link of a block has capacity
//                    down^(k-1) base units, the classic full-bisection
//                    thinning knob. A route climbs to the lowest common
//                    ancestor and descends: 2 * level links.
//   dragonfly        per-router crossbar links ("rtr", capacity
//                    router_size units), intra-group local links per
//                    ordered router pair, and global links per ordered
//                    group pair. Minimal routes: same router = {rtr},
//                    same group = {rtr, local}, global = {rtr, local,
//                    global, local, rtr} — lengths equal to
//                    net::Dragonfly::hops() by construction. The global
//                    link of group pair (ga, gb) attaches at router
//                    gb % routers_per_group of ga (and symmetrically), the
//                    standard palmtree-ish assignment.
//
// Every rank-level route is bracketed by the source node's injection link
// and the destination node's ejection link (one each per node — the NIC),
// so co-resident ranks (net::NodeMap) and simultaneous flows from one node
// share the node's NIC bandwidth even on a crossbar.
//
// Routes are minimal and deterministic: route length (fabric links only)
// equals Topology::hops() exactly for every pair — tests pin this against
// brute-force shortest paths. Routing::kValiant adds the classic
// load-balancing detour on the dragonfly (minimal to a deterministic
// intermediate group, then minimal onward: 7 fabric links when the
// intermediate is distinct); other families route minimally regardless.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chksim/net/node_map.hpp"
#include "chksim/sim/op.hpp"
#include "chksim/support/units.hpp"

namespace chksim::net::flow {

/// Opaque link identity: class in the top byte, class-specific payload
/// below. Stable across runs (pure function of the config), never dense —
/// the solver keeps lazy per-link state.
using LinkId = std::uint64_t;

/// Link classes (LinkId top byte), exposed for telemetry.
enum class LinkClass : std::uint8_t {
  kInject = 0,   ///< Node NIC, node -> fabric.
  kEject = 1,    ///< Node NIC, fabric -> node.
  kFabric = 2,   ///< Topology link.
  kStorage = 3,  ///< Shared PFS ingress (I/O flows only).
};

enum class FabricKind : std::uint8_t {
  kFullyConnected,
  kTorus,
  kFatTree,
  kDragonfly,
};

enum class Routing : std::uint8_t {
  kMinimal,
  kValiant,  ///< Dragonfly: detour through group (ga + gb) % groups.
};

std::string to_string(FabricKind kind);
std::string to_string(Routing routing);
Routing routing_by_name(const std::string& name);

struct RouterConfig {
  FabricKind kind = FabricKind::kFatTree;
  int nodes = 1;
  std::array<int, 3> dims = {1, 1, 1};  ///< Torus: product must equal nodes.
  int radix = 36;                       ///< Fat-tree switch radix.
  int group_size = 32;                  ///< Dragonfly nodes per group.
  int router_size = 4;                  ///< Dragonfly nodes per router.
  Routing routing = Routing::kMinimal;
  NodeMap node_map;  ///< Rank -> node packing.
  int gateways = 1;  ///< PFS gateway nodes, evenly spaced (I/O routes).
};

class Router {
 public:
  explicit Router(RouterConfig config);  ///< Validates; throws on bad shapes.

  const RouterConfig& config() const { return cfg_; }
  int nodes() const { return cfg_.nodes; }

  /// Fabric links of the minimal (or configured) node route a -> b,
  /// appended to `out`. Empty when a == b. Deterministic.
  void fabric_route(int a, int b, std::vector<LinkId>* out) const;

  /// Number of fabric links fabric_route(a, b) emits — closed form, no
  /// allocation. Equals Topology::hops(a, b) under Routing::kMinimal.
  int fabric_hops(int a, int b) const;

  /// Full rank-level route: inject(src node), fabric path, eject(dst
  /// node). Same-node ranks still cross their node's NIC pair.
  void route(sim::RankId src, sim::RankId dst, std::vector<LinkId>* out) const;

  /// Rank -> shared-PFS route: inject(node), fabric path to the node's
  /// gateway, eject(gateway), storage link.
  void io_route(sim::RankId src, std::vector<LinkId>* out) const;

  /// The gateway node serving `node` (block assignment over cfg.gateways).
  int gateway_node(int node) const;

  /// Capacity of a link in *base-bandwidth units* (fat-tree level-k links
  /// are down^(k-1), dragonfly rtr links are router_size, everything else
  /// 1). The solver multiplies by the configured bytes/ns per unit;
  /// inject/eject/storage links have their own bandwidths.
  double capacity_units(LinkId id) const;

  /// Smallest fabric-link capacity (in units) along the a -> b route —
  /// closed form, used for uncontended-time estimates. 0 when the route
  /// has no fabric links (same node).
  double bottleneck_units(int a, int b) const;

  static LinkClass link_class(LinkId id) {
    return static_cast<LinkClass>(id >> 56);
  }

  int node_of(sim::RankId rank) const {
    return cfg_.node_map.node_of(static_cast<int>(rank));
  }

 private:
  void torus_route(int a, int b, std::vector<LinkId>* out) const;
  void fat_tree_route(int a, int b, std::vector<LinkId>* out) const;
  void dragonfly_route(int a, int b, std::vector<LinkId>* out) const;
  void dragonfly_minimal(int a, int b, std::vector<LinkId>* out) const;

  std::array<int, 3> coords(int n) const;
  int node_at(const std::array<int, 3>& c) const;

  int fat_tree_down() const;
  int fat_tree_level(int a, int b) const;
  int routers_per_group() const;
  int num_groups() const;

  RouterConfig cfg_;
};

}  // namespace chksim::net::flow
