#include "chksim/net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "chksim/support/rng.hpp"

namespace chksim::net {

namespace {

// Sampling seeds for the estimators below. Streams are derived with
// Rng::substream(seed, nodes) instead of seeding the generator with a raw
// literal: the splitmix64 derivation decorrelates the stream both from other
// consumers of small literal seeds and across system sizes, while staying
// fully deterministic for a given topology.
constexpr std::uint64_t kMeanHopsSeed = 0xABCDEF;
constexpr std::uint64_t kDiameterSeed = 0x13579B;

}  // namespace

double Topology::mean_hops(int max_exact) const {
  const int n = nodes();
  if (n < 2) return 0.0;
  if (n <= max_exact) {
    double sum = 0;
    std::int64_t pairs = 0;
    for (sim::RankId a = 0; a < n; ++a) {
      for (sim::RankId b = a + 1; b < n; ++b) {
        sum += hops(a, b);
        ++pairs;
      }
    }
    return sum / static_cast<double>(pairs);
  }
  // Deterministic sampling for big systems.
  Rng rng = Rng::substream(kMeanHopsSeed, static_cast<std::uint64_t>(n));
  double sum = 0;
  const int samples = 200'000;
  int counted = 0;
  for (int i = 0; i < samples; ++i) {
    const auto a = static_cast<sim::RankId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<sim::RankId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    sum += hops(a, b);
    ++counted;
  }
  return counted > 0 ? sum / counted : 0.0;
}

int Topology::diameter(int max_exact) const {
  const int n = nodes();
  if (n < 2) return 0;
  int best = 0;
  if (n <= max_exact) {
    for (sim::RankId a = 0; a < n; ++a)
      for (sim::RankId b = a + 1; b < n; ++b) best = std::max(best, hops(a, b));
    return best;
  }
  Rng rng = Rng::substream(kDiameterSeed, static_cast<std::uint64_t>(n));
  for (int i = 0; i < 200'000; ++i) {
    const auto a = static_cast<sim::RankId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<sim::RankId>(rng.uniform_u64(static_cast<std::uint64_t>(n)));
    best = std::max(best, hops(a, b));
  }
  return best;
}

FullyConnected::FullyConnected(int nodes) : nodes_(nodes) {
  if (nodes <= 0) throw std::invalid_argument("FullyConnected: nodes must be > 0");
}

int FullyConnected::hops(sim::RankId a, sim::RankId b) const { return a == b ? 0 : 1; }

Torus::Torus(std::array<int, 3> dims) : dims_(dims) {
  for (int d : dims_)
    if (d <= 0) throw std::invalid_argument("Torus: dimensions must be > 0");
}

std::string Torus::name() const {
  return "torus-" + std::to_string(dims_[0]) + "x" + std::to_string(dims_[1]) + "x" +
         std::to_string(dims_[2]);
}

std::array<int, 3> Torus::coords_of(sim::RankId r) const {
  std::array<int, 3> c{};
  c[0] = static_cast<int>(r) % dims_[0];
  c[1] = (static_cast<int>(r) / dims_[0]) % dims_[1];
  c[2] = static_cast<int>(r) / (dims_[0] * dims_[1]);
  return c;
}

int Torus::hops(sim::RankId a, sim::RankId b) const {
  assert(a >= 0 && a < nodes() && b >= 0 && b < nodes());
  const auto ca = coords_of(a);
  const auto cb = coords_of(b);
  int h = 0;
  for (int d = 0; d < 3; ++d) {
    const int direct = std::abs(ca[d] - cb[d]);
    h += std::min(direct, dims_[d] - direct);
  }
  return h;
}

Torus Torus::near_cubic(int nodes) {
  if (nodes <= 0) throw std::invalid_argument("Torus: nodes must be > 0");
  // Greedy near-cubic factorisation: find x <= y <= z with x*y*z == nodes
  // and x as close to cbrt(nodes) as possible.
  int best_x = 1;
  for (int x = 1; x * x * x <= nodes; ++x)
    if (nodes % x == 0) best_x = x;
  const int rest = nodes / best_x;
  int best_y = 1;
  for (int y = best_x; y * y <= rest; ++y)
    if (rest % y == 0) best_y = y;
  // best_y may be < best_x when rest has no factor >= best_x below sqrt;
  // fall back to the largest divisor of rest that is <= sqrt(rest).
  if (best_y < best_x) {
    best_y = 1;
    for (int y = 1; y * y <= rest; ++y)
      if (rest % y == 0) best_y = y;
  }
  return Torus({best_x, best_y, rest / best_y});
}

FatTree::FatTree(int nodes, int radix) : nodes_(nodes), radix_(radix) {
  if (nodes <= 0) throw std::invalid_argument("FatTree: nodes must be > 0");
  if (radix < 2) throw std::invalid_argument("FatTree: radix must be >= 2");
  // levels = number of switch tiers needed so that (radix/2)^levels >= nodes
  // (each tier halves the ports available for downlinks).
  const int down = std::max(2, radix / 2);
  levels_ = 1;
  std::int64_t reach = down;
  while (reach < nodes) {
    reach *= down;
    ++levels_;
  }
}

std::string FatTree::name() const {
  return "fat-tree-r" + std::to_string(radix_) + "-l" + std::to_string(levels_);
}

int FatTree::hops(sim::RankId a, sim::RankId b) const {
  assert(a >= 0 && a < nodes_ && b >= 0 && b < nodes_);
  if (a == b) return 0;
  const int down = std::max(2, radix_ / 2);
  // Find the level of the lowest common ancestor: smallest l such that
  // a / down^l == b / down^l.
  std::int64_t block = down;
  int level = 1;
  while (a / block != b / block) {
    block *= down;
    ++level;
  }
  return 2 * level;  // up `level` switches and down again
}

Dragonfly::Dragonfly(int nodes, int group_size, int router_size)
    : nodes_(nodes), group_size_(group_size), router_size_(router_size) {
  if (nodes <= 0) throw std::invalid_argument("Dragonfly: nodes must be > 0");
  if (group_size <= 0 || router_size <= 0 || group_size % router_size != 0)
    throw std::invalid_argument("Dragonfly: group_size must be a positive multiple of router_size");
}

std::string Dragonfly::name() const {
  return "dragonfly-g" + std::to_string(group_size_) + "-r" + std::to_string(router_size_);
}

int Dragonfly::hops(sim::RankId a, sim::RankId b) const {
  assert(a >= 0 && a < nodes_ && b >= 0 && b < nodes_);
  if (a == b) return 0;
  const int ga = static_cast<int>(a) / group_size_;
  const int gb = static_cast<int>(b) / group_size_;
  const int ra = static_cast<int>(a) / router_size_;
  const int rb = static_cast<int>(b) / router_size_;
  if (ra == rb) return 1;              // same router
  if (ga == gb) return 2;              // local link within group
  return 5;                            // min global route: up, local, global, local, down
}

sim::LogGOPSParams effective_params(const sim::LogGOPSParams& base,
                                    const Topology& topo, TimeNs per_hop_ns) {
  sim::LogGOPSParams p = base;
  p.L = base.L + static_cast<TimeNs>(topo.mean_hops() * static_cast<double>(per_hop_ns));
  return p;
}

TimeNs min_cross_shard_latency(const sim::LogGOPSParams& base,
                               const Topology& topo, TimeNs per_hop_ns,
                               const std::vector<int>& shard_starts) {
  const int n = topo.nodes();
  if (shard_starts.empty() || shard_starts.front() != 0)
    throw std::invalid_argument("min_cross_shard_latency: shard_starts must begin at 0");
  for (std::size_t s = 1; s < shard_starts.size(); ++s) {
    if (shard_starts[s] <= shard_starts[s - 1] || shard_starts[s] >= n)
      throw std::invalid_argument(
          "min_cross_shard_latency: shard_starts must be strictly increasing "
          "within [0, nodes)");
  }
  if (shard_starts.size() < 2) return base.L;  // One shard: nothing crosses.
  if (per_hop_ns <= 0) return base.L + per_hop_ns;  // Hops cost nothing.

  // Cross-shard pairs are distinct ranks, so hops >= 1 — that is the floor;
  // stop the scan as soon as some pair achieves it.
  const TimeNs floor = base.L + per_hop_ns;
  int min_hops = std::numeric_limits<int>::max();
  for (sim::RankId a = 0; a < n; ++a) {
    // Shard of `a`: the last start <= a.
    const auto it = std::upper_bound(shard_starts.begin(), shard_starts.end(),
                                     static_cast<int>(a));
    const std::size_t sa = static_cast<std::size_t>(it - shard_starts.begin()) - 1;
    const int lo = shard_starts[sa];
    const int hi = sa + 1 < shard_starts.size() ? shard_starts[sa + 1] : n;
    for (sim::RankId b = 0; b < n; ++b) {
      if (b >= lo && b < hi) continue;  // Same shard.
      min_hops = std::min(min_hops, topo.hops(a, b));
      if (min_hops <= 1) return floor;
    }
  }
  return base.L + static_cast<TimeNs>(min_hops) * per_hop_ns;
}

}  // namespace chksim::net
