// chksim_run — the unified campaign driver.
//
//   chksim_run campaign.json --jobs 8 --cache-dir .chksim-cache \
//              --journal campaign.journal.jsonl --resume
//
// Expands the declarative campaign spec, runs (or cache-hits) every cell,
// journals progress, and writes the deterministic merged report to stdout
// (or --out). Progress/ETA narration goes to stderr, so stdout is
// byte-identical for any --jobs value and for cold/warm/resumed runs — the
// property the campaign_determinism and campaign_resume ctest gates pin.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "chksim/campaign/runner.hpp"
#include "chksim/campaign/spec.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/obs/telemetry.hpp"
#include "chksim/support/cli.hpp"
#include "chksim/support/version.hpp"

namespace {

using namespace chksim;

int fail_usage(const Cli& cli, const char* program, const std::string& message) {
  std::cerr << message << "\n" << cli.usage(program) << "\n";
  return 2;
}

std::string format_eta(double seconds) {
  char buf[32];
  if (seconds < 120)
    std::snprintf(buf, sizeof buf, "%.0fs", seconds);
  else
    std::snprintf(buf, sizeof buf, "%.1fm", seconds / 60.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  add_standard_flags(cli);  // --jobs / --smoke / --ranks
  cli.flag("cache-dir", "", "content-addressed result cache directory (\"\" = off)");
  cli.flag("journal", "", "append-only JSONL journal path (\"\" = off)");
  cli.flag("resume", "false", "replay the journal and continue an interrupted run");
  cli.flag("out", "", "write the merged report here instead of stdout");
  cli.flag("stats-out", "", "write runner metrics (cache hits, timings) as JSON");
  cli.flag("retries", "2", "attempts per cell before recording it as failed");
  cli.flag("timeout-s", "0", "per-cell wall-clock budget in seconds (0 = none)");
  cli.flag("list", "false", "print the expanded cells and exit without running");
  cli.flag("quiet", "false", "suppress progress narration on stderr");
  cli.flag("kill-after", "0",
           "TESTING: SIGKILL self after N journal appends (crash injection)");

  if (!cli.parse(argc, argv))
    return fail_usage(cli, argv[0], cli.error());
  if (cli.positional().size() != 1)
    return fail_usage(cli, argv[0], "exactly one campaign spec file is required");

  StdOptions std_opt;
  try {
    std_opt = standard_options(cli);
  } catch (const std::exception& e) {
    return fail_usage(cli, argv[0], e.what());
  }

  const std::string spec_path = cli.positional()[0];
  campaign::CampaignSpec spec;
  std::string error;
  if (!campaign::CampaignSpec::parse_file(spec_path, std_opt.smoke, &spec, &error)) {
    std::cerr << error << "\n";
    return 2;
  }
  if (std_opt.ranks > 0) {
    // --ranks overrides the scale axis, exactly as it does for the benches.
    for (campaign::CellSpec& cell : spec.cells) cell.ranks = std_opt.ranks;
  }

  if (cli.get_bool("list")) {
    for (std::size_t i = 0; i < spec.cells.size(); ++i)
      std::cout << i << " " << spec.cells[i].canonical() << "\n";
    return 0;
  }

  obs::MetricsRegistry metrics;
  campaign::RunnerConfig run;
  run.jobs = std_opt.jobs;
  run.shards = std_opt.shards;
  run.cache_dir = cli.get("cache-dir");
  run.journal_path = cli.get("journal");
  run.resume = cli.get_bool("resume");
  run.max_attempts = static_cast<int>(cli.get_int("retries"));
  run.cell_timeout_seconds = cli.get_double("timeout-s");
  run.kill_after_cells = static_cast<int>(cli.get_int("kill-after"));
  run.metrics = &metrics;

  const bool quiet = cli.get_bool("quiet");
  const auto start = std::chrono::steady_clock::now();
  if (!quiet) {
    std::cerr << "campaign \"" << spec.name << "\": " << spec.cells.size()
              << " cells, jobs=" << run.jobs << ", code="
              << version::code_version() << "\n";
  }
  if (!quiet) {
    run.progress = [&](const campaign::CellOutcome& out, int done, int total) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double eta = done > 0 ? elapsed / done * (total - done) : 0;
      const std::string detail = out.error.empty() ? "" : ": " + out.error;
      std::fprintf(stderr, "[%d/%d] cell %d %s%s%s eta %s\n", done, total,
                   out.index, out.status.c_str(),
                   out.from_cache ? " (cache hit)"
                                  : out.from_journal ? " (journal)" : "",
                   detail.c_str(), format_eta(eta).c_str());
    };
  }

  campaign::CampaignResult result;
  try {
    obs::PhaseTimer run_phase(&metrics, "campaign_run");
    result = campaign::run_campaign(spec, run);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return 1;
  }

  if (!quiet) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::fprintf(stderr,
                 "done in %.2fs: %d ok (%d cached, %d journaled), %d failed\n",
                 elapsed, result.ok, result.from_cache, result.from_journal,
                 result.failed);
  }

  obs::PhaseTimer export_phase(&metrics, "export");
  const std::string report = result.report_json();
  const std::string out_path = cli.get("out");
  if (out_path.empty()) {
    std::cout << report;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    out << report;
    if (!out) {
      std::cerr << "cannot write report to " << out_path << "\n";
      return 1;
    }
    if (!quiet) std::cerr << "report: " << out_path << "\n";
  }

  export_phase.stop();

  if (cli.is_set("stats-out")) {
    obs::stamp_provenance(metrics, 0);
    obs::publish_process_telemetry(metrics);
    std::string stats_error;
    if (!metrics.write_json_file(cli.get("stats-out"), &stats_error)) {
      std::cerr << stats_error << "\n";
      return 1;
    }
  }

  // Failed cells are recorded, not fatal — but the exit status should still
  // say the campaign is incomplete.
  return result.failed == 0 ? 0 : 3;
}
