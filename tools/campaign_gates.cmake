# Campaign regression gates for chksim_run, driven as ctest scripts:
#
#   cmake -DMODE=determinism -DRUNNER=<chksim_run> -DSPEC=<campaign.json>
#         -DWORK_DIR=<dir> -P campaign_gates.cmake
#
# MODE=determinism — cold run (--jobs 1, empty cache) then warm reruns at
#   --jobs 2 and 8 against the SAME cache; all three stdout reports must be
#   byte-identical. This pins both jobs-independence and cold==warm identity
#   in one pass.
#
# MODE=resume — run with a journal and --kill-after 2 (the runner SIGKILLs
#   itself after the second fsync'd journal append), then rerun with
#   --resume; the resumed report must be byte-identical to an uninterrupted
#   run, and the runner stats must show exactly 2 journal-replayed cells.
if(NOT DEFINED MODE OR NOT DEFINED RUNNER OR NOT DEFINED SPEC OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "campaign_gates.cmake: MODE, RUNNER, SPEC, WORK_DIR are required")
endif()

set(area "${WORK_DIR}/campaign_${MODE}")
file(REMOVE_RECURSE "${area}")
file(MAKE_DIRECTORY "${area}")

function(run_campaign out_file expect_ok)
  execute_process(
    COMMAND "${RUNNER}" "${SPEC}" --smoke --quiet ${ARGN}
    OUTPUT_FILE "${out_file}"
    RESULT_VARIABLE rc)
  if(expect_ok AND NOT rc EQUAL 0)
    message(FATAL_ERROR "chksim_run ${ARGN} exited with ${rc}")
  endif()
  if(NOT expect_ok AND rc EQUAL 0)
    message(FATAL_ERROR "chksim_run ${ARGN} was expected to die but exited 0")
  endif()
endfunction()

function(must_match reference candidate what)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${reference}" "${candidate}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "campaign_${MODE}: ${what} (${reference} vs ${candidate})")
  endif()
endfunction()

if(MODE STREQUAL "determinism")
  set(cache "${area}/cache")
  run_campaign("${area}/cold_jobs1.out" TRUE --jobs 1 --cache-dir "${cache}")
  run_campaign("${area}/warm_jobs2.out" TRUE --jobs 2 --cache-dir "${cache}")
  run_campaign("${area}/warm_jobs8.out" TRUE --jobs 8 --cache-dir "${cache}")
  must_match("${area}/cold_jobs1.out" "${area}/warm_jobs2.out"
    "warm --jobs 2 report differs from cold --jobs 1")
  must_match("${area}/cold_jobs1.out" "${area}/warm_jobs8.out"
    "warm --jobs 8 report differs from cold --jobs 1")
  message(STATUS "campaign_determinism: cold/warm reports byte-identical for --jobs {1;2;8}")

elseif(MODE STREQUAL "resume")
  set(journal "${area}/campaign.journal.jsonl")
  # Crash mid-campaign: SIGKILL after the second journal append.
  run_campaign("${area}/killed.out" FALSE
    --jobs 1 --journal "${journal}" --kill-after 2)
  if(NOT EXISTS "${journal}")
    message(FATAL_ERROR "campaign_resume: killed run left no journal")
  endif()
  # Resume: replay the journal, run the remainder.
  run_campaign("${area}/resumed.out" TRUE
    --jobs 1 --journal "${journal}" --resume --stats-out "${area}/resumed_stats.json")
  # Uninterrupted baseline with its own journal.
  run_campaign("${area}/baseline.out" TRUE
    --jobs 1 --journal "${area}/baseline.journal.jsonl")
  must_match("${area}/baseline.out" "${area}/resumed.out"
    "resumed report differs from the uninterrupted run")
  file(READ "${area}/resumed_stats.json" stats)
  if(NOT stats MATCHES "\"campaign.cells_from_journal\": 2")
    message(FATAL_ERROR
      "campaign_resume: expected exactly 2 journal-replayed cells; stats:\n${stats}")
  endif()
  message(STATUS "campaign_resume: kill+resume report byte-identical to uninterrupted run")

else()
  message(FATAL_ERROR "campaign_gates.cmake: unknown MODE '${MODE}'")
endif()
