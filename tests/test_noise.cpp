// Noise injection and amplification-analysis tests.
#include "chksim/noise/noise.hpp"

#include <gtest/gtest.h>

#include "chksim/workload/workloads.hpp"

namespace chksim::noise {
namespace {

sim::EngineConfig test_net() {
  sim::EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 100;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  return cfg;
}

TEST(PeriodicNoise, AlignedSharesPhase) {
  PeriodicNoiseConfig cfg;
  cfg.period = 1000;
  cfg.duration = 100;
  cfg.aligned = true;
  const auto sched = make_periodic_noise(8, cfg);
  EXPECT_EQ(sched->next_blackout(0, 0)->begin, sched->next_blackout(7, 0)->begin);
}

TEST(PeriodicNoise, UnalignedSpreadsPhases) {
  PeriodicNoiseConfig cfg;
  cfg.period = 1'000'000;
  cfg.duration = 100;
  cfg.seed = 5;
  const auto sched = make_periodic_noise(64, cfg);
  const TimeNs b0 = sched->next_blackout(0, 0)->begin;
  bool differs = false;
  for (sim::RankId r = 1; r < 64; ++r)
    if (sched->next_blackout(r, 0)->begin != b0) differs = true;
  EXPECT_TRUE(differs);
}

TEST(PeriodicNoise, Validates) {
  PeriodicNoiseConfig cfg;
  cfg.period = 0;
  EXPECT_THROW(make_periodic_noise(4, cfg), std::invalid_argument);
  cfg.period = 10;
  cfg.duration = 20;
  EXPECT_THROW(make_periodic_noise(4, cfg), std::invalid_argument);
  cfg.duration = 5;
  EXPECT_THROW(make_periodic_noise(0, cfg), std::invalid_argument);
}

TEST(PoissonNoise, GeneratesWithinHorizon) {
  const auto sched = make_poisson_noise(4, 10'000, 1'000, 1'000'000, 3);
  for (sim::RankId r = 0; r < 4; ++r) {
    TimeNs t = 0;
    int count = 0;
    while (auto iv = sched->next_blackout(r, t)) {
      EXPECT_LT(iv->begin, 1'000'000 + 1'000);
      EXPECT_EQ(iv->duration(), 1'000);
      t = iv->end;
      ++count;
    }
    // Mean gap 10 us over 1 ms -> ~90 events.
    EXPECT_GT(count, 40);
    EXPECT_LT(count, 160);
  }
}

TEST(SingleBlackout, OnlyTargetRankAffected) {
  const auto sched = make_single_blackout(4, 2, {100, 200});
  EXPECT_FALSE(sched->next_blackout(0, 0).has_value());
  EXPECT_TRUE(sched->next_blackout(2, 0).has_value());
  EXPECT_THROW(make_single_blackout(4, 9, {0, 1}), std::invalid_argument);
}

TEST(Amplification, EpAbsorbsNothingButAlsoAmplifiesNothing) {
  // Embarrassingly parallel work with aligned noise: slowdown equals the
  // injected fraction exactly (amplification = 1), since every rank loses
  // the same time and there is no propagation.
  workload::EpConfig wcfg;
  wcfg.ranks = 8;
  wcfg.iterations = 20;
  wcfg.compute_per_iter = 1'000'000;
  sim::Program p = workload::make_ep(wcfg);
  p.finalize();
  PeriodicNoiseConfig ncfg;
  ncfg.period = 1'000'000;
  ncfg.duration = 50'000;  // 5%
  ncfg.aligned = true;
  const auto noise = make_periodic_noise(8, ncfg);
  const AmplificationReport rep =
      measure_amplification(p, test_net(), *noise, injected_fraction(ncfg));
  EXPECT_NEAR(rep.amplification, 1.0, 0.15);
}

TEST(Amplification, UnalignedNoiseOnCoupledAppAmplifies) {
  // A tightly coupled allreduce loop with random-phase noise: every rank
  // waits for the most-delayed rank each iteration, so slowdown exceeds the
  // injected fraction.
  workload::AllreduceConfig wcfg;
  wcfg.ranks = 32;
  wcfg.iterations = 30;
  wcfg.compute_per_iter = 1'000'000;
  wcfg.reduce_bytes = 8;
  sim::Program p = workload::make_allreduce_loop(wcfg);
  p.finalize();
  PeriodicNoiseConfig ncfg;
  ncfg.period = 1'000'000;
  ncfg.duration = 50'000;
  ncfg.aligned = false;
  ncfg.seed = 7;
  const auto noise = make_periodic_noise(32, ncfg);
  const AmplificationReport rep =
      measure_amplification(p, test_net(), *noise, injected_fraction(ncfg));
  EXPECT_GT(rep.amplification, 1.1);
}

TEST(Amplification, SingleRankDelayPropagates) {
  // Blacking out one rank of a coupled app for a long interval delays the
  // whole application by about that interval.
  workload::AllreduceConfig wcfg;
  wcfg.ranks = 16;
  wcfg.iterations = 10;
  wcfg.compute_per_iter = 1'000'000;
  sim::Program p = workload::make_allreduce_loop(wcfg);
  p.finalize();
  const auto noise = make_single_blackout(16, 5, {0, 3'000'000});
  const AmplificationReport rep = measure_amplification(p, test_net(), *noise, 0.0);
  EXPECT_GE(rep.noisy_makespan - rep.base_makespan, 2'500'000);
}

TEST(Amplification, ReportFieldsConsistent) {
  workload::EpConfig wcfg;
  wcfg.ranks = 4;
  wcfg.iterations = 5;
  sim::Program p = workload::make_ep(wcfg);
  p.finalize();
  PeriodicNoiseConfig ncfg;
  const auto noise = make_periodic_noise(4, ncfg);
  const AmplificationReport rep =
      measure_amplification(p, test_net(), *noise, injected_fraction(ncfg));
  EXPECT_GT(rep.base_makespan, 0);
  EXPECT_GE(rep.noisy_makespan, rep.base_makespan);
  EXPECT_NEAR(rep.slowdown,
              static_cast<double>(rep.noisy_makespan) /
                  static_cast<double>(rep.base_makespan),
              1e-12);
}

}  // namespace
}  // namespace chksim::noise
