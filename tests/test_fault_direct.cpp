// SimCore resumable-API semantics and direct in-DES failure injection,
// with hand-computed recovery algebra and direct-vs-decoupled agreement
// checks on explicit failure traces (ISSUE 4 edge cases).
#include "chksim/fault/direct.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "chksim/ckpt/recovery.hpp"
#include "chksim/sim/availability.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/sim/program.hpp"

namespace chksim::fault {
namespace {

constexpr TimeNs kForever = std::numeric_limits<TimeNs>::max();

// Same hand-calculation parameters as test_sim_engine: latency 1000,
// overhead 100, gap 200, no per-byte costs, eager only.
sim::LogGOPSParams simple_net() {
  sim::LogGOPSParams p;
  p.L = 1000;
  p.o = 100;
  p.g = 200;
  p.G = 0.0;
  p.O = 0.0;
  p.S = 1 << 30;
  return p;
}

sim::EngineConfig simple_config() {
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  return cfg;
}

// One rank, ten dependency-chained 100 ns calcs: the machine executes them
// strictly serially at true event times, so run_until() bounds are honest
// (independent ops would all fire their events at t = 0).
sim::Program chain_program(int calcs = 10, TimeNs each = 100) {
  sim::Program p(1);
  sim::OpRef prev{};
  for (int i = 0; i < calcs; ++i) {
    const sim::OpRef c = p.calc(0, each);
    if (i > 0) p.depends(prev, c);
    prev = c;
  }
  p.finalize();
  return p;
}

// Two ranks: r0 computes then sends; r1 receives then computes. With
// simple_net the failure-free timeline is calc [0,100), send [100,200),
// arrival 1200, recv end 1300, calc end 1400.
sim::Program pingpong_program() {
  sim::Program p(2);
  const sim::OpRef c0 = p.calc(0, 100);
  const sim::OpRef s = p.send(0, 1, 8, 1);
  p.depends(c0, s);
  const sim::OpRef r = p.recv(1, 0, 8, 1);
  const sim::OpRef c1 = p.calc(1, 100);
  p.depends(r, c1);
  p.finalize();
  return p;
}

// --- SimCore resumable API -------------------------------------------------

TEST(SimCore, StepLoopMatchesEngineRun) {
  const sim::Program p = pingpong_program();
  const sim::EngineConfig cfg = simple_config();
  const sim::RunResult one_shot = sim::run_program(p, cfg);
  ASSERT_TRUE(one_shot.completed);

  sim::SimCore core(p, cfg);
  std::int64_t steps = 0;
  while (core.step()) ++steps;
  EXPECT_TRUE(core.idle());
  EXPECT_TRUE(core.finished());
  const sim::RunResult stepped = core.take_result();
  EXPECT_EQ(steps, one_shot.events_processed);
  EXPECT_TRUE(stepped.completed);
  EXPECT_EQ(stepped.makespan, one_shot.makespan);
  EXPECT_EQ(stepped.ops_executed, one_shot.ops_executed);
  EXPECT_EQ(stepped.events_processed, one_shot.events_processed);
  EXPECT_EQ(stepped.op_finish, one_shot.op_finish);
  EXPECT_EQ(stepped.op_finish_offset, one_shot.op_finish_offset);
}

TEST(SimCore, RunUntilIsIncremental) {
  const sim::Program p = chain_program();
  const sim::EngineConfig cfg = simple_config();
  sim::SimCore core(p, cfg);

  core.run_until(250);  // processes start events at 0, 100, 200
  EXPECT_FALSE(core.finished());
  EXPECT_FALSE(core.idle());
  EXPECT_EQ(core.ops_executed(), 3);
  EXPECT_EQ(core.makespan(), 300);
  EXPECT_EQ(core.next_event_time(), 300);

  core.run_until(kForever);
  EXPECT_TRUE(core.finished());
  EXPECT_TRUE(core.idle());
  EXPECT_EQ(core.next_event_time(), -1);
  const sim::RunResult r = core.take_result();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 1000);
}

TEST(SimCore, SnapshotRestoreReproducesTheRun) {
  const sim::Program p = pingpong_program();
  const sim::EngineConfig cfg = simple_config();
  const sim::RunResult reference = sim::run_program(p, cfg);

  sim::SimCore core(p, cfg);
  core.run_until(600);  // mid-flight: message sent, not yet arrived
  const sim::SimCore::Snapshot snap = core.snapshot();
  core.run_until(kForever);
  EXPECT_TRUE(core.finished());
  EXPECT_EQ(core.makespan(), reference.makespan);

  core.restore(snap);  // rewind and replay: deterministic identical future
  EXPECT_FALSE(core.finished());
  core.run_until(kForever);
  const sim::RunResult replay = core.take_result();
  EXPECT_TRUE(replay.completed);
  EXPECT_EQ(replay.makespan, reference.makespan);
  EXPECT_EQ(replay.ops_executed, reference.ops_executed);
  EXPECT_EQ(replay.op_finish, reference.op_finish);
}

TEST(SimCore, InjectedOutageDelaysTheRank) {
  const sim::Program p = chain_program();
  sim::SimCore core(p, simple_config());
  sim::Injection inj;
  inj.kind = sim::Injection::Kind::kOutage;
  inj.rank = 0;
  inj.time = 0;
  inj.until = 500;
  core.inject(inj);
  core.run_until(kForever);
  const sim::RunResult r = core.take_result();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 1500);  // 500 outage + 10 x 100 work
}

TEST(SimCore, InjectedMessageSatisfiesARecv) {
  sim::Program p(2);
  p.recv(0, 1, 8, 9);  // no matching send anywhere in the program
  p.finalize();
  sim::SimCore core(p, simple_config());
  sim::Injection inj;
  inj.kind = sim::Injection::Kind::kMessage;
  inj.rank = 0;
  inj.src = 1;
  inj.tag = 9;
  inj.bytes = 8;
  inj.time = 300;
  core.inject(inj);
  core.run_until(kForever);
  const sim::RunResult r = core.take_result();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, 400);  // arrival 300 + recv overhead o = 100
}

// --- Coordinated rollback: hand-computed algebra ---------------------------

TEST(DirectRollback, SingleFailureNoCommitsRestartsFromScratch) {
  const sim::Program p = chain_program();  // W = 1000
  const sim::EngineConfig cfg = simple_config();
  DirectConfig dc;
  dc.mode = RecoveryMode::kGlobalRollback;  // commits == nullptr: rollback to start
  dc.restart = 200;
  const std::vector<Failure> trace{{350, 0}};
  const DirectResult r = run_with_failures(p, cfg, dc, trace);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.makespan_wall, 1550);  // t_f + R + full re-execution
  EXPECT_EQ(r.stats.failures, 1);
  EXPECT_EQ(r.stats.rollbacks, 1);
  EXPECT_EQ(r.stats.lost_work, 350);
  EXPECT_EQ(r.stats.downtime, 200);
  EXPECT_EQ(r.stats.snapshots, 1);  // the t = 0 snapshot only
}

TEST(DirectRollback, FailureAfterCompletionIsIgnored) {
  const sim::Program p = chain_program();
  DirectConfig dc;
  dc.mode = RecoveryMode::kGlobalRollback;
  dc.restart = 200;
  const std::vector<Failure> trace{{1000, 0}};  // exactly at completion: tie
  const DirectResult r = run_with_failures(p, simple_config(), dc, trace);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan_wall, 1000);  // completion wins the tie
  EXPECT_EQ(r.stats.failures, 0);
}

// Fixture for the committed-schedule scenarios: blackouts [300,350) and
// [650,700) model two checkpoint writes; commits land at the interval ends
// 350 and 700 (machine time). The chained program stretches to M = 1100.
class DirectCommitted : public ::testing::Test {
 protected:
  DirectCommitted()
      : program_(chain_program()),
        commits_(std::vector<std::vector<sim::Interval>>{
            {{300, 350}, {650, 700}}}),
        config_(simple_config()) {
    config_.blackouts = &commits_;
    const sim::RunResult base = sim::run_program(program_, config_);
    machine_makespan_ = base.makespan;
  }

  DirectConfig direct_config() const {
    DirectConfig dc;
    dc.mode = RecoveryMode::kGlobalRollback;
    dc.commits = &commits_;
    dc.restart = 200;
    return dc;
  }

  // Matched decoupled model: work = 1000 ns, slowdown = M / W, commits
  // every 350 ns of wallclock (= the machine commit positions pre-failure).
  ckpt::RecoveryParams decoupled_params() const {
    ckpt::RecoveryParams rp;
    rp.kind = ckpt::ProtocolKind::kCoordinated;
    rp.work_seconds = units::to_seconds(1000);
    rp.slowdown = static_cast<double>(machine_makespan_) / 1000.0;
    rp.interval_seconds = units::to_seconds(350);
    rp.restart_seconds = units::to_seconds(200);
    return rp;
  }

  void expect_agreement(const std::vector<Failure>& trace,
                        TimeNs expected_wall) {
    const DirectConfig dc = direct_config();
    const DirectResult direct = run_with_failures(program_, config_, dc, trace);
    ASSERT_TRUE(direct.completed) << direct.error;
    EXPECT_EQ(direct.makespan_wall, expected_wall);
    const double decoupled =
        ckpt::makespan_against_trace(decoupled_params(), trace, /*seed=*/1);
    // Exact agreement: the decoupled remaining-work algebra collapses to
    // M - snap_m whenever its last commit's wallclock equals the machine
    // commit position (offset 0 up to the first failure, and rollbacks
    // return both models to the same commit).
    EXPECT_NEAR(units::to_seconds(direct.makespan_wall), decoupled, 1e-12);
  }

  sim::Program program_;
  sim::ListBlackouts commits_;
  sim::EngineConfig config_;
  TimeNs machine_makespan_ = 0;
};

TEST_F(DirectCommitted, BaselineStretchesOverTheBlackouts) {
  EXPECT_EQ(machine_makespan_, 1100);  // 1000 work + 2 x 50 checkpoint
}

TEST_F(DirectCommitted, FailureExactlyAtCommitBoundaryLosesNothing) {
  // t_f = 700 is the second commit's end: the commit wins the tie, so the
  // rollback restores the state of this very instant — zero work lost,
  // makespan = M + R.
  const DirectConfig dc = direct_config();
  const DirectResult r =
      run_with_failures(program_, config_, dc, {{700, 0}});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.stats.lost_work, 0);
  EXPECT_EQ(r.stats.snapshots, 3);  // t = 0, 350, 700
  expect_agreement({{700, 0}}, machine_makespan_ + 200);
}

TEST_F(DirectCommitted, FailureDuringCheckpointWriteRollsToPreviousCommit) {
  // t_f = 680 lands inside the second checkpoint write [650,700): only the
  // 350 commit holds. Wall = t_f + R + (M - 350).
  expect_agreement({{680, 0}}, 680 + 200 + machine_makespan_ - 350);
}

TEST_F(DirectCommitted, NestedFailureDuringRestartIsAbsorbed) {
  // f2 = 800 lands inside f1's restart window [680, 880): both models fold
  // it into the ongoing recovery, so the makespan matches the single-failure
  // case exactly.
  expect_agreement({{680, 0}, {800, 0}}, 680 + 200 + machine_makespan_ - 350);
}

TEST_F(DirectCommitted, NestedFailureDuringReExecutionRollsBackAgain) {
  // f1 = 680 rolls back to commit 350 (offset becomes 530); f2 = 1000 hits
  // the re-execution at machine time 470 — before the machine re-reaches
  // the 650-700 checkpoint — so it rolls back to the same commit.
  expect_agreement({{680, 0}, {1000, 0}}, 1000 + 200 + machine_makespan_ - 350);
}

TEST_F(DirectCommitted, IntervalLongerThanJobRollsToStart) {
  // Commit schedule beyond the job: the machine never commits, every
  // failure re-executes from scratch — same as the no-commit config.
  sim::ListBlackouts far(
      std::vector<std::vector<sim::Interval>>{{{5000, 5350}}});
  DirectConfig dc = direct_config();
  dc.commits = &far;
  sim::EngineConfig plain = simple_config();  // no perturbation blackouts
  const sim::Program p = chain_program();
  const DirectResult direct = run_with_failures(p, plain, dc, {{350, 0}});
  ASSERT_TRUE(direct.completed) << direct.error;
  EXPECT_EQ(direct.makespan_wall, 1550);

  ckpt::RecoveryParams rp;
  rp.kind = ckpt::ProtocolKind::kCoordinated;
  rp.work_seconds = units::to_seconds(1000);
  rp.slowdown = 1.0;
  rp.interval_seconds = units::to_seconds(5350);
  rp.restart_seconds = units::to_seconds(200);
  const double decoupled = ckpt::makespan_against_trace(rp, {{350, 0}}, 1);
  EXPECT_NEAR(units::to_seconds(direct.makespan_wall), decoupled, 1e-12);
}

TEST(DirectRollback, ZeroWorkCompletesInstantly) {
  sim::Program p(2);  // no ops at all
  p.finalize();
  DirectConfig dc;
  dc.mode = RecoveryMode::kGlobalRollback;
  dc.restart = 200;
  const DirectResult r =
      run_with_failures(p, simple_config(), dc, {{10, 0}, {20, 1}});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan_wall, 0);
  EXPECT_EQ(r.stats.failures, 0);  // nothing ever at risk
  // The decoupled model rejects a zero-work job outright; only the direct
  // simulator gives the degenerate case a meaning.
  ckpt::RecoveryParams rp;
  rp.kind = ckpt::ProtocolKind::kCoordinated;
  rp.work_seconds = 0;
  rp.interval_seconds = 1;
  EXPECT_THROW(ckpt::makespan_against_trace(rp, {{10, 0}}, 1),
               std::invalid_argument);
}

// --- Uncoordinated / hierarchical replay -----------------------------------

TEST(DirectReplay, FailedRankReplaysAndDelaysItsNextOp) {
  // Failure on rank 0 at t = 50: restart 100 + replay 50/2 = 25 parks the
  // rank until 175. Its send (ready at 100) starts at 175 instead, shifting
  // the whole downstream chain by 75: makespan 1400 + 75.
  const sim::Program p = pingpong_program();
  DirectConfig dc;
  dc.mode = RecoveryMode::kLocalReplay;  // no commits: replay from t = 0
  dc.restart = 100;
  dc.replay_speedup = 2.0;
  const DirectResult r = run_with_failures(p, simple_config(), dc, {{50, 0}});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.makespan_wall, 1475);
  EXPECT_EQ(r.stats.failures, 1);
  EXPECT_EQ(r.stats.replays, 1);
  EXPECT_EQ(r.stats.rollbacks, 0);
  EXPECT_EQ(r.stats.lost_work, 50);       // t_f - last local commit
  EXPECT_EQ(r.stats.downtime, 100 + 25);  // restart + replay
}

TEST(DirectReplay, InFlightMessageSurvivesAReceiverFailure) {
  // Failure on rank 1 at t = 50 parks it until 175 — but its recv only
  // matches at arrival 1200 anyway, so the logged in-flight message is
  // consumed on replay and the makespan is untouched. This is the
  // message-log semantics the uncoordinated model assumes.
  const sim::Program p = pingpong_program();
  DirectConfig dc;
  dc.mode = RecoveryMode::kLocalReplay;
  dc.restart = 100;
  dc.replay_speedup = 2.0;
  const DirectResult r = run_with_failures(p, simple_config(), dc, {{50, 1}});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.makespan_wall, 1400);  // failure-free makespan
  EXPECT_EQ(r.stats.failures, 1);
}

TEST(DirectReplay, ClusterModeTakesTheWholeClusterDown) {
  // Same rank-1 failure, but cluster_size = 2 drags rank 0 into the outage:
  // now the sender is parked until 175 and the delay propagates after all.
  const sim::Program p = pingpong_program();
  DirectConfig dc;
  dc.mode = RecoveryMode::kClusterReplay;
  dc.cluster_size = 2;
  dc.restart = 100;
  dc.replay_speedup = 2.0;
  const DirectResult r = run_with_failures(p, simple_config(), dc, {{50, 1}});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.makespan_wall, 1475);
  EXPECT_EQ(r.stats.replays, 1);
}

TEST(DirectReplay, LocalCommitShortensTheReplay) {
  // Rank 0 commits locally at 40 (blackout [20,40) stretches its calc to
  // end at 120); the t = 50 failure then replays only 10 ns of log: outage
  // until 50 + 100 + 5 = 155, so the send slips from 120 to 155 and the
  // whole chain shifts by 35.
  const sim::Program p = pingpong_program();
  sim::ListBlackouts local({{{{20, 40}}}, {}});
  sim::EngineConfig cfg = simple_config();
  cfg.blackouts = &local;
  DirectConfig dc;
  dc.mode = RecoveryMode::kLocalReplay;
  dc.commits = &local;
  dc.restart = 100;
  dc.replay_speedup = 2.0;
  const DirectResult base_probe = run_with_failures(p, cfg, dc, {});
  ASSERT_TRUE(base_probe.completed);
  const DirectResult r = run_with_failures(p, cfg, dc, {{50, 0}});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.stats.lost_work, 10);
  EXPECT_EQ(r.stats.downtime, 105);
  EXPECT_EQ(r.makespan_wall, base_probe.makespan_wall + 35);
}

// --- Diagnostics and determinism -------------------------------------------

TEST(DirectReplay, DeadlockDiagnosticsCarryTheFailureContext) {
  sim::Program p(2);
  p.calc(0, 100);
  p.recv(1, 0, 8, 3);  // never satisfied: the run wedges
  p.finalize();
  DirectConfig dc;
  dc.mode = RecoveryMode::kLocalReplay;
  dc.restart = 100;
  const DirectResult r = run_with_failures(p, simple_config(), dc, {{10, 0}});
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("injected-failure context"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("local replay"), std::string::npos) << r.error;
}

TEST(DirectRenewal, SameSeedIsByteIdentical) {
  const sim::Program p = pingpong_program();
  DirectConfig dc;
  dc.mode = RecoveryMode::kGlobalRollback;
  dc.restart = 200;
  const Exponential dist(2e-6);  // a couple of failures over a ~1.4 us job
  const DirectResult a =
      run_with_failures(p, simple_config(), dc, dist, Rng::substream(42, 0));
  const DirectResult b =
      run_with_failures(p, simple_config(), dc, dist, Rng::substream(42, 0));
  ASSERT_TRUE(a.completed) << a.error;
  EXPECT_EQ(a.makespan_wall, b.makespan_wall);
  EXPECT_EQ(a.stats.failures, b.stats.failures);
  EXPECT_EQ(a.stats.lost_work, b.stats.lost_work);
  const DirectResult c =
      run_with_failures(p, simple_config(), dc, dist, Rng::substream(43, 0));
  (void)c;  // different seed may legitimately coincide; just exercise it
}

}  // namespace
}  // namespace chksim::fault
