// Collective expander tests: message counts, completion, and LogP-shaped
// timing across group sizes (including non-powers of two).
#include "chksim/coll/collectives.hpp"

#include <gtest/gtest.h>

#include "chksim/sim/engine.hpp"

namespace chksim::coll {
namespace {

using sim::EngineConfig;
using sim::LogGOPSParams;
using sim::Program;
using sim::RunResult;

LogGOPSParams simple_net() {
  LogGOPSParams p;
  p.L = 1000;
  p.o = 100;
  p.g = 0;
  p.G = 0.0;
  p.O = 0.0;
  p.S = 1 << 30;
  return p;
}

RunResult run(Program& p) {
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  RunResult r = sim::run_program(p, cfg);
  EXPECT_TRUE(r.completed) << r.error;
  return r;
}

int ceil_log2(int n) {
  int bits = 0;
  int v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

TEST(FullGroup, Enumerates) {
  const Group g = full_group(4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g[0], 0);
  EXPECT_EQ(g[3], 3);
}

TEST(Collectives, EmptyGroupThrows) {
  Program p(2);
  EXPECT_THROW(bcast_binomial(p, {}, 0, 8), std::invalid_argument);
  EXPECT_THROW(barrier_dissemination(p, {}), std::invalid_argument);
}

TEST(Collectives, BadRootThrows) {
  Program p(4);
  EXPECT_THROW(bcast_binomial(p, full_group(4), 7, 8), std::invalid_argument);
  EXPECT_THROW(reduce_binomial(p, full_group(4), -1, 8), std::invalid_argument);
}

TEST(BcastBinomial, MessageCountIsPMinus1) {
  for (int P : {2, 3, 4, 5, 8, 13, 16}) {
    Program p(P);
    bcast_binomial(p, full_group(P), 0, 64);
    const auto st = p.finalize();
    EXPECT_EQ(st.sends, P - 1) << "P=" << P;
    EXPECT_EQ(st.recvs, P - 1) << "P=" << P;
    EXPECT_TRUE(p.check_matching().empty()) << "P=" << P;
  }
}

TEST(BcastBinomial, CompletesFromNonZeroRoot) {
  for (int root : {0, 1, 3, 6}) {
    Program p(7);
    bcast_binomial(p, full_group(7), root, 64);
    run(p);
  }
}

TEST(BcastBinomial, LogDepthTiming) {
  // Binomial tree depth is ceil(log2 P); each hop costs >= o + L + o.
  const int P = 16;
  Program p(P);
  bcast_binomial(p, full_group(P), 0, 8);
  const RunResult r = run(p);
  const sim::LogGOPSParams net = simple_net();
  const TimeNs hop = net.L + 2 * net.o;
  EXPECT_GE(r.makespan, ceil_log2(P) * hop);
  // And it is far cheaper than a linear broadcast.
  EXPECT_LT(r.makespan, (P - 1) * hop);
}

TEST(ReduceBinomial, MessageCountIsPMinus1) {
  for (int P : {2, 3, 6, 9, 16}) {
    Program p(P);
    reduce_binomial(p, full_group(P), 0, 64);
    const auto st = p.finalize();
    EXPECT_EQ(st.sends, P - 1) << "P=" << P;
    EXPECT_TRUE(p.check_matching().empty());
  }
}

TEST(ReduceBinomial, RootExitIsLast) {
  Program p(8);
  const Deps exits = reduce_binomial(p, full_group(8), 0, 64);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  const RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  const TimeNs root_done =
      r.op_finish_of(0)[exits[0].index];
  for (int i = 1; i < 8; ++i) {
    const TimeNs member_done =
        r.op_finish_of(exits[static_cast<std::size_t>(i)].rank)
            [exits[static_cast<std::size_t>(i)].index];
    EXPECT_LE(member_done, root_done) << "member " << i;
  }
}

TEST(AllreduceRecursiveDoubling, PowerOfTwoMessageCount) {
  // P * log2(P) sends for power-of-two groups.
  for (int P : {2, 4, 8, 16}) {
    Program p(P);
    allreduce_recursive_doubling(p, full_group(P), 8);
    const auto st = p.finalize();
    EXPECT_EQ(st.sends, static_cast<std::int64_t>(P) * ceil_log2(P)) << "P=" << P;
    EXPECT_TRUE(p.check_matching().empty());
  }
}

TEST(AllreduceRecursiveDoubling, NonPowerOfTwoCompletes) {
  for (int P : {3, 5, 6, 7, 9, 12, 15}) {
    Program p(P);
    allreduce_recursive_doubling(p, full_group(P), 8);
    run(p);
  }
}

TEST(AllreduceRecursiveDoubling, SingletonIsNoop) {
  Program p(1);
  allreduce_recursive_doubling(p, full_group(1), 8);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, 0);
}

TEST(AllreduceRecursiveDoubling, LogDepthTiming) {
  const int P = 32;
  Program p(P);
  allreduce_recursive_doubling(p, full_group(P), 8);
  const RunResult r = run(p);
  const sim::LogGOPSParams net = simple_net();
  const TimeNs hop = net.L + 2 * net.o;
  EXPECT_GE(r.makespan, ceil_log2(P) * hop);
  EXPECT_LT(r.makespan, 4 * ceil_log2(P) * hop);
}

TEST(AllreduceRing, MessageCount) {
  // 2 * (P - 1) steps, one send per member per step.
  const int P = 6;
  Program p(P);
  allreduce_ring(p, full_group(P), 6000);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, static_cast<std::int64_t>(2 * (P - 1)) * P);
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(AllreduceRing, ChunksArePayloadOverP) {
  const int P = 4;
  Program p(P);
  allreduce_ring(p, full_group(P), 4000);
  const auto st = p.finalize();
  // Each member sends 2*(P-1) chunks of 1000 bytes.
  EXPECT_EQ(st.bytes_sent, static_cast<Bytes>(2 * (P - 1)) * P * 1000);
}

TEST(BarrierDissemination, RoundCount) {
  for (int P : {2, 3, 4, 5, 8, 11}) {
    Program p(P);
    barrier_dissemination(p, full_group(P));
    const auto st = p.finalize();
    EXPECT_EQ(st.sends, static_cast<std::int64_t>(P) * ceil_log2(P)) << "P=" << P;
  }
}

TEST(BarrierDissemination, NoMemberExitsBeforeLastEntry) {
  // The defining property of a barrier: every exit happens after every entry.
  const int P = 8;
  Program p(P);
  // Stagger entries with calcs of different lengths.
  Deps entry(P);
  for (sim::RankId r = 0; r < P; ++r) entry[static_cast<std::size_t>(r)] = p.calc(r, (r + 1) * 1000);
  const Deps exits = barrier_dissemination(p, full_group(P), entry);
  p.finalize();
  EngineConfig cfg;
  cfg.net = simple_net();
  cfg.record_op_finish = true;
  const RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  const TimeNs last_entry = P * 1000;  // rank P-1's calc finishes last
  for (int i = 0; i < P; ++i) {
    const auto ex = exits[static_cast<std::size_t>(i)];
    EXPECT_GE(r.op_finish_of(static_cast<std::size_t>(ex.rank))[ex.index], last_entry);
  }
}

TEST(BarrierTree, Completes) {
  for (int P : {2, 5, 16}) {
    Program p(P);
    barrier_tree(p, full_group(P));
    run(p);
  }
}

TEST(AllgatherRing, MessageCountAndBytes) {
  const int P = 5;
  Program p(P);
  allgather_ring(p, full_group(P), 100);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, static_cast<std::int64_t>(P) * (P - 1));
  EXPECT_EQ(st.bytes_sent, static_cast<Bytes>(P) * (P - 1) * 100);
}

TEST(AlltoallPairwise, MessageCount) {
  const int P = 6;
  Program p(P);
  alltoall_pairwise(p, full_group(P), 100);
  const auto st = p.finalize();
  EXPECT_EQ(st.sends, static_cast<std::int64_t>(P) * (P - 1));
  EXPECT_TRUE(p.check_matching().empty());
}

TEST(GatherScatterLinear, Counts) {
  const int P = 7;
  Program pg(P);
  gather_linear(pg, full_group(P), 2, 64);
  EXPECT_EQ(pg.finalize().sends, P - 1);
  Program ps(P);
  scatter_linear(ps, full_group(P), 2, 64);
  EXPECT_EQ(ps.finalize().sends, P - 1);
}

TEST(Collectives, SubgroupsDontTouchOtherRanks) {
  // A collective over {1, 3, 5} must not add ops on other ranks.
  Program p(6);
  const Group sub = {1, 3, 5};
  allreduce_recursive_doubling(p, sub, 8);
  p.finalize();
  EXPECT_EQ(p.rank_size(0), 0u);
  EXPECT_EQ(p.rank_size(2), 0u);
  EXPECT_EQ(p.rank_size(4), 0u);
  EXPECT_GT(p.rank_size(1), 0u);
}

TEST(Collectives, ChainedCollectivesRespectOrder) {
  // barrier ; allreduce ; barrier over the same group completes (tags keep
  // the three phases from cross-matching).
  const int P = 9;
  Program p(P);
  Deps d = barrier_dissemination(p, full_group(P));
  d = allreduce_recursive_doubling(p, full_group(P), 1024, d);
  d = barrier_dissemination(p, full_group(P), d);
  run(p);
}

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, AllCollectivesCompleteAtSize) {
  const int P = GetParam();
  {
    Program p(P);
    Deps d = bcast_binomial(p, full_group(P), P / 2, 4096);
    d = reduce_binomial(p, full_group(P), 0, 4096, d);
    d = allreduce_recursive_doubling(p, full_group(P), 64, d);
    d = allgather_ring(p, full_group(P), 128, d);
    d = alltoall_pairwise(p, full_group(P), 32, d);
    d = barrier_tree(p, full_group(P), d);
    run(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 23, 32, 64));

}  // namespace
}  // namespace chksim::coll
