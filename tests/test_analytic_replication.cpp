// Tests for the process-replication comparator.
#include "chksim/analytic/replication.hpp"

#include <gtest/gtest.h>

namespace chksim::analytic {
namespace {

ReplicationInputs base() {
  ReplicationInputs in;
  in.app_ranks = 1 << 19;  // half of a 2^20-node machine
  in.node_mtbf_seconds = 25'000.0 * 3600;
  in.rebuild_seconds = 600;
  in.ckpt_seconds = 60;
  in.restart_seconds = 300;
  return in;
}

TEST(Replication, JobMtbfFormula) {
  ReplicationInputs in = base();
  const double lambda = 1.0 / in.node_mtbf_seconds;
  const double expected =
      1.0 / (in.app_ranks * 2.0 * lambda * lambda * in.rebuild_seconds);
  EXPECT_NEAR(replicated_job_mtbf_seconds(in), expected, 1e-6 * expected);
}

TEST(Replication, JobMtbfVastlyExceedsUnreplicated) {
  ReplicationInputs in = base();
  const double unreplicated = in.node_mtbf_seconds / (2.0 * in.app_ranks);
  EXPECT_GT(replicated_job_mtbf_seconds(in), 1000 * unreplicated);
}

TEST(Replication, EfficiencyNearHalfAtExtremeScale) {
  const double e = replication_efficiency(base());
  EXPECT_GT(e, 0.45);
  EXPECT_LE(e, 0.5);
}

TEST(Replication, EfficiencyCappedAtHalf) {
  ReplicationInputs in = base();
  in.ckpt_seconds = 0;  // no checkpointing at all
  EXPECT_DOUBLE_EQ(replication_efficiency(in), 0.5);
}

TEST(Replication, MtbfScalesInverselyWithRanks) {
  ReplicationInputs small = base();
  small.app_ranks = 1 << 10;
  ReplicationInputs large = base();
  large.app_ranks = 1 << 20;
  EXPECT_NEAR(replicated_job_mtbf_seconds(small) / replicated_job_mtbf_seconds(large),
              1024.0, 1.0);
}

TEST(Replication, ShorterRebuildWindowHelps) {
  ReplicationInputs slow = base();
  ReplicationInputs fast = base();
  fast.rebuild_seconds = 60;
  EXPECT_GT(replicated_job_mtbf_seconds(fast), replicated_job_mtbf_seconds(slow));
}

TEST(Replication, Validates) {
  ReplicationInputs in = base();
  in.app_ranks = 0;
  EXPECT_THROW(replicated_job_mtbf_seconds(in), std::invalid_argument);
  in = base();
  in.node_mtbf_seconds = 0;
  EXPECT_THROW(replication_efficiency(in), std::invalid_argument);
  in = base();
  in.rebuild_seconds = 0;
  EXPECT_THROW(replication_efficiency(in), std::invalid_argument);
}

}  // namespace
}  // namespace chksim::analytic
