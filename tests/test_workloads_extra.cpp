// Tests for the imbalanced-BSP and pipeline workloads, and the closed-form
// efficiency model.
#include <gtest/gtest.h>

#include "chksim/analytic/efficiency.hpp"
#include "chksim/ckpt/recovery.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

sim::EngineConfig fast_net() {
  sim::EngineConfig cfg;
  cfg.net.L = 1000;
  cfg.net.o = 100;
  cfg.net.g = 100;
  cfg.net.G = 0.0;
  cfg.net.S = 1 << 30;
  return cfg;
}

TEST(ImbalancedBsp, CompletesAndMatches) {
  workload::ImbalancedBspConfig cfg;
  cfg.ranks = 16;
  cfg.iterations = 5;
  sim::Program p = workload::make_imbalanced_bsp(cfg);
  p.finalize();
  EXPECT_TRUE(p.check_matching().empty());
  const sim::RunResult r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << r.error;
}

TEST(ImbalancedBsp, ImbalanceSlowsTheLoop) {
  // With a barrier-like allreduce every iteration, imbalance makes every
  // iteration as slow as the slowest rank: cv=0.5 must beat cv=0.
  workload::ImbalancedBspConfig balanced;
  balanced.ranks = 32;
  balanced.iterations = 20;
  balanced.compute_cv = 0.0;
  workload::ImbalancedBspConfig skewed = balanced;
  skewed.compute_cv = 0.5;
  sim::Program pb = workload::make_imbalanced_bsp(balanced);
  sim::Program ps = workload::make_imbalanced_bsp(skewed);
  pb.finalize();
  ps.finalize();
  const auto rb = sim::run_program(pb, fast_net());
  const auto rs = sim::run_program(ps, fast_net());
  ASSERT_TRUE(rb.completed && rs.completed);
  EXPECT_GT(rs.makespan, rb.makespan);
}

TEST(ImbalancedBsp, SeedReproducible) {
  workload::ImbalancedBspConfig cfg;
  cfg.ranks = 8;
  cfg.iterations = 4;
  cfg.seed = 77;
  sim::Program a = workload::make_imbalanced_bsp(cfg);
  sim::Program b = workload::make_imbalanced_bsp(cfg);
  a.finalize();
  b.finalize();
  EXPECT_EQ(sim::run_program(a, fast_net()).makespan,
            sim::run_program(b, fast_net()).makespan);
}

TEST(Pipeline, StructureAndCompletion) {
  workload::PipelineConfig cfg;
  cfg.ranks = 4;
  cfg.items = 10;
  sim::Program p = workload::make_pipeline(cfg);
  const auto st = p.finalize();
  // Each item crosses 3 links.
  EXPECT_EQ(st.sends, 3 * 10);
  EXPECT_TRUE(p.check_matching().empty());
  const auto r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_THROW(workload::make_pipeline({1, 4, 1, 1}), std::invalid_argument);
}

TEST(Pipeline, SteadyStateThroughputIsStageBound) {
  // With zero network cost, K items through S stages take about
  // (S + K - 1) * stage_compute.
  workload::PipelineConfig cfg;
  cfg.ranks = 5;
  cfg.items = 20;
  cfg.stage_compute = 1000;
  cfg.item_bytes = 0;
  sim::Program p = workload::make_pipeline(cfg);
  p.finalize();
  sim::EngineConfig net;
  net.net.L = 0;
  net.net.o = 0;
  net.net.g = 0;
  net.net.G = 0;
  const auto r = sim::run_program(p, net);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.makespan, (5 + 20 - 1) * 1000);
}

TEST(Pipeline, AbsorbsEarlyStageBlackout) {
  // A blackout on the first stage while later stages still have buffered
  // items costs less than the blackout itself (pipeline slack).
  workload::PipelineConfig cfg;
  cfg.ranks = 8;
  cfg.items = 40;
  cfg.stage_compute = 1'000'000;
  cfg.item_bytes = 1024;
  sim::Program p = workload::make_pipeline(cfg);
  p.finalize();
  const auto base = sim::run_program(p, fast_net());
  sim::ListBlackouts bl{[&] {
    std::vector<std::vector<sim::Interval>> v(8);
    v[7] = {{base.makespan / 2, base.makespan / 2 + 3'000'000}};
    return v;
  }()};
  sim::EngineConfig cfg2 = fast_net();
  cfg2.blackouts = &bl;
  const auto noisy = sim::run_program(p, cfg2);
  ASSERT_TRUE(noisy.completed);
  EXPECT_LE(noisy.makespan - base.makespan, 3'100'000);
}

TEST(Fft2d, SubcommunicatorVolume) {
  workload::Fft2dConfig cfg;
  cfg.ranks = 16;  // 4x4 grid
  cfg.iterations = 2;
  cfg.bytes_per_pair = 1000;
  sim::Program p = workload::make_fft2d(cfg);
  const auto st = p.finalize();
  // Per iteration: 4 rows x (4*3 pairwise msgs) + 4 cols x (4*3) = 96.
  EXPECT_EQ(st.sends, 2 * 96);
  EXPECT_TRUE(p.check_matching().empty());
  const auto r = sim::run_program(p, fast_net());
  ASSERT_TRUE(r.completed) << r.error;
}

TEST(Fft2d, DegenerateGridsComplete) {
  for (int ranks : {2, 3, 7, 12}) {
    workload::Fft2dConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 2;
    sim::Program p = workload::make_fft2d(cfg);
    p.finalize();
    ASSERT_TRUE(p.check_matching().empty()) << ranks;
    const auto r = sim::run_program(p, fast_net());
    ASSERT_TRUE(r.completed) << ranks << ": " << r.error;
  }
}

TEST(Fft2d, RowBlackoutSpreadsInTwoHops) {
  // A blackout on one rank delays its row's alltoall immediately and the
  // rest of the machine only after the following column phase.
  workload::Fft2dConfig cfg;
  cfg.ranks = 16;
  cfg.iterations = 4;
  cfg.compute_per_iter = 1'000'000;
  sim::Program p = workload::make_fft2d(cfg);
  p.finalize();
  const auto base = sim::run_program(p, fast_net());
  sim::ListBlackouts bl{[&] {
    std::vector<std::vector<sim::Interval>> v(16);
    v[5] = {{0, 2'000'000}};
    return v;
  }()};
  sim::EngineConfig cfg2 = fast_net();
  cfg2.blackouts = &bl;
  const auto noisy = sim::run_program(p, cfg2);
  ASSERT_TRUE(noisy.completed);
  // Full coupling within the iteration: everyone ends up delayed.
  EXPECT_GE(noisy.makespan - base.makespan, 1'500'000);
}

TEST(Registry, NewWorkloadsListed) {
  const auto names = workload::workload_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "bsp_imbalanced"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pipeline"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fft2d"), names.end());
}

TEST(ClosedFormEfficiency, MatchesMonteCarlo) {
  analytic::EfficiencyInputs in;
  in.kappa = 1.0;
  in.blackout_seconds = 30;
  in.interval_seconds = 600;
  in.restart_seconds = 120;
  in.system_mtbf_seconds = 7200;
  const double closed = analytic::coordinated_efficiency(in);

  ckpt::RecoveryParams rp;
  rp.kind = ckpt::ProtocolKind::kCoordinated;
  rp.work_seconds = 100'000;
  rp.slowdown = analytic::perturbation_slowdown(in);
  rp.interval_seconds = in.interval_seconds;
  rp.restart_seconds = in.restart_seconds;
  fault::Exponential dist(in.system_mtbf_seconds);
  const auto mc = ckpt::simulate_makespan(rp, dist, 600, 13);
  EXPECT_NEAR(mc.efficiency, closed, 0.05);
}

TEST(ClosedFormEfficiency, Validates) {
  analytic::EfficiencyInputs in;
  in.interval_seconds = 0;
  EXPECT_THROW(analytic::perturbation_slowdown(in), std::invalid_argument);
  in.interval_seconds = 100;
  in.kappa = -1;
  EXPECT_THROW(analytic::perturbation_slowdown(in), std::invalid_argument);
  in.kappa = 1;
  in.system_mtbf_seconds = 0;
  EXPECT_THROW(analytic::coordinated_efficiency(in), std::invalid_argument);
}

TEST(ClosedFormEfficiency, DegradesWithFailureRate) {
  analytic::EfficiencyInputs in;
  in.kappa = 1.0;
  in.blackout_seconds = 30;
  in.interval_seconds = 600;
  in.restart_seconds = 120;
  in.system_mtbf_seconds = 50'000;
  const double healthy = analytic::coordinated_efficiency(in);
  in.system_mtbf_seconds = 2'000;
  const double failing = analytic::coordinated_efficiency(in);
  EXPECT_GT(healthy, failing);
  EXPECT_LT(healthy, 1.0);
  EXPECT_GT(failing, 0.0);
}

}  // namespace
}  // namespace chksim
