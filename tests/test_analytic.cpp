// Analytic model tests: Young/Daly formulas and LogP coordination costs.
#include <gtest/gtest.h>

#include <cmath>

#include "chksim/analytic/coordination.hpp"
#include "chksim/analytic/daly.hpp"

namespace chksim::analytic {
namespace {

TEST(Young, KnownValue) {
  // delta = 60 s, M = 7500 s: tau = sqrt(2*60*7500) = 948.68...
  EXPECT_NEAR(young_interval(60, 7500), 948.683, 0.01);
  EXPECT_THROW(young_interval(0, 100), std::invalid_argument);
  EXPECT_THROW(young_interval(10, 0), std::invalid_argument);
}

TEST(Daly, ReducesTowardYoungForSmallDelta) {
  // For delta << M, Daly's correction terms vanish.
  const double M = 1e6;
  const double delta = 1.0;
  EXPECT_NEAR(daly_interval(delta, M) / young_interval(delta, M), 1.0, 0.01);
}

TEST(Daly, ClampsToMtbfForHugeDelta) {
  EXPECT_DOUBLE_EQ(daly_interval(300, 100), 100);
}

TEST(Daly, IntervalExceedsYoungMinusDelta) {
  // Daly's higher-order interval is Young's plus positive corrections minus
  // delta.
  const double delta = 60, M = 7500;
  const double y = young_interval(delta, M);
  const double d = daly_interval(delta, M);
  EXPECT_GT(d, y - delta);
  EXPECT_LT(d, y + delta);
}

TEST(DalyWalltime, NoFailureLimit) {
  // As M -> infinity, walltime -> Ts * (1 + delta/tau).
  const double Ts = 10000, tau = 1000, delta = 100;
  const double w = daly_walltime(Ts, tau, delta, 10, 1e12);
  EXPECT_NEAR(w, Ts * (1 + delta / tau), 1.0);
}

TEST(DalyWalltime, MonotonicInFailureRate) {
  const double Ts = 10000, tau = 500, delta = 50, R = 100;
  EXPECT_LT(daly_walltime(Ts, tau, delta, R, 1e6),
            daly_walltime(Ts, tau, delta, R, 1e4));
  EXPECT_LT(daly_walltime(Ts, tau, delta, R, 1e4),
            daly_walltime(Ts, tau, delta, R, 1e3));
}

TEST(DalyWalltime, OptimalIntervalIsNearMinimum) {
  const double Ts = 100000, delta = 60, R = 120, M = 7500;
  const double tau_opt = daly_interval(delta, M);
  const double w_opt = daly_walltime(Ts, tau_opt, delta, R, M);
  for (double factor : {0.25, 0.5, 2.0, 4.0}) {
    EXPECT_LE(w_opt, daly_walltime(Ts, tau_opt * factor, delta, R, M) * 1.001)
        << "factor " << factor;
  }
}

TEST(DalyEfficiency, InUnitInterval) {
  const double e = daly_efficiency(1e5, 948, 60, 120, 7500);
  EXPECT_GT(e, 0.5);
  EXPECT_LT(e, 1.0);
  EXPECT_NEAR(optimal_efficiency(1e5, 60, 120, 7500),
              daly_efficiency(1e5, daly_interval(60, 7500), 60, 120, 7500), 1e-12);
}

TEST(FirstOrderOverhead, Components) {
  EXPECT_DOUBLE_EQ(first_order_overhead(1000, 60, 120, 7500),
                   60.0 / 1000 + 1000.0 / 15000 + 120.0 / 7500);
}

TEST(ExpectedFailures, Linear) {
  EXPECT_DOUBLE_EQ(expected_failures(7500, 7500), 1.0);
  EXPECT_DOUBLE_EQ(expected_failures(0, 100), 0.0);
  EXPECT_THROW(expected_failures(-1, 100), std::invalid_argument);
}

TEST(Coordination, LogPStep) {
  sim::LogGOPSParams net;
  net.L = 1000;
  net.o = 100;
  EXPECT_EQ(logp_step(net), 1200);
}

TEST(Coordination, BarrierCostsAreLogarithmic) {
  sim::LogGOPSParams net;
  net.L = 1000;
  net.o = 100;
  EXPECT_EQ(barrier_dissemination_cost(net, 1), 0);
  EXPECT_EQ(barrier_dissemination_cost(net, 2), 1200);
  EXPECT_EQ(barrier_dissemination_cost(net, 1024), 10 * 1200);
  EXPECT_EQ(barrier_dissemination_cost(net, 1025), 11 * 1200);
  EXPECT_EQ(barrier_tree_cost(net, 1024), 2 * 10 * 1200);
  EXPECT_THROW(barrier_dissemination_cost(net, 0), std::invalid_argument);
}

TEST(Coordination, MillionRankBarrierIsSubMillisecond) {
  // The paper's headline coordination observation: even at 2^20 ranks a
  // LogP dissemination barrier costs ~20 steps, i.e. microseconds.
  sim::LogGOPSParams net;
  net.L = 1500;
  net.o = 1500;
  const TimeNs cost = barrier_dissemination_cost(net, 1 << 20);
  EXPECT_EQ(cost, 20 * (1500 + 3000));
  EXPECT_LT(cost, 1'000'000);  // < 1 ms
}

TEST(Coordination, AllreduceAddsBandwidthTerm) {
  sim::LogGOPSParams net;
  net.L = 1000;
  net.o = 100;
  net.G = 1.0;
  EXPECT_EQ(allreduce_cost(net, 16, 0), 4 * 1200);
  EXPECT_EQ(allreduce_cost(net, 16, 1000), 4 * 2200);
}

TEST(ExpectedMaxNormals, KnownCases) {
  EXPECT_DOUBLE_EQ(expected_max_of_normals(1, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_max_of_normals(100, 0.0), 0.0);
  EXPECT_NEAR(expected_max_of_normals(2, 1.0), 1.0 / std::sqrt(M_PI), 1e-12);
  // E[max of 10 std normals] ~ 1.54; the asymptotic expansion
  // underestimates at small P but must land in the right neighbourhood.
  EXPECT_NEAR(expected_max_of_normals(10, 1.0), 1.54, 0.25);
  // Grows like sqrt(2 ln P): a 1024x increase in P costs < 60% more skew.
  const double g1 = expected_max_of_normals(1 << 10, 1.0);
  const double g2 = expected_max_of_normals(1 << 20, 1.0);
  EXPECT_GT(g2, g1);
  EXPECT_LT(g2 / g1, 1.6);
}

TEST(CoordinationCost, CombinesSyncAndSkew) {
  sim::LogGOPSParams net;
  net.L = 1000;
  net.o = 100;
  const TimeNs no_skew =
      coordination_cost(net, 1024, SyncAlgorithm::kDissemination, 0.0);
  EXPECT_EQ(no_skew, barrier_dissemination_cost(net, 1024));
  const TimeNs with_skew =
      coordination_cost(net, 1024, SyncAlgorithm::kDissemination, 10'000.0);
  EXPECT_GT(with_skew, no_skew + 30'000);  // ~3.7 sigma at P=1024
  const TimeNs tree = coordination_cost(net, 1024, SyncAlgorithm::kTree, 0.0);
  EXPECT_EQ(tree, 2 * no_skew);
}

class DalyPropertySweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

// Property: walltime at Daly's tau is within 2% of a dense numeric scan.
TEST_P(DalyPropertySweep, DalyIntervalNearNumericOptimum) {
  const auto [delta, M] = GetParam();
  const double Ts = 1e6, R = 2 * delta;
  const double tau_d = daly_interval(delta, M);
  const double w_d = daly_walltime(Ts, tau_d, delta, R, M);
  double best = w_d;
  for (double tau = tau_d / 8; tau <= tau_d * 8; tau *= 1.05) {
    best = std::min(best, daly_walltime(Ts, tau, delta, R, M));
  }
  EXPECT_LE(w_d, best * 1.02) << "delta=" << delta << " M=" << M;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DalyPropertySweep,
    ::testing::Values(std::make_tuple(10.0, 86400.0), std::make_tuple(60.0, 7500.0),
                      std::make_tuple(300.0, 3600.0), std::make_tuple(600.0, 1800.0),
                      std::make_tuple(5.0, 600.0)));

}  // namespace
}  // namespace chksim::analytic
