// Storage (PFS contention) and failure-model tests.
#include <gtest/gtest.h>

#include "chksim/fault/failures.hpp"
#include "chksim/storage/pfs.hpp"

namespace chksim {
namespace {

using namespace chksim::literals;

storage::PfsParams default_pfs() {
  storage::PfsParams p;
  p.node_bw_bytes_per_s = 1e9;
  p.pfs_bw_bytes_per_s = 100e9;
  p.bb_bw_bytes_per_s = 10e9;
  return p;
}

TEST(Pfs, ConcurrentWriteNodeBound) {
  storage::Pfs pfs(default_pfs());
  // 10 writers share 100 GB/s -> 10 GB/s each, above the 1 GB/s node link.
  const auto w = pfs.concurrent_write(1_GiB, 10);
  EXPECT_FALSE(w.saturated);
  EXPECT_DOUBLE_EQ(w.per_node_bw, 1e9);
  EXPECT_NEAR(units::to_seconds(w.per_node), 1.0737, 0.001);
}

TEST(Pfs, ConcurrentWritePfsBound) {
  storage::Pfs pfs(default_pfs());
  // 1000 writers share 100 GB/s -> 100 MB/s each.
  const auto w = pfs.concurrent_write(1_GiB, 1000);
  EXPECT_TRUE(w.saturated);
  EXPECT_DOUBLE_EQ(w.per_node_bw, 1e8);
  // Write time grows ~10x vs the node-bound case.
  EXPECT_NEAR(units::to_seconds(w.per_node), 10.737, 0.01);
}

TEST(Pfs, ConcurrentWriteScalesLinearlyOnceSaturated) {
  storage::Pfs pfs(default_pfs());
  const auto w1 = pfs.concurrent_write(1_GiB, 1000);
  const auto w2 = pfs.concurrent_write(1_GiB, 2000);
  EXPECT_NEAR(static_cast<double>(w2.per_node) / static_cast<double>(w1.per_node), 2.0,
              0.01);
}

TEST(Pfs, SpreadWriteStaysNodeBoundAtLowUtilization) {
  storage::Pfs pfs(default_pfs());
  // 1000 nodes, 1 GiB each, every 600 s: offered ~1.8 GB/s << 100 GB/s.
  const auto w = pfs.spread_write(1_GiB, 1000, 600_s);
  EXPECT_FALSE(w.saturated);
  EXPECT_NEAR(units::to_seconds(w.per_node), 1.0737, 0.01);
  // Only a couple of writers at any instant.
  EXPECT_LT(w.effective_writers, 5.0);
}

TEST(Pfs, SpreadBeatsBurstAtScale) {
  storage::Pfs pfs(default_pfs());
  const auto burst = pfs.concurrent_write(1_GiB, 4096);
  const auto spread = pfs.spread_write(1_GiB, 4096, 600_s);
  EXPECT_GT(burst.per_node, 5 * spread.per_node);
}

TEST(Pfs, SpreadWriteOverloadThrows) {
  storage::Pfs pfs(default_pfs());
  // 100000 nodes * 1 GiB / 600 s ~ 180 GB/s > 100 GB/s aggregate.
  EXPECT_THROW(pfs.spread_write(1_GiB, 100000, 600_s), std::invalid_argument);
}

TEST(Pfs, SpreadWriteGroupsInterpolates) {
  storage::Pfs pfs(default_pfs());
  const auto solo = pfs.spread_write_groups(1_GiB, 1, 4096, 600_s);
  const auto clustered = pfs.spread_write_groups(1_GiB, 64, 64, 600_s);
  const auto burst = pfs.concurrent_write(1_GiB, 4096);
  EXPECT_GE(clustered.per_node, solo.per_node);
  EXPECT_LE(clustered.per_node, burst.per_node);
}

TEST(Pfs, BurstBufferIsFast) {
  storage::Pfs pfs(default_pfs());
  const auto w = pfs.burst_buffer_write(1_GiB);
  EXPECT_NEAR(units::to_seconds(w.per_node), 0.107, 0.01);
  storage::PfsParams no_bb = default_pfs();
  no_bb.bb_bw_bytes_per_s = 0;
  EXPECT_THROW(storage::Pfs(no_bb).burst_buffer_write(1_GiB), std::logic_error);
}

TEST(Pfs, DrainTime) {
  storage::Pfs pfs(default_pfs());
  // 1000 GiB over 100 GB/s.
  EXPECT_NEAR(units::to_seconds(pfs.drain_time(1_GiB, 1000)), 10.737, 0.01);
}

TEST(Pfs, Utilization) {
  const double u = storage::pfs_utilization(default_pfs(), 1_GiB, 1000, 60_s);
  EXPECT_NEAR(u, 1.0737e12 / 60 / 100e9, 1e-3);
}

TEST(Pfs, InvalidParamsThrow) {
  storage::PfsParams p = default_pfs();
  p.node_bw_bytes_per_s = 0;
  EXPECT_THROW(storage::Pfs{p}, std::invalid_argument);
  storage::Pfs ok(default_pfs());
  EXPECT_THROW(ok.concurrent_write(-1, 4), std::invalid_argument);
  EXPECT_THROW(ok.concurrent_write(1_KiB, 0), std::invalid_argument);
  EXPECT_THROW(ok.spread_write(1_KiB, 4, 0), std::invalid_argument);
}

TEST(FailureDistributions, ExponentialMean) {
  fault::Exponential d(100.0);
  EXPECT_DOUBLE_EQ(d.mtbf_seconds(), 100.0);
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += d.sample_seconds(rng);
  EXPECT_NEAR(sum / 100000, 100.0, 2.0);
  EXPECT_THROW(fault::Exponential(0), std::invalid_argument);
}

TEST(FailureDistributions, WeibullMeanMatchesMtbf) {
  fault::Weibull d(100.0, 0.7);
  EXPECT_DOUBLE_EQ(d.mtbf_seconds(), 100.0);
  Rng rng(2);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample_seconds(rng);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
  EXPECT_THROW(fault::Weibull(100.0, 0), std::invalid_argument);
}

TEST(GenerateTrace, SortedAndWithinHorizon) {
  fault::Exponential d(3600.0);
  const auto trace = fault::generate_trace(d, 64, 24 * 3600_s, 7);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i)
    ASSERT_LE(trace[i - 1].time, trace[i].time);
  for (const auto& f : trace) {
    ASSERT_GE(f.time, 0);
    ASSERT_LT(f.time, 24 * 3600_s);
    ASSERT_GE(f.node, 0);
    ASSERT_LT(f.node, 64);
  }
}

TEST(GenerateTrace, CountMatchesRate) {
  // 64 nodes with 1-hour MTBF over 100 hours ~ 6400 failures.
  fault::Exponential d(3600.0);
  const auto trace = fault::generate_trace(d, 64, 100 * 3600_s, 11);
  EXPECT_NEAR(static_cast<double>(trace.size()), 6400.0, 320.0);
}

TEST(GenerateTrace, DeterministicInSeed) {
  fault::Weibull d(1000.0, 0.7);
  const auto a = fault::generate_trace(d, 8, 100000_s, 5);
  const auto b = fault::generate_trace(d, 8, 100000_s, 5);
  EXPECT_EQ(a, b);
  const auto c = fault::generate_trace(d, 8, 100000_s, 6);
  EXPECT_NE(a, c);
}

TEST(SystemTrace, RateScalesWithNodes) {
  const auto small = fault::system_exponential_trace(3600.0 * 1000, 10, 1000 * 3600_s, 3);
  const auto large = fault::system_exponential_trace(3600.0 * 1000, 100, 1000 * 3600_s, 3);
  EXPECT_GT(large.size(), 5 * small.size());
}

TEST(TraceSummary, Computes) {
  fault::Exponential d(100.0);
  const auto trace = fault::generate_trace(d, 16, 3600_s, 1);
  const auto s = fault::summarize(trace);
  EXPECT_EQ(s.failures, static_cast<std::int64_t>(trace.size()));
  EXPECT_GT(s.mean_interarrival_seconds, 0);
  EXPECT_LE(s.first, s.last);
  EXPECT_EQ(fault::summarize({}).failures, 0);
}

TEST(GenerateTrace, WeibullInfantMortalityBurstier) {
  // Same MTBF, shape 0.5 vs exponential: Weibull has more short gaps.
  fault::Weibull wb(3600.0, 0.5);
  fault::Exponential ex(3600.0);
  const auto tw = fault::generate_trace(wb, 32, 1000 * 3600_s, 9);
  const auto te = fault::generate_trace(ex, 32, 1000 * 3600_s, 9);
  auto short_gaps = [](const std::vector<fault::Failure>& t) {
    int count = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
      if (t[i].time - t[i - 1].time < 60_s) ++count;
    return static_cast<double>(count) / static_cast<double>(t.size());
  };
  EXPECT_GT(short_gaps(tw), short_gaps(te));
}

}  // namespace
}  // namespace chksim
