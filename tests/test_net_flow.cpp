// Flow-level network model: link routes pinned against brute-force shortest
// paths and Topology::hops(), NodeMap packing, and the max-min fair-share
// solver (conservation, water-filling, channel FIFO, call-pattern
// independence, snapshot/restore).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "chksim/net/flow/flownet.hpp"
#include "chksim/net/flow/router.hpp"
#include "chksim/net/node_map.hpp"
#include "chksim/net/topology.hpp"

namespace chksim::net::flow {
namespace {

// Checks, for every node pair, that the emitted route agrees with the
// closed-form hop count and the independent Topology implementation, is
// bracketed by the endpoints' NIC links, and never repeats a link.
void check_routes(const Router& router, const Topology& topo) {
  const int n = router.nodes();
  std::vector<LinkId> route;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      route.clear();
      router.fabric_route(a, b, &route);
      ASSERT_EQ(static_cast<int>(route.size()), router.fabric_hops(a, b))
          << "a=" << a << " b=" << b;
      if (router.config().routing == Routing::kMinimal) {
        ASSERT_EQ(static_cast<int>(route.size()), topo.hops(a, b))
            << "a=" << a << " b=" << b;
      }
      std::set<LinkId> uniq(route.begin(), route.end());
      ASSERT_EQ(uniq.size(), route.size()) << "loop in route " << a << "->" << b;
      // Rank-level route adds exactly the inject/eject bracket.
      std::vector<LinkId> full;
      router.route(a * router.config().node_map.ranks_per_node,
                   b * router.config().node_map.ranks_per_node, &full);
      ASSERT_EQ(full.size(), route.size() + 2);
      EXPECT_EQ(Router::link_class(full.front()), LinkClass::kInject);
      EXPECT_EQ(Router::link_class(full.back()), LinkClass::kEject);
    }
  }
}

TEST(FlowRouter, FullyConnectedRoutes) {
  RouterConfig cfg;
  cfg.kind = FabricKind::kFullyConnected;
  cfg.nodes = 9;
  Router router(cfg);
  FullyConnected topo(9);
  check_routes(router, topo);
  // Dedicated pairwise links: distinct pairs never share a fabric link.
  std::vector<LinkId> r1, r2;
  router.fabric_route(1, 2, &r1);
  router.fabric_route(2, 1, &r2);
  EXPECT_NE(r1[0], r2[0]);
}

TEST(FlowRouter, TorusRoutesMatchBruteForceBfs) {
  for (const std::array<int, 3> dims :
       {std::array<int, 3>{3, 4, 5}, std::array<int, 3>{1, 1, 7},
        std::array<int, 3>{2, 3, 1}}) {
    const int n = dims[0] * dims[1] * dims[2];
    RouterConfig cfg;
    cfg.kind = FabricKind::kTorus;
    cfg.nodes = n;
    cfg.dims = dims;
    Router router(cfg);
    Torus topo(dims);
    check_routes(router, topo);
    // Independent BFS over the +/-1-per-dimension wraparound graph.
    const auto coords = [&](int v) {
      return std::array<int, 3>{v % dims[0], (v / dims[0]) % dims[1],
                                v / (dims[0] * dims[1])};
    };
    const auto node_at = [&](std::array<int, 3> c) {
      return c[0] + dims[0] * (c[1] + dims[1] * c[2]);
    };
    for (int a = 0; a < n; ++a) {
      std::vector<int> dist(static_cast<std::size_t>(n), -1);
      std::queue<int> q;
      dist[static_cast<std::size_t>(a)] = 0;
      q.push(a);
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int d = 0; d < 3; ++d) {
          for (int step : {1, -1}) {
            auto c = coords(v);
            c[static_cast<std::size_t>(d)] =
                (c[static_cast<std::size_t>(d)] + step + dims[static_cast<std::size_t>(d)]) %
                dims[static_cast<std::size_t>(d)];
            const int u = node_at(c);
            if (dist[static_cast<std::size_t>(u)] < 0) {
              dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
              q.push(u);
            }
          }
        }
      }
      for (int b = 0; b < n; ++b)
        ASSERT_EQ(router.fabric_hops(a, b), dist[static_cast<std::size_t>(b)])
            << "a=" << a << " b=" << b;
    }
  }
}

TEST(FlowRouter, FatTreeRoutesMatchTreeDistance) {
  for (const auto& [nodes, radix] : std::vector<std::pair<int, int>>{
           {20, 5}, {37, 8}, {8, 4}}) {
    RouterConfig cfg;
    cfg.kind = FabricKind::kFatTree;
    cfg.nodes = nodes;
    cfg.radix = radix;
    Router router(cfg);
    FatTree topo(nodes, radix);
    check_routes(router, topo);
    // Independent check: distance between leaves of the down-ary block tree
    // is twice the lowest-common-ancestor level.
    const int down = std::max(2, radix / 2);
    for (int a = 0; a < nodes; ++a) {
      for (int b = 0; b < nodes; ++b) {
        if (a == b) continue;
        int level = 0;
        std::int64_t block = 1;
        while (a / block != b / block) {
          block *= down;
          ++level;
        }
        ASSERT_EQ(router.fabric_hops(a, b), 2 * level);
      }
    }
    // The fattening knob: level-k links carry down^(k-1) capacity units.
    std::vector<LinkId> route;
    router.fabric_route(0, nodes - 1, &route);
    EXPECT_EQ(router.capacity_units(route.front()), 1.0);
    double expect = 1.0;
    for (std::size_t i = 0; i + 1 < route.size() / 2; ++i) expect *= down;
    EXPECT_EQ(router.capacity_units(route[route.size() / 2 - 1]), expect);
  }
}

TEST(FlowRouter, DragonflyRoutes) {
  for (const auto& [nodes, group, rt] : std::vector<std::array<int, 3>>{
           {24, 8, 2}, {22, 8, 2}, {27, 9, 3}}) {
    RouterConfig cfg;
    cfg.kind = FabricKind::kDragonfly;
    cfg.nodes = nodes;
    cfg.group_size = group;
    cfg.router_size = rt;
    Router router(cfg);
    Dragonfly topo(nodes, group, rt);
    check_routes(router, topo);
    for (int a = 0; a < nodes; ++a) {
      for (int b = 0; b < nodes; ++b) {
        const int expect = a == b              ? 0
                           : a / rt == b / rt  ? 1
                           : a / group == b / group ? 2
                                                    : 5;
        ASSERT_EQ(router.fabric_hops(a, b), expect);
      }
    }
    // Router crossbars are fattened by router_size.
    std::vector<LinkId> route;
    router.fabric_route(0, 1, &route);
    EXPECT_EQ(router.capacity_units(route.front()), static_cast<double>(rt));
  }
}

TEST(FlowRouter, DragonflyValiantDetour) {
  RouterConfig cfg;
  cfg.kind = FabricKind::kDragonfly;
  cfg.nodes = 32;
  cfg.group_size = 8;
  cfg.router_size = 2;
  cfg.routing = Routing::kValiant;
  Router router(cfg);
  for (int a = 0; a < cfg.nodes; ++a) {
    for (int b = 0; b < cfg.nodes; ++b) {
      std::vector<LinkId> route;
      router.fabric_route(a, b, &route);
      ASSERT_EQ(static_cast<int>(route.size()), router.fabric_hops(a, b));
      std::set<LinkId> uniq(route.begin(), route.end());
      ASSERT_EQ(uniq.size(), route.size());
      const int ga = a / cfg.group_size;
      const int gb = b / cfg.group_size;
      const int gm = (ga + gb) % 4;
      if (ga != gb && gm != ga && gm != gb) {
        EXPECT_EQ(route.size(), 7u) << a << "->" << b;
      }
    }
  }
}

TEST(FlowRouter, NodeMapPackingAndValidation) {
  NodeMap four{4};
  EXPECT_EQ(four.node_of(0), 0);
  EXPECT_EQ(four.node_of(3), 0);
  EXPECT_EQ(four.node_of(4), 1);
  EXPECT_EQ(four.nodes_for(9), 3);
  EXPECT_NO_THROW(four.validate(16, 4));
  EXPECT_THROW(four.validate(17, 4), std::invalid_argument);
  EXPECT_THROW(four.validate(-1, 4), std::invalid_argument);
  EXPECT_THROW((NodeMap{0}).validate(1, 1), std::invalid_argument);

  RouterConfig cfg;
  cfg.kind = FabricKind::kFullyConnected;
  cfg.nodes = 4;
  cfg.node_map = four;
  Router router(cfg);
  // Co-resident ranks still cross their node's NIC pair, no fabric links.
  std::vector<LinkId> route;
  router.route(0, 2, &route);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(Router::link_class(route[0]), LinkClass::kInject);
  EXPECT_EQ(Router::link_class(route[1]), LinkClass::kEject);
  route.clear();
  router.route(1, 5, &route);  // nodes 0 -> 1
  EXPECT_EQ(route.size(), 3u);
  EXPECT_EQ(router.node_of(5), 1);
}

TEST(FlowRouter, IoRouteAndGateways) {
  RouterConfig cfg;
  cfg.kind = FabricKind::kFullyConnected;
  cfg.nodes = 8;
  cfg.gateways = 2;
  Router router(cfg);
  EXPECT_EQ(router.gateway_node(0), 0);
  EXPECT_EQ(router.gateway_node(3), 0);
  EXPECT_EQ(router.gateway_node(4), 4);
  EXPECT_EQ(router.gateway_node(7), 4);
  std::vector<LinkId> route;
  router.io_route(5, &route);
  ASSERT_EQ(route.size(), 4u);  // inject, fabric, eject(gw), storage
  EXPECT_EQ(Router::link_class(route.back()), LinkClass::kStorage);
  route.clear();
  router.io_route(4, &route);  // already on its gateway
  ASSERT_EQ(route.size(), 3u);
}

TEST(FlowRouter, ConfigValidation) {
  RouterConfig bad;
  bad.kind = FabricKind::kTorus;
  bad.nodes = 10;
  bad.dims = {3, 3, 1};
  EXPECT_THROW(Router{bad}, std::invalid_argument);
  bad.kind = FabricKind::kDragonfly;
  bad.group_size = 7;
  bad.router_size = 2;
  EXPECT_THROW(Router{bad}, std::invalid_argument);
  EXPECT_EQ(routing_by_name("valiant"), Routing::kValiant);
  EXPECT_THROW(routing_by_name("adaptive"), std::invalid_argument);
  EXPECT_EQ(to_string(FabricKind::kDragonfly), "dragonfly");
}

// --- solver ---------------------------------------------------------------

Router crossbar(int nodes) {
  RouterConfig cfg;
  cfg.kind = FabricKind::kFullyConnected;
  cfg.nodes = nodes;
  return Router(cfg);
}

FlowNetConfig nic_bound() {
  FlowNetConfig cfg;
  cfg.node_bw = 1.0;    // NIC is the bottleneck...
  cfg.link_bw = 100.0;  // ...the crossbar never is
  cfg.pfs_bw = 1.0;
  cfg.base_latency = 10;
  return cfg;
}

sim::FlowRequest msg(int src, int dst, Bytes bytes, std::uint64_t key2) {
  sim::FlowRequest r;
  r.kind = sim::FlowKind::kMsg;
  r.src = src;
  r.dst = dst;
  r.bytes = bytes;
  r.key2 = key2;
  return r;
}

TEST(FlowNet, LoneFlowFinishesAtUncontendedTime) {
  Router router = crossbar(4);
  FlowNet net(&router, nic_bound());
  const TimeNs unc = net.submit(0, msg(1, 2, 1000, 7));
  EXPECT_EQ(unc, 10 + 1000);
  EXPECT_EQ(unc, net.uncontended_arrival(0, 1, 2, 1000));
  std::vector<sim::FlowCompletion> out;
  net.advance(100000, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].finish, unc);
  EXPECT_EQ(out[0].uncontended, unc);
  EXPECT_EQ(out[0].req.key2, 7u);
  EXPECT_EQ(net.stats().contention_ns, 0);
  EXPECT_EQ(net.stats().msg_flows, 1);
  EXPECT_EQ(net.next_event(), -1);
}

TEST(FlowNet, SaturatedLinkConservesWorkAndCapacity) {
  // Four equal flows into one ejection link of capacity 1 B/ns: equal shares
  // of 1/4, everyone finishes exactly when the link has moved all the bytes.
  Router router = crossbar(8);
  FlowNet net(&router, nic_bound());
  for (int s = 1; s <= 4; ++s) net.submit(0, msg(s, 0, 1000, 10 + s));
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 4u);
  for (const auto& c : out) {
    EXPECT_EQ(c.finish, 10 + 4000);  // latency + total bytes / capacity
    EXPECT_EQ(c.uncontended, 10 + 1000);
  }
  EXPECT_EQ(net.stats().contention_ns, 4 * 3000);
  EXPECT_EQ(net.stats().bytes_moved, 4000);
}

TEST(FlowNet, UnequalFlowsDrainInSizeOrderConservingWork) {
  Router router = crossbar(8);
  FlowNet net(&router, nic_bound());
  net.submit(0, msg(1, 0, 1000, 1));
  net.submit(0, msg(2, 0, 3000, 2));
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 2u);
  // Equal shares of 1/2 until the small flow drains at 10 + 2000; the large
  // flow then takes the whole link: 2000 bytes left at rate 1.
  EXPECT_EQ(out[0].req.key2, 1u);
  EXPECT_EQ(out[0].finish, 10 + 2000);
  EXPECT_EQ(out[1].req.key2, 2u);
  EXPECT_EQ(out[1].finish, 10 + 4000);  // latency + total work / capacity
}

TEST(FlowNet, MaxMinGivesUnbottleneckedFlowTheResidual) {
  // D, E, F share eject(5) (share 1/3 each); D also shares inject(0) with G.
  // Max-min: eject(5) is the tighter link, D freezes at 1/3 there, and G
  // gets the *residual* 2/3 of inject(0) — not an equal 1/2 split.
  Router router = crossbar(8);
  FlowNet net(&router, nic_bound());
  net.submit(0, msg(0, 5, 3000, 1));  // D
  net.submit(0, msg(2, 5, 3000, 2));  // E
  net.submit(0, msg(3, 5, 3000, 3));  // F
  net.submit(0, msg(0, 1, 1000, 4));  // G
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 4u);
  std::map<std::uint64_t, TimeNs> finish;
  for (const auto& c : out) finish[c.req.key2] = c.finish;
  EXPECT_EQ(finish[4], 10 + 1500);  // 1000 bytes at 2/3 B/ns
  EXPECT_EQ(finish[1], 10 + 9000);  // 3000 bytes at 1/3 B/ns
  EXPECT_EQ(finish[2], 10 + 9000);
  EXPECT_EQ(finish[3], 10 + 9000);
}

TEST(FlowNet, ChannelFifoHoldsSmallMessageBehindLargeOne) {
  Router router = crossbar(2);
  FlowNet net(&router, nic_bound());
  net.submit(0, msg(0, 1, 10000, 1));
  net.submit(1, msg(0, 1, 100, 2));
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 2u);
  // The small message drains long before the large one but must not
  // overtake it on the (0, 1) channel: both deliver when the head does.
  EXPECT_EQ(out[0].req.key2, 1u);
  EXPECT_EQ(out[1].req.key2, 2u);
  EXPECT_GE(out[1].finish, out[0].finish);
  EXPECT_EQ(net.stats().fifo_holds, 1);
  // Different channels are independent: no ordering coupling.
}

TEST(FlowNet, CallPatternIndependence) {
  const auto drive = [](const std::vector<TimeNs>& stops) {
    Router router = crossbar(8);
    FlowNet net(&router, nic_bound());
    net.submit(0, msg(0, 5, 3000, 1));
    net.submit(0, msg(2, 5, 3000, 2));
    net.submit(3, msg(3, 5, 2500, 3));
    net.submit(5, msg(0, 1, 1000, 4));
    net.submit(2, msg(5, 0, 700, 5));
    std::vector<sim::FlowCompletion> out;
    for (const TimeNs t : stops) net.advance(t, &out);
    net.advance(1 << 20, &out);
    return out;
  };
  const auto a = drive({});
  const auto b = drive({1, 9, 10, 11, 500, 501, 502, 2000, 9000});
  const auto c = drive({4000});
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].finish, b[i].finish);
    EXPECT_EQ(a[i].finish, c[i].finish);
    EXPECT_EQ(a[i].uncontended, b[i].uncontended);
    EXPECT_EQ(a[i].req.key2, b[i].req.key2);
    EXPECT_EQ(a[i].req.key2, c[i].req.key2);
  }
}

TEST(FlowNet, SubmissionOrderIndependence) {
  std::vector<sim::FlowRequest> reqs = {
      msg(0, 5, 3000, 1), msg(2, 5, 3000, 2), msg(3, 5, 2500, 3),
      msg(0, 1, 1000, 4), msg(5, 0, 700, 5)};
  const auto drive = [&](bool reversed) {
    Router router = crossbar(8);
    FlowNet net(&router, nic_bound());
    auto order = reqs;
    if (reversed) std::reverse(order.begin(), order.end());
    for (const auto& r : order) net.submit(0, r);
    std::vector<sim::FlowCompletion> out;
    net.advance(1 << 20, &out);
    return out;
  };
  const auto fwd = drive(false);
  const auto rev = drive(true);
  ASSERT_EQ(fwd.size(), rev.size());
  for (std::size_t i = 0; i < fwd.size(); ++i) {
    EXPECT_EQ(fwd[i].finish, rev[i].finish);
    EXPECT_EQ(fwd[i].req.key2, rev[i].req.key2);
  }
}

TEST(FlowNet, LateSubmissionBehindClockThrows) {
  Router router = crossbar(2);
  FlowNet net(&router, nic_bound());
  net.submit(0, msg(0, 1, 1000, 1));
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);  // clock is now at the completion time
  EXPECT_EQ(net.clock(), 10 + 1000);
  EXPECT_THROW(net.submit(0, msg(0, 1, 10, 2)), std::logic_error);
  EXPECT_NO_THROW(net.submit(net.clock(), msg(0, 1, 10, 2)));
}

TEST(FlowNet, CloneRestoreReplaysIdentically) {
  Router router = crossbar(8);
  FlowNet net(&router, nic_bound());
  net.submit(0, msg(0, 5, 3000, 1));
  net.submit(0, msg(2, 5, 3000, 2));
  net.submit(3, msg(3, 5, 2500, 3));
  std::vector<sim::FlowCompletion> out;
  net.advance(2000, &out);  // mid-flight
  const auto snap = net.clone();
  std::vector<sim::FlowCompletion> first, second;
  net.advance(1 << 20, &first);
  net.restore(*snap);
  net.advance(1 << 20, &second);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].finish, second[i].finish);
    EXPECT_EQ(first[i].req.key2, second[i].req.key2);
  }
}

TEST(FlowNet, IoFlowsCompleteSilentlyIntoTheLog) {
  RouterConfig rcfg;
  rcfg.kind = FabricKind::kFullyConnected;
  rcfg.nodes = 8;
  Router router(rcfg);
  FlowNetConfig cfg = nic_bound();
  cfg.pfs_bw = 0.5;  // storage ingress is the bottleneck
  FlowNet net(&router, cfg);
  sim::FlowRequest io;
  io.kind = sim::FlowKind::kIo;
  io.src = 3;
  io.dst = -1;
  io.bytes = 1000;
  io.key2 = 1;
  io.cookie = 42;
  net.submit(0, io);
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  EXPECT_TRUE(out.empty());  // silent
  ASSERT_EQ(net.io_log().size(), 1u);
  EXPECT_EQ(net.io_log()[0].cookie, 42);
  EXPECT_EQ(net.io_log()[0].finish, 10 + 2000);
  EXPECT_EQ(net.io_log()[0].uncontended, 10 + 2000);
  EXPECT_EQ(net.stats().io_flows, 1);
  EXPECT_EQ(net.stats().storage_bytes, 1000);
}

TEST(FlowNet, IoContendsWithMessages) {
  // An I/O drain and a message sharing the source NIC split it 50/50.
  Router router = crossbar(4);
  FlowNet net(&router, nic_bound());
  sim::FlowRequest io;
  io.kind = sim::FlowKind::kIo;
  io.src = 1;
  io.dst = -1;
  io.bytes = 2000;
  io.key2 = 1;
  io.cookie = 7;
  net.submit(0, io);
  net.submit(0, msg(1, 2, 2000, 2));
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].finish, 10 + 4000);
  ASSERT_EQ(net.io_log().size(), 1u);
  EXPECT_EQ(net.io_log()[0].finish, 10 + 4000);
}

TEST(FlowNet, ZeroByteFlowArrivesAtActivation) {
  Router router = crossbar(2);
  FlowNet net(&router, nic_bound());
  const TimeNs unc = net.submit(5, msg(0, 1, 0, 9));
  EXPECT_EQ(unc, 15);
  std::vector<sim::FlowCompletion> out;
  net.advance(1 << 20, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].finish, 15);
}

TEST(FlowNet, ConfigValidation) {
  Router router = crossbar(2);
  FlowNetConfig cfg = nic_bound();
  cfg.base_latency = 0;
  EXPECT_THROW(FlowNet(&router, cfg), std::invalid_argument);
  cfg = nic_bound();
  cfg.node_bw = 0;
  EXPECT_THROW(FlowNet(&router, cfg), std::invalid_argument);
  EXPECT_THROW(FlowNet(nullptr, nic_bound()), std::invalid_argument);
}

}  // namespace
}  // namespace chksim::net::flow
