// Tests for the campaign subsystem: spec parsing/expansion, the
// content-addressed result cache (including corruption recovery), and the
// runner's memoise/journal/resume behaviour — capped by a fork()-based
// SIGKILL-mid-campaign test that asserts the resumed report is
// byte-identical to an uninterrupted run.
#include "chksim/campaign/cache.hpp"
#include "chksim/campaign/runner.hpp"
#include "chksim/campaign/spec.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "chksim/obs/metrics.hpp"
#include "chksim/support/json.hpp"

namespace chksim::campaign {
namespace {

namespace fs = std::filesystem;

// A fresh per-test scratch directory under gtest's temp dir.
fs::path scratch() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  fs::path dir = fs::path(::testing::TempDir()) / "chksim_campaign" /
                 (std::string(info->test_suite_name()) + "." + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Small two-cell campaign used by the runner tests (fast to execute).
constexpr const char* kTinyDoc = R"({
  "name": "tiny",
  "grid": {
    "workload": "halo3d",
    "ranks": [64, 128],
    "protocol": "coordinated",
    "periods": 2
  }
})";

TEST(CellSpec, CanonicalFormIsSortedAndComplete) {
  const CellSpec cell;
  const std::string c = cell.canonical();
  // Every field present, keys sorted, defaults materialised.
  EXPECT_EQ(c,
            "{\"arbiter\": \"fcfs\", \"bb_bw_gbs\": 0, \"bytes\": 8192, "
            "\"cluster_size\": 16, \"compute_us\": 1000, \"duty\": 0.1, "
            "\"interval_ms\": 10, \"link_bw_gbs\": 0, "
            "\"machine\": \"infiniband\", "
            "\"mode\": \"study\", \"mtbf_hours\": 0, "
            "\"network\": \"analytic\", \"njobs\": 2, "
            "\"node_bw_gbs\": 0, \"periods\": 4, \"pfs_bw_gbs\": 0, "
            "\"protocol\": \"coordinated\", \"ranks\": 64, "
            "\"routing\": \"minimal\", \"seed\": 1, "
            "\"stagger\": 0, \"tier\": \"pfs\", \"trials\": 50, "
            "\"work_hours\": 1, \"workload\": \"halo3d\"}");
  // Round-trips exactly.
  EXPECT_EQ(CellSpec::from_json(json::parse(c)).canonical(), c);
}

TEST(CellSpec, EquivalentSpellingsCanonicaliseIdentically) {
  // 10 vs 10.0 vs 1e1 must be the same cell (same cache key).
  const auto parse_cell = [](const std::string& interval) {
    return CellSpec::from_json(
        json::parse("{\"interval_ms\": " + interval + "}"));
  };
  EXPECT_EQ(parse_cell("10").canonical(), parse_cell("10.0").canonical());
  EXPECT_EQ(parse_cell("10").canonical(), parse_cell("1e1").canonical());
}

TEST(CellSpec, RejectsUnknownAndInvalid) {
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"rank\": 64}")),
               std::invalid_argument);  // typo'd field
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"workload\": \"nope\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"machine\": \"cray\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"protocol\": \"best\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"ranks\": 0}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"duty\": 1.5}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"mode\": \"guess\"}")),
               std::invalid_argument);
}

TEST(CellSpec, StorageFieldsAreSweepableAndValidated) {
  // The storage axes round-trip and land in the canonical form (so they are
  // part of the cache key).
  const CellSpec cell = CellSpec::from_json(json::parse(
      R"({"tier": "pfs", "node_bw_gbs": 1.5, "pfs_bw_gbs": 24})"));
  EXPECT_EQ(cell.tier, "pfs");
  EXPECT_DOUBLE_EQ(cell.pfs_bw_gbs, 24);
  EXPECT_NE(cell.canonical().find("\"pfs_bw_gbs\": 24"), std::string::npos);
  EXPECT_NE(cell_key(cell, "v1"), cell_key(CellSpec{}, "v1"));

  EXPECT_THROW(CellSpec::from_json(json::parse("{\"tier\": \"tape\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"pfs_bw_gbs\": -1}")),
               std::invalid_argument);
  // Dead sweep axis: burst-buffer bandwidth on a tier that never uses it.
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"bb_bw_gbs\": 5}")),
               std::invalid_argument);
  // With the burst-buffer tier the same axis is live.
  const CellSpec bb = CellSpec::from_json(
      json::parse(R"({"tier": "burst-buffer", "bb_bw_gbs": 5})"));
  EXPECT_DOUBLE_EQ(bb.bb_bw_gbs, 5);
}

TEST(CellSpec, NetworkFieldsAreSweepableAndValidated) {
  const CellSpec cell = CellSpec::from_json(json::parse(
      R"({"network": "flow", "link_bw_gbs": 2.5, "routing": "valiant"})"));
  EXPECT_EQ(cell.network, "flow");
  EXPECT_DOUBLE_EQ(cell.link_bw_gbs, 2.5);
  EXPECT_EQ(cell.routing, "valiant");
  EXPECT_NE(cell.canonical().find("\"network\": \"flow\""), std::string::npos);
  EXPECT_NE(cell_key(cell, "v1"), cell_key(CellSpec{}, "v1"));

  EXPECT_THROW(CellSpec::from_json(json::parse("{\"network\": \"quantum\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"routing\": \"adaptive\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"link_bw_gbs\": -1}")),
               std::invalid_argument);
  // Dead sweep axes: flow-mode knobs on an analytic cell.
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"link_bw_gbs\": 2}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"routing\": \"valiant\"}")),
               std::invalid_argument);
  // Under flow mode the same axes are live.
  const CellSpec flow = CellSpec::from_json(
      json::parse(R"({"network": "flow", "link_bw_gbs": 2})"));
  EXPECT_DOUBLE_EQ(flow.link_bw_gbs, 2);
}

TEST(CellSpec, PlatformFieldsAreValidated) {
  const CellSpec cell = CellSpec::from_json(json::parse(
      R"({"mode": "platform", "njobs": 4, "arbiter": "fair", "stagger": 0.5})"));
  EXPECT_EQ(cell.mode, "platform");
  EXPECT_EQ(cell.njobs, 4);
  EXPECT_EQ(cell.arbiter, "fair");
  EXPECT_DOUBLE_EQ(cell.stagger, 0.5);

  EXPECT_THROW(CellSpec::from_json(json::parse("{\"arbiter\": \"lifo\"}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"njobs\": 0}")),
               std::invalid_argument);
  EXPECT_THROW(CellSpec::from_json(json::parse("{\"stagger\": 1.5}")),
               std::invalid_argument);
  // One job cannot contend with itself.
  EXPECT_THROW(CellSpec::from_json(
                   json::parse(R"({"mode": "platform", "njobs": 1})")),
               std::invalid_argument);
  // Outside platform mode the platform knobs are inert but still range-checked.
  EXPECT_EQ(CellSpec::from_json(json::parse("{\"njobs\": 1}")).njobs, 1);
}

TEST(CampaignSpec, ExpansionIsDeterministicOdometer) {
  const CampaignSpec spec = CampaignSpec::parse_text(R"({
    "name": "grid",
    "grid": {
      "protocol": ["coordinated", "uncoordinated"],
      "ranks": [64, 128]
    }
  })");
  // ranks is declared after protocol, so it is the fastest axis.
  ASSERT_EQ(spec.cells.size(), 4u);
  EXPECT_EQ(spec.cells[0].protocol, "coordinated");
  EXPECT_EQ(spec.cells[0].ranks, 64);
  EXPECT_EQ(spec.cells[1].protocol, "coordinated");
  EXPECT_EQ(spec.cells[1].ranks, 128);
  EXPECT_EQ(spec.cells[2].protocol, "uncoordinated");
  EXPECT_EQ(spec.cells[2].ranks, 64);
  EXPECT_EQ(spec.cells[3].protocol, "uncoordinated");
  EXPECT_EQ(spec.cells[3].ranks, 128);
}

TEST(CampaignSpec, GridsConcatenateAndSmokeOverrides) {
  const std::string doc = R"({
    "name": "multi",
    "grids": [
      {"workload": "halo3d", "ranks": [64, 128]},
      {"mode": "failures", "workload": "ep", "trials": 5}
    ],
    "smoke": {"ranks": 64}
  })";
  const CampaignSpec full = CampaignSpec::parse_text(doc);
  ASSERT_EQ(full.cells.size(), 3u);
  EXPECT_EQ(full.cells[2].mode, "failures");
  EXPECT_EQ(full.cells[2].trials, 5);
  // --smoke replaces the ranks axis in every grid.
  const CampaignSpec smoke = CampaignSpec::parse_text(doc, /*smoke=*/true);
  ASSERT_EQ(smoke.cells.size(), 2u);
  EXPECT_EQ(smoke.cells[0].ranks, 64);
  EXPECT_EQ(smoke.cells[1].ranks, 64);
}

TEST(CampaignSpec, RejectsMalformedDocuments) {
  EXPECT_THROW(CampaignSpec::parse_text("{\"name\": \"x\"}"),
               std::invalid_argument);  // no grid
  EXPECT_THROW(
      CampaignSpec::parse_text(
          "{\"grid\": {}, \"grids\": [{}], \"name\": \"x\"}"),
      std::invalid_argument);  // both grid and grids
  EXPECT_THROW(CampaignSpec::parse_text("{\"grid\": {\"ranks\": []}}"),
               std::invalid_argument);  // empty axis
  EXPECT_THROW(CampaignSpec::parse_text("{\"grid\": {}, \"extra\": 1}"),
               std::invalid_argument);  // unknown top-level key
}

TEST(CellKey, BindsSpecAndCodeVersion) {
  CellSpec a, b;
  b.ranks = 128;
  EXPECT_EQ(cell_key(a, "v1"), cell_key(a, "v1"));
  EXPECT_NE(cell_key(a, "v1"), cell_key(b, "v1"));
  EXPECT_NE(cell_key(a, "v1"), cell_key(a, "v2"));  // rebuild invalidates
  EXPECT_EQ(cell_key(a, "v1").size(), 32u);
}

TEST(ResultCache, StoreLookupRoundTrip) {
  const fs::path dir = scratch();
  obs::MetricsRegistry metrics;
  ResultCache cache(dir.string(), "v1", &metrics);
  const std::string key = cache.key(CellSpec{});
  EXPECT_FALSE(cache.lookup(key).has_value());
  ASSERT_TRUE(cache.store(key, "{\"x\": 1}\n"));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"x\": 1}\n");
  EXPECT_EQ(metrics.counter("campaign.cache.misses"), 1);
  EXPECT_EQ(metrics.counter("campaign.cache.hits"), 1);
  EXPECT_EQ(metrics.counter("campaign.cache.stores"), 1);
}

TEST(ResultCache, CorruptEntriesAreEvictedAndMiss) {
  const fs::path dir = scratch();
  obs::MetricsRegistry metrics;
  ResultCache cache(dir.string(), "v1", &metrics);
  const std::string key = cache.key(CellSpec{});
  const std::string path = cache.path_for(key);

  const auto corrupt_with = [&](const std::string& bytes) {
    ASSERT_TRUE(cache.store(key, "payload-bytes"));
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry not evicted";
  };
  corrupt_with("");                                          // empty file
  corrupt_with("not-the-magic x 3 0\nabc");                  // bad magic
  corrupt_with("chksim-cache-v1 " + key + " 99 0\nshort");   // truncated
  corrupt_with("chksim-cache-v1 " + key +
               " 7 0000000000000000\npayload");              // bad checksum
  EXPECT_EQ(metrics.counter("campaign.cache.corrupt"), 4);

  // Trailing bytes beyond the declared size are corruption too.
  ASSERT_TRUE(cache.store(key, "p"));
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(RunCell, PayloadIsProvenanceStampedJson) {
  CellSpec cell;
  cell.ranks = 64;
  cell.periods = 2;
  const std::string payload = run_cell(cell);
  const json::Value v = json::parse(payload);
  const json::Value* prov = v.find("provenance");
  ASSERT_NE(prov, nullptr);
  EXPECT_EQ(prov->find("seed")->as_string(), "1");
  ASSERT_NE(v.find("gauges"), nullptr);
  EXPECT_NE(v.find("gauges")->find("study.slowdown"), nullptr);
}

TEST(RunCell, PlatformModeEmitsPerJobAndMachineMetrics) {
  CellSpec cell = CellSpec::from_json(json::parse(R"({
    "mode": "platform", "ranks": 8, "njobs": 2, "periods": 2,
    "arbiter": "fcfs", "stagger": 0.5
  })"));
  const std::string payload = run_cell(cell);
  const json::Value v = json::parse(payload);
  const json::Value* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("platform.machine.efficiency"), nullptr);
  EXPECT_NE(gauges->find("platform.machine.waste_contention_node_s"), nullptr);
  EXPECT_NE(gauges->find("platform.job0.slowdown"), nullptr);
  EXPECT_NE(gauges->find("platform.job1.storage_contention_ns"), nullptr);
  ASSERT_NE(gauges->find("platform.machine.jobs"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("platform.machine.jobs")->as_double(), 2.0);
}

TEST(RunCell, FlowModeEmitsFabricMetrics) {
  CellSpec cell = CellSpec::from_json(json::parse(R"({
    "network": "flow", "ranks": 27, "periods": 2
  })"));
  const std::string payload = run_cell(cell);
  const json::Value v = json::parse(payload);
  const json::Value* gauges = v.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("net.flow.msg_flows"), nullptr);
  EXPECT_NE(gauges->find("net.flow.util.storage"), nullptr);
  // Analytic cells must not grow the new namespace (payload stability).
  const json::Value a = json::parse(run_cell(CellSpec{}));
  EXPECT_EQ(a.find("gauges")->find("net.flow.msg_flows"), nullptr);
}

TEST(Runner, ColdThenWarmIsByteIdenticalAndAllHits) {
  const fs::path dir = scratch();
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);

  RunnerConfig config;
  config.jobs = 1;
  config.cache_dir = (dir / "cache").string();
  config.code_version = "test-v1";

  obs::MetricsRegistry cold_metrics;
  config.metrics = &cold_metrics;
  const auto t0 = std::chrono::steady_clock::now();
  const CampaignResult cold = run_campaign(spec, config);
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(cold.ok, 2);
  EXPECT_EQ(cold.from_cache, 0);

  obs::MetricsRegistry warm_metrics;
  config.metrics = &warm_metrics;
  config.jobs = 4;  // jobs must not matter
  const CampaignResult warm = run_campaign(spec, config);
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_EQ(warm.ok, 2);
  EXPECT_EQ(warm.from_cache, 2);
  EXPECT_EQ(warm_metrics.counter("campaign.cells_executed"), 0);
  EXPECT_EQ(warm.report_json(), cold.report_json());

  // The memoised rerun must beat the cold run by a wide margin; >10x is the
  // acceptance bar and the measured gap is ~100x (simulation vs file reads).
  const auto cold_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  const auto warm_us =
      std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1).count();
  EXPECT_GT(cold_us, 10 * warm_us)
      << "cold " << cold_us << "us vs warm " << warm_us << "us";
}

TEST(Runner, ReportIsValidJsonInCellOrder) {
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);
  RunnerConfig config;
  config.jobs = 2;
  config.code_version = "test-v1";
  const CampaignResult result = run_campaign(spec, config);
  const json::Value report = json::parse(result.report_json());
  EXPECT_EQ(report.find("campaign")->as_string(), "tiny");
  EXPECT_EQ(report.find("code_version")->as_string(), "test-v1");
  const auto& cells = report.find("cells")->as_array();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].find("spec")->find("ranks")->as_int(), 64);
  EXPECT_EQ(cells[1].find("spec")->find("ranks")->as_int(), 128);
  EXPECT_EQ(cells[0].find("status")->as_string(), "ok");
  ASSERT_NE(cells[0].find("metrics"), nullptr);
}

TEST(Runner, ResumeSkipsJournaledCellsAndToleratesTornTail) {
  const fs::path dir = scratch();
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);

  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = (dir / "journal.jsonl").string();
  config.code_version = "test-v1";
  const CampaignResult first = run_campaign(spec, config);
  EXPECT_EQ(first.ok, 2);

  // Simulate a crash mid-append: a torn half-line at the journal tail.
  std::ofstream(config.journal_path, std::ios::app | std::ios::binary)
      << "{\"key\": \"deadbeef";

  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  config.resume = true;
  const CampaignResult resumed = run_campaign(spec, config);
  EXPECT_EQ(resumed.ok, 2);
  EXPECT_EQ(resumed.from_journal, 2);
  EXPECT_EQ(metrics.counter("campaign.cells_executed"), 0);
  EXPECT_EQ(resumed.report_json(), first.report_json());
}

TEST(Runner, ResumeIgnoresJournalFromDifferentCodeVersion) {
  const fs::path dir = scratch();
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);

  RunnerConfig config;
  config.jobs = 1;
  config.journal_path = (dir / "journal.jsonl").string();
  config.code_version = "old-build";
  run_campaign(spec, config);

  // Same journal, new code version: every key mismatches, all cells re-run.
  config.code_version = "new-build";
  config.resume = true;
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const CampaignResult result = run_campaign(spec, config);
  EXPECT_EQ(result.from_journal, 0);
  EXPECT_EQ(metrics.counter("campaign.cells_executed"), 2);
  EXPECT_EQ(result.ok, 2);
}

TEST(Runner, FailedCellsAreRecordedNotFatal) {
  CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);
  // Sabotage one cell after expansion (parse-time validation can't see it).
  spec.cells[1].workload = "does-not-exist";
  RunnerConfig config;
  config.jobs = 1;
  config.max_attempts = 3;
  config.code_version = "test-v1";
  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  const CampaignResult result = run_campaign(spec, config);
  EXPECT_EQ(result.ok, 1);
  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.cells[1].status, "failed");
  EXPECT_EQ(result.cells[1].attempts, 3);
  EXPECT_FALSE(result.cells[1].error.empty());
  const json::Value report = json::parse(result.report_json());
  EXPECT_EQ(report.find("cells")->as_array()[1].find("status")->as_string(),
            "failed");
}

TEST(Runner, ResumeWithoutJournalPathThrows) {
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);
  RunnerConfig config;
  config.resume = true;
  EXPECT_THROW(run_campaign(spec, config), std::invalid_argument);
}

// The flagship crash test: fork a child that runs the campaign with
// kill_after_cells=1, i.e. it SIGKILLs itself right after the first
// journal append is fsync'd. The parent then resumes from the journal and
// must produce a report byte-identical to an uninterrupted run.
TEST(Runner, SigkillMidCampaignThenResumeIsByteIdentical) {
  const fs::path dir = scratch();
  const CampaignSpec spec = CampaignSpec::parse_text(kTinyDoc);

  RunnerConfig config;
  config.jobs = 1;  // serial in-process execution: safe to run after fork()
  config.journal_path = (dir / "journal.jsonl").string();
  config.code_version = "test-v1";

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunnerConfig child = config;
    child.kill_after_cells = 1;
    run_campaign(spec, child);
    _exit(0);  // unreachable if the kill hook fired
  }
  int wait_status = 0;
  ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status)) << "child was not killed";
  EXPECT_EQ(WTERMSIG(wait_status), SIGKILL);

  obs::MetricsRegistry metrics;
  config.metrics = &metrics;
  config.resume = true;
  const CampaignResult resumed = run_campaign(spec, config);
  EXPECT_EQ(resumed.from_journal, 1);
  EXPECT_EQ(metrics.counter("campaign.cells_executed"), 1);

  RunnerConfig uninterrupted;
  uninterrupted.jobs = 1;
  uninterrupted.code_version = "test-v1";
  const CampaignResult baseline = run_campaign(spec, uninterrupted);
  EXPECT_EQ(resumed.report_json(), baseline.report_json());
}

}  // namespace
}  // namespace chksim::campaign
