// Tests for the workload characterisation module.
#include "chksim/workload/characterize.hpp"

#include <gtest/gtest.h>

#include "chksim/net/machines.hpp"
#include "chksim/support/rng.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim::workload {
namespace {

sim::EngineConfig ib_net() {
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  return cfg;
}

TEST(Characterize, RequiresFinalized) {
  sim::Program p(2);
  p.calc(0, 1);
  EXPECT_THROW(characterize(p, ib_net()), std::logic_error);
}

TEST(Characterize, EpIsComputeDominated) {
  StdParams params;
  params.ranks = 16;
  params.iterations = 10;
  params.compute = 1'000'000;
  const Characterization c = characterize_workload("ep", params, ib_net());
  EXPECT_EQ(c.ranks, 16);
  EXPECT_LT(c.comm_fraction, 0.05);
  EXPECT_LT(c.msgs_per_rank_per_second, 1000);
  EXPECT_GT(c.makespan, 0);
}

TEST(Characterize, FftIsCommunicationHeavy) {
  StdParams params;
  params.ranks = 16;
  params.iterations = 10;
  params.compute = 1'000'000;
  params.bytes = 16384;
  const Characterization ep = characterize_workload("ep", params, ib_net());
  const Characterization fft = characterize_workload("fft", params, ib_net());
  EXPECT_GT(fft.comm_fraction, 3 * ep.comm_fraction);
  EXPECT_GT(fft.msgs_per_rank_per_second, 10 * ep.msgs_per_rank_per_second);
  EXPECT_GT(fft.bytes_per_rank_per_second, 0);
}

TEST(Characterize, DepthReflectsStructure) {
  StdParams params;
  params.ranks = 16;
  params.iterations = 10;
  const Characterization halo = characterize_workload("halo2d", params, ib_net());
  const Characterization sweep = characterize_workload("sweep2d", params, ib_net());
  // The wavefront's serial chains are much deeper than halo's iteration count.
  EXPECT_GT(sweep.dependency_depth, 2 * halo.dependency_depth);
}

TEST(Characterize, ImbalanceShowsUpAsSkew) {
  StdParams params;
  params.ranks = 32;
  params.iterations = 10;
  params.compute = 1'000'000;
  // ep has no synchronisation: per-rank finish times equal (zero-ish skew)
  // only when work is uniform; bsp_imbalanced ends at an allreduce, so its
  // finish skew is small too — compare against ep with imbalanced compute.
  sim::Program p(32);
  // Build an UNsynchronised imbalanced program: independent random calcs.
  Rng rng(3);
  for (sim::RankId r = 0; r < 32; ++r) {
    for (int i = 0; i < 10; ++i) {
      p.calc(r, static_cast<TimeNs>(rng.normal_truncated(1e6, 5e5, 1e5, 4e6)));
    }
  }
  p.finalize();
  const Characterization unsync = characterize(p, ib_net());
  const Characterization uniform = characterize_workload("ep", params, ib_net());
  EXPECT_GT(unsync.finish_skew_ns, 10 * (uniform.finish_skew_ns + 1));
}

TEST(Characterize, RecvWaitFractionBounded) {
  StdParams params;
  params.ranks = 16;
  params.iterations = 10;
  for (const char* wl : {"halo3d", "hpccg", "ring"}) {
    const Characterization c = characterize_workload(wl, params, ib_net());
    EXPECT_GE(c.recv_wait_fraction, 0.0) << wl;
    EXPECT_LE(c.recv_wait_fraction, 1.0) << wl;
  }
}

TEST(Characterize, MatchesProgramStats) {
  StdParams params;
  params.ranks = 8;
  params.iterations = 5;
  sim::Program p = make_workload("halo3d", params);
  const sim::ProgramStats st = p.finalize();
  const Characterization c = characterize(p, ib_net());
  EXPECT_EQ(c.ops, st.ops);
  EXPECT_EQ(c.messages, st.sends);
  EXPECT_EQ(c.bytes, st.bytes_sent);
  EXPECT_EQ(c.dependency_depth, st.max_depth);
}

}  // namespace
}  // namespace chksim::workload
