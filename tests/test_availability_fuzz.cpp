// Randomized cross-validation of the lazy blackout schedules against a
// brute-force materialised reference (ListBlackouts), plus Availability
// calculator properties on random schedules.
#include <gtest/gtest.h>

#include "chksim/sim/availability.hpp"
#include "chksim/support/rng.hpp"

namespace chksim::sim {
namespace {

/// Materialise a lazy schedule into explicit intervals over [0, horizon).
std::vector<Interval> materialize(const BlackoutSchedule& s, RankId rank,
                                  TimeNs horizon) {
  std::vector<Interval> out;
  TimeNs t = 0;
  while (true) {
    const auto iv = s.next_blackout(rank, t);
    if (!iv || iv->begin >= horizon) break;
    out.push_back(*iv);
    t = iv->end;
  }
  return out;
}

class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, PeriodicMatchesMaterializedReference) {
  Rng rng(GetParam());
  const TimeNs period = 50 + static_cast<TimeNs>(rng.uniform_u64(1000));
  const TimeNs duration = 1 + static_cast<TimeNs>(
                                  rng.uniform_u64(static_cast<std::uint64_t>(period)));
  const TimeNs phase = static_cast<TimeNs>(rng.uniform_u64(2000));
  const TimeNs horizon = 20'000;

  PeriodicBlackouts lazy(period, duration, phase);
  ListBlackouts reference({materialize(lazy, 0, horizon)});

  for (int i = 0; i < 500; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng.uniform_u64(horizon - 2 * period));
    const auto a = lazy.next_blackout(0, t);
    const auto b = reference.next_blackout(0, t);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value()) << "t=" << t;
    ASSERT_EQ(*a, *b) << "t=" << t << " period=" << period << " dur=" << duration
                      << " phase=" << phase;
  }
}

TEST_P(ScheduleFuzz, PatternedMatchesMaterializedReference) {
  Rng rng(GetParam() ^ 0xBEEF);
  const TimeNs period = 100 + static_cast<TimeNs>(rng.uniform_u64(1000));
  const int cycle = 1 + static_cast<int>(rng.uniform_u64(5));
  std::vector<TimeNs> durations;
  for (int i = 0; i < cycle; ++i)
    durations.push_back(
        static_cast<TimeNs>(rng.uniform_u64(static_cast<std::uint64_t>(period))));
  const TimeNs phase = static_cast<TimeNs>(rng.uniform_u64(500));
  const TimeNs horizon = 30'000;

  PatternedBlackouts lazy(period, durations, phase);
  ListBlackouts reference({materialize(lazy, 0, horizon)});

  bool any = false;
  for (TimeNs d : durations) any = any || d > 0;

  for (int i = 0; i < 500; ++i) {
    const TimeNs t = static_cast<TimeNs>(
        rng.uniform_u64(static_cast<std::uint64_t>(horizon - (cycle + 2) * period)));
    const auto a = lazy.next_blackout(0, t);
    const auto b = reference.next_blackout(0, t);
    if (!any) {
      ASSERT_FALSE(a.has_value());
      continue;
    }
    ASSERT_TRUE(a.has_value()) << "t=" << t;
    ASSERT_TRUE(b.has_value()) << "t=" << t;
    ASSERT_EQ(*a, *b) << "t=" << t << " period=" << period;
  }
}

TEST_P(ScheduleFuzz, AvailabilityPropertiesOnRandomLists) {
  Rng rng(GetParam() ^ 0xF00D);
  // Random messy interval list (overlaps and zero lengths included).
  std::vector<Interval> raw;
  for (int i = 0; i < 40; ++i) {
    const TimeNs b = static_cast<TimeNs>(rng.uniform_u64(50'000));
    raw.push_back({b, b + static_cast<TimeNs>(rng.uniform_u64(2'000))});
  }
  ListBlackouts bl({raw});
  Availability av(&bl, Preemption::kPreemptive);
  Availability av_np(&bl, Preemption::kNonPreemptive);

  for (int i = 0; i < 300; ++i) {
    const TimeNs t = static_cast<TimeNs>(rng.uniform_u64(60'000));
    const TimeNs work = static_cast<TimeNs>(rng.uniform_u64(5'000));

    const TimeNs start = av.next_available(0, t);
    // next_available lands outside every blackout and not before t.
    ASSERT_GE(start, t);
    const auto covering = bl.next_blackout(0, start);
    ASSERT_TRUE(!covering || !covering->contains(start));

    const TimeNs fin = av.finish(0, t, work);
    ASSERT_GE(fin, start + work);  // elapsed >= pure work

    const TimeNs fin_np = av_np.finish(0, t, work);
    // Non-preemptive completes a single contiguous block; for one task it
    // can never beat preemptive.
    ASSERT_GE(fin_np, fin);
    // And its whole span [fin_np - work, fin_np) is blackout-free.
    const auto iv = bl.next_blackout(0, fin_np - work);
    ASSERT_TRUE(!iv || iv->begin >= fin_np || work == 0)
        << "non-preemptive block straddles a blackout";

    // Monotonicity: more work never finishes earlier.
    ASSERT_LE(fin, av.finish(0, t, work + 1));
    // Time-shift monotonicity: starting later never finishes earlier.
    ASSERT_LE(fin, av.finish(0, t + 1, work));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace chksim::sim
