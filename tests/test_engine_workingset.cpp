// Working-set regression tests for the scale-regime memory diet: FlatMap
// backward-shift erase correctness under churn, match-slot arena reuse across
// checkpoint iterations and snapshot/restore cycles, and the upfront
// --rss-budget-mib fail-fast diagnostic.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <unordered_map>

#include "chksim/sim/engine.hpp"
#include "chksim/sim/par_engine.hpp"
#include "chksim/sim/program.hpp"
#include "chksim/support/flat_map.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

// --- FlatMap::erase vs std::unordered_map under randomized churn. ---------
//
// Keys are drawn from a small range so probe clusters form and the
// backward-shift deletion repeatedly exercises the cyclic home-position test
// (including wraparound across slot 0).

TEST(FlatMapErase, RandomChurnMatchesUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> fm;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(0x5eed);
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 255);
  std::uniform_int_distribution<int> op_dist(0, 9);
  for (int step = 0; step < 20000; ++step) {
    // Mix in high bits occasionally: the engine's real keys are
    // (src << 32 | tag), so collisions must come from the hash, not the key.
    std::uint64_t k = key_dist(rng);
    if (op_dist(rng) < 3) k |= (k << 32);
    const int op = op_dist(rng);
    if (op < 5) {
      const std::uint64_t v = rng();
      fm[k] = v;
      ref[k] = v;
    } else if (op < 8) {
      EXPECT_EQ(fm.erase(k), ref.erase(k) > 0) << "step " << step;
    } else {
      const std::uint64_t* fv = fm.find(k);
      const auto rv = ref.find(k);
      ASSERT_EQ(fv != nullptr, rv != ref.end()) << "step " << step;
      if (fv != nullptr) EXPECT_EQ(*fv, rv->second) << "step " << step;
    }
    ASSERT_EQ(fm.size(), ref.size()) << "step " << step;
  }
  // Full-content sweep at the end: every surviving pair agrees.
  std::size_t seen = 0;
  fm.for_each([&](std::uint64_t k, std::uint64_t v) {
    ++seen;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "key " << k;
    EXPECT_EQ(v, it->second) << "key " << k;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMapErase, EraseAbsentAndDrainToEmpty) {
  FlatMap<std::uint64_t, int> fm;
  EXPECT_FALSE(fm.erase(7));  // erase on an empty table
  for (std::uint64_t k = 0; k < 100; ++k) fm[k] = static_cast<int>(k);
  EXPECT_FALSE(fm.erase(100));
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(fm.erase(k)) << k;
  EXPECT_TRUE(fm.empty());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(fm.find(k), nullptr);
}

// --- Match-slot arena reuse. ----------------------------------------------
//
// Iterated workloads rebase message tags per iteration, so the set of
// distinct (src, tag) keys grows with iteration count — but drained bindings
// are released back to the pool, so the live high-water (match_arena_slots)
// and the pool size (ws_match_slot_peak) must track the per-iteration
// communication degree, not the run-total key count.

TEST(MatchArena, SlotsReusedAcrossIterations) {
  workload::StdParams params;
  params.ranks = 32;
  params.iterations = 20;
  params.compute = 100'000;
  params.bytes = 4096;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig cfg;
  const sim::RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  // halo3d has <= 6 neighbors; a generous bound of 16 live bindings per rank
  // still sits far below the ~6 * iterations distinct keys per rank a
  // non-releasing arena would accumulate.
  EXPECT_LE(r.match_arena_slots, static_cast<std::int64_t>(params.ranks) * 16);
  EXPECT_LE(r.ws_match_slot_peak, static_cast<std::int64_t>(params.ranks) * 16);
  EXPECT_GT(r.ws_bytes, 0);
}

TEST(MatchArena, PoolStableAcrossSnapshotRestoreCycles) {
  workload::StdParams params;
  params.ranks = 16;
  params.iterations = 8;
  params.compute = 100'000;
  params.bytes = 4096;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig cfg;

  sim::SimCore base(p, cfg);
  base.run_until(std::numeric_limits<TimeNs>::max());
  const sim::RunResult once = base.take_result();
  ASSERT_TRUE(once.completed);

  sim::SimCore core(p, cfg);
  core.run_until(once.makespan / 2);
  const sim::SimCore::Snapshot snap = core.snapshot();
  for (int cycle = 0; cycle < 3; ++cycle) {
    core.run_until(std::numeric_limits<TimeNs>::max());
    core.restore(snap);
  }
  core.run_until(std::numeric_limits<TimeNs>::max());
  const sim::RunResult cycled = core.take_result();
  ASSERT_TRUE(cycled.completed);
  EXPECT_EQ(cycled.makespan, once.makespan);
  EXPECT_EQ(cycled.match_arena_slots, once.match_arena_slots);
  // Re-running the same suffix must recycle freed slots, not grow the pool:
  // allow a small slack over the single-run pool for timing-of-release
  // differences, nothing proportional to the cycle count.
  EXPECT_LE(cycled.ws_match_slot_peak, (once.ws_match_slot_peak * 5) / 4 + 4);
}

// --- Upfront --rss-budget-mib enforcement. --------------------------------

TEST(RssBudget, SerialEngineFailsFastWithDiagnostic) {
  workload::StdParams params;
  params.ranks = 64;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig cfg;
  cfg.rss_budget_mib = 1;  // below even the fixed slack term
  try {
    sim::SimCore core(p, cfg);
    FAIL() << "expected the budget check to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exceeds --rss-budget-mib 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("suggested max ranks"), std::string::npos) << msg;
    EXPECT_NE(msg.find("--shards"), std::string::npos) << msg;
  }
}

TEST(RssBudget, ShardedEngineFailsFastToo) {
  workload::StdParams params;
  params.ranks = 64;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig cfg;
  cfg.shards = 4;
  cfg.rss_budget_mib = 1;
  EXPECT_THROW(sim::ParEngine(p, cfg), std::runtime_error);
}

TEST(RssBudget, GenerousBudgetRunsNormally) {
  workload::StdParams params;
  params.ranks = 64;
  sim::Program p = workload::make_workload("halo3d", params);
  p.finalize();
  sim::EngineConfig cfg;
  cfg.rss_budget_mib = 1 << 16;
  const sim::RunResult r = sim::run_program(p, cfg);
  EXPECT_TRUE(r.completed);
}

TEST(RssBudget, EstimateScalesWithRanks) {
  workload::StdParams params;
  params.ranks = 64;
  sim::Program small = workload::make_workload("halo3d", params);
  small.finalize();
  params.ranks = 512;
  sim::Program big = workload::make_workload("halo3d", params);
  big.finalize();
  sim::EngineConfig cfg;
  const sim::WorkingSetEstimate a = sim::estimate_working_set(small, cfg);
  const sim::WorkingSetEstimate b = sim::estimate_working_set(big, cfg);
  EXPECT_GT(a.total_bytes, 0);
  EXPECT_GT(b.rank_state_bytes, a.rank_state_bytes);
  EXPECT_GT(b.program_bytes, a.program_bytes);
  EXPECT_EQ(b.ranks, 512);
}

}  // namespace
}  // namespace chksim
