// Cross-validation: engine-simulated collectives against the LogP closed
// forms (the same check the original methodology used to trust its
// simulator).
#include <gtest/gtest.h>

#include "chksim/analytic/coordination.hpp"
#include "chksim/coll/collectives.hpp"
#include "chksim/sim/engine.hpp"

namespace chksim {
namespace {

sim::LogGOPSParams logp() {
  sim::LogGOPSParams p;
  p.L = 1700;
  p.o = 300;
  p.g = 0;  // pure LogP: no gap, no per-byte terms
  p.G = 0.0;
  p.O = 0.0;
  p.S = 1 << 30;
  return p;
}

TimeNs simulate(sim::Program& p) {
  p.finalize();
  sim::EngineConfig cfg;
  cfg.net = logp();
  const sim::RunResult r = sim::run_program(p, cfg);
  EXPECT_TRUE(r.completed) << r.error;
  return r.makespan;
}

class PowerOfTwo : public ::testing::TestWithParam<int> {};

TEST_P(PowerOfTwo, DisseminationBarrierMatchesClosedForm) {
  const int P = GetParam();
  sim::Program p(P);
  coll::barrier_dissemination(p, coll::full_group(P));
  EXPECT_EQ(simulate(p), analytic::barrier_dissemination_cost(logp(), P));
}

TEST_P(PowerOfTwo, AllreduceMatchesClosedFormAtZeroBytes) {
  // With 0-byte payloads and no gaps, recursive doubling is exactly
  // log2(P) rounds of (L + 2o) — identical to the dissemination pattern.
  const int P = GetParam();
  sim::Program p(P);
  coll::allreduce_recursive_doubling(p, coll::full_group(P), 0);
  EXPECT_EQ(simulate(p), analytic::allreduce_cost(logp(), P, 0));
}

TEST_P(PowerOfTwo, TreeBarrierMatchesClosedForm) {
  const int P = GetParam();
  sim::Program p(P);
  coll::barrier_tree(p, coll::full_group(P));
  // The closed form 2*ceil(log2 P)*(L+2o) assumes full-depth reduce and
  // bcast; the simulated binomial tree can be cheaper because shallow
  // leaves finish early, but never cheaper than half (one direction) and
  // never more expensive than the closed form.
  const TimeNs closed = analytic::barrier_tree_cost(logp(), P);
  const TimeNs sim_time = simulate(p);
  EXPECT_LE(sim_time, closed);
  EXPECT_GE(sim_time, closed / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PowerOfTwo, ::testing::Values(2, 4, 8, 16, 32, 64, 128));

TEST(CollVsAnalytic, BcastDepthBound) {
  // Binomial bcast completes within ceil(log2 P) * (L + 2o) for any P
  // (the root's serialized sends overlap the subtree forwarding).
  for (int P : {3, 5, 9, 17, 33}) {
    sim::Program p(P);
    coll::bcast_binomial(p, coll::full_group(P), 0, 0);
    const TimeNs sim_time = simulate(p);
    int depth = 0;
    for (int v = P - 1; v > 0; v >>= 1) ++depth;
    // Root sends are serialized by o (CPU), children forward concurrently;
    // allow depth rounds of (L + 2o) plus the root's send pipeline.
    const TimeNs bound = depth * analytic::logp_step(logp()) +
                         depth * logp().o;
    EXPECT_LE(sim_time, bound) << "P=" << P;
  }
}

TEST(CollVsAnalytic, RingAllreduceBandwidthScaling) {
  // For large payloads the ring moves 2*(P-1)*(bytes/P) per member; with
  // G > 0 the makespan should scale with bytes, nearly independent of the
  // latency term.
  sim::LogGOPSParams net = logp();
  net.G = 0.5;
  auto run_ring = [&](Bytes bytes) {
    sim::Program p(8);
    coll::allreduce_ring(p, coll::full_group(8), bytes);
    p.finalize();
    sim::EngineConfig cfg;
    cfg.net = net;
    return sim::run_program(p, cfg).makespan;
  };
  const TimeNs small = run_ring(80'000);
  const TimeNs large = run_ring(800'000);
  const double ratio = static_cast<double>(large) / static_cast<double>(small);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(CollVsAnalytic, RecursiveDoublingBeatsRingForSmallPayloads) {
  sim::LogGOPSParams net = logp();
  net.G = 0.25;
  auto run_algo = [&](bool ring) {
    sim::Program p(32);
    if (ring) {
      coll::allreduce_ring(p, coll::full_group(32), 64);
    } else {
      coll::allreduce_recursive_doubling(p, coll::full_group(32), 64);
    }
    p.finalize();
    sim::EngineConfig cfg;
    cfg.net = net;
    return sim::run_program(p, cfg).makespan;
  };
  EXPECT_LT(run_algo(false), run_algo(true));
}

TEST(CollVsAnalytic, RingBeatsRecursiveDoublingForLargePayloads) {
  sim::LogGOPSParams net = logp();
  net.G = 0.25;
  auto run_algo = [&](bool ring) {
    sim::Program p(16);
    if (ring) {
      coll::allreduce_ring(p, coll::full_group(16), 4'000'000);
    } else {
      coll::allreduce_recursive_doubling(p, coll::full_group(16), 4'000'000);
    }
    p.finalize();
    sim::EngineConfig cfg;
    cfg.net = net;
    return sim::run_program(p, cfg).makespan;
  };
  EXPECT_LT(run_algo(true), run_algo(false));
}

}  // namespace
}  // namespace chksim
