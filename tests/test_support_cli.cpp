// Tests for the CLI flag parser.
#include "chksim/support/cli.hpp"

#include <gtest/gtest.h>

namespace chksim {
namespace {

Cli make_cli() {
  Cli cli;
  cli.flag("ranks", "64", "number of ranks")
      .flag("machine", "infiniband", "machine preset")
      .flag("duty", "0.1", "checkpoint duty cycle")
      .flag("verbose", "false", "chatty output");
  return cli;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(Cli, DefaultsApply) {
  Cli cli = make_cli();
  const auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get("machine"), "infiniband");
  EXPECT_EQ(cli.get_int("ranks"), 64);
  EXPECT_DOUBLE_EQ(cli.get_double("duty"), 0.1);
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.is_set("ranks"));
}

TEST(Cli, SpaceSeparatedValues) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--ranks", "1024", "--machine", "bgq"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("ranks"), 1024);
  EXPECT_EQ(cli.get("machine"), "bgq");
  EXPECT_TRUE(cli.is_set("ranks"));
}

TEST(Cli, EqualsSeparatedValues) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--duty=0.25", "--verbose=true"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("duty"), 0.25);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, BareBooleanFlag) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, PositionalArguments) {
  Cli cli = make_cli();
  const auto argv = argv_of({"halo3d", "--ranks", "8", "extra"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "halo3d");
  EXPECT_EQ(cli.positional()[1], "extra");
}

TEST(Cli, UnknownFlagFails) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--bogus", "1"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--ranks"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("needs a value"), std::string::npos);
}

TEST(Cli, TypeErrorsThrow) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--ranks", "abc", "--duty", "xyz", "--machine", "maybe"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(cli.get_int("ranks"), std::invalid_argument);
  EXPECT_THROW(cli.get_double("duty"), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("machine"), std::invalid_argument);
  EXPECT_THROW(cli.get("undeclared"), std::logic_error);
}

TEST(Cli, UsageListsFlags) {
  Cli cli = make_cli();
  const std::string u = cli.usage("prog");
  EXPECT_NE(u.find("--ranks"), std::string::npos);
  EXPECT_NE(u.find("machine preset"), std::string::npos);
}

TEST(Cli, DuplicateFlagDefinitionThrows) {
  Cli cli = make_cli();
  EXPECT_THROW(cli.flag("ranks", "1", "again"), std::logic_error);
}

TEST(Cli, UnknownFlagSuggestsNearestMatch) {
  Cli cli = make_cli();
  const auto argv = argv_of({"--rank", "8"});
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(cli.error().find("did you mean --ranks?"), std::string::npos);

  // Typos too far from every declared flag get no (misleading) suggestion.
  Cli cli2 = make_cli();
  const auto argv2 = argv_of({"--zzzzzz", "8"});
  EXPECT_FALSE(cli2.parse(static_cast<int>(argv2.size()), argv2.data()));
  EXPECT_EQ(cli2.error().find("did you mean"), std::string::npos);
}

TEST(Cli, StandardFlagsParseAndResolve) {
  Cli cli;
  add_standard_flags(cli);
  const auto argv = argv_of({"--jobs", "3", "--smoke", "--ranks", "128"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const StdOptions opt = standard_options(cli);
  EXPECT_EQ(opt.jobs, 3);
  EXPECT_TRUE(opt.smoke);
  EXPECT_EQ(opt.ranks, 128);
}

TEST(Cli, StandardFlagsDefaultsResolveJobs) {
  Cli cli;
  add_standard_flags(cli);
  const auto argv = argv_of({});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const StdOptions opt = standard_options(cli);
  EXPECT_GE(opt.jobs, 1);  // 0 resolves to hardware concurrency
  EXPECT_FALSE(opt.smoke);
  EXPECT_EQ(opt.ranks, 0);
}

TEST(Cli, StandardFlagsRejectNegativeRanks) {
  Cli cli;
  add_standard_flags(cli);
  const auto argv = argv_of({"--ranks", "-4"});
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(standard_options(cli), std::invalid_argument);
}

}  // namespace
}  // namespace chksim
