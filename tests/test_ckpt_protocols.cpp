// Checkpoint-protocol preparation, logging tax, and interval-policy tests.
#include <gtest/gtest.h>

#include <cmath>

#include "chksim/ckpt/interval.hpp"
#include "chksim/ckpt/protocols.hpp"

namespace chksim::ckpt {
namespace {

using namespace chksim::literals;

net::MachineModel machine() { return net::infiniband_system(); }

TEST(LoggingTax, SenderSideCharges) {
  LoggingTaxConfig cfg;
  cfg.per_message = 500;
  cfg.per_byte_ns = 0.5;
  LoggingTax tax(cfg);
  EXPECT_EQ(tax.extra_send_cpu(0, 1, 1000), 1000);
  EXPECT_EQ(tax.extra_recv_cpu(0, 1, 1000), 0);
  EXPECT_TRUE(tax.logged(0, 1));
}

TEST(LoggingTax, ReceiverSideVariant) {
  LoggingTaxConfig cfg;
  cfg.per_message = 500;
  cfg.receiver_side = true;
  LoggingTax tax(cfg);
  EXPECT_EQ(tax.extra_send_cpu(0, 1, 0), 0);
  EXPECT_EQ(tax.extra_recv_cpu(0, 1, 0), 500);
}

TEST(LoggingTax, ClusterFilterLogsOnlyCrossTraffic) {
  LoggingTaxConfig cfg;
  cfg.per_message = 500;
  cfg.cluster_size = 4;
  LoggingTax tax(cfg);
  EXPECT_FALSE(tax.logged(0, 3));   // same cluster
  EXPECT_TRUE(tax.logged(0, 4));    // cross cluster
  EXPECT_EQ(tax.extra_send_cpu(1, 2, 100), 0);
  EXPECT_EQ(tax.extra_send_cpu(1, 6, 100), 500);
}

TEST(LoggingTax, InvalidConfigThrows) {
  LoggingTaxConfig bad;
  bad.per_message = -1;
  EXPECT_THROW(LoggingTax{bad}, std::invalid_argument);
}

TEST(PrepareNone, Empty) {
  const Artifacts a = prepare_none(16);
  EXPECT_EQ(a.kind, ProtocolKind::kNone);
  EXPECT_EQ(a.schedule, nullptr);
  EXPECT_EQ(a.tax, nullptr);
  EXPECT_EQ(a.blackout, 0);
  EXPECT_DOUBLE_EQ(a.duty_cycle(), 0.0);
  EXPECT_THROW(prepare_none(0), std::invalid_argument);
}

TEST(PrepareCoordinated, BlackoutCombinesCoordinationAndWrite) {
  CoordinatedConfig cfg;
  cfg.interval = 120_s;
  const Artifacts a = prepare_coordinated(cfg, machine(), 64);
  EXPECT_EQ(a.kind, ProtocolKind::kCoordinated);
  EXPECT_GT(a.coordination_time, 0);
  EXPECT_GT(a.write_time, 0);
  EXPECT_EQ(a.blackout, a.coordination_time + a.write_time);
  ASSERT_NE(a.schedule, nullptr);
  EXPECT_EQ(a.tax, nullptr);
  // All ranks share one schedule: same first blackout.
  const auto b0 = a.schedule->next_blackout(0, 0);
  const auto b7 = a.schedule->next_blackout(7, 0);
  ASSERT_TRUE(b0 && b7);
  EXPECT_EQ(*b0, *b7);
  EXPECT_EQ(b0->begin, cfg.interval);  // first checkpoint one interval in
  EXPECT_EQ(b0->duration(), a.blackout);
}

TEST(PrepareCoordinated, WriteTimeGrowsWithScale) {
  CoordinatedConfig cfg;
  cfg.interval = 3600_s;
  const Artifacts small = prepare_coordinated(cfg, machine(), 64);
  const Artifacts large = prepare_coordinated(cfg, machine(), 16384);
  EXPECT_GT(large.write_time, 5 * small.write_time);
  EXPECT_TRUE(large.pfs_saturated);
}

TEST(PrepareCoordinated, CoordinationIsTinyVersusWrite) {
  // The paper's coordination finding, in artifact form.
  CoordinatedConfig cfg;
  cfg.interval = 3600_s;
  const Artifacts a = prepare_coordinated(cfg, machine(), 16384);
  EXPECT_LT(a.coordination_time * 1000, a.write_time);
}

TEST(PrepareCoordinated, BlackoutExceedingIntervalThrows) {
  CoordinatedConfig cfg;
  cfg.interval = 1_s;  // 4 GiB cannot be written in 1 s at scale
  EXPECT_THROW(prepare_coordinated(cfg, machine(), 16384), std::invalid_argument);
}

TEST(PrepareUncoordinated, PhasesAreSpread) {
  UncoordinatedConfig cfg;
  cfg.interval = 600_s;
  cfg.phase_seed = 3;
  const Artifacts a = prepare_uncoordinated(cfg, machine(), 256);
  ASSERT_NE(a.schedule, nullptr);
  // Not all first blackouts coincide.
  const auto b0 = a.schedule->next_blackout(0, 0);
  bool differs = false;
  for (sim::RankId r = 1; r < 256 && !differs; ++r) {
    const auto br = a.schedule->next_blackout(r, 0);
    if (br->begin != b0->begin) differs = true;
  }
  EXPECT_TRUE(differs);
  EXPECT_EQ(a.coordination_time, 0);
}

TEST(PrepareUncoordinated, SpreadWriteStaysNodeBoundAtScale) {
  UncoordinatedConfig cfg;
  cfg.interval = 3600_s;
  const Artifacts small = prepare_uncoordinated(cfg, machine(), 64);
  const Artifacts large = prepare_uncoordinated(cfg, machine(), 16384);
  // Key storage asymmetry vs the coordinated case: roughly flat write time.
  EXPECT_LT(large.write_time, 2 * small.write_time);
}

TEST(PrepareUncoordinated, TaxOnlyWhenConfigured) {
  UncoordinatedConfig cfg;
  cfg.interval = 600_s;
  EXPECT_EQ(prepare_uncoordinated(cfg, machine(), 16).tax, nullptr);
  cfg.log_per_message = 1000;
  const Artifacts a = prepare_uncoordinated(cfg, machine(), 16);
  ASSERT_NE(a.tax, nullptr);
  EXPECT_EQ(a.tax->extra_send_cpu(0, 1, 0), 1000);
}

TEST(PrepareHierarchical, ClusterAlignedPhases) {
  HierarchicalConfig cfg;
  cfg.interval = 600_s;
  cfg.cluster_size = 4;
  cfg.log_per_message = 100;
  const Artifacts a = prepare_hierarchical(cfg, machine(), 16);
  ASSERT_NE(a.schedule, nullptr);
  // Ranks within a cluster share phases.
  const auto b0 = a.schedule->next_blackout(0, 0);
  const auto b3 = a.schedule->next_blackout(3, 0);
  ASSERT_TRUE(b0 && b3);
  EXPECT_EQ(*b0, *b3);
  ASSERT_NE(a.tax, nullptr);
  EXPECT_EQ(a.tax->extra_send_cpu(0, 3, 64), 0);    // intra-cluster
  EXPECT_EQ(a.tax->extra_send_cpu(0, 4, 64), 100);  // inter-cluster
}

TEST(PrepareHierarchical, CoordinationScalesWithClusterNotSystem) {
  HierarchicalConfig cfg;
  cfg.interval = 3600_s;
  cfg.cluster_size = 16;
  const Artifacts h = prepare_hierarchical(cfg, machine(), 4096);
  CoordinatedConfig ccfg;
  ccfg.interval = 3600_s;
  const Artifacts c = prepare_coordinated(ccfg, machine(), 4096);
  EXPECT_LT(h.coordination_time, c.coordination_time);
}

TEST(PrepareHierarchical, ClusterSizeClampedToRanks) {
  HierarchicalConfig cfg;
  cfg.interval = 600_s;
  cfg.cluster_size = 1024;
  const Artifacts a = prepare_hierarchical(cfg, machine(), 8);
  EXPECT_NE(a.name.find("c=8"), std::string::npos);
}

TEST(Protocols, ToStringNames) {
  EXPECT_EQ(to_string(ProtocolKind::kNone), "none");
  EXPECT_EQ(to_string(ProtocolKind::kCoordinated), "coordinated");
  EXPECT_EQ(to_string(ProtocolKind::kUncoordinated), "uncoordinated");
  EXPECT_EQ(to_string(ProtocolKind::kHierarchical), "hierarchical");
}

TEST(IntervalPolicy, FixedPassesThrough) {
  EXPECT_EQ(choose_interval(IntervalPolicy::kFixed, ProtocolKind::kCoordinated,
                            machine(), 64, 42_s),
            42_s);
  EXPECT_THROW(choose_interval(IntervalPolicy::kFixed, ProtocolKind::kCoordinated,
                               machine(), 64, 0),
               std::invalid_argument);
}

TEST(IntervalPolicy, YoungMatchesFormulaForCoordinated) {
  const net::MachineModel m = machine();
  const int ranks = 1024;
  const TimeNs tau =
      choose_interval(IntervalPolicy::kYoung, ProtocolKind::kCoordinated, m, ranks);
  // delta at this scale: concurrent write + coordination.
  const storage::Pfs pfs = pfs_of(m);
  const double delta = units::to_seconds(
      pfs.concurrent_write(m.ckpt_bytes_per_node, ranks).per_node +
      analytic::coordination_cost(m.net, ranks,
                                  analytic::SyncAlgorithm::kDissemination, 0));
  const double expect = std::sqrt(2.0 * delta * m.system_mtbf_seconds(ranks));
  EXPECT_NEAR(units::to_seconds(tau), expect, 0.05 * expect);
}

TEST(IntervalPolicy, OptimalIntervalShrinksWithScale) {
  const net::MachineModel m = machine();
  const TimeNs t1 = choose_interval(IntervalPolicy::kDaly, ProtocolKind::kUncoordinated,
                                    m, 256);
  const TimeNs t2 = choose_interval(IntervalPolicy::kDaly, ProtocolKind::kUncoordinated,
                                    m, 4096);
  EXPECT_GT(t1, t2);  // more failures at scale -> checkpoint more often
}

TEST(IntervalPolicy, DalyLeavesRoomForBlackout) {
  // Even in crushing regimes the returned interval admits the blackout.
  const net::MachineModel m = machine();
  for (int ranks : {64, 1024, 16384, 65536}) {
    const TimeNs tau = choose_interval(IntervalPolicy::kDaly,
                                       ProtocolKind::kCoordinated, m, ranks);
    CoordinatedConfig cfg;
    cfg.interval = tau;
    const Artifacts a = prepare_coordinated(cfg, m, ranks);
    EXPECT_LT(a.blackout, tau) << "ranks=" << ranks;
  }
}

class ProtocolScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolScaleSweep, AllKindsPrepareCleanly) {
  const int ranks = GetParam();
  const net::MachineModel m = machine();
  CoordinatedConfig c;
  c.interval = 3600_s;
  EXPECT_GT(prepare_coordinated(c, m, ranks).blackout, 0);
  UncoordinatedConfig u;
  u.interval = 3600_s;
  EXPECT_GT(prepare_uncoordinated(u, m, ranks).blackout, 0);
  HierarchicalConfig h;
  h.interval = 3600_s;
  h.cluster_size = 16;
  EXPECT_GT(prepare_hierarchical(h, m, ranks).blackout, 0);
}

INSTANTIATE_TEST_SUITE_P(Scales, ProtocolScaleSweep,
                         ::testing::Values(1, 2, 16, 100, 1024, 16384));

}  // namespace
}  // namespace chksim::ckpt
