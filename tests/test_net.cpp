// Machine presets, LogGOPS helpers, and topology hop-count models.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "chksim/net/machines.hpp"
#include "chksim/net/topology.hpp"

namespace chksim::net {
namespace {

TEST(LogGOPSParams, TimingHelpers) {
  sim::LogGOPSParams p;
  p.L = 1000;
  p.o = 100;
  p.g = 300;
  p.G = 0.5;
  p.O = 0.1;
  p.S = 1024;
  EXPECT_EQ(p.send_cpu(1000), 100 + 100);      // o + O*s
  EXPECT_EQ(p.recv_cpu(1000), 200);
  EXPECT_EQ(p.nic_gap(100), 300);              // g dominates small messages
  EXPECT_EQ(p.nic_gap(10000), 5000);           // G*s dominates large ones
  EXPECT_EQ(p.wire_time(2000), 1000 + 1000);   // L + G*s
  EXPECT_FALSE(p.rendezvous(1024));
  EXPECT_TRUE(p.rendezvous(1025));
  EXPECT_EQ(p.control_time(), 1100);
}

TEST(Machines, AllPresetsAreSane) {
  for (const MachineModel& m : all_machines()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.net.L, 0) << m.name;
    EXPECT_GT(m.net.o, 0) << m.name;
    EXPECT_GT(m.net.G, 0) << m.name;
    EXPECT_GT(m.ckpt_bytes_per_node, 0) << m.name;
    EXPECT_GT(m.node_bw_bytes_per_s, 0) << m.name;
    EXPECT_GT(m.pfs_bw_bytes_per_s, m.node_bw_bytes_per_s) << m.name;
    EXPECT_GT(m.node_mtbf_hours, 0) << m.name;
    EXPECT_GT(m.restart_seconds, 0) << m.name;
  }
}

TEST(Machines, LookupByName) {
  EXPECT_EQ(machine_by_name("infiniband").name, "infiniband");
  EXPECT_EQ(machine_by_name("exascale").name, "exascale");
  EXPECT_THROW(machine_by_name("cray-17"), std::invalid_argument);
}

TEST(Machines, SystemMtbfScalesInversely) {
  const MachineModel m = infiniband_system();
  const double m1 = m.system_mtbf_seconds(1);
  EXPECT_DOUBLE_EQ(m1, m.node_mtbf_hours * 3600.0);
  EXPECT_DOUBLE_EQ(m.system_mtbf_seconds(1000), m1 / 1000);
}

TEST(FullyConnected, Hops) {
  FullyConnected t(8);
  EXPECT_EQ(t.hops(3, 3), 0);
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_DOUBLE_EQ(t.mean_hops(), 1.0);
  EXPECT_THROW(FullyConnected(0), std::invalid_argument);
}

TEST(Torus, WraparoundDistance) {
  Torus t({4, 4, 1});
  // (0,0) to (3,0): wraparound distance is 1, not 3.
  EXPECT_EQ(t.hops(0, 3), 1);
  // (0,0) to (2,2): 2 + 2.
  EXPECT_EQ(t.hops(0, 2 + 2 * 4), 4);
  EXPECT_EQ(t.hops(5, 5), 0);
  EXPECT_EQ(t.nodes(), 16);
}

TEST(Torus, DiameterOfCube) {
  Torus t({4, 4, 4});
  EXPECT_EQ(t.diameter(), 6);  // 2 per dimension
}

TEST(Torus, NearCubicFactorization) {
  const Torus a = Torus::near_cubic(64);
  EXPECT_EQ(a.nodes(), 64);
  EXPECT_EQ(a.diameter(), 6);  // 4x4x4
  const Torus b = Torus::near_cubic(30);
  EXPECT_EQ(b.nodes(), 30);
  EXPECT_THROW(Torus::near_cubic(0), std::invalid_argument);
}

TEST(FatTree, HopsAreEvenAndBounded) {
  FatTree t(64, 8);  // radix 8 -> 4 down-ports, 3 levels for 64 nodes
  EXPECT_EQ(t.levels(), 3);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 2);    // same edge switch
  EXPECT_EQ(t.hops(0, 4), 4);    // neighbouring edge switch
  EXPECT_EQ(t.hops(0, 63), 6);   // across the root
  EXPECT_EQ(t.diameter(), 2 * t.levels());
}

TEST(FatTree, InvalidArgsThrow) {
  EXPECT_THROW(FatTree(0, 8), std::invalid_argument);
  EXPECT_THROW(FatTree(16, 1), std::invalid_argument);
}

TEST(Dragonfly, HopClasses) {
  Dragonfly t(64, 16, 4);  // 4 groups of 16, routers of 4
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 3), 1);    // same router
  EXPECT_EQ(t.hops(0, 5), 2);    // same group, different router
  EXPECT_EQ(t.hops(0, 20), 5);   // different group
  EXPECT_THROW(Dragonfly(64, 15, 4), std::invalid_argument);
}

TEST(Topology, MeanHopsSampledMatchesExactOnSmall) {
  Torus t({4, 4, 4});
  const double exact = t.mean_hops(/*max_exact=*/512);
  const double sampled = t.mean_hops(/*max_exact=*/1);
  EXPECT_NEAR(sampled, exact, 0.02);
}

TEST(Topology, EffectiveParamsFoldHopLatency) {
  const sim::LogGOPSParams base = infiniband_system().net;
  Torus t({8, 8, 8});
  const sim::LogGOPSParams eff = effective_params(base, t, 100);
  EXPECT_GT(eff.L, base.L);
  EXPECT_EQ(eff.o, base.o);
  // Mean hops of an 8^3 torus is 6 (2 per dimension on average).
  EXPECT_NEAR(static_cast<double>(eff.L - base.L), 600.0, 30.0);
}

class TopologySymmetry : public ::testing::TestWithParam<int> {};

TEST_P(TopologySymmetry, HopsAreSymmetricAndTriangleBounded) {
  const int n = GetParam();
  const Torus t = Torus::near_cubic(n);
  for (sim::RankId a = 0; a < t.nodes(); a += 3) {
    for (sim::RankId b = 0; b < t.nodes(); b += 5) {
      ASSERT_EQ(t.hops(a, b), t.hops(b, a));
      ASSERT_GE(t.hops(a, b), a == b ? 0 : 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySymmetry, ::testing::Values(8, 27, 30, 64, 125));

// Brute-force reference for min_cross_shard_latency: min over all pairs of
// ranks in different shards of L + hops * per_hop.
TimeNs brute_force_min_cross(const sim::LogGOPSParams& base,
                             const Topology& topo, TimeNs per_hop,
                             const std::vector<int>& starts) {
  const int n = topo.nodes();
  auto shard_of = [&](int r) {
    std::size_t s = 0;
    while (s + 1 < starts.size() && starts[s + 1] <= r) ++s;
    return s;
  };
  TimeNs best = std::numeric_limits<TimeNs>::max();
  for (sim::RankId a = 0; a < n; ++a)
    for (sim::RankId b = 0; b < n; ++b)
      if (shard_of(static_cast<int>(a)) != shard_of(static_cast<int>(b)))
        best = std::min(best, base.L + static_cast<TimeNs>(topo.hops(a, b)) * per_hop);
  return best;
}

TEST(MinCrossShardLatency, MatchesBruteForceOnStandardTopologies) {
  sim::LogGOPSParams base = infiniband_system().net;
  const Torus torus({4, 4, 4});
  const FatTree fat_tree(64, 8);
  const Dragonfly dragonfly(64, 16, 4);
  const FullyConnected full(64);
  const Topology* topos[] = {&torus, &fat_tree, &dragonfly, &full};
  const std::vector<std::vector<int>> partitions = {
      {0, 32},             // Two halves.
      {0, 16, 32, 48},     // Four even shards.
      {0, 1},              // A single rank split off.
      {0, 7, 9, 40, 63},   // Ragged boundaries.
  };
  for (const Topology* topo : topos) {
    for (const auto& starts : partitions) {
      for (const TimeNs per_hop : {TimeNs{0}, TimeNs{100}, TimeNs{777}}) {
        const TimeNs got = min_cross_shard_latency(base, *topo, per_hop, starts);
        const TimeNs want = brute_force_min_cross(base, *topo, per_hop, starts);
        EXPECT_EQ(got, want)
            << topo->name() << " shards=" << starts.size() << " per_hop=" << per_hop;
        // A conservative window can never be optimistic: the cross-shard
        // minimum is at least the uniform LogGOPS latency.
        EXPECT_GE(got, base.L) << topo->name();
      }
    }
  }
}

TEST(MinCrossShardLatency, SingleShardAndValidation) {
  sim::LogGOPSParams base = infiniband_system().net;
  const Torus t({4, 4, 4});
  EXPECT_EQ(min_cross_shard_latency(base, t, 100, {0}), base.L);
  EXPECT_THROW(min_cross_shard_latency(base, t, 100, {}), std::invalid_argument);
  EXPECT_THROW(min_cross_shard_latency(base, t, 100, {1, 32}), std::invalid_argument);
  EXPECT_THROW(min_cross_shard_latency(base, t, 100, {0, 32, 32}), std::invalid_argument);
  EXPECT_THROW(min_cross_shard_latency(base, t, 100, {0, 64}), std::invalid_argument);
}

}  // namespace
}  // namespace chksim::net
