// Storage-tier tests: burst buffer / partner-memory checkpoint paths and
// the restart-I/O cost model.
#include <gtest/gtest.h>

#include "chksim/ckpt/interval.hpp"
#include "chksim/ckpt/protocols.hpp"
#include "chksim/core/failure_study.hpp"

namespace chksim::ckpt {
namespace {

using namespace chksim::literals;
using storage::StorageTier;

TEST(StorageTier, Names) {
  EXPECT_EQ(storage::to_string(StorageTier::kParallelFs), "pfs");
  EXPECT_EQ(storage::to_string(StorageTier::kBurstBuffer), "burst-buffer");
  EXPECT_EQ(storage::to_string(StorageTier::kPartner), "partner");
}

TEST(TierWriteTime, BurstBufferUsesLocalBandwidth) {
  const net::MachineModel m = net::exascale_projection();
  const TimeNs t = tier_write_time(StorageTier::kBurstBuffer, m);
  EXPECT_NEAR(units::to_seconds(t),
              static_cast<double>(m.ckpt_bytes_per_node) / m.bb_bw_bytes_per_s, 1e-6);
}

TEST(TierWriteTime, BurstBufferRequiresHardware) {
  net::MachineModel m = net::infiniband_system();  // no BB
  EXPECT_THROW(tier_write_time(StorageTier::kBurstBuffer, m), std::invalid_argument);
}

TEST(TierWriteTime, PartnerUsesNetworkBandwidth) {
  const net::MachineModel m = net::infiniband_system();
  const TimeNs t = tier_write_time(StorageTier::kPartner, m);
  const TimeNs expected =
      m.net.o + m.net.L +
      static_cast<TimeNs>(m.net.G * static_cast<double>(m.ckpt_bytes_per_node));
  EXPECT_EQ(t, expected);
}

TEST(TierWriteTime, PfsNeedsWriterCount) {
  EXPECT_THROW(tier_write_time(StorageTier::kParallelFs, net::infiniband_system()),
               std::invalid_argument);
}

TEST(Protocols, PartnerTierIsScaleInvariant) {
  net::MachineModel m = net::infiniband_system();
  m.ckpt_bytes_per_node = 1_GiB;
  UncoordinatedConfig cfg;
  cfg.interval = 3600_s;
  cfg.tier = StorageTier::kPartner;
  const Artifacts small = prepare_uncoordinated(cfg, m, 64);
  const Artifacts large = prepare_uncoordinated(cfg, m, 16384);
  EXPECT_EQ(small.write_time, large.write_time);
  EXPECT_FALSE(large.pfs_saturated);
}

TEST(Protocols, PartnerBeatsContendedPfsAtScale) {
  net::MachineModel m = net::infiniband_system();
  CoordinatedConfig pfs_cfg;
  pfs_cfg.interval = 36000_s;
  CoordinatedConfig partner_cfg = pfs_cfg;
  partner_cfg.tier = StorageTier::kPartner;
  const Artifacts pfs = prepare_coordinated(pfs_cfg, m, 16384);
  const Artifacts partner = prepare_coordinated(partner_cfg, m, 16384);
  EXPECT_LT(partner.write_time, pfs.write_time / 100);
}

TEST(Protocols, BurstBufferTierOnHierarchical) {
  const net::MachineModel m = net::exascale_projection();
  HierarchicalConfig cfg;
  cfg.interval = 600_s;
  cfg.cluster_size = 32;
  cfg.tier = StorageTier::kBurstBuffer;
  const Artifacts a = prepare_hierarchical(cfg, m, 1024);
  EXPECT_EQ(a.write_time, tier_write_time(StorageTier::kBurstBuffer, m));
  EXPECT_GT(a.coordination_time, 0);
}

TEST(IntervalPolicy, TierChangesOptimalInterval) {
  // Cheaper checkpoints => shorter optimal interval.
  const net::MachineModel m = net::exascale_projection();
  const TimeNs pfs_tau = choose_interval(IntervalPolicy::kDaly,
                                         ProtocolKind::kCoordinated, m, 4096);
  const TimeNs bb_tau =
      choose_interval(IntervalPolicy::kDaly, ProtocolKind::kCoordinated, m, 4096, 0,
                      16, StorageTier::kBurstBuffer);
  EXPECT_LT(bb_tau, pfs_tau);
}

TEST(RestartCost, NoneIsBareRestart) {
  const net::MachineModel m = net::infiniband_system();
  EXPECT_DOUBLE_EQ(
      restart_cost_seconds(ProtocolKind::kNone, StorageTier::kParallelFs, m, 1024),
      m.restart_seconds);
}

TEST(RestartCost, CoordinatedReadBurstGrowsWithScale) {
  const net::MachineModel m = net::infiniband_system();
  // Compare the read-back component (net of the fixed relaunch cost).
  const double small =
      restart_cost_seconds(ProtocolKind::kCoordinated, StorageTier::kParallelFs, m, 64) -
      m.restart_seconds;
  const double large = restart_cost_seconds(ProtocolKind::kCoordinated,
                                            StorageTier::kParallelFs, m, 16384) -
                       m.restart_seconds;
  EXPECT_GT(large, 5 * small);
}

TEST(RestartCost, UncoordinatedReadsOnFailedNodeOnly) {
  const net::MachineModel m = net::infiniband_system();
  const double u = restart_cost_seconds(ProtocolKind::kUncoordinated,
                                        StorageTier::kParallelFs, m, 16384);
  const double expected =
      m.restart_seconds +
      static_cast<double>(m.ckpt_bytes_per_node) / m.node_bw_bytes_per_s;
  EXPECT_NEAR(u, expected, 0.01 * expected);
}

TEST(RestartCost, HierarchicalReadsClusterWide) {
  const net::MachineModel m = net::infiniband_system();
  const double h = restart_cost_seconds(ProtocolKind::kHierarchical,
                                        StorageTier::kParallelFs, m, 16384, 64);
  const double u = restart_cost_seconds(ProtocolKind::kUncoordinated,
                                        StorageTier::kParallelFs, m, 16384);
  const double c = restart_cost_seconds(ProtocolKind::kCoordinated,
                                        StorageTier::kParallelFs, m, 16384);
  EXPECT_GE(h, u);
  EXPECT_LE(h, c);
}

TEST(RestartCost, TierReadBack) {
  const net::MachineModel m = net::exascale_projection();
  const double bb = restart_cost_seconds(ProtocolKind::kCoordinated,
                                         StorageTier::kBurstBuffer, m, 16384);
  EXPECT_NEAR(bb,
              m.restart_seconds + static_cast<double>(m.ckpt_bytes_per_node) /
                                      m.bb_bw_bytes_per_s,
              1.0);
}

TEST(FailureStudy, RestartIoModelIncreasesMakespanAtScale) {
  core::FailureStudyConfig cfg;
  cfg.study.machine = net::infiniband_system();
  cfg.study.machine.ckpt_bytes_per_node = 4_MiB;
  cfg.study.machine.node_mtbf_hours = 200;
  cfg.study.workload = "halo3d";
  cfg.study.params.ranks = 64;
  cfg.study.params.iterations = 30;
  cfg.study.params.compute = 1'000'000;
  cfg.study.params.bytes = 4096;
  cfg.study.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.study.protocol.fixed_interval = 10'000'000;  // 10 ms sim interval
  cfg.recovery_interval_seconds = 120;
  cfg.work_seconds = 24 * 3600;
  cfg.trials = 100;
  const auto bare = core::run_failure_study(cfg);
  cfg.model_restart_io = true;
  const auto modeled = core::run_failure_study(cfg);
  EXPECT_GE(modeled.makespan.mean_seconds, bare.makespan.mean_seconds);
}

}  // namespace
}  // namespace chksim::ckpt
