// Unit and property tests for the deterministic RNG layer.
#include "chksim/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace chksim {
namespace {

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  const std::uint64_t c = splitmix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  // Regression-pin the first output of the reference algorithm for seed 0.
  EXPECT_EQ(a, 0xe220a8397b1dcdafULL);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SubstreamsAreDecorrelated) {
  Rng a = Rng::substream(7, 0);
  Rng b = Rng::substream(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-5.0, 3.0);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, UniformU64BoundedAndCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.uniform_u64(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64One) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_u64(1), 0u);
}

TEST(Rng, UniformI64Inclusive) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_i64(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(r.exponential(1e-6), 0.0);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  // Weibull(k=1, lambda) == Exponential(mean=lambda).
  Rng r(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.weibull(1.0, 2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, WeibullLowShapeHasHeavyTail) {
  // For k < 1 the coefficient of variation exceeds 1.
  Rng r(11);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.weibull(0.6, 1.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_GT(std::sqrt(var) / mean, 1.2);
}

TEST(Rng, NormalMoments) {
  Rng r(12);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sumsq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, NormalTruncatedStaysInBounds) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.normal_truncated(0.0, 5.0, -1.0, 1.0);
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 1.0);
  }
}

TEST(Rng, NormalTruncatedDegenerateStddevClamps) {
  Rng r(14);
  EXPECT_DOUBLE_EQ(r.normal_truncated(5.0, 0.0, -1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(r.normal_truncated(-5.0, 0.0, -1.0, 1.0), -1.0);
  EXPECT_DOUBLE_EQ(r.normal_truncated(0.5, 0.0, -1.0, 1.0), 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundProperty, LemireBoundIsRespectedAndNonDegenerate) {
  const std::uint64_t n = GetParam();
  Rng r(n);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = r.uniform_u64(n);
    ASSERT_LT(v, n);
    max_seen = std::max(max_seen, v);
  }
  if (n > 4) {
    EXPECT_GT(max_seen, n / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundProperty,
                         ::testing::Values(2, 3, 10, 100, 1000, 1ull << 20,
                                           1ull << 40, (1ull << 63) + 5));

}  // namespace
}  // namespace chksim
