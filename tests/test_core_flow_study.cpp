// Flow-mode study tests: machine -> fabric planning, checkpoint I/O burst
// realization, and run_study / failure / platform plumbing under
// NetworkMode::kFlow. The study must stay byte-deterministic across jobs
// and shards (compared through the metrics JSON payload, the campaign
// cache's comparison unit).
#include "chksim/core/fabric_plan.hpp"

#include <gtest/gtest.h>

#include "chksim/core/failure_study.hpp"
#include "chksim/core/platform_study.hpp"
#include "chksim/core/study.hpp"

namespace chksim::core {
namespace {

using namespace chksim::literals;

StudyConfig flow_study() {
  StudyConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 4_MiB;
  cfg.workload = "halo3d";
  cfg.params.ranks = 27;
  cfg.params.iterations = 20;
  cfg.params.compute = 2'000'000;
  cfg.params.bytes = 4096;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.interval_policy = ckpt::IntervalPolicy::kFixed;
  cfg.protocol.fixed_interval = 10_ms;
  cfg.network.mode = NetworkMode::kFlow;
  // Constrain the PFS gateway fan-in so coordinated bursts actually contend:
  // 4 gateway ejects at nic_bw (4 GB/s) carry 16 GB/s against 27 ranks'
  // capped demand of 40.5 GB/s — saturated, but the realized blackout
  // (~7 ms) stays under the 10 ms interval so the schedule never wraps.
  cfg.network.gateways = 4;
  return cfg;
}

TEST(FabricPlan, TopologyFamilyFollowsMachineName) {
  const FlowSpec spec;
  EXPECT_EQ(plan_fabric(net::torus_hpc(), 64, spec).router.kind,
            net::flow::FabricKind::kTorus);
  EXPECT_EQ(plan_fabric(net::bgq_like(), 64, spec).router.kind,
            net::flow::FabricKind::kTorus);
  EXPECT_EQ(plan_fabric(net::exascale_projection(), 64, spec).router.kind,
            net::flow::FabricKind::kDragonfly);
  EXPECT_EQ(plan_fabric(net::infiniband_system(), 64, spec).router.kind,
            net::flow::FabricKind::kFatTree);
  EXPECT_EQ(plan_fabric(net::ethernet_cluster(), 64, spec).router.kind,
            net::flow::FabricKind::kFatTree);
}

TEST(FabricPlan, BandwidthsDeriveFromTheMachine) {
  const net::MachineModel m = net::infiniband_system();
  FlowSpec spec;
  const FabricPlan p = plan_fabric(m, 64, spec);
  ASSERT_GT(m.net.G, 0.0);
  EXPECT_DOUBLE_EQ(p.net.node_bw, 1.0 / m.net.G);
  EXPECT_DOUBLE_EQ(p.net.link_bw, p.net.node_bw);  // 0 = match the NIC
  EXPECT_DOUBLE_EQ(p.net.pfs_bw, m.pfs_bw_bytes_per_s / 1e9);
  EXPECT_EQ(p.net.base_latency, m.net.L);

  spec.link_bw_gbs = 3.5;
  spec.ranks_per_node = 4;
  const FabricPlan q = plan_fabric(m, 64, spec);
  EXPECT_DOUBLE_EQ(q.net.link_bw, 3.5);
  EXPECT_EQ(q.router.nodes, 16);
  EXPECT_EQ(q.router.node_map.ranks_per_node, 4);
}

TEST(FabricPlan, NetworkModeNames) {
  EXPECT_EQ(to_string(NetworkMode::kAnalytic), "analytic");
  EXPECT_EQ(to_string(NetworkMode::kFlow), "flow");
  EXPECT_EQ(network_mode_by_name("flow"), NetworkMode::kFlow);
  EXPECT_EQ(network_mode_by_name("analytic"), NetworkMode::kAnalytic);
  EXPECT_THROW(network_mode_by_name("quantum"), std::invalid_argument);
}

TEST(RealizeIoBursts, WalksTheScheduleAndKeepsStarts) {
  const StudyConfig cfg = flow_study();
  const ckpt::Artifacts art =
      prepare_protocol(cfg.protocol, cfg.machine, cfg.params.ranks);
  const FabricPlan plan = plan_fabric(cfg.machine, cfg.params.ranks, cfg.network);
  const net::flow::Router router(plan.router);
  const TimeNs horizon = 50_ms;
  const IoPlan io = realize_io_bursts(art, cfg.protocol.tier, cfg.machine,
                                      router, plan.net, cfg.params.ranks, horizon);
  ASSERT_NE(io.schedule, nullptr);
  EXPECT_GT(io.count, 0);
  EXPECT_EQ(io.count % cfg.params.ranks, 0);  // coordinated: all ranks together
  // Realized intervals start exactly where the analytic ones did, and are
  // at least as long as the coordination floor.
  for (sim::RankId r = 0; r < cfg.params.ranks; ++r) {
    TimeNs t = 0;
    while (true) {
      const auto analytic = art.schedule->next_blackout(r, t);
      if (!analytic.has_value() || analytic->begin >= horizon) break;
      const auto realized = io.schedule->next_blackout(r, analytic->begin);
      ASSERT_TRUE(realized.has_value());
      EXPECT_EQ(realized->begin, analytic->begin);
      EXPECT_GE(realized->duration(), art.coordination_time);
      t = analytic->end;
    }
  }
}

TEST(RunStudy, FlowModeContendsAndReportsFabric) {
  const Breakdown b = run_study(flow_study());
  EXPECT_EQ(b.network, "flow");
  EXPECT_GT(b.perturbed_makespan, b.base_makespan);
  EXPECT_GT(b.slowdown, 1.0);
  EXPECT_GT(b.fabric.msg_flows, 0);
  EXPECT_GT(b.fabric.io_flows, 0);
  EXPECT_GT(b.io_bursts, 0);
  EXPECT_GT(b.fabric.bytes_moved, 0);
}

TEST(RunStudy, AnalyticDefaultReportsNoFabric) {
  StudyConfig cfg = flow_study();
  cfg.network = FlowSpec{};
  const Breakdown b = run_study(cfg);
  EXPECT_EQ(b.network, "analytic");
  EXPECT_EQ(b.fabric.msg_flows, 0);
  EXPECT_EQ(b.io_bursts, 0);
}

TEST(RunStudy, FlowModeByteDeterministicAcrossJobsAndShards) {
  std::string reference;
  Breakdown ref_b;
  for (const auto& [jobs, shards] : {std::pair{1, 1}, {2, 1}, {1, 4}, {2, 3}}) {
    StudyConfig cfg = flow_study();
    cfg.jobs = jobs;
    cfg.shards = shards;
    obs::MetricsRegistry metrics;
    cfg.metrics = &metrics;
    const Breakdown b = run_study(cfg);
    const std::string payload = metrics.to_json();
    if (reference.empty()) {
      reference = payload;
      ref_b = b;
      EXPECT_GT(metrics.gauge("net.flow.contention_ns"), 0.0);
      EXPECT_GT(metrics.gauge("net.flow.util.storage"), 0.0);
      continue;
    }
    EXPECT_EQ(payload, reference) << "jobs=" << jobs << " shards=" << shards;
    EXPECT_EQ(b.base_makespan, ref_b.base_makespan);
    EXPECT_EQ(b.perturbed_makespan, ref_b.perturbed_makespan);
    EXPECT_EQ(b.fabric.contention_ns, ref_b.fabric.contention_ns);
  }
}

TEST(RunStudy, FlowModeCostsMoreThanAnalytic) {
  // The whole point: the same study under in-fabric contention runs longer.
  StudyConfig analytic = flow_study();
  analytic.network = FlowSpec{};
  const Breakdown a = run_study(analytic);
  const Breakdown f = run_study(flow_study());
  EXPECT_GE(f.perturbed_makespan, a.perturbed_makespan);
  EXPECT_GT(f.fabric.contention_ns, 0);
}

TEST(RunStudy, FlowModeBurstBufferDrainsInBackground) {
  StudyConfig cfg = flow_study();
  cfg.machine.bb_bw_bytes_per_s = 8e9;
  cfg.protocol.tier = storage::StorageTier::kBurstBuffer;
  const Breakdown b = run_study(cfg);
  EXPECT_EQ(b.network, "flow");
  EXPECT_GT(b.io_bursts, 0);
  EXPECT_GT(b.fabric.io_flows, 0);      // the drains crossed the fabric
  EXPECT_GT(b.fabric.storage_bytes, 0); // and reached the PFS ingress
}

TEST(FailureStudy, DirectFlowModeRunsDeterministically) {
  FailureStudyConfig cfg;
  cfg.mode = FailureModel::kDirect;
  cfg.study = flow_study();
  cfg.study.params.iterations = 8;
  cfg.trials = 3;
  const DirectFailureStudyResult a = run_direct_failure_study(cfg);
  cfg.jobs = 3;
  const DirectFailureStudyResult b = run_direct_failure_study(cfg);
  EXPECT_GT(a.direct.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.direct.mean_seconds, b.direct.mean_seconds);
  EXPECT_EQ(a.stats.failures, b.stats.failures);
}

TEST(PlatformStudy, FlowModeCompletesAndStaysDeterministic) {
  PlatformConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 2_MiB;
  workload::StdParams params;
  params.ranks = 8;
  params.iterations = 8;
  params.compute = 1_ms;
  params.bytes = 4096;
  ProtocolSpec protocol;
  protocol.kind = ckpt::ProtocolKind::kCoordinated;
  protocol.interval_policy = ckpt::IntervalPolicy::kFixed;
  protocol.fixed_interval = 10_ms;
  cfg.jobs = make_job_mix({"halo3d"}, 2, 8, params, protocol);
  cfg.network.mode = NetworkMode::kFlow;
  const PlatformBreakdown a = run_platform_study(cfg);
  cfg.shards = 2;
  const PlatformBreakdown b = run_platform_study(cfg);
  ASSERT_EQ(a.jobs.size(), 2u);
  EXPECT_GT(a.machine_efficiency, 0.0);
  EXPECT_LE(a.machine_efficiency, 1.0);
  EXPECT_EQ(a.machine_makespan, b.machine_makespan);
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].perturbed_makespan, b.jobs[j].perturbed_makespan) << j;
    EXPECT_EQ(a.jobs[j].base_makespan, b.jobs[j].base_makespan) << j;
  }
}

}  // namespace
}  // namespace chksim::core
