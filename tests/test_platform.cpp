// Platform-layer tests: program composition, result slicing, job I/O
// streams, the multi-job study against its single-job oracle, and the
// storage-contention wait attribution.
#include "chksim/core/platform_study.hpp"

#include <gtest/gtest.h>

#include "chksim/core/study.hpp"
#include "chksim/platform/job.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

using namespace chksim::literals;

sim::Program finalized_workload(const std::string& name, int ranks,
                                std::uint64_t seed) {
  workload::StdParams p;
  p.ranks = ranks;
  p.iterations = 8;
  p.compute = 500'000;  // 0.5 ms
  p.bytes = 4096;
  p.seed = seed;
  sim::Program prog = workload::make_workload(name, p);
  prog.finalize();
  return prog;
}

// A composed program must behave as the disjoint union of its parts: each
// job's slice of the composed run is byte-identical to the job's solo run.
TEST(PlatformCompose, SlicesMatchSoloRuns) {
  const sim::Program a = finalized_workload("halo3d", 27, 1);
  const sim::Program b = finalized_workload("hpccg", 16, 2);
  const sim::Program composed = sim::Program::compose({&a, &b});
  EXPECT_EQ(composed.ranks(), 43);
  EXPECT_TRUE(composed.finalized());

  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  const sim::RunResult ra = sim::run_program(a, cfg);
  const sim::RunResult rb = sim::run_program(b, cfg);
  const sim::RunResult rc = sim::run_program(composed, cfg);
  ASSERT_TRUE(rc.completed);

  const sim::RunResult sa = sim::slice_result(rc, 0, 27);
  const sim::RunResult sb = sim::slice_result(rc, 27, 43);
  EXPECT_EQ(sa.makespan, ra.makespan);
  EXPECT_EQ(sb.makespan, rb.makespan);
  EXPECT_EQ(sa.ops_executed, ra.ops_executed);
  EXPECT_EQ(sb.ops_executed, rb.ops_executed);
  EXPECT_EQ(sa.total_recv_wait(), ra.total_recv_wait());
  EXPECT_EQ(sb.total_recv_wait(), rb.total_recv_wait());
  ASSERT_EQ(sa.ranks.size(), ra.ranks.size());
  for (std::size_t r = 0; r < ra.ranks.size(); ++r) {
    EXPECT_EQ(sa.ranks[r].finish_time, ra.ranks[r].finish_time);
    EXPECT_EQ(sa.ranks[r].cpu_busy, ra.ranks[r].cpu_busy);
    EXPECT_EQ(sa.ranks[r].sends, ra.ranks[r].sends);
    EXPECT_EQ(sa.ranks[r].bytes_sent, ra.ranks[r].bytes_sent);
  }
}

TEST(PlatformCompose, ComposedMatchesSoloUnderPdesShards) {
  const sim::Program a = finalized_workload("halo3d", 27, 1);
  const sim::Program b = finalized_workload("hpccg", 16, 2);
  const sim::Program composed = sim::Program::compose({&a, &b});
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  const sim::RunResult serial = sim::run_program(composed, cfg);
  // Shard cuts land inside both jobs' rank ranges.
  cfg.shards = 4;
  const sim::RunResult sharded = sim::run_program(composed, cfg);
  EXPECT_EQ(serial.makespan, sharded.makespan);
  EXPECT_EQ(serial.ops_executed, sharded.ops_executed);
  EXPECT_EQ(serial.total_recv_wait(), sharded.total_recv_wait());
}

TEST(PlatformCompose, Validation) {
  EXPECT_THROW(sim::Program::compose({}), std::invalid_argument);
  sim::Program raw(4);  // never finalized
  EXPECT_THROW(sim::Program::compose({&raw}), std::invalid_argument);

  const sim::Program a = finalized_workload("halo3d", 8, 1);
  sim::EngineConfig cfg;
  cfg.net = net::infiniband_system().net;
  const sim::RunResult r = sim::run_program(a, cfg);
  EXPECT_THROW(sim::slice_result(r, 4, 4), std::invalid_argument);
  EXPECT_THROW(sim::slice_result(r, 0, 9), std::invalid_argument);
  EXPECT_THROW(sim::slice_result(r, -1, 4), std::invalid_argument);
}

TEST(PlatformJobIo, StreamShapesPerProtocol) {
  platform::JobIoParams p;
  p.ranks = 12;
  p.interval = 10_ms;
  p.coordination_time = 100_us;
  p.bytes_per_node = 1_MiB;
  p.phase_seed = 7;

  p.kind = ckpt::ProtocolKind::kCoordinated;
  platform::JobIo co = platform::make_job_io(p);
  ASSERT_EQ(co.streams.size(), 1u);
  EXPECT_EQ(co.streams[0].writers, 12);
  // First checkpoint one interval in, as in the solo coordinated schedule.
  EXPECT_EQ(co.streams[0].phase, 10_ms);
  EXPECT_EQ(co.streams[0].rank_begin, 0);
  EXPECT_EQ(co.streams[0].rank_end, 12);
  EXPECT_EQ(co.restart_writers, 12);
  EXPECT_TRUE(co.through_pfs);

  p.kind = ckpt::ProtocolKind::kUncoordinated;
  platform::JobIo un = platform::make_job_io(p);
  ASSERT_EQ(un.streams.size(), 12u);
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(un.streams[static_cast<std::size_t>(r)].writers, 1);
    EXPECT_EQ(un.streams[static_cast<std::size_t>(r)].rank_begin, r);
    EXPECT_LT(un.streams[static_cast<std::size_t>(r)].phase, 10_ms);
  }
  EXPECT_EQ(un.restart_writers, 1);

  p.kind = ckpt::ProtocolKind::kHierarchical;
  p.cluster_size = 5;
  platform::JobIo hi = platform::make_job_io(p);
  ASSERT_EQ(hi.streams.size(), 3u);  // ceil(12 / 5)
  EXPECT_EQ(hi.streams[0].writers, 5);
  EXPECT_EQ(hi.streams[2].writers, 2);  // remainder cluster
  EXPECT_EQ(hi.streams[2].rank_end, 12);
  EXPECT_EQ(hi.restart_writers, 5);

  // The stagger shift (taken mod interval) delays every stream's phase.
  p.kind = ckpt::ProtocolKind::kCoordinated;
  p.stagger_shift = 4_ms;
  EXPECT_EQ(platform::make_job_io(p).streams[0].phase, 14_ms);
  p.stagger_shift = 14_ms;
  EXPECT_EQ(platform::make_job_io(p).streams[0].phase, 14_ms);

  // Burst-buffer tier bypasses the arbiter.
  p.stagger_shift = 0;
  p.tier = storage::StorageTier::kBurstBuffer;
  p.write_time = 3_ms;
  platform::JobIo bb = platform::make_job_io(p);
  EXPECT_FALSE(bb.through_pfs);
  EXPECT_EQ(bb.fixed_write, 3_ms);
  EXPECT_EQ(bb.restart_writers, 0);

  p.interval = 0;
  EXPECT_THROW(platform::make_job_io(p), std::invalid_argument);
}

TEST(PlatformJobIo, TaxDispatchTranslatesRanks) {
  struct Probe final : sim::SendTax {
    TimeNs extra_send_cpu(sim::RankId src, sim::RankId, Bytes) const override {
      return 1000 + src;  // encodes the (job-local) sender rank
    }
  };
  Probe probe;
  platform::PlatformTax tax;
  tax.add_job(0, 8, nullptr);
  tax.add_job(8, 20, &probe);
  EXPECT_FALSE(tax.empty());
  EXPECT_EQ(tax.extra_send_cpu(3, 4, 64), 0);        // untaxed job
  EXPECT_EQ(tax.extra_send_cpu(8, 9, 64), 1000);     // job-local rank 0
  EXPECT_EQ(tax.extra_send_cpu(19, 8, 64), 1011);    // job-local rank 11
  EXPECT_THROW(tax.add_job(25, 30, nullptr), std::invalid_argument);
}

core::PlatformConfig contended_config(int njobs, double stagger) {
  core::PlatformConfig cfg;
  cfg.machine = net::infiniband_system();
  cfg.machine.ckpt_bytes_per_node = 2_MiB;
  // PFS carries exactly one job's coordinated burst at node speed: any
  // overlap between jobs' bursts must queue or stretch.
  cfg.machine.pfs_bw_bytes_per_s = cfg.machine.node_bw_bytes_per_s * 8;
  workload::StdParams params;
  params.ranks = 8;
  params.iterations = 10;
  params.compute = 1_ms;
  params.bytes = 4096;
  core::ProtocolSpec protocol;
  protocol.kind = ckpt::ProtocolKind::kCoordinated;
  protocol.interval_policy = ckpt::IntervalPolicy::kFixed;
  protocol.fixed_interval = 10_ms;
  cfg.jobs = core::make_job_mix({"halo3d"}, njobs, 8, params, protocol);
  cfg.stagger_frac = stagger;
  return cfg;
}

// Single job at full PFS bandwidth: the arbiter must be invisible (no queue
// wait, no contention), and the platform numbers must agree with the
// single-application run_study oracle on the same machine.
TEST(PlatformStudy, SingleJobMatchesRunStudyOracle) {
  core::PlatformConfig cfg = contended_config(1, 0);
  const core::PlatformBreakdown pb = core::run_platform_study(cfg);
  ASSERT_EQ(pb.jobs.size(), 1u);
  const core::PlatformJobBreakdown& j = pb.jobs[0];
  EXPECT_EQ(j.queue_wait, 0);
  EXPECT_EQ(j.storage_contention, 0);
  EXPECT_DOUBLE_EQ(pb.waste_contention_node_s, 0.0);
  EXPECT_GT(j.bursts, 0);
  EXPECT_GT(j.slowdown, 1.0);

  core::StudyConfig sc;
  sc.machine = cfg.machine;
  sc.workload = cfg.jobs[0].workload;
  sc.params = cfg.jobs[0].params;
  sc.protocol = cfg.jobs[0].protocol;
  const core::Breakdown sb = core::run_study(sc);
  EXPECT_EQ(j.base_makespan, sb.base_makespan);
  // The realised lone-burst write equals the analytic write up to per-burst
  // rounding, so the perturbed makespans track each other closely.
  EXPECT_NEAR(static_cast<double>(j.perturbed_makespan),
              static_cast<double>(sb.perturbed_makespan),
              0.01 * static_cast<double>(sb.perturbed_makespan));
}

TEST(PlatformStudy, ContentionAppearsWithSecondJob) {
  const core::PlatformBreakdown solo = core::run_platform_study(contended_config(1, 0));
  const core::PlatformBreakdown duo = core::run_platform_study(contended_config(2, 0));
  ASSERT_EQ(duo.jobs.size(), 2u);
  TimeNs contention = 0;
  for (const core::PlatformJobBreakdown& j : duo.jobs) contention += j.storage_contention;
  EXPECT_GT(contention, 0);
  EXPECT_GT(duo.waste_contention_node_s, 0.0);
  EXPECT_LT(duo.machine_efficiency, solo.machine_efficiency);
  EXPECT_EQ(duo.total_ranks, 16);
  EXPECT_GT(duo.pfs_requests, 0);
  EXPECT_GE(duo.pfs_peak_active, 2);
}

// The E14 mechanism at unit-test scale: de-phasing in-phase bursts strictly
// reduces contention and recovers machine efficiency.
TEST(PlatformStudy, StaggerReducesContention) {
  const core::PlatformBreakdown in_phase =
      core::run_platform_study(contended_config(4, 0));
  const core::PlatformBreakdown spread =
      core::run_platform_study(contended_config(4, 1));
  auto total_contention = [](const core::PlatformBreakdown& b) {
    TimeNs t = 0;
    for (const core::PlatformJobBreakdown& j : b.jobs) t += j.storage_contention;
    return t;
  };
  EXPECT_GT(total_contention(in_phase), 0);
  EXPECT_LT(total_contention(spread), total_contention(in_phase));
  EXPECT_GT(spread.machine_efficiency, in_phase.machine_efficiency);
}

TEST(PlatformStudy, DeterministicAcrossThreadsAndShards) {
  core::PlatformConfig a = contended_config(3, 0.5);
  core::PlatformConfig b = contended_config(3, 0.5);
  b.threads = 2;
  b.shards = 2;
  const core::PlatformBreakdown ra = core::run_platform_study(a);
  const core::PlatformBreakdown rb = core::run_platform_study(b);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_EQ(ra.machine_makespan, rb.machine_makespan);
  EXPECT_DOUBLE_EQ(ra.machine_efficiency, rb.machine_efficiency);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (std::size_t j = 0; j < ra.jobs.size(); ++j) {
    EXPECT_EQ(ra.jobs[j].base_makespan, rb.jobs[j].base_makespan);
    EXPECT_EQ(ra.jobs[j].perturbed_makespan, rb.jobs[j].perturbed_makespan);
    EXPECT_EQ(ra.jobs[j].bursts, rb.jobs[j].bursts);
    EXPECT_EQ(ra.jobs[j].queue_wait, rb.jobs[j].queue_wait);
    EXPECT_EQ(ra.jobs[j].storage_contention, rb.jobs[j].storage_contention);
  }
}

TEST(PlatformStudy, JobLevelFailuresRollBackAndCharge) {
  core::PlatformConfig cfg = contended_config(2, 0);
  cfg.failures = true;
  cfg.failure_seed = 3;
  // Per-job MTBF of about one checkpoint interval, relaunch shrunk so the
  // contended restart read is what shows up in the numbers.
  cfg.machine.node_mtbf_hours = 10e-3 * 8 / 3600.0;
  cfg.machine.restart_seconds = 0.5e-3;
  const core::PlatformBreakdown fb = core::run_platform_study(cfg);
  std::int64_t failures = 0;
  for (const core::PlatformJobBreakdown& j : fb.jobs) {
    failures += j.failures;
    EXPECT_EQ(j.wall_makespan >= j.perturbed_makespan, true);
    if (j.failures > 0) {
      EXPECT_GT(j.lost, 0);
      EXPECT_GT(j.restart, 0);
      EXPECT_GT(j.wall_makespan, j.perturbed_makespan);
    }
  }
  ASSERT_GT(failures, 0);
  EXPECT_GT(fb.waste_failure_node_s, 0.0);

  const core::PlatformBreakdown again = core::run_platform_study(cfg);
  ASSERT_EQ(again.jobs.size(), fb.jobs.size());
  for (std::size_t j = 0; j < fb.jobs.size(); ++j) {
    EXPECT_EQ(again.jobs[j].failures, fb.jobs[j].failures);
    EXPECT_EQ(again.jobs[j].wall_makespan, fb.jobs[j].wall_makespan);
  }
}

TEST(PlatformStudy, MetricsNamespacesPerJob) {
  core::PlatformConfig cfg = contended_config(2, 0.5);
  obs::MetricsRegistry m;
  cfg.metrics = &m;
  const core::PlatformBreakdown b = core::run_platform_study(cfg);
  EXPECT_DOUBLE_EQ(m.gauge("platform.machine.jobs"), 2.0);
  EXPECT_DOUBLE_EQ(m.gauge("platform.machine.efficiency"), b.machine_efficiency);
  EXPECT_EQ(m.counter("platform.machine.pfs.requests"), b.pfs_requests);
  for (const core::PlatformJobBreakdown& j : b.jobs) {
    const std::string p = "platform.job" + std::to_string(j.job) + ".";
    EXPECT_DOUBLE_EQ(m.gauge(p + "slowdown"), j.slowdown);
    EXPECT_EQ(m.counter(p + "bursts"), j.bursts);
    EXPECT_DOUBLE_EQ(m.gauge(p + "storage_contention_ns"),
                     static_cast<double>(j.storage_contention));
  }
}

TEST(PlatformStudy, Validation) {
  core::PlatformConfig empty;
  empty.jobs.clear();
  EXPECT_THROW(core::run_platform_study(empty), std::invalid_argument);

  core::PlatformConfig bad_stagger = contended_config(2, 0);
  bad_stagger.stagger_frac = 1.5;
  EXPECT_THROW(core::run_platform_study(bad_stagger), std::invalid_argument);

  core::PlatformConfig incremental = contended_config(2, 0);
  incremental.jobs[1].protocol.incremental.full_every = 4;
  EXPECT_THROW(core::run_platform_study(incremental), std::invalid_argument);

  EXPECT_THROW(core::make_job_mix({}, 0, 8, workload::StdParams{}, core::ProtocolSpec{}),
               std::invalid_argument);
}

TEST(PlatformStudy, MakeJobMixCyclesAndDecorrelates) {
  workload::StdParams params;
  params.seed = 10;
  core::ProtocolSpec protocol;
  protocol.seed = 20;
  const auto mix = core::make_job_mix({"halo3d", "ep"}, 3, 16, params, protocol);
  ASSERT_EQ(mix.size(), 3u);
  EXPECT_EQ(mix[0].workload, "halo3d");
  EXPECT_EQ(mix[1].workload, "ep");
  EXPECT_EQ(mix[2].workload, "halo3d");
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(mix[static_cast<std::size_t>(j)].params.ranks, 16);
    EXPECT_EQ(mix[static_cast<std::size_t>(j)].params.seed, 10u + static_cast<std::uint64_t>(j));
    EXPECT_EQ(mix[static_cast<std::size_t>(j)].protocol.seed, 20u + static_cast<std::uint64_t>(j));
  }
  // Empty list cycles the full registry.
  const auto all = core::make_job_mix({}, 2, 8, params, protocol);
  EXPECT_EQ(all[0].workload, workload::workload_names()[0]);
}

TEST(PlatformStorageMap, MergesAndQueriesIntervals) {
  obs::StorageContentionMap map(4);
  EXPECT_TRUE(map.empty());
  map.add_range(1, 3, {{100, 200}, {150, 250}});  // overlapping: merge to [100,250)
  map.add_range(2, 3, {{240, 300}});              // extends rank 2's interval
  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.ranks(), 4);
  EXPECT_EQ(map.overlap(0, 0, 1000), 0);
  EXPECT_EQ(map.overlap(1, 0, 1000), 150);
  EXPECT_EQ(map.overlap(1, 120, 180), 60);
  EXPECT_EQ(map.overlap(1, 250, 400), 0);
  EXPECT_EQ(map.overlap(2, 0, 1000), 200);  // [100,300) after the merge
  EXPECT_EQ(map.overlap(2, 260, 280), 20);
}

// The attribution invariant in platform mode: with the converged contention
// map, every rank's waits split exactly into sender_blackout +
// storage_contention + propagated + network, and contention shows up as a
// nonzero category.
TEST(PlatformAttribution, StorageContentionCategoryBalances) {
  core::PlatformConfig cfg = contended_config(2, 0);
  obs::EventTracer tracer(16);
  obs::StorageContentionMap map(0);
  cfg.trace = &tracer;
  cfg.storage_map = &map;
  const core::PlatformBreakdown b = core::run_platform_study(cfg);
  ASSERT_FALSE(map.empty());

  const obs::WaitAttribution att = obs::attribute_waits(tracer, &map);
  ASSERT_TRUE(att.complete);
  TimeNs recv_wait = 0;
  for (const core::PlatformJobBreakdown& j : b.jobs) recv_wait += j.recv_wait_perturbed;
  EXPECT_EQ(att.total.recv_wait, recv_wait);
  for (const obs::RankWaitAttribution& r : att.ranks)
    EXPECT_EQ(r.sender_blackout + r.storage_contention + r.propagated + r.network,
              r.recv_wait);
  EXPECT_GT(att.total.storage_contention, 0);
  EXPECT_GT(att.share_storage_contention(), 0.0);

  // Without the map the same trace degrades to the single-job categories.
  const obs::WaitAttribution plain = obs::attribute_waits(tracer);
  EXPECT_EQ(plain.total.storage_contention, 0);
  EXPECT_EQ(plain.total.recv_wait, att.total.recv_wait);
  EXPECT_GE(plain.total.sender_blackout, att.total.sender_blackout);
}

}  // namespace
}  // namespace chksim
