// Log-normal failures and trace CSV serialization tests.
#include <gtest/gtest.h>

#include "chksim/fault/failures.hpp"

namespace chksim::fault {
namespace {

using namespace chksim::literals;

TEST(LogNormal, MeanMatchesMtbf) {
  LogNormal d(500.0, 1.0);
  EXPECT_DOUBLE_EQ(d.mtbf_seconds(), 500.0);
  Rng rng(4);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample_seconds(rng);
  EXPECT_NEAR(sum / n, 500.0, 12.0);
}

TEST(LogNormal, HeavyTail) {
  // Log-normal with sigma=1.5 has median << mean.
  LogNormal d(1000.0, 1.5);
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(d.sample_seconds(rng));
  std::sort(samples.begin(), samples.end());
  const double med = samples[samples.size() / 2];
  EXPECT_LT(med, 0.5 * 1000.0);
}

TEST(LogNormal, Validates) {
  EXPECT_THROW(LogNormal(0, 1), std::invalid_argument);
  EXPECT_THROW(LogNormal(100, 0), std::invalid_argument);
  EXPECT_NE(LogNormal(100, 1).name().find("lognormal"), std::string::npos);
}

TEST(LogNormal, WorksInTraceGeneration) {
  LogNormal d(3600.0, 1.2);
  const auto trace = generate_trace(d, 32, 200 * 3600_s, 9);
  EXPECT_GT(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    ASSERT_LE(trace[i - 1].time, trace[i].time);
}

TEST(TraceCsv, RoundTrip) {
  Exponential d(1800.0);
  const auto trace = generate_trace(d, 8, 48 * 3600_s, 21);
  ASSERT_FALSE(trace.empty());
  const std::string csv = trace_to_csv(trace);
  const auto parsed = trace_from_csv(csv);
  EXPECT_EQ(parsed, trace);
}

TEST(TraceCsv, HeaderAndFormat) {
  const std::vector<Failure> trace = {{123, 4}, {456, 7}};
  const std::string csv = trace_to_csv(trace);
  EXPECT_EQ(csv, "time_ns,node\n123,4\n456,7\n");
}

TEST(TraceCsv, ParsesWithoutHeader) {
  const auto t = trace_from_csv("10,1\n5,0\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], (Failure{5, 0}));  // sorted on parse
  EXPECT_EQ(t[1], (Failure{10, 1}));
}

TEST(TraceCsv, EmptyIsEmpty) {
  EXPECT_TRUE(trace_from_csv("").empty());
  EXPECT_TRUE(trace_from_csv("time_ns,node\n").empty());
}

TEST(TraceCsv, MalformedRejectedWithLineNumber) {
  try {
    trace_from_csv("time_ns,node\n10,1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  EXPECT_THROW(trace_from_csv("10\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_csv("x,1\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_csv("10,x\n"), std::invalid_argument);
  EXPECT_THROW(trace_from_csv("-5,1\n"), std::invalid_argument);
}

}  // namespace
}  // namespace chksim::fault
