// Conservative-PDES determinism tests: the sharded engine (sim::ParEngine)
// must be byte-identical to the serial engine for every shard count — same
// RunResult (except the pdes_* telemetry block), same Breakdown, same
// metrics JSON, same trace bytes, same critical-path blame report.
#include "chksim/sim/par_engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "chksim/core/study.hpp"
#include "chksim/fault/direct.hpp"
#include "chksim/obs/critical_path.hpp"
#include "chksim/obs/export.hpp"
#include "chksim/obs/metrics.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

workload::StdParams smoke_params() {
  workload::StdParams p;
  p.ranks = 16;
  p.iterations = 4;
  p.compute = 500'000;
  p.bytes = 4096;
  p.seed = 7;
  return p;
}

sim::Program smoke_program(const std::string& name) {
  sim::Program p = workload::make_workload(name, smoke_params());
  p.finalize();
  return p;
}

void expect_same_result(const sim::RunResult& a, const sim::RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.ops_executed, b.ops_executed) << what;
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.event_heap_peak, b.event_heap_peak) << what;
  EXPECT_EQ(a.match_arena_slots, b.match_arena_slots) << what;
  EXPECT_EQ(a.error, b.error) << what;
  ASSERT_EQ(a.ranks.size(), b.ranks.size()) << what;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].finish_time, b.ranks[r].finish_time) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].cpu_busy, b.ranks[r].cpu_busy) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].recv_wait, b.ranks[r].recv_wait) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].sends, b.ranks[r].sends) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].recvs, b.ranks[r].recvs) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].calcs, b.ranks[r].calcs) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent) << what << " rank " << r;
  }
  EXPECT_EQ(a.op_finish, b.op_finish) << what;
  EXPECT_EQ(a.op_finish_offset, b.op_finish_offset) << what;
}

// --- RunResult identity across shard counts, every registry workload. -----

TEST(PdesDeterminism, RunResultIdenticalAcrossShardsAllWorkloads) {
  for (const std::string& name : workload::workload_names()) {
    const sim::Program p = smoke_program(name);
    sim::EngineConfig cfg;
    cfg.record_op_finish = true;
    cfg.shards = 1;
    const sim::RunResult serial = sim::run_program(p, cfg);
    ASSERT_TRUE(serial.completed) << name;
    EXPECT_EQ(serial.pdes_shards, 0) << name;
    for (const int shards : {2, 3, 8}) {
      cfg.shards = shards;
      const sim::RunResult sharded = sim::run_program(p, cfg);
      expect_same_result(serial, sharded,
                         name + " shards=" + std::to_string(shards));
      EXPECT_EQ(sharded.pdes_shards, shards) << name;
      EXPECT_EQ(sharded.pdes_window, cfg.net.L) << name;
      EXPECT_GT(sharded.pdes_supersteps, 0) << name;
    }
  }
}

// --- Full-pipeline byte identity: Breakdown, metrics JSON, trace bytes,
// --- blame JSON across --shards 1/2/8, every registry workload. ----------

struct StudyArtifacts {
  core::Breakdown breakdown;
  std::string metrics_json;
  std::string trace_bytes;
  std::string blame_json;
};

StudyArtifacts run_study_with_shards(const std::string& workload, int shards) {
  obs::EventTracer tracer(smoke_params().ranks);
  obs::MetricsRegistry metrics;
  core::StudyConfig cfg;
  cfg.workload = workload;
  cfg.params = smoke_params();
  // Shrink the checkpoint so its blackout (~175 us at 1.5 GB/s) lands
  // several times inside the few-ms smoke runs — the perturbed run must
  // exercise real blackouts, not just an empty schedule.
  cfg.machine.ckpt_bytes_per_node = 256 * 1024;
  cfg.protocol.kind = ckpt::ProtocolKind::kCoordinated;
  cfg.protocol.fixed_interval = 600'000;
  cfg.trace = &tracer;
  cfg.metrics = &metrics;
  cfg.shards = shards;
  StudyArtifacts out;
  out.breakdown = core::run_study(cfg);
  out.metrics_json = metrics.to_json();
  std::ostringstream trace_os;
  obs::write_chrome_trace(tracer, trace_os);
  out.trace_bytes = trace_os.str();
  std::ostringstream blame_os;
  obs::write_critical_path_json(obs::extract_critical_path(tracer), blame_os);
  out.blame_json = blame_os.str();
  return out;
}

void expect_same_breakdown(const core::Breakdown& a, const core::Breakdown& b,
                           const std::string& what) {
  EXPECT_EQ(a.base_makespan, b.base_makespan) << what;
  EXPECT_EQ(a.perturbed_makespan, b.perturbed_makespan) << what;
  EXPECT_EQ(a.recv_wait_base, b.recv_wait_base) << what;
  EXPECT_EQ(a.recv_wait_perturbed, b.recv_wait_perturbed) << what;
  EXPECT_EQ(a.slowdown, b.slowdown) << what;
  EXPECT_EQ(a.propagation_factor, b.propagation_factor) << what;
  EXPECT_EQ(a.interval, b.interval) << what;
  EXPECT_EQ(a.blackout, b.blackout) << what;
}

TEST(PdesDeterminism, StudyPipelineByteIdenticalAcrossShardsAllWorkloads) {
  for (const std::string& name : workload::workload_names()) {
    const StudyArtifacts serial = run_study_with_shards(name, 1);
    for (const int shards : {2, 8}) {
      const StudyArtifacts sharded = run_study_with_shards(name, shards);
      const std::string what = name + " shards=" + std::to_string(shards);
      expect_same_breakdown(serial.breakdown, sharded.breakdown, what);
      EXPECT_EQ(serial.metrics_json, sharded.metrics_json) << what;
      EXPECT_EQ(serial.trace_bytes, sharded.trace_bytes) << what;
      EXPECT_EQ(serial.blame_json, sharded.blame_json) << what;
    }
  }
}

// --- Injected failures through the sharded core (fault::direct). ----------

TEST(PdesDeterminism, DirectFailuresIdenticalAcrossShards) {
  const sim::Program p = smoke_program("halo3d");
  sim::EngineConfig cfg;
  fault::DirectConfig dc;
  dc.mode = fault::RecoveryMode::kGlobalRollback;
  dc.restart = 2'000'000;
  const std::vector<fault::Failure> trace = {{4'000'000, 3}, {9'000'000, 11}};
  cfg.shards = 1;
  const fault::DirectResult serial = fault::run_with_failures(p, cfg, dc, trace);
  ASSERT_TRUE(serial.completed);
  for (const int shards : {2, 4, 8}) {
    cfg.shards = shards;
    const fault::DirectResult sharded = fault::run_with_failures(p, cfg, dc, trace);
    EXPECT_EQ(serial.completed, sharded.completed) << shards;
    EXPECT_EQ(serial.makespan_wall, sharded.makespan_wall) << shards;
    EXPECT_EQ(serial.stats.failures, sharded.stats.failures) << shards;
    EXPECT_EQ(serial.stats.lost_work, sharded.stats.lost_work) << shards;
    EXPECT_EQ(serial.error, sharded.error) << shards;
  }
}

// --- Snapshot / restore at an arbitrary window boundary (satellite). ------

TEST(PdesSnapshot, MidRunSnapshotRestoreReproducesFinalResult) {
  const sim::Program p = smoke_program("hpccg");
  sim::EngineConfig cfg;
  cfg.record_op_finish = true;
  cfg.shards = 4;

  // Reference: uninterrupted sharded run.
  sim::ParEngine ref(p, cfg);
  ref.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(ref.finished());
  const sim::RunResult expected = ref.take_result();

  // Interrupted run: pause at an arbitrary mid-run window boundary,
  // snapshot, run to completion, then rewind and run to completion again.
  sim::ParEngine eng(p, cfg);
  eng.run_until(expected.makespan / 3);
  ASSERT_FALSE(eng.finished());
  const sim::ParEngine::Snapshot snap = eng.snapshot();
  const TimeNs resume_point = eng.next_event_time();

  eng.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(eng.finished());

  eng.restore(snap);
  EXPECT_FALSE(eng.finished());
  EXPECT_EQ(eng.next_event_time(), resume_point);
  eng.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(eng.finished());

  const sim::RunResult replayed = eng.take_result();
  expect_same_result(expected, replayed, "snapshot replay");
  EXPECT_EQ(expected.pdes_shards, replayed.pdes_shards);
}

TEST(PdesSnapshot, StepwiseDriveMatchesRunUntil) {
  const sim::Program p = smoke_program("ring");
  sim::EngineConfig cfg;
  cfg.shards = 3;

  sim::ParEngine ref(p, cfg);
  ref.run_until(std::numeric_limits<TimeNs>::max());
  const sim::RunResult expected = ref.take_result();

  sim::ParEngine eng(p, cfg);
  while (eng.step()) {
  }
  ASSERT_TRUE(eng.finished());
  const sim::RunResult stepped = eng.take_result();
  expect_same_result(expected, stepped, "stepwise");
}

// --- Engine::run dispatch and guard rails. --------------------------------

TEST(PdesGuards, ZeroLookaheadFallsBackToSerial) {
  const sim::Program p = smoke_program("halo2d");
  sim::EngineConfig cfg;
  cfg.net.L = 0;  // No lookahead: conservative windows would be unsound.
  cfg.shards = 8;
  const sim::RunResult r = sim::run_program(p, cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.pdes_shards, 0);  // Serial path took it.
  cfg.shards = 1;
  const sim::RunResult serial = sim::run_program(p, cfg);
  expect_same_result(serial, r, "L=0 fallback");
}

TEST(PdesGuards, ParEngineRejectsZeroLookahead) {
  const sim::Program p = smoke_program("halo2d");
  sim::EngineConfig cfg;
  cfg.net.L = 0;
  cfg.shards = 2;
  EXPECT_THROW(sim::ParEngine(p, cfg), std::logic_error);
}

TEST(PdesGuards, ShardCountClampedToRanks) {
  const sim::Program p = smoke_program("allreduce");
  sim::EngineConfig cfg;
  cfg.shards = 1000;  // More shards than ranks: clamp, don't crash.
  sim::ParEngine eng(p, cfg);
  EXPECT_EQ(eng.shards(), smoke_params().ranks);
  eng.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(eng.finished());
  const sim::RunResult sharded = eng.take_result();
  cfg.shards = 1;
  const sim::RunResult serial = sim::run_program(p, cfg);
  expect_same_result(serial, sharded, "shards=ranks");
}

TEST(PdesDeterminism, AdversarialSameTimestampStorm) {
  // Worst case for the window-bucketed event queue: zero overheads and
  // zero-duration calcs collapse every send, completion, and (with L=1)
  // every cross-rank arrival onto a handful of identical timestamps, so the
  // same-time straggler path — not the bucket fast path — carries the run.
  // Duplicate same-(src, tag) sends additionally force FIFO ordering inside
  // a single match slot at equal match times.
  sim::Program p(8);
  for (int r = 0; r < 8; ++r) {
    p.calc(r, 0);
    p.send(r, (r + 1) % 8, 8, 5);
    p.send(r, (r + 1) % 8, 8, 5);  // duplicate (src, tag), same instant
    p.send(r, (r + 2) % 8, 8, 5);
    p.recv(r, (r + 7) % 8, 8, 5);
    p.recv(r, (r + 7) % 8, 8, 5);
    p.recv(r, (r + 6) % 8, 8, 5);
    p.calc(r, 0);
  }
  p.finalize();
  sim::EngineConfig cfg;
  cfg.record_op_finish = true;
  cfg.net.L = 1;  // minimum sound lookahead: 1 ns windows
  cfg.net.o = 0;
  cfg.net.g = 0;
  cfg.net.G = 0.0;
  cfg.net.O = 0.0;
  cfg.shards = 1;
  const sim::RunResult serial = sim::run_program(p, cfg);
  ASSERT_TRUE(serial.completed);
  for (const int shards : {2, 3, 8}) {
    cfg.shards = shards;
    const sim::RunResult sharded = sim::run_program(p, cfg);
    expect_same_result(serial, sharded,
                       "same-timestamp storm shards=" + std::to_string(shards));
  }
}

TEST(PdesGuards, DeadlockDiagnosticsMatchSerial) {
  // An unmatched recv deadlocks; the sharded engine must report the same
  // ranks in the same format as the serial one.
  sim::Program p(8);
  for (int r = 0; r < 8; ++r) p.calc(r, 1000);
  p.recv(2, 5, 64, 9);  // Never sent.
  p.recv(6, 1, 64, 9);  // Never sent.
  p.finalize();
  sim::EngineConfig cfg;
  cfg.shards = 1;
  const sim::RunResult serial = sim::run_program(p, cfg);
  ASSERT_FALSE(serial.completed);
  cfg.shards = 4;
  const sim::RunResult sharded = sim::run_program(p, cfg);
  ASSERT_FALSE(sharded.completed);
  EXPECT_EQ(serial.error, sharded.error);
  EXPECT_EQ(serial.makespan, sharded.makespan);
}

}  // namespace
}  // namespace chksim
