// Flow-mode engine tests: the DES with EngineConfig::fabric set. Message
// transit times come from net::flow::FlowNet instead of the closed-form
// LogGOPS wire time, and the result must stay byte-identical between the
// serial core and the sharded ParEngine for every shard count — same
// RunResult including the FabricStats block.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chksim/net/flow/flownet.hpp"
#include "chksim/net/flow/router.hpp"
#include "chksim/obs/attribution.hpp"
#include "chksim/obs/tracer.hpp"
#include "chksim/sim/engine.hpp"
#include "chksim/sim/par_engine.hpp"
#include "chksim/sim/program.hpp"
#include "chksim/workload/workloads.hpp"

namespace chksim {
namespace {

using net::flow::FlowNet;
using net::flow::FlowNetConfig;
using net::flow::Router;
using net::flow::RouterConfig;

// Hand-calculable parameters: L 1000, o 100, g 200, no per-byte CPU cost.
sim::LogGOPSParams simple_net() {
  sim::LogGOPSParams p;
  p.L = 1000;
  p.o = 100;
  p.g = 200;
  p.G = 0.0;
  p.O = 0.0;
  p.S = 1 << 30;
  return p;
}

Router crossbar(int nodes) {
  RouterConfig rc;
  rc.kind = net::flow::FabricKind::kFullyConnected;
  rc.nodes = nodes;
  return Router(rc);
}

// 1 B/ns node links, effectively infinite fabric core: the inject/eject
// links are the only contention points, so rates are hand-computable.
FlowNetConfig nic_bound() {
  FlowNetConfig fc;
  fc.node_bw = 1.0;
  fc.link_bw = 100.0;
  fc.pfs_bw = 1.0;
  fc.base_latency = 1000;
  return fc;
}

void expect_same_result(const sim::RunResult& a, const sim::RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.ops_executed, b.ops_executed) << what;
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.event_heap_peak, b.event_heap_peak) << what;
  EXPECT_EQ(a.match_arena_slots, b.match_arena_slots) << what;
  EXPECT_EQ(a.error, b.error) << what;
  EXPECT_EQ(a.fabric.msg_flows, b.fabric.msg_flows) << what;
  EXPECT_EQ(a.fabric.io_flows, b.fabric.io_flows) << what;
  EXPECT_EQ(a.fabric.active_peak, b.fabric.active_peak) << what;
  EXPECT_EQ(a.fabric.recomputes, b.fabric.recomputes) << what;
  EXPECT_EQ(a.fabric.fill_rounds, b.fabric.fill_rounds) << what;
  EXPECT_EQ(a.fabric.fifo_holds, b.fabric.fifo_holds) << what;
  EXPECT_EQ(a.fabric.contention_ns, b.fabric.contention_ns) << what;
  EXPECT_EQ(a.fabric.bytes_moved, b.fabric.bytes_moved) << what;
  ASSERT_EQ(a.ranks.size(), b.ranks.size()) << what;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].finish_time, b.ranks[r].finish_time) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].cpu_busy, b.ranks[r].cpu_busy) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].recv_wait, b.ranks[r].recv_wait) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].sends, b.ranks[r].sends) << what << " rank " << r;
    EXPECT_EQ(a.ranks[r].recvs, b.ranks[r].recvs) << what << " rank " << r;
  }
  EXPECT_EQ(a.op_finish, b.op_finish) << what;
  EXPECT_EQ(a.op_finish_offset, b.op_finish_offset) << what;
}

// --- Hand-computed timings ------------------------------------------------

TEST(FlowEngine, LoneMessageArrivesAtUncontendedTime) {
  // send: cpu o=100 ends at 100; flow activates 100 + 1000, drains 1000 B
  // at the 1 B/ns node link -> arrival 2100; recv consumes (o=100) -> 2200.
  sim::Program p(2);
  p.send(0, 1, 1000, 1);
  p.recv(1, 0, 1000, 1);
  p.finalize();
  const Router rt = crossbar(2);
  FlowNet fn(&rt, nic_bound());
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  const sim::RunResult res = sim::run_program(p, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.makespan, 2200);
  EXPECT_EQ(res.fabric.msg_flows, 1);
  EXPECT_EQ(res.fabric.contention_ns, 0);
  EXPECT_EQ(res.fabric.bytes_moved, 1000);
  EXPECT_EQ(res.ranks[1].recv_wait, 2100);
}

TEST(FlowEngine, IncastSharesTheEjectLink) {
  // Ranks 1..4 each send 1000 B to rank 0 at t=0. All four flows activate
  // at 1100 and share rank 0's 1 B/ns eject link at 1/4 B/ns: all drain at
  // 1100 + 4000 = 5100. Uncontended arrival would be 2100 -> 3000 ns of
  // contention each.
  sim::Program p(5);
  for (int r = 1; r <= 4; ++r) {
    p.send(r, 0, 1000, r);
    p.recv(0, r, 1000, r);
  }
  p.finalize();
  const Router rt = crossbar(5);
  FlowNet fn(&rt, nic_bound());
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  const sim::RunResult res = sim::run_program(p, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.fabric.msg_flows, 4);
  EXPECT_EQ(res.fabric.contention_ns, 4 * 3000);
  // The four matches consume serially on rank 0's CPU after 5100.
  EXPECT_EQ(res.makespan, 5100 + 4 * 100);
}

TEST(FlowEngine, RendezvousIsSubsumedByFlows) {
  // 100 KiB message above the eager threshold S = 64 KiB: analytic mode
  // would run the RTS/CTS handshake; flow mode moves it as one eager flow.
  sim::Program p(2);
  p.send(0, 1, 100 * 1024, 1);
  p.recv(1, 0, 100 * 1024, 1);
  p.finalize();
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.net.S = 65536;
  const Router rt = crossbar(2);
  FlowNet fn(&rt, nic_bound());
  cfg.fabric = &fn;
  const sim::RunResult res = sim::run_program(p, cfg);
  ASSERT_TRUE(res.completed);
  // end 100, activate 1100, 102400 B at 1 B/ns -> 103500; recv cpu -> +100.
  EXPECT_EQ(res.makespan, 103600);
}

TEST(FlowEngine, FlowModeRequiresLookahead) {
  sim::Program p(2);
  p.calc(0, 10);
  p.finalize();
  const Router rt = crossbar(2);
  FlowNet fn(&rt, nic_bound());
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.net.L = 0;
  cfg.fabric = &fn;
  EXPECT_THROW(sim::SimCore(p, cfg), std::invalid_argument);
  cfg.shards = 2;
  EXPECT_THROW(sim::ParEngine(p, cfg), std::invalid_argument);
}

// --- Serial vs sharded byte identity -------------------------------------

workload::StdParams smoke_params() {
  workload::StdParams p;
  p.ranks = 16;
  p.iterations = 4;
  p.compute = 500'000;
  p.bytes = 4096;
  p.seed = 7;
  return p;
}

TEST(FlowEngine, RunResultIdenticalAcrossShardsAllWorkloads) {
  const Router rt = crossbar(16);
  for (const std::string& name : workload::workload_names()) {
    sim::Program p = workload::make_workload(name, smoke_params());
    p.finalize();
    sim::EngineConfig cfg;
    cfg.record_op_finish = true;
    // Default LogGOPS (L = 1500 = FlowNet base_latency default) with a
    // 4 GB/s node link: contention is ubiquitous in the collective phases.
    FlowNetConfig fc;
    fc.node_bw = 0.25;
    fc.link_bw = 0.25;
    cfg.shards = 1;
    FlowNet serial_fn(&rt, fc);
    cfg.fabric = &serial_fn;
    const sim::RunResult serial = sim::run_program(p, cfg);
    ASSERT_TRUE(serial.completed) << name;
    EXPECT_GT(serial.fabric.msg_flows, 0) << name;
    for (const int shards : {2, 3, 8}) {
      FlowNet fn(&rt, fc);
      cfg.shards = shards;
      cfg.fabric = &fn;
      const sim::RunResult sharded = sim::run_program(p, cfg);
      expect_same_result(serial, sharded,
                         name + " shards=" + std::to_string(shards));
      EXPECT_EQ(sharded.pdes_shards, shards) << name;
    }
  }
}

TEST(FlowEngine, ContentionIsVisibleVersusAnalytic) {
  // All-to-one incast at scale: flow mode must cost more wall-clock than
  // the analytic engine's infinite-crossbar transit for the same program.
  const int n = 32;
  sim::Program p(n);
  for (int r = 1; r < n; ++r) {
    p.send(r, 0, 64 * 1024, r);
    p.recv(0, r, 64 * 1024, r);
  }
  p.finalize();
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  const sim::RunResult analytic = sim::run_program(p, cfg);
  const Router rt = crossbar(n);
  FlowNet fn(&rt, nic_bound());
  cfg.fabric = &fn;
  const sim::RunResult flowed = sim::run_program(p, cfg);
  ASSERT_TRUE(analytic.completed);
  ASSERT_TRUE(flowed.completed);
  EXPECT_GT(flowed.makespan, analytic.makespan);
  EXPECT_GT(flowed.fabric.contention_ns, 0);
}

// --- Tracing and wait attribution in flow mode ----------------------------

TEST(FlowEngine, TraceAmendRealizesContestedArrivals) {
  // Incast: every kMsgInject is recorded with the provisional uncontended
  // arrival (2100) and must be amended to the realized one (5100) with the
  // difference as stall.
  sim::Program p(5);
  for (int r = 1; r <= 4; ++r) {
    p.send(r, 0, 1000, r);
    p.recv(0, r, 1000, r);
  }
  p.finalize();
  const Router rt = crossbar(5);
  FlowNet fn(&rt, nic_bound());
  obs::EventTracer tracer(5);
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  cfg.trace = &tracer;
  const sim::RunResult res = sim::run_program(p, cfg);
  ASSERT_TRUE(res.completed);
  int injects = 0;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (ev.kind != obs::TraceEventKind::kMsgInject) continue;
    ++injects;
    EXPECT_EQ(ev.t1, 5100) << "sender " << ev.rank;
    EXPECT_EQ(ev.stall, 3000) << "sender " << ev.rank;
    EXPECT_EQ(ev.t0, 100) << "sender " << ev.rank;
  }
  EXPECT_EQ(injects, 4);
}

TEST(FlowEngine, WaitAttributionIdentityHoldsPerRank) {
  // The five-way classification must sum exactly to the engine's per-rank
  // recv_wait, and the incast's waits must show up as network_contention.
  sim::Program p(5);
  for (int r = 1; r <= 4; ++r) {
    p.send(r, 0, 1000, r);
    p.recv(0, r, 1000, r);
  }
  p.finalize();
  const Router rt = crossbar(5);
  FlowNet fn(&rt, nic_bound());
  obs::EventTracer tracer(5);
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  cfg.trace = &tracer;
  const sim::RunResult res = sim::run_program(p, cfg);
  ASSERT_TRUE(res.completed);
  const obs::WaitAttribution att = obs::attribute_waits(tracer);
  ASSERT_TRUE(att.complete);
  ASSERT_EQ(att.ranks.size(), res.ranks.size());
  for (std::size_t r = 0; r < att.ranks.size(); ++r) {
    const obs::RankWaitAttribution& a = att.ranks[r];
    EXPECT_EQ(a.recv_wait, res.ranks[r].recv_wait) << "rank " << r;
    EXPECT_EQ(a.sender_blackout + a.storage_contention + a.propagated +
                  a.network_contention + a.network,
              a.recv_wait)
        << "rank " << r;
  }
  EXPECT_GT(att.total.network_contention, 0);
  EXPECT_EQ(att.total.sender_blackout, 0);  // no blackouts in this program
}

TEST(FlowEngine, WaitAttributionIdenticalAcrossShards) {
  sim::Program p = workload::make_workload("halo3d", smoke_params());
  p.finalize();
  const Router rt = crossbar(16);
  std::vector<std::string> summaries;
  for (const int shards : {1, 4}) {
    FlowNet fn(&rt, nic_bound());
    obs::EventTracer tracer(16);
    sim::EngineConfig cfg;
    cfg.net = simple_net();
    cfg.fabric = &fn;
    cfg.trace = &tracer;
    cfg.shards = shards;
    const sim::RunResult res = sim::run_program(p, cfg);
    ASSERT_TRUE(res.completed) << shards;
    const obs::WaitAttribution att = obs::attribute_waits(tracer);
    ASSERT_TRUE(att.complete) << shards;
    for (std::size_t r = 0; r < att.ranks.size(); ++r) {
      EXPECT_EQ(att.ranks[r].recv_wait, res.ranks[r].recv_wait)
          << "shards " << shards << " rank " << r;
    }
    summaries.push_back(att.to_string());
  }
  EXPECT_EQ(summaries[0], summaries[1]);
}

// --- Snapshot / restore ---------------------------------------------------

TEST(FlowEngine, SerialSnapshotRestoreReplaysIdentically) {
  sim::Program p = workload::make_workload("ring", smoke_params());
  p.finalize();
  const Router rt = crossbar(16);
  FlowNet fn(&rt, nic_bound());
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  sim::SimCore core(p, cfg);
  core.run_until(300'000);
  const sim::SimCore::Snapshot snap = core.snapshot();
  core.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(core.finished());
  const TimeNs first_makespan = core.makespan();
  const std::int64_t first_ops = core.ops_executed();
  core.restore(snap);
  core.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(core.finished());
  EXPECT_EQ(core.makespan(), first_makespan);
  EXPECT_EQ(core.ops_executed(), first_ops);
}

TEST(FlowEngine, ShardedSnapshotRestoreReplaysIdentically) {
  sim::Program p = workload::make_workload("ring", smoke_params());
  p.finalize();
  const Router rt = crossbar(16);
  FlowNet fn(&rt, nic_bound());
  sim::EngineConfig cfg;
  cfg.net = simple_net();
  cfg.fabric = &fn;
  cfg.shards = 4;
  sim::ParEngine engine(p, cfg);
  engine.run_until(300'000);
  const sim::ParEngine::Snapshot snap = engine.snapshot();
  engine.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(engine.finished());
  const TimeNs first_makespan = engine.makespan();
  engine.restore(snap);
  engine.run_until(std::numeric_limits<TimeNs>::max());
  ASSERT_TRUE(engine.finished());
  EXPECT_EQ(engine.makespan(), first_makespan);
}

}  // namespace
}  // namespace chksim
