// SharedPfs arbiter tests: oracle agreement with the closed-form Pfs,
// arbitration-policy semantics, and adversarial same-instant burst storms.
#include "chksim/storage/shared_pfs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace chksim {
namespace {

using namespace chksim::literals;
using storage::ArbiterPolicy;
using storage::IoCompletion;
using storage::IoRequest;
using storage::SharedPfs;

// Power-of-two bandwidths make every byte/bandwidth division exactly
// representable in double, so oracle comparisons hold to the nanosecond.
storage::PfsParams dyadic_params() {
  storage::PfsParams p;
  p.node_bw_bytes_per_s = 1073741824.0;  // 2^30 B/s
  p.pfs_bw_bytes_per_s = 4294967296.0;   // 2^32 B/s
  p.bb_bw_bytes_per_s = 0;
  return p;
}

std::vector<IoCompletion> drain(SharedPfs& pfs, TimeNs until) {
  std::vector<IoCompletion> out;
  pfs.advance(until, &out);
  return out;
}

IoRequest burst(int job, int writers, Bytes bytes_per_writer,
                int priority = storage::kPriorityWrite) {
  IoRequest r;
  r.job = job;
  r.writers = writers;
  r.bytes_per_writer = bytes_per_writer;
  r.priority = priority;
  return r;
}

TEST(SharedPfs, PolicyNamesRoundTrip) {
  for (const ArbiterPolicy p : storage::all_arbiter_policies())
    EXPECT_EQ(storage::arbiter_policy_by_name(storage::to_string(p)), p);
  EXPECT_THROW(storage::arbiter_policy_by_name("lifo"), std::invalid_argument);
  EXPECT_EQ(storage::all_arbiter_policies().size(), 4u);
}

// The oracle property: a lone FCFS burst finishes exactly when the analytic
// Pfs says a coordinated write of the same shape does.
TEST(SharedPfs, FcfsLoneBurstMatchesAnalyticOracle) {
  const storage::Pfs oracle(dyadic_params());
  // PFS-bound: 16 writers share 2^32 B/s -> 2^28 B/s each.
  {
    SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFcfs);
    pfs.submit(0, burst(0, 16, 1_MiB));
    const auto done = drain(pfs, 1_s);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].finish, oracle.concurrent_write(1_MiB, 16).per_node);
    EXPECT_EQ(done[0].finish, 3906250);  // 2^24 B / 2^32 B/s = 2^-8 s
    EXPECT_EQ(done[0].queue_wait, 0);
    EXPECT_EQ(done[0].contention, 0);
    EXPECT_EQ(done[0].service, done[0].finish);
    EXPECT_EQ(done[0].uncontended, done[0].finish);
  }
  // Node-bound: 2 writers get 2^31 B/s of share, capped at 2^30 per node.
  {
    SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFcfs);
    pfs.submit(0, burst(0, 2, 1_MiB));
    const auto done = drain(pfs, 1_s);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].finish, oracle.concurrent_write(1_MiB, 2).per_node);
    EXPECT_EQ(done[0].contention, 0);
  }
}

TEST(SharedPfs, FcfsSerialisesSameInstantBursts) {
  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFcfs);
  const TimeNs kT = 3906250;  // each burst alone: 2^24 B / 2^32 B/s
  pfs.submit(0, burst(0, 16, 1_MiB));
  pfs.submit(0, burst(1, 16, 1_MiB));
  const auto done = drain(pfs, 1_s);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].id, 0);
  EXPECT_EQ(done[0].finish, kT);
  EXPECT_EQ(done[0].queue_wait, 0);
  EXPECT_EQ(done[1].id, 1);
  EXPECT_EQ(done[1].finish, 2 * kT);
  EXPECT_EQ(done[1].queue_wait, kT);  // queued behind the full first burst
  EXPECT_EQ(done[1].service, kT);
  EXPECT_EQ(done[1].contention, kT);
  EXPECT_EQ(pfs.stats().requests, 2);
  EXPECT_EQ(pfs.stats().peak_active, 2);
  EXPECT_EQ(pfs.stats().queue_wait_total, kT);
  EXPECT_EQ(pfs.stats().contention_total, kT);
  EXPECT_EQ(pfs.stats().busy, 2 * kT);
  EXPECT_EQ(pfs.stats().bytes_moved, 2 * 16 * 1_MiB);
  EXPECT_TRUE(pfs.idle());
}

// Fair share splits the aggregate evenly between identical PFS-bound
// requests: both run at half speed and finish together at twice the
// uncontended time (all of the delay is stretch, none is queueing).
TEST(SharedPfs, FairShareSplitsEvenly) {
  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFairShare);
  const TimeNs kT = 3906250;
  pfs.submit(0, burst(0, 16, 1_MiB));
  pfs.submit(0, burst(1, 16, 1_MiB));
  const auto done = drain(pfs, 1_s);
  ASSERT_EQ(done.size(), 2u);
  for (const IoCompletion& c : done) {
    EXPECT_EQ(c.finish, 2 * kT);
    EXPECT_EQ(c.queue_wait, 0);  // fair share never starves
    EXPECT_EQ(c.uncontended, kT);
    EXPECT_EQ(c.contention, kT);
  }
  EXPECT_EQ(done[0].id, 0);  // same-instant completions surface in id order
  EXPECT_EQ(done[1].id, 1);
  EXPECT_EQ(pfs.stats().busy, 2 * kT);
}

// Max-min water-filling respects injection caps: a 1-writer request is
// limited by its own node link, and the leftover aggregate all goes to the
// wide request.
TEST(SharedPfs, FairShareMaxMinRespectsInjectionCaps) {
  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFairShare);
  pfs.submit(0, burst(0, 1, 1_MiB));    // cap 2^30 B/s
  pfs.submit(0, burst(1, 16, 1_MiB));   // cap 2^34, gets 2^32 - 2^30
  const auto done = drain(pfs, 1_s);
  ASSERT_EQ(done.size(), 2u);
  // Small request runs at its full node speed: 2^20 / 2^30 = 2^-10 s.
  EXPECT_EQ(done[0].id, 0);
  EXPECT_NEAR(static_cast<double>(done[0].finish), 976562.5, 1.0);
  EXPECT_EQ(done[0].contention, 0);
  // Wide request: 3*2^30 B/s while sharing, then the full 2^32. Continuous
  // solution: 2^-10 + 13*2^-12 s = 4150390.625 ns (ceil rounding adds ~ns).
  EXPECT_EQ(done[1].id, 1);
  EXPECT_NEAR(static_cast<double>(done[1].finish), 4150390.625, 4.0);
  EXPECT_EQ(done[1].queue_wait, 0);
}

// The steady-state oracle: single-writer requests arriving uniformly spread
// (the uncoordinated checkpoint pattern) under fair share realise a mean
// write time near Pfs::spread_write's fixed point.
TEST(SharedPfs, FairShareMatchesSpreadWriteFixedPoint) {
  storage::PfsParams params;
  params.node_bw_bytes_per_s = 1e9;
  params.pfs_bw_bytes_per_s = 4e9;
  const int nodes = 64;
  const TimeNs tau = units::from_seconds(1.2);  // utilisation ~0.9
  const Bytes bytes = 64_MiB;
  const storage::Pfs oracle(params);
  const TimeNs predicted = oracle.spread_write(bytes, nodes, tau).per_node;

  SharedPfs pfs(params, ArbiterPolicy::kFairShare);
  std::vector<IoCompletion> done;
  const int periods = 3;
  for (int p = 0; p < periods; ++p) {
    for (int i = 0; i < nodes; ++i) {
      const TimeNs at = p * tau + i * (tau / nodes);
      pfs.advance(at, &done);
      pfs.submit(at, burst(i % 4, 1, bytes));
    }
  }
  pfs.advance((periods + 2) * tau, &done);
  ASSERT_EQ(done.size(), static_cast<std::size_t>(periods * nodes));
  double mean = 0;
  for (const IoCompletion& c : done)
    mean += static_cast<double>(c.finish - c.submit) / static_cast<double>(done.size());
  // Realised mean can only exceed the solo time, and stays within the
  // closed-form fixed point's tolerance band at this utilisation.
  EXPECT_GE(mean, static_cast<double>(predicted) - 2.0);
  EXPECT_NEAR(mean, static_cast<double>(predicted),
              0.15 * static_cast<double>(predicted));
}

// Adversarial same-instant storm: eight bursts of different sizes all at
// t = 0, the last one a priority-0 restart read. Pins the tie-break and
// grant order of every policy, work conservation, and the per-completion
// accounting identities.
TEST(SharedPfs, SameInstantBurstStormPolicyMatrix) {
  const TimeNs kUnit = 3906250;         // job j's solo time: (j+1) * kUnit
  const TimeNs kTotal = 36 * kUnit;     // serial makespan, exactly
  struct Case {
    ArbiterPolicy policy;
    std::vector<int> completion_ids;
    std::int64_t preemptions;
  };
  const std::vector<Case> cases = {
      // FCFS ignores priority: plain submission order.
      {ArbiterPolicy::kFcfs, {0, 1, 2, 3, 4, 5, 6, 7}, 0},
      // Equal shares drain the smallest remainder first.
      {ArbiterPolicy::kFairShare, {0, 1, 2, 3, 4, 5, 6, 7}, 0},
      // Blocking: request 0 already holds the server (non-preemptive), the
      // restart read then overtakes the queued writes.
      {ArbiterPolicy::kBlocking, {0, 7, 1, 2, 3, 4, 5, 6}, 0},
      // Cooperative: the restart read preempts the in-progress write.
      {ArbiterPolicy::kCooperative, {7, 0, 1, 2, 3, 4, 5, 6}, 1},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(storage::to_string(c.policy));
    SharedPfs pfs(dyadic_params(), c.policy);
    for (int j = 0; j < 8; ++j)
      pfs.submit(0, burst(j, 4, (j + 1) * 4_MiB,
                          j == 7 ? storage::kPriorityRestart
                                 : storage::kPriorityWrite));
    const auto done = drain(pfs, 1_s);
    ASSERT_EQ(done.size(), 8u);
    for (std::size_t k = 0; k < done.size(); ++k) {
      EXPECT_EQ(done[k].id, c.completion_ids[k]) << "position " << k;
      // Accounting identities hold for every request under every policy.
      EXPECT_EQ(done[k].queue_wait + done[k].service, done[k].finish - done[k].submit);
      EXPECT_EQ(done[k].contention,
                done[k].finish - done[k].submit - done[k].uncontended);
      EXPECT_GE(done[k].contention, 0);
      if (k > 0) EXPECT_GE(done[k].finish, done[k - 1].finish);
    }
    // Every request alone saturates the PFS (4 writers x 2^30 = 2^32), so
    // all four policies are work-conserving: the storm drains in exactly
    // the serial makespan (ceil rounding can add a few ns).
    EXPECT_NEAR(static_cast<double>(done.back().finish),
                static_cast<double>(kTotal), 8.0);
    EXPECT_EQ(pfs.stats().preemptions, c.preemptions);
    EXPECT_EQ(pfs.stats().requests, 8);
    EXPECT_EQ(pfs.stats().peak_active, 8);
    EXPECT_EQ(pfs.stats().bytes_moved, 36 * 4 * 4_MiB);
  }
}

// Mid-service restart read: cooperative pauses the write (bytes kept) and
// resumes it; blocking makes the read wait for the full write.
TEST(SharedPfs, CooperativePreemptsBlockingDoesNot) {
  const TimeNs kHalf = 1953125;       // half of the write's 2^-8 s
  const TimeNs kRead = 976563;        // ceil(2^20 / 2^30 * 1e9)
  // Cooperative: read runs immediately at the preemption point.
  {
    SharedPfs pfs(dyadic_params(), ArbiterPolicy::kCooperative);
    pfs.submit(0, burst(0, 4, 4_MiB));
    std::vector<IoCompletion> out;
    pfs.advance(kHalf, &out);
    ASSERT_TRUE(out.empty());
    pfs.submit(kHalf, burst(1, 1, 1_MiB, storage::kPriorityRestart));
    const auto done = drain(pfs, 1_s);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].priority, storage::kPriorityRestart);
    EXPECT_EQ(done[0].finish, kHalf + kRead);
    EXPECT_EQ(done[0].queue_wait, 0);
    // The paused write kept its first-half bytes: it finishes one read later
    // than it would have alone, with the pause booked as queue wait.
    EXPECT_EQ(done[1].finish, 2 * kHalf + kRead);
    EXPECT_EQ(done[1].queue_wait, kRead);
    EXPECT_EQ(done[1].service, 2 * kHalf);
    EXPECT_EQ(pfs.stats().preemptions, 1);
  }
  // Blocking: the started write is never interrupted.
  {
    SharedPfs pfs(dyadic_params(), ArbiterPolicy::kBlocking);
    pfs.submit(0, burst(0, 4, 4_MiB));
    std::vector<IoCompletion> out;
    pfs.advance(kHalf, &out);
    pfs.submit(kHalf, burst(1, 1, 1_MiB, storage::kPriorityRestart));
    const auto done = drain(pfs, 1_s);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].priority, storage::kPriorityWrite);
    EXPECT_EQ(done[0].finish, 2 * kHalf);
    EXPECT_EQ(done[0].queue_wait, 0);
    EXPECT_EQ(done[1].finish, 2 * kHalf + kRead);
    EXPECT_EQ(done[1].queue_wait, kHalf);  // waited out the write's second half
    EXPECT_EQ(pfs.stats().preemptions, 0);
  }
}

TEST(SharedPfs, ZeroByteRequestCompletesInstantly) {
  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFcfs);
  pfs.submit(5, burst(0, 4, 0));
  EXPECT_EQ(pfs.next_completion(), 5);
  const auto done = drain(pfs, 5);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].finish, 5);
  EXPECT_EQ(done[0].service, 0);
  EXPECT_EQ(done[0].contention, 0);
}

TEST(SharedPfs, NextCompletionTracksEarliestFinish) {
  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFairShare);
  EXPECT_EQ(pfs.next_completion(), -1);
  EXPECT_TRUE(pfs.idle());
  pfs.submit(0, burst(0, 16, 1_MiB));
  EXPECT_EQ(pfs.next_completion(), 3906250);
  EXPECT_FALSE(pfs.idle());
  std::vector<IoCompletion> out;
  pfs.advance(1_s, &out);
  EXPECT_EQ(pfs.next_completion(), -1);
  EXPECT_EQ(pfs.clock(), 1_s);
}

TEST(SharedPfs, ValidationThrows) {
  storage::PfsParams bad = dyadic_params();
  bad.pfs_bw_bytes_per_s = 0;
  EXPECT_THROW(SharedPfs(bad, ArbiterPolicy::kFcfs), std::invalid_argument);

  SharedPfs pfs(dyadic_params(), ArbiterPolicy::kFcfs);
  EXPECT_THROW(pfs.submit(0, burst(0, 0, 1_KiB)), std::invalid_argument);
  EXPECT_THROW(pfs.submit(0, burst(0, 1, -1)), std::invalid_argument);
  std::vector<IoCompletion> out;
  pfs.advance(10, &out);
  EXPECT_THROW(pfs.submit(5, burst(0, 1, 1_KiB)), std::invalid_argument);
}

}  // namespace
}  // namespace chksim
