// Overflow guards at extreme scales: per-rank accumulators in the engine
// and the cross-rank totals saturate instead of wrapping, and the Program
// builder refuses (with a clear diagnostic) to exceed its 32-bit op-index
// and tag spaces rather than silently aliasing ops or messages.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "chksim/sim/engine.hpp"
#include "chksim/support/units.hpp"

namespace {

using namespace chksim;

constexpr TimeNs kMax = std::numeric_limits<TimeNs>::max();
constexpr TimeNs kMin = std::numeric_limits<TimeNs>::min();

TEST(SaturatingAdd, ExactWhenInRange) {
  EXPECT_EQ(saturating_add(0, 0), 0);
  EXPECT_EQ(saturating_add(2, 3), 5);
  EXPECT_EQ(saturating_add(-2, 3), 1);
  EXPECT_EQ(saturating_add(kMax - 1, 1), kMax);
  EXPECT_EQ(saturating_add(kMin + 1, -1), kMin);
}

TEST(SaturatingAdd, ClampsAtBothEnds) {
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
  EXPECT_EQ(saturating_add(kMax - 5, 100), kMax);
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  EXPECT_EQ(saturating_add(kMin + 5, -100), kMin);
}

TEST(RunResultOverflow, TotalRecvWaitSaturatesAtNearMaxInputs) {
  // A million ranks each having waited ~an hour in ns already overflows a
  // plain int64 sum; near-max per-rank values are the hard case.
  sim::RunResult r;
  r.ranks.resize(4);
  for (sim::RankStats& s : r.ranks) s.recv_wait = kMax / 2;
  EXPECT_EQ(r.total_recv_wait(), kMax);

  // One near-max rank alone must pass through unclamped.
  sim::RunResult one;
  one.ranks.resize(1);
  one.ranks[0].recv_wait = kMax - 3;
  EXPECT_EQ(one.total_recv_wait(), kMax - 3);
}

TEST(RankStatsOverflow, AccumulationPatternSaturates) {
  // The engine folds per-op contributions with saturating_add; replaying
  // that accumulation pattern at near-max inputs must clamp, not wrap.
  sim::RankStats st;
  st.cpu_busy = kMax - 10;
  st.cpu_busy = saturating_add(st.cpu_busy, 7);
  EXPECT_EQ(st.cpu_busy, kMax - 3);
  st.cpu_busy = saturating_add(st.cpu_busy, 1000);
  EXPECT_EQ(st.cpu_busy, kMax);

  st.recv_wait = kMax - 1;
  st.recv_wait = saturating_add(st.recv_wait, kMax - 1);
  EXPECT_EQ(st.recv_wait, kMax);

  st.bytes_sent = kMax - 2;
  st.bytes_sent = saturating_add(st.bytes_sent, 4);
  EXPECT_EQ(st.bytes_sent, kMax);
}

TEST(ProgramOverflow, TagSpaceExhaustionThrows) {
  sim::Program p(2);
  constexpr sim::Tag kTagMax = std::numeric_limits<sim::Tag>::max();
  // Consume most of the tag space in one allocation, then overflow it.
  const sim::Tag base = p.allocate_tags(kTagMax - 100);
  EXPECT_GE(base, 1);
  EXPECT_THROW(p.allocate_tags(200), std::overflow_error);
  // A small allocation that still fits succeeds.
  EXPECT_NO_THROW(p.allocate_tags(10));
}

TEST(ProgramOverflow, RepeatTagStrideExhaustionThrows) {
  // A block that consumes tags, replicated enough times to exhaust the tag
  // space, must be rejected up front (before any ops are copied).
  sim::Program p(2);
  p.allocate_tags(std::numeric_limits<sim::Tag>::max() / 2);
  p.begin_repeat();
  const sim::Tag t = p.allocate_tags(1 << 20);  // block tag stride: 1 Mi
  p.send(0, 1, 8, t);
  p.recv(1, 0, 8, t);
  EXPECT_THROW(p.repeat(2000), std::overflow_error);
}

}  // namespace
