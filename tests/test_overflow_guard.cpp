// TimeNs overflow guards at extreme scales: per-rank accumulators in the
// engine and the cross-rank totals saturate instead of wrapping.
#include <gtest/gtest.h>

#include <limits>

#include "chksim/sim/engine.hpp"
#include "chksim/support/units.hpp"

namespace {

using namespace chksim;

constexpr TimeNs kMax = std::numeric_limits<TimeNs>::max();
constexpr TimeNs kMin = std::numeric_limits<TimeNs>::min();

TEST(SaturatingAdd, ExactWhenInRange) {
  EXPECT_EQ(saturating_add(0, 0), 0);
  EXPECT_EQ(saturating_add(2, 3), 5);
  EXPECT_EQ(saturating_add(-2, 3), 1);
  EXPECT_EQ(saturating_add(kMax - 1, 1), kMax);
  EXPECT_EQ(saturating_add(kMin + 1, -1), kMin);
}

TEST(SaturatingAdd, ClampsAtBothEnds) {
  EXPECT_EQ(saturating_add(kMax, 1), kMax);
  EXPECT_EQ(saturating_add(kMax, kMax), kMax);
  EXPECT_EQ(saturating_add(kMax - 5, 100), kMax);
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  EXPECT_EQ(saturating_add(kMin + 5, -100), kMin);
}

TEST(RunResultOverflow, TotalRecvWaitSaturatesAtNearMaxInputs) {
  // A million ranks each having waited ~an hour in ns already overflows a
  // plain int64 sum; near-max per-rank values are the hard case.
  sim::RunResult r;
  r.ranks.resize(4);
  for (sim::RankStats& s : r.ranks) s.recv_wait = kMax / 2;
  EXPECT_EQ(r.total_recv_wait(), kMax);

  // One near-max rank alone must pass through unclamped.
  sim::RunResult one;
  one.ranks.resize(1);
  one.ranks[0].recv_wait = kMax - 3;
  EXPECT_EQ(one.total_recv_wait(), kMax - 3);
}

TEST(RankStatsOverflow, AccumulationPatternSaturates) {
  // The engine folds per-op contributions with saturating_add; replaying
  // that accumulation pattern at near-max inputs must clamp, not wrap.
  sim::RankStats st;
  st.cpu_busy = kMax - 10;
  st.cpu_busy = saturating_add(st.cpu_busy, 7);
  EXPECT_EQ(st.cpu_busy, kMax - 3);
  st.cpu_busy = saturating_add(st.cpu_busy, 1000);
  EXPECT_EQ(st.cpu_busy, kMax);

  st.recv_wait = kMax - 1;
  st.recv_wait = saturating_add(st.recv_wait, kMax - 1);
  EXPECT_EQ(st.recv_wait, kMax);

  st.bytes_sent = kMax - 2;
  st.bytes_sent = saturating_add(st.bytes_sent, 4);
  EXPECT_EQ(st.bytes_sent, kMax);
}

}  // namespace
